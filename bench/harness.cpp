#include "bench/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/parallel.hpp"
#include "obs/analyzer.hpp"
#include "stats/report.hpp"

namespace mwsim::bench {

namespace {

const char* argValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool argPresent(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::vector<int> thin(const std::vector<int>& points) {
  if (points.size() <= 3) return points;
  std::vector<int> out;
  for (std::size_t i = 0; i < points.size(); i += 2) out.push_back(points[i]);
  if (out.back() != points.back()) out.push_back(points.back());
  return out;
}

void printHeader(const FigureSpec& spec, const BenchOptions& opts) {
  std::printf("== %s: %s ==\n", spec.id, spec.title);
  std::printf("paper: %s\n", spec.paperExpectation);
  // The jobs count deliberately stays out of stdout: output is byte-identical
  // for any --jobs value, so it goes to stderr with the progress lines.
  std::printf("(measure %.0fs, ramp-up %.0fs, seed %llu%s)\n\n", opts.measureSec,
              opts.rampUpSec, static_cast<unsigned long long>(opts.seed),
              opts.fullScale ? ", full-scale database" : "");
  if (opts.jobs > 1) std::fprintf(stderr, "  (--jobs %d worker threads)\n", opts.jobs);
  std::fflush(stdout);
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions opts;
  if (const char* v = argValue(argc, argv, "--measure-sec")) opts.measureSec = std::atof(v);
  if (const char* v = argValue(argc, argv, "--rampup-sec")) opts.rampUpSec = std::atof(v);
  if (const char* v = argValue(argc, argv, "--seed")) {
    opts.seed = static_cast<std::uint64_t>(std::atoll(v));
  }
  if (const char* v = argValue(argc, argv, "--jobs")) {
    opts.jobs = std::atoi(v);
    if (opts.jobs <= 0) opts.jobs = core::defaultJobCount();
  }
  opts.quick = argPresent(argc, argv, "--quick");
  opts.csv = argPresent(argc, argv, "--csv");
  opts.fullScale = argPresent(argc, argv, "--full-scale");
  opts.breakdown = argPresent(argc, argv, "--breakdown");
  opts.noMetrics = argPresent(argc, argv, "--no-metrics");
  if (const char* v = argValue(argc, argv, "--trace-out")) opts.traceOut = v;
  if (const char* v = argValue(argc, argv, "--metrics-out")) opts.metricsOut = v;
  if (opts.tracing() && !trace::kEnabled) {
    std::fprintf(stderr,
                 "note: built with -DMWSIM_TRACING=OFF; "
                 "--breakdown/--trace-out will produce no output\n");
  }
  if (!opts.metricsOut.empty() && !obs::kEnabled) {
    std::fprintf(stderr,
                 "note: built with -DMWSIM_METRICS=OFF; "
                 "--metrics-out will produce no output\n");
  }
  return opts;
}

void printBreakdown(const char* configName, int clients, const trace::Report& report) {
  std::printf("\nper-tier latency attribution: %s at %d clients\n", configName, clients);
  if (report.traces == 0) {
    std::printf("  (no traces collected — tracing compiled out?)\n");
    return;
  }
  const double n = static_cast<double>(report.traces);
  stats::TextTable table({"tier", "spans/req", "cpu-service", "cpu-queue", "lock-wait",
                          "net-transfer", "other", "total ms/req"});
  auto addRow = [&](const std::string& name, double spansPerReq,
                    const std::array<sim::Duration, trace::kCategoryCount>& excl) {
    std::vector<std::string> row{name, stats::fmt(spansPerReq, 1)};
    sim::Duration total = 0;
    for (std::size_t c = 0; c < trace::kCategoryCount; ++c) {
      row.push_back(stats::fmt(static_cast<double>(excl[c]) / n / 1e6, 2));
      total += excl[c];
    }
    row.push_back(stats::fmt(static_cast<double>(total) / n / 1e6, 2));
    table.addRow(std::move(row));
  };
  double totalSpansPerReq = 0;
  for (const trace::TierStats& tier : report.tiers) {
    if (tier.spans == 0) continue;
    totalSpansPerReq += static_cast<double>(tier.spans) / n;
    addRow(tier.name, static_cast<double>(tier.spans) / n, tier.exclNs);
  }
  addRow("(all tiers)", totalSpansPerReq, report.exclNs);
  std::printf("%s", table.str().c_str());
  std::printf("end-to-end: mean %.1f ms, p90 %.1f ms over %llu traced interactions\n",
              report.endToEndSec.mean() * 1e3, report.endToEndSec.percentile(90) * 1e3,
              static_cast<unsigned long long>(report.traces));
  std::fflush(stdout);
}

void printTimeSeries(const char* label, const stats::TimeSeries& series) {
  std::printf("\ntrajectory: %s (bucket %.0fs)\n", label,
              sim::toSeconds(series.interval()));
  stats::TextTable table({"t (s)", "ok/min", "errors", "shed", "mean RT ms", "max RT ms"});
  const auto& buckets = series.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    table.addRow({stats::fmt(sim::toSeconds(series.bucketStart(i)), 0),
                  stats::fmt(series.okPerMinute(i), 0),
                  std::to_string(b.errors), std::to_string(b.shed),
                  stats::fmt(b.meanResponseSec() * 1e3, 1),
                  stats::fmt(b.maxResponseSec * 1e3, 1)});
  }
  std::printf("%s", table.str().c_str());
  std::fflush(stdout);
}

void writeTraceFile(const std::string& path, const trace::Report& report,
                    const obs::MetricsReport* metrics) {
  const std::string extra =
      metrics != nullptr ? obs::counterTrackEvents(*metrics) : std::string();
  const std::string json = trace::chromeTraceJson(report, extra);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "  cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "  wrote %zu traces%s to %s\n", report.retained.size(),
               extra.empty() ? "" : " + counter tracks", path.c_str());
}

void writeMetricsFile(const std::string& path, const obs::MetricsReport& report) {
  const std::string json = obs::metricsJson(report);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "  cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "  wrote metrics JSON to %s\n", path.c_str());
}

void printVerdict(const char* label, int clients, const core::ExperimentResult& result) {
  if (!result.metrics) return;
  std::printf("  verdict[%s at %d clients]: %s\n", label, clients,
              result.metrics->verdict.oneLine().c_str());
  std::fflush(stdout);
}

core::SweepOptions BenchOptions::sweepOptions() const {
  core::SweepOptions sweep;
  sweep.jobs = jobs;
  sweep.onResult = [](std::size_t, const core::ExperimentParams& params,
                      const core::ExperimentResult& result) {
    std::fprintf(stderr, "  [%s %d clients] %.0f ipm\n",
                 core::configurationName(params.config), params.clients,
                 result.throughputIpm);
  };
  return sweep;
}

core::ExperimentParams BenchOptions::baseParams(const FigureSpec& spec) const {
  core::ExperimentParams params;
  params.app = spec.app;
  params.mix = spec.mix;
  params.seed = seed;
  params.rampUp = sim::fromSeconds(rampUpSec);
  params.measure = sim::fromSeconds(measureSec);
  params.rampDown = sim::fromSeconds(5);
  params.bookstoreScale = fullScale ? 1.0 : 0.25;
  params.auctionHistoryScale = fullScale ? 1.0 : 0.10;
  // Metrics are on by default: the layer is observation-only (results stay
  // byte-identical), and every figure bench prints its bottleneck verdict.
  params.metrics.enabled = metrics();
  return params;
}

int runThroughputFigure(const FigureSpec& spec, int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  printHeader(spec, opts);

  const std::vector<int> points = opts.quick ? thin(spec.clients) : spec.clients;

  std::vector<std::string> headers{"clients"};
  for (auto c : spec.configs) headers.push_back(core::configurationName(c));
  stats::TextTable table(headers);
  stats::CsvWriter csv(headers);

  // Points are built by hand (in sweepGrid's config-major order, via the
  // same pointParams) so tracing can be switched on per point: results are
  // unchanged either way, only observed.
  const core::ExperimentParams base = opts.baseParams(spec);
  std::vector<core::ExperimentParams> flatPoints;
  flatPoints.reserve(spec.configs.size() * points.size());
  for (auto config : spec.configs) {
    for (int clients : points) {
      core::ExperimentParams p = core::pointParams(base, config, clients);
      if (opts.tracing() && clients == points.back()) {
        p.trace.enabled = true;
        // Verbatim span trees are only kept where JSON will be exported.
        p.trace.maxRetainedTraces =
            (!opts.traceOut.empty() && config == spec.configs.front()) ? 2000 : 0;
      }
      flatPoints.push_back(p);
    }
  }
  const auto flat = core::runMany(flatPoints, opts.sweepOptions());
  std::vector<std::vector<core::ExperimentResult>> grid(spec.configs.size());
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    grid[ci].assign(flat.begin() + static_cast<std::ptrdiff_t>(ci * points.size()),
                    flat.begin() + static_cast<std::ptrdiff_t>((ci + 1) * points.size()));
  }
  std::vector<std::vector<double>> curves(spec.configs.size());
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    for (const auto& result : grid[ci]) curves[ci].push_back(result.throughputIpm);
  }

  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<std::string> row{std::to_string(points[p])};
    for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
      row.push_back(stats::fmt(curves[ci][p], 0));
    }
    table.addRow(row);
    csv.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("peak throughput (interactions/min):\n");
  std::vector<std::size_t> peakIdx(spec.configs.size(), 0);
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    double best = 0;
    int bestClients = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (curves[ci][p] > best) {
        best = curves[ci][p];
        bestClients = points[p];
        peakIdx[ci] = p;
      }
    }
    std::printf("  %-22s %6.0f ipm at %d clients\n",
                core::configurationName(spec.configs[ci]), best, bestClients);
  }
  if (!flat.empty() && flat.front().metrics) {
    std::printf("\nbottleneck verdicts at peak:\n");
    for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
      printVerdict(core::configurationName(spec.configs[ci]), points[peakIdx[ci]],
                   grid[ci][peakIdx[ci]]);
    }
  }
  if (!opts.metricsOut.empty() && grid.front()[peakIdx.front()].metrics) {
    writeMetricsFile(opts.metricsOut, *grid.front()[peakIdx.front()].metrics);
  }
  if (opts.breakdown) {
    for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
      if (grid[ci].back().trace) {
        printBreakdown(core::configurationName(spec.configs[ci]), points.back(),
                       *grid[ci].back().trace);
      }
    }
  }
  if (!opts.traceOut.empty() && grid.front().back().trace) {
    writeTraceFile(opts.traceOut, *grid.front().back().trace,
                   grid.front().back().metrics.get());
  }
  if (opts.csv) std::printf("\nCSV:\n%s", csv.str().c_str());
  return 0;
}

int runCpuFigure(const FigureSpec& spec, int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  printHeader(spec, opts);

  stats::TextTable table({"configuration", "peak ipm", "clients", "WebServer", "Database",
                          "Servlet", "EJB", "web NIC Mb/s"});

  const std::vector<int> candidates =
      opts.quick ? thin(spec.peakCandidates) : spec.peakCandidates;

  // Same manual point construction as runThroughputFigure: every candidate
  // is traced (aggregates only) so the breakdown can be reported at
  // whichever candidate turns out to be the peak.
  const core::ExperimentParams base = opts.baseParams(spec);
  std::vector<core::ExperimentParams> flatPoints;
  flatPoints.reserve(spec.configs.size() * candidates.size());
  for (auto config : spec.configs) {
    for (int clients : candidates) {
      core::ExperimentParams p = core::pointParams(base, config, clients);
      if (opts.tracing()) {
        p.trace.enabled = true;
        p.trace.maxRetainedTraces =
            (!opts.traceOut.empty() && config == spec.configs.front()) ? 2000 : 0;
      }
      flatPoints.push_back(p);
    }
  }
  const auto flat = core::runMany(flatPoints, opts.sweepOptions());
  std::vector<std::vector<core::ExperimentResult>> grid(spec.configs.size());
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    grid[ci].assign(flat.begin() + static_cast<std::ptrdiff_t>(ci * candidates.size()),
                    flat.begin() +
                        static_cast<std::ptrdiff_t>((ci + 1) * candidates.size()));
  }

  std::vector<core::ExperimentResult> peaks;
  std::vector<int> peakClients;
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    const auto config = spec.configs[ci];
    core::ExperimentResult best;
    int bestClients = 0;
    // Same first-strict-maximum scan as the sequential loop used.
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      if (grid[ci][p].throughputIpm > best.throughputIpm) {
        best = grid[ci][p];
        bestClients = candidates[p];
      }
    }
    auto cell = [&](const char* machine) -> std::string {
      const auto* u = best.machine(machine);
      return u ? stats::fmt(u->cpuUtilization * 100.0, 0) + "%" : "-";
    };
    const auto* web = best.machine("WebServer");
    table.addRow({core::configurationName(config), stats::fmt(best.throughputIpm, 0),
                  std::to_string(bestClients), cell("WebServer"), cell("Database"),
                  cell("Servlet Container"), cell("EJB Server"),
                  web ? stats::fmt(web->nicMbps, 1) : "-"});
    peaks.push_back(best);
    peakClients.push_back(bestClients);
  }
  std::printf("%s", table.str().c_str());
  if (!peaks.empty() && peaks.front().metrics) {
    std::printf("\nbottleneck verdicts at peak:\n");
    for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
      printVerdict(core::configurationName(spec.configs[ci]), peakClients[ci],
                   peaks[ci]);
    }
  }
  if (!opts.metricsOut.empty() && !peaks.empty() && peaks.front().metrics) {
    writeMetricsFile(opts.metricsOut, *peaks.front().metrics);
  }
  if (opts.breakdown) {
    for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
      if (peaks[ci].trace) {
        printBreakdown(core::configurationName(spec.configs[ci]), peakClients[ci],
                       *peaks[ci].trace);
      }
    }
  }
  if (!opts.traceOut.empty() && !peaks.empty() && peaks.front().trace) {
    writeTraceFile(opts.traceOut, *peaks.front().trace, peaks.front().metrics.get());
  }
  return 0;
}

}  // namespace mwsim::bench
