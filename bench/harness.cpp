#include "bench/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/parallel.hpp"
#include "stats/report.hpp"

namespace mwsim::bench {

namespace {

const char* argValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool argPresent(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::vector<int> thin(const std::vector<int>& points) {
  if (points.size() <= 3) return points;
  std::vector<int> out;
  for (std::size_t i = 0; i < points.size(); i += 2) out.push_back(points[i]);
  if (out.back() != points.back()) out.push_back(points.back());
  return out;
}

void printHeader(const FigureSpec& spec, const BenchOptions& opts) {
  std::printf("== %s: %s ==\n", spec.id, spec.title);
  std::printf("paper: %s\n", spec.paperExpectation);
  // The jobs count deliberately stays out of stdout: output is byte-identical
  // for any --jobs value, so it goes to stderr with the progress lines.
  std::printf("(measure %.0fs, ramp-up %.0fs, seed %llu%s)\n\n", opts.measureSec,
              opts.rampUpSec, static_cast<unsigned long long>(opts.seed),
              opts.fullScale ? ", full-scale database" : "");
  if (opts.jobs > 1) std::fprintf(stderr, "  (--jobs %d worker threads)\n", opts.jobs);
  std::fflush(stdout);
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions opts;
  if (const char* v = argValue(argc, argv, "--measure-sec")) opts.measureSec = std::atof(v);
  if (const char* v = argValue(argc, argv, "--rampup-sec")) opts.rampUpSec = std::atof(v);
  if (const char* v = argValue(argc, argv, "--seed")) {
    opts.seed = static_cast<std::uint64_t>(std::atoll(v));
  }
  if (const char* v = argValue(argc, argv, "--jobs")) {
    opts.jobs = std::atoi(v);
    if (opts.jobs <= 0) opts.jobs = core::defaultJobCount();
  }
  opts.quick = argPresent(argc, argv, "--quick");
  opts.csv = argPresent(argc, argv, "--csv");
  opts.fullScale = argPresent(argc, argv, "--full-scale");
  return opts;
}

core::SweepOptions BenchOptions::sweepOptions() const {
  core::SweepOptions sweep;
  sweep.jobs = jobs;
  sweep.onResult = [](std::size_t, const core::ExperimentParams& params,
                      const core::ExperimentResult& result) {
    std::fprintf(stderr, "  [%s %d clients] %.0f ipm\n",
                 core::configurationName(params.config), params.clients,
                 result.throughputIpm);
  };
  return sweep;
}

core::ExperimentParams BenchOptions::baseParams(const FigureSpec& spec) const {
  core::ExperimentParams params;
  params.app = spec.app;
  params.mix = spec.mix;
  params.seed = seed;
  params.rampUp = sim::fromSeconds(rampUpSec);
  params.measure = sim::fromSeconds(measureSec);
  params.rampDown = sim::fromSeconds(5);
  params.bookstoreScale = fullScale ? 1.0 : 0.25;
  params.auctionHistoryScale = fullScale ? 1.0 : 0.10;
  return params;
}

int runThroughputFigure(const FigureSpec& spec, int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  printHeader(spec, opts);

  const std::vector<int> points = opts.quick ? thin(spec.clients) : spec.clients;

  std::vector<std::string> headers{"clients"};
  for (auto c : spec.configs) headers.push_back(core::configurationName(c));
  stats::TextTable table(headers);
  stats::CsvWriter csv(headers);

  // throughput[config][point]
  const auto grid =
      core::sweepGrid(opts.baseParams(spec), spec.configs, points, opts.sweepOptions());
  std::vector<std::vector<double>> curves(spec.configs.size());
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    for (const auto& result : grid[ci]) curves[ci].push_back(result.throughputIpm);
  }

  for (std::size_t p = 0; p < points.size(); ++p) {
    std::vector<std::string> row{std::to_string(points[p])};
    for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
      row.push_back(stats::fmt(curves[ci][p], 0));
    }
    table.addRow(row);
    csv.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("peak throughput (interactions/min):\n");
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    double best = 0;
    int bestClients = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (curves[ci][p] > best) {
        best = curves[ci][p];
        bestClients = points[p];
      }
    }
    std::printf("  %-22s %6.0f ipm at %d clients\n",
                core::configurationName(spec.configs[ci]), best, bestClients);
  }
  if (opts.csv) std::printf("\nCSV:\n%s", csv.str().c_str());
  return 0;
}

int runCpuFigure(const FigureSpec& spec, int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  printHeader(spec, opts);

  stats::TextTable table({"configuration", "peak ipm", "clients", "WebServer", "Database",
                          "Servlet", "EJB", "web NIC Mb/s"});

  const std::vector<int> candidates =
      opts.quick ? thin(spec.peakCandidates) : spec.peakCandidates;

  const auto grid = core::sweepGrid(opts.baseParams(spec), spec.configs, candidates,
                                    opts.sweepOptions());
  for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
    const auto config = spec.configs[ci];
    core::ExperimentResult best;
    int bestClients = 0;
    // Same first-strict-maximum scan as the sequential loop used.
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      if (grid[ci][p].throughputIpm > best.throughputIpm) {
        best = grid[ci][p];
        bestClients = candidates[p];
      }
    }
    auto cell = [&](const char* machine) -> std::string {
      const auto* u = best.machine(machine);
      return u ? stats::fmt(u->cpuUtilization * 100.0, 0) + "%" : "-";
    };
    const auto* web = best.machine("WebServer");
    table.addRow({core::configurationName(config), stats::fmt(best.throughputIpm, 0),
                  std::to_string(bestClients), cell("WebServer"), cell("Database"),
                  cell("Servlet Container"), cell("EJB Server"),
                  web ? stats::fmt(web->nicMbps, 1) : "-"});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

}  // namespace mwsim::bench
