/// Figure 9 — online bookstore throughput vs clients, ordering mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = bookstoreOrdering();
  spec.id = "Figure 9";
  spec.title = "Online bookstore throughput, ordering mix";
  spec.paperExpectation =
      "shorter update queries give higher throughput than the shopping mix; the "
      "(sync) configurations win by much more (lock contention dominates); EJB worst";
  return runThroughputFigure(spec, argc, argv);
}
