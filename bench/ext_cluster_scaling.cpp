/// Extension — cluster scaling experiment the paper motivates but never
/// runs: §6 attributes each architecture's ceiling to one saturated tier,
/// which predicts that replicating the bottleneck tier moves the knee. This
/// bench sweeps web-tier replica counts (default 1/2/4, auction bidding mix
/// on WsPhp-DB, whose knee is web-CPU-bound) and prints one throughput
/// curve per replica count, the located knee, and which tier limits it —
/// with --breakdown adding the per-tier latency attribution at each knee.
///
/// Extra flags on top of the common harness set:
///   --web-replicas 1,2,4   comma list of web-tier replica counts
///   --db-replicas N        database replicas for every curve (default 1)
///   --db-policy master|shard  replicated-DB routing policy (default master)
///   --clients a,b,...      client counts per curve (default up to 6000)
///   --help                 print usage and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

namespace {

const char* argValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

std::vector<int> parseIntList(const char* text) {
  std::vector<int> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(std::atoi(item.c_str()));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

/// The tier whose utilization caps the curve: highest CPU across tiers,
/// unless the web NIC is hotter than every CPU (the paper's fig07 case).
std::string limitingTier(const core::ExperimentResult& r) {
  const stats::MachineUsage* hottest = nullptr;
  for (const auto& tier : r.tierUsage) {
    if (hottest == nullptr || tier.cpuUtilization > hottest->cpuUtilization) {
      hottest = &tier;
    }
  }
  if (hottest == nullptr) return "?";
  const auto* web = r.tier("WebServer");
  if (web != nullptr && web->nicUtilization > hottest->cpuUtilization) {
    return "WebServer NIC";
  }
  return hottest->name + " CPU";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "ext_cluster_scaling — throughput vs load for replicated web tiers\n\n"
          "usage: ext_cluster_scaling [options]\n"
          "  --web-replicas 1,2,4     web-tier replica counts, one curve each\n"
          "  --db-replicas N          database replicas (default 1)\n"
          "  --db-policy master|shard replicated-DB routing (default master)\n"
          "  --clients a,b,...        client counts per curve\n"
          "  --measure-sec N  --rampup-sec N  --seed N  --jobs N\n"
          "  --quick  --csv  --breakdown  (see bench/harness.hpp)\n");
      return 0;
    }
  }

  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;  // bidding
  const auto opts = bench::BenchOptions::parse(argc, argv);
  const auto config = core::Configuration::WsPhpDb;

  std::vector<int> webReplicas{1, 2, 4};
  if (const char* v = argValue(argc, argv, "--web-replicas")) webReplicas = parseIntList(v);
  int dbReplicas = 1;
  if (const char* v = argValue(argc, argv, "--db-replicas")) dbReplicas = std::atoi(v);
  mw::DbPolicy dbPolicy = mw::DbPolicy::MasterReplica;
  if (const char* v = argValue(argc, argv, "--db-policy")) {
    dbPolicy = std::strcmp(v, "shard") == 0 ? mw::DbPolicy::ShardedByKey
                                            : mw::DbPolicy::MasterReplica;
  }
  std::vector<int> clients{400, 800, 1200, 1600, 2400, 3200, 4800, 6000};
  if (const char* v = argValue(argc, argv, "--clients")) clients = parseIntList(v);
  if (opts.quick) {
    std::vector<int> halved;
    for (std::size_t i = 0; i < clients.size(); i += 2) halved.push_back(clients[i]);
    clients = halved;
  }

  auto topologyFor = [&](int replicas) {
    core::Topology t = core::canonicalTopology(config);
    t.web.replicas = replicas;
    t.db.replicas = dbReplicas;
    t.dbPolicy = dbPolicy;
    return t;
  };

  std::printf("== Extension: cluster scaling (auction, bidding mix, %s) ==\n",
              core::configurationName(config));
  std::printf("(measure %.0fs, ramp-up %.0fs, seed %llu, db×%d %s)\n\n", opts.measureSec,
              opts.rampUpSec, static_cast<unsigned long long>(opts.seed), dbReplicas,
              mw::dbPolicyName(dbPolicy));
  std::fflush(stdout);

  // One flat batch across every (replica count, clients) point: the sweep
  // points are independent, so --jobs parallelism spans the whole grid.
  std::vector<core::ExperimentParams> points;
  for (int replicas : webReplicas) {
    for (int c : clients) {
      auto base = opts.baseParams(spec);
      base.topology = topologyFor(replicas);
      points.push_back(core::pointParams(base, config, c));
    }
  }
  const auto results = core::runMany(points, opts.sweepOptions());

  stats::TextTable table({"web replicas", "clients", "ipm", "mean RT ms", "limited by"});
  std::string csv = "web_replicas,clients,ipm,mean_rt_ms,limiting_tier\n";
  struct Knee {
    int replicas = 0;
    int clients = 0;
    double ipm = 0.0;
    std::string limit;
    std::size_t point = 0;
  };
  std::vector<Knee> knees;
  for (std::size_t ri = 0; ri < webReplicas.size(); ++ri) {
    Knee knee;
    knee.replicas = webReplicas[ri];
    for (std::size_t ci = 0; ci < clients.size(); ++ci) {
      const std::size_t i = ri * clients.size() + ci;
      const auto& r = results[i];
      const std::string limit = limitingTier(r);
      if (r.throughputIpm > knee.ipm) {
        knee.ipm = r.throughputIpm;
        knee.clients = clients[ci];
        knee.limit = limit;
        knee.point = i;
      }
      table.addRow({std::to_string(webReplicas[ri]), std::to_string(clients[ci]),
                    stats::fmt(r.throughputIpm, 0),
                    stats::fmt(r.meanResponseSeconds * 1e3, 0), limit});
      csv += std::to_string(webReplicas[ri]) + "," + std::to_string(clients[ci]) + "," +
             stats::fmt(r.throughputIpm, 0) + "," +
             stats::fmt(r.meanResponseSeconds * 1e3, 0) + "," + limit + "\n";
    }
    knees.push_back(knee);
  }
  std::printf("%s\n", table.str().c_str());
  if (opts.csv) std::printf("%s\n", csv.c_str());

  for (const auto& knee : knees) {
    std::printf("web×%d knee: %.0f ipm at %d clients, limited by %s\n", knee.replicas,
                knee.ipm, knee.clients, knee.limit.c_str());
  }
  std::printf("\nexpected: the single-web knee is web-CPU-bound, so web×2 roughly "
              "doubles the ceiling; by web×4 the limit migrates to another tier "
              "and further web replicas stop paying.\n");
  std::fflush(stdout);

  if (opts.breakdown) {
    for (const auto& knee : knees) {
      auto traced = points[knee.point];
      traced.trace.enabled = true;
      const auto r = core::runExperiment(traced);
      if (r.trace != nullptr) {
        std::string name = std::string(core::configurationName(config)) + " web×" +
                           std::to_string(knee.replicas);
        bench::printBreakdown(name.c_str(), knee.clients, *r.trace);
      }
    }
  }
  return 0;
}
