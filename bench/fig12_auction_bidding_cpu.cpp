/// Figure 12 — auction CPU utilization at peak throughput, bidding mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = auctionBidding();
  spec.id = "Figure 12";
  spec.title = "Auction site CPU utilization at peak, bidding mix";
  spec.paperExpectation =
      "the dynamic-content generator's CPU saturates: web server 100% for "
      "WsPhp/WsServlet, servlet machine for Ws-Servlet; EJB server 99% with servlet "
      "32%, database 17%, web 6%; database at most 62% anywhere";
  return runCpuFigure(spec, argc, argv);
}
