/// Ablation — database per-row scan cost (DESIGN.md design decision 1:
/// execution-derived query costing). Scales the per-row CPU coefficient and
/// shows the bookstore peak move while the front-end-bound auction peak
/// barely reacts — the paper's back-end vs front-end contrast in one table.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf(
      "== Ablation: per-row scan cost (WsPhp-DB; bookstore shopping 700 clients vs "
      "auction bidding 1100 clients) ==\n\n");

  stats::TextTable table({"dbPerRowExaminedUs", "bookstore ipm", "auction ipm"});
  for (double perRow : {2.25, 4.5, 9.0, 18.0}) {
    bench::FigureSpec book;
    book.app = core::App::Bookstore;
    book.mix = 1;
    core::ExperimentParams params = opts.baseParams(book);
    params.config = core::Configuration::WsPhpDb;
    params.clients = 700;
    params.cost.dbPerRowExaminedUs = perRow;
    const auto bookstore = core::runExperiment(params);

    bench::FigureSpec auction;
    auction.app = core::App::Auction;
    auction.mix = 1;
    core::ExperimentParams aParams = opts.baseParams(auction);
    aParams.config = core::Configuration::WsPhpDb;
    aParams.clients = 1100;
    aParams.cost.dbPerRowExaminedUs = perRow;
    const auto auctionR = core::runExperiment(aParams);

    std::fprintf(stderr, "  perRow=%.2f bookstore %.0f auction %.0f\n", perRow,
                 bookstore.throughputIpm, auctionR.throughputIpm);
    table.addRow({stats::fmt(perRow, 2), stats::fmt(bookstore.throughputIpm, 0),
                  stats::fmt(auctionR.throughputIpm, 0)});
  }
  std::printf("%s\nexpected: the database-bound bookstore scales inversely with the "
              "row cost; the auction site, whose bottleneck is the content "
              "generator, is nearly flat.\n",
              table.str().c_str());
  return 0;
}
