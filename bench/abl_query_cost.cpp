/// Ablation — database per-row scan cost (DESIGN.md design decision 1:
/// execution-derived query costing). Scales the per-row CPU coefficient and
/// shows the bookstore peak move while the front-end-bound auction peak
/// barely reacts — the paper's back-end vs front-end contrast in one table.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf(
      "== Ablation: per-row scan cost (WsPhp-DB; bookstore shopping 700 clients vs "
      "auction bidding 1100 clients) ==\n\n");

  stats::TextTable table({"dbPerRowExaminedUs", "bookstore ipm", "auction ipm"});
  const std::vector<double> rowCosts{2.25, 4.5, 9.0, 18.0};
  std::vector<core::ExperimentParams> points;
  for (double perRow : rowCosts) {
    bench::FigureSpec book;
    book.app = core::App::Bookstore;
    book.mix = 1;
    core::ExperimentParams params =
        core::pointParams(opts.baseParams(book), core::Configuration::WsPhpDb, 700);
    params.cost.dbPerRowExaminedUs = perRow;
    points.push_back(params);

    bench::FigureSpec auction;
    auction.app = core::App::Auction;
    auction.mix = 1;
    core::ExperimentParams aParams =
        core::pointParams(opts.baseParams(auction), core::Configuration::WsPhpDb, 1100);
    aParams.cost.dbPerRowExaminedUs = perRow;
    points.push_back(aParams);
  }
  const auto results = core::runMany(points, opts.sweepOptions());
  for (std::size_t i = 0; i < rowCosts.size(); ++i) {
    table.addRow({stats::fmt(rowCosts[i], 2),
                  stats::fmt(results[2 * i].throughputIpm, 0),
                  stats::fmt(results[2 * i + 1].throughputIpm, 0)});
  }
  std::printf("%s\nexpected: the database-bound bookstore scales inversely with the "
              "row cost; the auction site, whose bottleneck is the content "
              "generator, is nearly flat.\n",
              table.str().c_str());
  return 0;
}
