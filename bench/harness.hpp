#pragma once

/// Shared harness for the figure benches: each bench binary regenerates one
/// table/figure from the paper's evaluation section (see DESIGN.md's
/// experiment index). Output is the same series the paper plots, as an
/// aligned text table plus optional CSV.

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace mwsim::bench {

/// Description of one throughput figure (throughput vs. client count, one
/// curve per configuration).
struct FigureSpec {
  const char* id;     // e.g. "Figure 5"
  const char* title;  // e.g. "Online bookstore throughput, shopping mix"
  /// What the paper reports, for side-by-side reading of the output.
  const char* paperExpectation;
  core::App app = core::App::Bookstore;
  int mix = 1;
  std::vector<int> clients;
  /// Client counts probed to locate each configuration's peak (CPU figures).
  std::vector<int> peakCandidates;
  /// Configurations to run (defaults to all six).
  std::vector<core::Configuration> configs = core::allConfigurations();
};

/// Common CLI options for all benches:
///   --measure-sec N   measurement window (default 60)
///   --rampup-sec N    ramp-up (default: the core ExperimentParams default)
///   --seed N
///   --jobs N          worker threads for independent sweep points
///                     (default 1 = sequential; 0 = one per hardware thread).
///                     Output is byte-identical for every jobs value.
///   --quick           halve the sweep points
///   --csv             also emit CSV
///   --full-scale      paper-sized database history tables
///   --breakdown       per-tier latency attribution tables (throughput
///                     figures: at the largest client count; CPU figures:
///                     at each configuration's located peak)
///   --trace-out FILE  Chrome-trace/Perfetto JSON for the first
///                     configuration's traced point (with metrics on, the
///                     stream also carries the sampled counter tracks)
///   --metrics-out FILE  metrics JSON (series + verdict) for the first
///                     configuration's peak point
///   --no-metrics      disable the metrics layer (it is on by default —
///                     observation-only, results are byte-identical)
struct BenchOptions {
  double measureSec = 60;
  /// Single source of truth is ExperimentParams::rampUp; this only exists
  /// so --rampup-sec can override it.
  double rampUpSec = sim::toSeconds(core::ExperimentParams{}.rampUp);
  std::uint64_t seed = 1;
  int jobs = 1;
  bool quick = false;
  bool csv = false;
  bool fullScale = false;
  bool breakdown = false;
  bool noMetrics = false;
  std::string traceOut;
  std::string metricsOut;

  bool tracing() const { return breakdown || !traceOut.empty(); }
  bool metrics() const { return obs::kEnabled && !noMetrics; }

  static BenchOptions parse(int argc, char** argv);
  core::ExperimentParams baseParams(const FigureSpec& spec) const;
  /// SweepOptions carrying --jobs plus a stderr per-point progress printer.
  core::SweepOptions sweepOptions() const;
};

/// Prints the per-tier attribution table for one traced point (the
/// --breakdown output). Used by the figure runners and the table benches.
void printBreakdown(const char* configName, int clients, const trace::Report& report);

/// Prints a scenario run's whole-run trajectory (stats::TimeSeries) as a
/// table: one row per bucket with ok-throughput, errors, shed arrivals and
/// response-time stats. Used by the scenario benches (ext_flash_crowd,
/// ext_failover).
void printTimeSeries(const char* label, const stats::TimeSeries& series);

/// Writes Chrome-trace JSON to `path` (stderr note on success/failure).
/// When `metrics` is non-null, the stream also carries the sampled series
/// as Perfetto counter tracks.
void writeTraceFile(const std::string& path, const trace::Report& report,
                    const obs::MetricsReport* metrics = nullptr);

/// Writes the --metrics-out JSON (series + verdict) to `path`.
void writeMetricsFile(const std::string& path, const obs::MetricsReport& report);

/// Prints one "verdict[<label>]: ..." line for a run's bottleneck verdict;
/// silently does nothing when the run carried no metrics.
void printVerdict(const char* label, int clients, const core::ExperimentResult& result);

/// Runs a throughput-vs-clients figure: one curve per configuration.
int runThroughputFigure(const FigureSpec& spec, int argc, char** argv);

/// Runs a CPU-utilization-at-peak figure: finds each configuration's peak
/// over `peakCandidates` and prints per-machine CPU (and web NIC) at it.
int runCpuFigure(const FigureSpec& spec, int argc, char** argv);

}  // namespace mwsim::bench
