/// Extension — response-time analysis the paper omits.
///
/// The paper reports only throughput and utilization; a practitioner also
/// cares how latency degrades as each architecture saturates. This bench
/// sweeps the auction bidding mix and prints mean/p90 response times per
/// configuration — showing that the architectures' latency cliffs sit at
/// their throughput knees, and that EJB trades latency long before its
/// throughput ceiling.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf("== Extension: response times vs load (auction, bidding mix) ==\n\n");

  const std::vector<core::Configuration> configs{
      core::Configuration::WsPhpDb, core::Configuration::WsServletSepDb,
      core::Configuration::WsServletEjbDb};
  stats::TextTable table({"clients", "config", "ipm", "mean RT ms", "p90 RT ms"});
  const std::vector<int> clientCounts{400, 800, 1200, 1600};
  std::vector<core::ExperimentParams> points;
  for (int clients : clientCounts) {
    for (auto config : configs) {
      points.push_back(core::pointParams(opts.baseParams(spec), config, clients));
    }
  }
  const auto results = core::runMany(points, opts.sweepOptions());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = results[i];
    table.addRow({std::to_string(points[i].clients),
                  core::configurationName(points[i].config),
                  stats::fmt(r.throughputIpm, 0),
                  stats::fmt(r.meanResponseSeconds * 1e3, 0),
                  stats::fmt(r.p90ResponseSeconds * 1e3, 0)});
  }
  std::printf("%s\nexpected: every architecture answers in tens of milliseconds until "
              "its knee, then queueing dominates; EJB's latency departs first (lowest "
              "capacity), PHP next, the dedicated servlet machine last.\n",
              table.str().c_str());
  return 0;
}
