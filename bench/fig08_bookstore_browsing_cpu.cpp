/// Figure 8 — bookstore CPU utilization at peak throughput, browsing mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = bookstoreBrowsing();
  spec.id = "Figure 8";
  spec.title = "Online bookstore CPU utilization at peak, browsing mix";
  spec.paperExpectation = "the database CPU is the bottleneck (~100%) for every configuration";
  return runCpuFigure(spec, argc, argv);
}
