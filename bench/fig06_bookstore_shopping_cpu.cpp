/// Figure 6 — bookstore CPU utilization at peak throughput, shopping mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = bookstoreShopping();
  spec.id = "Figure 6";
  spec.title = "Online bookstore CPU utilization at peak, shopping mix";
  spec.paperExpectation =
      "database CPU is the bottleneck: ~70% for the non-sync configurations "
      "(lock contention), 100% for (sync) and EJB";
  return runCpuFigure(spec, argc, argv);
}
