/// Figure 14 — auction CPU utilization at peak throughput, browsing mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = auctionBrowsing();
  spec.id = "Figure 14";
  spec.title = "Auction site CPU utilization at peak, browsing mix";
  spec.paperExpectation =
      "content-generator CPU binds except for Ws-Servlet(-sync), where the web "
      "server approaches 100% from network traffic (~94 Mb/s on its 100 Mb/s NIC)";
  return runCpuFigure(spec, argc, argv);
}
