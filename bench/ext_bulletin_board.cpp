/// Extension — the bulletin-board benchmark (RUBBoS) the paper skipped.
///
/// §7: "We do not use the third benchmark, the bulletin board, in this study
/// because the Web server CPU is the bottleneck for the bulletin board.
/// Therefore, we expect the results for the bulletin board to be similar to
/// the auction site results." This bench runs the submission mix across the
/// front-end configurations and checks that prediction: PHP above co-located
/// servlets, a dedicated servlet machine best, EJB worst, database CPU low.
#include <cstdio>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec;
  spec.id = "Extension (paper section 7)";
  spec.title = "Bulletin board throughput, submission mix";
  spec.paperExpectation =
      "not measured in the paper; predicted to mirror the auction site because the "
      "web server CPU is the bottleneck";
  spec.app = mwsim::core::App::BulletinBoard;
  spec.mix = 1;
  spec.clients = {300, 600, 900, 1100, 1300, 1600};
  spec.peakCandidates = {900, 1100, 1400};
  const int rc = runThroughputFigure(spec, argc, argv);
  std::printf("\ncheck: if the ordering matches Figure 11 (PHP > co-located servlets; "
              "dedicated servlet machine best; EJB flat and worst), the paper's "
              "section-7 prediction holds.\n");
  return rc;
}
