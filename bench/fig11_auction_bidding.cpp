/// Figure 11 — auction site throughput vs clients, bidding mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = auctionBidding();
  spec.id = "Figure 11";
  spec.title = "Auction site throughput, bidding mix";
  spec.paperExpectation =
      "WsPhp-DB peaks at 9,780 ipm (1,100 clients); WsServlet-DB lower at 7,380; "
      "Ws-Servlet-DB best at 10,440; sync curves coincide with non-sync; EJB "
      "flattens at 4,136 ipm";
  return runThroughputFigure(spec, argc, argv);
}
