/// §5.1 resource observations — online bookstore, shopping mix at peak:
/// memory per machine (paper: ~410 MB on the database, ~70 MB of web-server
/// processes plus the image buffer cache), network traffic (heaviest
/// web<->clients, under 3.5 Mb/s), and lock statistics.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.id = "Table A (paper section 5.1)";
  spec.title = "Online bookstore resource usage at the shopping-mix peak";
  spec.paperExpectation =
      "database memory ~410 MB steady; web server ~70 MB of processes plus buffer "
      "cache; client traffic < 3.5 Mb/s (mostly images); disk and network never the "
      "bottleneck";
  spec.app = core::App::Bookstore;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf("== %s: %s ==\npaper: %s\n\n", spec.id, spec.title, spec.paperExpectation);

  const std::vector<core::Configuration> configs{core::Configuration::WsPhpDb,
                                                 core::Configuration::WsServletSepDb};
  std::vector<core::ExperimentParams> points;
  for (auto config : configs) {
    points.push_back(core::pointParams(opts.baseParams(spec), config, 700));
  }
  const auto results = core::runMany(points, opts.sweepOptions());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = results[i];

    std::printf("-- %s at %d clients: %.0f interactions/min --\n",
                core::configurationName(points[i].config), points[i].clients,
                r.throughputIpm);
    stats::TextTable machines({"machine", "cpu%", "nic Mb/s", "memory MB"});
    for (const auto& u : r.usage) {
      machines.addRow({u.name, stats::fmt(u.cpuUtilization * 100, 1),
                       stats::fmt(u.nicMbps, 2),
                       stats::fmt(static_cast<double>(u.memoryBytes) / 1e6, 0)});
    }
    std::printf("%s", machines.str().c_str());

    const double minutes = opts.measureSec / 60.0;
    stats::TextTable links({"link", "Mb/s", "packets/s", "messages/s"});
    for (const auto& [key, t] : r.traffic) {
      const double seconds = minutes * 60.0;
      links.addRow({key.first + " -> " + key.second,
                    stats::fmt(static_cast<double>(t.bytes) * 8 / seconds / 1e6, 3),
                    stats::fmt(static_cast<double>(t.packets) / seconds, 0),
                    stats::fmt(static_cast<double>(t.messages) / seconds, 0)});
    }
    std::printf("%s", links.str().c_str());
    std::printf("database size: %.0f MB; lock acquisitions: %llu (%llu contended, "
                "%.1f s total wait)\n\n",
                static_cast<double>(r.databaseBytes) / 1e6,
                static_cast<unsigned long long>(r.lockAcquisitions),
                static_cast<unsigned long long>(r.contendedLockAcquisitions),
                r.lockWaitSeconds);
  }
  std::printf("note: traffic rates are averaged over the whole run (ramp included); "
              "the paper reports measurement-phase rates.\n");
  return 0;
}
