#pragma once

/// Figure definitions shared by the throughput/CPU bench pairs. Client
/// sweeps are chosen to straddle every configuration's saturation knee.
///
/// Note on the x-axis: the paper reports peaks at somewhat lower client
/// counts than a closed-loop model with exponential 7 s think time can
/// produce (e.g. 7,380 ipm at 700 clients implies a per-client cycle below
/// the mean think time). Our curves therefore reach the same peak
/// *throughputs* at ~1.3x the paper's client counts (see EXPERIMENTS.md).

#include "bench/harness.hpp"

namespace mwsim::bench {

inline FigureSpec bookstoreShopping() {
  FigureSpec spec;
  spec.app = core::App::Bookstore;
  spec.mix = 1;
  spec.clients = {100, 250, 400, 550, 700, 900};
  spec.peakCandidates = {400, 700, 900};
  return spec;
}

inline FigureSpec bookstoreBrowsing() {
  FigureSpec spec = bookstoreShopping();
  spec.mix = 0;
  return spec;
}

inline FigureSpec bookstoreOrdering() {
  FigureSpec spec = bookstoreShopping();
  spec.mix = 2;
  spec.clients = {100, 300, 500, 700, 900, 1100};
  spec.peakCandidates = {500, 800, 1100};
  return spec;
}

inline FigureSpec auctionBidding() {
  FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;
  spec.clients = {300, 600, 900, 1100, 1300, 1600};
  spec.peakCandidates = {900, 1100, 1400};
  return spec;
}

inline FigureSpec auctionBrowsing() {
  FigureSpec spec = auctionBidding();
  spec.mix = 0;
  spec.clients = {300, 700, 1000, 1300, 1600, 2000};
  spec.peakCandidates = {900, 1300, 1800};
  return spec;
}

}  // namespace mwsim::bench
