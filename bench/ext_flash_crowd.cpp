/// Extension — open-loop flash-crowd experiment. The paper's closed-loop
/// client emulator self-throttles: when the site slows down, so do the
/// clients. A real traffic surge does not — sessions keep arriving at the
/// offered rate regardless of how the site is doing. This bench offers an
/// open-loop Poisson session stream whose rate follows a flash-crowd shape
/// (base rate, then a ramp to surgeMultiplier × base, hold, decay) and
/// sweeps the surge multiplier: below the knee, completed throughput tracks
/// the offered rate; past it, admission control sheds the excess and the
/// site keeps serving at capacity instead of collapsing.
///
/// Extra flags on top of the common harness set:
///   --base-rate R        base session arrivals/sec (default 2)
///   --surge a,b,...      surge multipliers, one run each (default 1,2,4,8)
///   --surge-start T      surge start, seconds from run start (default 90)
///   --ramp-sec D         surge ramp-up duration (default 15)
///   --hold-sec D         time at peak rate (default 60)
///   --decay-sec D        decay back to base (default 30)
///   --max-sessions N     admission cap on active sessions (default 400)
///   --bucket-sec B       time-series bucket width (default 10)
///   --help               print usage and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "obs/analyzer.hpp"
#include "stats/report.hpp"

using namespace mwsim;

namespace {

const char* argValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

std::vector<double> parseDoubleList(const char* text) {
  std::vector<double> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(std::atof(item.c_str()));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "ext_flash_crowd — open-loop surge sweep: shed vs collapse\n\n"
          "usage: ext_flash_crowd [options]\n"
          "  --base-rate R      base session arrivals/sec (default 2)\n"
          "  --surge a,b,...    surge multipliers (default 1,2,4,8)\n"
          "  --surge-start T    surge start time (default 90)\n"
          "  --ramp-sec D       ramp to peak (default 15)\n"
          "  --hold-sec D       hold at peak (default 60)\n"
          "  --decay-sec D      decay to base (default 30)\n"
          "  --max-sessions N   admission cap (default 400)\n"
          "  --bucket-sec B     time-series bucket width (default 10)\n"
          "  --measure-sec N  --rampup-sec N  --seed N  --jobs N\n"
          "  --csv  (see bench/harness.hpp)\n");
      return 0;
    }
  }

  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;  // bidding
  const auto opts = bench::BenchOptions::parse(argc, argv);
  const auto config = core::Configuration::WsPhpDb;

  double baseRate = 2.0;
  if (const char* v = argValue(argc, argv, "--base-rate")) baseRate = std::atof(v);
  std::vector<double> surges{1, 2, 4, 8};
  if (const char* v = argValue(argc, argv, "--surge")) surges = parseDoubleList(v);
  double surgeStart = 90.0;
  if (const char* v = argValue(argc, argv, "--surge-start")) surgeStart = std::atof(v);
  double rampSec = 15.0;
  if (const char* v = argValue(argc, argv, "--ramp-sec")) rampSec = std::atof(v);
  double holdSec = 60.0;
  if (const char* v = argValue(argc, argv, "--hold-sec")) holdSec = std::atof(v);
  double decaySec = 30.0;
  if (const char* v = argValue(argc, argv, "--decay-sec")) decaySec = std::atof(v);
  int maxSessions = 400;
  if (const char* v = argValue(argc, argv, "--max-sessions")) maxSessions = std::atoi(v);
  double bucketSec = 10.0;
  if (const char* v = argValue(argc, argv, "--bucket-sec")) bucketSec = std::atof(v);

  std::printf("== Extension: open-loop flash crowd (auction, bidding mix, %s) ==\n",
              core::configurationName(config));
  std::printf("(base %.1f sessions/s, surge at t=%.0fs ramp %.0fs hold %.0fs decay "
              "%.0fs, cap %d sessions, measure %.0fs, ramp-up %.0fs, seed %llu)\n\n",
              baseRate, surgeStart, rampSec, holdSec, decaySec, maxSessions,
              opts.measureSec, opts.rampUpSec,
              static_cast<unsigned long long>(opts.seed));
  std::fflush(stdout);

  std::vector<core::ExperimentParams> points;
  for (double surge : surges) {
    auto base = opts.baseParams(spec);
    base.scenario.mode = scenario::ArrivalMode::OpenLoop;
    base.scenario.arrivals = scenario::RateSchedule::flashCrowd(
        baseRate, surge, surgeStart, rampSec, holdSec, decaySec);
    base.scenario.maxInFlightSessions = maxSessions;
    base.scenario.seriesInterval = sim::fromSeconds(bucketSec);
    points.push_back(core::pointParams(base, config, /*clients=*/0));
  }
  const auto results = core::runMany(points, opts.sweepOptions());

  stats::TextTable table({"surge ×", "peak rate/s", "ipm", "arrivals", "shed",
                          "shed %", "errors", "mean RT ms", "p90 RT ms"});
  std::string csv =
      "surge,peak_rate,ipm,arrivals,shed,shed_pct,errors,mean_rt_ms,p90_rt_ms\n";
  for (std::size_t i = 0; i < surges.size(); ++i) {
    const auto& r = results[i];
    const double shedPct =
        r.openLoopArrivals == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.shedSessions) /
                  static_cast<double>(r.openLoopArrivals);
    table.addRow({stats::fmt(surges[i], 1), stats::fmt(baseRate * surges[i], 1),
                  stats::fmt(r.throughputIpm, 0), std::to_string(r.openLoopArrivals),
                  std::to_string(r.shedSessions), stats::fmt(shedPct, 1),
                  std::to_string(r.webErrors),
                  stats::fmt(r.meanResponseSeconds * 1e3, 0),
                  stats::fmt(r.p90ResponseSeconds * 1e3, 0)});
    csv += stats::fmt(surges[i], 1) + "," + stats::fmt(baseRate * surges[i], 1) + "," +
           stats::fmt(r.throughputIpm, 0) + "," + std::to_string(r.openLoopArrivals) +
           "," + std::to_string(r.shedSessions) + "," + stats::fmt(shedPct, 1) + "," +
           std::to_string(r.webErrors) + "," +
           stats::fmt(r.meanResponseSeconds * 1e3, 0) + "," +
           stats::fmt(r.p90ResponseSeconds * 1e3, 0) + "\n";
  }
  std::printf("%s\n", table.str().c_str());
  if (opts.csv) std::printf("%s\n", csv.c_str());

  for (std::size_t i = 0; i < surges.size(); ++i) {
    if (results[i].series) {
      std::string label = "surge ×" + stats::fmt(surges[i], 1);
      bench::printTimeSeries(label.c_str(), *results[i].series);
    }
  }

  // Surge-window verdicts: past the knee the verdict's note attributes the
  // completed-throughput plateau to admission shedding, not just the
  // saturated resource.
  std::printf("\nsurge-window verdicts:\n");
  for (std::size_t i = 0; i < surges.size(); ++i) {
    if (!results[i].metrics) continue;
    const obs::Verdict v = obs::analyze(
        *results[i].metrics, nullptr, sim::fromSeconds(surgeStart),
        sim::fromSeconds(surgeStart + rampSec + holdSec + decaySec));
    std::printf("  verdict[surge ×%s]: %s\n", stats::fmt(surges[i], 1).c_str(),
                v.oneLine().c_str());
  }
  std::fflush(stdout);

  std::printf("\nexpected: at low surge, throughput tracks the offered rate and "
              "nothing sheds; past the knee the admission cap sheds the excess "
              "while completed throughput plateaus at capacity (response times "
              "bounded by the cap) — degradation by refusal, not collapse.\n");
  std::fflush(stdout);
  return 0;
}
