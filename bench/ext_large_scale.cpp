/// Extension — kernel scaling sweep toward the million-client goal.
///
/// The paper's experiments stop near the capacity knee of one machine
/// (hundreds of emulated browsers); the roadmap's north star is simulating
/// the *same* closed-loop population at million-client scale. This bench
/// measures the simulation kernel itself on a macro-shaped workload
/// (TPC-W-style think times feeding a pooled, processor-shared service
/// tier, the same shape as BM_ManyClients) while sweeping the client count
/// toward the memory/throughput wall, reporting sustained events/sec and
/// peak RSS at each population.
///
/// Flags:
///   --clients a,b,...   populations to sweep (default 1000,10000,100000,1000000)
///   --sim-seconds S     measured window of simulated time per point (default 5)
///   --warmup-seconds S  simulated warmup before measuring (default 10)
///   --seed N            simulation seed (default 1)
///   --json FILE         also append machine-readable rows to FILE
///   --help              print usage and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/resource.hpp"
#include "sim/sim.hpp"

using namespace mwsim;
using namespace mwsim::sim;

namespace {

const char* argValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

std::vector<long> parseLongList(const char* text) {
  std::vector<long> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(std::atol(item.c_str()));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

/// Peak resident set size in MiB, from /proc/self/status (Linux).
double peakRssMib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  long kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kib) == 1) break;
  }
  std::fclose(f);
  return static_cast<double>(kib) / 1024.0;
}

/// One closed-loop client: exponential think, acquire a pool slot, then a
/// processor-shared CPU burst — the event mix (timer + queue + completion)
/// of the paper's emulated-browser workloads, stripped of app logic.
Task<> client(Simulation& s, CpuResource& cpu, Resource& pool, Rng& rng) {
  for (;;) {
    co_await s.delay(fromSeconds(rng.exponential(7.0)));
    ResourceHold hold = co_await pool.acquire();
    co_await cpu.consume(fromMicros(rng.uniformReal(200.0, 5000.0)));
  }
}

struct Point {
  long clients;
  std::uint64_t events;
  double wallSeconds;
  double eventsPerSec;
  double rssMib;
};

Point runPoint(long clients, double warmupSeconds, double simSeconds,
               std::uint64_t seed) {
  Simulation sim(seed);
  // Service capacity scales with the population so the event mix keeps the
  // same shape at every size instead of collapsing into pure think timers.
  const int cores = static_cast<int>(clients / 128 < 2 ? 2 : clients / 128);
  const int poolCap = static_cast<int>(clients / 64 < 16 ? 16 : clients / 64);
  CpuResource cpu(sim, cores);
  Resource pool(sim, poolCap, "pool", trace::Category::CpuQueue);
  Rng rng(seed + 41);
  for (long i = 0; i < clients; ++i) sim.spawn(client(sim, cpu, pool, rng));

  sim.runUntil(fromSeconds(warmupSeconds));
  const std::uint64_t before = sim.eventsProcessed();
  const auto t0 = std::chrono::steady_clock::now();
  sim.runUntil(fromSeconds(warmupSeconds + simSeconds));
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t events = sim.eventsProcessed() - before;
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  Point p;
  p.clients = clients;
  p.events = events;
  p.wallSeconds = wall;
  p.eventsPerSec = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  p.rssMib = peakRssMib();
  sim.shutdown();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  if (argValue(argc, argv, "--help") != nullptr ||
      (argc > 1 && std::strcmp(argv[1], "--help") == 0)) {
    std::printf(
        "ext_large_scale: kernel events/sec and RSS vs client population\n"
        "  --clients a,b,...  populations (default 1000,10000,100000,1000000)\n"
        "  --sim-seconds S    measured simulated window (default 5)\n"
        "  --warmup-seconds S simulated warmup (default 10)\n"
        "  --seed N           simulation seed (default 1)\n"
        "  --json FILE        append JSON rows to FILE\n");
    return 0;
  }
  std::vector<long> clients = {1000, 10000, 100000, 1000000};
  if (const char* v = argValue(argc, argv, "--clients")) clients = parseLongList(v);
  double simSeconds = 5.0;
  if (const char* v = argValue(argc, argv, "--sim-seconds")) simSeconds = std::atof(v);
  double warmupSeconds = 10.0;
  if (const char* v = argValue(argc, argv, "--warmup-seconds")) warmupSeconds = std::atof(v);
  std::uint64_t seed = 1;
  if (const char* v = argValue(argc, argv, "--seed")) seed = std::strtoull(v, nullptr, 10);
  const char* jsonPath = argValue(argc, argv, "--json");

  std::printf("# kernel large-scale sweep: seed=%llu warmup=%gs window=%gs\n",
              static_cast<unsigned long long>(seed), warmupSeconds, simSeconds);
  std::printf("%10s %14s %10s %14s %10s\n", "clients", "events", "wall_s",
              "events_per_s", "rss_mib");
  std::vector<Point> points;
  for (long n : clients) {
    const Point p = runPoint(n, warmupSeconds, simSeconds, seed);
    points.push_back(p);
    std::printf("%10ld %14llu %10.3f %14.0f %10.1f\n", p.clients,
                static_cast<unsigned long long>(p.events), p.wallSeconds,
                p.eventsPerSec, p.rssMib);
    std::fflush(stdout);
  }

  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", jsonPath);
      return 1;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(f,
                   "  {\"clients\": %ld, \"events\": %llu, \"wall_s\": %.3f, "
                   "\"events_per_s\": %.0f, \"rss_mib\": %.1f}%s\n",
                   p.clients, static_cast<unsigned long long>(p.events),
                   p.wallSeconds, p.eventsPerSec, p.rssMib,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }
  return 0;
}
