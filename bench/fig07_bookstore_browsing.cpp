/// Figure 7 — online bookstore throughput vs clients, browsing mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = bookstoreBrowsing();
  spec.id = "Figure 7";
  spec.title = "Online bookstore throughput, browsing mix";
  spec.paperExpectation =
      "lower than the shopping mix (read queries are more complex); all "
      "configurations equal except EJB, which is much lower; no benefit from sync "
      "locking (no lock contention)";
  return runThroughputFigure(spec, argc, argv);
}
