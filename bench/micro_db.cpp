/// Microbenchmarks for the relational engine substrate (google-benchmark):
/// real (wall-clock) cost of the operations the simulation executes, to
/// confirm the simulator itself is not the bottleneck of the benches.
#include <benchmark/benchmark.h>

#include "apps/bookstore/schema.hpp"
#include "db/executor.hpp"
#include "db/parser.hpp"

namespace {

using namespace mwsim;

struct Fixture {
  db::Database database;
  db::Executor exec{database};

  Fixture() {
    apps::bookstore::Scale scale;
    scale.scale = 0.02;
    apps::bookstore::createSchema(database);
    sim::Rng rng(1);
    apps::bookstore::populate(database, scale, rng);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_ParseSelect(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::parseSql("SELECT i_id, i_title FROM items WHERE i_subject = ? "
                     "ORDER BY i_pub_date DESC LIMIT 50"));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_PkLookup(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt = db::parseSql("SELECT * FROM items WHERE i_id = ?");
  std::int64_t id = 1;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(id)};
    benchmark::DoNotOptimize(f.exec.execute(*stmt, params));
    id = id % 10'000 + 1;
  }
}
BENCHMARK(BM_PkLookup);

void BM_SecondaryIndexLookup(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt = db::parseSql(
      "SELECT i_id, i_title FROM items WHERE i_subject = ? ORDER BY i_pub_date DESC "
      "LIMIT 50");
  std::int64_t subject = 0;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(subject)};
    benchmark::DoNotOptimize(f.exec.execute(*stmt, params));
    subject = (subject + 1) % 24;
  }
}
BENCHMARK(BM_SecondaryIndexLookup);

void BM_FullScanLike(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt =
      db::parseSql("SELECT i_id FROM items WHERE i_title LIKE '%abc%' LIMIT 50");
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.exec.execute(*stmt));
  }
}
BENCHMARK(BM_FullScanLike);

void BM_ThreeWayJoinGroupBy(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt = db::parseSql(
      "SELECT ol.ol_i_id AS i_id, SUM(ol.ol_qty) AS total FROM order_line ol "
      "JOIN items i ON ol.ol_i_id = i.i_id JOIN authors a ON i.i_a_id = a.a_id "
      "WHERE ol.ol_o_id >= ? GROUP BY ol.ol_i_id ORDER BY total DESC LIMIT 50");
  const std::int64_t horizon =
      static_cast<std::int64_t>(f.database.table("orders").size()) - 500;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(horizon)};
    benchmark::DoNotOptimize(f.exec.execute(*stmt, params));
  }
}
BENCHMARK(BM_ThreeWayJoinGroupBy);

void BM_PlannedThreeWayJoinGroupBy(benchmark::State& state) {
  auto& f = fixture();
  const db::PlannedStatement stmt(db::parseSql(
      "SELECT ol.ol_i_id AS i_id, SUM(ol.ol_qty) AS total FROM order_line ol "
      "JOIN items i ON ol.ol_i_id = i.i_id JOIN authors a ON i.i_a_id = a.a_id "
      "WHERE ol.ol_o_id >= ? GROUP BY ol.ol_i_id ORDER BY total DESC LIMIT 50"));
  const std::int64_t horizon =
      static_cast<std::int64_t>(f.database.table("orders").size()) - 500;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(horizon)};
    benchmark::DoNotOptimize(f.exec.execute(stmt, params));
  }
}
BENCHMARK(BM_PlannedThreeWayJoinGroupBy);

void BM_UpdateByPk(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt =
      db::parseSql("UPDATE items SET i_stock = i_stock - 1 WHERE i_id = ?");
  std::int64_t id = 1;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(id)};
    benchmark::DoNotOptimize(f.exec.execute(*stmt, params));
    id = id % 10'000 + 1;
  }
}
BENCHMARK(BM_UpdateByPk);

void BM_AggregateFastPath(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt = db::parseSql("SELECT MAX(o_id) AS m FROM orders");
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.exec.execute(*stmt));
  }
}
BENCHMARK(BM_AggregateFastPath);

// --- planned-statement variants ---
//
// The ad-hoc benchmarks above rebuild the query plan on every execution
// (name resolution, index selection, join ordering). These run the same
// statements through a PlannedStatement, the way mw::StatementCache serves
// the simulated middleware: the plan is built once and re-executed with
// fresh parameter bindings. The spread between each pair is what plan
// caching buys on the repeated-statement hot path.

void BM_BuildPlan(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt = db::parseSql(
      "SELECT i_id, i_title FROM items WHERE i_subject = ? "
      "ORDER BY i_pub_date DESC LIMIT 50");
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::buildPlan(*stmt, f.database));
  }
}
BENCHMARK(BM_BuildPlan);

void BM_PlannedPkLookup(benchmark::State& state) {
  auto& f = fixture();
  const db::PlannedStatement stmt(db::parseSql("SELECT * FROM items WHERE i_id = ?"));
  std::int64_t id = 1;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(id)};
    benchmark::DoNotOptimize(f.exec.execute(stmt, params));
    id = id % 10'000 + 1;
  }
}
BENCHMARK(BM_PlannedPkLookup);

void BM_PlannedSecondaryIndexLookup(benchmark::State& state) {
  auto& f = fixture();
  const db::PlannedStatement stmt(db::parseSql(
      "SELECT i_id, i_title FROM items WHERE i_subject = ? ORDER BY i_pub_date DESC "
      "LIMIT 50"));
  std::int64_t subject = 0;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(subject)};
    benchmark::DoNotOptimize(f.exec.execute(stmt, params));
    subject = (subject + 1) % 24;
  }
}
BENCHMARK(BM_PlannedSecondaryIndexLookup);

void BM_PlannedOrderedIndexLimit(benchmark::State& state) {
  // ORDER BY on an indexed column with LIMIT: the planner elides the sort
  // and walks the index, stopping after OFFSET+LIMIT rows.
  auto& f = fixture();
  const db::PlannedStatement stmt(db::parseSql(
      "SELECT i_id, i_title FROM items ORDER BY i_pub_date DESC LIMIT 50"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.exec.execute(stmt));
  }
}
BENCHMARK(BM_PlannedOrderedIndexLimit);

void BM_PlannedUpdateByPk(benchmark::State& state) {
  auto& f = fixture();
  const db::PlannedStatement stmt(
      db::parseSql("UPDATE items SET i_stock = i_stock - 1 WHERE i_id = ?"));
  std::int64_t id = 1;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(id)};
    benchmark::DoNotOptimize(f.exec.execute(stmt, params));
    id = id % 10'000 + 1;
  }
}
BENCHMARK(BM_PlannedUpdateByPk);

void BM_PlannedAggregateFastPath(benchmark::State& state) {
  auto& f = fixture();
  const db::PlannedStatement stmt(db::parseSql("SELECT MAX(o_id) AS m FROM orders"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.exec.execute(stmt));
  }
}
BENCHMARK(BM_PlannedAggregateFastPath);

// The insert benchmarks mutate the fixture (order_line grows by one row per
// iteration), so they run last: every read benchmark above — ad hoc and
// planned alike — measures against identical data.
void BM_InsertOrderLine(benchmark::State& state) {
  auto& f = fixture();
  const auto stmt = db::parseSql(
      "INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty, ol_discount) VALUES "
      "(?, ?, ?, ?)");
  std::int64_t o = 1;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(o), db::Value(o % 10'000 + 1), db::Value(1),
                                db::Value(0.0)};
    benchmark::DoNotOptimize(f.exec.execute(*stmt, params));
    ++o;
  }
}
BENCHMARK(BM_InsertOrderLine);

void BM_PlannedInsertOrderLine(benchmark::State& state) {
  auto& f = fixture();
  const db::PlannedStatement stmt(db::parseSql(
      "INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty, ol_discount) VALUES "
      "(?, ?, ?, ?)"));
  std::int64_t o = 1;
  for (auto _ : state) {
    const db::Value params[] = {db::Value(o), db::Value(o % 10'000 + 1), db::Value(1),
                                db::Value(0.0)};
    benchmark::DoNotOptimize(f.exec.execute(stmt, params));
    ++o;
  }
}
BENCHMARK(BM_PlannedInsertOrderLine);

}  // namespace

BENCHMARK_MAIN();
