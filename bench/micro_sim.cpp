/// Microbenchmarks for the discrete-event kernel (google-benchmark):
/// events/second and coroutine round-trip costs bound how much simulated
/// traffic the figure benches can push per wall-clock second.
#include <benchmark/benchmark.h>

#include "obs/metrics.hpp"
#include "sim/sim.hpp"
#include "trace/scope.hpp"
#include "trace/span.hpp"

namespace {

using namespace mwsim::sim;

void BM_ScheduleDispatch(benchmark::State& state) {
  Simulation sim;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    sim.schedule(kMicrosecond, [&] { ++counter; });
    sim.run();
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_ScheduleDispatch);

void BM_CoroutineDelayRoundTrip(benchmark::State& state) {
  Simulation sim;
  // One long-lived process that sleeps in a loop; each iteration = one
  // suspend + event + resume.
  struct Driver {
    static Task<> loop(Simulation& s, std::uint64_t& n) {
      for (;;) {
        co_await s.delay(kMicrosecond);
        ++n;
      }
    }
  };
  std::uint64_t iterations = 0;
  sim.spawn(Driver::loop(sim, iterations));
  SimTime t = 0;
  for (auto _ : state) {
    t += kMicrosecond;
    sim.runUntil(t);
  }
  benchmark::DoNotOptimize(iterations);
  sim.shutdown();
}
BENCHMARK(BM_CoroutineDelayRoundTrip);

void BM_CpuProcessorSharing(benchmark::State& state) {
  Simulation sim;
  CpuResource cpu(sim, 1);
  struct Driver {
    static Task<> burn(Simulation&, CpuResource& c) {
      for (;;) {
        co_await c.consume(10 * kMicrosecond);
      }
    }
  };
  for (int i = 0; i < 8; ++i) sim.spawn(Driver::burn(sim, cpu));
  SimTime t = 0;
  for (auto _ : state) {
    t += kMillisecond;
    sim.runUntil(t);
  }
  benchmark::DoNotOptimize(cpu.jobsCompleted());
  sim.shutdown();
}
BENCHMARK(BM_CpuProcessorSharing);

void BM_ResourceAcquireRelease(benchmark::State& state) {
  Simulation sim;
  Resource res(sim, 4);
  struct Driver {
    static Task<> cycle(Simulation& s, Resource& r) {
      for (;;) {
        ResourceHold hold = co_await r.acquire();
        co_await s.delay(kMicrosecond);
      }
    }
  };
  for (int i = 0; i < 16; ++i) sim.spawn(Driver::cycle(sim, res));
  SimTime t = 0;
  for (auto _ : state) {
    t += 100 * kMicrosecond;
    sim.runUntil(t);
  }
  benchmark::DoNotOptimize(res.acquisitions());
  sim.shutdown();
}
BENCHMARK(BM_ResourceAcquireRelease);

void BM_RwLockReaderChurn(benchmark::State& state) {
  Simulation sim;
  RwLock lock(sim);
  struct Driver {
    static Task<> read(Simulation& s, RwLock& l) {
      for (;;) {
        LockHold h = co_await l.lockRead();
        co_await s.delay(kMicrosecond);
      }
    }
    static Task<> write(Simulation& s, RwLock& l) {
      for (;;) {
        co_await s.delay(20 * kMicrosecond);
        LockHold h = co_await l.lockWrite();
        co_await s.delay(2 * kMicrosecond);
      }
    }
  };
  for (int i = 0; i < 8; ++i) sim.spawn(Driver::read(sim, lock));
  sim.spawn(Driver::write(sim, lock));
  SimTime t = 0;
  for (auto _ : state) {
    t += 100 * kMicrosecond;
    sim.runUntil(t);
  }
  benchmark::DoNotOptimize(lock.readAcquisitions());
  sim.shutdown();
}
BENCHMARK(BM_RwLockReaderChurn);

void BM_ManyClients(benchmark::State& state) {
  // Macro-shaped kernel benchmark: a closed-loop population the size of a
  // figure-bench point (and beyond), where most clients are in think time
  // and a bounded set is in flight through a pool + processor-sharing CPU.
  // This is the event mix the figure benches and cluster sweeps put on the
  // kernel, so events/sec here bounds how much simulated traffic one
  // wall-clock second can carry.
  const int clients = static_cast<int>(state.range(0));
  Simulation sim;
  CpuResource cpu(sim, 8);
  Resource pool(sim, 128, "pool", mwsim::trace::Category::CpuQueue);
  struct Driver {
    static Task<> client(Simulation& s, CpuResource& c, Resource& p, Rng& rng) {
      for (;;) {
        co_await s.delay(fromSeconds(rng.exponential(7.0)));  // think time
        ResourceHold hold = co_await p.acquire();
        co_await c.consume(fromMicros(rng.uniformReal(200.0, 5000.0)));
      }
    }
  };
  Rng rng(42);
  for (int i = 0; i < clients; ++i) sim.spawn(Driver::client(sim, cpu, pool, rng));
  sim.runUntil(10 * kSecond);  // spread the population across its think phase
  const std::uint64_t before = sim.eventsProcessed();
  SimTime t = sim.now();
  for (auto _ : state) {
    t += 50 * kMillisecond;
    sim.runUntil(t);
  }
  const auto events = static_cast<double>(sim.eventsProcessed() - before);
  state.counters["events/s"] = benchmark::Counter(events, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  sim.shutdown();
}
BENCHMARK(BM_ManyClients)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_TracedDelayRoundTrip(benchmark::State& state) {
  // BM_CoroutineDelayRoundTrip with a span open across every suspension:
  // measures the per-event cost of the tracing hooks when a request is
  // actually traced (span capture at suspend, category add, restore at
  // dispatch). Under -DMWSIM_TRACING=OFF this collapses to the untraced
  // benchmark, so comparing the two builds isolates the hook cost.
  Simulation sim;
  mwsim::trace::Trace trace("bench", 0);
  struct Driver {
    static Task<> loop(Simulation& s, mwsim::trace::Trace& tr, std::uint64_t& n) {
      mwsim::trace::SpanScope span(s, &tr, "bench");
      for (;;) {
        co_await s.delay(kMicrosecond);
        ++n;
      }
    }
  };
  std::uint64_t iterations = 0;
  sim.spawn(Driver::loop(sim, trace, iterations));
  SimTime t = 0;
  for (auto _ : state) {
    t += kMicrosecond;
    sim.runUntil(t);
  }
  benchmark::DoNotOptimize(iterations);
  sim.shutdown();
}
BENCHMARK(BM_TracedDelayRoundTrip);

void BM_MetricsCpuProcessorSharing(benchmark::State& state) {
  // BM_CpuProcessorSharing with a metrics registry attached but never
  // sampled: measures the per-dispatch cost of the always-on Little's-law
  // accumulators plus the hook-site null checks. Under -DMWSIM_METRICS=OFF
  // this collapses to the plain benchmark, so comparing the two builds
  // isolates the metrics hook cost (the CI metrics-overhead gate compares
  // the *other* benchmarks across builds instead — this one exists to see
  // the hook cost directly rather than bound it).
  Simulation sim;
  mwsim::obs::MetricsRegistry registry;
  sim.setMetrics(&registry);
  CpuResource cpu(sim, 1);
  registry.addUtilizationProbe("cpu", mwsim::obs::ResourceKind::Cpu, 1.0,
                               [&cpu] { return cpu.busyCoreSeconds(); });
  struct Driver {
    static Task<> burn(Simulation&, CpuResource& c) {
      for (;;) {
        co_await c.consume(10 * kMicrosecond);
      }
    }
  };
  for (int i = 0; i < 8; ++i) sim.spawn(Driver::burn(sim, cpu));
  SimTime t = 0;
  for (auto _ : state) {
    t += kMillisecond;
    sim.runUntil(t);
  }
  benchmark::DoNotOptimize(cpu.jobsCompleted());
  sim.setMetrics(nullptr);
  sim.shutdown();
}
BENCHMARK(BM_MetricsCpuProcessorSharing);

}  // namespace

BENCHMARK_MAIN();
