/// Figure 13 — auction site throughput vs clients, browsing mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = auctionBrowsing();
  spec.id = "Figure 13";
  spec.title = "Auction site throughput, browsing mix";
  spec.paperExpectation =
      "same trends as bidding: PHP ~25% above co-located servlets; dedicated "
      "servlet machine best (12,000 ipm); sync identical to non-sync; EJB lowest";
  return runThroughputFigure(spec, argc, argv);
}
