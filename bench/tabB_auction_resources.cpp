/// §6.1 resource observations — auction site, bidding mix at peak: the EJB
/// configuration exchanges ~2,000 small packets/s with the database
/// (~0.5 Mb/s); servlet<->database traffic ~1.8 Mb/s; memory ~110/95/390/190
/// MB on web/servlet/db/EJB.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.id = "Table B (paper section 6.1)";
  spec.title = "Auction site resource usage at the bidding-mix peak";
  spec.paperExpectation =
      "EJB server <-> database: ~2,000 packets/s of single-value reads/updates at "
      "only ~0.5 Mb/s; servlet <-> database ~1.8 Mb/s; no disk/memory bottleneck";
  spec.app = core::App::Auction;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf("== %s: %s ==\npaper: %s\n\n", spec.id, spec.title, spec.paperExpectation);

  struct Run {
    core::Configuration config;
    int clients;
  };
  const std::vector<Run> runs{Run{core::Configuration::WsServletSepDb, 1300},
                              Run{core::Configuration::WsServletEjbDb, 900}};
  std::vector<core::ExperimentParams> points;
  for (const Run& run : runs) {
    points.push_back(core::pointParams(opts.baseParams(spec), run.config, run.clients));
  }
  const auto results = core::runMany(points, opts.sweepOptions());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = results[i];

    std::printf("-- %s at %d clients: %.0f interactions/min --\n",
                core::configurationName(points[i].config), points[i].clients,
                r.throughputIpm);
    stats::TextTable machines({"machine", "cpu%", "nic Mb/s", "memory MB"});
    for (const auto& u : r.usage) {
      machines.addRow({u.name, stats::fmt(u.cpuUtilization * 100, 1),
                       stats::fmt(u.nicMbps, 2),
                       stats::fmt(static_cast<double>(u.memoryBytes) / 1e6, 0)});
    }
    std::printf("%s", machines.str().c_str());

    const double seconds = opts.measureSec + opts.rampUpSec + 5;
    stats::TextTable links({"link", "Mb/s", "packets/s"});
    for (const auto& [key, t] : r.traffic) {
      links.addRow({key.first + " -> " + key.second,
                    stats::fmt(static_cast<double>(t.bytes) * 8 / seconds / 1e6, 3),
                    stats::fmt(static_cast<double>(t.packets) / seconds, 0)});
    }
    std::printf("%s\n", links.str().c_str());
  }
  return 0;
}
