/// Ablation — JDBC driver cost (DESIGN.md: type 4 interpreted driver vs
/// PHP's native driver). Sweeps the per-query JDBC cost and reports the
/// PHP : co-located-servlet peak ratio, the paper's §6.1 explanation for
/// the 33% bidding-mix gap.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf(
      "== Ablation: type-4 JDBC per-query cost (auction, bidding mix, 1100 clients) ==\n\n");

  core::ExperimentParams params = opts.baseParams(spec);
  params.clients = 1100;
  params.config = core::Configuration::WsPhpDb;
  const auto php = core::runExperiment(params);
  std::printf("WsPhp-DB baseline (native driver): %.0f ipm\n\n", php.throughputIpm);

  stats::TextTable table({"jdbcPerQueryUs", "WsServlet-DB ipm", "PHP/servlet ratio"});
  for (double jdbc : {90.0, 280.0, 560.0, 1120.0}) {
    params.config = core::Configuration::WsServletDb;
    params.cost.jdbcPerQueryUs = jdbc;
    const auto servlet = core::runExperiment(params);
    std::fprintf(stderr, "  jdbc=%.0f servlet %.0f\n", jdbc, servlet.throughputIpm);
    table.addRow({stats::fmt(jdbc, 0), stats::fmt(servlet.throughputIpm, 0),
                  stats::fmt(php.throughputIpm / servlet.throughputIpm, 2)});
  }
  std::printf("%s\nexpected: the ratio crosses the paper's ~1.33 near the calibrated "
              "per-query cost; at native-driver cost the gap shrinks toward the "
              "container overhead alone.\n",
              table.str().c_str());
  return 0;
}
