/// Ablation — JDBC driver cost (DESIGN.md: type 4 interpreted driver vs
/// PHP's native driver). Sweeps the per-query JDBC cost and reports the
/// PHP : co-located-servlet peak ratio, the paper's §6.1 explanation for
/// the 33% bidding-mix gap.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf(
      "== Ablation: type-4 JDBC per-query cost (auction, bidding mix, 1100 clients) ==\n\n");

  const std::vector<double> jdbcCosts{90.0, 280.0, 560.0, 1120.0};
  std::vector<core::ExperimentParams> points;
  points.push_back(
      core::pointParams(opts.baseParams(spec), core::Configuration::WsPhpDb, 1100));
  for (double jdbc : jdbcCosts) {
    core::ExperimentParams params =
        core::pointParams(opts.baseParams(spec), core::Configuration::WsServletDb, 1100);
    params.cost.jdbcPerQueryUs = jdbc;
    points.push_back(params);
  }
  const auto results = core::runMany(points, opts.sweepOptions());

  const auto& php = results[0];
  std::printf("WsPhp-DB baseline (native driver): %.0f ipm\n\n", php.throughputIpm);

  stats::TextTable table({"jdbcPerQueryUs", "WsServlet-DB ipm", "PHP/servlet ratio"});
  for (std::size_t i = 0; i < jdbcCosts.size(); ++i) {
    const auto& servlet = results[i + 1];
    table.addRow({stats::fmt(jdbcCosts[i], 0), stats::fmt(servlet.throughputIpm, 0),
                  stats::fmt(php.throughputIpm / servlet.throughputIpm, 2)});
  }
  std::printf("%s\nexpected: the ratio crosses the paper's ~1.33 near the calibrated "
              "per-query cost; at native-driver cost the gap shrinks toward the "
              "container overhead alone.\n",
              table.str().c_str());
  return 0;
}
