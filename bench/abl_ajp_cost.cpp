/// Ablation — AJP relay cost (DESIGN.md design decision 4).
///
/// Sweeps the per-byte cost of relaying dynamic content between the web
/// server and the servlet engine; shows how the IPC overhead the paper
/// profiles in §6.1 drives the PHP-vs-co-located-servlet gap, and that a
/// dedicated servlet machine is insulated from the web-side half of it.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf("== Ablation: AJP per-byte relay cost (auction, bidding mix, 1100 clients) ==\n\n");

  stats::TextTable table({"ajpPerByteUs", "WsPhp-DB", "WsServlet-DB", "Ws-Servlet-DB"});
  const std::vector<double> ajpCosts{0.0, 0.03, 0.10, 0.30};
  const std::vector<core::Configuration> configs{core::Configuration::WsPhpDb,
                                                 core::Configuration::WsServletDb,
                                                 core::Configuration::WsServletSepDb};
  std::vector<core::ExperimentParams> points;
  for (double ajp : ajpCosts) {
    for (auto config : configs) {
      core::ExperimentParams params =
          core::pointParams(opts.baseParams(spec), config, 1100);
      params.cost.ajpPerByteUs = ajp;
      points.push_back(params);
    }
  }
  const auto results = core::runMany(points, opts.sweepOptions());
  for (std::size_t a = 0; a < ajpCosts.size(); ++a) {
    std::vector<std::string> row{stats::fmt(ajpCosts[a], 2)};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      row.push_back(stats::fmt(results[a * configs.size() + c].throughputIpm, 0));
    }
    table.addRow(row);
  }
  std::printf("%s\nexpected: PHP is insensitive; the co-located servlet configuration "
              "degrades fastest (pays the relay on the bottleneck machine, twice).\n",
              table.str().c_str());
  return 0;
}
