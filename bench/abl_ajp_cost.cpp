/// Ablation — AJP relay cost (DESIGN.md design decision 4).
///
/// Sweeps the per-byte cost of relaying dynamic content between the web
/// server and the servlet engine; shows how the IPC overhead the paper
/// profiles in §6.1 drives the PHP-vs-co-located-servlet gap, and that a
/// dedicated servlet machine is insulated from the web-side half of it.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf("== Ablation: AJP per-byte relay cost (auction, bidding mix, 1100 clients) ==\n\n");

  stats::TextTable table({"ajpPerByteUs", "WsPhp-DB", "WsServlet-DB", "Ws-Servlet-DB"});
  for (double ajp : {0.0, 0.03, 0.10, 0.30}) {
    std::vector<std::string> row{stats::fmt(ajp, 2)};
    for (auto config : {core::Configuration::WsPhpDb, core::Configuration::WsServletDb,
                        core::Configuration::WsServletSepDb}) {
      core::ExperimentParams params = opts.baseParams(spec);
      params.config = config;
      params.clients = 1100;
      params.cost.ajpPerByteUs = ajp;
      const auto r = core::runExperiment(params);
      row.push_back(stats::fmt(r.throughputIpm, 0));
      std::fprintf(stderr, "  ajp=%.2f %s: %.0f ipm\n", ajp,
                   core::configurationName(config), r.throughputIpm);
    }
    table.addRow(row);
  }
  std::printf("%s\nexpected: PHP is insensitive; the co-located servlet configuration "
              "degrades fastest (pays the relay on the bottleneck machine, twice).\n",
              table.str().c_str());
  return 0;
}
