// Schedule-exhaustive model checking of the lock subsystem.
//
// Enumerates every causally distinct schedule of a set of miniature lock
// workloads (DFS over the kernel's tie-break and waiter-grant choice points,
// sleep-set reduced) and checks deadlock-freedom, writer priority and
// bounded writer wait on each. Exits nonzero if a green scenario violates a
// property, if exploration fails to complete, or — with --expect-deadlock —
// if the deadlock known to lurk in the reversed lock-order scenario is NOT
// found.
//
// Modes:
//   --mode dfs      exhaustive exploration (default)
//   --mode default  one canonical schedule per scenario (bit-identical to a
//                   plain simulation run — the production tie-break order)
//   --mode random   --runs N randomized schedules per scenario
//
// Other flags: --scenario NAME (repeatable), --list, --no-reduction,
// --max-schedules N, --runs N, --seed N, --expect-deadlock.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/scenarios.hpp"

namespace mc = mwsim::mc;

namespace {

struct Options {
  std::string mode = "dfs";
  std::vector<std::string> scenarios;
  bool reduction = true;
  bool list = false;
  bool expectDeadlock = false;
  std::uint64_t maxSchedules = 1u << 20;
  std::uint64_t runs = 256;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode dfs|default|random] [--scenario NAME]...\n"
               "          [--list] [--no-reduction] [--max-schedules N]\n"
               "          [--runs N] [--seed N] [--expect-deadlock]\n",
               argv0);
  std::exit(2);
}

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mode") {
      opt.mode = value();
      if (opt.mode != "dfs" && opt.mode != "default" && opt.mode != "random") {
        usage(argv[0]);
      }
    } else if (arg == "--scenario") {
      opt.scenarios.push_back(value());
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--no-reduction") {
      opt.reduction = false;
    } else if (arg == "--max-schedules") {
      opt.maxSchedules = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--runs") {
      opt.runs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--expect-deadlock") {
      opt.expectDeadlock = true;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

struct Entry {
  std::unique_ptr<mc::Scenario> scenario;
  bool green;  // properties must hold on every schedule
};

std::vector<Entry> buildSuite(const Options& opt) {
  std::vector<Entry> all;
  for (auto& s : mc::greenScenarios()) all.push_back({std::move(s), true});
  if (opt.expectDeadlock || !opt.scenarios.empty()) {
    all.push_back({mc::makeLockTables(/*reversedOrder=*/true), false});
    all.push_back({mc::makeMyisamRw(/*readerPreferenceMutation=*/true), false});
  }
  if (opt.scenarios.empty()) return all;
  std::vector<Entry> picked;
  for (const std::string& want : opt.scenarios) {
    bool found = false;
    for (auto& e : all) {
      if (e.scenario != nullptr && want == e.scenario->name()) {
        picked.push_back(std::move(e));
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   want.c_str());
      std::exit(2);
    }
  }
  return picked;
}

void printStats(const mc::ExploreStats& st) {
  std::printf(
      "    schedules=%" PRIu64 " pruned=%" PRIu64 " choice-points=%" PRIu64
      " max-alternatives=%zu classes=%zu max-writer-wait=%" PRId64
      "ns complete=%s violations=%" PRIu64 "\n",
      st.schedules, st.prunedBranches, st.choicePoints, st.maxAlternatives,
      st.signatures.size(), st.maxWriterWait, st.complete ? "yes" : "no",
      st.violationCount);
  for (const mc::RecordedViolation& v : st.violations) {
    std::printf("    VIOLATION [%s] schedule #%" PRIu64 ": %s\n",
                v.property.c_str(), v.schedule, v.detail.c_str());
    std::printf("      trace:");
    for (const mc::ChoiceRecord& c : v.trace) {
      std::printf(" %zu/%zu", c.chosen, c.alternatives);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parseArgs(argc, argv);

  if (opt.list) {
    std::vector<Entry> all;
    for (auto& s : mc::greenScenarios()) all.push_back({std::move(s), true});
    all.push_back({mc::makeLockTables(true), false});
    all.push_back({mc::makeMyisamRw(true), false});
    for (const Entry& e : all) {
      std::printf("%-26s %s  # %s\n", e.scenario->name(),
                  e.green ? "[green]" : "[red]  ", e.scenario->description());
    }
    return 0;
  }

  const std::vector<Entry> suite = buildSuite(opt);
  int failures = 0;
  bool deadlockFound = false;

  for (const Entry& e : suite) {
    mc::Explorer explorer;
    mc::ExploreStats st;
    if (opt.mode == "random") {
      st = explorer.sample(*e.scenario, opt.runs, opt.seed);
      std::printf("[%s] random x%" PRIu64 " (seed %" PRIu64 ")\n",
                  e.scenario->name(), opt.runs, opt.seed);
    } else if (opt.mode == "default") {
      // One schedule under the canonical strategy: maxSchedules=1 executes
      // exactly the production (time, seq) order and stops.
      mc::ExploreOptions eo;
      eo.maxSchedules = 1;
      eo.seed = opt.seed;
      st = explorer.explore(*e.scenario, eo);
      std::printf("[%s] default schedule\n", e.scenario->name());
    } else {
      mc::ExploreOptions eo;
      eo.maxSchedules = opt.maxSchedules;
      eo.reduction = opt.reduction;
      eo.seed = opt.seed;
      st = explorer.explore(*e.scenario, eo);
      std::printf("[%s] dfs%s\n", e.scenario->name(),
                  opt.reduction ? "" : " (no reduction)");
    }
    printStats(st);

    for (const mc::RecordedViolation& v : st.violations) {
      if (v.property == "deadlock-freedom") deadlockFound = true;
    }
    if (e.green && st.violationCount > 0) {
      std::fprintf(stderr, "FAIL: green scenario %s violated properties\n",
                   e.scenario->name());
      ++failures;
    }
    if (e.green && opt.mode == "dfs" && !st.complete) {
      std::fprintf(stderr, "FAIL: exploration of %s did not complete\n",
                   e.scenario->name());
      ++failures;
    }
  }

  if (opt.expectDeadlock && opt.mode == "dfs" && !deadlockFound) {
    std::fprintf(stderr,
                 "FAIL: --expect-deadlock but no deadlock schedule found\n");
    ++failures;
  }

  if (failures == 0) std::printf("mc_explore: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
