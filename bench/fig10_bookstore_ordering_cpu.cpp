/// Figure 10 — bookstore CPU utilization at peak throughput, ordering mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = bookstoreOrdering();
  spec.id = "Figure 10";
  spec.title = "Online bookstore CPU utilization at peak, ordering mix";
  spec.paperExpectation =
      "database CPU ~60% for non-sync configurations (locking bound); 100% with sync";
  return runCpuFigure(spec, argc, argv);
}
