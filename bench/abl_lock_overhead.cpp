/// Ablation — LOCK TABLES handler-reopen cost (DESIGN.md design decisions
/// 2/3). Sweeps the per-table cost MySQL 3.23 pays around explicit locks;
/// at zero the sync and non-sync bookstore configurations converge, which
/// is exactly the paper's claim about *why* Java-monitor locking wins.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.app = core::App::Bookstore;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf(
      "== Ablation: LOCK TABLES per-table reopen cost (bookstore, shopping mix, "
      "700 clients) ==\n\n");

  stats::TextTable table(
      {"dbLockPerTableUs", "WsPhp-DB", "WsServlet-DB(sync)", "sync advantage"});
  for (double lockUs : {0.0, 1300.0, 2600.0, 5200.0}) {
    core::ExperimentParams params = opts.baseParams(spec);
    params.clients = 700;
    params.cost.dbLockPerTableUs = lockUs;

    params.config = core::Configuration::WsPhpDb;
    const auto php = core::runExperiment(params);
    params.config = core::Configuration::WsServletDbSync;
    const auto sync = core::runExperiment(params);
    std::fprintf(stderr, "  lock=%.0fus php %.0f sync %.0f\n", lockUs, php.throughputIpm,
                 sync.throughputIpm);

    table.addRow({stats::fmt(lockUs, 0), stats::fmt(php.throughputIpm, 0),
                  stats::fmt(sync.throughputIpm, 0),
                  stats::fmt((sync.throughputIpm / php.throughputIpm - 1.0) * 100, 1) + "%"});
  }
  std::printf("%s\nexpected: the sync advantage grows with the explicit-lock cost and "
              "vanishes when it is free (the paper measures ~28%% at the shopping-mix "
              "peak).\n",
              table.str().c_str());
  return 0;
}
