/// Ablation — LOCK TABLES handler-reopen cost (DESIGN.md design decisions
/// 2/3). Sweeps the per-table cost MySQL 3.23 pays around explicit locks;
/// at zero the sync and non-sync bookstore configurations converge, which
/// is exactly the paper's claim about *why* Java-monitor locking wins.
#include <cstdio>

#include "bench/harness.hpp"
#include "stats/report.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  bench::FigureSpec spec;
  spec.app = core::App::Bookstore;
  spec.mix = 1;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  std::printf(
      "== Ablation: LOCK TABLES per-table reopen cost (bookstore, shopping mix, "
      "700 clients) ==\n\n");

  stats::TextTable table(
      {"dbLockPerTableUs", "WsPhp-DB", "WsServlet-DB(sync)", "sync advantage"});
  const std::vector<double> lockCosts{0.0, 1300.0, 2600.0, 5200.0};
  std::vector<core::ExperimentParams> points;
  for (double lockUs : lockCosts) {
    for (auto config :
         {core::Configuration::WsPhpDb, core::Configuration::WsServletDbSync}) {
      core::ExperimentParams params =
          core::pointParams(opts.baseParams(spec), config, 700);
      params.cost.dbLockPerTableUs = lockUs;
      points.push_back(params);
    }
  }
  const auto results = core::runMany(points, opts.sweepOptions());
  for (std::size_t i = 0; i < lockCosts.size(); ++i) {
    const auto& php = results[2 * i];
    const auto& sync = results[2 * i + 1];
    table.addRow({stats::fmt(lockCosts[i], 0), stats::fmt(php.throughputIpm, 0),
                  stats::fmt(sync.throughputIpm, 0),
                  stats::fmt((sync.throughputIpm / php.throughputIpm - 1.0) * 100, 1) + "%"});
  }
  std::printf("%s\nexpected: the sync advantage grows with the explicit-lock cost and "
              "vanishes when it is free (the paper measures ~28%% at the shopping-mix "
              "peak).\n",
              table.str().c_str());
  return 0;
}
