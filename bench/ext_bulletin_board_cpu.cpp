/// Extension — CPU-utilization companion to ext_bulletin_board, completing
/// the (throughput figure, CPU figure) pairing every paper workload gets.
///
/// §7 predicts the bulletin board mirrors the auction site because the web
/// server CPU is the bottleneck; the throughput bench checks the ordering,
/// this one checks the *reason* — at each configuration's peak, the
/// dynamic-content generator's CPU should saturate while the database stays
/// cool, the same signature as Figure 12.
#include <cstdio>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec;
  spec.id = "Extension (paper section 7)";
  spec.title = "Bulletin board CPU utilization at peak, submission mix";
  spec.paperExpectation =
      "not measured in the paper; predicted to mirror Figure 12 — the content "
      "generator's CPU saturates (web server for PHP/co-located servlets, the "
      "servlet machine for Ws-Servlet, the EJB server for EJB) with the "
      "database CPU low";
  spec.app = mwsim::core::App::BulletinBoard;
  spec.mix = 1;
  spec.clients = {300, 600, 900, 1100, 1300, 1600};
  spec.peakCandidates = {900, 1100, 1400};
  const int rc = runCpuFigure(spec, argc, argv);
  std::printf("\ncheck: if the saturated machine at each peak matches Figure 12's "
              "(generator CPU pegged, database cool), the section-7 prediction "
              "holds for the resource signature too, not just the ordering.\n");
  return rc;
}
