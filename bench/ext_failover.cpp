/// Extension — mid-run failover experiment the scenario engine enables:
/// a web replica crashes at t=T and recovers later, and the load balancer
/// must route around it. The paper only measures steady state; this bench
/// asks the operational questions instead — how deep is the throughput dip,
/// how much error traffic leaks out during the blackout, and how fast the
/// site recovers — and compares dispatch policies, since least-outstanding
/// should re-spread load faster than round-robin after a replica returns.
///
/// Setup: auction bidding on WsPhp-DB with a replicated web tier. The crash
/// kills one replica mid-measurement: its in-flight requests abort at their
/// next scheduling checkpoint and the balancer retries them on survivors
/// (bounded retries, optional per-request timeout), so the dip shows up as
/// a transient, not a collapse. The whole trajectory lands in a
/// stats::TimeSeries printed per policy.
///
/// Extra flags on top of the common harness set:
///   --web-replicas N     web-tier replica count (default 2)
///   --clients N          closed-loop client count (default 1200)
///   --crash-sec T        crash time, seconds from run start (default 80)
///   --outage-sec D       time until the replica recovers (default 40)
///   --timeout-ms T       per-request deadline (default 2000; 0 = none)
///   --retries N          reroute attempts per request (default 2)
///   --bucket-sec B       time-series bucket width (default 10)
///   --help               print usage and exit
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "obs/analyzer.hpp"
#include "stats/report.hpp"

using namespace mwsim;

namespace {

const char* argValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

struct Dip {
  double preIpm = 0.0;       // mean ok/min before the crash
  double minOutageIpm = 0.0; // worst bucket during the outage
  double recoverySec = -1.0; // first bucket >= 90% of preIpm after recovery
};

Dip analyze(const stats::TimeSeries& series, double crashSec, double recoverSec) {
  Dip dip;
  const auto& buckets = series.buckets();
  const double bucketSec = sim::toSeconds(series.interval());
  double preSum = 0.0;
  int preCount = 0;
  bool first = true;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double start = sim::toSeconds(series.bucketStart(i));
    const double ipm = series.okPerMinute(i);
    // Skip the first bucket: it covers the client farm's staggered start.
    if (start + bucketSec <= crashSec) {
      if (start > 0.0) {
        preSum += ipm;
        ++preCount;
      }
    } else if (start < recoverSec) {
      if (first || ipm < dip.minOutageIpm) dip.minOutageIpm = ipm;
      first = false;
    } else if (dip.recoverySec < 0.0 && preCount > 0 &&
               ipm >= 0.9 * (preSum / preCount)) {
      dip.recoverySec = start - recoverSec;
    }
  }
  if (preCount > 0) dip.preIpm = preSum / preCount;
  return dip;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "ext_failover — web replica crash/recovery vs dispatch policy\n\n"
          "usage: ext_failover [options]\n"
          "  --web-replicas N   web-tier replicas (default 2)\n"
          "  --clients N        closed-loop clients (default 1200)\n"
          "  --crash-sec T      crash time from run start (default 80)\n"
          "  --outage-sec D     outage duration before recovery (default 40)\n"
          "  --timeout-ms T     per-request deadline, 0=none (default 2000)\n"
          "  --retries N        reroute attempts per request (default 2)\n"
          "  --bucket-sec B     time-series bucket width (default 10)\n"
          "  --measure-sec N  --rampup-sec N  --seed N  --jobs N\n"
          "  --csv  --breakdown  (see bench/harness.hpp)\n");
      return 0;
    }
  }

  bench::FigureSpec spec;
  spec.app = core::App::Auction;
  spec.mix = 1;  // bidding
  const auto opts = bench::BenchOptions::parse(argc, argv);
  const auto config = core::Configuration::WsPhpDb;

  int webReplicas = 2;
  if (const char* v = argValue(argc, argv, "--web-replicas")) webReplicas = std::atoi(v);
  int clients = 1200;
  if (const char* v = argValue(argc, argv, "--clients")) clients = std::atoi(v);
  double crashSec = 80.0;
  if (const char* v = argValue(argc, argv, "--crash-sec")) crashSec = std::atof(v);
  double outageSec = 40.0;
  if (const char* v = argValue(argc, argv, "--outage-sec")) outageSec = std::atof(v);
  double timeoutMs = 2000.0;
  if (const char* v = argValue(argc, argv, "--timeout-ms")) timeoutMs = std::atof(v);
  int retries = 2;
  if (const char* v = argValue(argc, argv, "--retries")) retries = std::atoi(v);
  double bucketSec = 10.0;
  if (const char* v = argValue(argc, argv, "--bucket-sec")) bucketSec = std::atof(v);
  const double recoverSec = crashSec + outageSec;

  std::printf("== Extension: web-replica failover (auction, bidding mix, %s) ==\n",
              core::configurationName(config));
  std::printf("(web×%d, %d clients, crash WebServer#%d at t=%.0fs, recover t=%.0fs, "
              "timeout %.0fms, %d retries, measure %.0fs, ramp-up %.0fs, seed %llu)\n\n",
              webReplicas, clients, webReplicas, crashSec, recoverSec, timeoutMs,
              retries, opts.measureSec, opts.rampUpSec,
              static_cast<unsigned long long>(opts.seed));
  std::fflush(stdout);

  const std::vector<mw::Dispatch> policies{mw::Dispatch::RoundRobin,
                                           mw::Dispatch::LeastOutstanding};

  std::vector<core::ExperimentParams> points;
  for (mw::Dispatch policy : policies) {
    auto base = opts.baseParams(spec);
    core::Topology topo = core::canonicalTopology(config);
    topo.web.replicas = webReplicas;
    topo.webDispatch = policy;
    base.topology = topo;
    // The crash takes out the last replica, mid-measurement.
    base.scenario.events = {
        scenario::replicaCrash(sim::fromSeconds(crashSec), scenario::Tier::Web,
                               webReplicas - 1),
        scenario::replicaRecover(sim::fromSeconds(recoverSec), scenario::Tier::Web,
                                 webReplicas - 1),
    };
    base.scenario.requestTimeout = sim::fromMillis(timeoutMs);
    base.scenario.requestRetries = retries;
    base.scenario.seriesInterval = sim::fromSeconds(bucketSec);
    if (opts.tracing()) base.trace.enabled = true;
    points.push_back(core::pointParams(base, config, clients));
  }
  const auto results = core::runMany(points, opts.sweepOptions());

  stats::TextTable table({"dispatch", "ipm", "errors", "rerouted", "timeouts",
                          "pre-crash ok/min", "outage min ok/min", "recovery s"});
  std::string csv =
      "dispatch,ipm,errors,rerouted,timeouts,pre_ipm,outage_min_ipm,recovery_sec\n";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = results[i];
    const char* name = mw::dispatchName(policies[i]);
    const Dip dip = r.series ? analyze(*r.series, crashSec, recoverSec) : Dip{};
    const std::string rec =
        dip.recoverySec < 0 ? "-" : stats::fmt(dip.recoverySec, 0);
    table.addRow({name, stats::fmt(r.throughputIpm, 0), std::to_string(r.webErrors),
                  std::to_string(r.reroutedRequests), std::to_string(r.timedOutRequests),
                  stats::fmt(dip.preIpm, 0), stats::fmt(dip.minOutageIpm, 0), rec});
    csv += std::string(name) + "," + stats::fmt(r.throughputIpm, 0) + "," +
           std::to_string(r.webErrors) + "," + std::to_string(r.reroutedRequests) + "," +
           std::to_string(r.timedOutRequests) + "," + stats::fmt(dip.preIpm, 0) + "," +
           stats::fmt(dip.minOutageIpm, 0) + "," + rec + "\n";
  }
  std::printf("%s\n", table.str().c_str());
  if (opts.csv) std::printf("%s\n", csv.c_str());

  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (results[i].series) {
      bench::printTimeSeries(mw::dispatchName(policies[i]), *results[i].series);
    }
  }

  // Windowed bottleneck verdicts: the verdict flips mid-run — during the
  // blackout the surviving web replica's CPU is the wall (the crashed
  // replica's own CPU idles, so it cannot win the window).
  const double endSec = opts.rampUpSec + opts.measureSec + 5.0;
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (!results[i].metrics) continue;
    const obs::MetricsReport& mr = *results[i].metrics;
    const char* name = mw::dispatchName(policies[i]);
    std::printf("\nwindowed verdicts (%s):\n", name);
    const auto window = [&](const char* label, double fromSec, double toSec) {
      const obs::Verdict v = obs::analyze(mr, nullptr, sim::fromSeconds(fromSec),
                                          sim::fromSeconds(toSec));
      std::printf("  verdict[%s]: %s\n", label, v.oneLine().c_str());
    };
    window("pre-crash", 0.0, crashSec);
    window("crash window", crashSec, recoverSec);
    window("post-recovery", recoverSec, endSec);
  }
  std::fflush(stdout);

  std::printf("\nexpected: the dip bottoms out near the survivors' capacity (not zero "
              "— rerouted requests complete within the retry budget), errors stay "
              "bounded by the in-flight work lost at the crash instant, and "
              "throughput is back to ~pre-crash level within a bucket or two of "
              "recovery.\n");
  std::fflush(stdout);

  if (opts.breakdown) {
    for (std::size_t i = 0; i < policies.size(); ++i) {
      if (results[i].trace != nullptr) {
        std::string name = std::string(core::configurationName(config)) + " " +
                           mw::dispatchName(policies[i]) + " (crash scenario)";
        bench::printBreakdown(name.c_str(), clients, *results[i].trace);
      }
    }
  }
  return 0;
}
