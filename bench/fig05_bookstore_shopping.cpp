/// Figure 5 — online bookstore throughput vs clients, shopping mix.
#include "bench/figures.hpp"
int main(int argc, char** argv) {
  using namespace mwsim::bench;
  FigureSpec spec = bookstoreShopping();
  spec.id = "Figure 5";
  spec.title = "Online bookstore throughput, shopping mix";
  spec.paperExpectation =
      "WsPhp-DB/WsServlet-DB/Ws-Servlet-DB peak together (~520 ipm) and dip past the "
      "peak; (sync) configurations peak ~28% higher (663/665 ipm); EJB is clearly worst";
  return runThroughputFigure(spec, argc, argv);
}
