#!/bin/sh
# Regenerates bench_results/ at the standard recorded settings
# (120 s measurement, 45 s ramp-up, seed 1; see EXPERIMENTS.md).
# stdout -> <bench>.txt, stderr (per-point progress) -> <bench>.log.
# fig05 and fig12 also record per-tier latency attribution (--breakdown),
# which EXPERIMENTS.md quotes.
set -eu

bin=${1:-build/bench}
out=${2:-bench_results}
# Sweep points are independent and byte-identical for any --jobs value
# (see tests/determinism_test.cpp), so regen always uses every core.
args="--measure-sec 120 --rampup-sec 45 --seed 1 --jobs $(nproc)"

run() {
  name=$1
  shift
  echo "== $name $*" >&2
  "$bin/$name" $args "$@" > "$out/$name.txt" 2> "$out/$name.log"
}

run fig05_bookstore_shopping --breakdown
run fig06_bookstore_shopping_cpu
run fig07_bookstore_browsing
run fig08_bookstore_browsing_cpu
run fig09_bookstore_ordering
run fig10_bookstore_ordering_cpu
run fig11_auction_bidding
run fig12_auction_bidding_cpu --breakdown
run fig13_auction_browsing
run fig14_auction_browsing_cpu
run tabA_bookstore_resources
run tabB_auction_resources
run ext_cluster_scaling --breakdown
run ext_bulletin_board
run ext_bulletin_board_cpu
run ext_flash_crowd
run ext_failover
# Kernel-throughput record (different flag set; also writes BENCH_kernel.json).
sh "$(dirname "$0")/bench_kernel.sh" "$bin" "$out"
echo "done" >&2
