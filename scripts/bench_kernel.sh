#!/bin/sh
# Regenerates the repo-root kernel-throughput record BENCH_kernel.json:
#  - micro_sim BM_ManyClients (events/sec at 1e4 and 1e5 closed-loop clients)
#  - ext_large_scale population sweep (1e3..1e6 clients, events/sec + RSS)
# Also refreshes bench_results/ext_large_scale.txt at the recorded settings
# (seed 1, 10 s simulated warmup, 60 s simulated window per point).
#
# Usage: scripts/bench_kernel.sh [bench-bin-dir] [results-dir] [out-json]
set -eu

bin=${1:-build/bench}
out=${2:-bench_results}
json=${3:-BENCH_kernel.json}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== ext_large_scale" >&2
"$bin/ext_large_scale" --seed 1 --sim-seconds 60 --json "$tmp/sweep.json" \
  > "$out/ext_large_scale.txt" 2> "$out/ext_large_scale.log"

echo "== micro_sim BM_ManyClients" >&2
"$bin/micro_sim" --benchmark_filter='BM_ManyClients' \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$tmp/micro.json" 2> "$out/ext_large_scale.log.bm" \
  || { cat "$out/ext_large_scale.log.bm" >&2; exit 1; }
rm -f "$out/ext_large_scale.log.bm"

python3 - "$tmp/micro.json" "$tmp/sweep.json" "$json" <<'EOF'
import json, sys

micro_path, sweep_path, out_path = sys.argv[1:4]
with open(micro_path) as f:
    micro = json.load(f)
with open(sweep_path) as f:
    sweep = json.load(f)

many = {}
for b in micro.get("benchmarks", []):
    # Aggregates look like "BM_ManyClients/10000_mean"; keep mean and median.
    name = b.get("name", "")
    if "BM_ManyClients" not in name or "events/s" not in b:
        continue
    base, _, agg = name.rpartition("_")
    clients = base.split("/")[-1]
    if agg in ("mean", "median"):
        many.setdefault(clients, {})[agg] = round(b["events/s"])

doc = {
    "description": "Simulation-kernel event throughput record. "
    "BM_ManyClients: google-benchmark closed-loop population, events/sec "
    "(mean/median of 3 reps). large_scale_sweep: ext_large_scale at seed 1, "
    "60 s simulated window, peak RSS from VmHWM.",
    "BM_ManyClients": many,
    "large_scale_sweep": sweep,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}", file=sys.stderr)
EOF
