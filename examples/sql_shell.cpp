/// sql_shell — interactive SQL shell over the benchmark databases.
///
/// Exercises the relational-engine substrate directly: load either
/// benchmark's schema and data, then type SQL against it. Handy for
/// exploring what the simulated applications actually query.
///
///   $ ./sql_shell bookstore
///   sql> SELECT COUNT(*) AS n FROM items
///   sql> SELECT i_title FROM items WHERE i_id = 42
///   sql> \q

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/auction/schema.hpp"
#include "apps/bookstore/schema.hpp"
#include "db/executor.hpp"
#include "stats/report.hpp"

int main(int argc, char** argv) {
  using namespace mwsim;

  const bool auction = argc > 1 && std::strcmp(argv[1], "auction") == 0;
  db::Database database;
  sim::Rng rng(1);
  if (auction) {
    apps::auction::Scale scale;
    scale.historyScale = 0.05;
    apps::auction::createSchema(database);
    apps::auction::populate(database, scale, rng);
  } else {
    apps::bookstore::Scale scale;
    scale.scale = 0.05;
    apps::bookstore::createSchema(database);
    apps::bookstore::populate(database, scale, rng);
  }
  db::Executor executor(database);

  std::printf("%s database loaded. Tables:", auction ? "auction" : "bookstore");
  for (const auto& name : database.tableNames()) {
    std::printf(" %s(%zu)", name.c_str(), database.table(name).size());
  }
  std::printf("\nType SQL, or \\q to quit.\n");

  std::string line;
  while (true) {
    std::printf("sql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "\\q" || line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    try {
      const auto result = executor.query(line);
      if (!result.resultSet.columns.empty()) {
        stats::TextTable table(result.resultSet.columns);
        const std::size_t shown = std::min<std::size_t>(result.resultSet.rowCount(), 40);
        for (std::size_t r = 0; r < shown; ++r) {
          std::vector<std::string> row;
          for (const auto& v : result.resultSet.rows[r]) {
            row.push_back(v.toDisplayString());
          }
          table.addRow(row);
        }
        std::printf("%s", table.str().c_str());
        if (shown < result.resultSet.rowCount()) {
          std::printf("... (%zu rows total)\n", result.resultSet.rowCount());
        }
      }
      std::printf("%llu row(s); %llu examined%s\n",
                  static_cast<unsigned long long>(result.resultSet.rowCount() +
                                                  result.affectedRows),
                  static_cast<unsigned long long>(result.stats.rowsExamined),
                  result.stats.usedIndex ? " (via index)" : " (full scan)");
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
