/// timeline_demo — sysstat-style per-second timeline of an overload event.
///
/// The paper's methodology (§4.5) samples CPU/network once a second with
/// sysstat and inspects the series post-mortem ("100% utilized throughout
/// the peak plateau"). This example reproduces that workflow: it loads the
/// bookstore's shopping mix past its knee and prints the per-second
/// database and web-server CPU series around the measurement window.

#include <cstdio>

#include "apps/bookstore/bookstore.hpp"
#include "apps/bookstore/schema.hpp"
#include "middleware/php_module.hpp"
#include "middleware/web_server.hpp"
#include "stats/sampler.hpp"
#include "workload/client.hpp"

int main(int argc, char** argv) {
  using namespace mwsim;
  const int clients = argc > 1 ? std::atoi(argv[1]) : 500;

  mw::CostModel cost;
  sim::Simulation simulation(7);
  net::Network network(simulation);
  net::Machine clientFarm(simulation, "clients", 64, 1e12);
  net::Machine web(simulation, "WebServer");
  net::Machine dbMachine(simulation, "Database");

  db::Database database;
  apps::bookstore::Scale scale;
  scale.scale = 0.1;
  apps::bookstore::createSchema(database);
  sim::Rng dataRng(1);
  apps::bookstore::populate(database, scale, dataRng);
  mw::DatabaseServer dbServer(simulation, dbMachine, database, cost);
  mw::DbCluster dbCluster(dbServer);

  apps::bookstore::BookstoreLogic logic(scale);
  mw::PhpModule php(simulation, network, web, dbCluster, logic, cost, 7);
  mw::WebServer webServer(simulation, web, network, clientFarm, cost);
  webServer.setGenerator(&php);

  const auto mix = apps::bookstore::mixMatrix(apps::bookstore::Mix::Shopping);
  wl::WorkloadStats stats;
  wl::ClientFarm farm(simulation, webServer, mix, clients, stats, 7);
  farm.start();

  stats::Sampler sampler(simulation, sim::kSecond);
  sampler.addMachine(&web);
  sampler.addMachine(&dbMachine);
  sampler.start();

  const sim::SimTime horizon = 90 * sim::kSecond;
  stats.measuring = true;
  simulation.runUntil(horizon);
  simulation.shutdown();

  std::printf("bookstore shopping mix, %d clients (PHP configuration)\n", clients);
  std::printf("%-6s %-10s %-10s\n", "sec", "web cpu%", "db cpu%");
  const auto& webSeries = sampler.series(0);
  const auto& dbSeries = sampler.series(1);
  for (std::size_t i = 0; i < webSeries.size(); i += 5) {
    std::printf("%-6zu %-10.0f %-10.0f\n", i + 1, webSeries[i].cpuUtilization * 100,
                dbSeries[i].cpuUtilization * 100);
  }
  std::printf("\nfraction of seconds 30..90 with db cpu > 90%%: %.0f%%\n",
              sampler.fractionAbove(1, 0.9, 30 * sim::kSecond, horizon) * 100);
  std::printf("completed interactions: %llu; web-server error pages: %llu\n",
              static_cast<unsigned long long>(stats.completedInteractions),
              static_cast<unsigned long long>(webServer.errorCount()));
  return 0;
}
