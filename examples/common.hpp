#pragma once

/// Shared helpers for the example/bench executables: tiny CLI parsing and
/// result printing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "stats/report.hpp"

namespace mwsim::cli {

/// Minimal `--flag value` parser over argv.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  const char* get(const char* flag, const char* fallback = nullptr) const {
    for (int i = 1; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], flag) == 0) return argv_[i + 1];
    }
    return fallback;
  }
  double getDouble(const char* flag, double fallback) const {
    const char* v = get(flag);
    return v ? std::atof(v) : fallback;
  }
  std::int64_t getInt(const char* flag, std::int64_t fallback) const {
    const char* v = get(flag);
    return v ? std::atoll(v) : fallback;
  }
  bool has(const char* flag) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], flag) == 0) return true;
    }
    return false;
  }

 private:
  int argc_;
  char** argv_;
};

inline core::Configuration configurationFromName(const std::string& name) {
  for (auto c : core::allConfigurations()) {
    if (name == core::configurationName(c)) return c;
  }
  std::fprintf(stderr, "unknown configuration '%s'; valid:\n", name.c_str());
  for (auto c : core::allConfigurations()) {
    std::fprintf(stderr, "  %s\n", core::configurationName(c));
  }
  std::exit(2);
}

inline void printResult(const core::ExperimentParams& params,
                        const core::ExperimentResult& result) {
  std::printf("configuration: %s  app: %s  mix: %s  clients: %d\n",
              core::configurationName(params.config),
              params.app == core::App::Bookstore  ? "bookstore"
              : params.app == core::App::Auction ? "auction"
                                                 : "bulletin-board",
              core::mixName(params.app, params.mix), params.clients);
  std::printf("throughput: %.0f interactions/min (%llu interactions, %.1f%% read-write)\n",
              result.throughputIpm,
              static_cast<unsigned long long>(result.interactions),
              result.interactions
                  ? 100.0 * static_cast<double>(result.readWriteInteractions) /
                        static_cast<double>(result.interactions)
                  : 0.0);
  std::printf("response time: mean %.3f s, p90 %.3f s\n", result.meanResponseSeconds,
              result.p90ResponseSeconds);
  std::printf("db: %llu queries, %llu lock acquisitions (%llu contended, %.1f s waited)\n",
              static_cast<unsigned long long>(result.queries),
              static_cast<unsigned long long>(result.lockAcquisitions),
              static_cast<unsigned long long>(result.contendedLockAcquisitions),
              result.lockWaitSeconds);
  stats::TextTable table({"machine", "cpu%", "nic Mb/s", "nic util", "mem MB"});
  for (const auto& u : result.usage) {
    table.addRow({u.name, stats::fmt(u.cpuUtilization * 100.0),
                  stats::fmt(u.nicMbps, 2), stats::fmtPct(u.nicUtilization),
                  stats::fmt(static_cast<double>(u.memoryBytes) / 1e6, 1)});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace mwsim::cli
