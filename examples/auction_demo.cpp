/// auction_demo — "where should the servlet engine run?"
///
/// The capacity-planning question behind the paper's §6: an eBay-style
/// auction site whose front end is the bottleneck. The demo loads the
/// bidding mix at increasing client counts in three deployments — PHP in
/// the web server, servlets co-located with the web server, and servlets on
/// a dedicated machine — and shows the crossover the paper reports: PHP
/// beats co-located servlets, but a second front-end machine beats both.

#include <cstdio>

#include "core/experiment.hpp"
#include "stats/report.hpp"

int main(int argc, char** argv) {
  using namespace mwsim;

  core::ExperimentParams params;
  params.app = core::App::Auction;
  params.mix = 1;  // bidding — the representative auction mix
  params.rampUp = 30 * sim::kSecond;
  params.measure = 80 * sim::kSecond;
  params.rampDown = 5 * sim::kSecond;

  const std::vector<int> loads =
      argc > 1 ? std::vector<int>{std::atoi(argv[1])} : std::vector<int>{600, 1100, 1500};

  const std::vector<core::Configuration> deployments{
      core::Configuration::WsPhpDb,
      core::Configuration::WsServletDb,
      core::Configuration::WsServletSepDb,
  };

  std::printf("Auction site, bidding mix — front-end deployment comparison\n\n");
  stats::TextTable table(
      {"clients", "WsPhp-DB", "WsServlet-DB", "Ws-Servlet-DB", "winner"});
  for (int clients : loads) {
    params.clients = clients;
    std::vector<double> ipm;
    for (auto config : deployments) {
      params.config = config;
      ipm.push_back(core::runExperiment(params).throughputIpm);
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < ipm.size(); ++i) {
      if (ipm[i] > ipm[best]) best = i;
    }
    table.addRow({std::to_string(clients), stats::fmt(ipm[0], 0), stats::fmt(ipm[1], 0),
                  stats::fmt(ipm[2], 0), core::configurationName(deployments[best])});
  }
  std::printf("%s\n", table.str().c_str());

  // Show where the CPU goes at high load for the dedicated deployment.
  params.config = core::Configuration::WsServletSepDb;
  params.clients = loads.back();
  const auto r = core::runExperiment(params);
  std::printf("At %d clients on %s:\n", params.clients,
              core::configurationName(params.config));
  for (const auto& u : r.usage) {
    std::printf("  %-18s %5.1f%% CPU  %6.2f Mb/s\n", u.name.c_str(),
                u.cpuUtilization * 100, u.nicMbps);
  }
  std::printf("\nPHP's in-process execution wins while one machine must do everything;\n"
              "once the front end saturates, servlets' ability to run on their own\n"
              "machine buys the highest peak — the paper's central auction-site result.\n");
  return 0;
}
