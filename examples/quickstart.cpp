/// quickstart — the smallest complete use of the library:
/// run one configuration of one benchmark at one load point and read the
/// paper-style metrics from the result.
///
///   $ ./quickstart
///
/// See custom_run.cpp for the fully parameterized version, and the bench/
/// directory for the binaries that regenerate every figure in the paper.

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace mwsim;

  // Describe the experiment: the auction site's bidding mix served by PHP
  // (paper configuration WsPhp-DB), 800 emulated browsers, measured for two
  // simulated minutes after a 30 s ramp-up.
  core::ExperimentParams params;
  params.config = core::Configuration::WsPhpDb;
  params.app = core::App::Auction;
  params.mix = 1;  // bidding
  params.clients = 800;
  params.rampUp = 30 * sim::kSecond;
  params.measure = 2 * sim::kMinute;
  params.rampDown = 10 * sim::kSecond;

  // Run it: this builds the machines, populates the database, spawns the
  // client farm, and simulates the whole thing deterministically.
  const core::ExperimentResult result = core::runExperiment(params);

  std::printf("configuration : %s\n", core::configurationName(params.config));
  std::printf("workload      : auction site, %s mix, %d clients\n",
              core::mixName(params.app, params.mix), params.clients);
  std::printf("throughput    : %.0f interactions/minute\n", result.throughputIpm);
  std::printf("response time : %.0f ms mean, %.0f ms p90\n",
              result.meanResponseSeconds * 1e3, result.p90ResponseSeconds * 1e3);
  for (const auto& usage : result.usage) {
    std::printf("%-14s: %4.1f%% CPU, %6.2f Mb/s NIC\n", usage.name.c_str(),
                usage.cpuUtilization * 100.0, usage.nicMbps);
  }
  return 0;
}
