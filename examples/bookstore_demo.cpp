/// bookstore_demo — "should my e-commerce site move locking out of MySQL?"
///
/// The scenario from the paper's §5: a TPC-W-style online bookstore whose
/// database is the bottleneck. This demo runs the shopping mix under load
/// in the PHP configuration (LOCK TABLES in the database) and in the
/// sync-servlet configuration (Java monitors in the servlet engine), then
/// reports the throughput and where the database time went.

#include <cstdio>

#include "core/experiment.hpp"
#include "stats/report.hpp"

int main(int argc, char** argv) {
  using namespace mwsim;
  const int clients = argc > 1 ? std::atoi(argv[1]) : 700;

  core::ExperimentParams params;
  params.app = core::App::Bookstore;
  params.mix = 1;  // shopping — the representative TPC-W mix
  params.clients = clients;
  params.rampUp = 30 * sim::kSecond;
  params.measure = 90 * sim::kSecond;
  params.rampDown = 5 * sim::kSecond;

  std::printf("Online bookstore, shopping mix, %d clients\n\n", clients);
  stats::TextTable table({"configuration", "ipm", "db cpu", "db statements",
                          "lock waits", "mean RT"});

  core::ExperimentResult php;
  core::ExperimentResult sync;
  for (auto config : {core::Configuration::WsPhpDb, core::Configuration::WsServletDb,
                      core::Configuration::WsServletDbSync}) {
    params.config = config;
    const auto r = core::runExperiment(params);
    if (config == core::Configuration::WsPhpDb) php = r;
    if (config == core::Configuration::WsServletDbSync) sync = r;
    const auto* db = r.machine("Database");
    table.addRow({core::configurationName(config), stats::fmt(r.throughputIpm, 0),
                  stats::fmtPct(db ? db->cpuUtilization : 0),
                  stats::fmtInt(static_cast<std::int64_t>(r.queries)),
                  stats::fmt(r.lockWaitSeconds, 1) + "s",
                  stats::fmt(r.meanResponseSeconds * 1e3, 0) + "ms"});
  }
  std::printf("%s\n", table.str().c_str());

  const double gain = (sync.throughputIpm / php.throughputIpm - 1.0) * 100.0;
  std::printf("Moving the critical sections out of MySQL and into the servlet JVM is\n"
              "worth %+.0f%% throughput at this load (the paper measures +28%% at its\n"
              "shopping-mix peak): every LOCK/UNLOCK TABLES pair costs the database\n"
              "handler reopens, and the locks are held across client round trips.\n",
              gain);
  return 0;
}
