/// custom_run — run any single configuration/app/mix/load point and print
/// the paper-style metrics. This is the swiss-army knife for exploring the
/// simulator beyond the canned figures:
///
///   custom_run --config Ws-Servlet-DB --app auction --mix bidding \
///              --clients 1200 --measure-sec 300
///
/// Flags: --config <name> --app bookstore|auction --mix <name>
///        --clients N --seed N --rampup-sec N --measure-sec N
///        --bookstore-scale X --auction-scale X

#include <cstdio>
#include <cstring>
#include <string>

#include "examples/common.hpp"

using namespace mwsim;

int main(int argc, char** argv) {
  cli::Args args(argc, argv);

  core::ExperimentParams params;
  params.config = cli::configurationFromName(args.get("--config", "WsPhp-DB"));
  const std::string app = args.get("--app", "auction");
  params.app = app == "bookstore" ? core::App::Bookstore
               : app == "bbs"     ? core::App::BulletinBoard
                                  : core::App::Auction;

  const std::string mix =
      args.get("--mix", params.app == core::App::Bookstore ? "shopping" : "bidding");
  if (params.app == core::App::Bookstore) {
    params.mix = mix == "browsing" ? 0 : (mix == "ordering" ? 2 : 1);
  } else {
    params.mix = mix == "browsing" ? 0 : 1;
  }

  params.clients = static_cast<int>(args.getInt("--clients", 300));
  params.seed = static_cast<std::uint64_t>(args.getInt("--seed", 1));
  params.rampUp = sim::fromSeconds(args.getDouble("--rampup-sec", 60));
  params.measure = sim::fromSeconds(args.getDouble("--measure-sec", 300));
  params.rampDown = sim::fromSeconds(args.getDouble("--rampdown-sec", 30));
  params.bookstoreScale = args.getDouble("--bookstore-scale", 0.25);
  params.auctionHistoryScale = args.getDouble("--auction-scale", 0.10);
  params.bbsHistoryScale = args.getDouble("--bbs-scale", 0.05);

  const core::ExperimentResult result = core::runExperiment(params);
  cli::printResult(params, result);
  return 0;
}
