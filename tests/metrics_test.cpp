/// Tests for the obs:: metrics layer (PR 10):
///
///  * instruments and registry semantics (create-or-get, well-known names);
///  * the metrics pump's aligned series, utilization differentiation, and
///    final partial-interval flush;
///  * the observation-only invariant — metrics-on runs are byte-identical
///    to metrics-off, sequentially and under parallel sweeps;
///  * the Little's-law consistency check (|L - lambda*W| / L < 5% on a
///    steady closed-loop run) — which validates the instruments themselves;
///  * bottleneck verdicts: scenario runs flip the verdict mid-run (the
///    surviving web replica's CPU during a crash window) and admission
///    shedding is called out on flash-crowd plateaus.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/analyzer.hpp"
#include "obs/metrics.hpp"
#include "obs/pump.hpp"
#include "trace/collector.hpp"

namespace mwsim {
namespace {

using sim::kSecond;

// ------------------------------------------------------------- instruments

TEST(MetricsRegistryTest, InstrumentBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("test.counter");
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(&registry.counter("test.counter"), &c) << "create-or-get identity";

  obs::Gauge& g = registry.gauge("test.gauge");
  g.set(2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);
  EXPECT_EQ(&registry.gauge("test.gauge"), &g);

  obs::HistogramInstrument& h = registry.histogram("test.hist");
  h.record(0.010);
  h.record(0.030);
  EXPECT_EQ(h.histogram().count(), 2u);
  EXPECT_EQ(&registry.histogram("test.hist"), &h);
}

TEST(MetricsRegistryTest, WellKnownCountersAreRegisteredByName) {
  obs::MetricsRegistry registry;
  registry.stmtCacheHit.add(2);
  registry.shedSessions.add(7);
  bool sawHit = false;
  bool sawShed = false;
  for (const auto& nc : registry.counters()) {
    if (nc.name == "db.stmt_cache.hit") {
      sawHit = true;
      EXPECT_EQ(nc.value->value(), 2u);
    }
    if (nc.name == "wl.shed") {
      sawShed = true;
      EXPECT_EQ(nc.value->value(), 7u);
    }
  }
  EXPECT_TRUE(sawHit);
  EXPECT_TRUE(sawShed);
}

TEST(MetricsRegistryTest, CacheIdentityIsPerRunFirstSeen) {
  obs::MetricsRegistry registry;
  int a = 0, b = 0;
  registry.recordStatementUse(&a);  // first use in this run: miss
  registry.recordStatementUse(&a);  // hit
  registry.recordStatementUse(&b);  // miss
  EXPECT_EQ(registry.stmtCacheMiss.value(), 2u);
  EXPECT_EQ(registry.stmtCacheHit.value(), 1u);
}

// -------------------------------------------------------------------- pump

TEST(MetricsPumpTest, SamplesAlignedUtilizationSeries) {
  sim::Simulation simulation;
  sim::CpuResource cpu(simulation, 1);
  obs::MetricsRegistry registry;
  registry.addUtilizationProbe("m/cpu", obs::ResourceKind::Cpu, 1.0,
                               [&cpu] { return cpu.busyCoreSeconds(); });
  obs::MetricsPump pump(simulation, registry, kSecond);
  // Busy during [2, 5): same shape as the Sampler test it subsumes.
  simulation.spawn([](sim::Simulation& s, sim::CpuResource& c) -> sim::Task<> {
    co_await s.delay(2 * kSecond);
    co_await c.consume(3 * kSecond);
  }(simulation, cpu));
  pump.runTo(8 * kSecond);
  pump.finish();
  const obs::MetricsReport report = pump.buildReport(0, 8 * kSecond);
  ASSERT_EQ(report.times.size(), 9u);  // baseline + one per second
  EXPECT_EQ(report.times.front(), 0);
  EXPECT_EQ(report.times.back(), 8 * kSecond);
  ASSERT_EQ(report.utilization.size(), 1u);
  const auto& s = report.utilization[0];
  EXPECT_EQ(s.name, "m/cpu");
  EXPECT_NEAR(report.meanUtilization(s, 2 * kSecond, 5 * kSecond), 1.0, 1e-9);
  EXPECT_NEAR(report.meanUtilization(s, 0, 8 * kSecond), 3.0 / 8.0, 1e-9);
  EXPECT_NEAR(report.fractionAbove(s, 0.9, 0, 8 * kSecond), 3.0 / 8.0, 1e-9);
}

TEST(MetricsPumpTest, FinishFlushesFinalPartialInterval) {
  sim::Simulation simulation;
  sim::CpuResource cpu(simulation, 1);
  obs::MetricsRegistry registry;
  registry.addUtilizationProbe("m/cpu", obs::ResourceKind::Cpu, 1.0,
                               [&cpu] { return cpu.busyCoreSeconds(); });
  obs::MetricsPump pump(simulation, registry, kSecond);
  simulation.spawn([](sim::CpuResource& c) -> sim::Task<> {
    co_await c.consume(10 * kSecond);
  }(cpu));
  // Stop mid-period at t = 2.5 s: the pump fired at t=1 and t=2; finish()
  // must record the [2, 2.5) tail (the Sampler bug this layer ports the
  // fix for).
  pump.runTo(2 * kSecond + kSecond / 2);
  pump.finish();
  const obs::MetricsReport report = pump.buildReport(0, 3 * kSecond);
  ASSERT_EQ(report.times.size(), 4u);
  EXPECT_EQ(report.times.back(), 2 * kSecond + kSecond / 2);
  const auto& s = report.utilization[0];
  // The partial tail is still fully busy: utilization 1.0 over 0.5 s.
  EXPECT_NEAR((s.cumulative[3] - s.cumulative[2]) / 0.5, 1.0, 1e-9);
}

TEST(MetricsPumpTest, CountersAndGaugesSnapshotPerTick) {
  sim::Simulation simulation;
  obs::MetricsRegistry registry;
  obs::Counter& work = registry.counter("work.done");
  obs::MetricsPump pump(simulation, registry, kSecond);
  simulation.spawn([](sim::Simulation& s, obs::Counter& c) -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await s.delay(kSecond);
      c.add(10);
    }
  }(simulation, work));
  pump.runTo(5 * kSecond);
  pump.finish();
  const obs::MetricsReport report = pump.buildReport(0, 5 * kSecond);
  EXPECT_EQ(report.counterTotal("work.done"), 50u);
  EXPECT_EQ(report.counterDelta("work.done", kSecond, 3 * kSecond), 20u);
}

// ------------------------------------------------- observation-only runs

core::ExperimentParams tinyParams(core::App app) {
  core::ExperimentParams p;
  p.app = app;
  p.mix = 1;
  p.clients = 25;
  p.rampUp = 5 * kSecond;
  p.measure = 20 * kSecond;
  p.rampDown = 2 * kSecond;
  p.bookstoreScale = 0.02;
  p.auctionHistoryScale = 0.01;
  p.bbsHistoryScale = 0.01;
  return p;
}

/// Bit-exact equality across every simulated (non-observational) field the
/// benches print — same contract as determinism_test's expectIdentical.
void expectIdentical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  EXPECT_EQ(a.throughputIpm, b.throughputIpm);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.meanResponseSeconds, b.meanResponseSeconds);
  EXPECT_EQ(a.p90ResponseSeconds, b.p90ResponseSeconds);
  ASSERT_EQ(a.usage.size(), b.usage.size());
  for (std::size_t i = 0; i < a.usage.size(); ++i) {
    EXPECT_EQ(a.usage[i].name, b.usage[i].name);
    EXPECT_EQ(a.usage[i].cpuUtilization, b.usage[i].cpuUtilization);
    EXPECT_EQ(a.usage[i].nicMbps, b.usage[i].nicMbps);
  }
  EXPECT_EQ(a.lockAcquisitions, b.lockAcquisitions);
  EXPECT_EQ(a.lockWaitSeconds, b.lockWaitSeconds);
  EXPECT_EQ(a.lockManagerWaitSeconds, b.lockManagerWaitSeconds);
  EXPECT_EQ(a.webErrors, b.webErrors);
}

TEST(MetricsObservationOnlyTest, Fig05ConfigMetricsOnIsByteIdenticalToOff) {
  auto p = tinyParams(core::App::Bookstore);
  p.config = core::Configuration::WsServletDb;  // a fig05 LOCK TABLES curve
  const auto off = core::runExperiment(p);
  p.metrics.enabled = true;
  const auto on = core::runExperiment(p);
  expectIdentical(off, on);
  EXPECT_EQ(off.metrics, nullptr);
  if (obs::kEnabled) {
    ASSERT_NE(on.metrics, nullptr);
    EXPECT_FALSE(on.metrics->times.empty());
  } else {
    EXPECT_EQ(on.metrics, nullptr);  // -DMWSIM_METRICS=OFF collects nothing
  }
}

TEST(MetricsObservationOnlyTest, Fig11ConfigMetricsOnIsByteIdenticalToOff) {
  auto p = tinyParams(core::App::Auction);
  p.config = core::Configuration::WsPhpDb;  // a fig11 curve
  const auto off = core::runExperiment(p);
  p.metrics.enabled = true;
  const auto on = core::runExperiment(p);
  expectIdentical(off, on);
}

TEST(MetricsObservationOnlyTest, ParallelSweepMetricsMatchSequential) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  auto base = tinyParams(core::App::Auction);
  base.metrics.enabled = true;
  const std::vector<core::Configuration> configs{core::Configuration::WsPhpDb,
                                                 core::Configuration::WsServletDb};
  const std::vector<int> clients{15, 30};
  core::SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = core::sweepGrid(base, configs, clients, core::SweepOptions{});
  const auto b = core::sweepGrid(base, configs, clients, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].size(), b[c].size());
    for (std::size_t i = 0; i < a[c].size(); ++i) {
      expectIdentical(a[c][i], b[c][i]);
      ASSERT_NE(a[c][i].metrics, nullptr);
      ASSERT_NE(b[c][i].metrics, nullptr);
      // The whole serialized report — series, verdict, cache hit/miss
      // counters — must be jobs-invariant, byte for byte.
      EXPECT_EQ(obs::metricsJson(*a[c][i].metrics), obs::metricsJson(*b[c][i].metrics));
    }
  }
}

// ------------------------------------------------------------ Little's law

TEST(MetricsAnalyzerTest, LittlesLawHoldsOnSteadyClosedLoopRun) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  auto p = tinyParams(core::App::Auction);
  p.config = core::Configuration::WsPhpDb;
  p.measure = 30 * kSecond;
  p.metrics.enabled = true;
  const auto result = core::runExperiment(p);
  ASSERT_NE(result.metrics, nullptr);
  const auto& little = result.metrics->verdict.little;
  ASSERT_FALSE(little.empty());
  bool checked = false;
  for (const auto& r : little) {
    // Only resources with a meaningful sample: sparse servers see too few
    // completions for the window edges to wash out.
    if (r.lambda * 30.0 < 500.0) continue;
    checked = true;
    EXPECT_LT(r.relError, 0.05)
        << r.name << ": L=" << r.L << " lambda=" << r.lambda << " W=" << r.W;
  }
  EXPECT_TRUE(checked) << "no resource saw enough completions to check";
}

// ---------------------------------------------------------------- verdicts

TEST(MetricsAnalyzerTest, FailoverVerdictFlipsToSurvivorWebCpu) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  // Two web replicas, crash the second one mid-measurement: during the
  // blackout all traffic lands on the surviving "WebServer", whose CPU
  // becomes the window's bottleneck (the auction site is generator-bound).
  // The client count offers ~1.3x one web machine's capacity, so the pair
  // is comfortable (~65% each) until the crash pegs the survivor.
  core::ExperimentParams p = tinyParams(core::App::Auction);
  p.config = core::Configuration::WsPhpDb;
  p.clients = 1400;
  p.rampUp = 10 * kSecond;
  p.measure = 40 * kSecond;
  p.metrics.enabled = true;
  core::Topology topo = core::canonicalTopology(core::Configuration::WsPhpDb);
  topo.web.replicas = 2;
  p.topology = topo;
  const double crashSec = 20.0;
  const double recoverSec = 36.0;
  p.scenario.events = {
      scenario::replicaCrash(sim::fromSeconds(crashSec), scenario::Tier::Web, 1),
      scenario::replicaRecover(sim::fromSeconds(recoverSec), scenario::Tier::Web, 1),
  };
  p.scenario.requestRetries = 2;
  p.seed = core::pointSeed(p.seed, p.app, p.mix, p.config, p.clients,
                           p.scenario.seedTag());
  const auto result = core::runExperiment(p);
  ASSERT_NE(result.metrics, nullptr);
  const obs::Verdict during =
      obs::analyze(*result.metrics, nullptr, sim::fromSeconds(crashSec),
                   sim::fromSeconds(recoverSec));
  EXPECT_EQ(during.resource, "WebServer/cpu")
      << "crash window: " << during.oneLine();
  EXPECT_TRUE(during.saturated) << during.oneLine();
  // Before the crash the two replicas split the load evenly; neither web
  // CPU can be as hot as the survivor is during the blackout.
  const obs::Verdict before =
      obs::analyze(*result.metrics, nullptr, 0, sim::fromSeconds(crashSec));
  const auto* survivorSeries = result.metrics->findUtilization("WebServer/cpu");
  ASSERT_NE(survivorSeries, nullptr);
  EXPECT_LT(result.metrics->meanUtilization(*survivorSeries, 0,
                                            sim::fromSeconds(crashSec)),
            during.utilization);
  (void)before;
}

TEST(MetricsAnalyzerTest, FlashCrowdShedNoteExplainsPlateau) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  // Open-loop arrivals far past capacity with a tight admission cap: the
  // verdict's note must attribute the completed-throughput plateau to
  // admission shedding.
  core::ExperimentParams p = tinyParams(core::App::Auction);
  p.config = core::Configuration::WsPhpDb;
  p.clients = 0;
  p.measure = 30 * kSecond;
  p.metrics.enabled = true;
  p.scenario.mode = scenario::ArrivalMode::OpenLoop;
  p.scenario.arrivals = scenario::RateSchedule::constant(30.0);
  p.scenario.maxInFlightSessions = 20;
  p.seed = core::pointSeed(p.seed, p.app, p.mix, p.config, p.clients,
                           p.scenario.seedTag());
  const auto result = core::runExperiment(p);
  ASSERT_NE(result.metrics, nullptr);
  const obs::Verdict& v = result.metrics->verdict;
  EXPECT_NE(v.note.find("admission shed"), std::string::npos) << v.oneLine();
  EXPECT_GT(result.metrics->counterTotal("wl.shed"), 0u);
}

TEST(MetricsAnalyzerTest, CounterTracksMergeIntoChromeTrace) {
  if (!obs::kEnabled || !trace::kEnabled) GTEST_SKIP() << "layer compiled out";
  auto p = tinyParams(core::App::Bookstore);
  p.config = core::Configuration::WsServletDbSync;
  p.metrics.enabled = true;
  p.trace.enabled = true;
  const auto result = core::runExperiment(p);
  ASSERT_NE(result.trace, nullptr);
  ASSERT_NE(result.metrics, nullptr);
  const std::string extra = obs::counterTrackEvents(*result.metrics);
  EXPECT_NE(extra.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(extra.find("util:Database/cpu"), std::string::npos);
  const std::string json = trace::chromeTraceJson(*result.trace, extra);
  // The merged stream carries both span events and counter tracks, and the
  // fragment lands inside the traceEvents array (valid JSON bracketing).
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(json.find("]}\n", json.find("util:")), json.size() - 3);
}

TEST(MetricsAnalyzerTest, MetricsJsonCarriesVerdictAndSeries) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  auto p = tinyParams(core::App::Auction);
  p.config = core::Configuration::WsPhpDb;
  p.metrics.enabled = true;
  const auto result = core::runExperiment(p);
  ASSERT_NE(result.metrics, nullptr);
  const std::string json = obs::metricsJson(*result.metrics);
  EXPECT_NE(json.find("\"verdict\""), std::string::npos);
  EXPECT_NE(json.find("\"one_line\": \"bottleneck="), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  EXPECT_NE(json.find("WebServer/cpu"), std::string::npos);
  EXPECT_NE(json.find("\"little\""), std::string::npos);
}

}  // namespace
}  // namespace mwsim
