/// Tests for the topology-as-data experiment construction:
///
///  * equivalence: every one of the paper's six configurations, expressed as
///    its canned Topology, produces results bit-identical to the legacy
///    `params.config`-only path (which itself now runs through
///    canonicalTopology — the test pins the canned topologies to the shapes
///    the figure benches were validated against);
///  * replication: replicated tiers keep the determinism contract (repeated
///    runs, parallel sweeps, and traced runs are bit-identical) and unique
///    per-instance machine identities ("WebServer", "WebServer#2", ...);
///  * validation: inconsistent topologies are rejected up front.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.hpp"
#include "net/network.hpp"

namespace mwsim::core {
namespace {

ExperimentParams tinyParams(App app) {
  ExperimentParams p;
  p.app = app;
  p.mix = 1;
  p.clients = 25;
  p.rampUp = 5 * sim::kSecond;
  p.measure = 20 * sim::kSecond;
  p.rampDown = 2 * sim::kSecond;
  p.bookstoreScale = 0.02;
  p.auctionHistoryScale = 0.01;
  p.bbsHistoryScale = 0.01;
  return p;
}

/// Bit-exact equality across every field the benches print, including the
/// per-tier aggregates and the web error counter.
void expectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.throughputIpm, b.throughputIpm);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.readWriteInteractions, b.readWriteInteractions);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.meanResponseSeconds, b.meanResponseSeconds);
  EXPECT_EQ(a.p90ResponseSeconds, b.p90ResponseSeconds);
  ASSERT_EQ(a.usage.size(), b.usage.size());
  for (std::size_t i = 0; i < a.usage.size(); ++i) {
    EXPECT_EQ(a.usage[i].name, b.usage[i].name);
    EXPECT_EQ(a.usage[i].tier, b.usage[i].tier);
    EXPECT_EQ(a.usage[i].cpuUtilization, b.usage[i].cpuUtilization);
    EXPECT_EQ(a.usage[i].nicMbps, b.usage[i].nicMbps);
    EXPECT_EQ(a.usage[i].nicUtilization, b.usage[i].nicUtilization);
    EXPECT_EQ(a.usage[i].nicPackets, b.usage[i].nicPackets);
    EXPECT_EQ(a.usage[i].memoryBytes, b.usage[i].memoryBytes);
  }
  ASSERT_EQ(a.tierUsage.size(), b.tierUsage.size());
  for (std::size_t i = 0; i < a.tierUsage.size(); ++i) {
    EXPECT_EQ(a.tierUsage[i].name, b.tierUsage[i].name);
    EXPECT_EQ(a.tierUsage[i].cpuUtilization, b.tierUsage[i].cpuUtilization);
    EXPECT_EQ(a.tierUsage[i].nicMbps, b.tierUsage[i].nicMbps);
    EXPECT_EQ(a.tierUsage[i].memoryBytes, b.tierUsage[i].memoryBytes);
  }
  ASSERT_EQ(a.traffic.size(), b.traffic.size());
  for (auto ita = a.traffic.begin(), itb = b.traffic.begin(); ita != a.traffic.end();
       ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.messages, itb->second.messages);
    EXPECT_EQ(ita->second.bytes, itb->second.bytes);
    EXPECT_EQ(ita->second.packets, itb->second.packets);
  }
  EXPECT_EQ(a.lockAcquisitions, b.lockAcquisitions);
  EXPECT_EQ(a.contendedLockAcquisitions, b.contendedLockAcquisitions);
  EXPECT_EQ(a.lockWaitSeconds, b.lockWaitSeconds);
  EXPECT_EQ(a.lockManagerWaitSeconds, b.lockManagerWaitSeconds);
  EXPECT_EQ(a.databaseBytes, b.databaseBytes);
  EXPECT_EQ(a.webErrors, b.webErrors);
}

TEST(TopologyEquivalenceTest, CannedTopologiesMatchLegacyConstruction) {
  // The acceptance bar for the refactor: spelling a configuration out as
  // data must not move a single event. Auction exercises every generator;
  // the sync variants add the bookstore's monitor path.
  for (const auto config : allConfigurations()) {
    auto legacy = tinyParams(App::Auction);
    legacy.config = config;
    auto data = legacy;
    data.topology = canonicalTopology(config);
    SCOPED_TRACE(configurationName(config));
    expectIdentical(runExperiment(legacy), runExperiment(data));
  }
}

TEST(TopologyEquivalenceTest, SyncBookstoreMatchesThroughMonitors) {
  auto legacy = tinyParams(App::Bookstore);
  legacy.config = Configuration::WsServletDbSync;
  auto data = legacy;
  data.topology = canonicalTopology(legacy.config);
  expectIdentical(runExperiment(legacy), runExperiment(data));
}

Topology replicatedTopology() {
  Topology t = canonicalTopology(Configuration::WsServletSepDb);
  t.web.replicas = 2;
  t.servlet.replicas = 2;
  t.db.replicas = 2;
  return t;
}

TEST(ClusterDeterminismTest, ReplicatedRunsAreBitIdentical) {
  auto p = tinyParams(App::Auction);
  p.config = Configuration::WsServletSepDb;
  p.topology = replicatedTopology();
  const auto a = runExperiment(p);
  const auto b = runExperiment(p);
  expectIdentical(a, b);
  EXPECT_EQ(a.webErrors, 0u);
}

TEST(ClusterDeterminismTest, ParallelReplicatedSweepMatchesSequential) {
  auto base = tinyParams(App::Auction);
  base.config = Configuration::WsServletSepDb;
  base.topology = replicatedTopology();
  SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = sweepClients(base, {15, 25, 35}, SweepOptions{});
  const auto b = sweepClients(base, {15, 25, 35}, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expectIdentical(a[i], b[i]);
}

TEST(ClusterDeterminismTest, TracingDoesNotPerturbReplicatedRuns) {
  auto p = tinyParams(App::Auction);
  p.config = Configuration::WsServletSepDb;
  p.topology = replicatedTopology();
  const auto untraced = runExperiment(p);
  p.trace.enabled = true;
  const auto traced = runExperiment(p);
  expectIdentical(untraced, traced);
}

TEST(ClusterDeterminismTest, ShardedAndLeastOutstandingVariantsAreDeterministic) {
  auto p = tinyParams(App::Auction);
  p.config = Configuration::WsPhpDb;
  Topology t = canonicalTopology(p.config);
  t.web.replicas = 3;
  t.webDispatch = mw::Dispatch::LeastOutstanding;
  t.db.replicas = 2;
  t.dbPolicy = mw::DbPolicy::ShardedByKey;
  p.topology = t;
  const auto a = runExperiment(p);
  const auto b = runExperiment(p);
  expectIdentical(a, b);
  EXPECT_EQ(a.webErrors, 0u);
  EXPECT_GT(a.throughputIpm, 0.0);
}

TEST(ClusterTest, ReplicatedInstancesGetUniqueNamesAndTierAggregates) {
  auto p = tinyParams(App::Auction);
  p.config = Configuration::WsServletSepDb;
  p.topology = replicatedTopology();
  const auto r = runExperiment(p);
  // Replica 0 keeps the legacy bare name so single-replica results and the
  // paper-ordered usage table stay unchanged; later replicas are #N.
  ASSERT_NE(r.machine("WebServer"), nullptr);
  ASSERT_NE(r.machine("WebServer#2"), nullptr);
  ASSERT_NE(r.machine("Servlet Container#2"), nullptr);
  ASSERT_NE(r.machine("Database#2"), nullptr);
  EXPECT_EQ(r.machine("WebServer#3"), nullptr);
  EXPECT_EQ(r.machine("WebServer")->tier, "WebServer");
  EXPECT_EQ(r.machine("WebServer#2")->tier, "WebServer");
  // Tier aggregates: one row per tier, memory summed over the replicas.
  ASSERT_NE(r.tier("Database"), nullptr);
  EXPECT_EQ(r.tier("Database")->memoryBytes,
            r.machine("Database")->memoryBytes + r.machine("Database#2")->memoryBytes);
  EXPECT_EQ(r.tier("WebServer")->cores,
            r.machine("WebServer")->cores + r.machine("WebServer#2")->cores);
  // Both web replicas actually served traffic under round-robin dispatch.
  EXPECT_GT(r.machine("WebServer")->cpuUtilization, 0.0);
  EXPECT_GT(r.machine("WebServer#2")->cpuUtilization, 0.0);
  // Every database replica holds its own full dataset clone.
  EXPECT_EQ(static_cast<std::size_t>(r.tier("Database")->memoryBytes),
            r.databaseBytes + 2u * 48'000'000u);
}

TEST(ClusterTest, DuplicateMachineNamesAreAHardError) {
  sim::Simulation simulation(1);
  net::Machine first(simulation, "WebServer");
  EXPECT_THROW(net::Machine(simulation, "WebServer"), std::invalid_argument);
}

TEST(TopologyValidationTest, RejectsInconsistentTopologies) {
  Topology t = canonicalTopology(Configuration::WsPhpDb);
  t.web.replicas = 0;
  EXPECT_THROW(validateTopology(t), std::invalid_argument);

  t = canonicalTopology(Configuration::WsPhpDb);
  t.syncLocking = true;  // monitors need the servlet generator
  EXPECT_THROW(validateTopology(t), std::invalid_argument);

  t = canonicalTopology(Configuration::WsServletEjbDb);
  t.servletColocated = true;  // EJB always runs a dedicated servlet tier
  EXPECT_THROW(validateTopology(t), std::invalid_argument);

  t = canonicalTopology(Configuration::WsPhpDb);
  t.db.nicBitsPerSecond = 0.0;
  EXPECT_THROW(validateTopology(t), std::invalid_argument);

  // An invalid override surfaces from runExperiment too.
  auto p = tinyParams(App::Auction);
  p.config = Configuration::WsPhpDb;
  p.topology = canonicalTopology(p.config);
  p.topology->db.replicas = -1;
  EXPECT_THROW(runExperiment(p), std::invalid_argument);
}

TEST(TopologyValidationTest, SummaryNamesTheMovingParts) {
  Topology t = replicatedTopology();
  const auto s = topologySummary(t);
  EXPECT_NE(s.find("servlet"), std::string::npos);
  EXPECT_NE(s.find("web×2"), std::string::npos);
  EXPECT_NE(s.find("db×2"), std::string::npos);
  EXPECT_NE(s.find("master-replica"), std::string::npos);
}

TEST(HeterogeneousTierTest, RejectsMalformedPerReplicaCores) {
  Topology t = canonicalTopology(Configuration::WsPhpDb);
  t.web.replicas = 2;
  t.web.coresPerReplica = {2};  // must have one entry per replica
  EXPECT_THROW(validateTopology(t), std::invalid_argument);

  t = canonicalTopology(Configuration::WsPhpDb);
  t.web.replicas = 2;
  t.web.coresPerReplica = {2, 0};  // every replica needs at least one core
  EXPECT_THROW(validateTopology(t), std::invalid_argument);
}

TEST(HeterogeneousTierTest, SummaryAnnotatesPerReplicaCores) {
  Topology t = canonicalTopology(Configuration::WsPhpDb);
  t.web.replicas = 2;
  t.web.coresPerReplica = {4, 1};
  validateTopology(t);
  EXPECT_NE(topologySummary(t).find("web×2[4c,1c]"), std::string::npos);
}

TEST(HeterogeneousTierTest, UniformPerReplicaCoresMatchHomogeneousRuns) {
  // coresPerReplica set to the tier's homogeneous core count must build the
  // exact same machines — results stay bit-identical.
  auto homogeneous = tinyParams(App::Auction);
  homogeneous.config = Configuration::WsPhpDb;
  Topology t = canonicalTopology(Configuration::WsPhpDb);
  t.web.replicas = 2;
  homogeneous.topology = t;

  auto perReplica = homogeneous;
  perReplica.topology->web.coresPerReplica = {t.web.cores, t.web.cores};
  expectIdentical(runExperiment(homogeneous), runExperiment(perReplica));
}

TEST(HeterogeneousTierTest, MixedCoreRunsAreDeterministic) {
  auto p = tinyParams(App::Auction);
  p.config = Configuration::WsPhpDb;
  Topology t = canonicalTopology(Configuration::WsPhpDb);
  t.web.replicas = 2;
  t.web.coresPerReplica = {2, 1};  // one big box plus a small spill-over
  p.topology = t;
  const auto a = runExperiment(p);
  expectIdentical(a, runExperiment(p));
  EXPECT_GT(a.throughputIpm, 0.0);
}

}  // namespace
}  // namespace mwsim::core
