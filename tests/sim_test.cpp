#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/ring_queue.hpp"
#include "sim/sim.hpp"

namespace mwsim::sim {
namespace {

TEST(TimeTest, Conversions) {
  EXPECT_EQ(fromSeconds(1.0), kSecond);
  EXPECT_EQ(fromSeconds(0.001), kMillisecond);
  EXPECT_EQ(fromMillis(1.0), kMillisecond);
  EXPECT_EQ(fromMicros(1.0), kMicrosecond);
  EXPECT_DOUBLE_EQ(toSeconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(toMillis(kSecond), 1000.0);
  EXPECT_EQ(fromSeconds(1.5e-9), 2);  // rounds to nearest ns
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3 * kSecond, [&] { order.push_back(3); });
  sim.schedule(1 * kSecond, [&] { order.push_back(1); });
  sim.schedule(2 * kSecond, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3 * kSecond);
}

TEST(SimulationTest, SameTimestampIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(kSecond, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, RunUntilAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule(5 * kSecond, [&] { ++fired; });
  sim.schedule(15 * kSecond, [&] { ++fired; });
  sim.runUntil(10 * kSecond);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10 * kSecond);
  sim.runUntil(20 * kSecond);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, DelayAwaitable) {
  Simulation sim;
  SimTime woke = -1;
  sim.spawn([](Simulation& s, SimTime& out) -> Task<> {
    co_await s.delay(7 * kSecond);
    out = s.now();
  }(sim, woke));
  sim.run();
  EXPECT_EQ(woke, 7 * kSecond);
}

TEST(SimulationTest, TaskReturnsValue) {
  Simulation sim;
  int result = 0;
  auto inner = [](Simulation& s) -> Task<int> {
    co_await s.delay(kSecond);
    co_return 42;
  };
  sim.spawn([](Simulation& s, auto inner, int& out) -> Task<> {
    out = co_await inner(s);
  }(sim, inner, result));
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(SimulationTest, NestedTasksChainAcrossDelays) {
  Simulation sim;
  std::vector<std::string> log;
  auto leaf = [](Simulation& s, std::vector<std::string>& l) -> Task<int> {
    l.push_back("leaf-start");
    co_await s.delay(kSecond);
    l.push_back("leaf-end");
    co_return 5;
  };
  auto mid = [leaf](Simulation& s, std::vector<std::string>& l) -> Task<int> {
    l.push_back("mid-start");
    const int v = co_await leaf(s, l);
    co_await s.delay(kSecond);
    l.push_back("mid-end");
    co_return v * 2;
  };
  sim.spawn([mid](Simulation& s, std::vector<std::string>& l) -> Task<> {
    const int v = co_await mid(s, l);
    l.push_back("root-got-" + std::to_string(v));
  }(sim, log));
  sim.run();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.back(), "root-got-10");
  EXPECT_EQ(sim.now(), 2 * kSecond);
}

TEST(SimulationTest, ExceptionInProcessPropagatesFromRun) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<> {
    co_await s.delay(kSecond);
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SimulationTest, ExceptionPropagatesThroughTaskChain) {
  Simulation sim;
  bool caught = false;
  auto thrower = [](Simulation& s) -> Task<int> {
    co_await s.delay(kSecond);
    throw std::runtime_error("inner");
  };
  sim.spawn([thrower](Simulation& s, bool& c) -> Task<> {
    try {
      (void)co_await thrower(s);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(SimulationTest, ManyProcessesComplete) {
  Simulation sim;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.spawn([](Simulation& s, int delaySec, int& d) -> Task<> {
      co_await s.delay(delaySec * kMillisecond);
      ++d;
    }(sim, i % 17, done));
  }
  sim.run();
  EXPECT_EQ(done, 1000);
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

TEST(SimulationTest, ShutdownDestroysSuspendedProcesses) {
  Simulation sim;
  struct Probe {
    bool* destroyed;
    ~Probe() { *destroyed = true; }
  };
  bool destroyed = false;
  sim.spawn([](Simulation& s, bool& d) -> Task<> {
    Probe p{&d};
    co_await s.delay(kHour);  // never reached within the horizon
  }(sim, destroyed));
  sim.runUntil(kSecond);
  EXPECT_FALSE(destroyed);
  EXPECT_EQ(sim.liveProcesses(), 1u);
  sim.shutdown();
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

// ---------------------------------------------------------------- Resource

Task<> holdFor(Simulation& sim, Resource& res, Duration d, std::vector<int>& order,
               int id) {
  ResourceHold hold = co_await res.acquire();
  order.push_back(id);
  co_await sim.delay(d);
}

TEST(ResourceTest, CapacityLimitsConcurrency) {
  Simulation sim;
  Resource res(sim, 2, "pool");
  std::vector<int> order;
  int maxInUse = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulation& s, Resource& r, std::vector<int>& o, int id,
                 int& peak) -> Task<> {
      ResourceHold hold = co_await r.acquire();
      o.push_back(id);
      peak = std::max(peak, r.inUse());
      co_await s.delay(kSecond);
    }(sim, res, order, i, maxInUse));
  }
  sim.run();
  EXPECT_EQ(order.size(), 6u);
  EXPECT_EQ(maxInUse, 2);
  EXPECT_EQ(res.inUse(), 0);
  EXPECT_EQ(res.acquisitions(), 6u);
}

TEST(ResourceTest, GrantsAreFifo) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn(holdFor(sim, res, kSecond, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, WaitTimeIsAccounted) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<int> order;
  sim.spawn(holdFor(sim, res, 2 * kSecond, order, 0));
  sim.spawn(holdFor(sim, res, kSecond, order, 1));
  sim.run();
  // Second process waited 2 s for the first to release.
  EXPECT_EQ(res.totalWait(), 2 * kSecond);
}

TEST(ResourceTest, UtilizationIntegral) {
  Simulation sim;
  Resource res(sim, 4);
  std::vector<int> order;
  // Two holders for 10 s each, in parallel: integral = 20 unit-seconds.
  sim.spawn(holdFor(sim, res, 10 * kSecond, order, 0));
  sim.spawn(holdFor(sim, res, 10 * kSecond, order, 1));
  sim.run();
  EXPECT_NEAR(res.busyUnitSeconds(), 20.0, 1e-6);
}

TEST(ResourceTest, EarlyReleaseViaHold) {
  Simulation sim;
  Resource res(sim, 1);
  bool secondRan = false;
  sim.spawn([](Simulation& s, Resource& r) -> Task<> {
    ResourceHold hold = co_await r.acquire();
    hold.release();
    co_await s.delay(10 * kSecond);  // holds nothing while sleeping
  }(sim, res));
  sim.spawn([](Simulation& s, Resource& r, bool& ran) -> Task<> {
    co_await s.delay(kSecond);
    ResourceHold hold = co_await r.acquire();
    ran = true;
    co_await s.delay(kSecond);
  }(sim, res, secondRan));
  sim.runUntil(3 * kSecond);
  EXPECT_TRUE(secondRan);
  sim.shutdown();
}

TEST(ResourceTest, ShutdownWithQueuedWaitersIsClean) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) sim.spawn(holdFor(sim, res, kHour, order, i));
  sim.runUntil(kSecond);
  EXPECT_EQ(order.size(), 1u);
  sim.shutdown();  // must not crash or resume stale handles
}

// --------------------------------------------------------------- CpuResource

Task<> burn(Simulation& sim, CpuResource& cpu, Duration work, SimTime& doneAt) {
  co_await cpu.consume(work);
  doneAt = sim.now();
}

TEST(CpuTest, SingleJobRunsAtFullRate) {
  Simulation sim;
  CpuResource cpu(sim, 1);
  SimTime done = 0;
  sim.spawn(burn(sim, cpu, 3 * kSecond, done));
  sim.run();
  EXPECT_NEAR(toSeconds(done), 3.0, 1e-6);
}

TEST(CpuTest, TwoJobsShareOneCore) {
  Simulation sim;
  CpuResource cpu(sim, 1);
  SimTime doneA = 0;
  SimTime doneB = 0;
  sim.spawn(burn(sim, cpu, kSecond, doneA));
  sim.spawn(burn(sim, cpu, kSecond, doneB));
  sim.run();
  // Each has 1 s of demand but shares the core: both finish at ~2 s.
  EXPECT_NEAR(toSeconds(doneA), 2.0, 1e-3);
  EXPECT_NEAR(toSeconds(doneB), 2.0, 1e-3);
}

TEST(CpuTest, ShortJobFinishesFirstUnderSharing) {
  Simulation sim;
  CpuResource cpu(sim, 1);
  SimTime doneShort = 0;
  SimTime doneLong = 0;
  sim.spawn(burn(sim, cpu, 3 * kSecond, doneLong));
  sim.spawn(burn(sim, cpu, kSecond, doneShort));
  sim.run();
  // Short job: shares until it has 1 s of service => finishes at 2 s.
  EXPECT_NEAR(toSeconds(doneShort), 2.0, 1e-3);
  // Long job: 1 s served by t=2, then runs alone for remaining 2 s => 4 s.
  EXPECT_NEAR(toSeconds(doneLong), 4.0, 1e-3);
}

TEST(CpuTest, TwoCoresRunTwoJobsAtFullRate) {
  Simulation sim;
  CpuResource cpu(sim, 2);
  SimTime doneA = 0;
  SimTime doneB = 0;
  sim.spawn(burn(sim, cpu, kSecond, doneA));
  sim.spawn(burn(sim, cpu, kSecond, doneB));
  sim.run();
  EXPECT_NEAR(toSeconds(doneA), 1.0, 1e-3);
  EXPECT_NEAR(toSeconds(doneB), 1.0, 1e-3);
}

TEST(CpuTest, LateArrivalSlowsExistingJob) {
  Simulation sim;
  CpuResource cpu(sim, 1);
  SimTime doneA = 0;
  SimTime doneB = 0;
  sim.spawn(burn(sim, cpu, 2 * kSecond, doneA));
  sim.spawn([](Simulation& s, CpuResource& c, SimTime& done) -> Task<> {
    co_await s.delay(kSecond);
    co_await c.consume(kSecond);
    done = s.now();
  }(sim, cpu, doneB));
  sim.run();
  // A runs alone [0,1) (1 s served), shares [1,3) (0.5 s/s) => done at 3 s.
  EXPECT_NEAR(toSeconds(doneA), 3.0, 1e-3);
  // B arrives at 1 s, gets 0.5 s/s while sharing with A until 3 s (1 s
  // served) => done at 3 s.
  EXPECT_NEAR(toSeconds(doneB), 3.0, 1e-3);
}

TEST(CpuTest, BusyIntegralMatchesDemand) {
  Simulation sim;
  CpuResource cpu(sim, 1);
  SimTime d1 = 0;
  SimTime d2 = 0;
  SimTime d3 = 0;
  sim.spawn(burn(sim, cpu, kSecond, d1));
  sim.spawn(burn(sim, cpu, 2 * kSecond, d2));
  sim.spawn(burn(sim, cpu, 500 * kMillisecond, d3));
  sim.run();
  // Total busy core-seconds equals total demand (single core, work-conserving).
  EXPECT_NEAR(cpu.busyCoreSeconds(), 3.5, 1e-3);
  EXPECT_EQ(cpu.jobsCompleted(), 3u);
  EXPECT_EQ(cpu.activeJobs(), 0);
}

TEST(CpuTest, ManyJobsConserveWork) {
  Simulation sim;
  CpuResource cpu(sim, 4);
  double totalDemand = 0.0;
  SimTime sink = 0;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Duration w = fromMillis(rng.uniformReal(0.1, 50.0));
    totalDemand += toSeconds(w);
    sim.spawn([](Simulation& s, CpuResource& c, Duration work, Duration start,
                 SimTime& out) -> Task<> {
      co_await s.delay(start);
      co_await c.consume(work);
      out = s.now();
    }(sim, cpu, w, fromMillis(rng.uniformReal(0.0, 100.0)), sink));
  }
  sim.run();
  EXPECT_EQ(cpu.jobsCompleted(), 200u);
  EXPECT_NEAR(cpu.busyCoreSeconds(), totalDemand, totalDemand * 1e-6 + 1e-5);
}

TEST(CpuTest, ZeroWorkCompletesImmediately) {
  Simulation sim;
  CpuResource cpu(sim, 1);
  SimTime done = -1;
  sim.spawn(burn(sim, cpu, 0, done));
  sim.run();
  EXPECT_EQ(done, 0);
}

// ------------------------------------------------------------------ RwLock

TEST(RwLockTest, ReadersShare) {
  Simulation sim;
  RwLock lock(sim);
  int concurrentPeak = 0;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulation& s, RwLock& l, int& peak) -> Task<> {
      LockHold h = co_await l.lockRead();
      peak = std::max(peak, l.activeReaders());
      co_await s.delay(kSecond);
    }(sim, lock, concurrentPeak));
  }
  sim.run();
  EXPECT_EQ(concurrentPeak, 4);
}

TEST(RwLockTest, WriterExcludesReaders) {
  Simulation sim;
  RwLock lock(sim);
  std::vector<std::string> log;
  sim.spawn([](Simulation& s, RwLock& l, std::vector<std::string>& lg) -> Task<> {
    LockHold h = co_await l.lockWrite();
    lg.push_back("w-start");
    co_await s.delay(2 * kSecond);
    lg.push_back("w-end");
  }(sim, lock, log));
  sim.spawn([](Simulation& s, RwLock& l, std::vector<std::string>& lg) -> Task<> {
    co_await s.delay(kSecond);
    LockHold h = co_await l.lockRead();
    lg.push_back("r");
  }(sim, lock, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"w-start", "w-end", "r"}));
}

TEST(RwLockTest, WriterPriorityBlocksNewReaders) {
  Simulation sim;
  RwLock lock(sim);
  std::vector<std::string> log;
  // Reader holds the lock [0, 2s).
  sim.spawn([](Simulation& s, RwLock& l, std::vector<std::string>& lg) -> Task<> {
    LockHold h = co_await l.lockRead();
    lg.push_back("r1-start");
    co_await s.delay(2 * kSecond);
  }(sim, lock, log));
  // Writer arrives at 1 s and must wait for r1.
  sim.spawn([](Simulation& s, RwLock& l, std::vector<std::string>& lg) -> Task<> {
    co_await s.delay(kSecond);
    LockHold h = co_await l.lockWrite();
    lg.push_back("w");
    co_await s.delay(kSecond);
  }(sim, lock, log));
  // Reader r2 arrives at 1.5 s. Without writer priority it would join r1;
  // with writer priority it queues behind the writer.
  sim.spawn([](Simulation& s, RwLock& l, std::vector<std::string>& lg) -> Task<> {
    co_await s.delay(1500 * kMillisecond);
    LockHold h = co_await l.lockRead();
    lg.push_back("r2");
  }(sim, lock, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"r1-start", "w", "r2"}));
  EXPECT_EQ(lock.contendedAcquisitions(), 2u);
}

TEST(RwLockTest, WriteUnlockWakesAllQueuedReaders) {
  Simulation sim;
  RwLock lock(sim);
  int readersAtOnce = 0;
  sim.spawn([](Simulation& s, RwLock& l) -> Task<> {
    LockHold h = co_await l.lockWrite();
    co_await s.delay(kSecond);
  }(sim, lock));
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulation& s, RwLock& l, int& peak) -> Task<> {
      co_await s.delay(kMillisecond);
      LockHold h = co_await l.lockRead();
      peak = std::max(peak, l.activeReaders());
      co_await s.delay(kSecond);
    }(sim, lock, readersAtOnce));
  }
  sim.run();
  EXPECT_EQ(readersAtOnce, 3);
}

TEST(RwLockTest, WaitTimeAccounting) {
  Simulation sim;
  RwLock lock(sim);
  sim.spawn([](Simulation& s, RwLock& l) -> Task<> {
    LockHold h = co_await l.lockWrite();
    co_await s.delay(5 * kSecond);
  }(sim, lock));
  sim.spawn([](Simulation& s, RwLock& l) -> Task<> {
    co_await s.delay(kSecond);
    LockHold h = co_await l.lockRead();
  }(sim, lock));
  sim.run();
  EXPECT_EQ(lock.totalWait(), 4 * kSecond);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, ExponentialMean) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / n, 7.0, 0.1);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ZipfIsSkewed) {
  Rng rng(3);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.zipf(1000, 1.0);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
    if (v == 1) ++ones;
  }
  // P(1) for zipf(1000, 1.0) is ~1/H_1000 ~ 0.133.
  EXPECT_GT(ones, n / 20);
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(4);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(100, 0.0) <= 50) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.02);
}

TEST(RngTest, DiscretePicksByWeight) {
  Rng rng(5);
  const std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.discrete(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(RngTest, NurandInRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.nurand(255, 1, 1000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
  }
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(9);
  Rng b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
  }
}

TEST(RngTest, DerivedSeedsDiffer) {
  const auto s1 = deriveSeed(1, 1);
  const auto s2 = deriveSeed(1, 2);
  const auto s3 = deriveSeed(2, 1);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(s1, deriveSeed(1, 1));
}

TEST(RngTest, RandomStringLengthAndCharset) {
  Rng rng(11);
  const std::string s = rng.randomString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RingQueueTest, WrapsAroundAtPowerOfTwoBoundary) {
  // Initial capacity is 16: drive head_ right up to the boundary, then push
  // elements that physically wrap to the front of the buffer.
  RingQueue<int> q;
  for (int i = 0; i < 16; ++i) q.push_back(i);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  // head_ == 15, one live element; the next pushes wrap indices 0..13.
  for (int i = 16; i < 30; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 15u);
  for (int i = 15; i < 30; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, GrowsWhileWrappedPreservingOrder) {
  // Fill to capacity with head_ != 0 so the live range straddles the
  // physical end of the buffer, then push once more to force grow() to
  // linearize the wrapped contents.
  RingQueue<int> q;
  for (int i = 0; i < 16; ++i) q.push_back(i);
  for (int i = 0; i < 10; ++i) q.pop_front();  // head_ = 10
  for (int i = 16; i < 26; ++i) q.push_back(i);  // full again, wrapped
  EXPECT_EQ(q.size(), 16u);
  q.push_back(26);  // grow 16 -> 32 while wrapped
  EXPECT_EQ(q.size(), 17u);
  for (int i = 10; i <= 26; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, FifoUnderInterleavedPushPop) {
  // Ratchet pattern: +3 / -2 keeps the queue short while head_ and tail
  // sweep the ring many times, crossing the wrap point repeatedly.
  RingQueue<int> q;
  int nextIn = 0;
  int nextOut = 0;
  for (int step = 0; step < 200; ++step) {
    for (int k = 0; k < 3; ++k) q.push_back(nextIn++);
    for (int k = 0; k < 2 && !q.empty(); ++k) {
      EXPECT_EQ(q.front(), nextOut++);
      q.pop_front();
    }
  }
  while (!q.empty()) {
    EXPECT_EQ(q.front(), nextOut++);
    q.pop_front();
  }
  EXPECT_EQ(nextIn, nextOut);
}

TEST(RingQueueTest, IndexingIsRelativeToHead) {
  RingQueue<int> q;
  for (int i = 0; i < 16; ++i) q.push_back(i);
  for (int i = 0; i < 12; ++i) q.pop_front();
  for (int i = 16; i < 24; ++i) q.push_back(i);  // live range wraps
  ASSERT_EQ(q.size(), 12u);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q[i], 12 + static_cast<int>(i));
  }
  EXPECT_EQ(q[0], q.front());
}

TEST(RingQueueTest, TakeAtRemovesMiddleElementPreservingOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 16; ++i) q.push_back(i);
  for (int i = 0; i < 14; ++i) q.pop_front();
  for (int i = 16; i < 22; ++i) q.push_back(i);  // wrapped live range 14..21
  ASSERT_EQ(q.size(), 8u);
  EXPECT_EQ(q.takeAt(3), 17);  // middle, across the wrap point
  EXPECT_EQ(q.takeAt(0), 14);  // head fast path
  ASSERT_EQ(q.size(), 6u);
  const std::vector<int> expect{15, 16, 18, 19, 20, 21};
  for (int v : expect) {
    EXPECT_EQ(q.front(), v);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, TakeAtLastElement) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  EXPECT_EQ(q.takeAt(4), 4);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.takeAt(3), 3);
  EXPECT_EQ(q.front(), 0);
  EXPECT_EQ(q.size(), 3u);
}

}  // namespace
}  // namespace mwsim::sim
