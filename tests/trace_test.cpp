/// Tests for the per-request tracing subsystem:
///
///  * the accounting invariant — every nanosecond between a traced
///    interaction's start and end is attributed to exactly one category of
///    exactly one span, so the exclusive components of a span tree sum to
///    the end-to-end response time EXACTLY (integer ns, no rounding slack) —
///    across all six configurations and both paper applications;
///  * attribution plausibility: lock wait shows up under LOCK TABLES,
///    Java-monitor wait shows up in the servlet tier under (sync), and the
///    lock-manager mutex wait (previously dropped from every report) is
///    surfaced through ExperimentResult::lockManagerWaitSeconds;
///  * the Chrome-trace JSON exporter emits structurally sound output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "trace/collector.hpp"

namespace mwsim::core {
namespace {

/// Everything here observes collected traces, which a -DMWSIM_TRACING=OFF
/// build can never produce (ExperimentResult::trace stays null).
#define MWSIM_REQUIRE_TRACING() \
  if (!trace::kEnabled) GTEST_SKIP() << "built with MWSIM_TRACING=OFF"

ExperimentParams tracedTinyParams(App app, Configuration config) {
  ExperimentParams p;
  p.app = app;
  p.config = config;
  p.mix = app == App::Bookstore ? 2 : 1;  // write-heavy: exercises locking
  p.clients = 25;
  p.rampUp = 5 * sim::kSecond;
  p.measure = 15 * sim::kSecond;
  p.rampDown = 2 * sim::kSecond;
  p.bookstoreScale = 0.02;
  p.auctionHistoryScale = 0.01;
  p.bbsHistoryScale = 0.01;
  p.trace.enabled = true;
  return p;
}

sim::Duration spanExclusiveTotal(const trace::RetainedSpan& s) {
  sim::Duration total = 0;
  for (sim::Duration d : s.excl) total += d;
  return total;
}

const trace::TierStats* tier(const trace::Report& r, const std::string& name) {
  for (const auto& t : r.tiers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

sim::Duration tierCategoryNs(const trace::Report& r, const std::string& name,
                             trace::Category c) {
  const trace::TierStats* t = tier(r, name);
  return t == nullptr ? 0 : t->exclNs[static_cast<std::size_t>(c)];
}

/// The tentpole invariant, checked over every retained trace of a run.
void expectExactAccounting(const trace::Report& report) {
  ASSERT_GT(report.traces, 0u);
  ASSERT_FALSE(report.retained.empty());
  for (const trace::RetainedTrace& t : report.retained) {
    ASSERT_FALSE(t.spans.empty());
    const trace::RetainedSpan& root = t.spans.front();
    EXPECT_EQ(root.parent, -1);
    sim::Duration treeExclusive = 0;
    for (const trace::RetainedSpan& s : t.spans) {
      treeExclusive += spanExclusiveTotal(s);
      // Spans nest: children live inside their parent's lifetime.
      EXPECT_GE(s.end, s.start);
      if (s.parent >= 0) {
        const trace::RetainedSpan& parent = t.spans[static_cast<std::size_t>(s.parent)];
        EXPECT_GE(s.start, parent.start) << t.interaction << " span " << s.name;
        EXPECT_LE(s.end, parent.end) << t.interaction << " span " << s.name;
      }
    }
    EXPECT_EQ(treeExclusive, root.end - root.start)
        << t.interaction << " (client " << t.clientId
        << "): exclusive components must sum to end-to-end latency exactly";
  }
}

TEST(TraceTest, ExactAccountingAcrossAllConfigurationsAndApps) {
  MWSIM_REQUIRE_TRACING();
  for (App app : {App::Bookstore, App::Auction}) {
    for (Configuration config : allConfigurations()) {
      SCOPED_TRACE(std::string(configurationName(config)) + " / " +
                   (app == App::Bookstore ? "bookstore" : "auction"));
      const ExperimentResult result = runExperiment(tracedTinyParams(app, config));
      ASSERT_NE(result.trace, nullptr);
      expectExactAccounting(*result.trace);
      // Aggregates cover the same population as the stats histograms's
      // in-window subset: every trace the report counted fed every tier sum.
      EXPECT_EQ(result.trace->endToEndSec.count(), result.trace->traces);
    }
  }
}

TEST(TraceTest, TiersMatchConfigurationTopology) {
  MWSIM_REQUIRE_TRACING();
  const auto php = runExperiment(
      tracedTinyParams(App::Bookstore, Configuration::WsPhpDb));
  ASSERT_NE(php.trace, nullptr);
  EXPECT_GT(tier(*php.trace, "php")->spans, 0u);
  EXPECT_EQ(tier(*php.trace, "servlet")->spans, 0u);
  EXPECT_EQ(tier(*php.trace, "ejb")->spans, 0u);
  EXPECT_GT(tier(*php.trace, "web")->spans, 0u);
  EXPECT_GT(tier(*php.trace, "db")->spans, 0u);
  EXPECT_GT(tier(*php.trace, "dbserver")->spans, 0u);
  // Every db round trip reaches the server at least once (LOCK/UNLOCK and
  // ordinary statements alike).
  EXPECT_GE(tier(*php.trace, "dbserver")->spans, tier(*php.trace, "db")->spans);

  const auto ejb = runExperiment(
      tracedTinyParams(App::Bookstore, Configuration::WsServletEjbDb));
  ASSERT_NE(ejb.trace, nullptr);
  EXPECT_EQ(tier(*ejb.trace, "php")->spans, 0u);
  EXPECT_GT(tier(*ejb.trace, "servlet")->spans, 0u);
  EXPECT_GT(tier(*ejb.trace, "ejb")->spans, 0u);
  // The remote EJB call costs network time the co-located tiers never pay.
  EXPECT_GT(tierCategoryNs(*ejb.trace, "ejb", trace::Category::NetTransfer), 0);
}

TEST(TraceTest, LockWaitAttributionMatchesLockingStrategy) {
  MWSIM_REQUIRE_TRACING();
  // Tiny-scale runs barely contend, so this test loads the database harder:
  // fig05-style client counts on the ordering mix make lock queues certain.
  auto params = tracedTinyParams(App::Bookstore, Configuration::WsServletDb);
  params.clients = 200;

  // LOCK TABLES (fig05's losing strategy): lock wait accrues inside the
  // database server, and the LOCK_open drain stalls — invisible before this
  // PR — show up in lockManagerWaitSeconds.
  const auto lockTables = runExperiment(params);
  ASSERT_NE(lockTables.trace, nullptr);
  EXPECT_GT(tierCategoryNs(*lockTables.trace, "dbserver", trace::Category::LockWait), 0);
  EXPECT_GT(lockTables.lockWaitSeconds, 0.0);
  EXPECT_GT(lockTables.lockManagerWaitSeconds, 0.0);

  // Java monitors (sync): critical-section wait moves into the servlet
  // tier's Java monitors instead.
  params.config = Configuration::WsServletDbSync;
  const auto sync = runExperiment(params);
  ASSERT_NE(sync.trace, nullptr);
  EXPECT_GT(tierCategoryNs(*sync.trace, "servlet", trace::Category::LockWait), 0);
}

TEST(TraceTest, DisabledTracingLeavesNoReport) {
  MWSIM_REQUIRE_TRACING();
  auto p = tracedTinyParams(App::Auction, Configuration::WsPhpDb);
  p.trace.enabled = false;
  const auto result = runExperiment(p);
  EXPECT_EQ(result.trace, nullptr);
}

TEST(TraceTest, RetentionCapBoundsExportedTraces) {
  MWSIM_REQUIRE_TRACING();
  auto p = tracedTinyParams(App::Auction, Configuration::WsPhpDb);
  p.trace.maxRetainedTraces = 3;
  const auto result = runExperiment(p);
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(result.trace->retained.size(), 3u);
  EXPECT_GT(result.trace->traces, 3u) << "aggregates must still cover every trace";
}

TEST(TraceTest, ChromeTraceJsonIsStructurallySound) {
  MWSIM_REQUIRE_TRACING();
  const auto result = runExperiment(
      tracedTinyParams(App::Bookstore, Configuration::WsServletSepDb));
  ASSERT_NE(result.trace, nullptr);
  const std::string json = trace::chromeTraceJson(*result.trace);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"interaction\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dbserver\""), std::string::npos);
  // Balanced braces/brackets and no stray control characters — the cheap
  // local proxy for "loads in Perfetto" (CI validates with a JSON parser).
  long braces = 0;
  long brackets = 0;
  bool inString = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { inString = !inString; continue; }
    if (inString) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20);
      continue;
    }
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_FALSE(inString);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace mwsim::core
