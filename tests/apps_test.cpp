#include <gtest/gtest.h>

#include <set>

#include "apps/auction/auction.hpp"
#include "apps/auction/auction_ejb.hpp"
#include "apps/auction/schema.hpp"
#include "apps/bbs/bbs.hpp"
#include "apps/bbs/schema.hpp"
#include "apps/bookstore/bookstore.hpp"
#include "apps/bookstore/bookstore_ejb.hpp"
#include "apps/bookstore/schema.hpp"
#include "middleware/ejb.hpp"

namespace mwsim {
namespace {

using apps::auction::AuctionLogic;
using apps::bookstore::BookstoreLogic;
using sim::Task;

// ----------------------------------------------------------- bookstore data

class BookstoreDataTest : public ::testing::Test {
 protected:
  BookstoreDataTest() {
    scale_.scale = 0.02;  // 5,760 customers: fast but structurally complete
    apps::bookstore::createSchema(db_);
    sim::Rng rng(7);
    apps::bookstore::populate(db_, scale_, rng);
  }
  apps::bookstore::Scale scale_;
  db::Database db_;
};

TEST_F(BookstoreDataTest, AllTenTablesExist) {
  for (const char* t : {"customers", "address", "orders", "order_line", "credit_info",
                        "items", "authors", "countries", "shopping_cart",
                        "shopping_cart_line"}) {
    EXPECT_TRUE(db_.hasTable(t)) << t;
  }
}

TEST_F(BookstoreDataTest, PaperScaleCounts) {
  EXPECT_EQ(db_.table("items").size(), 10'000u);
  EXPECT_EQ(db_.table("customers").size(), 5'760u);
  EXPECT_EQ(db_.table("address").size(), 5'760u);
  EXPECT_EQ(db_.table("countries").size(), 92u);
  EXPECT_EQ(db_.table("authors").size(), 2'500u);
  EXPECT_EQ(db_.table("orders").size(),
            static_cast<std::size_t>(0.9 * 5'760));
  EXPECT_GT(db_.table("order_line").size(), db_.table("orders").size());
  EXPECT_EQ(db_.table("credit_info").size(), db_.table("orders").size());
}

TEST_F(BookstoreDataTest, ForeignKeysResolve) {
  db::Executor exec(db_);
  // Every order_line points to a live order and item.
  auto r = exec.query(
      "SELECT COUNT(*) AS n FROM order_line ol JOIN orders o ON ol.ol_o_id = o.o_id");
  EXPECT_EQ(static_cast<std::size_t>(r.resultSet.intAt(0, "n")),
            db_.table("order_line").size());
  auto items = exec.query(
      "SELECT COUNT(*) AS n FROM items i JOIN authors a ON i.i_a_id = a.a_id");
  EXPECT_EQ(items.resultSet.intAt(0, "n"), 10'000);
}

TEST_F(BookstoreDataTest, FullScaleMatchesPaper) {
  apps::bookstore::Scale full;
  EXPECT_EQ(full.customers(), 288'000);
  EXPECT_EQ(full.items, 10'000);
}

TEST_F(BookstoreDataTest, DeterministicForSameSeed) {
  db::Database db2;
  apps::bookstore::createSchema(db2);
  sim::Rng rng(7);
  apps::bookstore::populate(db2, scale_, rng);
  db::Executor a(db_);
  db::Executor b(db2);
  auto ra = a.query("SELECT i_title, i_cost FROM items WHERE i_id = 42");
  auto rb = b.query("SELECT i_title, i_cost FROM items WHERE i_id = 42");
  EXPECT_EQ(ra.resultSet.stringAt(0, "i_title"), rb.resultSet.stringAt(0, "i_title"));
}

// ------------------------------------------------------------ auction data

class AuctionDataTest : public ::testing::Test {
 protected:
  AuctionDataTest() {
    scale_.historyScale = 0.01;  // 10k users
    apps::auction::createSchema(db_);
    sim::Rng rng(7);
    apps::auction::populate(db_, scale_, rng);
  }
  apps::auction::Scale scale_;
  db::Database db_;
};

TEST_F(AuctionDataTest, AllNineTablesExist) {
  for (const char* t : {"users", "items", "old_items", "bids", "buy_now", "comments",
                        "categories", "regions", "ids"}) {
    EXPECT_TRUE(db_.hasTable(t)) << t;
  }
}

TEST_F(AuctionDataTest, PaperScaleCounts) {
  EXPECT_EQ(db_.table("items").size(), 33'000u);
  EXPECT_EQ(db_.table("categories").size(), 40u);
  EXPECT_EQ(db_.table("regions").size(), 62u);
  EXPECT_EQ(db_.table("users").size(), 10'000u);
  EXPECT_EQ(db_.table("old_items").size(), 5'000u);
  EXPECT_EQ(db_.table("bids").size(), 330'000u);
  EXPECT_EQ(db_.table("comments").size(), 5'000u);
}

TEST_F(AuctionDataTest, FullScaleMatchesPaper) {
  apps::auction::Scale full;
  EXPECT_EQ(full.users(), 1'000'000);
  EXPECT_EQ(full.oldItems(), 500'000);
  EXPECT_EQ(full.comments(), 500'000);
  EXPECT_EQ(full.activeItems * full.bidsPerItem, 330'000);
}

TEST_F(AuctionDataTest, IdsTableSeeded) {
  db::Executor exec(db_);
  auto r = exec.query("SELECT id_value FROM ids WHERE id_name = 'items'");
  EXPECT_EQ(r.resultSet.intAt(0, "id_value"), 33'001);
}

TEST_F(AuctionDataTest, DenormalizedBidStatsPresent) {
  db::Executor exec(db_);
  auto r = exec.query("SELECT MAX(i_nb_of_bids) AS m FROM items");
  EXPECT_GT(r.resultSet.intAt(0, "m"), 0);
}

// -------------------------------------------------------------------- mixes

TEST(BookstoreMixTest, ReadWriteFractionsMatchPaper) {
  // Paper §3.1: browsing 95% read-only, shopping 80%, ordering 50%.
  const double browsing =
      apps::bookstore::mixMatrix(apps::bookstore::Mix::Browsing).readWriteFraction();
  const double shopping =
      apps::bookstore::mixMatrix(apps::bookstore::Mix::Shopping).readWriteFraction();
  const double ordering =
      apps::bookstore::mixMatrix(apps::bookstore::Mix::Ordering).readWriteFraction();
  EXPECT_NEAR(browsing, 0.05, 0.025);
  EXPECT_NEAR(shopping, 0.20, 0.05);
  EXPECT_NEAR(ordering, 0.50, 0.08);
  EXPECT_LT(browsing, shopping);
  EXPECT_LT(shopping, ordering);
}

TEST(BookstoreMixTest, FourteenInteractions) {
  const auto mix = apps::bookstore::mixMatrix(apps::bookstore::Mix::Shopping);
  EXPECT_EQ(mix.stateCount(), 14u);
  EXPECT_EQ(mix.stateName(mix.initialState()), "Home");
}

TEST(BookstoreMixTest, SearchFormFlowsToResults) {
  const auto mix = apps::bookstore::mixMatrix(apps::bookstore::Mix::Shopping);
  sim::Rng rng(5);
  std::size_t searchReq = 0;
  for (std::size_t i = 0; i < mix.stateCount(); ++i) {
    if (mix.stateName(i) == "SearchRequest") searchReq = i;
  }
  int results = 0;
  for (int i = 0; i < 1000; ++i) {
    if (mix.stateName(mix.next(searchReq, rng)) == "SearchResults") ++results;
  }
  EXPECT_GT(results, 800);  // 85% forced transition
}

TEST(AuctionMixTest, TwentySixInteractions) {
  const auto mix = apps::auction::mixMatrix(apps::auction::Mix::Bidding);
  EXPECT_EQ(mix.stateCount(), 26u);
}

TEST(AuctionMixTest, BrowsingMixIsReadOnly) {
  const auto mix = apps::auction::mixMatrix(apps::auction::Mix::Browsing);
  EXPECT_DOUBLE_EQ(mix.readWriteFraction(), 0.0);
  // No transitions ever reach a write state.
  sim::Rng rng(3);
  std::size_t state = mix.initialState();
  for (int i = 0; i < 5000; ++i) {
    state = mix.next(state, rng);
    EXPECT_FALSE(mix.isReadWrite(state)) << mix.stateName(state);
  }
}

TEST(AuctionMixTest, BiddingMixNearFifteenPercentWrites) {
  const auto mix = apps::auction::mixMatrix(apps::auction::Mix::Bidding);
  EXPECT_NEAR(mix.readWriteFraction(), 0.15, 0.05);
}

TEST(MixMatrixTest, StationaryDistributionSumsToOne) {
  const auto mix = apps::bookstore::mixMatrix(apps::bookstore::Mix::Shopping);
  const auto pi = mix.stationaryDistribution();
  double sum = 0;
  for (double p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ----------------------------------------------- interaction logic (SQL)

class BookstoreLogicTest : public ::testing::Test {
 public:
  BookstoreLogicTest()
      : simulation_(11),
        network_(simulation_),
        host_(simulation_, "host"),
        dbMachine_(simulation_, "db"),
        dbServer_(simulation_, dbMachine_, db_, cost_),
        rng_(3) {
    scale_.scale = 0.02;
    apps::bookstore::createSchema(db_);
    sim::Rng dataRng(7);
    apps::bookstore::populate(db_, scale_, dataRng);
  }

  /// Runs one interaction to completion and returns the page.
  mw::Page run(const char* interaction, mw::ClientSession& session,
               mw::LockStrategy strategy = mw::LockStrategy::DatabaseLocks) {
    BookstoreLogic logic(scale_);
    mw::Page out;
    simulation_.spawn([](BookstoreLogicTest& t, BookstoreLogic& l, const char* name,
                         mw::ClientSession& s, mw::LockStrategy strat,
                         mw::Page& result) -> Task<> {
      mw::DbSession db(t.simulation_, t.network_, t.host_, t.dbServer_,
                       mw::DriverKind::NativeMySql, t.cost_);
      mw::AppContext ctx{t.simulation_, t.host_, db, strat, &t.monitors_, t.rng_,
                         t.cost_};
      result = co_await l.invoke(name, ctx, s);
    }(*this, logic, interaction, session, strategy, out));
    simulation_.run();
    return out;
  }

  db::Executor executor() { return db::Executor(db_); }

  mw::CostModel cost_;
  sim::Simulation simulation_;
  net::Network network_;
  net::Machine host_;
  net::Machine dbMachine_;
  db::Database db_;
  apps::bookstore::Scale scale_;
  mw::DatabaseServer dbServer_;
  sim::NamedMutexSet monitors_{simulation_};
  sim::Rng rng_;
};

TEST_F(BookstoreLogicTest, AllFourteenInteractionsProducePages) {
  const auto mix = apps::bookstore::mixMatrix(apps::bookstore::Mix::Shopping);
  mw::ClientSession session;
  for (std::size_t i = 0; i < mix.stateCount(); ++i) {
    mw::Page page = run(mix.stateName(i).c_str(), session);
    EXPECT_GT(page.htmlBytes, 1000u) << mix.stateName(i);
    EXPECT_GT(page.imageCount, 0) << mix.stateName(i);
  }
}

TEST_F(BookstoreLogicTest, UnknownInteractionThrows) {
  mw::ClientSession session;
  EXPECT_THROW(run("Bogus", session), std::runtime_error);
}

TEST_F(BookstoreLogicTest, SearchRequestIsStatic) {
  mw::ClientSession session;
  const auto before = dbServer_.statementsProcessed();
  run("SearchRequest", session);
  EXPECT_EQ(dbServer_.statementsProcessed(), before);
}

TEST_F(BookstoreLogicTest, SecureInteractionsAreFlagged) {
  mw::ClientSession session;
  EXPECT_TRUE(run("BuyRequest", session).secure);
  EXPECT_TRUE(run("BuyConfirm", session).secure);
  EXPECT_TRUE(run("OrderInquiry", session).secure);
  EXPECT_FALSE(run("Home", session).secure);
  EXPECT_FALSE(run("SearchResults", session).secure);
}

TEST_F(BookstoreLogicTest, BuyConfirmCreatesOrderRows) {
  auto exec = executor();
  const auto ordersBefore = db_.table("orders").size();
  const auto linesBefore = db_.table("order_line").size();
  mw::ClientSession session;
  run("ShoppingCart", session);  // puts an item in the persistent cart
  run("BuyConfirm", session);
  EXPECT_EQ(db_.table("orders").size(), ordersBefore + 1);
  EXPECT_GT(db_.table("order_line").size(), linesBefore);
  EXPECT_TRUE(session.cart.empty());
  // Cart lines were consumed.
  auto r = exec.query("SELECT COUNT(*) AS n FROM shopping_cart_line WHERE scl_sc_id = ?",
                      std::vector<db::Value>{db::Value(session.cartId)});
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 0);
}

TEST_F(BookstoreLogicTest, BuyConfirmDecrementsStock) {
  mw::ClientSession session;
  session.userId = 1;
  session.lastItemId = 77;
  auto exec = executor();
  const auto before =
      exec.query("SELECT i_stock FROM items WHERE i_id = 77").resultSet.intAt(0, "i_stock");
  run("ShoppingCart", session);  // adds item 77 (lastItemId)
  run("BuyConfirm", session);
  const auto after =
      exec.query("SELECT i_stock FROM items WHERE i_id = 77").resultSet.intAt(0, "i_stock");
  EXPECT_LT(after, before);
}

TEST_F(BookstoreLogicTest, ShoppingCartPersistsLines) {
  mw::ClientSession session;
  run("ShoppingCart", session);
  ASSERT_GE(session.cartId, 0);
  auto exec = executor();
  auto r = exec.query("SELECT COUNT(*) AS n FROM shopping_cart_line WHERE scl_sc_id = ?",
                      std::vector<db::Value>{db::Value(session.cartId)});
  EXPECT_GE(r.resultSet.intAt(0, "n"), 1);
}

TEST_F(BookstoreLogicTest, CustomerRegistrationSetsUser) {
  mw::ClientSession session;
  run("CustomerRegistration", session);
  EXPECT_GT(session.userId, 0);
}

TEST_F(BookstoreLogicTest, BestSellersReflectsRecentOrders) {
  mw::ClientSession session;
  const auto before = dbServer_.statementsProcessed();
  run("BestSellers", session);
  EXPECT_GT(dbServer_.statementsProcessed(), before + 1);
  EXPECT_GT(session.lastItemId, 0);  // best-seller list fed navigation
}

TEST_F(BookstoreLogicTest, WorksUnderAppSyncStrategy) {
  mw::ClientSession session;
  run("ShoppingCart", session, mw::LockStrategy::AppSync);
  const auto before = dbServer_.statementsProcessed();
  mw::Page page = run("BuyConfirm", session, mw::LockStrategy::AppSync);
  EXPECT_TRUE(page.secure);
  // No LOCK/UNLOCK statements reach the database, only the real queries.
  EXPECT_GT(dbServer_.statementsProcessed(), before + 4);
}

// ----------------------------------------------- interaction logic (auction)

class AuctionLogicTest : public ::testing::Test {
 public:
  AuctionLogicTest()
      : simulation_(13),
        network_(simulation_),
        host_(simulation_, "host"),
        dbMachine_(simulation_, "db"),
        dbServer_(simulation_, dbMachine_, db_, cost_),
        rng_(5) {
    scale_.historyScale = 0.01;
    apps::auction::createSchema(db_);
    sim::Rng dataRng(9);
    apps::auction::populate(db_, scale_, dataRng);
  }

  mw::Page run(const char* interaction, mw::ClientSession& session) {
    AuctionLogic logic(scale_);
    mw::Page out;
    simulation_.spawn([](AuctionLogicTest& t, AuctionLogic& l, const char* name,
                         mw::ClientSession& s, mw::Page& result) -> Task<> {
      mw::DbSession db(t.simulation_, t.network_, t.host_, t.dbServer_,
                       mw::DriverKind::NativeMySql, t.cost_);
      mw::AppContext ctx{t.simulation_, t.host_, db, mw::LockStrategy::DatabaseLocks,
                         nullptr, t.rng_, t.cost_};
      result = co_await l.invoke(name, ctx, s);
    }(*this, logic, interaction, session, out));
    simulation_.run();
    return out;
  }

  mw::CostModel cost_;
  sim::Simulation simulation_;
  net::Network network_;
  net::Machine host_;
  net::Machine dbMachine_;
  db::Database db_;
  apps::auction::Scale scale_;
  mw::DatabaseServer dbServer_;
  sim::Rng rng_;
};

TEST_F(AuctionLogicTest, AllTwentySixInteractionsProducePages) {
  const auto mix = apps::auction::mixMatrix(apps::auction::Mix::Bidding);
  mw::ClientSession session;
  for (std::size_t i = 0; i < mix.stateCount(); ++i) {
    mw::Page page = run(mix.stateName(i).c_str(), session);
    EXPECT_GT(page.htmlBytes, 1000u) << mix.stateName(i);
  }
}

TEST_F(AuctionLogicTest, StoreBidInsertsAndUpdatesStats) {
  mw::ClientSession session;
  session.lastItemId = 123;
  db::Executor exec(db_);
  const auto bidsBefore = db_.table("bids").size();
  const auto nbBefore =
      exec.query("SELECT i_nb_of_bids FROM items WHERE i_id = 123")
          .resultSet.intAt(0, "i_nb_of_bids");
  run("StoreBid", session);
  EXPECT_EQ(db_.table("bids").size(), bidsBefore + 1);
  const auto nbAfter =
      exec.query("SELECT i_nb_of_bids FROM items WHERE i_id = 123")
          .resultSet.intAt(0, "i_nb_of_bids");
  EXPECT_EQ(nbAfter, nbBefore + 1);
}

TEST_F(AuctionLogicTest, RegisterItemUsesIdsSequence) {
  mw::ClientSession session;
  db::Executor exec(db_);
  const auto before =
      exec.query("SELECT id_value FROM ids WHERE id_name = 'items'")
          .resultSet.intAt(0, "id_value");
  run("RegisterItem", session);
  const auto after =
      exec.query("SELECT id_value FROM ids WHERE id_name = 'items'")
          .resultSet.intAt(0, "id_value");
  EXPECT_EQ(after, before + 1);
  EXPECT_EQ(session.lastItemId, after);
}

TEST_F(AuctionLogicTest, StoreCommentUpdatesRating) {
  mw::ClientSession session;
  const auto commentsBefore = db_.table("comments").size();
  run("StoreComment", session);
  EXPECT_EQ(db_.table("comments").size(), commentsBefore + 1);
}

TEST_F(AuctionLogicTest, RegisterUserCreatesAccount) {
  mw::ClientSession session;
  const auto before = db_.table("users").size();
  run("RegisterUser", session);
  EXPECT_EQ(db_.table("users").size(), before + 1);
  EXPECT_GT(session.userId, 10'000);  // a fresh id past the initial load
}

TEST_F(AuctionLogicTest, ViewItemUsesDenormalizedStats) {
  mw::ClientSession session;
  const auto before = dbServer_.statementsProcessed();
  run("ViewItem", session);
  // One item read + one seller read — no scan of the bids table.
  EXPECT_LE(dbServer_.statementsProcessed() - before, 3u);
}

TEST_F(AuctionLogicTest, AboutMeAggregatesUserActivity) {
  mw::ClientSession session;
  const auto before = dbServer_.statementsProcessed();
  run("AboutMe", session);
  EXPECT_GE(dbServer_.statementsProcessed() - before, 6u);
}

TEST_F(AuctionLogicTest, FormPagesAreDatabaseFree) {
  mw::ClientSession session;
  const auto before = dbServer_.statementsProcessed();
  run("PutBidAuth", session);
  run("Home", session);
  run("SellItemForm", session);
  EXPECT_EQ(dbServer_.statementsProcessed(), before);
}

}  // namespace
}  // namespace mwsim

// ------------------------------------------------- bulletin board extension

namespace mwsim {
namespace {

TEST(BbsDataTest, TablesAndScale) {
  db::Database db;
  apps::bbs::Scale scale;
  scale.historyScale = 0.01;
  apps::bbs::createSchema(db);
  sim::Rng rng(3);
  apps::bbs::populate(db, scale, rng);
  for (const char* t : {"users", "categories", "stories", "old_stories", "comments",
                        "old_comments", "submissions", "moderator_log"}) {
    EXPECT_TRUE(db.hasTable(t)) << t;
  }
  EXPECT_EQ(db.table("stories").size(), 3'000u);
  EXPECT_EQ(db.table("users").size(), 5'000u);
  EXPECT_EQ(db.table("old_stories").size(), 2'000u);
  EXPECT_GT(db.table("comments").size(), 10'000u);  // ~10/story average
}

TEST(BbsMixTest, SubmissionMixHasModestWrites) {
  const auto mix = apps::bbs::mixMatrix(apps::bbs::Mix::Submission);
  EXPECT_EQ(mix.stateCount(), 16u);
  EXPECT_NEAR(mix.readWriteFraction(), 0.12, 0.06);
}

TEST(BbsMixTest, BrowsingMixIsReadOnly) {
  EXPECT_DOUBLE_EQ(apps::bbs::mixMatrix(apps::bbs::Mix::Browsing).readWriteFraction(),
                   0.0);
}

class BbsLogicTest : public ::testing::Test {
 public:
  BbsLogicTest()
      : simulation_(21),
        network_(simulation_),
        host_(simulation_, "host"),
        dbMachine_(simulation_, "db"),
        dbServer_(simulation_, dbMachine_, db_, cost_),
        rng_(8) {
    scale_.historyScale = 0.01;
    apps::bbs::createSchema(db_);
    sim::Rng dataRng(3);
    apps::bbs::populate(db_, scale_, dataRng);
  }

  mw::Page run(const char* interaction, mw::ClientSession& session) {
    apps::bbs::BbsLogic logic(scale_);
    mw::Page out;
    simulation_.spawn([](BbsLogicTest& t, apps::bbs::BbsLogic& l, const char* name,
                         mw::ClientSession& s, mw::Page& result) -> Task<> {
      mw::DbSession db(t.simulation_, t.network_, t.host_, t.dbServer_,
                       mw::DriverKind::NativeMySql, t.cost_);
      mw::AppContext ctx{t.simulation_, t.host_, db, mw::LockStrategy::DatabaseLocks,
                         nullptr, t.rng_, t.cost_};
      result = co_await l.invoke(name, ctx, s);
    }(*this, logic, interaction, session, out));
    simulation_.run();
    return out;
  }

  mw::CostModel cost_;
  sim::Simulation simulation_;
  net::Network network_;
  net::Machine host_;
  net::Machine dbMachine_;
  db::Database db_;
  apps::bbs::Scale scale_;
  mw::DatabaseServer dbServer_;
  sim::Rng rng_;
};

TEST_F(BbsLogicTest, AllSixteenInteractionsProducePages) {
  const auto mix = apps::bbs::mixMatrix(apps::bbs::Mix::Submission);
  mw::ClientSession session;
  for (std::size_t i = 0; i < mix.stateCount(); ++i) {
    mw::Page page = run(mix.stateName(i).c_str(), session);
    EXPECT_GT(page.htmlBytes, 1000u) << mix.stateName(i);
  }
}

TEST_F(BbsLogicTest, StoreCommentBumpsCounter) {
  mw::ClientSession session;
  session.lastItemId = 17;
  db::Executor exec(db_);
  const auto before = exec.query("SELECT s_nb_comments FROM stories WHERE s_id = 17")
                          .resultSet.intAt(0, "s_nb_comments");
  run("StoreComment", session);
  const auto after = exec.query("SELECT s_nb_comments FROM stories WHERE s_id = 17")
                         .resultSet.intAt(0, "s_nb_comments");
  EXPECT_EQ(after, before + 1);
  EXPECT_EQ(db_.table("comments").size() % 1'000'000, db_.table("comments").size());
}

TEST_F(BbsLogicTest, StoreStoryAddsStoryAndSubmission) {
  mw::ClientSession session;
  const auto stories = db_.table("stories").size();
  const auto subs = db_.table("submissions").size();
  run("StoreStory", session);
  EXPECT_EQ(db_.table("stories").size(), stories + 1);
  EXPECT_EQ(db_.table("submissions").size(), subs + 1);
  EXPECT_GT(session.lastItemId, 0);
}

TEST_F(BbsLogicTest, ViewStoryScalesWithComments) {
  mw::ClientSession session;
  session.lastItemId = 5;
  mw::Page page = run("ViewStory", session);
  db::Executor exec(db_);
  const auto comments =
      exec.query("SELECT COUNT(*) AS n FROM comments WHERE c_story_id = 5")
          .resultSet.intAt(0, "n");
  EXPECT_GT(page.htmlBytes,
            4000u + static_cast<std::size_t>(comments) * 400);
}

}  // namespace
}  // namespace mwsim
