#include <gtest/gtest.h>

#include "middleware/app_context.hpp"
#include "middleware/database_server.hpp"
#include "middleware/db_session.hpp"
#include "middleware/ejb.hpp"
#include "middleware/php_module.hpp"
#include "middleware/servlet_engine.hpp"
#include "middleware/web_server.hpp"
#include "stats/usage.hpp"

namespace mwsim::mw {
namespace {

using sim::kMillisecond;
using sim::kSecond;
using sim::Task;

/// Shared fixture: a tiny inventory database plus machines for every tier.
class MiddlewareTest : public ::testing::Test {
 public:  // accessed from free coroutine lambdas
  MiddlewareTest()
      : simulation_(42),
        network_(simulation_),
        clients_(simulation_, "clients", 64, /*nic=*/1e12),
        web_(simulation_, "web"),
        servletMachine_(simulation_, "servlet"),
        ejbMachine_(simulation_, "ejb"),
        dbMachine_(simulation_, "db"),
        dbServer_(simulation_, dbMachine_, database_, cost_) {
    database_.createTable(db::SchemaBuilder("stock")
                              .intCol("id").primaryKey(true)
                              .stringCol("name")
                              .intCol("qty").indexed()
                              .build());
    db::Executor loader(database_);
    for (int i = 1; i <= 50; ++i) {
      const db::Value params[] = {db::Value("widget" + std::to_string(i)),
                                  db::Value(100 + i)};
      loader.query("INSERT INTO stock (name, qty) VALUES (?, ?)", params);
    }
  }

  ~MiddlewareTest() override { simulation_.shutdown(); }

  DbSession makeSession(net::Machine& host, DriverKind driver) {
    return DbSession(simulation_, network_, host, dbServer_, driver, cost_);
  }

  CostModel cost_;
  sim::Simulation simulation_;
  net::Network network_;
  net::Machine clients_;
  net::Machine web_;
  net::Machine servletMachine_;
  net::Machine ejbMachine_;
  net::Machine dbMachine_;
  db::Database database_;
  DatabaseServer dbServer_;
  /// Size-1 wrapper for the generators (they are written against the
  /// replicated database interface; one backend takes the legacy path).
  DbCluster dbCluster_{dbServer_};
};

TEST_F(MiddlewareTest, DbSessionRoundTripTakesTime) {
  sim::SimTime done = 0;
  std::int64_t qty = 0;
  simulation_.spawn([](MiddlewareTest& t, sim::SimTime& doneAt, std::int64_t& out) -> Task<> {
    DbSession db = t.makeSession(t.web_, DriverKind::NativeMySql);
    auto r = co_await db.execute("SELECT qty FROM stock WHERE id = 7");
    out = r.resultSet.intAt(0, "qty");
    doneAt = t.simulation_.now();
  }(*this, done, qty));
  simulation_.run();
  EXPECT_EQ(qty, 107);
  // Round trip: driver CPU + 2 network hops + DB CPU; must exceed the bare
  // propagation (200us) and be well under a millisecondish budget.
  EXPECT_GT(done, sim::fromMicros(200));
  EXPECT_LT(done, sim::fromMillis(5));
}

TEST_F(MiddlewareTest, JdbcDriverCostsMoreThanNative) {
  sim::SimTime nativeDone = 0;
  sim::SimTime jdbcDone = 0;
  auto probe = [](MiddlewareTest& t, DriverKind kind, sim::SimTime& out) -> Task<> {
    DbSession db = t.makeSession(t.web_, kind);
    for (int i = 0; i < 20; ++i) {
      co_await db.execute("SELECT * FROM stock WHERE id = 3");
    }
    out = t.simulation_.now();
  };
  {
    simulation_.spawn(probe(*this, DriverKind::NativeMySql, nativeDone));
    simulation_.run();
  }
  sim::Simulation sim2(43);
  net::Network net2(sim2);
  net::Machine host2(sim2, "web2");
  net::Machine dbm2(sim2, "db2");
  DatabaseServer srv2(sim2, dbm2, database_, cost_);
  sim2.spawn([](sim::Simulation& s, net::Network& n, net::Machine& h, DatabaseServer& srv,
                const CostModel& cost, sim::SimTime& out) -> Task<> {
    DbSession db(s, n, h, srv, DriverKind::Jdbc, cost);
    for (int i = 0; i < 20; ++i) {
      co_await db.execute("SELECT * FROM stock WHERE id = 3");
    }
    out = s.now();
  }(sim2, net2, host2, srv2, cost_, jdbcDone));
  sim2.run();
  EXPECT_GT(jdbcDone, nativeDone);
}

TEST_F(MiddlewareTest, ImplicitWriteLockSerializesWriters) {
  // Two writers updating the same table must not overlap their DB service;
  // with dbPerRowModified they serialize on the write lock.
  sim::SimTime firstDone = 0;
  sim::SimTime secondDone = 0;
  auto writer = [](MiddlewareTest& t, sim::SimTime& out) -> Task<> {
    DbSession db = t.makeSession(t.web_, DriverKind::NativeMySql);
    co_await db.execute("UPDATE stock SET qty = qty + 1 WHERE id = 1");
    out = t.simulation_.now();
  };
  simulation_.spawn(writer(*this, firstDone));
  simulation_.spawn(writer(*this, secondDone));
  simulation_.run();
  EXPECT_NE(firstDone, secondDone);
  EXPECT_EQ(dbServer_.tableLock("stock").writeAcquisitions(), 2u);
}

TEST_F(MiddlewareTest, ExplicitLockTablesHeldAcrossRoundTrips) {
  // Process A locks the table and sleeps between statements; process B's
  // read must wait until A unlocks.
  std::vector<std::string> order;
  simulation_.spawn([](MiddlewareTest& t, std::vector<std::string>& log) -> Task<> {
    DbSession db = t.makeSession(t.web_, DriverKind::NativeMySql);
    sim::Rng rng(1);
    AppContext ctx{t.simulation_, t.web_, db, LockStrategy::DatabaseLocks, nullptr, rng,
                   t.cost_};
    auto cs = co_await ctx.enterCritical(lockSet().write("stock"));
    log.push_back("locked");
    co_await db.execute("UPDATE stock SET qty = 0 WHERE id = 2");
    co_await t.simulation_.delay(50 * kMillisecond);  // think inside the CS
    co_await db.execute("UPDATE stock SET qty = 5 WHERE id = 2");
    co_await ctx.leaveCritical(std::move(cs));
    log.push_back("unlocked");
  }(*this, order));
  simulation_.spawn([](MiddlewareTest& t, std::vector<std::string>& log) -> Task<> {
    co_await t.simulation_.delay(5 * kMillisecond);
    DbSession db = t.makeSession(t.servletMachine_, DriverKind::Jdbc);
    auto r = co_await db.execute("SELECT qty FROM stock WHERE id = 2");
    log.push_back("read=" + r.resultSet.at(0, "qty").toDisplayString());
  }(*this, order));
  simulation_.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "locked");
  EXPECT_EQ(order[1], "unlocked");
  EXPECT_EQ(order[2], "read=5");  // reader saw the post-section value
}

TEST_F(MiddlewareTest, AppSyncMonitorsDoNotBlockDbReaders) {
  // With AppSync, the critical section holds a JVM monitor; a concurrent
  // plain reader is NOT blocked (only short implicit locks in the DB).
  std::vector<std::string> order;
  sim::NamedMutexSet monitors(simulation_);
  simulation_.spawn([](MiddlewareTest& t, sim::NamedMutexSet& mon,
                       std::vector<std::string>& log) -> Task<> {
    DbSession db = t.makeSession(t.servletMachine_, DriverKind::Jdbc);
    sim::Rng rng(1);
    AppContext ctx{t.simulation_, t.servletMachine_, db, LockStrategy::AppSync, &mon, rng,
                   t.cost_};
    auto cs = co_await ctx.enterCritical(lockSet().write("stock"));
    log.push_back("locked");
    co_await db.execute("UPDATE stock SET qty = 0 WHERE id = 2");
    co_await t.simulation_.delay(50 * kMillisecond);
    co_await db.execute("UPDATE stock SET qty = 5 WHERE id = 2");
    co_await ctx.leaveCritical(std::move(cs));
    log.push_back("unlocked");
  }(*this, monitors, order));
  simulation_.spawn([](MiddlewareTest& t, std::vector<std::string>& log) -> Task<> {
    co_await t.simulation_.delay(5 * kMillisecond);
    DbSession db = t.makeSession(t.web_, DriverKind::NativeMySql);
    co_await db.execute("SELECT qty FROM stock WHERE id = 2");
    log.push_back("read");
  }(*this, order));
  simulation_.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "locked");
  EXPECT_EQ(order[1], "read");  // reader proceeded inside the monitor window
  EXPECT_EQ(order[2], "unlocked");
}

TEST_F(MiddlewareTest, AppSyncMonitorsExcludeEachOther) {
  std::vector<int> order;
  sim::NamedMutexSet monitors(simulation_);
  auto worker = [](MiddlewareTest& t, sim::NamedMutexSet& mon, std::vector<int>& log,
                   int id) -> Task<> {
    DbSession db = t.makeSession(t.servletMachine_, DriverKind::Jdbc);
    sim::Rng rng(1);
    AppContext ctx{t.simulation_, t.servletMachine_, db, LockStrategy::AppSync, &mon, rng,
                   t.cost_};
    auto cs = co_await ctx.enterCritical(lockSet().write("stock"));
    log.push_back(id);
    co_await t.simulation_.delay(10 * kMillisecond);
    log.push_back(id);
    co_await ctx.leaveCritical(std::move(cs));
  };
  simulation_.spawn(worker(*this, monitors, order, 1));
  simulation_.spawn(worker(*this, monitors, order, 2));
  simulation_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 1, 2, 2}));
}

// Business logic stub: one indexed read, small page.
class StubLogic final : public SqlBusinessLogic {
 public:
  sim::Task<Page> invoke(std::string_view interaction, AppContext& ctx,
                         ClientSession&) override {
    Page page;
    if (interaction == "static") {
      page.htmlBytes = 2000;
      co_return page;
    }
    auto r = co_await ctx.query("SELECT * FROM stock WHERE id = 5");
    page.htmlBytes = 3000 + r.stats.resultBytes;
    page.imageCount = 2;
    page.imageBytes = 8000;
    page.queryCount = 1;
    if (interaction == "secure") page.secure = true;
    co_return page;
  }
};

TEST_F(MiddlewareTest, PhpPipelineServesPage) {
  StubLogic logic;
  WebServer ws(simulation_, web_, network_, clients_, cost_);
  PhpModule php(simulation_, network_, web_, dbCluster_, logic, cost_, 7);
  ws.setGenerator(&php);

  ClientSession session;
  InteractionResult result;
  simulation_.spawn([](WebServer& w, ClientSession& s, InteractionResult& out) -> Task<> {
    Request req{"view", &s};
    out = co_await w.serve(req);
  }(ws, session, result));
  simulation_.run();
  EXPECT_GT(result.page.htmlBytes, 3000u);
  EXPECT_GT(result.totalResponseBytes, result.page.htmlBytes + result.page.imageBytes);
  // All CPU burned on web + db machines only.
  EXPECT_GT(web_.cpu().busyCoreSeconds(), 0.0);
  EXPECT_GT(dbMachine_.cpu().busyCoreSeconds(), 0.0);
  EXPECT_EQ(servletMachine_.cpu().busyCoreSeconds(), 0.0);
}

TEST_F(MiddlewareTest, SecurePageChargesSsl) {
  StubLogic logic;
  WebServer ws(simulation_, web_, network_, clients_, cost_);
  PhpModule php(simulation_, network_, web_, dbCluster_, logic, cost_, 7);
  ws.setGenerator(&php);
  ClientSession session;

  auto run = [&](const std::string& name) {
    simulation_.spawn([](WebServer& w, ClientSession& s, std::string n) -> Task<> {
      Request req{n, &s};
      (void)co_await w.serve(req);
    }(ws, session, name));
    simulation_.run();
    return web_.cpu().busyCoreSeconds();
  };
  const double plain = run("view");
  const double withSsl = run("secure") - plain;
  EXPECT_GT(withSsl, plain - 1e-9);  // the secure run burned at least SSL extra
}

TEST_F(MiddlewareTest, RemoteServletMovesCpuOffWebServer) {
  StubLogic logic;

  // Co-located servlet engine.
  WebServer ws1(simulation_, web_, network_, clients_, cost_);
  ServletEngine co(simulation_, network_, web_, web_, dbCluster_, logic, false, cost_, 7);
  ws1.setGenerator(&co);
  ClientSession s1;
  simulation_.spawn([](WebServer& w, ClientSession& s) -> Task<> {
    Request req{"view", &s};
    for (int i = 0; i < 10; ++i) (void)co_await w.serve(req);
  }(ws1, s1));
  simulation_.run();
  const double webCpuColocated = web_.cpu().busyCoreSeconds();
  EXPECT_EQ(servletMachine_.cpu().busyCoreSeconds(), 0.0);

  // Dedicated servlet machine.
  WebServer ws2(simulation_, web_, network_, clients_, cost_);
  ServletEngine remote(simulation_, network_, web_, servletMachine_, dbCluster_, logic, false,
                       cost_, 7);
  ws2.setGenerator(&remote);
  ClientSession s2;
  simulation_.spawn([](WebServer& w, ClientSession& s) -> Task<> {
    Request req{"view", &s};
    for (int i = 0; i < 10; ++i) (void)co_await w.serve(req);
  }(ws2, s2));
  simulation_.run();
  const double webCpuRemote = web_.cpu().busyCoreSeconds() - webCpuColocated;
  EXPECT_GT(servletMachine_.cpu().busyCoreSeconds(), 0.0);
  EXPECT_LT(webCpuRemote, webCpuColocated * 0.7);
  // AJP traffic crossed the LAN.
  EXPECT_GT(network_.trafficBetween(web_, servletMachine_).bytes, 0u);
}

TEST_F(MiddlewareTest, ServletCostsMoreWebCpuThanPhpWhenColocated) {
  StubLogic logic;
  WebServer ws(simulation_, web_, network_, clients_, cost_);

  PhpModule php(simulation_, network_, web_, dbCluster_, logic, cost_, 7);
  ws.setGenerator(&php);
  ClientSession s1;
  simulation_.spawn([](WebServer& w, ClientSession& s) -> Task<> {
    Request req{"view", &s};
    for (int i = 0; i < 20; ++i) (void)co_await w.serve(req);
  }(ws, s1));
  simulation_.run();
  const double phpCpu = web_.cpu().busyCoreSeconds();

  ServletEngine servlet(simulation_, network_, web_, web_, dbCluster_, logic, false, cost_, 7);
  ws.setGenerator(&servlet);
  ClientSession s2;
  simulation_.spawn([](WebServer& w, ClientSession& s) -> Task<> {
    Request req{"view", &s};
    for (int i = 0; i < 20; ++i) (void)co_await w.serve(req);
  }(ws, s2));
  simulation_.run();
  const double servletCpu = web_.cpu().busyCoreSeconds() - phpCpu;
  EXPECT_GT(servletCpu, phpCpu * 1.15);
}

// --------------------------------------------------------------------- EJB

class StubEjbLogic final : public EjbBusinessLogic {
 public:
  sim::Task<Page> invoke(std::string_view, EjbContext& ctx, ClientSession&) override {
    Page page;
    // Finder over qty (indexed) + field reads: the classic entity-bean walk.
    auto items = co_await ctx.em.finder(
        "SELECT id FROM stock WHERE qty >= ? AND qty <= ?", sqlArgs(110, 120), "stock");
    for (auto h : items) {
      (void)co_await ctx.em.get(h, "name");
      (void)co_await ctx.em.get(h, "qty");
    }
    if (!items.empty()) {
      auto qty = co_await ctx.em.get(items.front(), "qty");
      co_await ctx.em.set(items.front(), "qty", db::Value(qty.asInt() - 1));
    }
    page.htmlBytes = 4000;
    page.imageCount = 1;
    page.imageBytes = 4000;
    co_return page;
  }
};

TEST_F(MiddlewareTest, EjbPipelineIssuesNPlusOneQueries) {
  StubEjbLogic logic;
  WebServer ws(simulation_, web_, network_, clients_, cost_);
  EjbGenerator gen(simulation_, network_, web_, servletMachine_, ejbMachine_, dbCluster_, logic,
                   cost_, 7);
  ws.setGenerator(&gen);
  ClientSession session;
  InteractionResult result;
  simulation_.spawn([](WebServer& w, ClientSession& s, InteractionResult& out) -> Task<> {
    Request req{"browse", &s};
    out = co_await w.serve(req);
  }(ws, session, result));
  simulation_.run();

  // 11 matching stock rows: 1 finder + 11 activations + 1 commit UPDATE.
  EXPECT_EQ(result.page.queryCount, 13);
  EXPECT_GT(result.page.dataBytes, 0u);
  // Every tier burned CPU; the EJB machine dominates the servlet machine.
  EXPECT_GT(ejbMachine_.cpu().busyCoreSeconds(), servletMachine_.cpu().busyCoreSeconds());
  EXPECT_GT(network_.trafficBetween(ejbMachine_, dbMachine_).packets, 20u);
}

TEST_F(MiddlewareTest, EntityManagerCachesWithinTransaction) {
  sim::SimTime ignored = 0;
  (void)ignored;
  std::uint64_t statements = 0;
  simulation_.spawn([](MiddlewareTest& t, std::uint64_t& out) -> Task<> {
    DbSession db = t.makeSession(t.ejbMachine_, DriverKind::Jdbc);
    EntityManager em(t.ejbMachine_, db, t.cost_);
    auto a = co_await em.find("stock", db::Value(5));
    auto b = co_await em.find("stock", db::Value(5));
    EXPECT_TRUE(a.has_value() && b.has_value() && *a == *b);
    out = em.statementsIssued();
  }(*this, statements));
  simulation_.run();
  EXPECT_EQ(statements, 1u);  // second find hit the tx cache
}

TEST_F(MiddlewareTest, EntityManagerCommitWritesDirtyEntitiesOnce) {
  std::int64_t finalQty = 0;
  std::uint64_t statements = 0;
  simulation_.spawn([](MiddlewareTest& t, std::int64_t& qty, std::uint64_t& stmts) -> Task<> {
    DbSession db = t.makeSession(t.ejbMachine_, DriverKind::Jdbc);
    EntityManager em(t.ejbMachine_, db, t.cost_);
    auto h = co_await em.find("stock", db::Value(9));
    co_await em.set(*h, "qty", db::Value(1));
    co_await em.set(*h, "qty", db::Value(2));
    co_await em.commit();
    stmts = em.statementsIssued();
    auto r = co_await db.execute("SELECT qty FROM stock WHERE id = 9");
    qty = r.resultSet.intAt(0, "qty");
  }(*this, finalQty, statements));
  simulation_.run();
  EXPECT_EQ(finalQty, 2);
  EXPECT_EQ(statements, 2u);  // 1 activation + 1 UPDATE
}

TEST_F(MiddlewareTest, EntityCreateAssignsAutoKey) {
  std::int64_t newId = 0;
  simulation_.spawn([](MiddlewareTest& t, std::int64_t& out) -> Task<> {
    DbSession db = t.makeSession(t.ejbMachine_, DriverKind::Jdbc);
    EntityManager em(t.ejbMachine_, db, t.cost_);
    std::vector<std::string> cols;
    cols.push_back("name");
    cols.push_back("qty");
    auto h = co_await em.create("stock", std::move(cols), sqlArgs("gizmo", 1));
    out = (co_await em.get(h, "id")).asInt();
  }(*this, newId));
  simulation_.run();
  EXPECT_EQ(newId, 51);
}

TEST_F(MiddlewareTest, WebServerProcessPoolBounds) {
  // A generator that sleeps; with pool capacity clamped to 2, the third
  // request queues.
  class SlowGen final : public DynamicContentGenerator {
   public:
    explicit SlowGen(sim::Simulation& s) : sim_(s) {}
    sim::Task<Page> generate(const Request&) override {
      co_await sim_.delay(100 * kMillisecond);
      co_return Page{1000, 0, 0, 0, false, 0};
    }
    sim::Simulation& sim_;
  };
  CostModel tight = cost_;
  tight.webProcessLimit = 2;
  WebServer ws(simulation_, web_, network_, clients_, tight);
  SlowGen gen(simulation_);
  ws.setGenerator(&gen);
  ClientSession s;
  std::vector<sim::SimTime> done;
  for (int i = 0; i < 3; ++i) {
    simulation_.spawn([](WebServer& w, ClientSession& cs, std::vector<sim::SimTime>& d,
                         sim::Simulation& sm) -> Task<> {
      Request req{"x", &cs};
      (void)co_await w.serve(req);
      d.push_back(sm.now());
    }(ws, s, done, simulation_));
  }
  simulation_.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_GT(done[2], done[0] + 90 * kMillisecond);  // third waited for a slot
}

TEST_F(MiddlewareTest, UsageWindowSeesDbCpu) {
  stats::UsageWindow window;
  window.addMachine(&dbMachine_);
  window.addMachine(&web_);
  window.start(simulation_.now());
  simulation_.spawn([](MiddlewareTest& t) -> Task<> {
    DbSession db = t.makeSession(t.web_, DriverKind::NativeMySql);
    for (int i = 0; i < 200; ++i) {
      co_await db.execute("SELECT * FROM stock WHERE qty >= 100 AND qty <= 150");
    }
  }(*this));
  simulation_.run();
  window.stop(simulation_.now());
  auto usage = window.usage();
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_GT(usage[0].cpuUtilization, 0.05);  // db was busy a solid fraction
  EXPECT_GT(usage[0].nicMbps, 0.0);
}

}  // namespace
}  // namespace mwsim::mw

namespace mwsim::mw {
namespace {

TEST_F(MiddlewareTest, GeneratorFailureProducesErrorPage) {
  // Failure injection: a generator that throws on specific interactions
  // must yield a 500-style error page without killing the server.
  class FlakyGen final : public DynamicContentGenerator {
   public:
    explicit FlakyGen(sim::Simulation& s) : sim_(s) {}
    sim::Task<Page> generate(const Request& r) override {
      co_await sim_.delay(sim::kMillisecond);
      if (r.interaction == "boom") throw std::runtime_error("script crashed");
      Page page;
      page.htmlBytes = 2000;
      co_return page;
    }
    sim::Simulation& sim_;
  };

  WebServer ws(simulation_, web_, network_, clients_, cost_);
  FlakyGen gen(simulation_);
  ws.setGenerator(&gen);
  ClientSession session;
  std::vector<bool> errors;
  for (const char* name : {"ok", "boom", "ok", "boom", "ok"}) {
    simulation_.spawn([](WebServer& w, ClientSession& s, const char* n,
                         std::vector<bool>& out) -> Task<> {
      Request req{n, &s};
      const auto result = co_await w.serve(req);
      out.push_back(result.page.error);
    }(ws, session, name, errors));
  }
  simulation_.run();
  ASSERT_EQ(errors.size(), 5u);
  int errorPages = 0;
  for (bool e : errors) errorPages += e ? 1 : 0;
  EXPECT_EQ(errorPages, 2);
  EXPECT_EQ(ws.errorCount(), 2u);
}

TEST_F(MiddlewareTest, ErrorPageStillConsumesWebResources) {
  class AlwaysThrow final : public DynamicContentGenerator {
   public:
    sim::Task<Page> generate(const Request&) override {
      throw std::runtime_error("dead");
      co_return Page{};  // unreachable
    }
  };
  WebServer ws(simulation_, web_, network_, clients_, cost_);
  AlwaysThrow gen;
  ws.setGenerator(&gen);
  ClientSession session;
  simulation_.spawn([](WebServer& w, ClientSession& s) -> Task<> {
    Request req{"x", &s};
    const auto result = co_await w.serve(req);
    (void)result;
  }(ws, session));
  simulation_.run();
  EXPECT_EQ(ws.errorCount(), 1u);
  EXPECT_GT(web_.cpu().busyCoreSeconds(), 0.0);  // request+response CPU charged
  EXPECT_EQ(ws.processPool().inUse(), 0);        // the slot was released
}

}  // namespace
}  // namespace mwsim::mw
