#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hpp"
#include "db/executor.hpp"
#include "sim/sim.hpp"

namespace mwsim {
namespace {

using sim::Task;

// ---------------------------------------------------------------------------
// Property: for any single-table predicate, the executor returns the same
// rows whether the filtered column is indexed or not (index selection is an
// optimization, never a semantics change).

class IndexEquivalenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  IndexEquivalenceTest() : execIndexed_(indexed_), execPlain_(plain_) {
    indexed_.createTable(db::SchemaBuilder("t")
                             .intCol("id").primaryKey(true)
                             .intCol("a").indexed()
                             .intCol("b").indexed()
                             .stringCol("s")
                             .build());
    plain_.createTable(db::SchemaBuilder("t")
                           .intCol("id").primaryKey(true)
                           .intCol("a")
                           .intCol("b")
                           .stringCol("s")
                           .build());
    sim::Rng rng(99);
    for (int i = 0; i < 500; ++i) {
      db::Row row{db::Value(i + 1), db::Value(rng.uniformInt(0, 20)),
                  db::Value(rng.uniformInt(-50, 50)), db::Value(rng.randomString(4))};
      indexed_.table("t").insert(row);
      plain_.table("t").insert(std::move(row));
    }
  }

  db::Database indexed_;
  db::Database plain_;
  db::Executor execIndexed_;
  db::Executor execPlain_;
};

TEST_P(IndexEquivalenceTest, SameRowsWithAndWithoutIndex) {
  const std::string sql = GetParam();
  auto a = execIndexed_.query(sql);
  auto b = execPlain_.query(sql);
  ASSERT_EQ(a.resultSet.rowCount(), b.resultSet.rowCount()) << sql;
  for (std::size_t r = 0; r < a.resultSet.rowCount(); ++r) {
    for (std::size_t c = 0; c < a.resultSet.columns.size(); ++c) {
      EXPECT_EQ(a.resultSet.at(r, c).compare(b.resultSet.at(r, c)), 0) << sql;
    }
  }
  // The indexed database should not examine more rows than the plain one.
  EXPECT_LE(a.stats.rowsExamined, b.stats.rowsExamined) << sql;
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, IndexEquivalenceTest,
    ::testing::Values(
        "SELECT id, a, b FROM t WHERE a = 7 ORDER BY id",
        "SELECT id FROM t WHERE a = 3 AND b > 0 ORDER BY id",
        "SELECT id FROM t WHERE a >= 18 ORDER BY id",
        "SELECT id FROM t WHERE a >= 5 AND a <= 6 ORDER BY id",
        "SELECT id FROM t WHERE b = -10 OR b = 10 ORDER BY id",
        "SELECT id FROM t WHERE a = 2 AND s LIKE 'a%' ORDER BY id",
        "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY a",
        "SELECT id FROM t WHERE b < -48 ORDER BY b, id",
        "SELECT COUNT(*) AS n FROM t WHERE a = 11"));

// ---------------------------------------------------------------------------
// Property: UPDATE via any predicate touches exactly the rows a SELECT with
// the same predicate returns.

class UpdateSelectsSameRowsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(UpdateSelectsSameRowsTest, AffectedMatchesSelected) {
  db::Database database;
  database.createTable(db::SchemaBuilder("t")
                           .intCol("id").primaryKey(true)
                           .intCol("a").indexed()
                           .intCol("marker")
                           .build());
  sim::Rng rng(5);
  db::Executor exec(database);
  for (int i = 0; i < 300; ++i) {
    database.table("t").insert({db::Value(i + 1), db::Value(rng.uniformInt(0, 9)),
                                db::Value(0)});
  }
  const std::string predicate = GetParam();
  const auto selected = exec.query("SELECT id FROM t WHERE " + predicate);
  const auto updated = exec.query("UPDATE t SET marker = 1 WHERE " + predicate);
  EXPECT_EQ(updated.affectedRows, selected.resultSet.rowCount());
  const auto marked = exec.query("SELECT COUNT(*) AS n FROM t WHERE marker = 1");
  EXPECT_EQ(static_cast<std::uint64_t>(marked.resultSet.intAt(0, "n")),
            updated.affectedRows);
}

INSTANTIATE_TEST_SUITE_P(Predicates, UpdateSelectsSameRowsTest,
                         ::testing::Values("a = 4", "a = 4 AND id > 100", "id = 7",
                                           "a > 7", "a = 0 OR a = 9", "id <= 10"));

// ---------------------------------------------------------------------------
// Property: the processor-sharing CPU is work-conserving and fair for any
// (cores, jobs) combination: total busy time equals total demand, and no
// job finishes before demand/cores.

class CpuConservationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CpuConservationTest, WorkConservedAndNoEarlyFinish) {
  const auto [cores, jobs] = GetParam();
  sim::Simulation simulation(17);
  sim::CpuResource cpu(simulation, cores);
  sim::Rng rng(static_cast<std::uint64_t>(cores * 1000 + jobs));
  double totalDemand = 0.0;
  std::vector<sim::SimTime> finish(static_cast<std::size_t>(jobs), 0);
  std::vector<sim::Duration> demand(static_cast<std::size_t>(jobs), 0);
  for (int j = 0; j < jobs; ++j) {
    demand[static_cast<std::size_t>(j)] =
        sim::fromMillis(rng.uniformReal(0.5, 30.0));
    totalDemand += sim::toSeconds(demand[static_cast<std::size_t>(j)]);
    simulation.spawn([](sim::Simulation& s, sim::CpuResource& c, sim::Duration work,
                        sim::SimTime& out) -> Task<> {
      co_await c.consume(work);
      out = s.now();
    }(simulation, cpu, demand[static_cast<std::size_t>(j)],
      finish[static_cast<std::size_t>(j)]));
  }
  simulation.run();
  EXPECT_NEAR(cpu.busyCoreSeconds(), totalDemand, totalDemand * 1e-6 + 1e-6);
  for (int j = 0; j < jobs; ++j) {
    const double minTime =
        sim::toSeconds(demand[static_cast<std::size_t>(j)]) / cores;
    EXPECT_GE(sim::toSeconds(finish[static_cast<std::size_t>(j)]), minTime - 1e-9);
  }
  // The last completion is exactly when the capacity could have drained all
  // work, or later (never earlier).
  sim::SimTime last = 0;
  for (auto f : finish) last = std::max(last, f);
  EXPECT_GE(sim::toSeconds(last), totalDemand / cores - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Grid, CpuConservationTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3, 10, 40)));

// ---------------------------------------------------------------------------
// Property: the RW lock never admits a writer together with anyone else,
// for randomized reader/writer workloads.

class RwLockInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(RwLockInvariantTest, NoWriterOverlap) {
  sim::Simulation simulation(static_cast<std::uint64_t>(GetParam()));
  sim::RwLock lock(simulation);
  int activeReaders = 0;
  bool activeWriter = false;
  bool violated = false;

  for (int i = 0; i < 60; ++i) {
    const bool writer = i % 3 == 0;
    simulation.spawn([](sim::Simulation& s, sim::RwLock& l, bool write, int seed,
                        int& readers, bool& writerActive, bool& bad) -> Task<> {
      sim::Rng rng(static_cast<std::uint64_t>(seed));
      co_await s.delay(sim::fromMillis(rng.uniformReal(0, 50)));
      if (write) {
        sim::LockHold h = co_await l.lockWrite();
        if (readers != 0 || writerActive) bad = true;
        writerActive = true;
        co_await s.delay(sim::fromMillis(rng.uniformReal(0.1, 5)));
        writerActive = false;
      } else {
        sim::LockHold h = co_await l.lockRead();
        if (writerActive) bad = true;
        ++readers;
        co_await s.delay(sim::fromMillis(rng.uniformReal(0.1, 5)));
        --readers;
      }
    }(simulation, lock, writer, i + GetParam() * 1000, activeReaders, activeWriter,
      violated));
  }
  simulation.run();
  EXPECT_FALSE(violated);
  EXPECT_EQ(lock.readAcquisitions() + lock.writeAcquisitions(), 60u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwLockInvariantTest, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Property: every configuration serves every mix with sane invariants.

struct ConfigCase {
  core::Configuration config;
  core::App app;
  int mix;
};

class AllConfigurationsTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(AllConfigurationsTest, InvariantsHold) {
  const ConfigCase& c = GetParam();
  core::ExperimentParams params;
  params.config = c.config;
  params.app = c.app;
  params.mix = c.mix;
  params.clients = 40;
  params.rampUp = 15 * sim::kSecond;
  params.measure = 45 * sim::kSecond;
  params.rampDown = 5 * sim::kSecond;
  params.bookstoreScale = 0.02;
  params.auctionHistoryScale = 0.01;
  const auto r = core::runExperiment(params);

  EXPECT_GT(r.throughputIpm, 50.0);
  EXPECT_GT(r.queries, 0u);
  for (const auto& u : r.usage) {
    EXPECT_GE(u.cpuUtilization, 0.0) << u.name;
    EXPECT_LE(u.cpuUtilization, 1.001) << u.name;
    EXPECT_GE(u.nicUtilization, 0.0) << u.name;
    EXPECT_LE(u.nicUtilization, 1.001) << u.name;
  }
  EXPECT_GT(r.meanResponseSeconds, 0.0);
  EXPECT_GE(r.p90ResponseSeconds, 0.0);
  // Interaction rate cannot exceed clients / mean think time.
  EXPECT_LT(r.throughputIpm / 60.0, 40.0 / 7.0 * 1.15);
}

std::vector<ConfigCase> allCases() {
  std::vector<ConfigCase> cases;
  for (auto config : core::allConfigurations()) {
    cases.push_back({config, core::App::Bookstore, 1});
    cases.push_back({config, core::App::Auction, 1});
  }
  cases.push_back({core::Configuration::WsPhpDb, core::App::Bookstore, 0});
  cases.push_back({core::Configuration::WsPhpDb, core::App::Bookstore, 2});
  cases.push_back({core::Configuration::WsPhpDb, core::App::Auction, 0});
  return cases;
}

std::string caseName(const ::testing::TestParamInfo<ConfigCase>& info) {
  std::string name = core::configurationName(info.param.config);
  name += "_";
  name += info.param.app == core::App::Bookstore ? "bookstore" : "auction";
  name += "_";
  name += core::mixName(info.param.app, info.param.mix);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, AllConfigurationsTest, ::testing::ValuesIn(allCases()),
                         caseName);

}  // namespace
}  // namespace mwsim
