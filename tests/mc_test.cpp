// Tests for the model-checking layer (src/mc): the choice-strategy seam in
// the kernel, the DFS explorer with sleep-set reduction, the lock-subsystem
// properties, and the seeded reader-preference mutation the explorer must
// catch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mc/choice.hpp"
#include "mc/explorer.hpp"
#include "mc/scenarios.hpp"
#include "sim/resource.hpp"
#include "sim/rwlock.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace mc = mwsim::mc;
namespace sim = mwsim::sim;

namespace {

constexpr sim::Duration kTick = 1000;

// ---------------------------------------------------------------------------
// DefaultStrategy must reproduce the production (time, seq) order exactly.
// ---------------------------------------------------------------------------

struct RwFixture {
  explicit RwFixture(sim::Simulation& s) : sim(s), table(s, "items") {}
  sim::Simulation& sim;
  sim::RwLock table;
  std::vector<int> order;  // actor completion order, the schedule's shadow

  sim::Task<> reader(int id) {
    for (int round = 0; round < 2; ++round) {
      co_await sim.delay(kTick);
      sim::LockHold h = co_await table.lockRead();
      co_await sim.delay(kTick);
      order.push_back(id);
    }
  }
  sim::Task<> writer(int id) {
    for (int round = 0; round < 2; ++round) {
      co_await sim.delay(kTick);
      sim::LockHold h = co_await table.lockWrite();
      co_await sim.delay(kTick);
      order.push_back(id);
    }
  }
};

struct RunResult {
  std::vector<int> order;
  sim::SimTime end = 0;
  std::uint64_t events = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  sim::Duration wait = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult runRwWorkload(mc::ChoiceStrategy* strategy) {
  sim::Simulation s(42);
  if (strategy != nullptr) s.setModelChecking(strategy, nullptr);
  RwFixture fx(s);
  s.spawn(fx.reader(1));
  s.spawn(fx.reader(2));
  s.spawn(fx.writer(3));
  s.spawn(fx.writer(4));
  s.run();
  RunResult r{fx.order,           s.now(),
              s.eventsProcessed(), fx.table.readAcquisitions(),
              fx.table.writeAcquisitions(), fx.table.totalWait()};
  s.setModelChecking(nullptr, nullptr);
  return r;
}

TEST(McChoiceTest, DefaultStrategyIsBitIdenticalToPlainRun) {
  const RunResult plain = runRwWorkload(nullptr);
  mc::DefaultStrategy def;
  const RunResult mc = runRwWorkload(&def);
  EXPECT_EQ(plain, mc);
  EXPECT_FALSE(plain.order.empty());
}

TEST(McChoiceTest, RandomStrategyPerturbsTheSchedule) {
  const RunResult plain = runRwWorkload(nullptr);
  // At least one seed in a small set must produce a different completion
  // order; all of them must still conserve totals (same work, other order).
  bool differed = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    mc::RandomStrategy rnd(seed);
    const RunResult r = runRwWorkload(&rnd);
    EXPECT_EQ(r.reads, plain.reads);
    EXPECT_EQ(r.writes, plain.writes);
    EXPECT_EQ(r.order.size(), plain.order.size());
    if (r.order != plain.order) differed = true;
  }
  EXPECT_TRUE(differed);
}

// ---------------------------------------------------------------------------
// Explorer: exhaustive enumeration, determinism, green properties.
// ---------------------------------------------------------------------------

TEST(McExplorerTest, EnumeratesGrantOrdersOfACapacityOneMutex) {
  // 3 threads, 2 rounds on one mutex: the grant choice points alone give
  // more than one schedule, and the exploration must terminate.
  auto scenario = mc::makeServletSync();
  mc::Explorer explorer;
  const mc::ExploreStats st = explorer.explore(*scenario);
  EXPECT_TRUE(st.complete);
  EXPECT_GT(st.schedules, 1u);
  EXPECT_GT(st.choicePoints, 0u);
  EXPECT_GE(st.maxAlternatives, 2u);
  EXPECT_EQ(st.violationCount, 0u);
  EXPECT_GT(st.signatures.size(), 1u);
}

TEST(McExplorerTest, ExplorationIsDeterministic) {
  auto scenario = mc::makeIndependentShards();
  mc::Explorer a;
  mc::Explorer b;
  const mc::ExploreStats sa = a.explore(*scenario);
  const mc::ExploreStats sb = b.explore(*scenario);
  EXPECT_EQ(sa.schedules, sb.schedules);
  EXPECT_EQ(sa.prunedBranches, sb.prunedBranches);
  EXPECT_EQ(sa.choicePoints, sb.choicePoints);
  EXPECT_EQ(sa.violationCount, sb.violationCount);
  EXPECT_EQ(sa.signatures, sb.signatures);
}

TEST(McExplorerTest, GreenScenariosSatisfyAllProperties) {
  for (const auto& scenario : mc::greenScenarios()) {
    mc::Explorer explorer;
    mc::ExploreOptions opt;
    // myisam_rw and cluster_write_stream run ~1M/220k schedules in seconds
    // in Release but are slower under sanitizers; cap the two big ones.
    opt.maxSchedules = 50000;
    const mc::ExploreStats st = explorer.explore(*scenario, opt);
    EXPECT_EQ(st.violationCount, 0u) << scenario->name();
    EXPECT_GT(st.schedules, 1u) << scenario->name();
    if (st.complete) continue;
    EXPECT_EQ(st.schedules, opt.maxSchedules) << scenario->name();
  }
}

TEST(McExplorerTest, SleepSetsPruneIndependentShardsButKeepAllClasses) {
  auto scenario = mc::makeIndependentShards();
  mc::Explorer full;
  mc::Explorer reduced;
  mc::ExploreOptions fullOpt;
  fullOpt.reduction = false;
  const mc::ExploreStats fs = full.explore(*scenario, fullOpt);
  const mc::ExploreStats rs = reduced.explore(*scenario);
  ASSERT_TRUE(fs.complete);
  ASSERT_TRUE(rs.complete);
  EXPECT_EQ(fs.prunedBranches, 0u);
  EXPECT_GT(rs.prunedBranches, 0u);
  EXPECT_LT(rs.schedules, fs.schedules);
  // Same verdicts, same Mazurkiewicz-style equivalence classes: the pruned
  // schedules were all redundant.
  EXPECT_EQ(fs.violationCount, rs.violationCount);
  EXPECT_EQ(fs.signatures, rs.signatures);
}

TEST(McExplorerTest, ReducedLockTablesCoversSameClassesAsFull) {
  auto scenario = mc::makeLockTables(/*reversedOrder=*/true);
  mc::Explorer full;
  mc::Explorer reduced;
  mc::ExploreOptions fullOpt;
  fullOpt.reduction = false;
  const mc::ExploreStats fs = full.explore(*scenario, fullOpt);
  const mc::ExploreStats rs = reduced.explore(*scenario);
  ASSERT_TRUE(fs.complete);
  ASSERT_TRUE(rs.complete);
  EXPECT_LE(rs.schedules, fs.schedules);
  EXPECT_EQ(fs.signatures, rs.signatures);
  // Both must find deadlocks (and the same number of distinct classes).
  EXPECT_GT(fs.violationCount, 0u);
  EXPECT_GT(rs.violationCount, 0u);
}

// ---------------------------------------------------------------------------
// Deadlock detection: ordered acquisition is safe, reversed is not.
// ---------------------------------------------------------------------------

TEST(McDeadlockTest, OrderedLockTablesIsDeadlockFreeInEverySchedule) {
  auto scenario = mc::makeLockTables(/*reversedOrder=*/false);
  mc::Explorer explorer;
  const mc::ExploreStats st = explorer.explore(*scenario);
  EXPECT_TRUE(st.complete);
  EXPECT_GT(st.schedules, 1u);
  EXPECT_EQ(st.violationCount, 0u);
}

TEST(McDeadlockTest, ReversedLockTablesDeadlocksInSomeScheduleOnly) {
  auto scenario = mc::makeLockTables(/*reversedOrder=*/true);
  mc::Explorer explorer;
  const mc::ExploreStats st = explorer.explore(*scenario);
  ASSERT_TRUE(st.complete);
  EXPECT_GT(st.violationCount, 0u);
  // The lurking-cycle property: the canonical schedule (#0) is green, so
  // one-seed-one-schedule testing never sees the bug...
  ASSERT_FALSE(st.violations.empty());
  for (const mc::RecordedViolation& v : st.violations) {
    EXPECT_EQ(v.property, "deadlock-freedom");
    EXPECT_GT(v.schedule, 0u);
    EXPECT_FALSE(v.trace.empty());
  }
  // ...and some schedules stay green, so the deadlock is genuinely
  // schedule-dependent, not a scenario bug.
  EXPECT_LT(st.violationCount, st.schedules);
}

// ---------------------------------------------------------------------------
// Seeded mutation: reader preference must be caught.
// ---------------------------------------------------------------------------

TEST(McMutationTest, ReaderPreferenceMutationIsCaught) {
  auto mutated = mc::makeMyisamRw(/*readerPreferenceMutation=*/true);
  mc::Explorer explorer;
  mc::ExploreOptions opt;
  opt.maxSchedules = 20000;
  const mc::ExploreStats st = explorer.explore(*mutated, opt);
  EXPECT_GT(st.violationCount, 0u);
  ASSERT_FALSE(st.violations.empty());
  bool sawWriterPriority = false;
  bool sawBoundedWait = false;
  for (const mc::RecordedViolation& v : st.violations) {
    if (v.property == "writer-priority") sawWriterPriority = true;
    if (v.property == "bounded-writer-wait") sawBoundedWait = true;
    EXPECT_FALSE(v.detail.empty());
  }
  EXPECT_TRUE(sawWriterPriority);
  EXPECT_TRUE(sawBoundedWait);
}

TEST(McMutationTest, UnmutatedMyisamHasNoViolations) {
  auto green = mc::makeMyisamRw(/*readerPreferenceMutation=*/false);
  mc::Explorer explorer;
  mc::ExploreOptions opt;
  opt.maxSchedules = 20000;
  const mc::ExploreStats st = explorer.explore(*green, opt);
  EXPECT_EQ(st.violationCount, 0u);
}

TEST(McMutationTest, RandomSamplingAlsoCatchesTheMutation) {
  // The mutation fires even on the canonical schedule, so sampling finds it
  // instantly — the cheap CI smoke-test path.
  auto mutated = mc::makeMyisamRw(true);
  mc::Explorer explorer;
  const mc::ExploreStats st = explorer.sample(*mutated, 16, 1);
  EXPECT_EQ(st.schedules, 16u);
  EXPECT_GT(st.violationCount, 0u);
}

// ---------------------------------------------------------------------------
// Resource (mutex) grant choice point.
// ---------------------------------------------------------------------------

struct MutexFixture {
  explicit MutexFixture(sim::Simulation& s) : sim(s), mtx(s, 1, "m") {}
  sim::Simulation& sim;
  sim::Mutex mtx;
  std::vector<int> grants;

  sim::Task<> worker(int id) {
    co_await sim.delay(kTick);
    sim::ResourceHold h = co_await mtx.acquire();
    grants.push_back(id);
    co_await sim.delay(kTick);
  }
};

TEST(McGrantTest, StrategyControlsMutexGrantOrder) {
  // Three workers collide at t=kTick; one takes the fast path and two queue.
  // Which queued waiter gets the release is a ResourceGrant choice: over a
  // handful of random strategies both queue orders must show up.
  std::vector<std::vector<int>> orders;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim::Simulation s(1);
    mc::RandomStrategy rnd(seed);
    s.setModelChecking(&rnd, nullptr);
    MutexFixture fx(s);
    s.spawn(fx.worker(1));
    s.spawn(fx.worker(2));
    s.spawn(fx.worker(3));
    s.run();
    s.setModelChecking(nullptr, nullptr);
    ASSERT_EQ(fx.grants.size(), 3u);
    if (std::find(orders.begin(), orders.end(), fx.grants) == orders.end()) {
      orders.push_back(fx.grants);
    }
  }
  EXPECT_GT(orders.size(), 1u);
}

}  // namespace
