/// Tests for the scenario engine (PR 9):
///
///  * rate schedules: construction, interpolation, the canned flash-crowd
///    and diurnal shapes, trace parsing, and the knot hash;
///  * arrival process: the thinned Poisson stream is deterministic, tracks
///    the schedule's rate empirically, and exhausts on a zero tail;
///  * load-balancer failover: health masking, reroute-on-crash, terminal
///    timeouts, retry-budget exhaustion, and deadline stamping — against a
///    scripted fake replica;
///  * platform timeline: validation rejects malformed event lists, and an
///    installed timeline flips machine/balancer state at the right virtual
///    times;
///  * spec seed tags: inert specs keep the legacy seed, behavior-changing
///    specs get their own coordinate;
///  * whole-experiment properties: scenario-off runs are bit-identical to
///    the seed behavior, the time series is observation-only, crash and
///    open-loop runs are deterministic (repeated, parallel, traced), the
///    open-loop throughput tracks the offered rate, and admission control
///    sheds instead of erroring.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "middleware/dispatch.hpp"
#include "middleware/failure.hpp"
#include "net/machine.hpp"
#include "scenario/arrival.hpp"
#include "scenario/spec.hpp"
#include "scenario/timeline.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "stats/timeseries.hpp"

namespace mwsim {
namespace {

// --- rate schedules --------------------------------------------------------

TEST(RateScheduleTest, ConstantRateIsFlatEverywhere) {
  const auto s = scenario::RateSchedule::constant(3.5);
  EXPECT_DOUBLE_EQ(s.rate(0.0), 3.5);
  EXPECT_DOUBLE_EQ(s.rate(123.0), 3.5);
  EXPECT_DOUBLE_EQ(s.maxRate(), 3.5);
  EXPECT_DOUBLE_EQ(s.tailRate(), 3.5);
  EXPECT_FALSE(s.empty());
}

TEST(RateScheduleTest, PiecewiseInterpolatesLinearlyAndClampsOutside) {
  const auto s = scenario::RateSchedule::piecewise(
      {{0.0, 0.0}, {10.0, 10.0}, {20.0, 2.0}});
  EXPECT_DOUBLE_EQ(s.rate(5.0), 5.0);
  EXPECT_DOUBLE_EQ(s.rate(15.0), 6.0);
  EXPECT_DOUBLE_EQ(s.rate(-5.0), 0.0);   // constant before the first knot
  EXPECT_DOUBLE_EQ(s.rate(100.0), 2.0);  // constant after the last knot
  EXPECT_DOUBLE_EQ(s.maxRate(), 10.0);
  EXPECT_DOUBLE_EQ(s.tailRate(), 2.0);
  EXPECT_DOUBLE_EQ(s.lastKnotSec(), 20.0);
}

TEST(RateScheduleTest, RejectsDecreasingTimesAndNegativeRates) {
  EXPECT_THROW(scenario::RateSchedule::piecewise({{10.0, 1.0}, {5.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(scenario::RateSchedule::piecewise({{0.0, -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(scenario::RateSchedule::constant(-2.0), std::invalid_argument);
}

TEST(RateScheduleTest, FlashCrowdHasBaseRampHoldDecayShape) {
  // Base 2/s; at t=90 ramp over 15s to 8/s, hold 60s, decay 30s back to 2/s.
  const auto s = scenario::RateSchedule::flashCrowd(2.0, 4.0, 90.0, 15.0, 60.0, 30.0);
  EXPECT_DOUBLE_EQ(s.rate(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.rate(90.0), 2.0);
  EXPECT_NEAR(s.rate(97.5), 5.0, 1e-9);  // mid-ramp
  EXPECT_DOUBLE_EQ(s.rate(105.0), 8.0);
  EXPECT_DOUBLE_EQ(s.rate(165.0), 8.0);  // end of hold
  EXPECT_DOUBLE_EQ(s.rate(195.0), 2.0);  // after decay
  EXPECT_DOUBLE_EQ(s.rate(500.0), 2.0);
  EXPECT_DOUBLE_EQ(s.maxRate(), 8.0);
}

TEST(RateScheduleTest, DiurnalOscillatesAroundTheMean) {
  const auto s = scenario::RateSchedule::diurnal(/*meanRate=*/10.0,
                                                /*amplitude=*/0.5,
                                                /*periodSec=*/100.0,
                                                /*horizonSec=*/200.0);
  EXPECT_NEAR(s.rate(25.0), 15.0, 0.5);  // peak of sin at a quarter period
  EXPECT_NEAR(s.rate(75.0), 5.0, 0.5);   // trough at three quarters
  EXPECT_LE(s.maxRate(), 15.0 + 1e-9);
  for (const auto& k : s.knots()) {
    EXPECT_GE(k.rate, 5.0 - 1e-9);
    EXPECT_LE(k.rate, 15.0 + 1e-9);
  }
}

TEST(RateScheduleTest, ParsesTraceTextAndRejectsGarbage) {
  const auto s = scenario::RateSchedule::fromString(
      "# trace header\n"
      "0 2\n"
      "\n"
      "10 4\n");
  ASSERT_EQ(s.knots().size(), 2u);
  EXPECT_DOUBLE_EQ(s.rate(5.0), 3.0);
  EXPECT_THROW(scenario::RateSchedule::fromString("abc def\n"), std::invalid_argument);
  EXPECT_THROW(scenario::RateSchedule::fromString("5\n"), std::invalid_argument);
  EXPECT_THROW(scenario::RateSchedule::fromString("0 2\n10 -1\n"),
               std::invalid_argument);
  EXPECT_THROW(scenario::RateSchedule::fromFile("/nonexistent/trace.txt"),
               std::invalid_argument);
}

TEST(RateScheduleTest, HashSeparatesDifferentSchedules) {
  const auto a = scenario::RateSchedule::constant(2.0);
  const auto b = scenario::RateSchedule::constant(3.0);
  const auto c = scenario::RateSchedule::constant(2.0);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), c.hash());
  const auto d = scenario::RateSchedule::piecewise({{0.0, 2.0}, {10.0, 4.0}});
  const auto e = scenario::RateSchedule::piecewise({{0.0, 4.0}, {10.0, 2.0}});
  EXPECT_NE(d.hash(), e.hash());
}

// --- arrival process -------------------------------------------------------

TEST(ArrivalProcessTest, MatchesTargetRateEmpirically) {
  const scenario::ArrivalProcess process(scenario::RateSchedule::constant(5.0));
  sim::Rng rng(42);
  double t = 0.0;
  std::uint64_t count = 0;
  const double horizon = 2000.0;
  while (true) {
    t = process.next(t, rng);
    if (t < 0.0 || t > horizon) break;
    ++count;
  }
  // Poisson(10000): the count should land well within 5% of the mean.
  EXPECT_NEAR(static_cast<double>(count), 5.0 * horizon, 0.05 * 5.0 * horizon);
}

TEST(ArrivalProcessTest, ThinningFollowsTheScheduleShape) {
  const scenario::ArrivalProcess process(
      scenario::RateSchedule::flashCrowd(2.0, 4.0, 90.0, 15.0, 60.0, 30.0));
  sim::Rng rng(7);
  double t = 0.0;
  std::uint64_t baseCount = 0;  // [0, 90): rate 2/s
  std::uint64_t peakCount = 0;  // [105, 165): rate 8/s
  while (true) {
    t = process.next(t, rng);
    if (t < 0.0 || t > 400.0) break;
    if (t < 90.0) ++baseCount;
    if (t >= 105.0 && t < 165.0) ++peakCount;
  }
  EXPECT_NEAR(static_cast<double>(baseCount), 2.0 * 90.0, 0.25 * 2.0 * 90.0);
  EXPECT_NEAR(static_cast<double>(peakCount), 8.0 * 60.0, 0.25 * 8.0 * 60.0);
}

TEST(ArrivalProcessTest, SequencesAreDeterministicInTheSeed) {
  const scenario::ArrivalProcess process(
      scenario::RateSchedule::flashCrowd(1.0, 3.0, 10.0, 5.0, 10.0, 5.0));
  sim::Rng a(99), b(99), c(100);
  double ta = 0.0, tb = 0.0, tc = 0.0;
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    ta = process.next(ta, a);
    tb = process.next(tb, b);
    tc = process.next(tc, c);
    EXPECT_DOUBLE_EQ(ta, tb);
    if (ta != tc) diverged = true;
    if (ta < 0.0) break;
    EXPECT_GT(ta, 0.0);
  }
  EXPECT_TRUE(diverged);
}

TEST(ArrivalProcessTest, StrictlyIncreasingAndExhaustsOnZeroTail) {
  const scenario::ArrivalProcess process(
      scenario::RateSchedule::piecewise({{0.0, 5.0}, {10.0, 0.0}}));
  sim::Rng rng(1);
  double t = 0.0;
  int arrivals = 0;
  for (int i = 0; i < 1000; ++i) {
    const double next = process.next(t, rng);
    if (next < 0.0) break;
    EXPECT_GT(next, t);
    EXPECT_LE(next, 10.0 + 1e-9);  // no arrivals past the zero-rate tail
    t = next;
    ++arrivals;
  }
  EXPECT_GT(arrivals, 0);
  EXPECT_LT(process.next(t, rng), 0.0);  // exhausted for good

  const scenario::ArrivalProcess never{scenario::RateSchedule{}};
  EXPECT_LT(never.next(0.0, rng), 0.0);
}

// --- time series -----------------------------------------------------------

TEST(TimeSeriesTest, BucketsCompletionsErrorsAndShed) {
  stats::TimeSeries series(10 * sim::kSecond);
  series.recordCompletion(5 * sim::kSecond, 0.010, /*error=*/false);
  series.recordCompletion(15 * sim::kSecond, 0.020, /*error=*/false);
  series.recordCompletion(16 * sim::kSecond, 0.060, /*error=*/true);
  series.recordShed(25 * sim::kSecond);
  ASSERT_EQ(series.buckets().size(), 3u);
  EXPECT_EQ(series.buckets()[0].completions, 1u);
  EXPECT_EQ(series.buckets()[1].completions, 2u);
  EXPECT_EQ(series.buckets()[1].errors, 1u);
  EXPECT_EQ(series.buckets()[1].ok(), 1u);
  EXPECT_EQ(series.buckets()[2].shed, 1u);
  EXPECT_DOUBLE_EQ(series.okPerMinute(0), 6.0);
  EXPECT_DOUBLE_EQ(series.buckets()[1].meanResponseSec(), 0.040);
  EXPECT_DOUBLE_EQ(series.buckets()[1].maxResponseSec, 0.060);
  EXPECT_EQ(series.bucketStart(2), 20 * sim::kSecond);
}

// --- replica picker health masks -------------------------------------------

TEST(ReplicaPickerTest, AllHealthyMaskMatchesLegacyPick) {
  for (const auto policy : {mw::Dispatch::RoundRobin, mw::Dispatch::LeastOutstanding}) {
    mw::ReplicaPicker legacy(3, policy), masked(3, policy);
    const std::vector<char> healthy{1, 1, 1};
    for (int step = 0; step < 12; ++step) {
      const std::size_t a = legacy.pick();
      const std::size_t b = masked.pick(healthy);
      EXPECT_EQ(a, b);
      legacy.arrive(a);
      masked.arrive(b);
      if (step % 3 == 2) {  // drain a request now and then
        legacy.depart(a);
        masked.depart(b);
      }
    }
  }
}

TEST(ReplicaPickerTest, RoundRobinSkipsDownReplicas) {
  mw::ReplicaPicker picker(3, mw::Dispatch::RoundRobin);
  const std::vector<char> healthy{1, 0, 1};
  EXPECT_EQ(picker.pick(healthy), 0u);
  EXPECT_EQ(picker.pick(healthy), 2u);
  EXPECT_EQ(picker.pick(healthy), 0u);
  EXPECT_EQ(picker.pick(healthy), 2u);
}

TEST(ReplicaPickerTest, LeastOutstandingSkipsDownReplicas) {
  mw::ReplicaPicker picker(3, mw::Dispatch::LeastOutstanding);
  picker.arrive(0);
  picker.arrive(0);
  picker.arrive(2);
  // Replica 1 is idle but down; 2 has the fewest among healthy replicas.
  EXPECT_EQ(picker.pick({1, 0, 1}), 2u);
  EXPECT_EQ(picker.pick({0, 0, 0}), mw::ReplicaPicker::kNone);
}

// --- load balancer failover ------------------------------------------------

/// Scripted replica: burns a little virtual time, then succeeds, crashes, or
/// times out on demand. Records the deadlines it saw.
struct FakeReplica final : mw::HttpService {
  sim::Simulation& sim;
  int crashNext = 0;        // throw ReplicaDown for this many calls
  bool timeoutAlways = false;
  int calls = 0;
  std::vector<sim::SimTime> deadlines;

  explicit FakeReplica(sim::Simulation& s) : sim(s) {}

  sim::Task<mw::InteractionResult> serve(const mw::Request& request) override {
    ++calls;
    deadlines.push_back(request.deadline);
    co_await sim.delay(sim::fromMillis(1));
    if (timeoutAlways) throw mw::RequestTimeout(request.interaction);
    if (crashNext > 0) {
      --crashNext;
      throw mw::ReplicaDown("FakeReplica");
    }
    mw::Page page;
    page.htmlBytes = 1000;
    co_return mw::InteractionResult{page, page.htmlBytes};
  }
};

sim::Task<void> driveOne(mw::LoadBalancer& balancer, const mw::Request& request,
                         mw::InteractionResult& out) {
  out = co_await balancer.serve(request);
}

TEST(LoadBalancerTest, SkipsUnhealthyReplicas) {
  sim::Simulation simulation(1);
  FakeReplica r0(simulation), r1(simulation);
  mw::LoadBalancer balancer(simulation, {&r0, &r1}, mw::Dispatch::RoundRobin);
  balancer.setHealthy(0, false);
  const mw::Request request{};
  std::vector<mw::InteractionResult> results(4);
  for (auto& out : results) simulation.spawn(driveOne(balancer, request, out));
  simulation.run();
  EXPECT_EQ(r0.calls, 0);
  EXPECT_EQ(r1.calls, 4);
  EXPECT_EQ(balancer.errorCount(), 0u);
  for (const auto& out : results) EXPECT_FALSE(out.page.error);
}

TEST(LoadBalancerTest, ReroutesWhenAReplicaDiesUnderARequest) {
  sim::Simulation simulation(1);
  FakeReplica r0(simulation), r1(simulation);
  r0.crashNext = 1;
  mw::LoadBalancer balancer(simulation, {&r0, &r1}, mw::Dispatch::RoundRobin,
                            {.requestTimeout = 0, .requestRetries = 2});
  const mw::Request request{};
  mw::InteractionResult out{};
  simulation.spawn(driveOne(balancer, request, out));
  simulation.run();
  EXPECT_EQ(r0.calls, 1);
  EXPECT_EQ(r1.calls, 1);
  EXPECT_EQ(balancer.rerouteCount(), 1u);
  EXPECT_EQ(balancer.errorCount(), 0u);
  EXPECT_FALSE(out.page.error);
}

TEST(LoadBalancerTest, ExhaustedRetryBudgetYieldsAnErrorPage) {
  sim::Simulation simulation(1);
  FakeReplica r0(simulation), r1(simulation);
  r0.crashNext = 100;
  r1.crashNext = 100;
  mw::LoadBalancer balancer(simulation, {&r0, &r1}, mw::Dispatch::RoundRobin,
                            {.requestTimeout = 0, .requestRetries = 1});
  const mw::Request request{};
  mw::InteractionResult out{};
  simulation.spawn(driveOne(balancer, request, out));
  simulation.run();
  EXPECT_EQ(r0.calls + r1.calls, 2);  // 1 attempt + 1 retry
  EXPECT_EQ(balancer.rerouteCount(), 2u);
  EXPECT_EQ(balancer.errorCount(), 1u);
  EXPECT_TRUE(out.page.error);
  EXPECT_EQ(out.page.htmlBytes, 600);
}

TEST(LoadBalancerTest, TimeoutIsTerminalAndStampsDeadlines) {
  sim::Simulation simulation(1);
  FakeReplica r0(simulation), r1(simulation);
  r0.timeoutAlways = true;
  r1.timeoutAlways = true;
  mw::LoadBalancer balancer(
      simulation, {&r0, &r1}, mw::Dispatch::RoundRobin,
      {.requestTimeout = 5 * sim::kSecond, .requestRetries = 3});
  const mw::Request request{};
  mw::InteractionResult out{};
  simulation.spawn(driveOne(balancer, request, out));
  simulation.run();
  EXPECT_EQ(r0.calls + r1.calls, 1);  // no retry after a deadline miss
  EXPECT_EQ(balancer.timeoutCount(), 1u);
  EXPECT_EQ(balancer.errorCount(), 1u);
  EXPECT_TRUE(out.page.error);
  ASSERT_EQ(r0.deadlines.size(), 1u);
  EXPECT_EQ(r0.deadlines[0], 5 * sim::kSecond);  // now (0) + timeout
}

TEST(LoadBalancerTest, NoHealthyReplicaFailsFastWithoutDispatching) {
  sim::Simulation simulation(1);
  FakeReplica r0(simulation), r1(simulation);
  mw::LoadBalancer balancer(simulation, {&r0, &r1}, mw::Dispatch::LeastOutstanding);
  balancer.setHealthy(0, false);
  balancer.setHealthy(1, false);
  const mw::Request request{};
  mw::InteractionResult out{};
  simulation.spawn(driveOne(balancer, request, out));
  simulation.run();
  EXPECT_EQ(r0.calls + r1.calls, 0);
  EXPECT_EQ(balancer.errorCount(), 1u);
  EXPECT_TRUE(out.page.error);
}

// --- platform timeline -----------------------------------------------------

TEST(TimelineTest, SortsEventsByTimeStably) {
  const scenario::Timeline timeline({
      scenario::replicaRecover(20 * sim::kSecond, scenario::Tier::Web, 0),
      scenario::linkDegrade(5 * sim::kSecond, scenario::Tier::Db, 0, 2.0),
      scenario::replicaCrash(10 * sim::kSecond, scenario::Tier::Web, 0),
  });
  ASSERT_EQ(timeline.events().size(), 3u);
  EXPECT_EQ(timeline.events()[0].kind, scenario::EventKind::LinkDegrade);
  EXPECT_EQ(timeline.events()[1].kind, scenario::EventKind::ReplicaCrash);
  EXPECT_EQ(timeline.events()[2].kind, scenario::EventKind::ReplicaRecover);
}

TEST(TimelineTest, ValidationRejectsMalformedEventLists) {
  sim::Simulation simulation(1);
  net::Machine web0(simulation, "WebServer");
  net::Machine db0(simulation, "Database");
  FakeReplica replica(simulation);
  mw::LoadBalancer balancer(simulation, {&replica}, mw::Dispatch::RoundRobin);
  scenario::PlatformHooks hooks;
  hooks.web = {&web0};
  hooks.db = {&db0};
  hooks.balancer = &balancer;

  const auto validate = [&](scenario::Event event) {
    scenario::Timeline({event}).validate(hooks);
  };
  // Well-formed events pass.
  EXPECT_NO_THROW(validate(scenario::replicaCrash(sim::kSecond, scenario::Tier::Web, 0)));
  EXPECT_NO_THROW(validate(scenario::linkDegrade(sim::kSecond, scenario::Tier::Db, 0, 3.0)));
  // Negative time, out-of-range replica, crash off the web tier, crash
  // without a balancer, and non-positive degrade factors are all rejected.
  EXPECT_THROW(validate(scenario::replicaCrash(-1, scenario::Tier::Web, 0)),
               std::invalid_argument);
  EXPECT_THROW(validate(scenario::replicaCrash(sim::kSecond, scenario::Tier::Web, 1)),
               std::invalid_argument);
  EXPECT_THROW(validate(scenario::replicaCrash(sim::kSecond, scenario::Tier::Db, 0)),
               std::invalid_argument);
  EXPECT_THROW(validate(scenario::linkDegrade(sim::kSecond, scenario::Tier::Servlet, 0, 2.0)),
               std::invalid_argument);
  EXPECT_THROW(validate(scenario::linkDegrade(sim::kSecond, scenario::Tier::Db, 0, 0.0)),
               std::invalid_argument);
  scenario::PlatformHooks noBalancer = hooks;
  noBalancer.balancer = nullptr;
  EXPECT_THROW(scenario::Timeline({scenario::replicaCrash(sim::kSecond, scenario::Tier::Web, 0)})
                   .validate(noBalancer),
               std::invalid_argument);
}

TEST(TimelineTest, AppliesEventsAtTheirVirtualTimes) {
  sim::Simulation simulation(1);
  net::Machine web0(simulation, "WebServer");
  net::Machine web1(simulation, "WebServer#2");
  net::Machine db0(simulation, "Database");
  FakeReplica ra(simulation), rb(simulation);
  mw::LoadBalancer balancer(simulation, {&ra, &rb}, mw::Dispatch::RoundRobin);
  scenario::PlatformHooks hooks;
  hooks.web = {&web0, &web1};
  hooks.db = {&db0};
  hooks.balancer = &balancer;

  scenario::Timeline timeline({
      scenario::replicaCrash(10 * sim::kSecond, scenario::Tier::Web, 1),
      scenario::linkDegrade(10 * sim::kSecond, scenario::Tier::Db, 0, 4.0),
      scenario::replicaRecover(20 * sim::kSecond, scenario::Tier::Web, 1),
      scenario::linkRestore(20 * sim::kSecond, scenario::Tier::Db, 0),
  });
  timeline.install(simulation, hooks);

  const std::uint64_t epochBefore = web1.epoch();
  const auto nominal = db0.nic().serializationTime(1500);
  simulation.runUntil(15 * sim::kSecond);
  EXPECT_TRUE(web0.up());
  EXPECT_FALSE(web1.up());
  EXPECT_EQ(web1.epoch(), epochBefore + 1);
  EXPECT_TRUE(balancer.healthy(0));
  EXPECT_FALSE(balancer.healthy(1));
  EXPECT_EQ(db0.nic().serializationTime(1500), 4 * nominal);

  simulation.runUntil(25 * sim::kSecond);
  EXPECT_TRUE(web1.up());
  EXPECT_EQ(web1.epoch(), epochBefore + 1);  // recovery does not bump the epoch
  EXPECT_TRUE(balancer.healthy(1));
  EXPECT_EQ(db0.nic().serializationTime(1500), nominal);
  simulation.shutdown();
}

TEST(MachineTest, CrashBumpsTheEpochOnceAndRecoveryDoesNot) {
  sim::Simulation simulation(1);
  net::Machine machine(simulation, "WebServer");
  EXPECT_TRUE(machine.up());
  const std::uint64_t epoch = machine.epoch();
  machine.setUp(false);
  EXPECT_FALSE(machine.up());
  EXPECT_EQ(machine.epoch(), epoch + 1);
  machine.setUp(false);  // no-op while already down
  EXPECT_EQ(machine.epoch(), epoch + 1);
  machine.setUp(true);
  EXPECT_TRUE(machine.up());
  EXPECT_EQ(machine.epoch(), epoch + 1);
  machine.setUp(false);
  EXPECT_EQ(machine.epoch(), epoch + 2);
}

// --- spec seed tags --------------------------------------------------------

TEST(ScenarioSpecTest, InertSpecsKeepTheLegacySeedTag) {
  EXPECT_EQ(scenario::Spec{}.seedTag(), 0u);
  scenario::Spec inert;
  inert.requestRetries = 9;      // no events and no timeout: never consulted
  inert.continueProb = 0.5;      // closed loop: never consulted
  inert.maxInFlightSessions = 1;
  inert.seriesInterval = sim::kSecond;  // observation only
  EXPECT_EQ(inert.seedTag(), 0u);
  EXPECT_FALSE(inert.active());
}

TEST(ScenarioSpecTest, BehaviorChangingSpecsGetDistinctTags) {
  scenario::Spec open;
  open.mode = scenario::ArrivalMode::OpenLoop;
  open.arrivals = scenario::RateSchedule::constant(2.0);
  scenario::Spec open2 = open;
  open2.arrivals = scenario::RateSchedule::constant(4.0);
  scenario::Spec crash;
  crash.events = {scenario::replicaCrash(sim::kSecond, scenario::Tier::Web, 0)};
  scenario::Spec deadline;
  deadline.requestTimeout = sim::kSecond;

  EXPECT_NE(open.seedTag(), 0u);
  EXPECT_NE(open2.seedTag(), 0u);
  EXPECT_NE(crash.seedTag(), 0u);
  EXPECT_NE(deadline.seedTag(), 0u);
  EXPECT_NE(open.seedTag(), open2.seedTag());
  EXPECT_NE(open.seedTag(), crash.seedTag());
  EXPECT_NE(crash.seedTag(), deadline.seedTag());
  EXPECT_TRUE(open.active());
  EXPECT_TRUE(crash.needsFailover());
}

TEST(ScenarioSpecTest, PointSeedTreatsTagZeroAsTheLegacySeed) {
  const auto legacy =
      core::pointSeed(1, core::App::Auction, 1, core::Configuration::WsPhpDb, 500);
  const auto tagged0 =
      core::pointSeed(1, core::App::Auction, 1, core::Configuration::WsPhpDb, 500, 0);
  const auto tagged =
      core::pointSeed(1, core::App::Auction, 1, core::Configuration::WsPhpDb, 500, 77);
  EXPECT_EQ(legacy, tagged0);
  EXPECT_NE(legacy, tagged);
  EXPECT_NE(tagged,
            core::pointSeed(1, core::App::Auction, 1, core::Configuration::WsPhpDb,
                            500, 78));
}

// --- whole-experiment properties -------------------------------------------

core::ExperimentParams tinyParams(core::App app) {
  core::ExperimentParams p;
  p.app = app;
  p.mix = 1;
  p.clients = 25;
  p.rampUp = 5 * sim::kSecond;
  p.measure = 20 * sim::kSecond;
  p.rampDown = 2 * sim::kSecond;
  p.bookstoreScale = 0.02;
  p.auctionHistoryScale = 0.01;
  p.bbsHistoryScale = 0.01;
  return p;
}

/// Bit-exact equality across the headline results plus the scenario
/// counters and (when both runs produced one) the time series.
void expectIdentical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  EXPECT_EQ(a.throughputIpm, b.throughputIpm);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.meanResponseSeconds, b.meanResponseSeconds);
  EXPECT_EQ(a.p90ResponseSeconds, b.p90ResponseSeconds);
  EXPECT_EQ(a.webErrors, b.webErrors);
  EXPECT_EQ(a.reroutedRequests, b.reroutedRequests);
  EXPECT_EQ(a.timedOutRequests, b.timedOutRequests);
  EXPECT_EQ(a.openLoopArrivals, b.openLoopArrivals);
  EXPECT_EQ(a.shedSessions, b.shedSessions);
  ASSERT_EQ(a.usage.size(), b.usage.size());
  for (std::size_t i = 0; i < a.usage.size(); ++i) {
    EXPECT_EQ(a.usage[i].cpuUtilization, b.usage[i].cpuUtilization);
    EXPECT_EQ(a.usage[i].nicMbps, b.usage[i].nicMbps);
  }
  if (a.series && b.series) {
    ASSERT_EQ(a.series->buckets().size(), b.series->buckets().size());
    for (std::size_t i = 0; i < a.series->buckets().size(); ++i) {
      EXPECT_EQ(a.series->buckets()[i].completions, b.series->buckets()[i].completions);
      EXPECT_EQ(a.series->buckets()[i].errors, b.series->buckets()[i].errors);
      EXPECT_EQ(a.series->buckets()[i].shed, b.series->buckets()[i].shed);
      EXPECT_EQ(a.series->buckets()[i].sumResponseSec,
                b.series->buckets()[i].sumResponseSec);
    }
  }
}

TEST(ScenarioExperimentTest, InertSpecLeavesRunsBitIdentical) {
  auto plain = tinyParams(core::App::Auction);
  auto inert = plain;
  inert.scenario.requestRetries = 9;
  inert.scenario.continueProb = 0.5;
  expectIdentical(core::runExperiment(plain), core::runExperiment(inert));
}

TEST(ScenarioExperimentTest, TimeSeriesIsObservationOnly) {
  auto plain = tinyParams(core::App::Bookstore);
  auto observed = plain;
  observed.scenario.seriesInterval = 5 * sim::kSecond;
  const auto a = core::runExperiment(plain);
  const auto b = core::runExperiment(observed);
  expectIdentical(a, b);
  ASSERT_TRUE(b.series != nullptr);
  EXPECT_TRUE(a.series == nullptr);
  std::uint64_t completions = 0;
  for (const auto& bucket : b.series->buckets()) completions += bucket.completions;
  // The series covers the whole run including ramps, so it sees at least
  // every measured interaction.
  EXPECT_GE(completions, b.interactions);
}

core::ExperimentParams crashParams() {
  // Single web replica, crash without recovery: once the replica dies,
  // every subsequent request deterministically becomes a balancer error.
  auto p = tinyParams(core::App::Auction);
  p.scenario.events = {
      scenario::replicaCrash(10 * sim::kSecond, scenario::Tier::Web, 0)};
  p.scenario.requestRetries = 1;
  p.scenario.seriesInterval = 5 * sim::kSecond;
  return p;
}

TEST(ScenarioExperimentTest, CrashProducesErrorsVisibleInTheSeries) {
  const auto r = core::runExperiment(crashParams());
  EXPECT_GT(r.interactions, 0u);  // work completed before the crash
  EXPECT_GT(r.webErrors, 0u);     // blackout traffic surfaced as error pages
  ASSERT_TRUE(r.series != nullptr);
  std::uint64_t seriesErrors = 0;
  bool cleanBucketBeforeCrash = false;
  for (std::size_t i = 0; i < r.series->buckets().size(); ++i) {
    const auto& bucket = r.series->buckets()[i];
    seriesErrors += bucket.errors;
    if (r.series->bucketStart(i) + r.series->interval() <= 10 * sim::kSecond &&
        bucket.errors == 0 && bucket.ok() > 0) {
      cleanBucketBeforeCrash = true;
    }
  }
  EXPECT_GT(seriesErrors, 0u);
  EXPECT_TRUE(cleanBucketBeforeCrash);
}

TEST(ScenarioExperimentTest, FailoverReroutesOntoTheSurvivingReplica) {
  // Two replicas, one crashes mid-run and recovers: the run must keep
  // completing work during the outage (the survivor carries the load).
  auto p = tinyParams(core::App::Auction);
  p.clients = 100;
  core::Topology topo = core::canonicalTopology(core::Configuration::WsPhpDb);
  topo.web.replicas = 2;
  p.topology = topo;
  p.scenario.events = {
      scenario::replicaCrash(10 * sim::kSecond, scenario::Tier::Web, 1),
      scenario::replicaRecover(15 * sim::kSecond, scenario::Tier::Web, 1),
  };
  p.scenario.requestTimeout = 2 * sim::kSecond;
  p.scenario.requestRetries = 2;
  p.scenario.seriesInterval = 5 * sim::kSecond;
  const auto r = core::runExperiment(p);
  EXPECT_GT(r.interactions, 0u);
  ASSERT_TRUE(r.series != nullptr);
  // The outage bucket [10s, 15s) still completes successful interactions.
  const auto& outage = r.series->buckets().at(2);
  EXPECT_GT(outage.ok(), 0u);
  // Errors are bounded by the work lost at the crash instant, not the whole
  // blackout: with a healthy survivor, most traffic keeps succeeding.
  EXPECT_LT(r.webErrors, r.interactions / 10 + 10);
}

TEST(ScenarioDeterminismTest, CrashRunsAreBitIdentical) {
  expectIdentical(core::runExperiment(crashParams()),
                  core::runExperiment(crashParams()));
}

TEST(ScenarioDeterminismTest, TracingDoesNotPerturbCrashRuns) {
  auto traced = crashParams();
  traced.trace.enabled = true;
  const auto a = core::runExperiment(crashParams());
  const auto b = core::runExperiment(traced);
  expectIdentical(a, b);
  EXPECT_TRUE(b.trace != nullptr);
}

core::ExperimentParams openLoopParams() {
  auto p = tinyParams(core::App::Auction);
  p.scenario.mode = scenario::ArrivalMode::OpenLoop;
  p.scenario.arrivals = scenario::RateSchedule::constant(3.0);
  p.scenario.openThinkMean = sim::kSecond;
  p.scenario.seriesInterval = 5 * sim::kSecond;
  return p;
}

TEST(ScenarioDeterminismTest, OpenLoopRunsAreBitIdentical) {
  const auto a = core::runExperiment(openLoopParams());
  const auto b = core::runExperiment(openLoopParams());
  expectIdentical(a, b);
  EXPECT_GT(a.openLoopArrivals, 0u);
  EXPECT_GT(a.interactions, 0u);
}

TEST(ScenarioDeterminismTest, ParallelScenarioSweepMatchesSequential) {
  std::vector<core::ExperimentParams> points{crashParams(), openLoopParams()};
  core::SweepOptions sequential;
  sequential.jobs = 1;
  core::SweepOptions parallel;
  parallel.jobs = 2;
  const auto a = core::runMany(points, sequential);
  const auto b = core::runMany(points, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expectIdentical(a[i], b[i]);
}

TEST(OpenLoopExperimentTest, ThroughputTracksTheOfferedRateBelowTheKnee) {
  auto p = tinyParams(core::App::Auction);
  p.rampUp = 20 * sim::kSecond;  // let the session population reach steady state
  p.measure = 30 * sim::kSecond;
  p.scenario.mode = scenario::ArrivalMode::OpenLoop;
  p.scenario.arrivals = scenario::RateSchedule::constant(5.0);
  p.scenario.continueProb = 0.5;  // short sessions: mean two interactions
  p.scenario.openThinkMean = sim::fromMillis(500);
  const auto r = core::runExperiment(p);
  // Offered interaction rate = 5 sessions/s × mean 2 interactions = 10/s.
  const double measured =
      static_cast<double>(r.interactions) / sim::toSeconds(p.measure);
  EXPECT_GT(measured, 6.0);
  EXPECT_LT(measured, 14.0);
  EXPECT_EQ(r.shedSessions, 0u);
  EXPECT_EQ(r.webErrors, 0u);
}

TEST(OpenLoopExperimentTest, AdmissionControlShedsInsteadOfErroring) {
  auto p = openLoopParams();
  p.scenario.arrivals = scenario::RateSchedule::constant(10.0);
  p.scenario.maxInFlightSessions = 1;
  const auto r = core::runExperiment(p);
  EXPECT_GT(r.openLoopArrivals, 0u);
  EXPECT_GT(r.shedSessions, 0u);
  EXPECT_LT(r.shedSessions, r.openLoopArrivals);  // the admitted session runs
  EXPECT_EQ(r.webErrors, 0u);
  ASSERT_TRUE(r.series != nullptr);
  std::uint64_t shed = 0;
  for (const auto& bucket : r.series->buckets()) shed += bucket.shed;
  EXPECT_EQ(shed, r.shedSessions);
}

}  // namespace
}  // namespace mwsim
