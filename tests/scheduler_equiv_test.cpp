// Equivalence tests for the timer-wheel EventQueue against a reference
// (time, seq) binary heap — the exact semantics of the std::priority_queue
// scheduler the wheel replaced. Any divergence in pop order, however small,
// breaks the repo's bit-identical determinism guarantee, so these tests
// compare full dispatch sequences element by element under adversarial
// schedules: same-instant bursts, bucket-boundary-aligned times, delays
// spanning nine orders of magnitude, and delays beyond the wheel horizon
// (the overflow heap).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mwsim::sim {
namespace {

// The semantics the wheel must reproduce exactly: a plain binary min-heap
// popping in strict (time, seq) order.
class ReferenceQueue {
 public:
  void push(const Event& ev) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), Event::later);
  }
  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Event::later);
    Event ev = heap_.back();
    heap_.pop_back();
    return ev;
  }
  SimTime nextTime() const { return heap_.front().time; }
  bool empty() const { return heap_.empty(); }

 private:
  std::vector<Event> heap_;
};

Event makeEvent(SimTime t, std::uint64_t seq) {
  Event ev;
  ev.time = t;
  ev.seq = seq;
  ev.setSpanKind(nullptr, Event::Kind::Resume);
  ev.pay.handle = {};
  return ev;
}

// Drives both queues through an identical randomized push/pop schedule and
// asserts the pop streams are identical. Pushes respect the queue contract
// (event time >= time of the last pop), exactly as Simulation guarantees.
void runRandomizedSchedule(std::uint64_t seed, int ops) {
  std::mt19937_64 rng(seed);
  EventQueue wheel;
  ReferenceQueue ref;
  SimTime now = 0;
  std::uint64_t seq = 0;
  std::uint64_t pending = 0;

  auto randomDelay = [&]() -> SimTime {
    switch (rng() % 8) {
      case 0:
        return 0;  // same instant as the last dispatch
      case 1:
        return static_cast<SimTime>(rng() % 10'000);  // sub-10 µs
      case 2:
        return static_cast<SimTime>(rng() % 50'000'000);  // sub-50 ms
      case 3:
        return static_cast<SimTime>(rng() % 100'000'000'000);  // sub-100 s
      case 4:  // hours-scale, upper wheel levels
        return static_cast<SimTime>(rng() % (SimTime{1} << 45));
      case 5:  // beyond the wheel horizon: overflow heap
        return (SimTime{1} << 49) + static_cast<SimTime>(rng() % (SimTime{1} << 49));
      case 6: {  // aligned exactly to a random bucket-boundary power of two
        const int bits = static_cast<int>(rng() % 40);
        const SimTime raw = static_cast<SimTime>(rng() % (SimTime{1} << 45));
        const SimTime t = ((now + raw) >> bits) << bits;
        return t > now ? t - now : 0;
      }
      default:
        return static_cast<SimTime>(rng() % 1'000'000);  // sub-1 ms
    }
  };

  for (int op = 0; op < ops; ++op) {
    const bool doPush = pending == 0 || (rng() % 100) < 55;
    if (doPush) {
      const Event ev = makeEvent(now + randomDelay(), seq++);
      wheel.push(ev);
      ref.push(ev);
      ++pending;
    } else {
      ASSERT_FALSE(wheel.empty());
      ASSERT_EQ(wheel.nextTime(), ref.nextTime());
      const Event got = wheel.pop();
      const Event want = ref.pop();
      ASSERT_EQ(got.time, want.time) << "seed " << seed << " op " << op;
      ASSERT_EQ(got.seq, want.seq) << "seed " << seed << " op " << op;
      now = got.time;
      --pending;
    }
  }
  while (!wheel.empty()) {
    ASSERT_FALSE(ref.empty());
    const Event got = wheel.pop();
    const Event want = ref.pop();
    ASSERT_EQ(got.time, want.time) << "seed " << seed << " drain";
    ASSERT_EQ(got.seq, want.seq) << "seed " << seed << " drain";
  }
  EXPECT_TRUE(ref.empty());
}

TEST(SchedulerEquivalence, RandomizedSchedulesMatchReferenceHeap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    runRandomizedSchedule(seed, 20'000);
  }
}

TEST(SchedulerEquivalence, SameInstantBurstPopsInSeqOrder) {
  EventQueue wheel;
  // A burst at one instant far in the future (forces a cascade first), with
  // seqs pushed out of submission order being impossible — seq is the push
  // counter — so FIFO-within-instant means ascending seq on pop.
  const SimTime t = SimTime{123} * kSecond + 4567;
  for (std::uint64_t s = 0; s < 1000; ++s) wheel.push(makeEvent(t, s));
  for (std::uint64_t s = 0; s < 1000; ++s) {
    const Event ev = wheel.pop();
    EXPECT_EQ(ev.time, t);
    EXPECT_EQ(ev.seq, s);
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(SchedulerEquivalence, InterleavedInstantsAcrossLevels) {
  // Events at the same instant pushed before AND after intervening pops at
  // earlier instants — the late pushes land in the near heap while the
  // early ones migrated from the wheel; order must still be global seq.
  EventQueue wheel;
  std::uint64_t seq = 0;
  const SimTime burst = 10 * kMillisecond;
  wheel.push(makeEvent(burst, seq++));          // 0: via wheel
  wheel.push(makeEvent(kMicrosecond, seq++));   // 1: earlier
  wheel.push(makeEvent(burst, seq++));          // 2: via wheel
  Event ev = wheel.pop();
  EXPECT_EQ(ev.seq, 1u);
  wheel.push(makeEvent(burst, seq++));          // 3: pushed mid-dispatch
  EXPECT_EQ(wheel.pop().seq, 0u);
  wheel.push(makeEvent(burst, seq++));          // 4: same instant, mid-burst
  EXPECT_EQ(wheel.pop().seq, 2u);
  EXPECT_EQ(wheel.pop().seq, 3u);
  EXPECT_EQ(wheel.pop().seq, 4u);
  EXPECT_TRUE(wheel.empty());
}

TEST(SchedulerEquivalence, OverflowEventsMergeInOrder) {
  EventQueue wheel;
  std::uint64_t seq = 0;
  const SimTime far = SimTime{1} << 52;  // beyond the wheel horizon
  wheel.push(makeEvent(far + 5, seq++));
  wheel.push(makeEvent(far + 5, seq++));
  wheel.push(makeEvent(3, seq++));
  wheel.push(makeEvent(far, seq++));
  EXPECT_EQ(wheel.pop().seq, 2u);
  EXPECT_EQ(wheel.pop().seq, 3u);
  EXPECT_EQ(wheel.pop().seq, 0u);
  EXPECT_EQ(wheel.pop().seq, 1u);
  EXPECT_TRUE(wheel.empty());
}

// --- Simulation-level ordering -------------------------------------------

TEST(SchedulerEquivalence, PostRunsInSubmissionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      sim.post([&order, i] { order.push_back(i); });
    } else {
      sim.schedule(0, [&order, i] { order.push_back(i); });
    }
  }
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerEquivalence, RunUntilBoundaryIsInclusive) {
  Simulation sim;
  bool atT = false;
  bool afterT = false;
  const SimTime t = 5 * kMillisecond;
  sim.schedule(t, [&] { atT = true; });
  sim.schedule(t + 1, [&] { afterT = true; });
  sim.runUntil(t);
  EXPECT_TRUE(atT);
  EXPECT_FALSE(afterT);
  EXPECT_EQ(sim.now(), t);
  sim.runUntil(t + 1);
  EXPECT_TRUE(afterT);
  EXPECT_EQ(sim.now(), t + 1);
}

TEST(SchedulerEquivalence, DelayChainsMatchScheduledClosures) {
  // Coroutine delays (Resume events) and scheduled closures at identical
  // instants interleave strictly by schedule order.
  Simulation sim;
  std::vector<int> order;
  struct Driver {
    static Task<> waiter(Simulation& s, std::vector<int>& order, int tag) {
      co_await s.delay(kMillisecond);
      order.push_back(tag);
    }
  };
  sim.spawn(Driver::waiter(sim, order, 0));  // Resume scheduled at spawn+delay
  sim.schedule(kMillisecond, [&order] { order.push_back(1); });
  sim.spawn(Driver::waiter(sim, order, 2));
  sim.run();
  // spawn posts the root at t=0; both coroutines then schedule their delay
  // resumes for t=1ms. Spawn 0's resume is scheduled before the closure only
  // if its root ran first — roots run at t=0 in spawn order, so the delay
  // resumes are scheduled after the closure (which was scheduled at t=0
  // directly). Submission order of the t=1ms instant: closure(1), then
  // resume(0), then resume(2).
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 2);
}

}  // namespace
}  // namespace mwsim::sim
