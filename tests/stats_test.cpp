#include <gtest/gtest.h>

#include "net/machine.hpp"
#include "net/network.hpp"
#include "sim/sim.hpp"
#include "stats/histogram.hpp"
#include "stats/report.hpp"
#include "stats/usage.hpp"

namespace mwsim {
namespace {

using sim::kSecond;
using sim::Task;

// --------------------------------------------------------------- Histogram

TEST(HistogramTest, CountMeanMinMax) {
  stats::Histogram h;
  h.record(0.010);
  h.record(0.020);
  h.record(0.030);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean(), 0.020, 1e-9);
  EXPECT_NEAR(h.min(), 0.010, 1e-9);
  EXPECT_NEAR(h.max(), 0.030, 1e-9);
}

TEST(HistogramTest, PercentilesAreOrdered) {
  stats::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 0.001);
  const double p50 = h.percentile(50);
  const double p90 = h.percentile(90);
  const double p99 = h.percentile(99);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  EXPECT_NEAR(p50, 0.5, 0.05);
  EXPECT_NEAR(p90, 0.9, 0.09);
}

TEST(HistogramTest, PercentileZeroIsRecordedMin) {
  stats::Histogram h;
  h.record(0.250);
  h.record(0.500);
  h.record(0.750);
  EXPECT_NEAR(h.percentile(0), 0.250, 1e-12);
  EXPECT_NEAR(h.percentile(-5), 0.250, 1e-12);  // out-of-range clamps too
}

TEST(HistogramTest, PercentileClampedToRecordedRange) {
  // The raw upper bound of the last occupied bucket can exceed the largest
  // recorded value by up to the bucket width (~4.6%); the estimate must
  // never leave [min, max].
  stats::Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(1.0);
  EXPECT_NEAR(h.percentile(100), 1.0, 1e-12);
  EXPECT_NEAR(h.percentile(99), 1.0, 1e-12);
  EXPECT_NEAR(h.percentile(50), 1.0, 1e-12);
  // A two-point distribution: every percentile stays within the range.
  stats::Histogram h2;
  h2.record(0.010);
  h2.record(0.020);
  for (double p : {0.0, 1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_GE(h2.percentile(p), 0.010);
    EXPECT_LE(h2.percentile(p), 0.020);
  }
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  stats::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(99), 0.0);
}

TEST(HistogramTest, ClearResets) {
  stats::Histogram h;
  h.record(1.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, WideRangeValues) {
  stats::Histogram h;
  h.record(2e-6);
  h.record(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.percentile(99), 50.0);
}

// -------------------------------------------------------------------- Nic

TEST(NicTest, SerializationTime) {
  sim::Simulation simulation;
  net::Nic nic(simulation, 100e6, "test");
  // 12,500 bytes = 100,000 bits = 1 ms at 100 Mb/s.
  EXPECT_EQ(nic.serializationTime(12'500), sim::kMillisecond);
}

TEST(NicTest, PacketsForPayload) {
  EXPECT_EQ(net::Nic::packetsFor(0), 1u);
  EXPECT_EQ(net::Nic::packetsFor(100), 1u);
  EXPECT_EQ(net::Nic::packetsFor(1460), 1u);
  EXPECT_EQ(net::Nic::packetsFor(1461), 2u);
  EXPECT_EQ(net::Nic::packetsFor(14'600), 10u);
}

TEST(NicTest, TransfersQueueFifo) {
  sim::Simulation simulation;
  net::Nic nic(simulation, 100e6, "test");
  sim::SimTime firstDone = 0;
  sim::SimTime secondDone = 0;
  simulation.spawn([](net::Nic& n, sim::Simulation& s, sim::SimTime& out) -> Task<> {
    co_await n.transfer(12'500);  // 1 ms
    out = s.now();
  }(nic, simulation, firstDone));
  simulation.spawn([](net::Nic& n, sim::Simulation& s, sim::SimTime& out) -> Task<> {
    co_await n.transfer(12'500);
    out = s.now();
  }(nic, simulation, secondDone));
  simulation.run();
  EXPECT_EQ(firstDone, sim::kMillisecond);
  EXPECT_EQ(secondDone, 2 * sim::kMillisecond);  // serialized behind the first
  EXPECT_EQ(nic.bytesTransferred(), 25'000u);
}

// ----------------------------------------------------------------- Network

TEST(NetworkTest, TrafficMatrixRecordsBothDirections) {
  sim::Simulation simulation;
  net::Network network(simulation);
  net::Machine a(simulation, "a");
  net::Machine b(simulation, "b");
  simulation.spawn([](net::Network& n, net::Machine& a, net::Machine& b) -> Task<> {
    co_await n.send(a, b, 1000);
    co_await n.send(b, a, 500);
    co_await n.send(a, b, 2000);
  }(network, a, b));
  simulation.run();
  EXPECT_EQ(network.traffic(a, b).bytes, 3000u);
  EXPECT_EQ(network.traffic(a, b).messages, 2u);
  EXPECT_EQ(network.traffic(b, a).bytes, 500u);
  EXPECT_EQ(network.trafficBetween(a, b).bytes, 3500u);
  EXPECT_EQ(network.trafficBetween(a, b).packets, 4u);
}

TEST(NetworkTest, TransferTimeIncludesBothNicsAndPropagation) {
  sim::Simulation simulation;
  net::Network network(simulation, sim::fromMicros(100));
  net::Machine a(simulation, "a");
  net::Machine b(simulation, "b");
  sim::SimTime done = 0;
  simulation.spawn([](net::Network& n, net::Machine& a, net::Machine& b,
                      sim::Simulation& s, sim::SimTime& out) -> Task<> {
    co_await n.send(a, b, 12'500);  // 1 ms serialization per NIC
    out = s.now();
  }(network, a, b, simulation, done));
  simulation.run();
  EXPECT_EQ(done, 2 * sim::kMillisecond + sim::fromMicros(100));
}

// ------------------------------------------------------------- UsageWindow

TEST(UsageWindowTest, CapturesCpuAndNic) {
  sim::Simulation simulation;
  net::Network network(simulation);
  net::Machine m(simulation, "m");
  stats::UsageWindow window;
  window.addMachine(&m);
  window.start(0);
  simulation.spawn([](net::Machine& m, net::Network& n, net::Machine& self) -> Task<> {
    co_await m.compute(2 * kSecond);
    (void)n;
    (void)self;
  }(m, network, m));
  simulation.runUntil(10 * kSecond);
  window.stop(simulation.now());
  auto usage = window.usage();
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_NEAR(usage[0].cpuUtilization, 0.2, 0.01);  // 2 s busy of 10 s
}

TEST(UsageWindowTest, WindowExcludesWorkOutsideIt) {
  sim::Simulation simulation;
  net::Machine m(simulation, "m");
  simulation.spawn([](net::Machine& m) -> Task<> { co_await m.compute(5 * kSecond); }(m));
  simulation.runUntil(5 * kSecond);  // all work happens before the window
  stats::UsageWindow window;
  window.addMachine(&m);
  window.start(simulation.now());
  simulation.runUntil(15 * kSecond);
  window.stop(simulation.now());
  EXPECT_NEAR(window.usage()[0].cpuUtilization, 0.0, 1e-9);
}

// ------------------------------------------------------------------ Report

TEST(ReportTest, TextTableAligns) {
  stats::TextTable t({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer-name", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // All lines of a column start at the same offset: check header/row align.
  const auto lines = [&] {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
      auto nl = s.find('\n', pos);
      out.push_back(s.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return out;
  }();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[1].find('-'), 0u);
}

TEST(ReportTest, CsvEscapesQuotesAndCommas) {
  stats::CsvWriter w({"a", "b"});
  w.addRow({"plain", "with,comma"});
  w.addRow({"quote\"inside", "x"});
  const std::string s = w.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(stats::fmt(1.234, 2), "1.23");
  EXPECT_EQ(stats::fmtInt(42), "42");
  EXPECT_EQ(stats::fmtPct(0.985), "98.5%");
}

}  // namespace
}  // namespace mwsim

#include "stats/sampler.hpp"

namespace mwsim {
namespace {

using sim::kSecond;

TEST(SamplerTest, TracksUtilizationOverTime) {
  sim::Simulation simulation;
  net::Machine m(simulation, "m");
  stats::Sampler sampler(simulation, kSecond);
  sampler.addMachine(&m);
  sampler.start();
  // Busy during seconds [2, 5): three fully-busy samples.
  simulation.spawn([](sim::Simulation& s, net::Machine& m) -> sim::Task<> {
    co_await s.delay(2 * kSecond);
    co_await m.compute(3 * kSecond);
  }(simulation, m));
  simulation.runUntil(8 * kSecond);
  const auto& series = sampler.series(0);
  ASSERT_GE(series.size(), 8u);
  EXPECT_NEAR(series[0].cpuUtilization, 0.0, 1e-9);   // [0,1): idle
  EXPECT_NEAR(series[3].cpuUtilization, 1.0, 1e-6);   // [3,4): busy
  EXPECT_NEAR(series[6].cpuUtilization, 0.0, 1e-9);   // [6,7): idle again
  simulation.shutdown();
}

TEST(SamplerTest, FlushRecordsFinalPartialInterval) {
  sim::Simulation simulation;
  net::Machine m(simulation, "m");
  stats::Sampler sampler(simulation, kSecond);
  sampler.addMachine(&m);
  sampler.start();
  // Busy for the whole run; stop mid-period at t = 2.5 s. The loop has
  // fired twice (t=1, t=2); flush() must record the [2, 2.5) tail.
  simulation.spawn([](net::Machine& m) -> sim::Task<> {
    co_await m.compute(10 * kSecond);
  }(m));
  simulation.runUntil(2 * kSecond + kSecond / 2);
  sampler.flush();
  const auto& series = sampler.series(0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[2].time, 2 * kSecond + kSecond / 2);
  EXPECT_NEAR(series[2].cpuUtilization, 1.0, 1e-6);  // scaled by 0.5 s, not 1 s
  // Flushing again without time passing records nothing.
  sampler.flush();
  EXPECT_EQ(series.size(), 3u);
  simulation.shutdown();
}

TEST(SamplerTest, FractionAboveThreshold) {
  sim::Simulation simulation;
  net::Machine m(simulation, "m");
  stats::Sampler sampler(simulation, kSecond);
  sampler.addMachine(&m);
  sampler.start();
  simulation.spawn([](sim::Simulation& s, net::Machine& m) -> sim::Task<> {
    (void)s;
    co_await m.compute(5 * kSecond);
  }(simulation, m));
  simulation.runUntil(10 * kSecond);
  // Busy [0,5): 5 of 10 one-second samples above 90%.
  EXPECT_NEAR(sampler.fractionAbove(0, 0.9, 0, 10 * kSecond), 0.5, 0.01);
  simulation.shutdown();
}

}  // namespace
}  // namespace mwsim
