/// Figure-shape regression tests: miniature versions of the paper's
/// throughput figures, asserting the *qualitative* verdicts (which
/// configuration beats which) rather than absolute numbers. They run at a
/// tiny database scale and short windows so they fit in the unit-test
/// budget, but deep enough into saturation that the orderings emerge for
/// the same reasons as in the full benches:
///
///  * Figure 5 (bookstore, shopping mix): the Java-monitor (sync)
///    configuration sustains higher throughput than the same topology using
///    MySQL LOCK TABLES, because monitors serialize only the critical
///    section instead of admitting no statements while a writer drains.
///  * Figure 11 (auction, bidding mix): dedicated servlet machine beats
///    PHP-in-the-web-server, which beats the co-located servlet engine,
///    which beats the four-tier EJB configuration.
///  * §7 extension (bulletin board, submission mix): the paper predicts the
///    skipped RUBBoS benchmark mirrors the auction site because the web
///    server CPU is the bottleneck — same configuration ordering.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "obs/report.hpp"

namespace mwsim::core {
namespace {

ExperimentParams saturatedParams(App app, int clients, int rampSec,
                                 int measureSec) {
  ExperimentParams p;
  p.app = app;
  p.mix = 1;  // shopping (bookstore) / bidding (auction)
  p.clients = clients;
  p.rampUp = rampSec * sim::kSecond;
  p.measure = measureSec * sim::kSecond;
  p.rampDown = 2 * sim::kSecond;
  p.bookstoreScale = 0.02;
  p.auctionHistoryScale = 0.10;
  p.bbsHistoryScale = 0.01;
  return p;
}

double throughputAt(ExperimentParams base, Configuration config) {
  base.config = config;
  base.seed = pointSeed(base.seed, base.app, base.mix, config, base.clients);
  return runExperiment(base).throughputIpm;
}

/// Same point, with the metrics layer on, for bottleneck-verdict checks.
ExperimentResult resultWithMetricsAt(ExperimentParams base, Configuration config) {
  base.config = config;
  base.metrics.enabled = true;
  base.seed = pointSeed(base.seed, base.app, base.mix, config, base.clients);
  return runExperiment(base);
}

TEST(FigureShapeTest, Fig05BookstoreSyncBeatsLockTables) {
  // Past the saturation knee the bookstore's write mix makes the LOCK
  // TABLES configurations queue on the lock manager; the sync variant keeps
  // the database busy and peaks higher (paper: ~28% higher).
  const auto base = saturatedParams(App::Bookstore, 220, 8, 30);
  const double lockTables = throughputAt(base, Configuration::WsServletDb);
  const double sync = throughputAt(base, Configuration::WsServletDbSync);
  EXPECT_GT(sync, lockTables)
      << "sync " << sync << " ipm vs LOCK TABLES " << lockTables << " ipm";
}

TEST(FigureShapeTest, Fig05BookstoreVerdictIsDatabaseCpu) {
  // The paper's *explanation*, machine-checked (PR 10): for the shopping
  // mix the database CPU is the bottleneck at peak — in the LOCK TABLES
  // configuration and the sync variant alike (Figure 6's utilization plot).
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  const auto base = saturatedParams(App::Bookstore, 500, 8, 30);
  for (const auto config :
       {Configuration::WsServletDb, Configuration::WsServletDbSync}) {
    const auto result = resultWithMetricsAt(base, config);
    ASSERT_NE(result.metrics, nullptr);
    const obs::Verdict& v = result.metrics->verdict;
    EXPECT_EQ(v.resource, "Database/cpu")
        << configurationName(config) << ": " << v.oneLine();
    EXPECT_TRUE(v.saturated) << configurationName(config) << ": " << v.oneLine();
  }
}

TEST(FigureShapeTest, Fig09OrderingMixVerdictIsTheLockManager) {
  // The ordering mix is the paper's LOCK TABLES showcase (Figure 10:
  // "database CPU ~60% for non-sync configurations — locking bound"): the
  // write-heavy mix saturates the global lock manager while the database
  // CPU stays clearly below saturation, so the verdict must name the lock —
  // not the hottest CPU — as the wall.
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  auto base = saturatedParams(App::Bookstore, 500, 8, 30);
  base.mix = 2;  // ordering
  const auto result = resultWithMetricsAt(base, Configuration::WsServletDb);
  ASSERT_NE(result.metrics, nullptr);
  const obs::Verdict& v = result.metrics->verdict;
  EXPECT_EQ(v.resource, "Database/lock-manager") << v.oneLine();
  EXPECT_TRUE(v.saturated) << v.oneLine();
  const auto* dbCpu = result.metrics->findUtilization("Database/cpu");
  ASSERT_NE(dbCpu, nullptr);
  EXPECT_LT(result.metrics->meanUtilization(*dbCpu, result.metrics->windowStart,
                                            result.metrics->windowEnd),
            0.9)
      << "the lock verdict only means something if the database CPU is not "
         "itself saturated";
}

TEST(FigureShapeTest, Fig11AuctionBiddingConfigurationOrdering) {
  // Paper peaks: Ws-Servlet-DB 10,440 > WsPhp-DB 9,780 > WsServlet-DB
  // 7,380 > EJB 4,136 ipm. The auction site is CPU-bound on the
  // presentation tier, so adding a dedicated servlet machine wins, and the
  // co-located servlet engine loses to cheap PHP. Those tier capacities are
  // independent of database scale, so the client count must push demand
  // (~8.3 ipm per client with 7 s think time) past the highest knee for the
  // whole ordering to emerge. The EJB tier in particular needs a long
  // ramp: its queue builds slowly at ~2.5x overload, and a short ramp
  // measures the transient (inflated) completion rate instead of the
  // steady-state capacity.
  const auto base = saturatedParams(App::Auction, 1500, 20, 12);
  const double sepServlet = throughputAt(base, Configuration::WsServletSepDb);
  const double php = throughputAt(base, Configuration::WsPhpDb);
  const double coServlet = throughputAt(base, Configuration::WsServletDb);
  const double ejb = throughputAt(base, Configuration::WsServletEjbDb);
  EXPECT_GT(sepServlet, php)
      << "dedicated servlet " << sepServlet << " ipm vs PHP " << php << " ipm";
  EXPECT_GT(php, coServlet)
      << "PHP " << php << " ipm vs co-located servlet " << coServlet << " ipm";
  EXPECT_GT(coServlet, ejb)
      << "co-located servlet " << coServlet << " ipm vs EJB " << ejb << " ipm";
}

TEST(FigureShapeTest, Fig12AuctionVerdictIsGeneratorCpuWithDbCool) {
  // Figure 12's stated cause: the dynamic-content generator's CPU saturates
  // while "the database CPU utilization remains low" — for WsPhp-DB the web
  // server pegs with the database well below saturation.
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  const auto base = saturatedParams(App::Auction, 1500, 20, 12);
  const auto php = resultWithMetricsAt(base, Configuration::WsPhpDb);
  ASSERT_NE(php.metrics, nullptr);
  const obs::Verdict& v = php.metrics->verdict;
  EXPECT_EQ(v.resource, "WebServer/cpu") << v.oneLine();
  EXPECT_TRUE(v.saturated) << v.oneLine();
  const auto* db = php.metrics->findUtilization("Database/cpu");
  ASSERT_NE(db, nullptr);
  EXPECT_LT(php.metrics->meanUtilization(*db, php.metrics->windowStart,
                                         php.metrics->windowEnd),
            0.9)
      << "database should stay cool while the generator pegs";
}

TEST(FigureShapeTest, Ext07BulletinBoardMirrorsAuctionOrdering) {
  // §7: "the Web server CPU is the bottleneck for the bulletin board.
  // Therefore, we expect the results for the bulletin board to be similar
  // to the auction site results." The miniature checks the same ordering as
  // Figure 11: dedicated servlet machine > PHP > co-located servlets > EJB
  // (bench/ext_bulletin_board sweeps the full curves).
  const auto base = saturatedParams(App::BulletinBoard, 1500, 20, 12);
  const double sepServlet = throughputAt(base, Configuration::WsServletSepDb);
  const double php = throughputAt(base, Configuration::WsPhpDb);
  const double coServlet = throughputAt(base, Configuration::WsServletDb);
  const double ejb = throughputAt(base, Configuration::WsServletEjbDb);
  EXPECT_GT(sepServlet, php)
      << "dedicated servlet " << sepServlet << " ipm vs PHP " << php << " ipm";
  EXPECT_GT(php, coServlet)
      << "PHP " << php << " ipm vs co-located servlet " << coServlet << " ipm";
  EXPECT_GT(coServlet, ejb)
      << "co-located servlet " << coServlet << " ipm vs EJB " << ejb << " ipm";
}

}  // namespace
}  // namespace mwsim::core
