/// Differential test oracle for the SQL engine (DESIGN.md §8).
///
/// A deliberately naive reference interpreter — full scans only, per-row
/// name resolution, no plans, no indexes, no pushdown — executes the same
/// randomly generated statements as the optimized plan-based executor, over
/// the same randomly generated schemas and data. Every SELECT must agree
/// row for row (or as a multiset where the generated ordering is partial);
/// every write must leave byte-identical table contents. Each SELECT also
/// runs through the PlannedStatement cache twice (cold plan build, then
/// warm reuse), so plan caching itself is under the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.hpp"
#include "db/executor.hpp"
#include "db/parser.hpp"
#include "db/plan.hpp"

namespace {

using namespace mwsim;
using db::AggFunc;
using db::BinOp;
using db::ColumnType;
using db::Expr;
using db::Row;
using db::RowId;
using db::Table;
using db::Value;

// ===========================================================================
// Reference interpreter
// ===========================================================================

struct RefResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::size_t affectedRows = 0;
  std::int64_t lastInsertId = 0;
};

bool refTruthy(const Value& v) {
  if (v.isNull()) return false;
  if (v.isInt()) return v.asInt() != 0;
  if (v.isDouble()) return v.asDouble() != 0.0;
  return !v.asString().empty();
}

Value refBinary(BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinOp::And:
      return Value(static_cast<std::int64_t>(refTruthy(a) && refTruthy(b)));
    case BinOp::Or:
      return Value(static_cast<std::int64_t>(refTruthy(a) || refTruthy(b)));
    case BinOp::Like:
      if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
      return Value(
          static_cast<std::int64_t>(db::likeMatch(a.toDisplayString(), b.asString())));
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
      const int c = a.compare(b);
      bool r = false;
      switch (op) {
        case BinOp::Eq: r = c == 0; break;
        case BinOp::Ne: r = c != 0; break;
        case BinOp::Lt: r = c < 0; break;
        case BinOp::Le: r = c <= 0; break;
        case BinOp::Gt: r = c > 0; break;
        default: r = c >= 0; break;
      }
      return Value(static_cast<std::int64_t>(r));
    }
    default: {  // arithmetic
      if (a.isNull() || b.isNull()) return Value();
      if (a.isInt() && b.isInt() && op != BinOp::Div) {
        switch (op) {
          case BinOp::Add: return Value(a.asInt() + b.asInt());
          case BinOp::Sub: return Value(a.asInt() - b.asInt());
          default: return Value(a.asInt() * b.asInt());
        }
      }
      const double x = a.asDouble();
      const double y = b.asDouble();
      switch (op) {
        case BinOp::Add: return Value(x + y);
        case BinOp::Sub: return Value(x - y);
        case BinOp::Mul: return Value(x * y);
        default: return y == 0.0 ? Value() : Value(x / y);
      }
    }
  }
}

Value refCoerce(const Value& v, ColumnType type) {
  if (v.isNull()) return v;
  if (type == ColumnType::Int && v.isDouble()) return Value(v.asInt());
  if (type == ColumnType::Double && v.isInt()) return Value(v.asDouble());
  return v;
}

/// Tree-walking evaluator over one binding (one RowId per bound table),
/// resolving names per call — no compilation, no caching.
class RefEval {
 public:
  struct Src {
    std::string alias;
    const Table* table;
  };

  RefEval(std::vector<Src> srcs, std::span<const Value> params)
      : srcs_(std::move(srcs)), params_(params) {}

  const std::vector<Src>& srcs() const { return srcs_; }

  Value columnValue(const Expr& e, const std::vector<RowId>& ids) const {
    if (!e.tableQualifier.empty()) {
      for (std::size_t i = 0; i < srcs_.size(); ++i) {
        if (srcs_[i].alias != e.tableQualifier) continue;
        auto c = srcs_[i].table->schema().columnIndex(e.column);
        if (!c) throw std::runtime_error("ref: no column " + e.column);
        return srcs_[i].table->row(ids[i])[*c];
      }
      throw std::runtime_error("ref: unknown alias " + e.tableQualifier);
    }
    std::optional<Value> found;
    for (std::size_t i = 0; i < srcs_.size(); ++i) {
      if (auto c = srcs_[i].table->schema().columnIndex(e.column)) {
        if (found) throw std::runtime_error("ref: ambiguous column " + e.column);
        found = srcs_[i].table->row(ids[i])[*c];
      }
    }
    if (!found) throw std::runtime_error("ref: unknown column " + e.column);
    return *found;
  }

  Value eval(const Expr& e, const std::vector<RowId>& ids) const {
    switch (e.kind) {
      case Expr::Kind::Literal:
        return e.literal;
      case Expr::Kind::Param:
        return params_[e.paramIndex - 1];
      case Expr::Kind::Column:
        return columnValue(e, ids);
      case Expr::Kind::Binary:
        return refBinary(e.op, eval(*e.lhs, ids), eval(*e.rhs, ids));
      case Expr::Kind::In: {
        const Value needle = eval(*e.lhs, ids);
        if (needle.isNull()) return Value(std::int64_t{0});
        for (const auto& item : e.list) {
          if (needle.compare(eval(*item, ids)) == 0) return Value(std::int64_t{1});
        }
        return Value(std::int64_t{0});
      }
      case Expr::Kind::IsNull: {
        const bool isNull = eval(*e.lhs, ids).isNull();
        return Value(static_cast<std::int64_t>(isNull != e.negated));
      }
      case Expr::Kind::Not:
        return Value(static_cast<std::int64_t>(!refTruthy(eval(*e.lhs, ids))));
      default:
        throw std::runtime_error("ref: aggregate/star in row context");
    }
  }

  static bool containsAggregate(const Expr& e) {
    if (e.kind == Expr::Kind::Aggregate) return true;
    if (e.lhs && containsAggregate(*e.lhs)) return true;
    if (e.rhs && containsAggregate(*e.rhs)) return true;
    for (const auto& item : e.list) {
      if (containsAggregate(*item)) return true;
    }
    return false;
  }

  Value evalAggregate(const Expr& e, const std::vector<std::vector<RowId>>& group) const {
    if (e.agg == AggFunc::Count && e.aggArg->kind == Expr::Kind::Star) {
      return Value(static_cast<std::int64_t>(group.size()));
    }
    std::int64_t count = 0;
    double sum = 0.0;
    std::int64_t isum = 0;
    bool allInt = true;
    std::optional<Value> minV, maxV;
    for (const auto& ids : group) {
      const Value v = eval(*e.aggArg, ids);
      if (v.isNull()) continue;
      ++count;
      if (v.isNumeric()) {
        sum += v.asDouble();
        if (v.isInt()) isum += v.asInt();
        else allInt = false;
      } else {
        allInt = false;
      }
      if (!minV || v < *minV) minV = v;
      if (!maxV || v > *maxV) maxV = v;
    }
    switch (e.agg) {
      case AggFunc::Count: return Value(count);
      case AggFunc::Sum: return count == 0 ? Value() : (allInt ? Value(isum) : Value(sum));
      case AggFunc::Avg:
        return count == 0 ? Value() : Value(sum / static_cast<double>(count));
      case AggFunc::Min: return minV.value_or(Value());
      case AggFunc::Max: return maxV.value_or(Value());
      default: throw std::runtime_error("ref: bad aggregate");
    }
  }

  Value evalGrouped(const Expr& e, const std::vector<std::vector<RowId>>& group) const {
    if (e.kind == Expr::Kind::Aggregate) return evalAggregate(e, group);
    if (!containsAggregate(e)) return eval(e, group.front());
    switch (e.kind) {
      case Expr::Kind::Binary:
        return refBinary(e.op, evalGrouped(*e.lhs, group), evalGrouped(*e.rhs, group));
      case Expr::Kind::Not:
        return Value(static_cast<std::int64_t>(!refTruthy(evalGrouped(*e.lhs, group))));
      case Expr::Kind::In: {
        const Value needle = evalGrouped(*e.lhs, group);
        if (needle.isNull()) return Value(std::int64_t{0});
        for (const auto& item : e.list) {
          if (needle.compare(evalGrouped(*item, group)) == 0) {
            return Value(std::int64_t{1});
          }
        }
        return Value(std::int64_t{0});
      }
      default:
        return eval(e, group.front());
    }
  }

 private:
  std::vector<Src> srcs_;
  std::span<const Value> params_;
};

RefResult refSelect(db::Database& dbase, const db::SelectStmt& s,
                    std::span<const Value> params) {
  std::vector<RefEval::Src> srcs;
  srcs.push_back({s.from.alias, &dbase.table(s.from.table)});
  for (const auto& j : s.joins) srcs.push_back({j.table.alias, &dbase.table(j.table.table)});
  const RefEval ev(std::move(srcs), params);

  // Nested-loop binding construction: base rows, then each join filtered by
  // its ON condition (a plain `l = r` with NULL matching nothing).
  std::vector<std::vector<RowId>> bindings;
  ev.srcs()[0].table->forEachRow([&](RowId id) { bindings.push_back({id}); });
  for (std::size_t j = 0; j < s.joins.size(); ++j) {
    std::vector<std::vector<RowId>> next;
    for (const auto& b : bindings) {
      ev.srcs()[j + 1].table->forEachRow([&](RowId id) {
        std::vector<RowId> nb = b;
        nb.push_back(id);
        if (s.joins[j].on && !refTruthy(ev.eval(*s.joins[j].on, nb))) return;
        next.push_back(std::move(nb));
      });
    }
    bindings = std::move(next);
  }

  if (s.where) {
    std::vector<std::vector<RowId>> kept;
    for (auto& b : bindings) {
      if (refTruthy(ev.eval(*s.where, b))) kept.push_back(std::move(b));
    }
    bindings = std::move(kept);
  }

  // Output column names (star expands to every column of every table).
  RefResult out;
  struct Item {
    const Expr* expr;
    std::string name;
  };
  std::vector<Item> items;
  for (const auto& item : s.items) {
    if (item.expr->kind == Expr::Kind::Star) {
      for (const auto& src : ev.srcs()) {
        for (const auto& col : src.table->schema().columns) {
          items.push_back({nullptr, col.name});
          out.columns.push_back(col.name);
        }
      }
      continue;
    }
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == Expr::Kind::Column ? item.expr->column : "expr";
    }
    items.push_back({item.expr.get(), name});
    out.columns.push_back(name);
  }
  auto projectRow = [&](const std::vector<RowId>& ids) {
    // Star slots (expr == nullptr) expand positionally: every column of
    // every bound table, in table order.
    std::vector<Value> starValues;
    for (std::size_t t = 0; t < ev.srcs().size(); ++t) {
      const Row& src = ev.srcs()[t].table->row(ids[t]);
      starValues.insert(starValues.end(), src.begin(), src.end());
    }
    Row r;
    std::size_t starCursor = 0;
    for (const auto& item : items) {
      if (item.expr == nullptr) {
        r.push_back(starValues[starCursor++]);
      } else {
        r.push_back(ev.eval(*item.expr, ids));
      }
    }
    return r;
  };

  const bool grouped =
      !s.groupBy.empty() || std::any_of(s.items.begin(), s.items.end(), [](const auto& i) {
        return i.expr->kind != Expr::Kind::Star && RefEval::containsAggregate(*i.expr);
      });

  struct OutRow {
    Row values;
    std::vector<Value> keys;
  };
  std::vector<OutRow> rows;

  auto orderKeys = [&](const Row& values, auto&& evalKey) {
    std::vector<Value> keys;
    for (const auto& o : s.orderBy) {
      std::optional<std::size_t> outIdx;
      if (o.expr->kind == Expr::Kind::Column && o.expr->tableQualifier.empty()) {
        for (std::size_t i = 0; i < out.columns.size(); ++i) {
          if (out.columns[i] == o.expr->column) {
            outIdx = i;
            break;
          }
        }
      }
      keys.push_back(outIdx ? values[*outIdx] : evalKey(*o.expr));
    }
    return keys;
  };

  if (grouped) {
    std::map<std::vector<Value>, std::vector<std::vector<RowId>>> groups;
    for (const auto& b : bindings) {
      std::vector<Value> key;
      for (const auto& g : s.groupBy) key.push_back(ev.eval(*g, b));
      groups[std::move(key)].push_back(b);
    }
    if (groups.empty() && s.groupBy.empty()) groups[{}] = {};
    for (const auto& [key, group] : groups) {
      if (group.empty() && !s.groupBy.empty()) continue;
      if (s.having && !group.empty() && !refTruthy(ev.evalGrouped(*s.having, group))) {
        continue;
      }
      OutRow r;
      for (const auto& item : s.items) {
        if (group.empty()) {
          r.values.push_back(item.expr->kind == Expr::Kind::Aggregate &&
                                     item.expr->agg == AggFunc::Count
                                 ? Value(std::int64_t{0})
                                 : Value());
        } else {
          r.values.push_back(ev.evalGrouped(*item.expr, group));
        }
      }
      r.keys = orderKeys(r.values, [&](const Expr& e) {
        return group.empty() ? Value() : ev.evalGrouped(e, group);
      });
      rows.push_back(std::move(r));
    }
  } else {
    for (const auto& b : bindings) {
      OutRow r;
      r.values = projectRow(b);
      r.keys = orderKeys(r.values, [&](const Expr& e) { return ev.eval(e, b); });
      rows.push_back(std::move(r));
    }
  }

  if (s.distinct) {
    std::vector<OutRow> unique;
    for (auto& r : rows) {
      bool seen = false;
      for (const auto& kept : unique) {
        bool equal = kept.values.size() == r.values.size();
        for (std::size_t i = 0; equal && i < kept.values.size(); ++i) {
          equal = kept.values[i].compare(r.values[i]) == 0;
        }
        if (equal) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(std::move(r));
    }
    rows = std::move(unique);
  }

  if (!s.orderBy.empty()) {
    std::stable_sort(rows.begin(), rows.end(), [&](const OutRow& a, const OutRow& b) {
      for (std::size_t i = 0; i < s.orderBy.size(); ++i) {
        const int c = a.keys[i].compare(b.keys[i]);
        if (c != 0) return s.orderBy[i].descending ? c > 0 : c < 0;
      }
      return false;
    });
  }

  const std::size_t begin =
      std::min<std::size_t>(rows.size(), static_cast<std::size_t>(s.offset));
  std::size_t end = rows.size();
  if (s.limit) end = std::min(end, begin + static_cast<std::size_t>(*s.limit));
  for (std::size_t i = begin; i < end; ++i) out.rows.push_back(std::move(rows[i].values));
  return out;
}

/// Write LIMIT/OFFSET slices matches in RowId order — exactly the order
/// forEachRow produced them in.
std::vector<RowId> refSliceMatches(std::vector<RowId> matches,
                                   const std::optional<std::int64_t>& limit,
                                   std::int64_t offset) {
  if (!limit && offset <= 0) return matches;
  const std::size_t begin = std::min<std::size_t>(
      matches.size(), static_cast<std::size_t>(std::max<std::int64_t>(offset, 0)));
  std::size_t end = matches.size();
  if (limit) {
    end = std::min(end,
                   begin + static_cast<std::size_t>(std::max<std::int64_t>(*limit, 0)));
  }
  return {matches.begin() + static_cast<std::ptrdiff_t>(begin),
          matches.begin() + static_cast<std::ptrdiff_t>(end)};
}

RefResult refExecute(db::Database& dbase, const db::Statement& stmt,
                     std::span<const Value> params) {
  RefResult out;
  switch (stmt.kind) {
    case db::Statement::Kind::Select:
      return refSelect(dbase, stmt.select, params);
    case db::Statement::Kind::Insert: {
      const db::InsertStmt& s = stmt.insert;
      Table& table = dbase.table(s.table);
      const auto& schema = table.schema();
      const RefEval ev({{s.table, &table}}, params);
      const std::vector<RowId> noIds;
      Row row(schema.columns.size());
      if (s.columns.empty()) {
        for (std::size_t i = 0; i < s.values.size(); ++i) {
          row[i] = refCoerce(ev.eval(*s.values[i], noIds), schema.columns[i].type);
        }
      } else {
        for (std::size_t i = 0; i < s.columns.size(); ++i) {
          const auto c = schema.columnIndex(s.columns[i]);
          row[*c] = refCoerce(ev.eval(*s.values[i], noIds), schema.columns[*c].type);
        }
      }
      out.lastInsertId = table.insert(std::move(row));
      out.affectedRows = 1;
      return out;
    }
    case db::Statement::Kind::Update: {
      const db::UpdateStmt& s = stmt.update;
      Table& table = dbase.table(s.table);
      const auto& schema = table.schema();
      const RefEval ev({{s.table, &table}}, params);
      std::vector<RowId> matches;
      table.forEachRow([&](RowId id) {
        const std::vector<RowId> ids{id};
        if (!s.where || refTruthy(ev.eval(*s.where, ids))) matches.push_back(id);
      });
      matches = refSliceMatches(std::move(matches), s.limit, s.offset);
      for (RowId id : matches) {
        const std::vector<RowId> ids{id};
        std::vector<std::pair<std::size_t, Value>> newValues;
        for (const auto& a : s.sets) {
          const auto c = schema.columnIndex(a.column);
          newValues.emplace_back(*c,
                                 refCoerce(ev.eval(*a.value, ids), schema.columns[*c].type));
        }
        for (auto& [col, v] : newValues) table.updateCell(id, col, std::move(v));
      }
      out.affectedRows = matches.size();
      return out;
    }
    case db::Statement::Kind::Delete: {
      const db::DeleteStmt& s = stmt.del;
      Table& table = dbase.table(s.table);
      const RefEval ev({{s.table, &table}}, params);
      std::vector<RowId> matches;
      table.forEachRow([&](RowId id) {
        const std::vector<RowId> ids{id};
        if (!s.where || refTruthy(ev.eval(*s.where, ids))) matches.push_back(id);
      });
      matches = refSliceMatches(std::move(matches), s.limit, s.offset);
      for (RowId id : matches) table.erase(id);
      out.affectedRows = matches.size();
      return out;
    }
    default:
      return out;
  }
}

// ===========================================================================
// Comparison helpers
// ===========================================================================

int typeRank(const Value& v) {
  if (v.isNull()) return 0;
  if (v.isInt()) return 1;
  if (v.isDouble()) return 2;
  return 3;
}

/// Strict equality: same type, same value (compare() alone would conflate
/// Value(1) with Value(1.0), hiding int/double divergence between engines).
bool sameValue(const Value& a, const Value& b) {
  return typeRank(a) == typeRank(b) && a.compare(b) == 0;
}

bool sameRow(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!sameValue(a[i], b[i])) return false;
  }
  return true;
}

std::string rowToString(const Row& r) {
  std::string out = "(";
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (i) out += ", ";
    out += r[i].isNull() ? "NULL" : r[i].toDisplayString();
    if (r[i].isDouble()) out += "d";
    if (r[i].isString()) out = out.substr(0, out.size() - 1) + "\"" +
                               r[i].toDisplayString() + "\"";
  }
  return out + ")";
}

/// Canonical ordering for multiset comparison.
bool canonicalRowLess(const Row& a, const Row& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int c = a[i].compare(b[i]);
    if (c != 0) return c < 0;
    if (typeRank(a[i]) != typeRank(b[i])) return typeRank(a[i]) < typeRank(b[i]);
  }
  return false;
}

void expectRowsEqual(const std::vector<Row>& expected, const std::vector<Row>& actual,
                     bool exactOrder) {
  ASSERT_EQ(expected.size(), actual.size());
  std::vector<Row> e = expected;
  std::vector<Row> a = actual;
  if (!exactOrder) {
    std::sort(e.begin(), e.end(), canonicalRowLess);
    std::sort(a.begin(), a.end(), canonicalRowLess);
  }
  for (std::size_t i = 0; i < e.size(); ++i) {
    ASSERT_TRUE(sameRow(e[i], a[i]))
        << "row " << i << ": reference " << rowToString(e[i]) << " vs optimized "
        << rowToString(a[i]);
  }
}

std::vector<std::pair<RowId, Row>> dumpTable(const Table& t) {
  std::vector<std::pair<RowId, Row>> out;
  t.forEachRow([&](RowId id) { out.emplace_back(id, t.row(id)); });
  return out;
}

void expectTablesEqual(const Table& ref, const Table& opt) {
  const auto a = dumpTable(ref);
  const auto b = dumpTable(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].first, b[i].first) << "row id divergence at slot " << i;
    ASSERT_TRUE(sameRow(a[i].second, b[i].second))
        << "row " << a[i].first << ": reference " << rowToString(a[i].second)
        << " vs optimized " << rowToString(b[i].second);
  }
  ASSERT_EQ(ref.lastInsertId(), opt.lastInsertId());
}

// ===========================================================================
// Random schema/data/query generation
// ===========================================================================

using Rand = std::mt19937_64;

std::size_t pick(Rand& rng, std::size_t n) { return static_cast<std::size_t>(rng() % n); }
bool chance(Rand& rng, int percent) { return static_cast<int>(rng() % 100) < percent; }

const char* const kStringPool[] = {"a", "ab", "abc", "b", "ba", "xy", "x", ""};

/// One random world: N tables with a fixed column layout (id pk auto, a int,
/// b int, d double, s string) but a random subset of {a, b, s} indexed, plus
/// random data — materialized twice, once for the reference interpreter and
/// once for the optimized engine.
struct World {
  db::Database ref;
  db::Database opt;
  db::Executor exec{opt};
  std::size_t nTables = 1;
  bool aIdx = false, bIdx = false, sIdx = false;
  /// When true, indexed columns are never updated, so secondary-index entry
  /// order provably equals row order and ordering-sensitive comparisons
  /// (bare LIMIT, single-key ORDER BY) stay exact. When false, UPDATE may
  /// rewrite indexed columns and ordering-sensitive queries downgrade to
  /// multiset comparison or pk-total orderings.
  bool frozenIndexes = true;

  explicit World(Rand& rng) {
    nTables = 1 + pick(rng, 3);
    aIdx = chance(rng, 50);
    bIdx = chance(rng, 50);
    sIdx = chance(rng, 40);
    frozenIndexes = chance(rng, 50);
    for (std::size_t t = 0; t < nTables; ++t) {
      auto makeSchema = [&] {
        db::SchemaBuilder sb("t" + std::to_string(t));
        sb.intCol("id").primaryKey(/*autoIncrement=*/true);
        sb.intCol("a");
        if (aIdx) sb.indexed();
        sb.intCol("b");
        if (bIdx) sb.indexed();
        sb.doubleCol("d");
        sb.stringCol("s");
        if (sIdx) sb.indexed();
        return sb.build();
      };
      ref.createTable(makeSchema());
      opt.createTable(makeSchema());
      const std::size_t nRows = t == 0 ? 5 + pick(rng, 36) : pick(rng, 41);
      for (std::size_t r = 0; r < nRows; ++r) {
        Row row(5);
        row[1] = chance(rng, 15) ? Value() : Value(static_cast<std::int64_t>(pick(rng, 8)));
        row[2] = chance(rng, 15) ? Value() : Value(static_cast<std::int64_t>(pick(rng, 12)));
        row[3] = chance(rng, 15) ? Value()
                                 : Value(static_cast<double>(pick(rng, 16)) / 2.0 - 2.0);
        row[4] = chance(rng, 10) ? Value() : Value(std::string(kStringPool[pick(rng, 8)]));
        Row copy = row;
        ref.table("t" + std::to_string(t)).insert(std::move(row));
        opt.table("t" + std::to_string(t)).insert(std::move(copy));
      }
    }
  }

  bool columnIndexed(const std::string& col) const {
    return (col == "a" && aIdx) || (col == "b" && bIdx) || (col == "s" && sIdx);
  }
};

struct GenCase {
  std::string sql;
  std::vector<Value> params;
  bool exactOrder = true;
  bool isWrite = false;
  std::string writeTable;
};

/// Renders a random scalar for column `col`, as a literal or a `?` param.
std::string scalarFor(Rand& rng, const std::string& col, std::vector<Value>& params) {
  Value v;
  if (col == "d") {
    v = Value(static_cast<double>(pick(rng, 16)) / 2.0 - 2.0);
  } else if (col == "s") {
    v = Value(std::string(kStringPool[pick(rng, 8)]));
  } else if (col == "id") {
    v = Value(static_cast<std::int64_t>(1 + pick(rng, 45)));
  } else {
    v = Value(static_cast<std::int64_t>(pick(rng, 12)));
  }
  if (chance(rng, 10)) v = Value();  // occasional NULL key
  if (chance(rng, 50)) {
    params.push_back(std::move(v));
    return "?";
  }
  if (v.isNull()) return "NULL";
  if (v.isString()) return "'" + v.asString() + "'";
  return v.toDisplayString();
}

const char* const kDataCols[] = {"a", "b", "d", "s"};
const char* const kAllCols[] = {"id", "a", "b", "d", "s"};

/// One WHERE conjunct over unqualified columns. Sets *orderSensitive when
/// the conjunct may become an index access path that yields candidates in a
/// different order than a full scan would (IN lists visit keys in list
/// order; ranges over a secondary index visit rows in value order, not
/// RowId order) — bare-LIMIT and partial-ORDER-BY comparisons must then
/// not assume full-scan order.
std::string conjunctFor(Rand& rng, const World& w, std::vector<Value>& params,
                        bool* orderSensitive) {
  switch (pick(rng, 8)) {
    case 0: {
      const std::string col = kAllCols[pick(rng, 5)];
      return col + " = " + scalarFor(rng, col, params);
    }
    case 1: {
      const std::string col = kAllCols[1 + pick(rng, 3)];
      const char* ops[] = {"<", "<=", ">", ">="};
      if (orderSensitive && w.columnIndexed(col)) *orderSensitive = true;
      return col + " " + ops[pick(rng, 4)] + " " + scalarFor(rng, col, params);
    }
    case 2: {
      const std::string col = kAllCols[1 + pick(rng, 2)];  // a or b
      if (orderSensitive && w.columnIndexed(col)) *orderSensitive = true;
      return col + " BETWEEN " + scalarFor(rng, col, params) + " AND " +
             scalarFor(rng, col, params);
    }
    case 3: {
      const std::string col = kAllCols[pick(rng, 3)];  // id, a, b
      std::string sql = col + (chance(rng, 25) ? " NOT IN (" : " IN (");
      const std::size_t n = 1 + pick(rng, 4);
      for (std::size_t i = 0; i < n; ++i) {
        if (i) sql += ", ";
        sql += scalarFor(rng, col, params);
      }
      sql += ")";
      if (orderSensitive && (col == "id" || w.columnIndexed(col))) {
        *orderSensitive = true;
      }
      return sql;
    }
    case 4: {
      const char* pats[] = {"a%", "%b%", "_b%", "x_", "%", "ab"};
      std::string sql = "s";
      if (chance(rng, 25)) sql += " NOT";
      return sql + " LIKE '" + pats[pick(rng, 6)] + "'";
    }
    case 5: {
      const std::string col = kDataCols[pick(rng, 4)];
      return col + (chance(rng, 50) ? " IS NULL" : " IS NOT NULL");
    }
    case 6: {
      const std::string a = kAllCols[1 + pick(rng, 2)];
      const std::string b = kAllCols[1 + pick(rng, 2)];
      return "(" + a + " = " + scalarFor(rng, a, params) + " OR " + b + " = " +
             scalarFor(rng, b, params) + ")";
    }
    default: {
      const std::string col = kAllCols[1 + pick(rng, 2)];
      const char* ops[] = {"+", "-", "*"};
      return col + " " + ops[pick(rng, 3)] + " " +
             std::to_string(1 + pick(rng, 3)) + " > " + scalarFor(rng, col, params);
    }
  }
}

std::string whereClause(Rand& rng, const World& w, std::vector<Value>& params,
                        bool* orderSensitive, int maxConjuncts = 3) {
  const std::size_t n = pick(rng, static_cast<std::size_t>(maxConjuncts) + 1);
  std::string sql;
  for (std::size_t i = 0; i < n; ++i) {
    sql += i == 0 ? " WHERE " : " AND ";
    sql += conjunctFor(rng, w, params, orderSensitive);
  }
  return sql;
}

/// Random single-table SELECT, covering point/range/IN/LIKE access, bare
/// LIMIT, ORDER BY (elidible and not), DISTINCT, and aggregates.
GenCase genSelect(Rand& rng, const World& w) {
  GenCase g;
  const std::string table = "t" + std::to_string(pick(rng, w.nTables));

  // Aggregate-only query (exercises the O(1) fast path and its fallbacks).
  if (chance(rng, 12)) {
    const char* aggs[] = {"MAX", "MIN", "COUNT", "SUM", "AVG"};
    const std::string agg = aggs[pick(rng, 5)];
    std::string arg = agg == "COUNT" && chance(rng, 60) ? "*" : kAllCols[pick(rng, 5)];
    if ((agg == "SUM" || agg == "AVG") && arg == "s") arg = "a";  // no string sums
    g.sql = "SELECT " + agg + "(" + arg + ")";
    if (chance(rng, 60)) g.sql += " AS v";
    g.sql += " FROM " + table;
    if (chance(rng, 40)) g.sql += whereClause(rng, w, g.params, nullptr);
    return g;  // single row: always exact
  }

  // Grouped query, with one to three group keys.
  if (chance(rng, 18)) {
    std::string keys;
    switch (pick(rng, 10)) {
      case 0:
      case 1:
      case 2:  // two keys
        keys = std::string(kAllCols[1 + pick(rng, 2)]) + ", s";
        break;
      case 3:
      case 4:  // three keys
        keys = "a, b, s";
        break;
      default:  // single key: a or b
        keys = kAllCols[1 + pick(rng, 2)];
        break;
    }
    g.sql = "SELECT " + keys + ", COUNT(*) AS c, SUM(b) AS sb, MIN(d) AS mn FROM " + table;
    g.sql += whereClause(rng, w, g.params, nullptr);
    g.sql += " GROUP BY " + keys;
    if (chance(rng, 30)) g.sql += " HAVING COUNT(*) > 1";
    if (chance(rng, 50)) {
      // Ordering by every group key is a total order over groups.
      g.sql += " ORDER BY " + keys;
      if (chance(rng, 40)) g.sql += " LIMIT " + std::to_string(1 + pick(rng, 6));
    } else {
      g.exactOrder = false;
    }
    return g;
  }

  // Plain select.
  std::string items;
  switch (pick(rng, 4)) {
    case 0: items = "*"; break;
    case 1: items = "id, a, b"; break;
    case 2: items = "id, s, d"; break;
    default: items = "id, a + b AS ab, d * 2 AS d2"; break;
  }
  const bool distinct = chance(rng, 12);
  if (distinct) items = chance(rng, 50) ? "a, b" : "a";
  g.sql = std::string("SELECT ") + (distinct ? "DISTINCT " : "") + items + " FROM " + table;

  bool orderSensitive = false;
  g.sql += whereClause(rng, w, g.params, &orderSensitive);

  // Ordering / limit decision tree (see World::frozenIndexes).
  const bool canExactWithoutTotalOrder = w.frozenIndexes && !orderSensitive;
  if (distinct) {
    if (chance(rng, 40)) {
      // ORDER BY every selected column: total over distinct rows.
      g.sql += items == "a" ? " ORDER BY a" : " ORDER BY a, b";
      if (chance(rng, 50)) g.sql += " LIMIT " + std::to_string(1 + pick(rng, 8));
    } else {
      g.exactOrder = false;
    }
    return g;
  }
  switch (pick(rng, 4)) {
    case 0:  // no ORDER BY, maybe bare LIMIT
      if (chance(rng, 50)) {
        if (canExactWithoutTotalOrder) {
          g.sql += " LIMIT " + std::to_string(1 + pick(rng, 10));
          if (chance(rng, 30)) g.sql += " OFFSET " + std::to_string(pick(rng, 5));
        } else {
          g.exactOrder = false;  // no LIMIT either: row set compare only
        }
      } else {
        g.exactOrder = false;
      }
      break;
    case 1: {  // total order via pk tiebreaker
      const std::string col = kAllCols[1 + pick(rng, 4)];
      g.sql += " ORDER BY " + col + (chance(rng, 50) ? " DESC" : "") + ", id" +
               (chance(rng, 30) ? " DESC" : "");
      if (chance(rng, 60)) {
        g.sql += " LIMIT " + std::to_string(1 + pick(rng, 10));
        if (chance(rng, 30)) g.sql += " OFFSET " + std::to_string(pick(rng, 5));
      }
      break;
    }
    case 2:  // single-key ORDER BY (sort elision when the key is indexed)
      if (canExactWithoutTotalOrder) {
        const std::string col = kAllCols[1 + pick(rng, 4)];
        g.sql += " ORDER BY " + col + (chance(rng, 50) ? " DESC" : "");
        if (chance(rng, 60)) {
          g.sql += " LIMIT " + std::to_string(1 + pick(rng, 10));
          if (chance(rng, 30)) g.sql += " OFFSET " + std::to_string(pick(rng, 5));
        }
      } else {
        g.sql += " ORDER BY id" + std::string(chance(rng, 50) ? " DESC" : "");
        if (chance(rng, 60)) g.sql += " LIMIT " + std::to_string(1 + pick(rng, 10));
      }
      break;
    default:  // ORDER BY pk only
      g.sql += " ORDER BY id" + std::string(chance(rng, 50) ? " DESC" : "");
      if (chance(rng, 50)) g.sql += " LIMIT " + std::to_string(1 + pick(rng, 10));
      break;
  }
  return g;
}

/// Random join SELECT over 2–3 (possibly repeated) tables with pk, indexed,
/// and unindexed ON columns; occasional degenerate ON plus a WHERE
/// equi-conjunct (the planner's join-from-WHERE fallback).
GenCase genJoin(Rand& rng, const World& w) {
  GenCase g;
  const std::size_t nJoined = 2 + (chance(rng, 30) ? 1 : 0);
  std::vector<std::string> tables;
  for (std::size_t i = 0; i < nJoined; ++i) {
    tables.push_back("t" + std::to_string(pick(rng, w.nTables)));
  }
  auto q = [](std::size_t i, const std::string& col) {
    return "x" + std::to_string(i) + "." + col;
  };
  g.sql = "SELECT " + q(0, "id") + ", " + q(0, "a") + ", " + q(1, "b");
  if (nJoined == 3) g.sql += ", " + q(2, "s");
  g.sql += " FROM " + tables[0] + " x0";
  bool degenerate = false;
  for (std::size_t i = 1; i < nJoined; ++i) {
    g.sql += " JOIN " + tables[i] + " x" + std::to_string(i) + " ON ";
    if (i == 1 && chance(rng, 15)) {
      // Degenerate ON: both sides on the new table. The planner falls back
      // to a WHERE equi-conjunct for the join key (added below) and keeps
      // this as a residual filter.
      g.sql += q(1, "a") + " = " + q(1, "b");
      degenerate = true;
      continue;
    }
    const char* innerCols[] = {"id", "a", "b"};  // pk / maybe-indexed / plain
    const std::string inner = innerCols[pick(rng, 3)];
    const std::size_t outerTable = pick(rng, i);
    std::string outer = q(outerTable, innerCols[pick(rng, 3)]);
    if (chance(rng, 25)) {
      // Expression outer key: the planner must still use the lookup path.
      outer = outer + (chance(rng, 50) ? " + " : " - ") + std::to_string(1 + pick(rng, 3));
    }
    if (chance(rng, 50)) {
      g.sql += q(i, inner) + " = " + outer;
    } else {
      g.sql += outer + " = " + q(i, inner);
    }
    if (chance(rng, 25)) {
      // Extra ON conjunct — non-equi or a second equality — which the
      // planner keeps as a residual filter rather than a join key.
      switch (pick(rng, 3)) {
        case 0:
          g.sql += " AND " + q(i, "d") + " > " + scalarFor(rng, "d", g.params);
          break;
        case 1:
          g.sql += " AND " + q(pick(rng, i), "b") + " <= " + q(i, "b");
          break;
        default:
          g.sql += " AND " + q(i, "s") + " = " + q(pick(rng, i), "s");
          break;
      }
    }
  }
  bool where = false;
  if (degenerate) {
    g.sql += " WHERE " + q(0, "id") + " = " + q(1, "a");
    where = true;
  }
  if (chance(rng, 60)) {
    const std::string col = kAllCols[1 + pick(rng, 2)];
    g.sql += (where ? " AND " : " WHERE ") + q(0, col) + " = " +
             scalarFor(rng, col, g.params);
    where = true;
  }
  if (chance(rng, 30)) {
    g.sql += (where ? " AND " : " WHERE ") + q(1, "d") + " > " +
             scalarFor(rng, "d", g.params);
  }
  if (chance(rng, 50)) {
    // Binding tuples are unique, so ordering by every table's pk is total.
    g.sql += " ORDER BY " + q(0, "id") + ", " + q(1, "id");
    if (nJoined == 3) g.sql += ", " + q(2, "id");
    if (chance(rng, 50)) g.sql += " LIMIT " + std::to_string(1 + pick(rng, 12));
  } else {
    g.exactOrder = false;
  }
  return g;
}

/// Grouped join: aggregate over a two-table join.
GenCase genGroupedJoin(Rand& rng, const World& w) {
  GenCase g;
  const std::string t0 = "t" + std::to_string(pick(rng, w.nTables));
  const std::string t1 = "t" + std::to_string(pick(rng, w.nTables));
  g.sql = "SELECT x0.a, COUNT(*) AS c, SUM(x1.b) AS sb FROM " + t0 + " x0 JOIN " + t1 +
          " x1 ON x0.a = x1." + (chance(rng, 50) ? "b" : "a");
  if (chance(rng, 40)) g.sql += " WHERE x1.b >= " + scalarFor(rng, "b", g.params);
  g.sql += " GROUP BY x0.a";
  if (chance(rng, 30)) g.sql += " HAVING COUNT(*) > 1";
  if (chance(rng, 50)) {
    g.sql += " ORDER BY x0.a";
  } else {
    g.exactOrder = false;
  }
  return g;
}

GenCase genInsert(Rand& rng, const World& w) {
  GenCase g;
  g.isWrite = true;
  g.writeTable = "t" + std::to_string(pick(rng, w.nTables));
  // Random subset of data columns, random order; missing columns (and the
  // auto-increment pk) default to NULL.
  std::vector<std::string> cols(kDataCols, kDataCols + 4);
  std::shuffle(cols.begin(), cols.end(), rng);
  cols.resize(1 + pick(rng, 4));
  g.sql = "INSERT INTO " + g.writeTable + " (";
  std::string values;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i) {
      g.sql += ", ";
      values += ", ";
    }
    g.sql += cols[i];
    if (cols[i] != "s" && chance(rng, 20)) {
      values += std::to_string(1 + pick(rng, 3)) + " + " +
                std::to_string(pick(rng, 4));  // value expression
    } else {
      values += scalarFor(rng, cols[i], g.params);
    }
  }
  g.sql += ") VALUES (" + values + ")";
  return g;
}

GenCase genUpdate(Rand& rng, const World& w) {
  GenCase g;
  g.isWrite = true;
  g.writeTable = "t" + std::to_string(pick(rng, w.nTables));
  std::vector<std::string> settable;
  for (const char* c : kDataCols) {
    if (w.frozenIndexes && w.columnIndexed(c)) continue;  // see World
    settable.push_back(c);
  }
  if (settable.empty()) settable.push_back("d");
  g.sql = "UPDATE " + g.writeTable + " SET ";
  const std::size_t nSets = 1 + pick(rng, std::min<std::size_t>(2, settable.size()));
  std::shuffle(settable.begin(), settable.end(), rng);
  for (std::size_t i = 0; i < nSets; ++i) {
    if (i) g.sql += ", ";
    const std::string& col = settable[i];
    switch (col != "s" ? pick(rng, 3) : 2) {  // strings only get scalar SETs
      case 0:
        g.sql += col + " = " + col + (chance(rng, 50) ? " + 1" : " * 2");
        break;
      case 1:
        g.sql += col + " = " + (chance(rng, 30) ? "b + a" : "a");
        break;
      default:
        g.sql += col + " = " + scalarFor(rng, col, g.params);
        break;
    }
  }
  bool orderSensitive = false;
  g.sql += whereClause(rng, w, g.params, &orderSensitive, 2);
  // Write LIMIT/OFFSET slices matches in RowId order on both engines (the
  // plan forces a full scan), so this stays exact regardless of indexes.
  if (chance(rng, 25)) {
    g.sql += " LIMIT " + std::to_string(1 + pick(rng, 8));
    if (chance(rng, 40)) g.sql += " OFFSET " + std::to_string(pick(rng, 4));
  }
  return g;
}

GenCase genDelete(Rand& rng, const World& w) {
  GenCase g;
  g.isWrite = true;
  g.writeTable = "t" + std::to_string(pick(rng, w.nTables));
  g.sql = "DELETE FROM " + g.writeTable;
  if (chance(rng, 92)) {
    bool orderSensitive = false;
    std::string where = whereClause(rng, w, g.params, &orderSensitive, 2);
    if (where.empty()) where = " WHERE id = " + scalarFor(rng, "id", g.params);
    g.sql += where;
  }
  if (chance(rng, 25)) {
    g.sql += " LIMIT " + std::to_string(1 + pick(rng, 6));
    if (chance(rng, 40)) g.sql += " OFFSET " + std::to_string(pick(rng, 4));
  }
  return g;
}

GenCase genCase(Rand& rng, const World& w) {
  const std::size_t roll = pick(rng, 100);
  if (roll < 45) return genSelect(rng, w);
  if (roll < 58 && w.nTables >= 1) return genJoin(rng, w);
  if (roll < 65) return genGroupedJoin(rng, w);
  if (roll < 80) return genInsert(rng, w);
  if (roll < 92) return genUpdate(rng, w);
  return genDelete(rng, w);
}

// ===========================================================================
// The oracle
// ===========================================================================

constexpr int kWorlds = 26;
constexpr int kCasesPerWorld = 200;
constexpr std::uint64_t kSeed = 20260806;

/// Environment override for the nightly sweep lane (rotating seeds, bigger
/// case counts): SQLDIFF_SEED / SQLDIFF_WORLDS / SQLDIFF_CASES.
std::int64_t envOr(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoll(v, nullptr, 10) : fallback;
}

TEST(SqlDifferentialTest, OptimizedEngineMatchesNaiveReference) {
  const auto seed = static_cast<std::uint64_t>(envOr("SQLDIFF_SEED", kSeed));
  const int nWorlds = static_cast<int>(envOr("SQLDIFF_WORLDS", kWorlds));
  const int nCasesPerWorld = static_cast<int>(envOr("SQLDIFF_CASES", kCasesPerWorld));
  const bool defaultSizing = nWorlds == kWorlds && nCasesPerWorld == kCasesPerWorld;
  Rand rng(seed);
  // Statements are cached across worlds: worlds sharing an index layout
  // share a catalog signature and therefore a plan, so this also exercises
  // the claim that plans depend on the catalog, never on the data.
  std::unordered_map<std::string, std::shared_ptr<db::PlannedStatement>> cache;
  std::size_t cases = 0;
  std::size_t selectCases = 0;
  std::size_t writeCases = 0;

  for (int wi = 0; wi < nWorlds; ++wi) {
    World w(rng);
    for (int ci = 0; ci < nCasesPerWorld; ++ci) {
      const GenCase g = genCase(rng, w);
      SCOPED_TRACE("world " + std::to_string(wi) + " case " + std::to_string(ci) + ": " +
                   g.sql);
      // SQLDIFF_TRACE=1 streams every generated statement — the fastest way
      // to localize a hang or crash to one case.
      if (std::getenv("SQLDIFF_TRACE") != nullptr) {
        std::fprintf(stderr, "[w%d c%d] %s\n", wi, ci, g.sql.c_str());
      }
      auto stmt = db::parseSql(g.sql);
      auto& planned = cache[g.sql];
      if (!planned) planned = std::make_shared<db::PlannedStatement>(stmt);
      ++cases;

      const RefResult ref = refExecute(w.ref, *stmt, g.params);

      if (g.isWrite) {
        ++writeCases;
        // Writes run exactly once on each side; alternate between the
        // ad-hoc and plan-cached paths so both stay under the oracle.
        db::ExecResult opt = ci % 2 == 0 ? w.exec.execute(*stmt, g.params)
                                         : w.exec.execute(*planned, g.params);
        ASSERT_EQ(ref.affectedRows, opt.affectedRows);
        if (stmt->kind == db::Statement::Kind::Insert) {
          ASSERT_EQ(ref.lastInsertId, opt.lastInsertId);
        }
        expectTablesEqual(w.ref.table(g.writeTable), w.opt.table(g.writeTable));
        if (::testing::Test::HasFatalFailure()) return;
        continue;
      }

      ++selectCases;
      const db::ExecResult adhoc = w.exec.execute(*stmt, g.params);
      const db::ExecResult cold = w.exec.execute(*planned, g.params);
      const db::ExecResult warm = w.exec.execute(*planned, g.params);

      ASSERT_EQ(ref.columns, adhoc.resultSet.columns);
      ASSERT_EQ(ref.columns, cold.resultSet.columns);
      // Ad-hoc and plan-cached executions of the same statement must agree
      // exactly — same engine, same deterministic candidate order.
      expectRowsEqual(adhoc.resultSet.rows, cold.resultSet.rows, /*exactOrder=*/true);
      if (::testing::Test::HasFatalFailure()) return;
      expectRowsEqual(cold.resultSet.rows, warm.resultSet.rows, /*exactOrder=*/true);
      if (::testing::Test::HasFatalFailure()) return;
      expectRowsEqual(ref.rows, adhoc.resultSet.rows, g.exactOrder);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  std::fprintf(stderr, "[sqldiff] seed=%llu worlds=%d cases=%zu (select=%zu write=%zu)\n",
               static_cast<unsigned long long>(seed), nWorlds, cases, selectCases,
               writeCases);
  if (defaultSizing) {
    EXPECT_GE(cases, 5000u);
    // Guard against the generator degenerating into a single statement class.
    EXPECT_GE(selectCases, 2000u);
    EXPECT_GE(writeCases, 1000u);
  }
}

}  // namespace
