/// Regression tests for the parallel-sweep determinism contract:
///
///  * runExperiment is a pure function of its params — repeated calls are
///    bit-identical (the dataset cache hands out exact clones);
///  * a parallel sweep (jobs > 1) returns results bit-identical to the
///    sequential sweep, because every point's randomness derives only from
///    its own (config, clients) coordinates, never from scheduling;
///  * sweep points are independent: dropping or reordering points does not
///    perturb the remaining points' results.
///
/// The CI ThreadSanitizer job runs this binary to vet the isolation audit
/// (no shared mutable state between concurrently running simulations).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/dataset_cache.hpp"
#include "core/experiment.hpp"
#include "middleware/db_session.hpp"

namespace mwsim::core {
namespace {

ExperimentParams tinyParams(App app) {
  ExperimentParams p;
  p.app = app;
  p.mix = 1;
  p.clients = 25;
  p.rampUp = 5 * sim::kSecond;
  p.measure = 20 * sim::kSecond;
  p.rampDown = 2 * sim::kSecond;
  p.bookstoreScale = 0.02;
  p.auctionHistoryScale = 0.01;
  p.bbsHistoryScale = 0.01;
  return p;
}

/// Bit-exact equality across every field the benches print. Floating-point
/// values are compared with EXPECT_EQ on purpose: the contract is identical
/// results, not merely close ones.
void expectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.throughputIpm, b.throughputIpm);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.readWriteInteractions, b.readWriteInteractions);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.meanResponseSeconds, b.meanResponseSeconds);
  EXPECT_EQ(a.p90ResponseSeconds, b.p90ResponseSeconds);
  ASSERT_EQ(a.usage.size(), b.usage.size());
  for (std::size_t i = 0; i < a.usage.size(); ++i) {
    EXPECT_EQ(a.usage[i].name, b.usage[i].name);
    EXPECT_EQ(a.usage[i].cpuUtilization, b.usage[i].cpuUtilization);
    EXPECT_EQ(a.usage[i].nicMbps, b.usage[i].nicMbps);
    EXPECT_EQ(a.usage[i].nicUtilization, b.usage[i].nicUtilization);
    EXPECT_EQ(a.usage[i].nicPackets, b.usage[i].nicPackets);
    EXPECT_EQ(a.usage[i].memoryBytes, b.usage[i].memoryBytes);
  }
  ASSERT_EQ(a.tierUsage.size(), b.tierUsage.size());
  for (std::size_t i = 0; i < a.tierUsage.size(); ++i) {
    EXPECT_EQ(a.tierUsage[i].name, b.tierUsage[i].name);
    EXPECT_EQ(a.tierUsage[i].cpuUtilization, b.tierUsage[i].cpuUtilization);
    EXPECT_EQ(a.tierUsage[i].memoryBytes, b.tierUsage[i].memoryBytes);
  }
  ASSERT_EQ(a.traffic.size(), b.traffic.size());
  for (auto ita = a.traffic.begin(), itb = b.traffic.begin(); ita != a.traffic.end();
       ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.messages, itb->second.messages);
    EXPECT_EQ(ita->second.bytes, itb->second.bytes);
    EXPECT_EQ(ita->second.packets, itb->second.packets);
  }
  EXPECT_EQ(a.lockAcquisitions, b.lockAcquisitions);
  EXPECT_EQ(a.contendedLockAcquisitions, b.contendedLockAcquisitions);
  EXPECT_EQ(a.lockWaitSeconds, b.lockWaitSeconds);
  EXPECT_EQ(a.lockManagerWaitSeconds, b.lockManagerWaitSeconds);
  EXPECT_EQ(a.databaseBytes, b.databaseBytes);
  EXPECT_EQ(a.webErrors, b.webErrors);
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  auto p = tinyParams(App::Auction);
  p.config = Configuration::WsPhpDb;
  expectIdentical(runExperiment(p), runExperiment(p));
}

TEST(DeterminismTest, CachedCloneMatchesFreshPopulation) {
  // The first run for a key populates the prototype; the second starts from
  // a clone. If clone() missed any state, the pair diverges.
  auto p = tinyParams(App::Bookstore);
  p.config = Configuration::WsServletDb;
  p.seed = 7;
  p.bookstoreScale = 0.03;  // private key for this test
  const auto first = runExperiment(p);
  const auto again = runExperiment(p);
  expectIdentical(first, again);
}

TEST(DeterminismTest, PointSeedDependsOnlyOnCoordinates) {
  const auto s = pointSeed(1, App::Auction, 1, Configuration::WsPhpDb, 100);
  EXPECT_EQ(s, pointSeed(1, App::Auction, 1, Configuration::WsPhpDb, 100));
  EXPECT_NE(s, pointSeed(1, App::Auction, 1, Configuration::WsPhpDb, 200));
  EXPECT_NE(s, pointSeed(1, App::Auction, 1, Configuration::WsServletDb, 100));
  EXPECT_NE(s, pointSeed(2, App::Auction, 1, Configuration::WsPhpDb, 100));
  // Regression: the pre-fix hash dropped app and mix, so figures sharing a
  // (config, clients) grid reused correlated random streams.
  EXPECT_NE(s, pointSeed(1, App::Bookstore, 1, Configuration::WsPhpDb, 100));
  EXPECT_NE(s, pointSeed(1, App::Auction, 0, Configuration::WsPhpDb, 100));
}

TEST(DeterminismTest, PointSeedScenarioTagZeroIsSeedPreserving) {
  // Scenario-off sweeps must keep every pre-scenario seed: a zero tag adds
  // no derivation step, while distinct non-zero tags decorrelate scenario
  // sweeps from the closed-loop sweeps at equal coordinates.
  const auto s = pointSeed(1, App::Auction, 1, Configuration::WsPhpDb, 100);
  EXPECT_EQ(s, pointSeed(1, App::Auction, 1, Configuration::WsPhpDb, 100, 0));
  const auto tagged = pointSeed(1, App::Auction, 1, Configuration::WsPhpDb, 100, 0xBEEF);
  EXPECT_NE(s, tagged);
  EXPECT_NE(tagged, pointSeed(1, App::Auction, 1, Configuration::WsPhpDb, 100, 0xBEF0));
}

TEST(DeterminismTest, PlanCacheWarmthDoesNotPerturbResults) {
  // Plans live in the process-wide StatementCache and persist across runs.
  // The determinism contract requires them to be pure functions of
  // (SQL, catalog signature): a run against a cold cache (every statement
  // parsed and planned fresh) must be bit-identical to one whose plans were
  // all built by an earlier run — otherwise results would depend on which
  // experiments happened to run earlier in the process.
  auto p = tinyParams(App::Bookstore);
  p.config = Configuration::WsServletDbSync;
  mw::StatementCache::global().clear();
  const auto cold = runExperiment(p);
  EXPECT_GT(mw::StatementCache::global().size(), 0u);
  const auto warm = runExperiment(p);
  expectIdentical(cold, warm);
  mw::StatementCache::global().clear();
  const auto coldAgain = runExperiment(p);
  expectIdentical(cold, coldAgain);
}

TEST(DeterminismTest, SweepPointsAreIndependentOfSweepShape) {
  // The pre-fix sweep threaded one mutated params (and one seed) through
  // every point, so removing a point changed the next one's results.
  auto base = tinyParams(App::Auction);
  base.config = Configuration::WsPhpDb;
  const auto both = sweepClients(base, {15, 30});
  const auto justSecond = sweepClients(base, {30});
  ASSERT_EQ(both.size(), 2u);
  ASSERT_EQ(justSecond.size(), 1u);
  expectIdentical(both[1], justSecond[0]);
}

TEST(DeterminismTest, ParallelBookstoreSweepMatchesSequential) {
  const auto base = tinyParams(App::Bookstore);
  const std::vector<Configuration> configs{Configuration::WsPhpDb,
                                           Configuration::WsServletDbSync};
  const std::vector<int> clients{15, 30};
  SweepOptions sequential;  // jobs = 1
  SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = sweepGrid(base, configs, clients, sequential);
  const auto b = sweepGrid(base, configs, clients, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].size(), b[c].size());
    for (std::size_t p = 0; p < a[c].size(); ++p) expectIdentical(a[c][p], b[c][p]);
  }
}

TEST(DeterminismTest, ParallelAuctionSweepMatchesSequential) {
  const auto base = tinyParams(App::Auction);
  const std::vector<Configuration> configs{Configuration::WsServletSepDb,
                                           Configuration::WsServletEjbDb};
  const std::vector<int> clients{15, 30};
  SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = sweepGrid(base, configs, clients, SweepOptions{});
  const auto b = sweepGrid(base, configs, clients, parallel);
  for (std::size_t c = 0; c < a.size(); ++c) {
    for (std::size_t p = 0; p < a[c].size(); ++p) expectIdentical(a[c][p], b[c][p]);
  }
}

TEST(DeterminismTest, ProgressHookSeesEveryPointExactlyOnce) {
  const auto base = tinyParams(App::Auction);
  std::vector<int> seen;
  SweepOptions opts;
  opts.jobs = 4;
  opts.onResult = [&](std::size_t index, const ExperimentParams&,
                      const ExperimentResult&) {
    seen.push_back(static_cast<int>(index));  // serialized by runMany
  };
  const auto results = sweepClients(base, {10, 20, 30}, opts);
  EXPECT_EQ(results.size(), 3u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(DeterminismTest, TracingDoesNotPerturbSimulatedResults) {
  // Tracing is observation-only: a traced run must report stats
  // byte-identical to the untraced run of the same params.
  auto p = tinyParams(App::Bookstore);
  p.config = Configuration::WsServletDb;
  const auto untraced = runExperiment(p);
  p.trace.enabled = true;
  const auto traced = runExperiment(p);
  expectIdentical(untraced, traced);
  EXPECT_EQ(untraced.trace, nullptr);
  if (trace::kEnabled) {  // an -DMWSIM_TRACING=OFF build collects nothing
    ASSERT_NE(traced.trace, nullptr);
    EXPECT_GT(traced.trace->traces, 0u);
  } else {
    EXPECT_EQ(traced.trace, nullptr);
  }
}

TEST(DeterminismTest, TracedSweepIsJobsInvariantIncludingJson) {
  // A traced sweep must be byte-identical across --jobs 1 and --jobs N:
  // the stats AND the serialized trace JSON.
  auto base = tinyParams(App::Auction);
  base.trace.enabled = true;
  const std::vector<Configuration> configs{Configuration::WsPhpDb,
                                           Configuration::WsServletEjbDb};
  const std::vector<int> clients{15, 30};
  SweepOptions parallel;
  parallel.jobs = 4;
  const auto a = sweepGrid(base, configs, clients, SweepOptions{});
  const auto b = sweepGrid(base, configs, clients, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].size(), b[c].size());
    for (std::size_t p = 0; p < a[c].size(); ++p) {
      expectIdentical(a[c][p], b[c][p]);
      if (!trace::kEnabled) continue;  // stats identity still checked above
      ASSERT_NE(a[c][p].trace, nullptr);
      ASSERT_NE(b[c][p].trace, nullptr);
      EXPECT_EQ(trace::chromeTraceJson(*a[c][p].trace),
                trace::chromeTraceJson(*b[c][p].trace));
    }
  }
}

TEST(DatasetCacheTest, SweepSharesOneDataset) {
  auto& cache = DatasetCache::global();
  auto base = tinyParams(App::Auction);
  base.config = Configuration::WsPhpDb;
  base.seed = 1234;                 // fresh key for this test
  base.auctionHistoryScale = 0.02;  // distinct from the other tests' keys
  const auto before = cache.builds();
  SweepOptions opts;
  opts.jobs = 2;
  (void)sweepClients(base, {10, 20, 30}, opts);
  EXPECT_EQ(cache.builds(), before + 1) << "all sweep points must share one prototype";
}

}  // namespace
}  // namespace mwsim::core
