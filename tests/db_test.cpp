#include <gtest/gtest.h>

#include <stdexcept>

#include "db/database.hpp"
#include "db/executor.hpp"
#include "db/lexer.hpp"
#include "db/parser.hpp"

namespace mwsim::db {
namespace {

// ------------------------------------------------------------------- Value

TEST(ValueTest, NullBehaviour) {
  Value v;
  EXPECT_TRUE(v.isNull());
  EXPECT_EQ(v.toDisplayString(), "NULL");
  EXPECT_EQ(v.compare(Value()), 0);
  EXPECT_LT(v.compare(Value(0)), 0);  // NULL sorts before numbers
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(1).compare(Value(1.0)), 0);
  EXPECT_LT(Value(1).compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).compare(Value(2)), 0);
}

TEST(ValueTest, NumbersSortBeforeStrings) {
  EXPECT_LT(Value(999).compare(Value("abc")), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("apple").compare(Value("banana")), 0);
  EXPECT_EQ(Value("x").compare(Value("x")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(7).hash(), Value(7.0).hash());
  EXPECT_EQ(Value("abc").hash(), Value(std::string("abc")).hash());
}

TEST(ValueTest, Conversions) {
  EXPECT_EQ(Value(3.9).asInt(), 3);
  EXPECT_DOUBLE_EQ(Value(5).asDouble(), 5.0);
  EXPECT_THROW(Value("x").asInt(), std::runtime_error);
  EXPECT_THROW(Value(1).asString(), std::runtime_error);
}

// ------------------------------------------------------------------- Table

TableSchema itemsSchema() {
  return SchemaBuilder("items")
      .intCol("id").primaryKey(/*autoIncrement=*/true)
      .stringCol("name")
      .intCol("category").indexed()
      .doubleCol("price")
      .intCol("stock")
      .build();
}

TEST(TableTest, InsertAndPkLookup) {
  Table t(itemsSchema());
  t.insert({Value(1), Value("book"), Value(3), Value(9.99), Value(10)});
  t.insert({Value(2), Value("lamp"), Value(5), Value(19.99), Value(4)});
  ASSERT_TRUE(t.findByPk(Value(2)).has_value());
  EXPECT_EQ(t.row(*t.findByPk(Value(2)))[1].asString(), "lamp");
  EXPECT_FALSE(t.findByPk(Value(99)).has_value());
  EXPECT_EQ(t.size(), 2u);
}

TEST(TableTest, AutoIncrementAssignsIds) {
  Table t(itemsSchema());
  const auto id1 = t.insert({Value(), Value("a"), Value(1), Value(1.0), Value(1)});
  const auto id2 = t.insert({Value(), Value("b"), Value(1), Value(1.0), Value(1)});
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(id2, 2);
  EXPECT_EQ(t.lastInsertId(), 2);
}

TEST(TableTest, AutoIncrementSkipsExplicitIds) {
  Table t(itemsSchema());
  t.insert({Value(100), Value("a"), Value(1), Value(1.0), Value(1)});
  const auto id = t.insert({Value(), Value("b"), Value(1), Value(1.0), Value(1)});
  EXPECT_EQ(id, 101);
}

TEST(TableTest, DuplicatePkThrows) {
  Table t(itemsSchema());
  t.insert({Value(1), Value("a"), Value(1), Value(1.0), Value(1)});
  EXPECT_THROW(t.insert({Value(1), Value("b"), Value(1), Value(1.0), Value(1)}),
               std::runtime_error);
}

TEST(TableTest, SecondaryIndexLookup) {
  Table t(itemsSchema());
  for (int i = 1; i <= 10; ++i) {
    t.insert({Value(i), Value("x"), Value(i % 3), Value(1.0), Value(1)});
  }
  const auto hits = t.findByIndex(2, Value(1));  // category == 1
  EXPECT_EQ(hits.size(), 4u);  // 1, 4, 7, 10
  for (RowId id : hits) EXPECT_EQ(t.row(id)[2].asInt(), 1);
}

TEST(TableTest, RangeScanInclusiveExclusive) {
  Table t(itemsSchema());
  for (int i = 1; i <= 10; ++i) {
    t.insert({Value(i), Value("x"), Value(i), Value(1.0), Value(1)});
  }
  auto r = t.findRangeByIndex(2, Value(3), true, Value(6), true);
  EXPECT_EQ(r.size(), 4u);
  r = t.findRangeByIndex(2, Value(3), false, Value(6), false);
  EXPECT_EQ(r.size(), 2u);
  r = t.findRangeByIndex(2, std::nullopt, true, Value(2), true);
  EXPECT_EQ(r.size(), 2u);
}

TEST(TableTest, UpdateCellMaintainsIndexes) {
  Table t(itemsSchema());
  t.insert({Value(1), Value("a"), Value(7), Value(1.0), Value(1)});
  t.updateCell(0, 2, Value(9));
  EXPECT_TRUE(t.findByIndex(2, Value(7)).empty());
  EXPECT_EQ(t.findByIndex(2, Value(9)).size(), 1u);
}

TEST(TableTest, UpdatePkMaintainsPkIndex) {
  Table t(itemsSchema());
  t.insert({Value(1), Value("a"), Value(7), Value(1.0), Value(1)});
  t.updateCell(0, 0, Value(42));
  EXPECT_FALSE(t.findByPk(Value(1)).has_value());
  ASSERT_TRUE(t.findByPk(Value(42)).has_value());
}

TEST(TableTest, EraseRemovesFromIndexes) {
  Table t(itemsSchema());
  t.insert({Value(1), Value("a"), Value(7), Value(1.0), Value(1)});
  t.insert({Value(2), Value("b"), Value(7), Value(1.0), Value(1)});
  t.erase(0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.findByPk(Value(1)).has_value());
  EXPECT_EQ(t.findByIndex(2, Value(7)).size(), 1u);
  int visited = 0;
  t.forEachRow([&](RowId) { ++visited; });
  EXPECT_EQ(visited, 1);
}

// ------------------------------------------------------------------- Lexer

TEST(LexerTest, TokenizesBasicSelect) {
  const auto tokens = lex("SELECT a, b FROM t WHERE x >= 10");
  EXPECT_EQ(tokens.front().type, TokenType::Identifier);
  EXPECT_EQ(tokens.front().upperText, "SELECT");
  EXPECT_EQ(tokens.back().type, TokenType::End);
}

TEST(LexerTest, StringEscapes) {
  const auto tokens = lex("SELECT 'it''s'");
  EXPECT_EQ(tokens[1].type, TokenType::String);
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, NumbersAndFloats) {
  const auto tokens = lex("1 2.5 .75");
  EXPECT_EQ(tokens[0].intValue, 1);
  EXPECT_DOUBLE_EQ(tokens[1].floatValue, 2.5);
  EXPECT_DOUBLE_EQ(tokens[2].floatValue, 0.75);
}

TEST(LexerTest, OperatorsTwoChar) {
  const auto tokens = lex("a <= b >= c != d <> e");
  EXPECT_EQ(tokens[1].type, TokenType::Le);
  EXPECT_EQ(tokens[3].type, TokenType::Ge);
  EXPECT_EQ(tokens[5].type, TokenType::Ne);
  EXPECT_EQ(tokens[7].type, TokenType::Ne);
}

TEST(LexerTest, ThrowsOnUnterminatedString) {
  EXPECT_THROW(lex("SELECT 'abc"), std::runtime_error);
}

TEST(LexerTest, ThrowsOnStrayBang) {
  EXPECT_THROW(lex("a ! b"), std::runtime_error);
}

// ------------------------------------------------------------------ Parser

TEST(ParserTest, SelectStructure) {
  auto stmt = parseSql(
      "SELECT id, name AS n FROM items WHERE category = ? AND price < 10.0 "
      "ORDER BY price DESC LIMIT 20 OFFSET 5");
  ASSERT_EQ(stmt->kind, Statement::Kind::Select);
  const auto& s = stmt->select;
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "n");
  EXPECT_EQ(s.from.table, "items");
  ASSERT_TRUE(s.where != nullptr);
  EXPECT_EQ(s.orderBy.size(), 1u);
  EXPECT_TRUE(s.orderBy[0].descending);
  EXPECT_EQ(s.limit, 20);
  EXPECT_EQ(s.offset, 5);
  EXPECT_EQ(stmt->paramCount, 1u);
}

TEST(ParserTest, JoinWithOn) {
  auto stmt = parseSql(
      "SELECT i.name, a.name FROM items i JOIN authors a ON i.author_id = a.id");
  const auto& s = stmt->select;
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table.table, "authors");
  EXPECT_EQ(s.joins[0].table.alias, "a");
  ASSERT_TRUE(s.joins[0].on != nullptr);
  EXPECT_EQ(s.joins[0].on->kind, Expr::Kind::Binary);
  EXPECT_EQ(s.joins[0].on->op, BinOp::Eq);
}

TEST(ParserTest, JoinWithExpressionOn) {
  auto stmt = parseSql(
      "SELECT i.name FROM items i JOIN authors a ON i.author_id = a.id + 1 "
      "AND a.id < 100");
  const auto& s = stmt->select;
  ASSERT_EQ(s.joins.size(), 1u);
  ASSERT_TRUE(s.joins[0].on != nullptr);
  EXPECT_EQ(s.joins[0].on->op, BinOp::And);
}

TEST(ParserTest, WriteLimitOffset) {
  auto del = parseSql("DELETE FROM items WHERE stock = 0 LIMIT 10 OFFSET 2");
  ASSERT_EQ(del->kind, Statement::Kind::Delete);
  EXPECT_EQ(del->del.limit, 10);
  EXPECT_EQ(del->del.offset, 2);
  auto upd = parseSql("UPDATE items SET stock = stock - 1 LIMIT 3");
  ASSERT_EQ(upd->kind, Statement::Kind::Update);
  EXPECT_EQ(upd->update.limit, 3);
  EXPECT_EQ(upd->update.offset, 0);
}

TEST(ParserTest, GroupByAggregates) {
  auto stmt = parseSql(
      "SELECT item_id, SUM(qty) AS total FROM order_line GROUP BY item_id "
      "ORDER BY total DESC LIMIT 50");
  const auto& s = stmt->select;
  EXPECT_EQ(s.groupBy.size(), 1u);
  EXPECT_EQ(s.items[1].expr->kind, Expr::Kind::Aggregate);
  EXPECT_EQ(s.items[1].expr->agg, AggFunc::Sum);
}

TEST(ParserTest, InsertWithColumns) {
  auto stmt = parseSql("INSERT INTO t (a, b, c) VALUES (?, 'x', 3)");
  ASSERT_EQ(stmt->kind, Statement::Kind::Insert);
  EXPECT_EQ(stmt->insert.columns.size(), 3u);
  EXPECT_EQ(stmt->insert.values.size(), 3u);
  EXPECT_EQ(stmt->paramCount, 1u);
}

TEST(ParserTest, UpdateWithArithmetic) {
  auto stmt = parseSql("UPDATE items SET stock = stock - 1, price = ? WHERE id = ?");
  ASSERT_EQ(stmt->kind, Statement::Kind::Update);
  EXPECT_EQ(stmt->update.sets.size(), 2u);
  EXPECT_EQ(stmt->paramCount, 2u);
}

TEST(ParserTest, DeleteStatement) {
  auto stmt = parseSql("DELETE FROM bids WHERE item_id = 5");
  ASSERT_EQ(stmt->kind, Statement::Kind::Delete);
  EXPECT_EQ(stmt->del.table, "bids");
}

TEST(ParserTest, LockTables) {
  auto stmt = parseSql("LOCK TABLES items WRITE, authors READ");
  ASSERT_EQ(stmt->kind, Statement::Kind::LockTables);
  ASSERT_EQ(stmt->lockTables.items.size(), 2u);
  EXPECT_TRUE(stmt->lockTables.items[0].write);
  EXPECT_FALSE(stmt->lockTables.items[1].write);
}

TEST(ParserTest, UnlockTables) {
  auto stmt = parseSql("UNLOCK TABLES");
  EXPECT_EQ(stmt->kind, Statement::Kind::UnlockTables);
}

TEST(ParserTest, LikeExpression) {
  auto stmt = parseSql("SELECT * FROM items WHERE name LIKE 'harry%'");
  ASSERT_TRUE(stmt->select.where != nullptr);
  EXPECT_EQ(stmt->select.where->op, BinOp::Like);
}

TEST(ParserTest, SyntaxErrorsThrowWithContext) {
  try {
    parseSql("SELECT FROM");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SELECT FROM"), std::string::npos);
  }
  EXPECT_THROW(parseSql("FROB x"), std::runtime_error);
  EXPECT_THROW(parseSql("SELECT * FROM t WHERE"), std::runtime_error);
  EXPECT_THROW(parseSql("INSERT INTO t VALUES (1"), std::runtime_error);
}

// ------------------------------------------------------------------- LIKE

TEST(LikeTest, Patterns) {
  EXPECT_TRUE(likeMatch("harry potter", "harry%"));
  EXPECT_TRUE(likeMatch("harry potter", "%potter"));
  EXPECT_TRUE(likeMatch("harry potter", "%rry pot%"));
  EXPECT_TRUE(likeMatch("abc", "abc"));
  EXPECT_TRUE(likeMatch("abc", "a_c"));
  EXPECT_FALSE(likeMatch("abc", "a_d"));
  EXPECT_FALSE(likeMatch("abc", "abcd%e"));
  EXPECT_TRUE(likeMatch("", "%"));
  EXPECT_FALSE(likeMatch("x", ""));
}

// ---------------------------------------------------------------- Executor

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : exec_(db_) {
    db_.createTable(itemsSchema());
    db_.createTable(SchemaBuilder("authors")
                        .intCol("id").primaryKey()
                        .stringCol("name")
                        .build());
    db_.createTable(SchemaBuilder("books")
                        .intCol("id").primaryKey(true)
                        .stringCol("title")
                        .intCol("author_id").indexed()
                        .doubleCol("price")
                        .build());
    exec_.query("INSERT INTO authors VALUES (1, 'tolkien')");
    exec_.query("INSERT INTO authors VALUES (2, 'rowling')");
    exec_.query("INSERT INTO books VALUES (NULL, 'lotr', 1, 20.0)");
    exec_.query("INSERT INTO books VALUES (NULL, 'hobbit', 1, 10.0)");
    exec_.query("INSERT INTO books VALUES (NULL, 'hp1', 2, 15.0)");
    for (int i = 1; i <= 20; ++i) {
      const Value params[] = {Value(i), Value("item" + std::to_string(i)),
                              Value(i % 4), Value(i * 1.5), Value(100 - i)};
      exec_.query("INSERT INTO items VALUES (?, ?, ?, ?, ?)", params);
    }
  }

  Database db_;
  Executor exec_;
};

TEST_F(ExecutorTest, SelectAllColumns) {
  auto r = exec_.query("SELECT * FROM authors ORDER BY id");
  ASSERT_EQ(r.resultSet.rowCount(), 2u);
  EXPECT_EQ(r.resultSet.columns, (std::vector<std::string>{"id", "name"}));
  EXPECT_EQ(r.resultSet.stringAt(0, "name"), "tolkien");
}

TEST_F(ExecutorTest, SelectByPrimaryKeyUsesIndex) {
  auto r = exec_.query("SELECT name FROM items WHERE id = 7");
  ASSERT_EQ(r.resultSet.rowCount(), 1u);
  EXPECT_EQ(r.resultSet.stringAt(0, "name"), "item7");
  EXPECT_TRUE(r.stats.usedIndex);
  EXPECT_EQ(r.stats.rowsExamined, 1u);
}

TEST_F(ExecutorTest, SelectBySecondaryIndex) {
  auto r = exec_.query("SELECT id FROM items WHERE category = 2");
  EXPECT_EQ(r.resultSet.rowCount(), 5u);  // 2, 6, 10, 14, 18
  EXPECT_TRUE(r.stats.usedIndex);
  EXPECT_EQ(r.stats.rowsExamined, 5u);
}

TEST_F(ExecutorTest, FullScanWhenNoIndex) {
  auto r = exec_.query("SELECT id FROM items WHERE stock > 95");
  EXPECT_EQ(r.resultSet.rowCount(), 4u);  // stock = 99, 98, 97, 96
  EXPECT_FALSE(r.stats.usedIndex);
  EXPECT_EQ(r.stats.rowsExamined, 20u);
}

TEST_F(ExecutorTest, IndexRangeScan) {
  auto r = exec_.query("SELECT id FROM items WHERE category >= 1 AND category <= 2");
  EXPECT_EQ(r.resultSet.rowCount(), 10u);
  EXPECT_TRUE(r.stats.usedIndex);
}

TEST_F(ExecutorTest, BoundParameters) {
  const Value params[] = {Value(3)};
  auto r = exec_.query("SELECT COUNT(*) AS n FROM items WHERE category = ?", params);
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 5);
}

TEST_F(ExecutorTest, MissingParameterThrows) {
  EXPECT_THROW(exec_.query("SELECT * FROM items WHERE id = ?"), std::runtime_error);
}

TEST_F(ExecutorTest, JoinViaOnWithIndex) {
  auto r = exec_.query(
      "SELECT b.title, a.name FROM books b JOIN authors a ON b.author_id = a.id "
      "WHERE a.name = 'tolkien' ORDER BY b.title");
  ASSERT_EQ(r.resultSet.rowCount(), 2u);
  EXPECT_EQ(r.resultSet.stringAt(0, "title"), "hobbit");
  EXPECT_TRUE(r.stats.usedIndex);
}

TEST_F(ExecutorTest, JoinReversedOnCondition) {
  auto r = exec_.query(
      "SELECT b.title FROM authors a JOIN books b ON a.id = b.author_id "
      "WHERE a.id = 2");
  ASSERT_EQ(r.resultSet.rowCount(), 1u);
  EXPECT_EQ(r.resultSet.stringAt(0, "title"), "hp1");
}

TEST_F(ExecutorTest, CommaJoinWithWhereEquality) {
  auto r = exec_.query(
      "SELECT b.title FROM authors a, books b WHERE a.id = b.author_id AND "
      "a.name = 'rowling'");
  ASSERT_EQ(r.resultSet.rowCount(), 1u);
  EXPECT_EQ(r.resultSet.stringAt(0, "title"), "hp1");
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  auto r = exec_.query(
      "SELECT author_id, COUNT(*) AS n, SUM(price) AS total, MAX(price) AS mx "
      "FROM books GROUP BY author_id ORDER BY author_id");
  ASSERT_EQ(r.resultSet.rowCount(), 2u);
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 2);
  EXPECT_DOUBLE_EQ(r.resultSet.doubleAt(0, "total"), 30.0);
  EXPECT_DOUBLE_EQ(r.resultSet.doubleAt(0, "mx"), 20.0);
  EXPECT_EQ(r.resultSet.intAt(1, "n"), 1);
}

TEST_F(ExecutorTest, AggregateWithoutGroupBy) {
  auto r = exec_.query("SELECT COUNT(*) AS n, AVG(price) AS avg FROM books");
  ASSERT_EQ(r.resultSet.rowCount(), 1u);
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 3);
  EXPECT_NEAR(r.resultSet.doubleAt(0, "avg"), 15.0, 1e-9);
}

TEST_F(ExecutorTest, CountOverEmptyInputIsZero) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM books WHERE author_id = 99");
  ASSERT_EQ(r.resultSet.rowCount(), 1u);
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 0);
}

TEST_F(ExecutorTest, OrderBySelectAliasDescending) {
  auto r = exec_.query(
      "SELECT author_id, COUNT(*) AS n FROM books GROUP BY author_id "
      "ORDER BY n DESC");
  ASSERT_EQ(r.resultSet.rowCount(), 2u);
  EXPECT_EQ(r.resultSet.intAt(0, "author_id"), 1);
}

TEST_F(ExecutorTest, OrderLimitOffset) {
  auto r = exec_.query("SELECT id FROM items ORDER BY id DESC LIMIT 3 OFFSET 2");
  ASSERT_EQ(r.resultSet.rowCount(), 3u);
  EXPECT_EQ(r.resultSet.intAt(0, "id"), 18);
  EXPECT_EQ(r.resultSet.intAt(2, "id"), 16);
  EXPECT_GT(r.stats.rowsSorted, 0u);
}

TEST_F(ExecutorTest, LikeFilter) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM items WHERE name LIKE 'item1%'");
  // item1, item10..item19 => 11
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 11);
}

TEST_F(ExecutorTest, ArithmeticInProjection) {
  auto r = exec_.query("SELECT price * 2 AS dbl FROM books WHERE title = 'hobbit'");
  EXPECT_DOUBLE_EQ(r.resultSet.doubleAt(0, "dbl"), 20.0);
}

TEST_F(ExecutorTest, OrConditions) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM items WHERE id = 1 OR id = 2");
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 2);
}

TEST_F(ExecutorTest, InsertAutoIncrementReturnsId) {
  auto r = exec_.query("INSERT INTO books (title, author_id, price) VALUES ('x', 1, 1.0)");
  EXPECT_EQ(r.lastInsertId, 4);
  EXPECT_EQ(r.affectedRows, 1u);
}

TEST_F(ExecutorTest, InsertCoercesNumericTypes) {
  exec_.query("INSERT INTO books VALUES (NULL, 'y', 2, 7)");  // int into double col
  auto r = exec_.query("SELECT price FROM books WHERE title = 'y'");
  EXPECT_TRUE(r.resultSet.at(0, "price").isDouble());
}

TEST_F(ExecutorTest, UpdateWithSelfReference) {
  exec_.query("UPDATE items SET stock = stock - 5 WHERE id = 1");
  auto r = exec_.query("SELECT stock FROM items WHERE id = 1");
  EXPECT_EQ(r.resultSet.intAt(0, "stock"), 94);
}

TEST_F(ExecutorTest, UpdateByIndexTouchesOnlyMatches) {
  auto r = exec_.query("UPDATE items SET stock = 0 WHERE category = 1");
  EXPECT_EQ(r.affectedRows, 5u);
  EXPECT_TRUE(r.stats.usedIndex);
  auto check = exec_.query("SELECT COUNT(*) AS n FROM items WHERE stock = 0");
  EXPECT_EQ(check.resultSet.intAt(0, "n"), 5);
}

TEST_F(ExecutorTest, UpdateIndexedColumnRelocatesRow) {
  exec_.query("UPDATE books SET author_id = 2 WHERE title = 'hobbit'");
  auto r = exec_.query("SELECT COUNT(*) AS n FROM books WHERE author_id = 2");
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 2);
}

TEST_F(ExecutorTest, DeleteRemovesRows) {
  auto r = exec_.query("DELETE FROM items WHERE category = 0");
  EXPECT_EQ(r.affectedRows, 5u);
  auto count = exec_.query("SELECT COUNT(*) AS n FROM items");
  EXPECT_EQ(count.resultSet.intAt(0, "n"), 15);
}

TEST_F(ExecutorTest, SelectFromUnknownTableThrows) {
  EXPECT_THROW(exec_.query("SELECT * FROM nope"), std::runtime_error);
}

TEST_F(ExecutorTest, UnknownColumnThrows) {
  EXPECT_THROW(exec_.query("SELECT wibble FROM items"), std::runtime_error);
}

TEST_F(ExecutorTest, AmbiguousColumnThrows) {
  EXPECT_THROW(
      exec_.query("SELECT id FROM books b JOIN authors a ON b.author_id = a.id"),
      std::runtime_error);
}

TEST_F(ExecutorTest, ResultByteSizeNonZero) {
  auto r = exec_.query("SELECT * FROM items");
  EXPECT_GT(r.stats.resultBytes, 100u);
  EXPECT_EQ(r.stats.rowsReturned, 20u);
}

TEST_F(ExecutorTest, LockStatementsAreEngineNoOps) {
  auto r1 = exec_.query("LOCK TABLES items WRITE");
  auto r2 = exec_.query("UNLOCK TABLES");
  EXPECT_EQ(r1.affectedRows, 0u);
  EXPECT_EQ(r2.affectedRows, 0u);
}

TEST_F(ExecutorTest, DatabaseApproxBytesGrows) {
  const auto before = db_.approxBytes();
  exec_.query("INSERT INTO books VALUES (NULL, 'a-very-long-book-title', 1, 5.0)");
  EXPECT_GT(db_.approxBytes(), before);
}

}  // namespace
}  // namespace mwsim::db

namespace mwsim::db {
namespace {

// ------------------------------------------------------ executor edge cases

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ExecutorEdgeTest() : exec_(db_) {
    db_.createTable(SchemaBuilder("e")
                        .intCol("id").primaryKey(true)
                        .intCol("v").indexed()
                        .stringCol("s")
                        .build());
    for (int i = 1; i <= 10; ++i) {
      const Value params[] = {Value(i % 3), Value("row" + std::to_string(i))};
      exec_.query("INSERT INTO e (v, s) VALUES (?, ?)", params);
    }
  }
  Database db_;
  Executor exec_;
};

TEST_F(ExecutorEdgeTest, SelectFromEmptyTable) {
  db_.createTable(SchemaBuilder("empty").intCol("x").primaryKey().build());
  auto r = exec_.query("SELECT * FROM empty");
  EXPECT_TRUE(r.resultSet.empty());
  auto agg = exec_.query("SELECT COUNT(*) AS n, MAX(x) AS m FROM empty");
  EXPECT_EQ(agg.resultSet.intAt(0, "n"), 0);
  EXPECT_TRUE(agg.resultSet.at(0, "m").isNull());
}

TEST_F(ExecutorEdgeTest, OffsetBeyondEnd) {
  auto r = exec_.query("SELECT id FROM e ORDER BY id LIMIT 5 OFFSET 100");
  EXPECT_TRUE(r.resultSet.empty());
}

TEST_F(ExecutorEdgeTest, LimitZero) {
  auto r = exec_.query("SELECT id FROM e LIMIT 0");
  EXPECT_TRUE(r.resultSet.empty());
}

TEST_F(ExecutorEdgeTest, OrderByMultipleKeys) {
  auto r = exec_.query("SELECT id, v FROM e ORDER BY v DESC, id ASC");
  ASSERT_EQ(r.resultSet.rowCount(), 10u);
  // First group is v=2 (ids 2,5,8 in ascending order).
  EXPECT_EQ(r.resultSet.intAt(0, "v"), 2);
  EXPECT_EQ(r.resultSet.intAt(0, "id"), 2);
  EXPECT_EQ(r.resultSet.intAt(1, "id"), 5);
}

TEST_F(ExecutorEdgeTest, DeleteByIndexThenReuseIndex) {
  exec_.query("DELETE FROM e WHERE v = 1");
  auto r = exec_.query("SELECT COUNT(*) AS n FROM e WHERE v = 1");
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 0);
  // Insert again and find it through the index.
  exec_.query("INSERT INTO e (v, s) VALUES (1, 'fresh')");
  auto again = exec_.query("SELECT s FROM e WHERE v = 1");
  ASSERT_EQ(again.resultSet.rowCount(), 1u);
  EXPECT_EQ(again.resultSet.stringAt(0, "s"), "fresh");
}

TEST_F(ExecutorEdgeTest, UpdateNoMatchesAffectsNothing) {
  auto r = exec_.query("UPDATE e SET v = 99 WHERE id = 12345");
  EXPECT_EQ(r.affectedRows, 0u);
}

TEST_F(ExecutorEdgeTest, MaxMinFastPathMatchesScan) {
  auto fastMax = exec_.query("SELECT MAX(v) AS m FROM e");
  auto slowMax = exec_.query("SELECT MAX(v) AS m FROM e WHERE id > 0");
  EXPECT_EQ(fastMax.resultSet.intAt(0, "m"), slowMax.resultSet.intAt(0, "m"));
  auto fastCount = exec_.query("SELECT COUNT(*) AS n FROM e");
  auto slowCount = exec_.query("SELECT COUNT(*) AS n FROM e WHERE id > 0");
  EXPECT_EQ(fastCount.resultSet.intAt(0, "n"), slowCount.resultSet.intAt(0, "n"));
  EXPECT_LT(fastCount.stats.rowsExamined, slowCount.stats.rowsExamined);
}

TEST_F(ExecutorEdgeTest, MaxAutoIncrementPkIsO1) {
  auto r = exec_.query("SELECT MAX(id) AS m FROM e");
  EXPECT_EQ(r.resultSet.intAt(0, "m"), 10);
  EXPECT_LE(r.stats.rowsExamined, 1u);
}

TEST_F(ExecutorEdgeTest, NullComparisonsAreFalse) {
  db_.createTable(SchemaBuilder("n").intCol("id").primaryKey().intCol("x").build());
  exec_.query("INSERT INTO n VALUES (1, NULL)");
  exec_.query("INSERT INTO n VALUES (2, 5)");
  auto r = exec_.query("SELECT id FROM n WHERE x > 0");
  ASSERT_EQ(r.resultSet.rowCount(), 1u);
  EXPECT_EQ(r.resultSet.intAt(0, "id"), 2);
  auto eq = exec_.query("SELECT id FROM n WHERE x = 5");
  EXPECT_EQ(eq.resultSet.rowCount(), 1u);
}

TEST_F(ExecutorEdgeTest, SumAndAvgSkipNulls) {
  db_.createTable(SchemaBuilder("m").intCol("id").primaryKey().doubleCol("x").build());
  exec_.query("INSERT INTO m VALUES (1, 10.0)");
  exec_.query("INSERT INTO m VALUES (2, NULL)");
  exec_.query("INSERT INTO m VALUES (3, 20.0)");
  auto r = exec_.query("SELECT SUM(x) AS s, AVG(x) AS a, COUNT(x) AS c FROM m");
  EXPECT_DOUBLE_EQ(r.resultSet.doubleAt(0, "s"), 30.0);
  EXPECT_DOUBLE_EQ(r.resultSet.doubleAt(0, "a"), 15.0);
  EXPECT_EQ(r.resultSet.intAt(0, "c"), 2);
}

TEST_F(ExecutorEdgeTest, ParenthesizedBooleanExpressions) {
  auto r = exec_.query(
      "SELECT COUNT(*) AS n FROM e WHERE (v = 0 OR v = 1) AND id <= 5");
  // ids 1..5 with v != 2: ids 1(v1),3(v0),4(v1) and 5 has v=2 -> excluded; 2 has v=2.
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 3);
}

TEST_F(ExecutorEdgeTest, ArithmeticPrecedence) {
  auto r = exec_.query("SELECT 2 + 3 * 4 AS x FROM e LIMIT 1");
  EXPECT_EQ(r.resultSet.intAt(0, "x"), 14);
  auto paren = exec_.query("SELECT (2 + 3) * 4 AS x FROM e LIMIT 1");
  EXPECT_EQ(paren.resultSet.intAt(0, "x"), 20);
}

TEST_F(ExecutorEdgeTest, DivisionByZeroYieldsNull) {
  auto r = exec_.query("SELECT 1 / 0 AS x FROM e LIMIT 1");
  EXPECT_TRUE(r.resultSet.at(0, "x").isNull());
}

TEST_F(ExecutorEdgeTest, StringEscapeRoundTrip) {
  exec_.query("INSERT INTO e (v, s) VALUES (7, 'it''s a test')");
  auto r = exec_.query("SELECT s FROM e WHERE v = 7");
  EXPECT_EQ(r.resultSet.stringAt(0, "s"), "it's a test");
}

}  // namespace
}  // namespace mwsim::db

namespace mwsim::db {
namespace {

// --------------------------------------------- extended SQL features

class SqlFeatureTest : public ::testing::Test {
 protected:
  SqlFeatureTest() : exec_(db_) {
    db_.createTable(SchemaBuilder("f")
                        .intCol("id").primaryKey(true)
                        .intCol("grp").indexed()
                        .intCol("v")
                        .stringCol("s")
                        .build());
    for (int i = 1; i <= 30; ++i) {
      const Value params[] = {Value(i % 5), Value(i * 10),
                              Value(i % 4 == 0 ? Value() : Value("s" + std::to_string(i)))};
      exec_.query("INSERT INTO f (grp, v, s) VALUES (?, ?, ?)", params);
    }
  }
  Database db_;
  Executor exec_;
};

TEST_F(SqlFeatureTest, InListOnPrimaryKeyUsesIndex) {
  auto r = exec_.query("SELECT id FROM f WHERE id IN (3, 7, 11) ORDER BY id");
  ASSERT_EQ(r.resultSet.rowCount(), 3u);
  EXPECT_EQ(r.resultSet.intAt(0, "id"), 3);
  EXPECT_TRUE(r.stats.usedIndex);
  EXPECT_EQ(r.stats.rowsExamined, 3u);
}

TEST_F(SqlFeatureTest, InListOnIndexedColumn) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM f WHERE grp IN (1, 2)");
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 12);  // 6 per group
  EXPECT_TRUE(r.stats.usedIndex);
}

TEST_F(SqlFeatureTest, InListWithParams) {
  const Value params[] = {Value(5), Value(6)};
  auto r = exec_.query("SELECT id FROM f WHERE id IN (?, ?) ORDER BY id", params);
  ASSERT_EQ(r.resultSet.rowCount(), 2u);
}

TEST_F(SqlFeatureTest, NotIn) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM f WHERE grp NOT IN (0, 1, 2, 3)");
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 6);  // grp == 4
}

TEST_F(SqlFeatureTest, Between) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM f WHERE v BETWEEN 100 AND 150");
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 6);  // v = 100..150 step 10
  auto notBetween =
      exec_.query("SELECT COUNT(*) AS n FROM f WHERE v NOT BETWEEN 20 AND 290");
  EXPECT_EQ(notBetween.resultSet.intAt(0, "n"), 2);  // v=10 and v=300
}

TEST_F(SqlFeatureTest, IsNullAndIsNotNull) {
  auto nulls = exec_.query("SELECT COUNT(*) AS n FROM f WHERE s IS NULL");
  EXPECT_EQ(nulls.resultSet.intAt(0, "n"), 7);  // every 4th row of 30
  auto notNulls = exec_.query("SELECT COUNT(*) AS n FROM f WHERE s IS NOT NULL");
  EXPECT_EQ(notNulls.resultSet.intAt(0, "n"), 23);
}

TEST_F(SqlFeatureTest, NotPrefixOperator) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM f WHERE NOT (grp = 0)");
  EXPECT_EQ(r.resultSet.intAt(0, "n"), 24);
}

TEST_F(SqlFeatureTest, NotLike) {
  auto r = exec_.query("SELECT COUNT(*) AS n FROM f WHERE s NOT LIKE 's1%' AND s IS NOT NULL");
  // s1, s10..s19 minus the NULL slots (s12, s16 are NULL; s4, s8... are NULL)
  auto like = exec_.query("SELECT COUNT(*) AS n FROM f WHERE s LIKE 's1%'");
  auto notNull = exec_.query("SELECT COUNT(*) AS n FROM f WHERE s IS NOT NULL");
  EXPECT_EQ(r.resultSet.intAt(0, "n") + like.resultSet.intAt(0, "n"),
            notNull.resultSet.intAt(0, "n"));
}

TEST_F(SqlFeatureTest, HavingFiltersGroups) {
  // grp 0 appears 6 times; restrict to groups with at least 1 row where id > 25.
  auto r = exec_.query(
      "SELECT grp, COUNT(*) AS n FROM f WHERE id > 25 GROUP BY grp "
      "HAVING COUNT(*) > 1 ORDER BY grp");
  // ids 26..30 -> grps 1,2,3,4,0: each once => HAVING n>1 removes all.
  EXPECT_EQ(r.resultSet.rowCount(), 0u);
  auto loose = exec_.query(
      "SELECT grp, COUNT(*) AS n FROM f GROUP BY grp HAVING COUNT(*) > 5 ORDER BY grp");
  EXPECT_EQ(loose.resultSet.rowCount(), 5u);  // all groups have 6 rows
}

TEST_F(SqlFeatureTest, HavingOnSum) {
  auto r = exec_.query(
      "SELECT grp, SUM(v) AS total FROM f GROUP BY grp HAVING SUM(v) >= 960 "
      "ORDER BY total DESC");
  // grp sums: grp g has v = 10*(g, g+5, g+10, g+15, g+20, g+25) = 60g + 750... wait:
  // ids with id%5==g: v=10*id. g=0: ids 5,10,..,30 -> 10*(5+10+15+20+25+30)=1050.
  ASSERT_GE(r.resultSet.rowCount(), 1u);
  EXPECT_GE(r.resultSet.doubleAt(0, "total"), 960.0);
}

TEST_F(SqlFeatureTest, DistinctRemovesDuplicates) {
  auto r = exec_.query("SELECT DISTINCT grp FROM f ORDER BY grp");
  ASSERT_EQ(r.resultSet.rowCount(), 5u);
  for (int g = 0; g < 5; ++g) {
    EXPECT_EQ(r.resultSet.intAt(static_cast<std::size_t>(g), "grp"), g);
  }
}

TEST_F(SqlFeatureTest, DistinctOnMultipleColumns) {
  exec_.query("INSERT INTO f (grp, v, s) VALUES (0, 50, 'dup')");
  auto r = exec_.query("SELECT DISTINCT grp, v FROM f WHERE v = 50");
  // Row id=5 has (0, 50); the new row also (0, 50) -> one distinct pair.
  EXPECT_EQ(r.resultSet.rowCount(), 1u);
}

TEST_F(SqlFeatureTest, UpdateWithInPredicate) {
  auto r = exec_.query("UPDATE f SET v = 0 WHERE id IN (1, 2, 3)");
  EXPECT_EQ(r.affectedRows, 3u);
}

TEST_F(SqlFeatureTest, DeleteWithIsNull) {
  const auto before = db_.table("f").size();
  auto r = exec_.query("DELETE FROM f WHERE s IS NULL");
  EXPECT_EQ(r.affectedRows, 7u);
  EXPECT_EQ(db_.table("f").size(), before - 7);
}

TEST_F(SqlFeatureTest, ParserErrorsOnBadIn) {
  EXPECT_THROW(exec_.query("SELECT id FROM f WHERE id IN ()"), std::runtime_error);
  EXPECT_THROW(exec_.query("SELECT id FROM f WHERE id IN (1, 2"), std::runtime_error);
  EXPECT_THROW(exec_.query("SELECT id FROM f WHERE id IS 5"), std::runtime_error);
}

}  // namespace
}  // namespace mwsim::db
