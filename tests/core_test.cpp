#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/client.hpp"

namespace mwsim::core {
namespace {

ExperimentParams smallParams(Configuration config, App app, int mix, int clients) {
  ExperimentParams p;
  p.config = config;
  p.app = app;
  p.mix = mix;
  p.clients = clients;
  p.rampUp = 20 * sim::kSecond;
  p.measure = 60 * sim::kSecond;
  p.rampDown = 5 * sim::kSecond;
  p.bookstoreScale = 0.02;
  p.auctionHistoryScale = 0.01;
  return p;
}

TEST(ConfigurationTest, NamesMatchPaper) {
  EXPECT_STREQ(configurationName(Configuration::WsPhpDb), "WsPhp-DB");
  EXPECT_STREQ(configurationName(Configuration::WsServletDbSync), "WsServlet-DB(sync)");
  EXPECT_STREQ(configurationName(Configuration::WsServletSepDb), "Ws-Servlet-DB");
  EXPECT_STREQ(configurationName(Configuration::WsServletEjbDb), "Ws-Servlet-EJB-DB");
  EXPECT_EQ(allConfigurations().size(), 6u);
}

TEST(ExperimentTest, PhpAuctionRunsAndMeasures) {
  auto result = runExperiment(smallParams(Configuration::WsPhpDb, App::Auction, 1, 50));
  EXPECT_GT(result.throughputIpm, 100.0);
  EXPECT_GT(result.interactions, 100u);
  EXPECT_GT(result.queries, 0u);
  EXPECT_GT(result.meanResponseSeconds, 0.0);
  // PHP topology: web + db only.
  ASSERT_EQ(result.usage.size(), 2u);
  EXPECT_EQ(result.usage[0].name, "WebServer");
  EXPECT_EQ(result.usage[1].name, "Database");
  EXPECT_GT(result.usage[0].cpuUtilization, 0.0);
  EXPECT_GT(result.usage[1].cpuUtilization, 0.0);
  EXPECT_LT(result.usage[0].cpuUtilization, 1.01);
}

TEST(ExperimentTest, SeparateServletTopologyHasThreeMachines) {
  auto result =
      runExperiment(smallParams(Configuration::WsServletSepDb, App::Auction, 1, 50));
  ASSERT_EQ(result.usage.size(), 3u);
  EXPECT_EQ(result.usage[2].name, "Servlet Container");
  EXPECT_GT(result.usage[2].cpuUtilization, 0.0);
  // AJP traffic crossed the LAN.
  EXPECT_GT(result.traffic.count({"WebServer", "Servlet Container"}), 0u);
}

TEST(ExperimentTest, EjbTopologyHasFourMachines) {
  auto result =
      runExperiment(smallParams(Configuration::WsServletEjbDb, App::Auction, 1, 30));
  ASSERT_EQ(result.usage.size(), 4u);
  EXPECT_EQ(result.usage[3].name, "EJB Server");
  EXPECT_GT(result.usage[3].cpuUtilization, 0.0);
  // RMI and CMP traffic exist.
  EXPECT_GT(result.traffic.count({"Servlet Container", "EJB Server"}), 0u);
  EXPECT_GT(result.traffic.count({"EJB Server", "Database"}), 0u);
}

TEST(ExperimentTest, BookstoreRuns) {
  auto result = runExperiment(smallParams(Configuration::WsPhpDb, App::Bookstore, 1, 30));
  EXPECT_GT(result.throughputIpm, 50.0);
  EXPECT_GT(result.lockAcquisitions, 0u);
  EXPECT_GT(result.databaseBytes, 1'000'000u);
  // Memory accounting present (paper §5.1 reports ~410 MB on the database).
  EXPECT_GT(result.usage[1].memoryBytes, 10'000'000);
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const auto a = runExperiment(smallParams(Configuration::WsPhpDb, App::Auction, 1, 25));
  const auto b = runExperiment(smallParams(Configuration::WsPhpDb, App::Auction, 1, 25));
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_DOUBLE_EQ(a.throughputIpm, b.throughputIpm);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  auto p = smallParams(Configuration::WsPhpDb, App::Auction, 1, 25);
  const auto a = runExperiment(p);
  p.seed = 99;
  const auto b = runExperiment(p);
  EXPECT_NE(a.interactions, b.interactions);
}

TEST(ExperimentTest, ThroughputScalesWithClientsBelowSaturation) {
  auto p = smallParams(Configuration::WsPhpDb, App::Auction, 1, 20);
  const auto r20 = runExperiment(p);
  p.clients = 60;
  const auto r60 = runExperiment(p);
  // Think-time-limited region: throughput ~ linear in clients.
  EXPECT_GT(r60.throughputIpm, r20.throughputIpm * 2.0);
}

TEST(ExperimentTest, SyncConfigurationIssuesNoLockStatements) {
  // Sync servlets keep critical sections in the JVM: the database sees
  // fewer statements per interaction (no LOCK/UNLOCK round trips), though
  // it takes more individual short implicit locks.
  auto p = smallParams(Configuration::WsServletDb, App::Bookstore, 1, 30);
  const auto nonSync = runExperiment(p);
  p.config = Configuration::WsServletDbSync;
  const auto sync = runExperiment(p);
  const double nonSyncPerInteraction =
      static_cast<double>(nonSync.queries) / static_cast<double>(nonSync.interactions);
  const double syncPerInteraction =
      static_cast<double>(sync.queries) / static_cast<double>(sync.interactions);
  EXPECT_GT(nonSyncPerInteraction, syncPerInteraction + 0.3);
}

TEST(ExperimentTest, SweepReturnsOneResultPerPoint) {
  auto p = smallParams(Configuration::WsPhpDb, App::Auction, 1, 10);
  const auto results = sweepClients(p, {10, 30});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[1].throughputIpm, results[0].throughputIpm);
}

TEST(ExperimentTest, MixNamesResolve) {
  EXPECT_STREQ(mixName(App::Bookstore, 1), "shopping");
  EXPECT_STREQ(mixName(App::Bookstore, 2), "ordering");
  EXPECT_STREQ(mixName(App::Auction, 0), "browsing");
  EXPECT_STREQ(mixName(App::Auction, 1), "bidding");
}

TEST(ExperimentTest, BrowsingMixHasNoWrites) {
  auto result = runExperiment(smallParams(Configuration::WsPhpDb, App::Auction, 0, 40));
  EXPECT_EQ(result.readWriteInteractions, 0u);
}

// ----------------------------------------------------------------- workload

TEST(ClientFarmTest, ThinkTimeGovernsThroughput) {
  // At low load, throughput ~= clients / (think + response) with think = 7 s.
  auto p = smallParams(Configuration::WsPhpDb, App::Auction, 1, 70);
  p.measure = 120 * sim::kSecond;
  const auto r = runExperiment(p);
  const double perClientRate = r.throughputIpm / 60.0 / 70.0;  // interactions/s/client
  EXPECT_NEAR(perClientRate, 1.0 / 7.0, 0.03);
}

TEST(ClientFarmTest, ResponseTimesRecorded) {
  auto p = smallParams(Configuration::WsPhpDb, App::Auction, 1, 40);
  const auto r = runExperiment(p);
  EXPECT_GT(r.meanResponseSeconds, 0.001);
  EXPECT_GE(r.p90ResponseSeconds, r.meanResponseSeconds * 0.5);
  EXPECT_LT(r.meanResponseSeconds, 1.0);  // unloaded system answers fast
}

}  // namespace
}  // namespace mwsim::core
