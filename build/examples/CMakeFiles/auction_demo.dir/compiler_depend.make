# Empty compiler generated dependencies file for auction_demo.
# This may be replaced when dependencies are built.
