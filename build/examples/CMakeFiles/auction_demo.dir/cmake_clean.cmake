file(REMOVE_RECURSE
  "CMakeFiles/auction_demo.dir/auction_demo.cpp.o"
  "CMakeFiles/auction_demo.dir/auction_demo.cpp.o.d"
  "auction_demo"
  "auction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
