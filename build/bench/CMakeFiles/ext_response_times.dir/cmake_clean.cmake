file(REMOVE_RECURSE
  "CMakeFiles/ext_response_times.dir/ext_response_times.cpp.o"
  "CMakeFiles/ext_response_times.dir/ext_response_times.cpp.o.d"
  "ext_response_times"
  "ext_response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
