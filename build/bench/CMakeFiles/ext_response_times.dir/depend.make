# Empty dependencies file for ext_response_times.
# This may be replaced when dependencies are built.
