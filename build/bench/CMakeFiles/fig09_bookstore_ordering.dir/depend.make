# Empty dependencies file for fig09_bookstore_ordering.
# This may be replaced when dependencies are built.
