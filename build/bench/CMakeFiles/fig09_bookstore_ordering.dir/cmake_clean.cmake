file(REMOVE_RECURSE
  "CMakeFiles/fig09_bookstore_ordering.dir/fig09_bookstore_ordering.cpp.o"
  "CMakeFiles/fig09_bookstore_ordering.dir/fig09_bookstore_ordering.cpp.o.d"
  "fig09_bookstore_ordering"
  "fig09_bookstore_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bookstore_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
