file(REMOVE_RECURSE
  "CMakeFiles/fig10_bookstore_ordering_cpu.dir/fig10_bookstore_ordering_cpu.cpp.o"
  "CMakeFiles/fig10_bookstore_ordering_cpu.dir/fig10_bookstore_ordering_cpu.cpp.o.d"
  "fig10_bookstore_ordering_cpu"
  "fig10_bookstore_ordering_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bookstore_ordering_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
