# Empty compiler generated dependencies file for fig10_bookstore_ordering_cpu.
# This may be replaced when dependencies are built.
