file(REMOVE_RECURSE
  "CMakeFiles/fig14_auction_browsing_cpu.dir/fig14_auction_browsing_cpu.cpp.o"
  "CMakeFiles/fig14_auction_browsing_cpu.dir/fig14_auction_browsing_cpu.cpp.o.d"
  "fig14_auction_browsing_cpu"
  "fig14_auction_browsing_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_auction_browsing_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
