# Empty compiler generated dependencies file for fig14_auction_browsing_cpu.
# This may be replaced when dependencies are built.
