file(REMOVE_RECURSE
  "CMakeFiles/fig11_auction_bidding.dir/fig11_auction_bidding.cpp.o"
  "CMakeFiles/fig11_auction_bidding.dir/fig11_auction_bidding.cpp.o.d"
  "fig11_auction_bidding"
  "fig11_auction_bidding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_auction_bidding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
