# Empty dependencies file for fig11_auction_bidding.
# This may be replaced when dependencies are built.
