# Empty dependencies file for fig07_bookstore_browsing.
# This may be replaced when dependencies are built.
