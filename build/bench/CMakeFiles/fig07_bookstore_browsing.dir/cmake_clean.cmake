file(REMOVE_RECURSE
  "CMakeFiles/fig07_bookstore_browsing.dir/fig07_bookstore_browsing.cpp.o"
  "CMakeFiles/fig07_bookstore_browsing.dir/fig07_bookstore_browsing.cpp.o.d"
  "fig07_bookstore_browsing"
  "fig07_bookstore_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bookstore_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
