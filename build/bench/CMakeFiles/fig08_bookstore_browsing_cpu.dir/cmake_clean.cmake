file(REMOVE_RECURSE
  "CMakeFiles/fig08_bookstore_browsing_cpu.dir/fig08_bookstore_browsing_cpu.cpp.o"
  "CMakeFiles/fig08_bookstore_browsing_cpu.dir/fig08_bookstore_browsing_cpu.cpp.o.d"
  "fig08_bookstore_browsing_cpu"
  "fig08_bookstore_browsing_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_bookstore_browsing_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
