# Empty dependencies file for fig08_bookstore_browsing_cpu.
# This may be replaced when dependencies are built.
