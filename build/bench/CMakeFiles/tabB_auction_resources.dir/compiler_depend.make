# Empty compiler generated dependencies file for tabB_auction_resources.
# This may be replaced when dependencies are built.
