file(REMOVE_RECURSE
  "CMakeFiles/tabB_auction_resources.dir/tabB_auction_resources.cpp.o"
  "CMakeFiles/tabB_auction_resources.dir/tabB_auction_resources.cpp.o.d"
  "tabB_auction_resources"
  "tabB_auction_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabB_auction_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
