file(REMOVE_RECURSE
  "CMakeFiles/abl_ajp_cost.dir/abl_ajp_cost.cpp.o"
  "CMakeFiles/abl_ajp_cost.dir/abl_ajp_cost.cpp.o.d"
  "abl_ajp_cost"
  "abl_ajp_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ajp_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
