# Empty compiler generated dependencies file for abl_ajp_cost.
# This may be replaced when dependencies are built.
