# Empty dependencies file for tabA_bookstore_resources.
# This may be replaced when dependencies are built.
