file(REMOVE_RECURSE
  "CMakeFiles/tabA_bookstore_resources.dir/tabA_bookstore_resources.cpp.o"
  "CMakeFiles/tabA_bookstore_resources.dir/tabA_bookstore_resources.cpp.o.d"
  "tabA_bookstore_resources"
  "tabA_bookstore_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabA_bookstore_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
