# Empty compiler generated dependencies file for fig06_bookstore_shopping_cpu.
# This may be replaced when dependencies are built.
