file(REMOVE_RECURSE
  "CMakeFiles/fig06_bookstore_shopping_cpu.dir/fig06_bookstore_shopping_cpu.cpp.o"
  "CMakeFiles/fig06_bookstore_shopping_cpu.dir/fig06_bookstore_shopping_cpu.cpp.o.d"
  "fig06_bookstore_shopping_cpu"
  "fig06_bookstore_shopping_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bookstore_shopping_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
