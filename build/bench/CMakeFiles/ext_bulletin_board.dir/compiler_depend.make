# Empty compiler generated dependencies file for ext_bulletin_board.
# This may be replaced when dependencies are built.
