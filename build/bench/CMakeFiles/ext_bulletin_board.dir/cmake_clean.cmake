file(REMOVE_RECURSE
  "CMakeFiles/ext_bulletin_board.dir/ext_bulletin_board.cpp.o"
  "CMakeFiles/ext_bulletin_board.dir/ext_bulletin_board.cpp.o.d"
  "ext_bulletin_board"
  "ext_bulletin_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bulletin_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
