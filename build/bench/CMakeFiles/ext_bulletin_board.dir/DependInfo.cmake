
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_bulletin_board.cpp" "bench/CMakeFiles/ext_bulletin_board.dir/ext_bulletin_board.cpp.o" "gcc" "bench/CMakeFiles/ext_bulletin_board.dir/ext_bulletin_board.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mwsim_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mwsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mwsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mwsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/mwsim_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mwsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mwsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
