# Empty dependencies file for fig05_bookstore_shopping.
# This may be replaced when dependencies are built.
