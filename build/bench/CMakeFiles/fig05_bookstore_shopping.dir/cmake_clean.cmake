file(REMOVE_RECURSE
  "CMakeFiles/fig05_bookstore_shopping.dir/fig05_bookstore_shopping.cpp.o"
  "CMakeFiles/fig05_bookstore_shopping.dir/fig05_bookstore_shopping.cpp.o.d"
  "fig05_bookstore_shopping"
  "fig05_bookstore_shopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bookstore_shopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
