file(REMOVE_RECURSE
  "CMakeFiles/mwsim_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/mwsim_bench_harness.dir/harness.cpp.o.d"
  "libmwsim_bench_harness.a"
  "libmwsim_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsim_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
