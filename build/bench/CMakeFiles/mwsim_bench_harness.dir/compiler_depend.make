# Empty compiler generated dependencies file for mwsim_bench_harness.
# This may be replaced when dependencies are built.
