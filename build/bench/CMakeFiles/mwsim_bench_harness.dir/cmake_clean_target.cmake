file(REMOVE_RECURSE
  "libmwsim_bench_harness.a"
)
