# Empty dependencies file for abl_driver_cost.
# This may be replaced when dependencies are built.
