file(REMOVE_RECURSE
  "CMakeFiles/abl_driver_cost.dir/abl_driver_cost.cpp.o"
  "CMakeFiles/abl_driver_cost.dir/abl_driver_cost.cpp.o.d"
  "abl_driver_cost"
  "abl_driver_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_driver_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
