file(REMOVE_RECURSE
  "CMakeFiles/abl_query_cost.dir/abl_query_cost.cpp.o"
  "CMakeFiles/abl_query_cost.dir/abl_query_cost.cpp.o.d"
  "abl_query_cost"
  "abl_query_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_query_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
