# Empty compiler generated dependencies file for abl_query_cost.
# This may be replaced when dependencies are built.
