file(REMOVE_RECURSE
  "CMakeFiles/fig12_auction_bidding_cpu.dir/fig12_auction_bidding_cpu.cpp.o"
  "CMakeFiles/fig12_auction_bidding_cpu.dir/fig12_auction_bidding_cpu.cpp.o.d"
  "fig12_auction_bidding_cpu"
  "fig12_auction_bidding_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_auction_bidding_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
