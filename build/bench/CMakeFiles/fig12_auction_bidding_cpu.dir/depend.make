# Empty dependencies file for fig12_auction_bidding_cpu.
# This may be replaced when dependencies are built.
