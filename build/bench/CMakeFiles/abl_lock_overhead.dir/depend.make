# Empty dependencies file for abl_lock_overhead.
# This may be replaced when dependencies are built.
