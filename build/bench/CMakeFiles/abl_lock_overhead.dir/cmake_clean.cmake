file(REMOVE_RECURSE
  "CMakeFiles/abl_lock_overhead.dir/abl_lock_overhead.cpp.o"
  "CMakeFiles/abl_lock_overhead.dir/abl_lock_overhead.cpp.o.d"
  "abl_lock_overhead"
  "abl_lock_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lock_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
