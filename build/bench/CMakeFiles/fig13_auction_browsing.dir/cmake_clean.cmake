file(REMOVE_RECURSE
  "CMakeFiles/fig13_auction_browsing.dir/fig13_auction_browsing.cpp.o"
  "CMakeFiles/fig13_auction_browsing.dir/fig13_auction_browsing.cpp.o.d"
  "fig13_auction_browsing"
  "fig13_auction_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_auction_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
