# Empty compiler generated dependencies file for fig13_auction_browsing.
# This may be replaced when dependencies are built.
