# Empty compiler generated dependencies file for mwsim_db.
# This may be replaced when dependencies are built.
