file(REMOVE_RECURSE
  "libmwsim_db.a"
)
