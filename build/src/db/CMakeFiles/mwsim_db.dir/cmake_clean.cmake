file(REMOVE_RECURSE
  "CMakeFiles/mwsim_db.dir/executor.cpp.o"
  "CMakeFiles/mwsim_db.dir/executor.cpp.o.d"
  "CMakeFiles/mwsim_db.dir/lexer.cpp.o"
  "CMakeFiles/mwsim_db.dir/lexer.cpp.o.d"
  "CMakeFiles/mwsim_db.dir/parser.cpp.o"
  "CMakeFiles/mwsim_db.dir/parser.cpp.o.d"
  "CMakeFiles/mwsim_db.dir/table.cpp.o"
  "CMakeFiles/mwsim_db.dir/table.cpp.o.d"
  "CMakeFiles/mwsim_db.dir/value.cpp.o"
  "CMakeFiles/mwsim_db.dir/value.cpp.o.d"
  "libmwsim_db.a"
  "libmwsim_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsim_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
