# Empty dependencies file for mwsim_workload.
# This may be replaced when dependencies are built.
