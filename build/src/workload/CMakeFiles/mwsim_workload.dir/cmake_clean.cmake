file(REMOVE_RECURSE
  "CMakeFiles/mwsim_workload.dir/mix.cpp.o"
  "CMakeFiles/mwsim_workload.dir/mix.cpp.o.d"
  "libmwsim_workload.a"
  "libmwsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
