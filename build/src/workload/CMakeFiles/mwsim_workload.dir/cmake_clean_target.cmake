file(REMOVE_RECURSE
  "libmwsim_workload.a"
)
