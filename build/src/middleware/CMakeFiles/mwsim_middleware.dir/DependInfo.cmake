
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/database_server.cpp" "src/middleware/CMakeFiles/mwsim_middleware.dir/database_server.cpp.o" "gcc" "src/middleware/CMakeFiles/mwsim_middleware.dir/database_server.cpp.o.d"
  "/root/repo/src/middleware/ejb.cpp" "src/middleware/CMakeFiles/mwsim_middleware.dir/ejb.cpp.o" "gcc" "src/middleware/CMakeFiles/mwsim_middleware.dir/ejb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/mwsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mwsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
