file(REMOVE_RECURSE
  "CMakeFiles/mwsim_middleware.dir/database_server.cpp.o"
  "CMakeFiles/mwsim_middleware.dir/database_server.cpp.o.d"
  "CMakeFiles/mwsim_middleware.dir/ejb.cpp.o"
  "CMakeFiles/mwsim_middleware.dir/ejb.cpp.o.d"
  "libmwsim_middleware.a"
  "libmwsim_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsim_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
