# Empty dependencies file for mwsim_middleware.
# This may be replaced when dependencies are built.
