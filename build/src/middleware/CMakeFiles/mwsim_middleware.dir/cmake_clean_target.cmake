file(REMOVE_RECURSE
  "libmwsim_middleware.a"
)
