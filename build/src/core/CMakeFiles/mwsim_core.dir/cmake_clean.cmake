file(REMOVE_RECURSE
  "CMakeFiles/mwsim_core.dir/experiment.cpp.o"
  "CMakeFiles/mwsim_core.dir/experiment.cpp.o.d"
  "libmwsim_core.a"
  "libmwsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
