# Empty dependencies file for mwsim_core.
# This may be replaced when dependencies are built.
