
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/mwsim_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/mwsim_core.dir/experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mwsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mwsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/mwsim_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mwsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mwsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
