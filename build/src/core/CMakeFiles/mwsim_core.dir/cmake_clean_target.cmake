file(REMOVE_RECURSE
  "libmwsim_core.a"
)
