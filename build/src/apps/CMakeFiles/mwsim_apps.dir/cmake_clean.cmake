file(REMOVE_RECURSE
  "CMakeFiles/mwsim_apps.dir/auction/auction.cpp.o"
  "CMakeFiles/mwsim_apps.dir/auction/auction.cpp.o.d"
  "CMakeFiles/mwsim_apps.dir/auction/auction_ejb.cpp.o"
  "CMakeFiles/mwsim_apps.dir/auction/auction_ejb.cpp.o.d"
  "CMakeFiles/mwsim_apps.dir/auction/schema.cpp.o"
  "CMakeFiles/mwsim_apps.dir/auction/schema.cpp.o.d"
  "CMakeFiles/mwsim_apps.dir/bbs/bbs.cpp.o"
  "CMakeFiles/mwsim_apps.dir/bbs/bbs.cpp.o.d"
  "CMakeFiles/mwsim_apps.dir/bbs/schema.cpp.o"
  "CMakeFiles/mwsim_apps.dir/bbs/schema.cpp.o.d"
  "CMakeFiles/mwsim_apps.dir/bookstore/bookstore.cpp.o"
  "CMakeFiles/mwsim_apps.dir/bookstore/bookstore.cpp.o.d"
  "CMakeFiles/mwsim_apps.dir/bookstore/bookstore_ejb.cpp.o"
  "CMakeFiles/mwsim_apps.dir/bookstore/bookstore_ejb.cpp.o.d"
  "CMakeFiles/mwsim_apps.dir/bookstore/schema.cpp.o"
  "CMakeFiles/mwsim_apps.dir/bookstore/schema.cpp.o.d"
  "libmwsim_apps.a"
  "libmwsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
