file(REMOVE_RECURSE
  "libmwsim_apps.a"
)
