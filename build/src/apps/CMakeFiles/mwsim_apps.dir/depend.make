# Empty dependencies file for mwsim_apps.
# This may be replaced when dependencies are built.
