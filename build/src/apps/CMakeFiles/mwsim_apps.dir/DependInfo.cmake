
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/auction/auction.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/auction/auction.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/auction/auction.cpp.o.d"
  "/root/repo/src/apps/auction/auction_ejb.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/auction/auction_ejb.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/auction/auction_ejb.cpp.o.d"
  "/root/repo/src/apps/auction/schema.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/auction/schema.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/auction/schema.cpp.o.d"
  "/root/repo/src/apps/bbs/bbs.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/bbs/bbs.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/bbs/bbs.cpp.o.d"
  "/root/repo/src/apps/bbs/schema.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/bbs/schema.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/bbs/schema.cpp.o.d"
  "/root/repo/src/apps/bookstore/bookstore.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/bookstore/bookstore.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/bookstore/bookstore.cpp.o.d"
  "/root/repo/src/apps/bookstore/bookstore_ejb.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/bookstore/bookstore_ejb.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/bookstore/bookstore_ejb.cpp.o.d"
  "/root/repo/src/apps/bookstore/schema.cpp" "src/apps/CMakeFiles/mwsim_apps.dir/bookstore/schema.cpp.o" "gcc" "src/apps/CMakeFiles/mwsim_apps.dir/bookstore/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/middleware/CMakeFiles/mwsim_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mwsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mwsim_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mwsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
