file(REMOVE_RECURSE
  "libmwsim_sim.a"
)
