file(REMOVE_RECURSE
  "CMakeFiles/mwsim_sim.dir/cpu.cpp.o"
  "CMakeFiles/mwsim_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/mwsim_sim.dir/random.cpp.o"
  "CMakeFiles/mwsim_sim.dir/random.cpp.o.d"
  "CMakeFiles/mwsim_sim.dir/resource.cpp.o"
  "CMakeFiles/mwsim_sim.dir/resource.cpp.o.d"
  "CMakeFiles/mwsim_sim.dir/rwlock.cpp.o"
  "CMakeFiles/mwsim_sim.dir/rwlock.cpp.o.d"
  "CMakeFiles/mwsim_sim.dir/simulation.cpp.o"
  "CMakeFiles/mwsim_sim.dir/simulation.cpp.o.d"
  "libmwsim_sim.a"
  "libmwsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
