# Empty compiler generated dependencies file for mwsim_sim.
# This may be replaced when dependencies are built.
