#include "apps/bbs/bbs.hpp"

#include <stdexcept>

#include "middleware/db_session.hpp"

namespace mwsim::apps::bbs {

using mw::AppContext;
using mw::ClientSession;
using mw::lockSet;
using mw::Page;
using mw::sqlArgs;
using sim::Task;

namespace {

// Page weights: Slashdot-style pages are text-heavy with a modest set of
// topic icons; comment pages grow with the comment count.
constexpr std::size_t kTemplateHtml = 4000;
constexpr std::size_t kStoryRowHtml = 260;
constexpr std::size_t kCommentHtml = 420;
constexpr std::size_t kFormHtml = 2400;
constexpr int kNavImages = 9;
constexpr std::size_t kNavImageBytes = 14'000;

Page listPage(std::size_t rows) {
  Page page;
  page.htmlBytes = kTemplateHtml + rows * kStoryRowHtml;
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  return page;
}

Page formPage() {
  Page page;
  page.htmlBytes = kFormHtml;
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  return page;
}

}  // namespace

Task<> BbsLogic::ensureUser(AppContext& ctx, ClientSession& session) {
  if (session.userId < 0) {
    const std::int64_t id = ctx.rng.uniformInt(1, scale_.users());
    auto r = co_await ctx.query(
        "SELECT u_id, u_password FROM users WHERE u_nickname = ?",
        sqlArgs("reader" + std::to_string(id)));
    session.userId = r.resultSet.empty() ? id : r.resultSet.intAt(0, "u_id");
  }
}

Task<Page> BbsLogic::invoke(std::string_view interaction, AppContext& ctx,
                            ClientSession& session) {
  // ----------------------------------------------------------- home page
  if (interaction == "StoriesOfTheDay") {
    auto r = co_await ctx.query(
        "SELECT s_id, s_title, s_date, s_nb_comments FROM stories "
        "WHERE s_date >= 7998 ORDER BY s_date DESC LIMIT 10");
    if (!r.resultSet.empty()) {
      session.lastItemId = r.resultSet.intAt(
          static_cast<std::size_t>(ctx.rng.uniformInt(
              0, static_cast<std::int64_t>(r.resultSet.rowCount()) - 1)),
          "s_id");
    }
    co_return listPage(r.resultSet.rowCount());
  }

  if (interaction == "BrowseCategories") {
    auto r = co_await ctx.query("SELECT cat_id, cat_name FROM categories");
    session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    co_return listPage(r.resultSet.rowCount());
  }

  if (interaction == "BrowseStoriesByCategory") {
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    auto r = co_await ctx.query(
        "SELECT s_id, s_title, s_date, s_nb_comments FROM stories "
        "WHERE s_category = ? ORDER BY s_date DESC LIMIT 25",
        sqlArgs(session.lastCategoryId));
    if (!r.resultSet.empty()) session.lastItemId = r.resultSet.intAt(0, "s_id");
    co_return listPage(r.resultSet.rowCount());
  }

  if (interaction == "OlderStories") {
    const std::int64_t day = ctx.rng.uniformInt(7000, 7969);
    auto r = co_await ctx.query(
        "SELECT s_id, s_title, s_date FROM old_stories WHERE s_date = ? LIMIT 25",
        sqlArgs(day));
    co_return listPage(r.resultSet.rowCount());
  }

  if (interaction == "ViewStory") {
    std::int64_t story = session.lastItemId;
    if (story <= 0) story = ctx.rng.uniformInt(1, scale_.activeStories);
    auto s = co_await ctx.query("SELECT * FROM stories WHERE s_id = ?", sqlArgs(story));
    std::size_t bodyBytes = 3000;
    std::size_t commentRows = 0;
    if (!s.resultSet.empty()) {
      session.lastItemId = story;
      bodyBytes = static_cast<std::size_t>(s.resultSet.intAt(0, "s_body_bytes"));
      co_await ctx.query("SELECT u_nickname, u_rating FROM users WHERE u_id = ?",
                         sqlArgs(s.resultSet.intAt(0, "s_author")));
      // The full comment tree, joined with commenter names.
      auto comments = co_await ctx.query(
          "SELECT c.c_id, c.c_subject, c.c_body, c.c_rating, u.u_nickname "
          "FROM comments c JOIN users u ON c.c_author = u.u_id "
          "WHERE c.c_story_id = ? ORDER BY c.c_date",
          sqlArgs(story));
      commentRows = comments.resultSet.rowCount();
    }
    Page page;
    page.htmlBytes = kTemplateHtml + bodyBytes + commentRows * kCommentHtml;
    page.imageCount = kNavImages;
    page.imageBytes = kNavImageBytes;
    co_return page;
  }

  if (interaction == "ViewComment") {
    std::int64_t story = session.lastItemId;
    if (story <= 0) story = ctx.rng.uniformInt(1, scale_.activeStories);
    auto r = co_await ctx.query(
        "SELECT c_id, c_subject, c_body, c_rating FROM comments WHERE c_story_id = ? "
        "ORDER BY c_rating DESC LIMIT 10",
        sqlArgs(story));
    Page page;
    page.htmlBytes = kTemplateHtml + r.resultSet.rowCount() * kCommentHtml;
    page.imageCount = kNavImages;
    page.imageBytes = kNavImageBytes;
    co_return page;
  }

  if (interaction == "Search") {
    const std::string needle = "%" + ctx.rng.randomString(3) + "%";
    auto r = co_await ctx.query(
        "SELECT s_id, s_title, s_date FROM stories WHERE s_title LIKE ? "
        "ORDER BY s_date DESC LIMIT 25",
        sqlArgs(needle));
    co_return listPage(r.resultSet.rowCount());
  }

  if (interaction == "AboutMe") {
    co_await ensureUser(ctx, session);
    co_await ctx.query("SELECT * FROM users WHERE u_id = ?", sqlArgs(session.userId));
    auto stories = co_await ctx.query(
        "SELECT s_id, s_title FROM stories WHERE s_author = ? LIMIT 10",
        sqlArgs(session.userId));
    auto comments = co_await ctx.query(
        "SELECT c_id, c_subject FROM comments WHERE c_author = ? LIMIT 10",
        sqlArgs(session.userId));
    co_return listPage(stories.resultSet.rowCount() + comments.resultSet.rowCount());
  }

  // --------------------------------------------------------------- forms
  if (interaction == "RegisterForm" || interaction == "SubmitStoryForm" ||
      interaction == "PostCommentForm" || interaction == "ModerateCommentForm") {
    if (interaction == "PostCommentForm" || interaction == "ModerateCommentForm") {
      std::int64_t story = session.lastItemId;
      if (story <= 0) story = ctx.rng.uniformInt(1, scale_.activeStories);
      session.lastItemId = story;
      co_await ctx.query("SELECT s_title FROM stories WHERE s_id = ?", sqlArgs(story));
    }
    co_return formPage();
  }

  // --------------------------------------------------------------- writes
  if (interaction == "RegisterUser") {
    const std::string nickname =
        "newreader" + std::to_string(ctx.rng.uniformInt(1, 1 << 30));
    auto exists = co_await ctx.query("SELECT u_id FROM users WHERE u_nickname = ?",
                                     sqlArgs(nickname));
    if (exists.resultSet.empty()) {
      auto r = co_await ctx.query(
          "INSERT INTO users (u_nickname, u_password, u_email, u_rating, u_access, "
          "u_creation_date) VALUES (?, ?, ?, ?, ?, ?)",
          sqlArgs(nickname, ctx.rng.randomString(8), nickname + "@example.com", 0, 0,
                  8000));
      session.userId = r.lastInsertId;
    }
    co_return formPage();
  }

  if (interaction == "StoreStory") {
    co_await ensureUser(ctx, session);
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    auto cs = co_await ctx.enterCritical(lockSet().write("stories").write("submissions"));
    auto story = co_await ctx.query(
        "INSERT INTO stories (s_title, s_body, s_body_bytes, s_author, s_category, "
        "s_date, s_nb_comments) VALUES (?, ?, ?, ?, ?, ?, ?)",
        sqlArgs("story " + ctx.rng.randomText(30), ctx.rng.randomText(120),
                ctx.rng.uniformInt(1500, 9000), session.userId, session.lastCategoryId,
                8000, 0));
    co_await ctx.query(
        "INSERT INTO submissions (sub_author, sub_title, sub_date, sub_category) "
        "VALUES (?, ?, ?, ?)",
        sqlArgs(session.userId, "story", 8000, session.lastCategoryId));
    co_await ctx.leaveCritical(std::move(cs));
    session.lastItemId = story.lastInsertId;
    co_return formPage();
  }

  if (interaction == "StoreComment") {
    co_await ensureUser(ctx, session);
    std::int64_t story = session.lastItemId;
    if (story <= 0) story = ctx.rng.uniformInt(1, scale_.activeStories);
    auto cs = co_await ctx.enterCritical(lockSet().write("comments").write("stories"));
    co_await ctx.query(
        "INSERT INTO comments (c_story_id, c_author, c_parent, c_date, c_rating, "
        "c_subject, c_body) VALUES (?, ?, ?, ?, ?, ?, ?)",
        sqlArgs(story, session.userId, 0, 8000, 0, "re: " + ctx.rng.randomText(12),
                ctx.rng.randomText(60)));
    co_await ctx.query(
        "UPDATE stories SET s_nb_comments = s_nb_comments + 1 WHERE s_id = ?",
        sqlArgs(story));
    co_await ctx.leaveCritical(std::move(cs));
    co_return formPage();
  }

  if (interaction == "StoreModeratorLog") {
    co_await ensureUser(ctx, session);
    std::int64_t story = session.lastItemId;
    if (story <= 0) story = ctx.rng.uniformInt(1, scale_.activeStories);
    auto comment = co_await ctx.query(
        "SELECT c_id, c_rating FROM comments WHERE c_story_id = ? LIMIT 1",
        sqlArgs(story));
    if (!comment.resultSet.empty()) {
      const std::int64_t commentId = comment.resultSet.intAt(0, "c_id");
      const std::int64_t rating = ctx.rng.uniformInt(-1, 1);
      auto cs = co_await ctx.enterCritical(
          lockSet().write("comments").write("moderator_log"));
      co_await ctx.query("UPDATE comments SET c_rating = c_rating + ? WHERE c_id = ?",
                         sqlArgs(rating, commentId));
      co_await ctx.query(
          "INSERT INTO moderator_log (ml_moderator, ml_comment_id, ml_rating, ml_date) "
          "VALUES (?, ?, ?, ?)",
          sqlArgs(session.userId, commentId, rating, 8000));
      co_await ctx.leaveCritical(std::move(cs));
    }
    co_return formPage();
  }

  throw std::runtime_error("bbs: unknown interaction " + std::string(interaction));
}

// -------------------------------------------------------------- EJB variant

Task<Page> BbsEjbLogic::invoke(std::string_view interaction, mw::EjbContext& ctx,
                               ClientSession& session) {
  mw::EntityManager& em = ctx.em;

  auto ensureUser = [&](ClientSession& s) -> Task<> {
    if (s.userId < 0) {
      const std::int64_t id = ctx.rng.uniformInt(1, scale_.users());
      auto found = co_await em.finder("SELECT u_id FROM users WHERE u_nickname = ?",
                                      sqlArgs("reader" + std::to_string(id)), "users");
      if (!found.empty()) {
        s.userId = (co_await em.get(found.front(), "u_id")).asInt();
      } else {
        s.userId = id;
      }
    }
  };

  if (interaction == "StoriesOfTheDay" || interaction == "BrowseStoriesByCategory" ||
      interaction == "OlderStories" || interaction == "Search") {
    std::vector<mw::EntityManager::Handle> stories;
    if (interaction == "BrowseStoriesByCategory") {
      if (session.lastCategoryId <= 0) {
        session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
      }
      stories = co_await em.finder(
          "SELECT s_id FROM stories WHERE s_category = ? ORDER BY s_date DESC LIMIT 25",
          sqlArgs(session.lastCategoryId), "stories");
    } else if (interaction == "OlderStories") {
      stories = co_await em.finder(
          "SELECT s_id FROM old_stories WHERE s_date = ? LIMIT 25",
          sqlArgs(ctx.rng.uniformInt(7000, 7969)), "old_stories");
    } else if (interaction == "Search") {
      stories = co_await em.finder(
          "SELECT s_id FROM stories WHERE s_title LIKE ? LIMIT 25",
          sqlArgs("%" + ctx.rng.randomString(3) + "%"), "stories");
    } else {
      stories = co_await em.finder(
          "SELECT s_id FROM stories WHERE s_date >= 7998 ORDER BY s_date DESC LIMIT 10",
          sqlArgs(), "stories");
    }
    for (auto h : stories) {
      (void)co_await em.get(h, "s_title");
      (void)co_await em.get(h, "s_date");
      (void)co_await em.get(h, "s_nb_comments");
    }
    if (!stories.empty()) {
      session.lastItemId = (co_await em.get(stories.front(), "s_id")).asInt();
    }
    co_return listPage(stories.size());
  }

  if (interaction == "BrowseCategories") {
    auto cats = co_await em.finder("SELECT cat_id FROM categories", sqlArgs(),
                                   "categories");
    for (auto h : cats) (void)co_await em.get(h, "cat_name");
    session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    co_return listPage(cats.size());
  }

  if (interaction == "ViewStory" || interaction == "ViewComment") {
    std::int64_t storyId = session.lastItemId;
    if (storyId <= 0) storyId = ctx.rng.uniformInt(1, scale_.activeStories);
    session.lastItemId = storyId;
    std::size_t bodyBytes = 3000;
    auto story = co_await em.find("stories", db::Value(storyId));
    std::size_t rows = 0;
    if (story) {
      (void)co_await em.get(*story, "s_title");
      bodyBytes = static_cast<std::size_t>(
          (co_await em.get(*story, "s_body_bytes")).asInt());
      auto comments = co_await em.finder(
          "SELECT c_id FROM comments WHERE c_story_id = ? ORDER BY c_date",
          sqlArgs(storyId), "comments");
      for (auto h : comments) {
        (void)co_await em.get(h, "c_subject");
        (void)co_await em.get(h, "c_body");
        auto author = co_await em.find("users", co_await em.get(h, "c_author"));
        if (author) (void)co_await em.get(*author, "u_nickname");
        ++rows;
      }
    }
    Page page;
    page.htmlBytes = kTemplateHtml + bodyBytes + rows * kCommentHtml;
    page.imageCount = kNavImages;
    page.imageBytes = kNavImageBytes;
    co_return page;
  }

  if (interaction == "AboutMe") {
    co_await ensureUser(session);
    auto me = co_await em.find("users", db::Value(session.userId));
    if (me) (void)co_await em.get(*me, "u_rating");
    auto mine = co_await em.finder(
        "SELECT c_id FROM comments WHERE c_author = ? LIMIT 10", sqlArgs(session.userId),
        "comments");
    for (auto h : mine) (void)co_await em.get(h, "c_subject");
    co_return listPage(mine.size());
  }

  if (interaction == "RegisterForm" || interaction == "SubmitStoryForm" ||
      interaction == "PostCommentForm" || interaction == "ModerateCommentForm") {
    co_return formPage();
  }

  if (interaction == "RegisterUser") {
    std::vector<std::string> cols{"u_nickname", "u_password", "u_email",
                                  "u_rating",   "u_access",  "u_creation_date"};
    const std::string nickname =
        "newreader" + std::to_string(ctx.rng.uniformInt(1, 1 << 30));
    auto user = co_await em.create(
        "users", std::move(cols),
        sqlArgs(nickname, ctx.rng.randomString(8), nickname + "@example.com", 0, 0,
                8000));
    session.userId = (co_await em.get(user, "u_id")).asInt();
    co_return formPage();
  }

  if (interaction == "StoreStory") {
    co_await ensureUser(session);
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    std::vector<std::string> cols{"s_title", "s_body", "s_body_bytes", "s_author",
                                  "s_category", "s_date", "s_nb_comments"};
    auto story = co_await em.create(
        "stories", std::move(cols),
        sqlArgs("story " + ctx.rng.randomText(30), ctx.rng.randomText(120),
                ctx.rng.uniformInt(1500, 9000), session.userId, session.lastCategoryId,
                8000, 0));
    session.lastItemId = (co_await em.get(story, "s_id")).asInt();
    co_return formPage();
  }

  if (interaction == "StoreComment" || interaction == "StoreModeratorLog") {
    co_await ensureUser(session);
    std::int64_t storyId = session.lastItemId;
    if (storyId <= 0) storyId = ctx.rng.uniformInt(1, scale_.activeStories);
    if (interaction == "StoreComment") {
      std::vector<std::string> cols{"c_story_id", "c_author", "c_parent", "c_date",
                                    "c_rating",   "c_subject", "c_body"};
      (void)co_await em.create(
          "comments", std::move(cols),
          sqlArgs(storyId, session.userId, 0, 8000, 0,
                  "re: " + ctx.rng.randomText(12), ctx.rng.randomText(60)));
      auto story = co_await em.find("stories", db::Value(storyId));
      if (story) {
        const auto nb = co_await em.get(*story, "s_nb_comments");
        co_await em.set(*story, "s_nb_comments", db::Value(nb.asInt() + 1));
      }
    } else {
      auto comments = co_await em.finder(
          "SELECT c_id FROM comments WHERE c_story_id = ? LIMIT 1", sqlArgs(storyId),
          "comments");
      if (!comments.empty()) {
        const auto rating = co_await em.get(comments.front(), "c_rating");
        co_await em.set(comments.front(), "c_rating", db::Value(rating.asInt() + 1));
        std::vector<std::string> cols{"ml_moderator", "ml_comment_id", "ml_rating",
                                      "ml_date"};
        const auto commentId = co_await em.get(comments.front(), "c_id");
        (void)co_await em.create("moderator_log", std::move(cols),
                                 sqlArgs(session.userId, commentId.asInt(), 1, 8000));
      }
    }
    co_return formPage();
  }

  throw std::runtime_error("bbs-ejb: unknown interaction " + std::string(interaction));
}

// -------------------------------------------------------------------- mixes

wl::MixMatrix mixMatrix(Mix mix) {
  const std::vector<std::string> states{
      "StoriesOfTheDay", "BrowseCategories", "BrowseStoriesByCategory",
      "OlderStories",    "ViewStory",        "ViewComment",
      "Search",          "AboutMe",          "RegisterForm",
      "RegisterUser",    "SubmitStoryForm",  "StoreStory",
      "PostCommentForm", "StoreComment",     "ModerateCommentForm",
      "StoreModeratorLog"};
  std::vector<bool> readWrite(states.size(), false);
  for (const char* w : {"RegisterUser", "StoreStory", "StoreComment",
                        "StoreModeratorLog"}) {
    readWrite[wl::MixBuilder("tmp", states, std::vector<double>(states.size(), 1.0),
                             std::vector<bool>(states.size(), false))
                  .index(w)] = true;
  }

  std::vector<double> weights;
  std::string name;
  if (mix == Mix::Browsing) {
    name = "browsing";
    weights = {18, 7, 16, 6, 30, 10, 6, 4, 0, 0, 0, 0, 0, 0, 0, 0};
  } else {
    name = "submission";
    weights = {14, 5, 13, 4, 24, 7, 4, 3, 1.6, 1.3, 2.6, 2.0, 7.0, 5.6, 1.8, 1.4};
  }

  wl::MixBuilder builder(name, states, weights, readWrite);
  builder.follow("BrowseCategories", "BrowseStoriesByCategory", 0.70)
      .follow("BrowseStoriesByCategory", "ViewStory", 0.55)
      .follow("StoriesOfTheDay", "ViewStory", 0.45);
  if (mix == Mix::Submission) {
    builder.follow("RegisterForm", "RegisterUser", 0.80)
        .follow("SubmitStoryForm", "StoreStory", 0.70)
        .follow("PostCommentForm", "StoreComment", 0.75)
        .follow("ModerateCommentForm", "StoreModeratorLog", 0.75)
        .follow("ViewStory", "PostCommentForm", 0.18);
  }
  return builder.build(/*initialState=*/0);
}

}  // namespace mwsim::apps::bbs
