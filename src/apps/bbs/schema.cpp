#include "apps/bbs/schema.hpp"

#include "db/schema.hpp"

namespace mwsim::apps::bbs {

using db::SchemaBuilder;
using db::Table;
using db::Value;

namespace {

db::TableSchema storySchema(const char* name) {
  return SchemaBuilder(name)
      .intCol("s_id").primaryKey(true)
      .stringCol("s_title")
      .stringCol("s_body")
      .intCol("s_body_bytes")  // rendered size of the full story text
      .intCol("s_author").indexed()
      .intCol("s_category").indexed()
      .intCol("s_date").indexed()
      .intCol("s_nb_comments")
      .build();
}

db::TableSchema commentSchema(const char* name) {
  return SchemaBuilder(name)
      .intCol("c_id").primaryKey(true)
      .intCol("c_story_id").indexed()
      .intCol("c_author").indexed()
      .intCol("c_parent")
      .intCol("c_date")
      .intCol("c_rating")
      .stringCol("c_subject")
      .stringCol("c_body")
      .build();
}

}  // namespace

void createSchema(db::Database& database) {
  database.createTable(SchemaBuilder("users")
                           .intCol("u_id").primaryKey(true)
                           .stringCol("u_nickname").indexed()
                           .stringCol("u_password")
                           .stringCol("u_email")
                           .intCol("u_rating")
                           .intCol("u_access")
                           .intCol("u_creation_date")
                           .build());
  database.createTable(SchemaBuilder("categories")
                           .intCol("cat_id").primaryKey()
                           .stringCol("cat_name")
                           .build());
  database.createTable(storySchema("stories"));
  database.createTable(storySchema("old_stories"));
  database.createTable(commentSchema("comments"));
  database.createTable(commentSchema("old_comments"));
  database.createTable(SchemaBuilder("submissions")
                           .intCol("sub_id").primaryKey(true)
                           .intCol("sub_author")
                           .stringCol("sub_title")
                           .intCol("sub_date")
                           .intCol("sub_category")
                           .build());
  database.createTable(SchemaBuilder("moderator_log")
                           .intCol("ml_id").primaryKey(true)
                           .intCol("ml_moderator")
                           .intCol("ml_comment_id")
                           .intCol("ml_rating")
                           .intCol("ml_date")
                           .build());
}

void populate(db::Database& database, const Scale& scale, sim::Rng& rng) {
  Table& categories = database.table("categories");
  for (int i = 1; i <= scale.categories; ++i) {
    categories.insert({Value(i), Value("topic" + std::to_string(i))});
  }

  Table& users = database.table("users");
  const std::int64_t userCount = scale.users();
  for (std::int64_t i = 1; i <= userCount; ++i) {
    users.insert({Value(), Value("reader" + std::to_string(i)),
                  Value(rng.randomString(8)),
                  Value("reader" + std::to_string(i) + "@example.com"),
                  Value(rng.uniformInt(-5, 50)), Value(rng.bernoulli(0.02) ? 1 : 0),
                  Value(rng.uniformInt(0, 4000))});
  }

  auto fillStories = [&](Table& stories, Table& comments, std::int64_t count,
                         int dateLo, int dateHi) {
    for (std::int64_t i = 1; i <= count; ++i) {
      const int nbComments = static_cast<int>(
          rng.uniformInt(0, 2 * scale.commentsPerStory));
      const std::int64_t id = stories.insert(
          {Value(), Value("story " + rng.randomText(30)), Value(rng.randomText(120)),
           Value(rng.uniformInt(1'500, 9'000)), Value(rng.uniformInt(1, userCount)),
           Value(rng.uniformInt(1, scale.categories)),
           Value(rng.uniformInt(dateLo, dateHi)), Value(nbComments)});
      // Comments are generated only for active stories (old comments are
      // reached one story at a time; a scaled-down archive keeps memory
      // sane without changing per-query work).
      if (&stories == &database.table("stories")) {
        for (int c = 0; c < nbComments; ++c) {
          comments.insert({Value(), Value(id), Value(rng.uniformInt(1, userCount)),
                           Value(0), Value(rng.uniformInt(dateLo, dateHi)),
                           Value(rng.uniformInt(-1, 5)),
                           Value("re: " + rng.randomText(12)),
                           Value(rng.randomText(60))});
        }
      }
    }
  };
  fillStories(database.table("stories"), database.table("comments"),
              scale.activeStories, 7970, 8000);
  fillStories(database.table("old_stories"), database.table("old_comments"),
              scale.oldStories(), 7000, 7969);
}

}  // namespace mwsim::apps::bbs
