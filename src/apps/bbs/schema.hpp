#pragma once

#include <cstdint>

#include "db/database.hpp"
#include "sim/random.hpp"

namespace mwsim::apps::bbs {

/// Database scale for the bulletin-board site (RUBBoS-style, the third
/// benchmark of the authors' WWC-5 paper; the Middleware'03 paper skips it
/// predicting auction-like results — we implement it to test that claim).
///
/// Sizing follows RUBBoS: ~500k users, an active story window plus a large
/// old-story archive, ~10 comments per story.
struct Scale {
  double historyScale = 1.0;
  std::int64_t activeStories = 3'000;
  int categories = 20;
  int commentsPerStory = 10;
  std::int64_t users() const {
    return static_cast<std::int64_t>(500'000 * historyScale);
  }
  std::int64_t oldStories() const {
    return static_cast<std::int64_t>(200'000 * historyScale);
  }
};

/// Creates the tables: users, categories, stories, old_stories, comments,
/// old_comments, submissions, moderator_log.
void createSchema(db::Database& database);

/// Populates the tables at the given scale. Deterministic for a fixed seed.
void populate(db::Database& database, const Scale& scale, sim::Rng& rng);

}  // namespace mwsim::apps::bbs
