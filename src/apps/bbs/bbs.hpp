#pragma once

#include <string_view>

#include "apps/bbs/schema.hpp"
#include "middleware/application.hpp"
#include "middleware/ejb.hpp"
#include "workload/mix.hpp"

namespace mwsim::apps::bbs {

/// Workload mixes per RUBBoS: a read-only browsing mix and a submission mix
/// with ~10 % read-write interactions.
enum class Mix { Browsing, Submission };

wl::MixMatrix mixMatrix(Mix mix);

/// The 15 bulletin-board interactions with explicit SQL (RUBBoS-style),
/// shared between the PHP and servlet tiers.
class BbsLogic final : public mw::SqlBusinessLogic {
 public:
  explicit BbsLogic(const Scale& scale) : scale_(scale) {}

  sim::Task<mw::Page> invoke(std::string_view interaction, mw::AppContext& ctx,
                             mw::ClientSession& session) override;

 private:
  sim::Task<> ensureUser(mw::AppContext& ctx, mw::ClientSession& session);

  Scale scale_;
};

/// Session-facade/CMP variant for the Ws-Servlet-EJB-DB configuration.
class BbsEjbLogic final : public mw::EjbBusinessLogic {
 public:
  explicit BbsEjbLogic(const Scale& scale) : scale_(scale) {}

  sim::Task<mw::Page> invoke(std::string_view interaction, mw::EjbContext& ctx,
                             mw::ClientSession& session) override;

 private:
  Scale scale_;
};

}  // namespace mwsim::apps::bbs
