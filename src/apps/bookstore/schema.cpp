#include "apps/bookstore/schema.hpp"

#include "db/schema.hpp"

namespace mwsim::apps::bookstore {

using db::ColumnType;
using db::SchemaBuilder;
using db::Table;
using db::Value;

void createSchema(db::Database& database) {
  database.createTable(SchemaBuilder("countries")
                           .intCol("co_id").primaryKey()
                           .stringCol("co_name")
                           .build());
  database.createTable(SchemaBuilder("authors")
                           .intCol("a_id").primaryKey(true)
                           .stringCol("a_fname")
                           .stringCol("a_lname").indexed()
                           .build());
  database.createTable(SchemaBuilder("items")
                           .intCol("i_id").primaryKey(true)
                           .stringCol("i_title")
                           .intCol("i_a_id").indexed()
                           .intCol("i_subject").indexed()
                           .intCol("i_pub_date").indexed()
                           .doubleCol("i_cost")
                           .doubleCol("i_srp")
                           .intCol("i_stock")
                           .intCol("i_related1")
                           .intCol("i_related2")
                           .intCol("i_related3")
                           .intCol("i_related4")
                           .intCol("i_thumbnail_bytes")
                           .intCol("i_image_bytes")
                           .build());
  database.createTable(SchemaBuilder("customers")
                           .intCol("c_id").primaryKey(true)
                           .stringCol("c_uname").indexed()
                           .stringCol("c_passwd")
                           .stringCol("c_fname")
                           .stringCol("c_lname")
                           .stringCol("c_email")
                           .intCol("c_since")
                           .doubleCol("c_discount")
                           .intCol("c_addr_id")
                           .build());
  database.createTable(SchemaBuilder("address")
                           .intCol("addr_id").primaryKey(true)
                           .stringCol("addr_street")
                           .stringCol("addr_city")
                           .stringCol("addr_state")
                           .stringCol("addr_zip")
                           .intCol("addr_co_id")
                           .build());
  database.createTable(SchemaBuilder("orders")
                           .intCol("o_id").primaryKey(true)
                           .intCol("o_c_id").indexed()
                           .intCol("o_date").indexed()
                           .doubleCol("o_total")
                           .stringCol("o_ship_type")
                           .intCol("o_ship_date")
                           .stringCol("o_status")
                           .intCol("o_addr_id")
                           .build());
  database.createTable(SchemaBuilder("order_line")
                           .intCol("ol_id").primaryKey(true)
                           .intCol("ol_o_id").indexed()
                           .intCol("ol_i_id")
                           .intCol("ol_qty")
                           .doubleCol("ol_discount")
                           .build());
  // TPC-W requires persistent shopping carts; the paper's table list omits
  // them but its read-write cart interaction implies them (see DESIGN.md).
  database.createTable(SchemaBuilder("shopping_cart")
                           .intCol("sc_id").primaryKey(true)
                           .intCol("sc_c_id")
                           .intCol("sc_date")
                           .build());
  database.createTable(SchemaBuilder("shopping_cart_line")
                           .intCol("scl_id").primaryKey(true)
                           .intCol("scl_sc_id").indexed()
                           .intCol("scl_i_id")
                           .intCol("scl_qty")
                           .build());
  database.createTable(SchemaBuilder("credit_info")
                           .intCol("ci_id").primaryKey(true)
                           .intCol("ci_o_id").indexed()
                           .stringCol("ci_type")
                           .stringCol("ci_num")
                           .intCol("ci_expiry")
                           .stringCol("ci_auth")
                           .build());
}

void populate(db::Database& database, const Scale& scale, sim::Rng& rng) {
  // Data generation goes straight through Table::insert: populating ~1M
  // rows through the SQL layer would only re-parse the same statements.
  Table& countries = database.table("countries");
  for (std::int64_t i = 1; i <= scale.countries; ++i) {
    countries.insert({Value(i), Value("country" + std::to_string(i))});
  }

  Table& authors = database.table("authors");
  for (std::int64_t i = 1; i <= scale.authors; ++i) {
    authors.insert({Value(), Value(rng.randomString(8)), Value(rng.randomString(10))});
  }

  Table& items = database.table("items");
  for (std::int64_t i = 1; i <= scale.items; ++i) {
    const double srp = rng.uniformReal(5.0, 120.0);
    items.insert({
        Value(),
        Value("title " + rng.randomText(40)),
        Value(rng.uniformInt(1, scale.authors)),
        Value(rng.uniformInt(0, scale.subjects - 1)),
        Value(rng.uniformInt(0, 4000)),  // pub date: days since epoch-ish
        Value(srp * rng.uniformReal(0.5, 1.0)),
        Value(srp),
        Value(rng.uniformInt(10, 30)),
        Value(rng.uniformInt(1, scale.items)),
        Value(rng.uniformInt(1, scale.items)),
        Value(rng.uniformInt(1, scale.items)),
        Value(rng.uniformInt(1, scale.items)),
        Value(rng.uniformInt(1'000, 6'000)),    // thumbnail size on disk
        Value(rng.uniformInt(8'000, 30'000)),   // full image size on disk
    });
  }

  Table& customers = database.table("customers");
  Table& address = database.table("address");
  const std::int64_t customerCount = scale.customers();
  for (std::int64_t i = 1; i <= customerCount; ++i) {
    address.insert({Value(), Value(rng.randomString(16)), Value(rng.randomString(10)),
                    Value(rng.randomString(2)), Value(std::to_string(10000 + i % 89999)),
                    Value(rng.uniformInt(1, scale.countries))});
    customers.insert({
        Value(),
        Value("user" + std::to_string(i)),
        Value(rng.randomString(8)),
        Value(rng.randomString(7)),
        Value(rng.randomString(9)),
        Value("user" + std::to_string(i) + "@example.com"),
        Value(rng.uniformInt(0, 4000)),
        Value(rng.uniformReal(0.0, 0.5)),
        Value(i),  // address created just above has addr_id == i
    });
  }

  // Order history: ~2.6 lines per order, recent orders clustered so the
  // best-sellers window (last 3,333 orders) is meaningful.
  Table& orders = database.table("orders");
  Table& orderLine = database.table("order_line");
  Table& creditInfo = database.table("credit_info");
  const std::int64_t orderCount = scale.initialOrders();
  for (std::int64_t o = 1; o <= orderCount; ++o) {
    const std::int64_t customer = rng.uniformInt(1, customerCount);
    const std::int64_t date = 4000 + o / 100;  // monotone-ish order dates
    orders.insert({Value(), Value(customer), Value(date),
                   Value(rng.uniformReal(10.0, 500.0)), Value("AIR"), Value(date + 3),
                   Value("SHIPPED"), Value(customer)});
    const int lines = static_cast<int>(rng.uniformInt(1, 4));
    for (int l = 0; l < lines; ++l) {
      orderLine.insert({Value(), Value(o), Value(rng.uniformInt(1, scale.items)),
                        Value(rng.uniformInt(1, 5)), Value(rng.uniformReal(0.0, 0.3))});
    }
    creditInfo.insert({Value(), Value(o), Value("VISA"),
                       Value(std::to_string(4'000'000'000'000'000 + o)),
                       Value(rng.uniformInt(5000, 6000)), Value(rng.randomString(12))});
  }
}

}  // namespace mwsim::apps::bookstore
