#pragma once

#include <cstdint>

#include "db/database.hpp"
#include "sim/random.hpp"

namespace mwsim::apps::bookstore {

/// Database scale for the online bookstore (paper §3.1: 10,000 items and
/// 288,000 customers; ~350 MB). `scale` shrinks the customer/order history
/// for faster benching without changing per-query work — items stay at
/// 10,000 because they drive the scan-heavy queries (see DESIGN.md).
struct Scale {
  double scale = 1.0;
  std::int64_t items = 10'000;
  std::int64_t authors = 2'500;  // TPC-W: items / 4
  std::int64_t customers() const { return static_cast<std::int64_t>(288'000 * scale); }
  std::int64_t initialOrders() const {
    return static_cast<std::int64_t>(0.9 * static_cast<double>(customers()));
  }
  std::int64_t countries = 92;
  int subjects = 24;  // TPC-W subject categories
};

/// Creates the paper's eight tables: customers, address, orders,
/// order_line, credit_info, items, authors, countries.
void createSchema(db::Database& database);

/// Populates the tables at the given scale. Deterministic for a fixed seed.
void populate(db::Database& database, const Scale& scale, sim::Rng& rng);

}  // namespace mwsim::apps::bookstore
