#include "apps/bookstore/bookstore.hpp"

#include <stdexcept>

#include "middleware/db_session.hpp"

namespace mwsim::apps::bookstore {

using mw::AppContext;
using mw::sqlArgs;
using mw::ClientSession;
using mw::lockSet;
using mw::Page;
using sim::Task;

namespace {

// ---- page-weight constants (bytes) ----------------------------------------
// Calibrated so the average interaction moves ~45 KB on the wire, matching
// the paper's observation of <3.5 Mb/s of mostly-image traffic at ~8.7
// interactions/s (§5.1).
constexpr std::size_t kTemplateHtml = 4200;  // banner, nav bar, footer markup
constexpr std::size_t kRowHtml = 170;        // one result row in a listing
constexpr std::size_t kFormHtml = 2600;      // search / order-inquiry forms
constexpr int kNavImages = 7;                // buttons + logos on every page
constexpr std::size_t kNavImageBytes = 7300;
constexpr int kListThumbnails = 5;  // thumbnails shown on listing pages

Page listPage(std::size_t rows, int extraImages, std::size_t extraImageBytes) {
  Page page;
  page.htmlBytes = kTemplateHtml + rows * kRowHtml;
  page.imageCount = kNavImages + extraImages;
  page.imageBytes = kNavImageBytes + extraImageBytes;
  return page;
}

}  // namespace

Task<Page> BookstoreLogic::invoke(std::string_view interaction, AppContext& ctx,
                                  ClientSession& session) {
  if (interaction == "Home") co_return co_await home(ctx, session);
  if (interaction == "NewProducts") co_return co_await newProducts(ctx, session);
  if (interaction == "BestSellers") co_return co_await bestSellers(ctx, session);
  if (interaction == "ProductDetail") co_return co_await productDetail(ctx, session);
  if (interaction == "SearchRequest") co_return co_await searchRequest(ctx, session);
  if (interaction == "SearchResults") co_return co_await searchResults(ctx, session);
  if (interaction == "ShoppingCart") co_return co_await shoppingCart(ctx, session);
  if (interaction == "CustomerRegistration")
    co_return co_await customerRegistration(ctx, session);
  if (interaction == "BuyRequest") co_return co_await buyRequest(ctx, session);
  if (interaction == "BuyConfirm") co_return co_await buyConfirm(ctx, session);
  if (interaction == "OrderInquiry") co_return co_await orderInquiry(ctx, session);
  if (interaction == "OrderDisplay") co_return co_await orderDisplay(ctx, session);
  if (interaction == "AdminRequest") co_return co_await adminRequest(ctx, session);
  if (interaction == "AdminConfirm") co_return co_await adminConfirm(ctx, session);
  throw std::runtime_error("bookstore: unknown interaction " +
                           std::string(interaction));
}

Task<> BookstoreLogic::ensureCustomer(AppContext& ctx, ClientSession& session) {
  if (session.userId < 0) {
    session.userId = ctx.rng.uniformInt(1, scale_.customers());
  }
  co_return;
}

void BookstoreLogic::ensureCartItem(AppContext& ctx, ClientSession& session) {
  if (session.cart.empty()) {
    session.cart.emplace_back(ctx.rng.uniformInt(1, scale_.items),
                              static_cast<int>(ctx.rng.uniformInt(1, 3)));
  }
}

// --------------------------------------------------------------------- Home

Task<Page> BookstoreLogic::home(AppContext& ctx, ClientSession& session) {
  co_await ensureCustomer(ctx, session);
  // Multi-statement read: MyISAM consistency requires bracketing in
  // LOCK TABLES (dropped entirely by the sync configurations).
  auto cs = co_await ctx.enterCritical(lockSet().read("customers").read("items"));
  co_await ctx.query("SELECT c_fname, c_lname FROM customers WHERE c_id = ?",
                     sqlArgs(session.userId));

  // Promotional area: the related items of a random item (TPC-W home page).
  const std::int64_t anchor = ctx.rng.uniformInt(1, scale_.items);
  auto related = co_await ctx.query(
      "SELECT i_related1, i_related2, i_related3, i_related4 FROM items WHERE i_id = ?",
      sqlArgs(anchor));
  std::size_t promoThumbBytes = 0;
  int promos = 0;
  if (!related.resultSet.empty()) {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::int64_t rel = related.resultSet.at(0, c).asInt();
      auto item = co_await ctx.query(
          "SELECT i_title, i_thumbnail_bytes FROM items WHERE i_id = ?", sqlArgs(rel));
      if (!item.resultSet.empty()) {
        promoThumbBytes +=
            static_cast<std::size_t>(item.resultSet.intAt(0, "i_thumbnail_bytes"));
        ++promos;
      }
    }
  }
  co_await ctx.leaveCritical(std::move(cs));
  session.lastItemId = anchor;
  Page page = listPage(4, promos, promoThumbBytes);
  co_return page;
}

// ------------------------------------------------------------- New Products

Task<Page> BookstoreLogic::newProducts(AppContext& ctx, ClientSession& session) {
  const std::int64_t subject = ctx.rng.uniformInt(0, scale_.subjects - 1);
  auto r = co_await ctx.query(
      "SELECT i.i_id, i.i_title, i.i_pub_date, i.i_srp, i.i_thumbnail_bytes, "
      "a.a_fname, a.a_lname "
      "FROM items i JOIN authors a ON i.i_a_id = a.a_id "
      "WHERE i.i_subject = ? ORDER BY i.i_pub_date DESC LIMIT 50",
      sqlArgs(subject));
  std::size_t thumbBytes = 0;
  const std::size_t shown =
      std::min<std::size_t>(kListThumbnails, r.resultSet.rowCount());
  for (std::size_t i = 0; i < shown; ++i) {
    thumbBytes += static_cast<std::size_t>(r.resultSet.intAt(i, "i_thumbnail_bytes"));
  }
  if (!r.resultSet.empty()) {
    session.lastItemId = r.resultSet.intAt(
        static_cast<std::size_t>(ctx.rng.uniformInt(0, static_cast<std::int64_t>(
                                                           r.resultSet.rowCount() - 1))),
        "i_id");
  }
  co_return listPage(r.resultSet.rowCount(), static_cast<int>(shown), thumbBytes);
}

// -------------------------------------------------------------- Best Sellers

Task<Page> BookstoreLogic::bestSellers(AppContext& ctx, ClientSession& session) {
  // TPC-W: best sellers among the most recent 3,333 orders.
  auto maxOrder = co_await ctx.query("SELECT MAX(o_id) AS m FROM orders");
  const std::int64_t horizon =
      maxOrder.resultSet.empty() || maxOrder.resultSet.at(0, "m").isNull()
          ? 0
          : maxOrder.resultSet.intAt(0, "m") - 3333;
  auto r = co_await ctx.query(
      "SELECT ol.ol_i_id AS i_id, i.i_title AS i_title, a.a_fname AS a_fname, "
      "a.a_lname AS a_lname, SUM(ol.ol_qty) AS total "
      "FROM order_line ol JOIN items i ON ol.ol_i_id = i.i_id "
      "JOIN authors a ON i.i_a_id = a.a_id "
      "WHERE ol.ol_o_id >= ? GROUP BY ol.ol_i_id ORDER BY total DESC LIMIT 50",
      sqlArgs(horizon));
  if (!r.resultSet.empty()) {
    session.lastItemId = r.resultSet.intAt(0, "i_id");
  }
  co_return listPage(r.resultSet.rowCount(), 0, 0);
}

// ------------------------------------------------------------ Product Detail

Task<Page> BookstoreLogic::productDetail(AppContext& ctx, ClientSession& session) {
  std::int64_t item = session.lastItemId;
  if (item <= 0) item = ctx.rng.uniformInt(1, scale_.items);
  auto r = co_await ctx.query("SELECT * FROM items WHERE i_id = ?", sqlArgs(item));
  if (r.resultSet.empty()) {
    item = ctx.rng.uniformInt(1, scale_.items);
    r = co_await ctx.query("SELECT * FROM items WHERE i_id = ?", sqlArgs(item));
  }
  const std::int64_t author = r.resultSet.intAt(0, "i_a_id");
  co_await ctx.query("SELECT a_fname, a_lname FROM authors WHERE a_id = ?", sqlArgs(author));
  session.lastItemId = item;

  Page page;
  page.htmlBytes = kTemplateHtml + 1500;
  page.imageCount = kNavImages + 1;
  page.imageBytes = kNavImageBytes +
                    static_cast<std::size_t>(r.resultSet.intAt(0, "i_image_bytes"));
  co_return page;
}

// ------------------------------------------------------------ Search Request

Task<Page> BookstoreLogic::searchRequest(AppContext&, ClientSession&) {
  // Form only; no database access (the paper's one static-content
  // interaction is the search form).
  Page page;
  page.htmlBytes = kFormHtml;
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  co_return page;
}

// ------------------------------------------------------------ Search Results

Task<Page> BookstoreLogic::searchResults(AppContext& ctx, ClientSession& session) {
  const int kind = static_cast<int>(ctx.rng.uniformInt(0, 2));
  db::ExecResult r;
  if (kind == 0) {
    // By author last-name prefix: the authors scan is the driving table.
    const std::string prefix = ctx.rng.randomString(2) + "%";
    r = co_await ctx.query(
        "SELECT i.i_id, i.i_title, i.i_srp, a.a_fname, a.a_lname "
        "FROM authors a JOIN items i ON i.i_a_id = a.a_id "
        "WHERE a.a_lname LIKE ? ORDER BY i.i_title LIMIT 50",
        sqlArgs(prefix));
  } else if (kind == 1) {
    // By title substring: full scan over items (the heavy search).
    const std::string needle = "%" + ctx.rng.randomString(3) + "%";
    r = co_await ctx.query(
        "SELECT i.i_id, i.i_title, i.i_srp, a.a_fname, a.a_lname "
        "FROM items i JOIN authors a ON i.i_a_id = a.a_id "
        "WHERE i.i_title LIKE ? ORDER BY i.i_title LIMIT 50",
        sqlArgs(needle));
  } else {
    // By subject: indexed.
    const std::int64_t subject = ctx.rng.uniformInt(0, scale_.subjects - 1);
    r = co_await ctx.query(
        "SELECT i.i_id, i.i_title, i.i_srp, a.a_fname, a.a_lname "
        "FROM items i JOIN authors a ON i.i_a_id = a.a_id "
        "WHERE i.i_subject = ? ORDER BY i.i_title LIMIT 50",
        sqlArgs(subject));
  }
  if (!r.resultSet.empty()) {
    session.lastItemId = r.resultSet.intAt(0, "i_id");
  }
  co_return listPage(r.resultSet.rowCount(), 0, 0);
}

// ------------------------------------------------------------- Shopping Cart

Task<Page> BookstoreLogic::shoppingCart(AppContext& ctx, ClientSession& session) {
  // Mutate the session's view of the cart first.
  bool adding = session.cart.empty() || ctx.rng.bernoulli(0.7);
  std::int64_t item = 0;
  int qty = 0;
  if (adding) {
    item = session.lastItemId > 0 ? session.lastItemId
                                  : ctx.rng.uniformInt(1, scale_.items);
    qty = static_cast<int>(ctx.rng.uniformInt(1, 3));
    session.cart.emplace_back(item, qty);
  } else {
    item = session.cart.back().first;
    qty = static_cast<int>(ctx.rng.uniformInt(1, 5));
    session.cart.back().second = qty;
  }
  if (session.cart.size() > 8) session.cart.erase(session.cart.begin());

  // TPC-W carts are persistent: create/update the cart rows and re-read
  // price/stock for every line, atomically (write critical section — this
  // is the highest-rate lock section in the shopping and ordering mixes).
  auto cs = co_await ctx.enterCritical(lockSet()
                                           .write("shopping_cart")
                                           .write("shopping_cart_line")
                                           .read("items"));
  if (session.cartId < 0) {
    auto cart = co_await ctx.query(
        "INSERT INTO shopping_cart (sc_c_id, sc_date) VALUES (?, ?)",
        sqlArgs(session.userId, 8000));
    session.cartId = cart.lastInsertId;
  }
  if (adding) {
    co_await ctx.query(
        "INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)",
        sqlArgs(session.cartId, item, qty));
  } else {
    co_await ctx.query(
        "UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_sc_id = ? AND scl_i_id = ?",
        sqlArgs(qty, session.cartId, item));
  }
  auto lines = co_await ctx.query(
      "SELECT scl.scl_i_id, scl.scl_qty, i.i_title, i.i_cost, i.i_srp, i.i_stock, "
      "i.i_thumbnail_bytes FROM shopping_cart_line scl "
      "JOIN items i ON scl.scl_i_id = i.i_id WHERE scl.scl_sc_id = ?",
      sqlArgs(session.cartId));
  co_await ctx.leaveCritical(std::move(cs));

  std::size_t thumbBytes = 0;
  for (std::size_t i = 0; i < lines.resultSet.rowCount(); ++i) {
    thumbBytes += static_cast<std::size_t>(lines.resultSet.intAt(i, "i_thumbnail_bytes"));
  }
  co_return listPage(lines.resultSet.rowCount(),
                     static_cast<int>(lines.resultSet.rowCount()), thumbBytes);
}

// ---------------------------------------------------- Customer Registration

Task<Page> BookstoreLogic::customerRegistration(AppContext& ctx, ClientSession& session) {
  Page page;
  if (ctx.rng.bernoulli(0.8)) {
    // Returning customer: look up by user name.
    const std::int64_t id = ctx.rng.uniformInt(1, scale_.customers());
    auto r = co_await ctx.query("SELECT * FROM customers WHERE c_uname = ?",
                                sqlArgs("user" + std::to_string(id)));
    if (!r.resultSet.empty()) session.userId = r.resultSet.intAt(0, "c_id");
  } else {
    // New customer: insert address then customer.
    auto addr = co_await ctx.query(
        "INSERT INTO address (addr_street, addr_city, addr_state, addr_zip, addr_co_id) "
        "VALUES (?, ?, ?, ?, ?)",
        sqlArgs(ctx.rng.randomString(16), ctx.rng.randomString(10), ctx.rng.randomString(2),
             std::to_string(ctx.rng.uniformInt(10000, 99999)),
             ctx.rng.uniformInt(1, scale_.countries)));
    const std::string uname = "newuser" + std::to_string(ctx.rng.uniformInt(1, 1 << 30));
    auto cust = co_await ctx.query(
        "INSERT INTO customers (c_uname, c_passwd, c_fname, c_lname, c_email, c_since, "
        "c_discount, c_addr_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        sqlArgs(uname, ctx.rng.randomString(8), ctx.rng.randomString(7),
             ctx.rng.randomString(9), uname + "@example.com",
             ctx.rng.uniformInt(4000, 4100), ctx.rng.uniformReal(0.0, 0.5),
             addr.lastInsertId));
    session.userId = cust.lastInsertId;
  }
  page.htmlBytes = kFormHtml + 900;
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  co_return page;
}

// ---------------------------------------------------------------- Buy Request

Task<Page> BookstoreLogic::buyRequest(AppContext& ctx, ClientSession& session) {
  co_await ensureCustomer(ctx, session);
  auto cs = co_await ctx.enterCritical(lockSet()
                                           .read("customers")
                                           .read("address")
                                           .read("items")
                                           .read("shopping_cart_line"));
  auto cust = co_await ctx.query(
      "SELECT c_fname, c_lname, c_discount, c_addr_id FROM customers WHERE c_id = ?",
      sqlArgs(session.userId));
  if (!cust.resultSet.empty()) {
    co_await ctx.query("SELECT * FROM address WHERE addr_id = ?",
                       sqlArgs(cust.resultSet.intAt(0, "c_addr_id")));
  }
  std::size_t rows = 0;
  if (session.cartId >= 0) {
    auto lines = co_await ctx.query(
        "SELECT scl.scl_i_id, scl.scl_qty, i.i_title, i.i_cost FROM shopping_cart_line "
        "scl JOIN items i ON scl.scl_i_id = i.i_id WHERE scl.scl_sc_id = ?",
        sqlArgs(session.cartId));
    rows = lines.resultSet.rowCount();
  }
  co_await ctx.leaveCritical(std::move(cs));
  Page page = listPage(rows, 0, 0);
  page.secure = true;
  co_return page;
}

// ---------------------------------------------------------------- Buy Confirm

Task<Page> BookstoreLogic::buyConfirm(AppContext& ctx, ClientSession& session) {
  co_await ensureCustomer(ctx, session);
  ensureCartItem(ctx, session);

  // The purchase transaction. With MyISAM there are no transactions, so the
  // implementation brackets the whole multi-statement sequence in
  // LOCK TABLES ... WRITE (or Java monitors in the sync configurations).
  // This is the paper's principal source of database lock contention.
  auto cs = co_await ctx.enterCritical(lockSet()
                                           .write("orders")
                                           .write("order_line")
                                           .write("credit_info")
                                           .write("items")
                                           .write("shopping_cart_line"));

  // Read the cart with consistent prices and stock.
  std::vector<std::pair<std::int64_t, int>> lines = session.cart;
  if (session.cartId >= 0) {
    auto cartRows = co_await ctx.query(
        "SELECT scl_i_id, scl_qty FROM shopping_cart_line WHERE scl_sc_id = ?",
        sqlArgs(session.cartId));
    if (!cartRows.resultSet.empty()) {
      lines.clear();
      for (std::size_t i = 0; i < cartRows.resultSet.rowCount(); ++i) {
        lines.emplace_back(cartRows.resultSet.intAt(i, "scl_i_id"),
                           static_cast<int>(cartRows.resultSet.intAt(i, "scl_qty")));
      }
    }
  }

  double total = 0.0;
  for (const auto& [item, qty] : lines) {
    auto r = co_await ctx.query("SELECT i_cost, i_stock FROM items WHERE i_id = ?",
                                sqlArgs(item));
    total += (r.resultSet.empty() ? 10.0 : r.resultSet.doubleAt(0, "i_cost")) * qty;
  }

  auto order = co_await ctx.query(
      "INSERT INTO orders (o_c_id, o_date, o_total, o_ship_type, o_ship_date, o_status, "
      "o_addr_id) VALUES (?, ?, ?, ?, ?, ?, ?)",
      sqlArgs(session.userId, 8000, total, "AIR", 8003, "PENDING", session.userId));
  const std::int64_t orderId = order.lastInsertId;

  for (const auto& [item, qty] : lines) {
    co_await ctx.query(
        "INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty, ol_discount) VALUES "
        "(?, ?, ?, ?)",
        sqlArgs(orderId, item, qty, 0.0));
    co_await ctx.query(
        "UPDATE items SET i_stock = i_stock - ? WHERE i_id = ? AND i_stock >= ?",
        sqlArgs(qty, item, qty));
  }

  co_await ctx.query(
      "INSERT INTO credit_info (ci_o_id, ci_type, ci_num, ci_expiry, ci_auth) VALUES "
      "(?, ?, ?, ?, ?)",
      sqlArgs(orderId, "VISA", std::to_string(4'000'000'000'000'000 + orderId), 6000,
              ctx.rng.randomString(12)));

  if (session.cartId >= 0) {
    co_await ctx.query("DELETE FROM shopping_cart_line WHERE scl_sc_id = ?",
                       sqlArgs(session.cartId));
  }

  co_await ctx.leaveCritical(std::move(cs));

  session.lastOrderId = orderId;
  const std::size_t bought = lines.size();
  session.cart.clear();
  Page page = listPage(bought, 0, 0);
  page.secure = true;
  co_return page;
}

// -------------------------------------------------------------- Order Inquiry

Task<Page> BookstoreLogic::orderInquiry(AppContext&, ClientSession&) {
  Page page;
  page.htmlBytes = kFormHtml;
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  page.secure = true;
  co_return page;
}

// -------------------------------------------------------------- Order Display

Task<Page> BookstoreLogic::orderDisplay(AppContext& ctx, ClientSession& session) {
  co_await ensureCustomer(ctx, session);
  auto cs = co_await ctx.enterCritical(lockSet()
                                           .read("orders")
                                           .read("order_line")
                                           .read("items")
                                           .read("credit_info"));
  auto order = co_await ctx.query(
      "SELECT * FROM orders WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1",
      sqlArgs(session.userId));
  std::size_t rows = 0;
  if (!order.resultSet.empty()) {
    const std::int64_t orderId = order.resultSet.intAt(0, "o_id");
    auto lines = co_await ctx.query(
        "SELECT ol.ol_i_id, ol.ol_qty, ol.ol_discount, i.i_title, i.i_cost "
        "FROM order_line ol JOIN items i ON ol.ol_i_id = i.i_id WHERE ol.ol_o_id = ?",
        sqlArgs(orderId));
    rows = lines.resultSet.rowCount();
    co_await ctx.query("SELECT ci_type, ci_expiry FROM credit_info WHERE ci_o_id = ?",
                       sqlArgs(orderId));
  }
  co_await ctx.leaveCritical(std::move(cs));
  Page page = listPage(rows, 0, 0);
  page.secure = true;
  co_return page;
}

// -------------------------------------------------------------- Admin Request

Task<Page> BookstoreLogic::adminRequest(AppContext& ctx, ClientSession& session) {
  std::int64_t item = session.lastItemId;
  if (item <= 0) item = ctx.rng.uniformInt(1, scale_.items);
  auto r = co_await ctx.query("SELECT * FROM items WHERE i_id = ?", sqlArgs(item));
  session.lastItemId = item;
  Page page;
  page.htmlBytes = kFormHtml + 1200;
  page.imageCount = kNavImages + 1;
  page.imageBytes = kNavImageBytes +
                    (r.resultSet.empty()
                         ? 0
                         : static_cast<std::size_t>(r.resultSet.intAt(0, "i_image_bytes")));
  page.secure = true;
  co_return page;
}

// -------------------------------------------------------------- Admin Confirm

Task<Page> BookstoreLogic::adminConfirm(AppContext& ctx, ClientSession& session) {
  std::int64_t item = session.lastItemId;
  if (item <= 0) item = ctx.rng.uniformInt(1, scale_.items);

  // TPC-W admin update: set new price/image and recompute the related-items
  // list from recent purchase history. The recompute is a heavy read that
  // runs inside the same critical section as the items update.
  auto cs = co_await ctx.enterCritical(
      lockSet().write("items").read("orders").read("order_line"));

  auto maxOrder = co_await ctx.query("SELECT MAX(o_id) AS m FROM orders");
  const std::int64_t horizon =
      maxOrder.resultSet.empty() || maxOrder.resultSet.at(0, "m").isNull()
          ? 0
          : maxOrder.resultSet.intAt(0, "m") - 3333;
  auto related = co_await ctx.query(
      "SELECT ol.ol_i_id AS i_id, SUM(ol.ol_qty) AS total FROM order_line ol "
      "WHERE ol.ol_o_id >= ? GROUP BY ol.ol_i_id ORDER BY total DESC LIMIT 4",
      sqlArgs(horizon));
  std::int64_t rel[4] = {1, 1, 1, 1};
  for (std::size_t i = 0; i < related.resultSet.rowCount() && i < 4; ++i) {
    rel[i] = related.resultSet.intAt(i, "i_id");
  }
  co_await ctx.query(
      "UPDATE items SET i_cost = ?, i_related1 = ?, i_related2 = ?, i_related3 = ?, "
      "i_related4 = ?, i_pub_date = ? WHERE i_id = ?",
      sqlArgs(ctx.rng.uniformReal(5.0, 120.0), rel[0], rel[1], rel[2], rel[3], 8000, item));

  co_await ctx.leaveCritical(std::move(cs));

  Page page;
  page.htmlBytes = kTemplateHtml + 1200;
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  page.secure = true;
  co_return page;
}

// ------------------------------------------------------------------- Mixes

wl::MixMatrix mixMatrix(Mix mix) {
  const std::vector<std::string> states{
      "Home",          "NewProducts",  "BestSellers",          "ProductDetail",
      "SearchRequest", "SearchResults", "ShoppingCart",        "CustomerRegistration",
      "BuyRequest",    "BuyConfirm",    "OrderInquiry",        "OrderDisplay",
      "AdminRequest",  "AdminConfirm"};
  // The paper's split (§3.1): six interactions are read-only (home, new
  // products, best sellers, product detail, and the two search
  // interactions); the other eight form the read-write/ordering class.
  const std::vector<bool> readWrite{false, false, false, false, false, false, true,
                                    true,  true,  true,  true,  true,  true,  true};

  // Occurrence rates follow TPC-W's WIPSb (browsing), WIPS (shopping) and
  // WIPSo (ordering) interaction frequencies.
  std::vector<double> weights;
  std::string name;
  switch (mix) {
    case Mix::Browsing:
      name = "browsing";
      weights = {29.00, 11.00, 11.00, 21.00, 12.00, 11.00, 2.00,
                 0.82,  0.75,  0.69,  0.30,  0.25,  0.10,  0.09};
      break;
    case Mix::Shopping:
      name = "shopping";
      weights = {16.00, 5.00, 5.00, 17.00, 20.00, 17.00, 11.60,
                 3.00,  2.60, 1.20, 0.75,  0.25,  0.10,  0.09};
      break;
    case Mix::Ordering:
      name = "ordering";
      weights = {9.12,  0.46,  0.46,  12.35, 14.53, 13.08, 13.53,
                 12.86, 12.73, 10.18, 0.25,  0.22,  0.12,  0.11};
      break;
  }

  wl::MixBuilder builder(name, states, weights, readWrite);
  // Navigation structure: forms flow to their results, purchases flow
  // through registration -> buy request -> buy confirm.
  builder.follow("SearchRequest", "SearchResults", 0.85)
      .follow("CustomerRegistration", "BuyRequest", 0.80)
      .follow("BuyRequest", "BuyConfirm", 0.60)
      .follow("OrderInquiry", "OrderDisplay", 0.60)
      .follow("AdminRequest", "AdminConfirm", 0.75)
      .follow("ShoppingCart", "CustomerRegistration", 0.25);
  return builder.build(/*initialState=*/0);
}

}  // namespace mwsim::apps::bookstore
