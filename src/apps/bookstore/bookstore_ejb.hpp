#pragma once

#include <string_view>

#include "apps/bookstore/schema.hpp"
#include "middleware/ejb.hpp"

namespace mwsim::apps::bookstore {

/// The bookstore's business logic as session-facade methods over CMP entity
/// beans (paper Figure 3). Functionally equivalent to BookstoreLogic, but
/// every row is reached through findByPrimaryKey/finder activations and
/// every update flows through set()+commit — producing the flood of short
/// queries the paper blames for the EJB configuration's low throughput.
class BookstoreEjbLogic final : public mw::EjbBusinessLogic {
 public:
  explicit BookstoreEjbLogic(const Scale& scale) : scale_(scale) {}

  sim::Task<mw::Page> invoke(std::string_view interaction, mw::EjbContext& ctx,
                             mw::ClientSession& session) override;

 private:
  /// Pure-CMP aggregation is impractical; the facade walks the order lines
  /// of this many recent orders, activating one entity bean per line (see
  /// DESIGN.md).
  static constexpr std::int64_t kBestSellerWindow = 2500;

  Scale scale_;
};

}  // namespace mwsim::apps::bookstore
