#pragma once

#include <string_view>

#include "apps/bookstore/schema.hpp"
#include "middleware/application.hpp"
#include "workload/mix.hpp"

namespace mwsim::apps::bookstore {

/// Workload mixes from TPC-W (paper §3.1): the browsing mix is 95 %
/// read-only, shopping 80 %, ordering 50 %.
enum class Mix { Browsing, Shopping, Ordering };

/// Builds the Markov matrix for a mix. Occurrence rates follow the TPC-W
/// WIPSb/WIPS/WIPSo interaction frequencies; navigation structure (search
/// form -> results, buy request -> confirm, ...) is enforced with
/// transition overrides. See DESIGN.md for the substitution note.
wl::MixMatrix mixMatrix(Mix mix);

/// The 14 TPC-W interactions implemented with explicit SQL — shared verbatim
/// between the PHP and servlet tiers, as in the paper. Critical sections go
/// through AppContext::enterCritical, so the same code runs with
/// `LOCK TABLES` (PHP / non-sync servlets) or Java monitors (sync servlets).
class BookstoreLogic final : public mw::SqlBusinessLogic {
 public:
  explicit BookstoreLogic(const Scale& scale) : scale_(scale) {}

  sim::Task<mw::Page> invoke(std::string_view interaction, mw::AppContext& ctx,
                             mw::ClientSession& session) override;

 private:
  sim::Task<mw::Page> home(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> newProducts(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> bestSellers(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> productDetail(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> searchRequest(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> searchResults(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> shoppingCart(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> customerRegistration(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> buyRequest(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> buyConfirm(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> orderInquiry(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> orderDisplay(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> adminRequest(mw::AppContext& ctx, mw::ClientSession& session);
  sim::Task<mw::Page> adminConfirm(mw::AppContext& ctx, mw::ClientSession& session);

  sim::Task<> ensureCustomer(mw::AppContext& ctx, mw::ClientSession& session);
  void ensureCartItem(mw::AppContext& ctx, mw::ClientSession& session);

  Scale scale_;
};

}  // namespace mwsim::apps::bookstore
