#include "apps/bookstore/bookstore_ejb.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "middleware/db_session.hpp"

namespace mwsim::apps::bookstore {

using mw::sqlArgs;
using mw::ClientSession;
using mw::EjbContext;
using mw::EntityManager;
using mw::Page;
using sim::Task;

namespace {

constexpr std::size_t kTemplateHtml = 4200;
constexpr std::size_t kRowHtml = 170;
constexpr std::size_t kFormHtml = 2600;
constexpr int kNavImages = 7;
constexpr std::size_t kNavImageBytes = 7300;

Page listPage(std::size_t rows, int extraImages, std::size_t extraImageBytes) {
  Page page;
  page.htmlBytes = kTemplateHtml + rows * kRowHtml;
  page.imageCount = kNavImages + extraImages;
  page.imageBytes = kNavImageBytes + extraImageBytes;
  return page;
}

Task<> ensureCustomer(EjbContext& ctx, ClientSession& session, const Scale& scale) {
  if (session.userId < 0) {
    session.userId = ctx.rng.uniformInt(1, scale.customers());
  }
  co_return;
}

/// Loads an item entity plus its author, reading the display fields — the
/// standard per-row bean walk used by all listing facades.
Task<std::size_t> showItem(EjbContext& ctx, EntityManager::Handle item) {
  (void)co_await ctx.em.get(item, "i_title");
  (void)co_await ctx.em.get(item, "i_srp");
  const auto authorId = co_await ctx.em.get(item, "i_a_id");
  auto author = co_await ctx.em.find("authors", authorId);
  if (author) {
    (void)co_await ctx.em.get(*author, "a_fname");
    (void)co_await ctx.em.get(*author, "a_lname");
  }
  const auto thumb = co_await ctx.em.get(item, "i_thumbnail_bytes");
  co_return static_cast<std::size_t>(thumb.asInt());
}

}  // namespace

Task<Page> BookstoreEjbLogic::invoke(std::string_view interaction, EjbContext& ctx,
                                     ClientSession& session) {
  EntityManager& em = ctx.em;

  if (interaction == "Home") {
    co_await ensureCustomer(ctx, session, scale_);
    auto customer = co_await em.find("customers", db::Value(session.userId));
    if (customer) {
      (void)co_await em.get(*customer, "c_fname");
      (void)co_await em.get(*customer, "c_lname");
    }
    const std::int64_t anchorId = ctx.rng.uniformInt(1, scale_.items);
    auto anchor = co_await em.find("items", db::Value(anchorId));
    std::size_t thumbs = 0;
    int promos = 0;
    if (anchor) {
      for (const char* field : {"i_related1", "i_related2", "i_related3", "i_related4"}) {
        const auto rel = co_await em.get(*anchor, field);
        auto relItem = co_await em.find("items", rel);
        if (relItem) {
          (void)co_await em.get(*relItem, "i_title");
          thumbs += static_cast<std::size_t>(
              (co_await em.get(*relItem, "i_thumbnail_bytes")).asInt());
          ++promos;
        }
      }
    }
    session.lastItemId = anchorId;
    co_return listPage(4, promos, thumbs);
  }

  if (interaction == "NewProducts") {
    const std::int64_t subject = ctx.rng.uniformInt(0, scale_.subjects - 1);
    auto items = co_await em.finder(
        "SELECT i_id FROM items WHERE i_subject = ? ORDER BY i_pub_date DESC LIMIT 50",
        sqlArgs(subject), "items");
    std::size_t thumbs = 0;
    int shown = 0;
    for (auto h : items) {
      const std::size_t t = co_await showItem(ctx, h);
      if (shown < 5) {
        thumbs += t;
        ++shown;
      }
    }
    if (!items.empty()) {
      session.lastItemId = (co_await em.get(items.front(), "i_id")).asInt();
    }
    co_return listPage(items.size(), shown, thumbs);
  }

  if (interaction == "BestSellers") {
    // CMP cannot aggregate; the facade walks recent order-line entities and
    // aggregates in Java — the paper's "too many short queries" pathology.
    auto maxOrder = co_await ctx.db.execute(
        "SELECT MAX(o_id) AS m FROM orders");  // bean-managed helper read
    const std::int64_t horizon =
        maxOrder.resultSet.at(0, "m").isNull()
            ? 0
            : maxOrder.resultSet.intAt(0, "m") - kBestSellerWindow;
    auto lines = co_await em.finder(
        "SELECT ol_id FROM order_line WHERE ol_o_id >= ?", sqlArgs(horizon),
        "order_line");
    std::map<std::int64_t, std::int64_t> quantities;
    for (auto h : lines) {
      const auto item = co_await em.get(h, "ol_i_id");
      const auto qty = co_await em.get(h, "ol_qty");
      quantities[item.asInt()] += qty.asInt();
    }
    std::vector<std::pair<std::int64_t, std::int64_t>> ranked(quantities.begin(),
                                                              quantities.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (ranked.size() > 50) ranked.resize(50);
    for (const auto& [itemId, qty] : ranked) {
      (void)qty;
      auto item = co_await em.find("items", db::Value(itemId));
      if (item) (void)co_await showItem(ctx, *item);
    }
    if (!ranked.empty()) session.lastItemId = ranked.front().first;
    co_return listPage(ranked.size(), 0, 0);
  }

  if (interaction == "ProductDetail" || interaction == "AdminRequest") {
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.items);
    auto item = co_await em.find("items", db::Value(itemId));
    if (!item) {
      itemId = ctx.rng.uniformInt(1, scale_.items);
      item = co_await em.find("items", db::Value(itemId));
    }
    session.lastItemId = itemId;
    std::size_t imageBytes = 0;
    if (item) {
      (void)co_await showItem(ctx, *item);
      (void)co_await em.get(*item, "i_cost");
      (void)co_await em.get(*item, "i_stock");
      imageBytes = static_cast<std::size_t>(
          (co_await em.get(*item, "i_image_bytes")).asInt());
    }
    Page page;
    page.htmlBytes = kTemplateHtml + 1500;
    page.imageCount = kNavImages + 1;
    page.imageBytes = kNavImageBytes + imageBytes;
    page.secure = interaction == "AdminRequest";
    co_return page;
  }

  if (interaction == "SearchRequest" || interaction == "OrderInquiry") {
    Page page;
    page.htmlBytes = kFormHtml;
    page.imageCount = kNavImages;
    page.imageBytes = kNavImageBytes;
    page.secure = interaction == "OrderInquiry";
    co_return page;
  }

  if (interaction == "SearchResults") {
    const int kind = static_cast<int>(ctx.rng.uniformInt(0, 2));
    std::vector<EntityManager::Handle> items;
    if (kind == 0) {
      const std::string prefix = ctx.rng.randomString(2) + "%";
      auto authors = co_await em.finder(
          "SELECT a_id FROM authors WHERE a_lname LIKE ? LIMIT 10", sqlArgs(prefix),
          "authors");
      for (auto a : authors) {
        const auto authorId = co_await em.get(a, "a_id");
        auto byAuthor = co_await em.finder(
            "SELECT i_id FROM items WHERE i_a_id = ? LIMIT 50", sqlArgs(authorId.asInt()),
            "items");
        items.insert(items.end(), byAuthor.begin(), byAuthor.end());
      }
    } else if (kind == 1) {
      const std::string needle = "%" + ctx.rng.randomString(3) + "%";
      items = co_await em.finder(
          "SELECT i_id FROM items WHERE i_title LIKE ? LIMIT 50", sqlArgs(needle), "items");
    } else {
      const std::int64_t subject = ctx.rng.uniformInt(0, scale_.subjects - 1);
      items = co_await em.finder(
          "SELECT i_id FROM items WHERE i_subject = ? ORDER BY i_title LIMIT 50",
          sqlArgs(subject), "items");
    }
    if (items.size() > 50) items.resize(50);
    for (auto h : items) (void)co_await showItem(ctx, h);
    if (!items.empty()) {
      session.lastItemId = (co_await em.get(items.front(), "i_id")).asInt();
    }
    co_return listPage(items.size(), 0, 0);
  }

  if (interaction == "ShoppingCart") {
    if (session.cart.empty() || ctx.rng.bernoulli(0.7)) {
      std::int64_t itemId = session.lastItemId;
      if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.items);
      session.cart.emplace_back(itemId, static_cast<int>(ctx.rng.uniformInt(1, 3)));
    } else {
      session.cart.back().second = static_cast<int>(ctx.rng.uniformInt(1, 5));
    }
    if (session.cart.size() > 8) session.cart.erase(session.cart.begin());
    std::size_t thumbs = 0;
    for (const auto& [itemId, qty] : session.cart) {
      (void)qty;
      auto item = co_await em.find("items", db::Value(itemId));
      if (item) thumbs += co_await showItem(ctx, *item);
    }
    co_return listPage(session.cart.size(), static_cast<int>(session.cart.size()),
                       thumbs);
  }

  if (interaction == "CustomerRegistration") {
    Page page;
    if (ctx.rng.bernoulli(0.8)) {
      const std::int64_t id = ctx.rng.uniformInt(1, scale_.customers());
      auto found = co_await em.finder("SELECT c_id FROM customers WHERE c_uname = ?",
                                      sqlArgs("user" + std::to_string(id)), "customers");
      if (!found.empty()) {
        session.userId = (co_await em.get(found.front(), "c_id")).asInt();
      }
    } else {
      std::vector<std::string> addrCols{"addr_street", "addr_city", "addr_state",
                                        "addr_zip", "addr_co_id"};
      auto addr = co_await em.create(
          "address", std::move(addrCols),
          sqlArgs(ctx.rng.randomString(16), ctx.rng.randomString(10),
               ctx.rng.randomString(2), std::to_string(ctx.rng.uniformInt(10000, 99999)),
               ctx.rng.uniformInt(1, scale_.countries)));
      const auto addrId = co_await em.get(addr, "addr_id");
      const std::string uname =
          "newuser" + std::to_string(ctx.rng.uniformInt(1, 1 << 30));
      std::vector<std::string> custCols{"c_uname", "c_passwd",   "c_fname",
                                        "c_lname", "c_email",    "c_since",
                                        "c_discount", "c_addr_id"};
      auto cust = co_await em.create(
          "customers", std::move(custCols),
          sqlArgs(uname, ctx.rng.randomString(8), ctx.rng.randomString(7),
               ctx.rng.randomString(9), uname + "@example.com",
               ctx.rng.uniformInt(4000, 4100), ctx.rng.uniformReal(0.0, 0.5),
               addrId.asInt()));
      session.userId = (co_await em.get(cust, "c_id")).asInt();
    }
    page.htmlBytes = kFormHtml + 900;
    page.imageCount = kNavImages;
    page.imageBytes = kNavImageBytes;
    co_return page;
  }

  if (interaction == "BuyRequest") {
    co_await ensureCustomer(ctx, session, scale_);
    if (session.cart.empty()) {
      session.cart.emplace_back(ctx.rng.uniformInt(1, scale_.items),
                                static_cast<int>(ctx.rng.uniformInt(1, 3)));
    }
    auto customer = co_await em.find("customers", db::Value(session.userId));
    if (customer) {
      (void)co_await em.get(*customer, "c_fname");
      (void)co_await em.get(*customer, "c_discount");
      const auto addrId = co_await em.get(*customer, "c_addr_id");
      auto addr = co_await em.find("address", addrId);
      if (addr) (void)co_await em.get(*addr, "addr_city");
    }
    for (const auto& [itemId, qty] : session.cart) {
      (void)qty;
      auto item = co_await em.find("items", db::Value(itemId));
      if (item) (void)co_await em.get(*item, "i_cost");
    }
    Page page = listPage(session.cart.size(), 0, 0);
    page.secure = true;
    co_return page;
  }

  if (interaction == "BuyConfirm") {
    co_await ensureCustomer(ctx, session, scale_);
    if (session.cart.empty()) {
      session.cart.emplace_back(ctx.rng.uniformInt(1, scale_.items),
                                static_cast<int>(ctx.rng.uniformInt(1, 3)));
    }
    double total = 0.0;
    for (const auto& [itemId, qty] : session.cart) {
      auto item = co_await em.find("items", db::Value(itemId));
      if (item) {
        total += (co_await em.get(*item, "i_cost")).asDouble() * qty;
        const auto stock = co_await em.get(*item, "i_stock");
        co_await em.set(*item, "i_stock", db::Value(stock.asInt() - qty));
      }
    }
    std::vector<std::string> orderCols{"o_c_id", "o_date",      "o_total", "o_ship_type",
                                       "o_ship_date", "o_status", "o_addr_id"};
    auto order = co_await em.create(
        "orders", std::move(orderCols),
        sqlArgs(session.userId, 8000, total, "AIR", 8003, "PENDING", session.userId));
    const std::int64_t orderId = (co_await em.get(order, "o_id")).asInt();
    for (const auto& [itemId, qty] : session.cart) {
      std::vector<std::string> lineCols{"ol_o_id", "ol_i_id", "ol_qty", "ol_discount"};
      (void)co_await em.create("order_line", std::move(lineCols),
                               sqlArgs(orderId, itemId, qty, 0.0));
    }
    std::vector<std::string> ciCols{"ci_o_id", "ci_type", "ci_num", "ci_expiry",
                                    "ci_auth"};
    (void)co_await em.create(
        "credit_info", std::move(ciCols),
        sqlArgs(orderId, "VISA", std::to_string(4'000'000'000'000'000 + orderId), 6000,
             ctx.rng.randomString(12)));
    session.lastOrderId = orderId;
    const std::size_t rows = session.cart.size();
    session.cart.clear();
    Page page = listPage(rows, 0, 0);
    page.secure = true;
    co_return page;
  }

  if (interaction == "OrderDisplay") {
    co_await ensureCustomer(ctx, session, scale_);
    auto orders = co_await em.finder(
        "SELECT o_id FROM orders WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1",
        sqlArgs(session.userId), "orders");
    std::size_t rows = 0;
    if (!orders.empty()) {
      const auto orderId = co_await em.get(orders.front(), "o_id");
      auto lines = co_await em.finder("SELECT ol_id FROM order_line WHERE ol_o_id = ?",
                                      sqlArgs(orderId.asInt()), "order_line");
      rows = lines.size();
      for (auto h : lines) {
        const auto itemId = co_await em.get(h, "ol_i_id");
        auto item = co_await em.find("items", itemId);
        if (item) (void)co_await em.get(*item, "i_title");
      }
      auto credit = co_await em.finder("SELECT ci_id FROM credit_info WHERE ci_o_id = ?",
                                       sqlArgs(orderId.asInt()), "credit_info");
      if (!credit.empty()) (void)co_await em.get(credit.front(), "ci_type");
    }
    Page page = listPage(rows, 0, 0);
    page.secure = true;
    co_return page;
  }

  if (interaction == "AdminConfirm") {
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.items);
    auto item = co_await em.find("items", db::Value(itemId));
    if (item) {
      auto maxOrder = co_await ctx.db.execute("SELECT MAX(o_id) AS m FROM orders");
      const std::int64_t horizon =
          maxOrder.resultSet.at(0, "m").isNull()
              ? 0
              : maxOrder.resultSet.intAt(0, "m") - kBestSellerWindow;
      auto lines = co_await em.finder("SELECT ol_id FROM order_line WHERE ol_o_id >= ?",
                                      sqlArgs(horizon), "order_line");
      std::map<std::int64_t, std::int64_t> quantities;
      for (auto h : lines) {
        const auto lineItem = co_await em.get(h, "ol_i_id");
        const auto qty = co_await em.get(h, "ol_qty");
        quantities[lineItem.asInt()] += qty.asInt();
      }
      std::vector<std::pair<std::int64_t, std::int64_t>> ranked(quantities.begin(),
                                                                quantities.end());
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      const char* fields[4] = {"i_related1", "i_related2", "i_related3", "i_related4"};
      for (int i = 0; i < 4; ++i) {
        const std::int64_t rel = i < static_cast<int>(ranked.size())
                                     ? ranked[static_cast<std::size_t>(i)].first
                                     : 1;
        co_await em.set(*item, fields[i], db::Value(rel));
      }
      co_await em.set(*item, "i_cost", db::Value(ctx.rng.uniformReal(5.0, 120.0)));
      co_await em.set(*item, "i_pub_date", db::Value(std::int64_t{8000}));
    }
    Page page;
    page.htmlBytes = kTemplateHtml + 1200;
    page.imageCount = kNavImages;
    page.imageBytes = kNavImageBytes;
    page.secure = true;
    co_return page;
  }

  throw std::runtime_error("bookstore-ejb: unknown interaction " +
                           std::string(interaction));
}

}  // namespace mwsim::apps::bookstore
