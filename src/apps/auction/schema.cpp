#include "apps/auction/schema.hpp"

#include "db/schema.hpp"

namespace mwsim::apps::auction {

using db::SchemaBuilder;
using db::Table;
using db::Value;

namespace {

db::TableSchema itemsSchema(const char* name) {
  return SchemaBuilder(name)
      .intCol("i_id").primaryKey(true)
      .stringCol("i_name")
      .stringCol("i_description")
      .intCol("i_desc_bytes")  // rendered size of the full HTML description
      .intCol("i_seller").indexed()
      .intCol("i_category").indexed()
      .intCol("i_quantity")
      .doubleCol("i_initial_price")
      .doubleCol("i_reserve_price")
      .doubleCol("i_buy_now")
      // Denormalized bid statistics — the paper's §3.2 optimization that
      // avoids "many expensive lookups on the bids table".
      .intCol("i_nb_of_bids")
      .doubleCol("i_max_bid")
      .intCol("i_start_date")
      .intCol("i_end_date").indexed()
      .intCol("i_thumbnail_bytes")
      .build();
}

}  // namespace

void createSchema(db::Database& database) {
  database.createTable(SchemaBuilder("categories")
                           .intCol("c_id").primaryKey()
                           .stringCol("c_name")
                           .build());
  database.createTable(SchemaBuilder("regions")
                           .intCol("r_id").primaryKey()
                           .stringCol("r_name")
                           .build());
  database.createTable(SchemaBuilder("users")
                           .intCol("u_id").primaryKey(true)
                           .stringCol("u_fname")
                           .stringCol("u_lname")
                           .stringCol("u_nickname").indexed()
                           .stringCol("u_password")
                           .stringCol("u_email")
                           .intCol("u_rating")
                           .doubleCol("u_balance")
                           .intCol("u_creation_date")
                           .intCol("u_region").indexed()
                           .build());
  database.createTable(itemsSchema("items"));
  database.createTable(itemsSchema("old_items"));
  database.createTable(SchemaBuilder("bids")
                           .intCol("b_id").primaryKey(true)
                           .intCol("b_user_id").indexed()
                           .intCol("b_item_id").indexed()
                           .intCol("b_qty")
                           .doubleCol("b_bid")
                           .doubleCol("b_max_bid")
                           .intCol("b_date")
                           .build());
  database.createTable(SchemaBuilder("buy_now")
                           .intCol("bn_id").primaryKey(true)
                           .intCol("bn_buyer_id").indexed()
                           .intCol("bn_item_id").indexed()
                           .intCol("bn_qty")
                           .intCol("bn_date")
                           .build());
  database.createTable(SchemaBuilder("comments")
                           .intCol("c_id").primaryKey(true)
                           .intCol("c_from_user_id")
                           .intCol("c_to_user_id").indexed()
                           .intCol("c_item_id").indexed()
                           .intCol("c_rating")
                           .intCol("c_date")
                           .stringCol("c_comment")
                           .build());
  // Sequence table used by the register interactions (paper §3.2 lists it).
  database.createTable(SchemaBuilder("ids")
                           .stringCol("id_name").primaryKey()
                           .intCol("id_value")
                           .build());
}

void populate(db::Database& database, const Scale& scale, sim::Rng& rng) {
  Table& categories = database.table("categories");
  for (int i = 1; i <= scale.categories; ++i) {
    categories.insert({Value(i), Value("category" + std::to_string(i))});
  }
  Table& regions = database.table("regions");
  for (int i = 1; i <= scale.regions; ++i) {
    regions.insert({Value(i), Value("region" + std::to_string(i))});
  }

  Table& users = database.table("users");
  const std::int64_t userCount = scale.users();
  for (std::int64_t i = 1; i <= userCount; ++i) {
    users.insert({Value(), Value(rng.randomString(7)), Value(rng.randomString(9)),
                  Value("nick" + std::to_string(i)), Value(rng.randomString(8)),
                  Value("nick" + std::to_string(i) + "@example.com"),
                  Value(rng.uniformInt(-5, 200)), Value(rng.uniformReal(0.0, 1000.0)),
                  Value(rng.uniformInt(0, 4000)),
                  Value(rng.uniformInt(1, scale.regions))});
  }

  auto fillItems = [&](Table& table, std::int64_t count, int startDateLo,
                       int startDateHi) {
    for (std::int64_t i = 1; i <= count; ++i) {
      const double initial = rng.uniformReal(1.0, 500.0);
      const int nbBids = static_cast<int>(rng.uniformInt(0, 2 * scale.bidsPerItem));
      const int start = static_cast<int>(rng.uniformInt(startDateLo, startDateHi));
      table.insert({Value(),
                    Value("item " + rng.randomText(24)),
                    Value(rng.randomText(80)),
                    Value(rng.uniformInt(2'000, 9'000)),
                    Value(rng.uniformInt(1, userCount)),
                    Value(rng.uniformInt(1, scale.categories)),
                    Value(rng.uniformInt(1, 5)),
                    Value(initial),
                    Value(rng.bernoulli(0.4) ? initial * 1.2 : 0.0),
                    Value(rng.bernoulli(0.1) ? initial * 2.0 : 0.0),
                    Value(nbBids),
                    Value(initial + 2.0 * nbBids),
                    Value(start),
                    Value(start + 7),
                    Value(rng.uniformInt(800, 3'000))});
    }
  };
  // Live auctions end within the coming week (dates in days).
  fillItems(database.table("items"), scale.activeItems, 7993, 8000);
  fillItems(database.table("old_items"), scale.oldItems(), 7000, 7992);

  Table& bids = database.table("bids");
  const std::int64_t bidCount = scale.activeItems * scale.bidsPerItem;
  for (std::int64_t i = 1; i <= bidCount; ++i) {
    const double amount = rng.uniformReal(1.0, 800.0);
    bids.insert({Value(), Value(rng.uniformInt(1, userCount)),
                 Value(rng.uniformInt(1, scale.activeItems)),
                 Value(rng.uniformInt(1, 3)), Value(amount),
                 Value(amount * rng.uniformReal(1.0, 1.3)),
                 Value(rng.uniformInt(7990, 8000))});
  }

  Table& buyNow = database.table("buy_now");
  for (std::int64_t i = 1; i <= scale.buyNows(); ++i) {
    buyNow.insert({Value(), Value(rng.uniformInt(1, userCount)),
                   Value(rng.uniformInt(1, scale.activeItems)),
                   Value(rng.uniformInt(1, 2)), Value(rng.uniformInt(7990, 8000))});
  }

  Table& comments = database.table("comments");
  const std::int64_t commentCount = scale.comments();
  for (std::int64_t i = 1; i <= commentCount; ++i) {
    comments.insert({Value(), Value(rng.uniformInt(1, userCount)),
                     Value(rng.uniformInt(1, userCount)),
                     Value(rng.uniformInt(1, scale.activeItems)),
                     Value(rng.uniformInt(-5, 5)), Value(rng.uniformInt(7000, 8000)),
                     Value(rng.randomText(90))});
  }

  Table& ids = database.table("ids");
  ids.insert({Value("users"), Value(userCount + 1)});
  ids.insert({Value("items"), Value(scale.activeItems + 1)});
}

}  // namespace mwsim::apps::auction
