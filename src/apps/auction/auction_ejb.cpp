#include "apps/auction/auction_ejb.hpp"

#include <stdexcept>

#include "middleware/db_session.hpp"

namespace mwsim::apps::auction {

using mw::ClientSession;
using mw::EjbContext;
using mw::EntityManager;
using mw::Page;
using mw::sqlArgs;
using sim::Task;

namespace {

constexpr std::size_t kTemplateHtml = 3600;
constexpr std::size_t kListRowHtml = 320;
constexpr std::size_t kFormHtml = 2300;
constexpr int kNavImages = 8;
constexpr std::size_t kNavImageBytes = 16'500;
constexpr int kListThumbnails = 14;

Page listPage(std::size_t rows, int extraImages, std::size_t extraImageBytes) {
  Page page;
  page.htmlBytes = kTemplateHtml + rows * kListRowHtml;
  page.imageCount = kNavImages + extraImages;
  page.imageBytes = kNavImageBytes + extraImageBytes;
  return page;
}

Page formPage(bool withItemContext = false) {
  Page page;
  page.htmlBytes = kFormHtml + (withItemContext ? 1200 : 0);
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  return page;
}

Task<> ensureUser(EjbContext& ctx, ClientSession& session, const Scale& scale) {
  if (session.userId < 0) {
    const std::int64_t id = ctx.rng.uniformInt(1, scale.users());
    auto found = co_await ctx.em.finder("SELECT u_id FROM users WHERE u_nickname = ?",
                                        sqlArgs("nick" + std::to_string(id)), "users");
    if (!found.empty()) {
      (void)co_await ctx.em.get(found.front(), "u_password");
      session.userId = (co_await ctx.em.get(found.front(), "u_id")).asInt();
    } else {
      session.userId = id;
    }
  }
}

/// Reads the listing-row fields of one item entity; returns thumbnail size.
Task<std::size_t> showListedItem(EjbContext& ctx, EntityManager::Handle h) {
  (void)co_await ctx.em.get(h, "i_name");
  (void)co_await ctx.em.get(h, "i_initial_price");
  (void)co_await ctx.em.get(h, "i_max_bid");
  (void)co_await ctx.em.get(h, "i_nb_of_bids");
  (void)co_await ctx.em.get(h, "i_end_date");
  const auto thumb = co_await ctx.em.get(h, "i_thumbnail_bytes");
  co_return static_cast<std::size_t>(thumb.asInt());
}

}  // namespace

Task<Page> AuctionEjbLogic::invoke(std::string_view interaction, EjbContext& ctx,
                                   ClientSession& session) {
  EntityManager& em = ctx.em;

  if (interaction == "Home" || interaction == "Browse") {
    Page page;
    page.htmlBytes = kTemplateHtml + 1800;
    page.imageCount = kNavImages + 2;
    page.imageBytes = kNavImageBytes + 9'000;
    co_return page;
  }

  if (interaction == "BrowseCategories" || interaction == "BrowseCategoriesInRegion" ||
      interaction == "SelectCategoryToSellItem") {
    auto cats = co_await em.finder("SELECT c_id FROM categories", sqlArgs(), "categories");
    for (auto h : cats) (void)co_await em.get(h, "c_name");
    if (interaction == "BrowseCategoriesInRegion" && session.lastRegionId <= 0) {
      session.lastRegionId = ctx.rng.uniformInt(1, scale_.regions);
    }
    session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    co_return listPage(cats.size(), 0, 0);
  }

  if (interaction == "BrowseRegions") {
    auto regions = co_await em.finder("SELECT r_id FROM regions", sqlArgs(), "regions");
    for (auto h : regions) (void)co_await em.get(h, "r_name");
    session.lastRegionId = ctx.rng.uniformInt(1, scale_.regions);
    co_return listPage(regions.size(), 0, 0);
  }

  if (interaction == "SearchItemsInCategory" || interaction == "SearchItemsInRegion") {
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    std::vector<EntityManager::Handle> items;
    if (interaction == "SearchItemsInCategory") {
      items = co_await em.finder(
          "SELECT i_id FROM items WHERE i_category = ? ORDER BY i_end_date LIMIT 25",
          sqlArgs(session.lastCategoryId), "items");
    } else {
      if (session.lastRegionId <= 0) {
        session.lastRegionId = ctx.rng.uniformInt(1, scale_.regions);
      }
      items = co_await em.finder(
          "SELECT i.i_id FROM users u JOIN items i ON i.i_seller = u.u_id "
          "WHERE u.u_region = ? AND i.i_category = ? ORDER BY i.i_end_date LIMIT 25",
          sqlArgs(session.lastRegionId, session.lastCategoryId), "items");
    }
    std::size_t thumbs = 0;
    int shown = 0;
    for (auto h : items) {
      const std::size_t t = co_await showListedItem(ctx, h);
      if (shown < kListThumbnails) {
        thumbs += t;
        ++shown;
      }
    }
    if (!items.empty()) {
      session.lastItemId = (co_await em.get(items.front(), "i_id")).asInt();
    }
    co_return listPage(items.size(), shown, thumbs);
  }

  if (interaction == "ViewItem") {
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.activeItems);
    auto item = co_await em.find("items", db::Value(itemId));
    if (!item) {
      itemId = ctx.rng.uniformInt(1, scale_.activeItems);
      item = co_await em.find("items", db::Value(itemId));
    }
    session.lastItemId = itemId;
    std::size_t descBytes = 4000;
    std::size_t thumb = 1200;
    if (item) {
      (void)co_await em.get(*item, "i_name");
      (void)co_await em.get(*item, "i_max_bid");
      (void)co_await em.get(*item, "i_nb_of_bids");
      (void)co_await em.get(*item, "i_end_date");
      descBytes = static_cast<std::size_t>((co_await em.get(*item, "i_desc_bytes")).asInt());
      thumb = static_cast<std::size_t>(
          (co_await em.get(*item, "i_thumbnail_bytes")).asInt());
      auto seller = co_await em.find("users", co_await em.get(*item, "i_seller"));
      if (seller) {
        (void)co_await em.get(*seller, "u_nickname");
        (void)co_await em.get(*seller, "u_rating");
      }
    }
    Page page;
    page.htmlBytes = kTemplateHtml + descBytes;
    page.imageCount = kNavImages + 1;
    page.imageBytes = kNavImageBytes + thumb * 6;
    co_return page;
  }

  if (interaction == "ViewUserInfo") {
    const std::int64_t user = ctx.rng.uniformInt(1, scale_.users());
    auto u = co_await em.find("users", db::Value(user));
    if (u) {
      (void)co_await em.get(*u, "u_nickname");
      (void)co_await em.get(*u, "u_rating");
    }
    auto comments = co_await em.finder(
        "SELECT c_id FROM comments WHERE c_to_user_id = ? ORDER BY c_date DESC LIMIT 25",
        sqlArgs(user), "comments");
    for (auto h : comments) {
      (void)co_await em.get(h, "c_rating");
      (void)co_await em.get(h, "c_comment");
      auto from = co_await em.find("users", co_await em.get(h, "c_from_user_id"));
      if (from) (void)co_await em.get(*from, "u_nickname");
    }
    co_return listPage(comments.size(), 0, 0);
  }

  if (interaction == "ViewBidHistory") {
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.activeItems);
    auto item = co_await em.find("items", db::Value(itemId));
    if (item) (void)co_await em.get(*item, "i_name");
    auto bids = co_await em.finder(
        "SELECT b_id FROM bids WHERE b_item_id = ? ORDER BY b_bid DESC", sqlArgs(itemId),
        "bids");
    for (auto h : bids) {
      (void)co_await em.get(h, "b_bid");
      (void)co_await em.get(h, "b_date");
      auto bidder = co_await em.find("users", co_await em.get(h, "b_user_id"));
      if (bidder) (void)co_await em.get(*bidder, "u_nickname");
    }
    co_return listPage(bids.size(), 0, 0);
  }

  if (interaction == "PutBidAuth" || interaction == "BuyNowAuth" ||
      interaction == "PutCommentAuth" || interaction == "AboutMeAuth" ||
      interaction == "Register" || interaction == "SellItemForm") {
    co_return formPage();
  }

  if (interaction == "PutBid" || interaction == "BuyNow" ||
      interaction == "PutComment") {
    co_await ensureUser(ctx, session, scale_);
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.activeItems);
    session.lastItemId = itemId;
    auto item = co_await em.find("items", db::Value(itemId));
    if (item) {
      (void)co_await em.get(*item, "i_name");
      (void)co_await em.get(*item, "i_max_bid");
      (void)co_await em.get(*item, "i_nb_of_bids");
      if (interaction == "PutComment") {
        auto seller = co_await em.find("users", co_await em.get(*item, "i_seller"));
        if (seller) (void)co_await em.get(*seller, "u_nickname");
      }
    }
    co_return formPage(true);
  }

  if (interaction == "StoreBid") {
    co_await ensureUser(ctx, session, scale_);
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.activeItems);
    const double amount = ctx.rng.uniformReal(1.0, 1000.0);
    std::vector<std::string> cols{"b_user_id", "b_item_id", "b_qty",
                                  "b_bid",     "b_max_bid", "b_date"};
    (void)co_await em.create("bids", std::move(cols),
                             sqlArgs(session.userId, itemId, 1, amount, amount * 1.1,
                                     8000));
    auto item = co_await em.find("items", db::Value(itemId));
    if (item) {
      const auto nb = co_await em.get(*item, "i_nb_of_bids");
      co_await em.set(*item, "i_nb_of_bids", db::Value(nb.asInt() + 1));
      const auto maxBid = co_await em.get(*item, "i_max_bid");
      if (maxBid.asDouble() < amount) {
        co_await em.set(*item, "i_max_bid", db::Value(amount));
      }
    }
    co_return formPage(true);
  }

  if (interaction == "StoreBuyNow") {
    co_await ensureUser(ctx, session, scale_);
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.activeItems);
    std::vector<std::string> cols{"bn_buyer_id", "bn_item_id", "bn_qty", "bn_date"};
    (void)co_await em.create("buy_now", std::move(cols),
                             sqlArgs(session.userId, itemId, 1, 8000));
    auto item = co_await em.find("items", db::Value(itemId));
    if (item) {
      const auto qty = co_await em.get(*item, "i_quantity");
      if (qty.asInt() > 0) {
        co_await em.set(*item, "i_quantity", db::Value(qty.asInt() - 1));
      }
    }
    co_return formPage(true);
  }

  if (interaction == "StoreComment") {
    co_await ensureUser(ctx, session, scale_);
    std::int64_t itemId = session.lastItemId;
    if (itemId <= 0) itemId = ctx.rng.uniformInt(1, scale_.activeItems);
    const std::int64_t toUser = ctx.rng.uniformInt(1, scale_.users());
    const std::int64_t rating = ctx.rng.uniformInt(-5, 5);
    std::vector<std::string> cols{"c_from_user_id", "c_to_user_id", "c_item_id",
                                  "c_rating",       "c_date",       "c_comment"};
    (void)co_await em.create(
        "comments", std::move(cols),
        sqlArgs(session.userId, toUser, itemId, rating, 8000, ctx.rng.randomText(80)));
    auto target = co_await em.find("users", db::Value(toUser));
    if (target) {
      const auto current = co_await em.get(*target, "u_rating");
      co_await em.set(*target, "u_rating", db::Value(current.asInt() + rating));
    }
    co_return formPage(true);
  }

  if (interaction == "RegisterItem") {
    co_await ensureUser(ctx, session, scale_);
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    const double initial = ctx.rng.uniformReal(1.0, 500.0);
    std::vector<std::string> cols{
        "i_name",      "i_description", "i_desc_bytes", "i_seller",
        "i_category",  "i_quantity",    "i_initial_price", "i_reserve_price",
        "i_buy_now",   "i_nb_of_bids",  "i_max_bid",    "i_start_date",
        "i_end_date",  "i_thumbnail_bytes"};
    auto item = co_await em.create(
        "items", std::move(cols),
        sqlArgs("item " + ctx.rng.randomText(24), ctx.rng.randomText(80),
                ctx.rng.uniformInt(2000, 9000), session.userId, session.lastCategoryId,
                1, initial, initial * 1.2, 0.0, 0, initial, 8000, 8007,
                ctx.rng.uniformInt(800, 3000)));
    session.lastItemId = (co_await em.get(item, "i_id")).asInt();
    co_return formPage(true);
  }

  if (interaction == "RegisterUser") {
    const std::string nickname =
        "newnick" + std::to_string(ctx.rng.uniformInt(1, 1 << 30));
    auto exists = co_await em.finder("SELECT u_id FROM users WHERE u_nickname = ?",
                                     sqlArgs(nickname), "users");
    if (exists.empty()) {
      std::vector<std::string> cols{"u_fname", "u_lname",  "u_nickname",
                                    "u_password", "u_email", "u_rating",
                                    "u_balance", "u_creation_date", "u_region"};
      auto user = co_await em.create(
          "users", std::move(cols),
          sqlArgs(ctx.rng.randomString(7), ctx.rng.randomString(9), nickname,
                  ctx.rng.randomString(8), nickname + "@example.com", 0, 0.0, 8000,
                  ctx.rng.uniformInt(1, scale_.regions)));
      session.userId = (co_await em.get(user, "u_id")).asInt();
    }
    co_return formPage();
  }

  if (interaction == "AboutMe") {
    co_await ensureUser(ctx, session, scale_);
    auto me = co_await em.find("users", db::Value(session.userId));
    if (me) (void)co_await em.get(*me, "u_nickname");
    std::size_t rows = 0;
    auto myBids = co_await em.finder(
        "SELECT b_id FROM bids WHERE b_user_id = ? LIMIT 20", sqlArgs(session.userId),
        "bids");
    for (auto h : myBids) {
      (void)co_await em.get(h, "b_bid");
      auto item = co_await em.find("items", co_await em.get(h, "b_item_id"));
      if (item) (void)co_await em.get(*item, "i_name");
      ++rows;
    }
    auto selling = co_await em.finder(
        "SELECT i_id FROM items WHERE i_seller = ? LIMIT 20", sqlArgs(session.userId),
        "items");
    for (auto h : selling) {
      (void)co_await em.get(h, "i_name");
      (void)co_await em.get(h, "i_max_bid");
      ++rows;
    }
    auto sold = co_await em.finder(
        "SELECT i_id FROM old_items WHERE i_seller = ? LIMIT 20", sqlArgs(session.userId),
        "old_items");
    for (auto h : sold) {
      (void)co_await em.get(h, "i_name");
      ++rows;
    }
    auto comments = co_await em.finder(
        "SELECT c_id FROM comments WHERE c_to_user_id = ? ORDER BY c_date DESC LIMIT 10",
        sqlArgs(session.userId), "comments");
    for (auto h : comments) {
      (void)co_await em.get(h, "c_comment");
      ++rows;
    }
    co_return listPage(rows, 0, 0);
  }

  throw std::runtime_error("auction-ejb: unknown interaction " +
                           std::string(interaction));
}

}  // namespace mwsim::apps::auction
