#include "apps/auction/auction.hpp"

#include <stdexcept>

#include "middleware/db_session.hpp"

namespace mwsim::apps::auction {

using mw::AppContext;
using mw::ClientSession;
using mw::lockSet;
using mw::Page;
using mw::sqlArgs;
using sim::Task;

namespace {

// ---- page-weight constants (bytes) ----------------------------------------
// Calibrated so the browsing-mix average interaction moves ~50 KB on the
// wire: the paper's Ws-Servlet-DB browsing peak pushes ~80 Mb/s to clients
// at ~200 interactions/s (§6.2).
constexpr std::size_t kTemplateHtml = 3600;
constexpr std::size_t kListRowHtml = 320;  // item row with bid stats + links
constexpr std::size_t kFormHtml = 2300;
constexpr int kNavImages = 8;  // eBay-style banner, buttons, category icons
constexpr std::size_t kNavImageBytes = 16'500;
constexpr int kListThumbnails = 14;  // thumbnails rendered in a listing page

Page listPage(std::size_t rows, int extraImages, std::size_t extraImageBytes) {
  Page page;
  page.htmlBytes = kTemplateHtml + rows * kListRowHtml;
  page.imageCount = kNavImages + extraImages;
  page.imageBytes = kNavImageBytes + extraImageBytes;
  return page;
}

Page formPage(bool withItemContext = false) {
  Page page;
  page.htmlBytes = kFormHtml + (withItemContext ? 1200 : 0);
  page.imageCount = kNavImages;
  page.imageBytes = kNavImageBytes;
  return page;
}

}  // namespace

Task<> AuctionLogic::ensureUser(AppContext& ctx, ClientSession& session) {
  if (session.userId < 0) {
    // Log in: look up the user by nickname and check the password.
    const std::int64_t id = ctx.rng.uniformInt(1, scale_.users());
    auto r = co_await ctx.query(
        "SELECT u_id, u_password, u_nickname FROM users WHERE u_nickname = ?",
        sqlArgs("nick" + std::to_string(id)));
    session.userId = r.resultSet.empty() ? id : r.resultSet.intAt(0, "u_id");
  }
}

Task<Page> AuctionLogic::invoke(std::string_view interaction, AppContext& ctx,
                                ClientSession& session) {
  // ---------------------------------------------------------- entry pages
  if (interaction == "Home" || interaction == "Browse") {
    Page page;
    page.htmlBytes = kTemplateHtml + 1800;
    page.imageCount = kNavImages + 2;
    page.imageBytes = kNavImageBytes + 9'000;
    co_return page;
  }

  if (interaction == "BrowseCategories" || interaction == "BrowseCategoriesInRegion") {
    auto r = co_await ctx.query("SELECT c_id, c_name FROM categories");
    if (interaction == "BrowseCategoriesInRegion" && session.lastRegionId <= 0) {
      session.lastRegionId = ctx.rng.uniformInt(1, scale_.regions);
    }
    session.lastCategoryId =
        ctx.rng.uniformInt(1, static_cast<std::int64_t>(scale_.categories));
    co_return listPage(r.resultSet.rowCount(), 0, 0);
  }

  if (interaction == "BrowseRegions") {
    auto r = co_await ctx.query("SELECT r_id, r_name FROM regions");
    session.lastRegionId = ctx.rng.uniformInt(1, scale_.regions);
    co_return listPage(r.resultSet.rowCount(), 0, 0);
  }

  if (interaction == "SearchItemsInCategory") {
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    const std::int64_t offset = 25 * ctx.rng.uniformInt(0, 2);  // page 1-3
    // LIMIT/OFFSET must be literals in our SQL subset; the pages are enum-
    // erable so the statement cache still collapses them to three entries.
    auto r = co_await ctx.query(
        "SELECT i_id, i_name, i_initial_price, i_max_bid, i_nb_of_bids, i_end_date, "
        "i_thumbnail_bytes FROM items WHERE i_category = ? ORDER BY i_end_date "
        "LIMIT 25 OFFSET " + std::to_string(offset),
        sqlArgs(session.lastCategoryId));
    std::size_t thumbs = 0;
    const std::size_t shown =
        std::min<std::size_t>(kListThumbnails, r.resultSet.rowCount());
    for (std::size_t i = 0; i < shown; ++i) {
      thumbs += static_cast<std::size_t>(r.resultSet.intAt(i, "i_thumbnail_bytes"));
    }
    if (!r.resultSet.empty()) {
      session.lastItemId = r.resultSet.intAt(
          static_cast<std::size_t>(
              ctx.rng.uniformInt(0, static_cast<std::int64_t>(r.resultSet.rowCount()) - 1)),
          "i_id");
    }
    co_return listPage(r.resultSet.rowCount(), static_cast<int>(shown), thumbs);
  }

  if (interaction == "SearchItemsInRegion") {
    if (session.lastRegionId <= 0) {
      session.lastRegionId = ctx.rng.uniformInt(1, scale_.regions);
    }
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    // Region search goes through the sellers living in that region.
    auto r = co_await ctx.query(
        "SELECT i.i_id, i.i_name, i.i_initial_price, i.i_max_bid, i.i_nb_of_bids, "
        "i.i_end_date, i.i_thumbnail_bytes "
        "FROM users u JOIN items i ON i.i_seller = u.u_id "
        "WHERE u.u_region = ? AND i.i_category = ? ORDER BY i.i_end_date LIMIT 25",
        sqlArgs(session.lastRegionId, session.lastCategoryId));
    std::size_t thumbs = 0;
    const std::size_t shown =
        std::min<std::size_t>(kListThumbnails, r.resultSet.rowCount());
    for (std::size_t i = 0; i < shown; ++i) {
      thumbs += static_cast<std::size_t>(r.resultSet.intAt(i, "i_thumbnail_bytes"));
    }
    if (!r.resultSet.empty()) session.lastItemId = r.resultSet.intAt(0, "i_id");
    co_return listPage(r.resultSet.rowCount(), static_cast<int>(shown), thumbs);
  }

  // ------------------------------------------------------------ item views
  if (interaction == "ViewItem") {
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    auto r = co_await ctx.query("SELECT * FROM items WHERE i_id = ?", sqlArgs(item));
    if (r.resultSet.empty()) {
      item = ctx.rng.uniformInt(1, scale_.activeItems);
      r = co_await ctx.query("SELECT * FROM items WHERE i_id = ?", sqlArgs(item));
    }
    session.lastItemId = item;
    std::size_t descBytes = 4000;
    std::size_t thumb = 1200;
    if (!r.resultSet.empty()) {
      descBytes = static_cast<std::size_t>(r.resultSet.intAt(0, "i_desc_bytes"));
      thumb = static_cast<std::size_t>(r.resultSet.intAt(0, "i_thumbnail_bytes"));
      co_await ctx.query("SELECT u_nickname, u_rating FROM users WHERE u_id = ?",
                         sqlArgs(r.resultSet.intAt(0, "i_seller")));
    }
    Page page;
    page.htmlBytes = kTemplateHtml + descBytes;
    page.imageCount = kNavImages + 1;
    page.imageBytes = kNavImageBytes + thumb * 6;  // full-size photo
    co_return page;
  }

  if (interaction == "ViewUserInfo") {
    std::int64_t user = ctx.rng.uniformInt(1, scale_.users());
    co_await ctx.query("SELECT * FROM users WHERE u_id = ?", sqlArgs(user));
    auto comments = co_await ctx.query(
        "SELECT c.c_rating, c.c_date, c.c_comment, u.u_nickname "
        "FROM comments c JOIN users u ON c.c_from_user_id = u.u_id "
        "WHERE c.c_to_user_id = ? ORDER BY c.c_date DESC LIMIT 25",
        sqlArgs(user));
    co_return listPage(comments.resultSet.rowCount(), 0, 0);
  }

  if (interaction == "ViewBidHistory") {
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    co_await ctx.query("SELECT i_name FROM items WHERE i_id = ?", sqlArgs(item));
    auto bids = co_await ctx.query(
        "SELECT b.b_bid, b.b_qty, b.b_date, u.u_nickname, u.u_rating "
        "FROM bids b JOIN users u ON b.b_user_id = u.u_id "
        "WHERE b.b_item_id = ? ORDER BY b.b_bid DESC",
        sqlArgs(item));
    co_return listPage(bids.resultSet.rowCount(), 0, 0);
  }

  // ------------------------------------------------------------ bid flow
  if (interaction == "PutBidAuth" || interaction == "BuyNowAuth" ||
      interaction == "PutCommentAuth" || interaction == "AboutMeAuth" ||
      interaction == "Register" || interaction == "SellItemForm") {
    co_return formPage();
  }

  if (interaction == "PutBid") {
    co_await ensureUser(ctx, session);
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    session.lastItemId = item;
    co_await ctx.query("SELECT * FROM items WHERE i_id = ?", sqlArgs(item));
    co_await ctx.query(
        "SELECT MAX(b_bid) AS m, COUNT(*) AS n FROM bids WHERE b_item_id = ?",
        sqlArgs(item));
    co_return formPage(/*withItemContext=*/true);
  }

  if (interaction == "StoreBid") {
    co_await ensureUser(ctx, session);
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    const double amount = ctx.rng.uniformReal(1.0, 1000.0);

    // Insert the bid and refresh the item's denormalized bid statistics.
    // The two statements must be atomic: LOCK TABLES with PHP / non-sync
    // servlets, a Java monitor with sync servlets.
    auto cs = co_await ctx.enterCritical(lockSet().write("bids").write("items"));
    co_await ctx.query(
        "INSERT INTO bids (b_user_id, b_item_id, b_qty, b_bid, b_max_bid, b_date) "
        "VALUES (?, ?, ?, ?, ?, ?)",
        sqlArgs(session.userId, item, 1, amount, amount * 1.1, 8000));
    co_await ctx.query(
        "UPDATE items SET i_nb_of_bids = i_nb_of_bids + 1, i_max_bid = ? "
        "WHERE i_id = ? AND i_max_bid < ?",
        sqlArgs(amount, item, amount));
    co_await ctx.leaveCritical(std::move(cs));
    co_return formPage(true);
  }

  // --------------------------------------------------------- buy-now flow
  if (interaction == "BuyNow") {
    co_await ensureUser(ctx, session);
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    session.lastItemId = item;
    co_await ctx.query("SELECT * FROM items WHERE i_id = ?", sqlArgs(item));
    co_return formPage(true);
  }

  if (interaction == "StoreBuyNow") {
    co_await ensureUser(ctx, session);
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    auto cs = co_await ctx.enterCritical(lockSet().write("buy_now").write("items"));
    co_await ctx.query(
        "INSERT INTO buy_now (bn_buyer_id, bn_item_id, bn_qty, bn_date) VALUES "
        "(?, ?, ?, ?)",
        sqlArgs(session.userId, item, 1, 8000));
    co_await ctx.query(
        "UPDATE items SET i_quantity = i_quantity - 1 WHERE i_id = ? AND i_quantity > 0",
        sqlArgs(item));
    co_await ctx.leaveCritical(std::move(cs));
    co_return formPage(true);
  }

  // --------------------------------------------------------- comment flow
  if (interaction == "PutComment") {
    co_await ensureUser(ctx, session);
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    session.lastItemId = item;
    auto r = co_await ctx.query("SELECT i_name, i_seller FROM items WHERE i_id = ?",
                                sqlArgs(item));
    if (!r.resultSet.empty()) {
      co_await ctx.query("SELECT u_nickname FROM users WHERE u_id = ?",
                         sqlArgs(r.resultSet.intAt(0, "i_seller")));
    }
    co_return formPage(true);
  }

  if (interaction == "StoreComment") {
    co_await ensureUser(ctx, session);
    std::int64_t item = session.lastItemId;
    if (item <= 0) item = ctx.rng.uniformInt(1, scale_.activeItems);
    const std::int64_t toUser = ctx.rng.uniformInt(1, scale_.users());
    const std::int64_t rating = ctx.rng.uniformInt(-5, 5);
    auto cs = co_await ctx.enterCritical(lockSet().write("comments").write("users"));
    co_await ctx.query(
        "INSERT INTO comments (c_from_user_id, c_to_user_id, c_item_id, c_rating, "
        "c_date, c_comment) VALUES (?, ?, ?, ?, ?, ?)",
        sqlArgs(session.userId, toUser, item, rating, 8000, ctx.rng.randomText(80)));
    co_await ctx.query("UPDATE users SET u_rating = u_rating + ? WHERE u_id = ?",
                       sqlArgs(rating, toUser));
    co_await ctx.leaveCritical(std::move(cs));
    co_return formPage(true);
  }

  // ------------------------------------------------------------ sell flow
  if (interaction == "SelectCategoryToSellItem") {
    auto r = co_await ctx.query("SELECT c_id, c_name FROM categories");
    session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    co_return listPage(r.resultSet.rowCount(), 0, 0);
  }

  if (interaction == "RegisterItem") {
    co_await ensureUser(ctx, session);
    if (session.lastCategoryId <= 0) {
      session.lastCategoryId = ctx.rng.uniformInt(1, scale_.categories);
    }
    const double initial = ctx.rng.uniformReal(1.0, 500.0);
    // New item id from the ids sequence table, then the insert — atomic.
    auto cs = co_await ctx.enterCritical(lockSet().write("ids").write("items"));
    co_await ctx.query("UPDATE ids SET id_value = id_value + 1 WHERE id_name = 'items'");
    auto idRow =
        co_await ctx.query("SELECT id_value FROM ids WHERE id_name = 'items'");
    const std::int64_t newId = idRow.resultSet.intAt(0, "id_value");
    co_await ctx.query(
        "INSERT INTO items (i_id, i_name, i_description, i_desc_bytes, i_seller, "
        "i_category, i_quantity, i_initial_price, i_reserve_price, i_buy_now, "
        "i_nb_of_bids, i_max_bid, i_start_date, i_end_date, i_thumbnail_bytes) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        sqlArgs(newId, "item " + ctx.rng.randomText(24), ctx.rng.randomText(80),
                ctx.rng.uniformInt(2000, 9000), session.userId, session.lastCategoryId,
                1, initial, initial * 1.2, 0.0, 0, initial, 8000, 8007,
                ctx.rng.uniformInt(800, 3000)));
    co_await ctx.leaveCritical(std::move(cs));
    session.lastItemId = newId;
    co_return formPage(true);
  }

  if (interaction == "RegisterUser") {
    const std::string nickname =
        "newnick" + std::to_string(ctx.rng.uniformInt(1, 1 << 30));
    auto exists = co_await ctx.query("SELECT u_id FROM users WHERE u_nickname = ?",
                                     sqlArgs(nickname));
    if (exists.resultSet.empty()) {
      auto cs = co_await ctx.enterCritical(lockSet().write("ids").write("users"));
      co_await ctx.query(
          "UPDATE ids SET id_value = id_value + 1 WHERE id_name = 'users'");
      auto idRow =
          co_await ctx.query("SELECT id_value FROM ids WHERE id_name = 'users'");
      const std::int64_t newId = idRow.resultSet.intAt(0, "id_value");
      co_await ctx.query(
          "INSERT INTO users (u_id, u_fname, u_lname, u_nickname, u_password, u_email, "
          "u_rating, u_balance, u_creation_date, u_region) VALUES "
          "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
          sqlArgs(newId, ctx.rng.randomString(7), ctx.rng.randomString(9), nickname,
                  ctx.rng.randomString(8), nickname + "@example.com", 0, 0.0, 8000,
                  ctx.rng.uniformInt(1, scale_.regions)));
      co_await ctx.leaveCritical(std::move(cs));
      session.userId = newId;
    }
    co_return formPage();
  }

  // --------------------------------------------------------------- AboutMe
  if (interaction == "AboutMe") {
    co_await ensureUser(ctx, session);
    co_await ctx.query("SELECT * FROM users WHERE u_id = ?", sqlArgs(session.userId));
    auto myBids = co_await ctx.query(
        "SELECT b.b_bid, b.b_max_bid, i.i_name, i.i_max_bid, i.i_end_date "
        "FROM bids b JOIN items i ON b.b_item_id = i.i_id WHERE b.b_user_id = ? "
        "LIMIT 20",
        sqlArgs(session.userId));
    auto selling = co_await ctx.query(
        "SELECT i_id, i_name, i_max_bid, i_nb_of_bids, i_end_date FROM items "
        "WHERE i_seller = ? LIMIT 20",
        sqlArgs(session.userId));
    auto sold = co_await ctx.query(
        "SELECT i_id, i_name, i_max_bid, i_end_date FROM old_items WHERE i_seller = ? "
        "LIMIT 20",
        sqlArgs(session.userId));
    auto bought = co_await ctx.query(
        "SELECT bn.bn_qty, bn.bn_date, i.i_name FROM buy_now bn "
        "JOIN items i ON bn.bn_item_id = i.i_id WHERE bn.bn_buyer_id = ? LIMIT 20",
        sqlArgs(session.userId));
    auto comments = co_await ctx.query(
        "SELECT c_rating, c_date, c_comment FROM comments WHERE c_to_user_id = ? "
        "ORDER BY c_date DESC LIMIT 10",
        sqlArgs(session.userId));
    const std::size_t rows = myBids.resultSet.rowCount() + selling.resultSet.rowCount() +
                             sold.resultSet.rowCount() + bought.resultSet.rowCount() +
                             comments.resultSet.rowCount();
    co_return listPage(rows, 0, 0);
  }

  throw std::runtime_error("auction: unknown interaction " + std::string(interaction));
}

// -------------------------------------------------------------------- Mixes

wl::MixMatrix mixMatrix(Mix mix) {
  const std::vector<std::string> states{
      "Home",          "Register",       "RegisterUser",
      "Browse",        "BrowseCategories", "SearchItemsInCategory",
      "BrowseRegions", "BrowseCategoriesInRegion", "SearchItemsInRegion",
      "ViewItem",      "ViewUserInfo",   "ViewBidHistory",
      "BuyNowAuth",    "BuyNow",         "StoreBuyNow",
      "PutBidAuth",    "PutBid",         "StoreBid",
      "PutCommentAuth", "PutComment",    "StoreComment",
      "SelectCategoryToSellItem", "SellItemForm", "RegisterItem",
      "AboutMeAuth",   "AboutMe"};
  // Read-write interactions: the five Store*/Register* writers.
  std::vector<bool> readWrite(states.size(), false);
  for (const char* w : {"RegisterUser", "StoreBuyNow", "StoreBid", "StoreComment",
                        "RegisterItem"}) {
    readWrite[wl::MixBuilder("tmp", states, std::vector<double>(states.size(), 1.0),
                             std::vector<bool>(states.size(), false))
                  .index(w)] = true;
  }

  std::vector<double> weights;
  std::string name;
  if (mix == Mix::Browsing) {
    name = "browsing";
    weights = {3.0, 0, 0,
               8.0, 12.0, 30.0,
               5.0, 5.0, 10.0,
               20.0, 4.0, 3.0,
               0, 0, 0,
               0, 0, 0,
               0, 0, 0,
               0, 0, 0,
               1.0, 1.0};
  } else {
    name = "bidding";
    weights = {2.0, 1.4, 1.1,
               5.0, 7.0, 16.0,
               2.5, 2.5, 5.0,
               13.0, 3.0, 2.2,
               1.6, 1.5, 1.2,
               7.5, 7.0, 6.3,
               2.6, 2.4, 2.2,
               2.6, 2.5, 2.0,
               1.2, 1.2};
  }

  wl::MixBuilder builder(name, states, weights, readWrite);
  builder.follow("BrowseCategories", "SearchItemsInCategory", 0.65)
      .follow("BrowseRegions", "BrowseCategoriesInRegion", 0.70)
      .follow("BrowseCategoriesInRegion", "SearchItemsInRegion", 0.65)
      .follow("SearchItemsInCategory", "ViewItem", 0.45)
      .follow("SearchItemsInRegion", "ViewItem", 0.45)
      .follow("AboutMeAuth", "AboutMe", 0.85);
  if (mix == Mix::Bidding) {
    builder.follow("Register", "RegisterUser", 0.80)
        .follow("BuyNowAuth", "BuyNow", 0.85)
        .follow("BuyNow", "StoreBuyNow", 0.55)
        .follow("PutBidAuth", "PutBid", 0.85)
        .follow("PutBid", "StoreBid", 0.60)
        .follow("PutCommentAuth", "PutComment", 0.85)
        .follow("PutComment", "StoreComment", 0.75)
        .follow("SelectCategoryToSellItem", "SellItemForm", 0.85)
        .follow("SellItemForm", "RegisterItem", 0.70)
        .follow("ViewItem", "PutBidAuth", 0.20);
  }
  return builder.build(/*initialState=*/0);
}

}  // namespace mwsim::apps::auction
