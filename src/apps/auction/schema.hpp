#pragma once

#include <cstdint>

#include "db/database.hpp"
#include "sim/random.hpp"

namespace mwsim::apps::auction {

/// Database scale for the auction site (paper §3.2: 33,000 live items in 40
/// categories and 62 regions, 500,000 old items, ~10 bids/item, 1 M users,
/// 500,000 comments; 1.4 GB total).
///
/// `historyScale` shrinks the user/history tables for faster benching; it
/// does not change per-query work because those tables are only reached
/// through selective indexes (see DESIGN.md). Live items — the scan driver —
/// stay at 33,000.
struct Scale {
  double historyScale = 1.0;
  std::int64_t activeItems = 33'000;
  int categories = 40;
  int regions = 62;
  int bidsPerItem = 10;
  std::int64_t users() const {
    return static_cast<std::int64_t>(1'000'000 * historyScale);
  }
  std::int64_t oldItems() const {
    return static_cast<std::int64_t>(500'000 * historyScale);
  }
  std::int64_t comments() const {
    return static_cast<std::int64_t>(500'000 * historyScale);
  }
  std::int64_t buyNows() const {
    return static_cast<std::int64_t>(30'000 * historyScale);
  }
};

/// Creates the paper's nine tables: users, items, old_items, bids, buy_now,
/// comments, categories, regions, ids.
void createSchema(db::Database& database);

/// Populates the tables at the given scale. Deterministic for a fixed seed.
void populate(db::Database& database, const Scale& scale, sim::Rng& rng);

}  // namespace mwsim::apps::auction
