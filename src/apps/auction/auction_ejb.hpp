#pragma once

#include <string_view>

#include "apps/auction/schema.hpp"
#include "middleware/ejb.hpp"

namespace mwsim::apps::auction {

/// Auction-site business logic as session-facade methods over CMP entity
/// beans — the Ws-Servlet-EJB-DB configuration. Listing pages walk item
/// entities one by one (finder + N activations + per-field accessors),
/// which is what saturates the EJB server's CPU in the paper's Figure 12.
class AuctionEjbLogic final : public mw::EjbBusinessLogic {
 public:
  explicit AuctionEjbLogic(const Scale& scale) : scale_(scale) {}

  sim::Task<mw::Page> invoke(std::string_view interaction, mw::EjbContext& ctx,
                             mw::ClientSession& session) override;

 private:
  Scale scale_;
};

}  // namespace mwsim::apps::auction
