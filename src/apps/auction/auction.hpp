#pragma once

#include <string_view>

#include "apps/auction/schema.hpp"
#include "middleware/application.hpp"
#include "workload/mix.hpp"

namespace mwsim::apps::auction {

/// Workload mixes (paper §3.2): a browsing mix of read-only interactions
/// and a bidding mix with 15 % read-write interactions.
enum class Mix { Browsing, Bidding };

/// Builds the Markov matrix for a mix over the 26 interactions.
wl::MixMatrix mixMatrix(Mix mix);

/// The 26 auction-site interactions with explicit SQL (RUBiS-style),
/// shared between the PHP and servlet tiers.
class AuctionLogic final : public mw::SqlBusinessLogic {
 public:
  explicit AuctionLogic(const Scale& scale) : scale_(scale) {}

  sim::Task<mw::Page> invoke(std::string_view interaction, mw::AppContext& ctx,
                             mw::ClientSession& session) override;

 private:
  sim::Task<> ensureUser(mw::AppContext& ctx, mw::ClientSession& session);

  Scale scale_;
};

}  // namespace mwsim::apps::auction
