#include "core/dataset_cache.hpp"

#include "apps/auction/schema.hpp"
#include "apps/bbs/schema.hpp"
#include "apps/bookstore/schema.hpp"
#include "core/experiment.hpp"
#include "sim/random.hpp"

namespace mwsim::core {

namespace {

db::Database buildPrototype(App app, double scale, std::uint64_t dataSeed) {
  db::Database database;
  sim::Rng rng(dataSeed);
  switch (app) {
    case App::Bookstore: {
      apps::bookstore::Scale s;
      s.scale = scale;
      apps::bookstore::createSchema(database);
      apps::bookstore::populate(database, s, rng);
      break;
    }
    case App::Auction: {
      apps::auction::Scale s;
      s.historyScale = scale;
      apps::auction::createSchema(database);
      apps::auction::populate(database, s, rng);
      break;
    }
    case App::BulletinBoard: {
      apps::bbs::Scale s;
      s.historyScale = scale;
      apps::bbs::createSchema(database);
      apps::bbs::populate(database, s, rng);
      break;
    }
  }
  return database;
}

}  // namespace

DatasetCache& DatasetCache::global() {
  static DatasetCache instance;
  return instance;
}

db::Database DatasetCache::get(App app, double scale, std::uint64_t dataSeed) {
  const Key key{static_cast<int>(app), scale, dataSeed};
  std::shared_future<std::shared_ptr<const db::Database>> future;
  {
    std::unique_lock lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      // We are the builder: publish the future before unlocking so
      // concurrent requesters wait for us instead of building again.
      std::promise<std::shared_ptr<const db::Database>> promise;
      future = promise.get_future().share();
      map_.emplace(key, future);
      ++builds_;
      lock.unlock();
      try {
        promise.set_value(
            std::make_shared<const db::Database>(buildPrototype(app, scale, dataSeed)));
      } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard relock(mu_);
        map_.erase(key);  // let a later call retry rather than caching failure
        throw;
      }
      return future.get()->clone();
    }
    future = it->second;
  }
  return future.get()->clone();
}

void DatasetCache::clear() {
  std::lock_guard lock(mu_);
  map_.clear();
}

std::size_t DatasetCache::size() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

std::uint64_t DatasetCache::builds() const {
  std::lock_guard lock(mu_);
  return builds_;
}

}  // namespace mwsim::core
