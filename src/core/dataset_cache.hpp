#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "db/database.hpp"

namespace mwsim::core {

enum class App;  // experiment.hpp

/// Process-wide cache of populated databases.
///
/// Populating a paper-scale database is the most expensive part of a short
/// run, and every point of a sweep starts from the same initial content:
/// only (app, scale knob, population seed) determine it. The cache builds
/// each such prototype once and hands out exact deep clones, so a 6×8 sweep
/// pays one population instead of 48.
///
/// Thread-safe: concurrent get()s for the same key block on one build
/// (tracked as a shared_future) while builds for other keys proceed. The
/// prototype itself is immutable after construction; clones are owned
/// exclusively by their run.
class DatasetCache {
 public:
  static DatasetCache& global();

  /// Returns a fresh clone of the populated database for the key, building
  /// the shared prototype on first use. `dataSeed` is the exact seed the
  /// population Rng is constructed with (see ExperimentParams::dataSeed).
  db::Database get(App app, double scale, std::uint64_t dataSeed);

  /// Drops every cached prototype (tests; long-lived processes that change
  /// workloads).
  void clear();

  /// Number of distinct prototypes currently held.
  std::size_t size() const;

  /// Prototypes built since process start (cache misses), for tests.
  std::uint64_t builds() const;

 private:
  using Key = std::tuple<int, double, std::uint64_t>;

  mutable std::mutex mu_;
  std::map<Key, std::shared_future<std::shared_ptr<const db::Database>>> map_;
  std::uint64_t builds_ = 0;
};

}  // namespace mwsim::core
