#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace mwsim::core {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  allDone_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      taskReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++inFlight_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --inFlight_;
      if (queue_.empty() && inFlight_ == 0) allDone_.notify_all();
    }
  }
}

void parallelFor(std::size_t n, int jobs, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  const int threads = static_cast<int>(std::min<std::size_t>(
      n, static_cast<std::size_t>(std::max(1, jobs))));
  {
    ThreadPool pool(threads);
    // One pull-loop task per worker: each grabs the next unclaimed index, so
    // uneven point costs balance without any static partitioning.
    for (int t = 0; t < threads; ++t) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    pool.wait();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

int defaultJobCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace mwsim::core
