#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "middleware/cost_model.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/usage.hpp"

namespace mwsim::core {

/// The six software/hardware configurations of the paper's Figure 4.
enum class Configuration {
  WsPhpDb,             // PHP module in the web server; DB on its own machine
  WsServletDb,         // servlet engine co-located with the web server
  WsServletDbSync,     // + Java-monitor locking instead of LOCK TABLES
  WsServletSepDb,      // servlet engine on a dedicated machine
  WsServletSepDbSync,  // + Java-monitor locking
  WsServletEjbDb,      // web, servlet, EJB and DB each on their own machine
};

const char* configurationName(Configuration c);
std::vector<Configuration> allConfigurations();

/// Which benchmark application drives the run. BulletinBoard is the RUBBoS
/// benchmark the paper skipped, implemented here to test its §7 prediction
/// that the results mirror the auction site.
enum class App { Bookstore, Auction, BulletinBoard };

/// Parameters for one measurement run (one point on a throughput curve).
struct ExperimentParams {
  Configuration config = Configuration::WsPhpDb;
  App app = App::Bookstore;
  /// Bookstore: 0 browsing, 1 shopping, 2 ordering. Auction: 0 browsing,
  /// 1 bidding.
  int mix = 1;
  int clients = 100;
  std::uint64_t seed = 1;

  /// Measurement phases (paper §4.5: 1/20/1 min for the bookstore and
  /// 5/30/5 for the auction site; benches default to shorter windows —
  /// the simulator reaches steady state quickly and results are stable).
  sim::Duration rampUp = 60 * sim::kSecond;
  sim::Duration measure = 5 * sim::kMinute;
  sim::Duration rampDown = 30 * sim::kSecond;

  /// Database scale knobs (see apps/*/schema.hpp). 1.0 = the paper's sizes.
  double bookstoreScale = 0.25;
  double auctionHistoryScale = 0.10;
  double bbsHistoryScale = 0.05;

  mw::CostModel cost;
};

/// Everything a bench needs to print one figure row.
struct ExperimentResult {
  double throughputIpm = 0.0;  // interactions per minute
  std::uint64_t interactions = 0;
  std::uint64_t readWriteInteractions = 0;
  std::uint64_t queries = 0;
  double meanResponseSeconds = 0.0;
  double p90ResponseSeconds = 0.0;

  /// Per-machine usage over the measurement window, in the paper's order:
  /// WebServer, Database, Servlet Container, EJB Server (absent tiers are
  /// omitted).
  std::vector<stats::MachineUsage> usage;

  /// Traffic between machine pairs over the whole run (bytes/packets).
  std::map<std::pair<std::string, std::string>, net::LinkTraffic> traffic;

  /// Lock contention at the database over the whole run.
  std::uint64_t lockAcquisitions = 0;
  std::uint64_t contendedLockAcquisitions = 0;
  double lockWaitSeconds = 0.0;

  std::size_t databaseBytes = 0;

  const stats::MachineUsage* machine(const std::string& name) const {
    for (const auto& u : usage) {
      if (u.name == name) return &u;
    }
    return nullptr;
  }
};

/// Runs one full experiment: builds the topology for the configuration,
/// populates the database, ramps up, measures, ramps down.
ExperimentResult runExperiment(const ExperimentParams& params);

/// Sweeps client counts and returns one result per count.
std::vector<ExperimentResult> sweepClients(ExperimentParams params,
                                           const std::vector<int>& clientCounts);

const char* mixName(App app, int mix);

}  // namespace mwsim::core
