#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/topology.hpp"
#include "middleware/cost_model.hpp"
#include "net/network.hpp"
#include "obs/report.hpp"
#include "scenario/spec.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"
#include "stats/usage.hpp"
#include "trace/collector.hpp"

namespace mwsim::core {

/// Which benchmark application drives the run. BulletinBoard is the RUBBoS
/// benchmark the paper skipped, implemented here to test its §7 prediction
/// that the results mirror the auction site.
enum class App { Bookstore, Auction, BulletinBoard };

/// Parameters for one measurement run (one point on a throughput curve).
struct ExperimentParams {
  Configuration config = Configuration::WsPhpDb;
  /// Explicit topology override. Unset runs canonicalTopology(config) — the
  /// paper's configuration on single machines; set it to scale tiers out
  /// (replicas, cores, NICs, dispatch policies). `config` still names the
  /// run and seeds the sweep-point hash.
  std::optional<Topology> topology;
  App app = App::Bookstore;
  /// Bookstore: 0 browsing, 1 shopping, 2 ordering. Auction: 0 browsing,
  /// 1 bidding.
  int mix = 1;
  int clients = 100;
  std::uint64_t seed = 1;
  /// Seed the database-population Rng is constructed with. 0 (the default)
  /// derives it from `seed`, which is what standalone runs want; the sweep
  /// helpers pin it to the sweep's root seed so every point shares one
  /// cached dataset while still getting an independent simulation stream
  /// (see pointParams and DatasetCache).
  std::uint64_t dataSeed = 0;

  /// Measurement phases (paper §4.5: 1/20/1 min for the bookstore and
  /// 5/30/5 for the auction site; the simulator reaches steady state
  /// quickly, so shorter windows give stable results). This default is the
  /// single source of truth — BenchOptions derives its ramp-up from it.
  sim::Duration rampUp = 60 * sim::kSecond;
  sim::Duration measure = 5 * sim::kMinute;
  sim::Duration rampDown = 30 * sim::kSecond;

  /// Database scale knobs (see apps/*/schema.hpp). 1.0 = the paper's sizes.
  double bookstoreScale = 0.25;
  double auctionHistoryScale = 0.10;
  double bbsHistoryScale = 0.05;

  mw::CostModel cost;

  /// Per-request tracing (off by default). Enabling it never changes
  /// simulated results: spans observe virtual time the scheduler already
  /// decided.
  trace::Options trace;

  /// Metrics layer (off by default): typed instruments sampled into aligned
  /// time series by the metrics pump, plus the bottleneck verdict. Like
  /// tracing, observation-only — a metrics-on run is byte-identical to a
  /// metrics-off run (the pump steps runUntil instead of spawning a
  /// sampling process), and like seriesInterval it stays out of the
  /// sweep-point seed derivation.
  obs::Options metrics;

  /// Scenario engine (src/scenario/): arrival mode, failover policy, and
  /// the platform event timeline. The default is "scenario off", which
  /// keeps runs byte-identical to the pre-scenario simulator. With
  /// ArrivalMode::OpenLoop the `clients` field is ignored (load is set by
  /// scenario.arrivals) but still part of the sweep-point coordinates.
  scenario::Spec scenario;
};

/// Everything a bench needs to print one figure row.
struct ExperimentResult {
  double throughputIpm = 0.0;  // interactions per minute
  std::uint64_t interactions = 0;
  std::uint64_t readWriteInteractions = 0;
  std::uint64_t queries = 0;
  double meanResponseSeconds = 0.0;
  double p90ResponseSeconds = 0.0;

  /// Per-machine usage over the measurement window, in the paper's order:
  /// WebServer, Database, Servlet Container, EJB Server (absent tiers are
  /// omitted). Replicated tiers contribute one entry per instance
  /// ("WebServer", "WebServer#2", ...), grouped per tier in that order.
  std::vector<stats::MachineUsage> usage;

  /// Usage aggregated over each tier's replicas (see stats::aggregateByTier).
  /// Identical to `usage` rows for single-replica tiers apart from `name`
  /// being the tier name.
  std::vector<stats::MachineUsage> tierUsage;

  /// Traffic between machine pairs over the whole run (bytes/packets).
  std::map<std::pair<std::string, std::string>, net::LinkTraffic> traffic;

  /// Lock contention at the database over the whole run.
  std::uint64_t lockAcquisitions = 0;
  std::uint64_t contendedLockAcquisitions = 0;
  double lockWaitSeconds = 0.0;
  /// Wait on the server's global lock-manager mutex (LOCK_open). Tracked
  /// separately from table-lock wait: folding it in silently understated the
  /// fig05 drain stalls before this field existed.
  double lockManagerWaitSeconds = 0.0;

  /// Dataset bytes across every database replica's own clone.
  std::size_t databaseBytes = 0;

  /// Dynamic-content requests answered with an error page: web replicas'
  /// 500 pages plus the load balancer's failover errors (retry budget
  /// exhausted, timeout, no healthy replica). Nonzero means the run is
  /// degraded — cluster tests assert 0.
  std::uint64_t webErrors = 0;

  /// Failover accounting (scenario runs; all 0 with the scenario off).
  /// Attempts rerouted because the serving replica crashed mid-request:
  std::uint64_t reroutedRequests = 0;
  /// Requests that observed their deadline pass:
  std::uint64_t timedOutRequests = 0;
  /// Open-loop arrivals offered / shed by admission control:
  std::uint64_t openLoopArrivals = 0;
  std::uint64_t shedSessions = 0;

  /// Whole-run time series (only when params.scenario.seriesInterval > 0).
  /// Buckets cover the run from t=0 including ramp phases — a scenario's
  /// structure rarely aligns with the measurement window.
  std::shared_ptr<const stats::TimeSeries> series;

  /// Per-tier latency attribution (only when params.trace.enabled).
  /// shared_ptr keeps ExperimentResult cheaply copyable.
  std::shared_ptr<const trace::Report> trace;

  /// Sampled metrics series + bottleneck verdict (only when
  /// params.metrics.enabled and metrics are compiled in).
  std::shared_ptr<const obs::MetricsReport> metrics;

  /// Per-instance lookup by unique machine name ("WebServer", "WebServer#2").
  const stats::MachineUsage* machine(const std::string& name) const {
    for (const auto& u : usage) {
      if (u.name == name) return &u;
    }
    return nullptr;
  }

  /// Per-tier lookup by tier name (aggregated over replicas).
  const stats::MachineUsage* tier(const std::string& name) const {
    for (const auto& u : tierUsage) {
      if (u.name == name) return &u;
    }
    return nullptr;
  }
};

/// Runs one full experiment: builds the topology for the configuration,
/// clones the populated database from the dataset cache, ramps up,
/// measures, ramps down. Safe to call concurrently from multiple threads —
/// each call owns its whole simulation substrate.
ExperimentResult runExperiment(const ExperimentParams& params);

/// Seed for one sweep point, derived as hash(rootSeed, app, mix, config,
/// clients[, scenario]) — the point's *full* coordinates. Depending only on
/// those coordinates (never the point's position in the sweep, the jobs
/// count, or scheduling) makes every point's result independent of how the
/// sweep is shaped or parallelised; including app and mix keeps different
/// figures' random streams uncorrelated at equal (config, clients).
///
/// `scenarioTag` is scenario::Spec::seedTag(): 0 ("scenario off", the
/// default) leaves the derivation exactly as before, so every existing
/// sweep keeps its seeds; a non-zero tag folds the scenario's
/// behavior-affecting coordinates in, so open-loop or failure sweeps are
/// not seed-correlated with closed-loop sweeps at equal coordinates.
std::uint64_t pointSeed(std::uint64_t rootSeed, App app, int mix, Configuration config,
                        int clients, std::uint64_t scenarioTag = 0);

/// The params for one sweep point: base with (config, clients) applied,
/// seed = pointSeed over the full coordinates, and dataSeed pinned to the
/// base seed's population stream so all points share one cached dataset.
ExperimentParams pointParams(const ExperimentParams& base, Configuration config,
                             int clients);

/// Options for the batch runners below.
struct SweepOptions {
  /// Worker threads for independent points. <= 1 runs sequentially on the
  /// calling thread; 0/negative also mean sequential (benches map
  /// `--jobs 0` to defaultJobCount() before getting here).
  int jobs = 1;
  /// Optional progress hook, invoked once per finished point with its index
  /// in the batch. Calls are serialized, but arrive in completion order and
  /// possibly on worker threads.
  std::function<void(std::size_t index, const ExperimentParams& params,
                     const ExperimentResult& result)>
      onResult;
};

/// Runs a batch of independent experiments and returns results in input
/// order. With opts.jobs > 1 the points run concurrently; results are
/// bit-identical to a sequential run because every point's randomness comes
/// only from its own params.
std::vector<ExperimentResult> runMany(const std::vector<ExperimentParams>& points,
                                      const SweepOptions& opts = {});

/// Sweeps client counts and returns one result per count. Each point gets
/// its own derived seed (see pointSeed), so adding or reordering points
/// never perturbs the other points' results.
std::vector<ExperimentResult> sweepClients(const ExperimentParams& base,
                                           const std::vector<int>& clientCounts,
                                           const SweepOptions& opts = {});

/// Sweeps the full (configuration × client-count) grid; result[c][p] is
/// configs[c] at clientCounts[p], identical to nested sequential loops.
std::vector<std::vector<ExperimentResult>> sweepGrid(
    const ExperimentParams& base, const std::vector<Configuration>& configs,
    const std::vector<int>& clientCounts, const SweepOptions& opts = {});

const char* mixName(App app, int mix);

}  // namespace mwsim::core
