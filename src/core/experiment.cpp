#include "core/experiment.hpp"

#include <iterator>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/dataset_cache.hpp"
#include "core/parallel.hpp"

#include "apps/auction/auction.hpp"
#include "apps/auction/auction_ejb.hpp"
#include "apps/auction/schema.hpp"
#include "apps/bbs/bbs.hpp"
#include "apps/bbs/schema.hpp"
#include "apps/bookstore/bookstore.hpp"
#include "apps/bookstore/bookstore_ejb.hpp"
#include "apps/bookstore/schema.hpp"
#include "middleware/ejb.hpp"
#include "middleware/php_module.hpp"
#include "middleware/servlet_engine.hpp"
#include "middleware/web_server.hpp"
#include "workload/client.hpp"

namespace mwsim::core {

const char* configurationName(Configuration c) {
  switch (c) {
    case Configuration::WsPhpDb: return "WsPhp-DB";
    case Configuration::WsServletDb: return "WsServlet-DB";
    case Configuration::WsServletDbSync: return "WsServlet-DB(sync)";
    case Configuration::WsServletSepDb: return "Ws-Servlet-DB";
    case Configuration::WsServletSepDbSync: return "Ws-Servlet-DB(sync)";
    case Configuration::WsServletEjbDb: return "Ws-Servlet-EJB-DB";
  }
  return "?";
}

std::vector<Configuration> allConfigurations() {
  return {Configuration::WsPhpDb,          Configuration::WsServletDb,
          Configuration::WsServletDbSync,  Configuration::WsServletSepDb,
          Configuration::WsServletSepDbSync, Configuration::WsServletEjbDb};
}

const char* mixName(App app, int mix) {
  switch (app) {
    case App::Bookstore:
      switch (mix) {
        case 0: return "browsing";
        case 1: return "shopping";
        case 2: return "ordering";
      }
      break;
    case App::Auction:
      switch (mix) {
        case 0: return "browsing";
        case 1: return "bidding";
      }
      break;
    case App::BulletinBoard:
      switch (mix) {
        case 0: return "browsing";
        case 1: return "submission";
      }
      break;
  }
  return "?";
}

ExperimentResult runExperiment(const ExperimentParams& params) {
  sim::Simulation simulation(params.seed);
  net::Network network(simulation);

  // Machines. The client farm gets an effectively infinite NIC — the paper
  // uses "enough client emulation machines" that clients never bottleneck;
  // traffic to clients still loads the web server's own NIC.
  net::Machine clients(simulation, "clients", /*cores=*/64, /*nic=*/1e12);
  net::Machine web(simulation, "WebServer");
  net::Machine dbMachine(simulation, "Database");

  const bool hasSeparateServlet = params.config == Configuration::WsServletSepDb ||
                                  params.config == Configuration::WsServletSepDbSync ||
                                  params.config == Configuration::WsServletEjbDb;
  const bool hasEjb = params.config == Configuration::WsServletEjbDb;
  const bool syncLocking = params.config == Configuration::WsServletDbSync ||
                           params.config == Configuration::WsServletSepDbSync;

  std::unique_ptr<net::Machine> servletMachine;
  if (hasSeparateServlet) {
    servletMachine = std::make_unique<net::Machine>(simulation, "Servlet Container");
  }
  std::unique_ptr<net::Machine> ejbMachine;
  if (hasEjb) {
    ejbMachine = std::make_unique<net::Machine>(simulation, "EJB Server");
  }

  // Database content: a private clone of the cached prototype for
  // (app, scale, population seed). Identical to populating from scratch
  // with the same Rng, minus the population cost on every run but the
  // first (see DatasetCache).
  apps::bookstore::Scale bookScale;
  bookScale.scale = params.bookstoreScale;
  apps::auction::Scale auctionScale;
  auctionScale.historyScale = params.auctionHistoryScale;
  apps::bbs::Scale bbsScale;
  bbsScale.historyScale = params.bbsHistoryScale;
  const double appScale = params.app == App::Bookstore ? params.bookstoreScale
                          : params.app == App::Auction ? params.auctionHistoryScale
                                                       : params.bbsHistoryScale;
  const std::uint64_t dataSeed =
      params.dataSeed != 0 ? params.dataSeed : sim::deriveSeed(params.seed, /*tag=*/0xDB);
  db::Database database = DatasetCache::global().get(params.app, appScale, dataSeed);
  // Coarse memory accounting for the resource-usage reports (paper §5.1 /
  // §6.1): the database holds the tables plus server overhead; the web
  // server's processes plus the static-image buffer cache; JVM heaps for
  // the servlet/EJB tiers.
  dbMachine.addMemory(static_cast<std::int64_t>(database.approxBytes()) + 48'000'000);
  web.addMemory(params.app == App::Bookstore ? 70'000'000 + 183'000'000
                                             : 110'000'000);  // images live on disk
  if (servletMachine) servletMachine->addMemory(95'000'000);
  if (ejbMachine) ejbMachine->addMemory(190'000'000);

  mw::DatabaseServer dbServer(simulation, dbMachine, database, params.cost);

  // Business logic.
  std::unique_ptr<mw::SqlBusinessLogic> sqlLogic;
  std::unique_ptr<mw::EjbBusinessLogic> ejbLogic;
  switch (params.app) {
    case App::Bookstore:
      if (hasEjb) ejbLogic = std::make_unique<apps::bookstore::BookstoreEjbLogic>(bookScale);
      else sqlLogic = std::make_unique<apps::bookstore::BookstoreLogic>(bookScale);
      break;
    case App::Auction:
      if (hasEjb) ejbLogic = std::make_unique<apps::auction::AuctionEjbLogic>(auctionScale);
      else sqlLogic = std::make_unique<apps::auction::AuctionLogic>(auctionScale);
      break;
    case App::BulletinBoard:
      if (hasEjb) ejbLogic = std::make_unique<apps::bbs::BbsEjbLogic>(bbsScale);
      else sqlLogic = std::make_unique<apps::bbs::BbsLogic>(bbsScale);
      break;
  }

  // Dynamic-content generator per configuration.
  std::unique_ptr<mw::DynamicContentGenerator> generator;
  switch (params.config) {
    case Configuration::WsPhpDb:
      generator = std::make_unique<mw::PhpModule>(simulation, network, web, dbServer,
                                                  *sqlLogic, params.cost, params.seed);
      break;
    case Configuration::WsServletDb:
    case Configuration::WsServletDbSync:
      generator = std::make_unique<mw::ServletEngine>(simulation, network, web, web,
                                                      dbServer, *sqlLogic, syncLocking,
                                                      params.cost, params.seed);
      break;
    case Configuration::WsServletSepDb:
    case Configuration::WsServletSepDbSync:
      generator = std::make_unique<mw::ServletEngine>(
          simulation, network, web, *servletMachine, dbServer, *sqlLogic, syncLocking,
          params.cost, params.seed);
      break;
    case Configuration::WsServletEjbDb:
      generator = std::make_unique<mw::EjbGenerator>(simulation, network, web,
                                                     *servletMachine, *ejbMachine,
                                                     dbServer, *ejbLogic, params.cost,
                                                     params.seed);
      break;
  }

  mw::WebServer webServer(simulation, web, network, clients, params.cost);
  webServer.setGenerator(generator.get());

  // Workload.
  const wl::MixMatrix mix = [&] {
    switch (params.app) {
      case App::Bookstore:
        return apps::bookstore::mixMatrix(static_cast<apps::bookstore::Mix>(params.mix));
      case App::Auction:
        return apps::auction::mixMatrix(static_cast<apps::auction::Mix>(params.mix));
      default:
        return apps::bbs::mixMatrix(static_cast<apps::bbs::Mix>(params.mix));
    }
  }();
  wl::WorkloadStats stats;
  trace::Collector collector(params.trace);
  wl::ClientFarm farm(simulation, webServer, mix, params.clients, stats, params.seed,
                      7 * sim::kSecond, 15 * sim::kMinute,
                      collector.enabled() ? &collector : nullptr);
  farm.start();

  // Usage metering, in the paper's figure order.
  stats::UsageWindow usage;
  usage.addMachine(&web);
  usage.addMachine(&dbMachine);
  if (servletMachine) usage.addMachine(servletMachine.get());
  if (ejbMachine) usage.addMachine(ejbMachine.get());

  // Phases: ramp-up, measurement, ramp-down (paper §4.5).
  simulation.runUntil(params.rampUp);
  stats.measuring = true;
  collector.setMeasuring(true);
  usage.start(simulation.now());
  simulation.runUntil(params.rampUp + params.measure);
  stats.measuring = false;
  collector.setMeasuring(false);
  usage.stop(simulation.now());
  simulation.runUntil(params.rampUp + params.measure + params.rampDown);
  // Tear down all client processes while every referenced object is alive.
  simulation.shutdown();

  ExperimentResult result;
  const double minutes = sim::toSeconds(params.measure) / 60.0;
  result.interactions = stats.completedInteractions;
  result.readWriteInteractions = stats.completedReadWrite;
  result.queries = stats.totalQueries;
  result.throughputIpm = static_cast<double>(stats.completedInteractions) / minutes;
  result.meanResponseSeconds = stats.responseSeconds.mean();
  result.p90ResponseSeconds = stats.responseSeconds.percentile(90);
  result.usage = usage.usage();
  for (const auto& [key, traffic] : network.matrix()) result.traffic[key] = traffic;
  for (const auto& [table, lock] : dbServer.tableLocks()) {
    (void)table;
    result.lockAcquisitions += lock->readAcquisitions() + lock->writeAcquisitions();
    result.contendedLockAcquisitions += lock->contendedAcquisitions();
    result.lockWaitSeconds += sim::toSeconds(lock->totalWait());
  }
  result.lockManagerWaitSeconds = sim::toSeconds(dbServer.lockManager().totalWait());
  result.databaseBytes = database.approxBytes();
  if (collector.enabled()) {
    result.trace = std::make_shared<const trace::Report>(collector.report());
  }
  return result;
}

std::uint64_t pointSeed(std::uint64_t rootSeed, Configuration config, int clients) {
  // Two chained SplitMix64 steps: first mix in the configuration, then the
  // client count. Collision-free in practice and — crucially — a pure
  // function of the point's coordinates.
  const std::uint64_t withConfig =
      sim::deriveSeed(rootSeed, 0x5EED0000ULL + static_cast<std::uint64_t>(config));
  return sim::deriveSeed(withConfig, static_cast<std::uint64_t>(clients));
}

ExperimentParams pointParams(const ExperimentParams& base, Configuration config,
                             int clients) {
  ExperimentParams p = base;
  p.config = config;
  p.clients = clients;
  p.seed = pointSeed(base.seed, config, clients);
  // All points of one sweep share the sweep's dataset: the population seed
  // stays tied to the *root* seed (exactly what a standalone run with
  // dataSeed = 0 derives), not to the per-point seed.
  if (p.dataSeed == 0) p.dataSeed = sim::deriveSeed(base.seed, /*tag=*/0xDB);
  return p;
}

std::vector<ExperimentResult> runMany(const std::vector<ExperimentParams>& points,
                                      const SweepOptions& opts) {
  std::vector<ExperimentResult> out(points.size());
  std::mutex progressMu;
  parallelFor(points.size(), opts.jobs, [&](std::size_t i) {
    out[i] = runExperiment(points[i]);
    if (opts.onResult) {
      std::lock_guard lock(progressMu);
      opts.onResult(i, points[i], out[i]);
    }
  });
  return out;
}

std::vector<ExperimentResult> sweepClients(const ExperimentParams& base,
                                           const std::vector<int>& clientCounts,
                                           const SweepOptions& opts) {
  std::vector<ExperimentParams> points;
  points.reserve(clientCounts.size());
  for (int clients : clientCounts) {
    points.push_back(pointParams(base, base.config, clients));
  }
  return runMany(points, opts);
}

std::vector<std::vector<ExperimentResult>> sweepGrid(
    const ExperimentParams& base, const std::vector<Configuration>& configs,
    const std::vector<int>& clientCounts, const SweepOptions& opts) {
  std::vector<ExperimentParams> points;
  points.reserve(configs.size() * clientCounts.size());
  for (Configuration config : configs) {
    for (int clients : clientCounts) {
      points.push_back(pointParams(base, config, clients));
    }
  }
  auto flat = runMany(points, opts);
  std::vector<std::vector<ExperimentResult>> grid(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    grid[c].assign(std::make_move_iterator(flat.begin() + static_cast<std::ptrdiff_t>(
                                               c * clientCounts.size())),
                   std::make_move_iterator(flat.begin() + static_cast<std::ptrdiff_t>(
                                               (c + 1) * clientCounts.size())));
  }
  return grid;
}

}  // namespace mwsim::core
