#include "core/experiment.hpp"

#include <iterator>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/dataset_cache.hpp"
#include "core/parallel.hpp"

#include "apps/auction/auction.hpp"
#include "apps/auction/auction_ejb.hpp"
#include "apps/auction/schema.hpp"
#include "apps/bbs/bbs.hpp"
#include "apps/bbs/schema.hpp"
#include "apps/bookstore/bookstore.hpp"
#include "apps/bookstore/bookstore_ejb.hpp"
#include "apps/bookstore/schema.hpp"
#include "middleware/db_cluster.hpp"
#include "middleware/dispatch.hpp"
#include "middleware/ejb.hpp"
#include "middleware/php_module.hpp"
#include "middleware/servlet_engine.hpp"
#include "middleware/web_server.hpp"
#include "obs/analyzer.hpp"
#include "obs/pump.hpp"
#include "scenario/timeline.hpp"
#include "workload/client.hpp"
#include "workload/open_loop.hpp"

namespace mwsim::core {

const char* mixName(App app, int mix) {
  switch (app) {
    case App::Bookstore:
      switch (mix) {
        case 0: return "browsing";
        case 1: return "shopping";
        case 2: return "ordering";
      }
      break;
    case App::Auction:
      switch (mix) {
        case 0: return "browsing";
        case 1: return "bidding";
      }
      break;
    case App::BulletinBoard:
      switch (mix) {
        case 0: return "browsing";
        case 1: return "submission";
      }
      break;
  }
  return "?";
}

namespace {

/// Tier names are also the replica-0 machine names, so single-replica
/// topologies report under exactly the legacy names.
constexpr const char* kWebTier = "WebServer";
constexpr const char* kDbTier = "Database";
constexpr const char* kServletTier = "Servlet Container";
constexpr const char* kEjbTier = "EJB Server";

std::string instanceName(const char* tier, int replica) {
  return replica == 0 ? std::string(tier)
                      : std::string(tier) + "#" + std::to_string(replica + 1);
}

std::vector<std::unique_ptr<net::Machine>> makeTier(sim::Simulation& simulation,
                                                    const char* tier,
                                                    const TierSpec& spec) {
  std::vector<std::unique_ptr<net::Machine>> out;
  out.reserve(static_cast<std::size_t>(spec.replicas));
  for (int i = 0; i < spec.replicas; ++i) {
    out.push_back(std::make_unique<net::Machine>(simulation, instanceName(tier, i),
                                                 spec.coresFor(i), spec.nicBitsPerSecond));
  }
  return out;
}

/// Per-replica middleware seed: replica 0 keeps the legacy derivation so a
/// one-replica tier is bit-identical to the pre-topology construction.
std::uint64_t replicaSeed(std::uint64_t seed, int replica) {
  return replica == 0 ? seed
                      : sim::deriveSeed(seed, 0x5E71E7ULL + static_cast<std::uint64_t>(replica));
}

/// Registers the saturation instruments for one machine: CPU utilization,
/// run-queue depth, and the Little's-law triple; NIC utilization, queue,
/// throughput, and effective bandwidth (tracks LinkDegrade events).
void addMachineProbes(obs::MetricsRegistry& registry, const net::Machine& m) {
  const std::string& n = m.name();
  registry.addUtilizationProbe(n + "/cpu", obs::ResourceKind::Cpu,
                               static_cast<double>(m.cpu().cores()),
                               [&m] { return m.cpu().busyCoreSeconds(); });
  registry.addGaugeProbe(n + "/cpu.runq",
                         [&m] { return static_cast<double>(m.cpu().activeJobs()); });
  registry.addLittleProbe(n + "/cpu", [&m] { return m.cpu().jobIntegralSeconds(); },
                          [&m] { return m.cpu().jobsCompleted(); },
                          [&m] { return m.cpu().sojournSeconds(); });
  registry.addUtilizationProbe(n + "/nic", obs::ResourceKind::Nic, 1.0,
                               [&m] { return m.nic().busySeconds(); });
  registry.addGaugeProbe(n + "/nic.queue",
                         [&m] { return static_cast<double>(m.nic().queueLength()); });
  registry.addUtilizationProbe(
      n + "/nic.mbps", obs::ResourceKind::Rate, 1.0,
      [&m] { return static_cast<double>(m.nic().bytesTransferred()) * 8.0 / 1e6; });
  registry.addGaugeProbe(n + "/nic.effective_mbps",
                         [&m] { return m.nic().effectiveBitsPerSecond() / 1e6; });
}

/// Registers the database-side instruments for one backend: the global
/// lock-manager mutex (utilization ~1.0 is the LOCK TABLES wall), table-lock
/// queue depth and grant rate, and the statement throughput.
void addBackendProbes(obs::MetricsRegistry& registry, mw::DatabaseServer& backend) {
  const std::string& n = backend.machine().name();
  const sim::Mutex& lm = backend.lockManager();
  registry.addUtilizationProbe(n + "/lock-manager", obs::ResourceKind::Lock, 1.0,
                               [&lm] { return lm.busyUnitSeconds(); });
  registry.addGaugeProbe(n + "/lock-manager.queue",
                         [&lm] { return static_cast<double>(lm.queueLength()); });
  registry.addUtilizationProbe(n + "/lock-manager.grants", obs::ResourceKind::Rate, 1.0,
                               [&lm] { return static_cast<double>(lm.acquisitions()); });
  registry.addGaugeProbe(n + "/table-lock.queue", [&backend] {
    double q = 0.0;
    for (const auto& [table, lock] : backend.tableLocks()) {
      (void)table;
      q += static_cast<double>(lock->queueLength());
    }
    return q;
  });
  registry.addUtilizationProbe(n + "/table-lock.grants", obs::ResourceKind::Rate, 1.0,
                               [&backend] {
                                 double g = 0.0;
                                 for (const auto& [table, lock] : backend.tableLocks()) {
                                   (void)table;
                                   g += static_cast<double>(lock->readAcquisitions() +
                                                            lock->writeAcquisitions());
                                 }
                                 return g;
                               });
  registry.addUtilizationProbe(
      "db.statements." + n, obs::ResourceKind::Rate, 1.0,
      [&backend] { return static_cast<double>(backend.statementsProcessed()); });
}

}  // namespace

ExperimentResult runExperiment(const ExperimentParams& params) {
  sim::Simulation simulation(params.seed);
  net::Network network(simulation);

  const Topology topo =
      params.topology ? *params.topology : canonicalTopology(params.config);
  validateTopology(topo);

  // Machines. The client farm gets an effectively infinite NIC — the paper
  // uses "enough client emulation machines" that clients never bottleneck;
  // traffic to clients still loads the web server's own NIC.
  net::Machine clients(simulation, "clients", /*cores=*/64, /*nic=*/1e12);
  auto webMachines = makeTier(simulation, kWebTier, topo.web);
  auto dbMachines = makeTier(simulation, kDbTier, topo.db);
  std::vector<std::unique_ptr<net::Machine>> servletMachines;
  if (topo.hasServletTier()) {
    servletMachines = makeTier(simulation, kServletTier, topo.servlet);
  }
  std::vector<std::unique_ptr<net::Machine>> ejbMachines;
  if (topo.hasEjbTier()) {
    ejbMachines = makeTier(simulation, kEjbTier, topo.ejb);
  }

  // Database content: every backend gets its own private clone of the
  // cached prototype for (app, scale, population seed) — identical to
  // populating each from scratch with the same Rng, minus the population
  // cost on every run but the first (see DatasetCache).
  apps::bookstore::Scale bookScale;
  bookScale.scale = params.bookstoreScale;
  apps::auction::Scale auctionScale;
  auctionScale.historyScale = params.auctionHistoryScale;
  apps::bbs::Scale bbsScale;
  bbsScale.historyScale = params.bbsHistoryScale;
  const double appScale = params.app == App::Bookstore ? params.bookstoreScale
                          : params.app == App::Auction ? params.auctionHistoryScale
                                                       : params.bbsHistoryScale;
  const std::uint64_t dataSeed =
      params.dataSeed != 0 ? params.dataSeed : sim::deriveSeed(params.seed, /*tag=*/0xDB);
  std::vector<db::Database> databases;
  databases.reserve(dbMachines.size());
  std::size_t databaseBytes = 0;
  for (std::size_t i = 0; i < dbMachines.size(); ++i) {
    databases.push_back(DatasetCache::global().get(params.app, appScale, dataSeed));
    // Coarse memory accounting (paper §5.1 / §6.1): each replica holds its
    // own full copy of the tables plus server overhead — replicated
    // databases multiply the footprint, they do not share it.
    const std::size_t bytes = databases.back().approxBytes();
    databaseBytes += bytes;
    dbMachines[i]->addMemory(topo.db.memoryBytes != 0
                                 ? topo.db.memoryBytes
                                 : static_cast<std::int64_t>(bytes) + 48'000'000);
  }
  for (auto& m : webMachines) {
    // The web server's processes plus the static-image buffer cache
    // (images live on disk for the non-bookstore apps).
    m->addMemory(topo.web.memoryBytes != 0
                     ? topo.web.memoryBytes
                     : (params.app == App::Bookstore ? 70'000'000 + 183'000'000
                                                     : 110'000'000));
  }
  for (auto& m : servletMachines) {
    m->addMemory(topo.servlet.memoryBytes != 0 ? topo.servlet.memoryBytes : 95'000'000);
  }
  for (auto& m : ejbMachines) {
    m->addMemory(topo.ejb.memoryBytes != 0 ? topo.ejb.memoryBytes : 190'000'000);
  }

  std::vector<net::Machine*> dbMachinePtrs;
  for (auto& m : dbMachines) dbMachinePtrs.push_back(m.get());
  mw::DbCluster dbCluster(simulation, params.cost, topo.dbPolicy, dbMachinePtrs,
                          std::move(databases));

  // Business logic.
  std::unique_ptr<mw::SqlBusinessLogic> sqlLogic;
  std::unique_ptr<mw::EjbBusinessLogic> ejbLogic;
  const bool hasEjb = topo.generator == GeneratorKind::Ejb;
  switch (params.app) {
    case App::Bookstore:
      if (hasEjb) ejbLogic = std::make_unique<apps::bookstore::BookstoreEjbLogic>(bookScale);
      else sqlLogic = std::make_unique<apps::bookstore::BookstoreLogic>(bookScale);
      break;
    case App::Auction:
      if (hasEjb) ejbLogic = std::make_unique<apps::auction::AuctionEjbLogic>(auctionScale);
      else sqlLogic = std::make_unique<apps::auction::AuctionLogic>(auctionScale);
      break;
    case App::BulletinBoard:
      if (hasEjb) ejbLogic = std::make_unique<apps::bbs::BbsEjbLogic>(bbsScale);
      else sqlLogic = std::make_unique<apps::bbs::BbsLogic>(bbsScale);
      break;
  }

  // Dynamic-content generators. Tiers that run one engine per replica
  // (dedicated servlet containers) get a dispatching wrapper; single-engine
  // tiers take the direct path, event-identical to the legacy construction.
  net::Machine& web0 = *webMachines[0];
  sim::NamedMutexSet servletMonitors(simulation);  // shared across JVM replicas
  std::vector<std::unique_ptr<mw::DynamicContentGenerator>> engines;
  std::unique_ptr<mw::DispatchingGenerator> dispatcher;
  mw::DynamicContentGenerator* generator = nullptr;
  switch (topo.generator) {
    case GeneratorKind::Php:
      engines.push_back(std::make_unique<mw::PhpModule>(
          simulation, network, web0, dbCluster, *sqlLogic, params.cost, params.seed));
      break;
    case GeneratorKind::Servlet:
      if (topo.servletColocated) {
        // One engine shared by all web replicas; each request's JVM work
        // runs on the replica that took it (request.web).
        engines.push_back(std::make_unique<mw::ServletEngine>(
            simulation, network, web0, web0, dbCluster, *sqlLogic, topo.syncLocking,
            params.cost, params.seed, &servletMonitors));
      } else {
        for (std::size_t s = 0; s < servletMachines.size(); ++s) {
          engines.push_back(std::make_unique<mw::ServletEngine>(
              simulation, network, web0, *servletMachines[s], dbCluster, *sqlLogic,
              topo.syncLocking, params.cost,
              replicaSeed(params.seed, static_cast<int>(s)), &servletMonitors));
        }
      }
      break;
    case GeneratorKind::Ejb: {
      std::vector<net::Machine*> ejbPtrs;
      for (auto& m : ejbMachines) ejbPtrs.push_back(m.get());
      for (std::size_t s = 0; s < servletMachines.size(); ++s) {
        engines.push_back(std::make_unique<mw::EjbGenerator>(
            simulation, network, web0, *servletMachines[s], ejbPtrs, dbCluster,
            *ejbLogic, params.cost, replicaSeed(params.seed, static_cast<int>(s))));
      }
      break;
    }
  }
  if (engines.size() == 1) {
    generator = engines.front().get();
  } else {
    std::vector<mw::DynamicContentGenerator*> children;
    for (auto& e : engines) children.push_back(e.get());
    dispatcher =
        std::make_unique<mw::DispatchingGenerator>(std::move(children), topo.servletDispatch);
    generator = dispatcher.get();
  }

  std::vector<std::unique_ptr<mw::WebServer>> webServers;
  for (auto& m : webMachines) {
    webServers.push_back(
        std::make_unique<mw::WebServer>(simulation, *m, network, clients, params.cost));
    webServers.back()->setGenerator(generator);
  }
  // The balancer exists for replicated web tiers (as before), and also
  // whenever the scenario needs failover handling — crash events or request
  // timeouts must fail requests gracefully even with a single replica.
  mw::HttpService* frontend = webServers.front().get();
  std::unique_ptr<mw::LoadBalancer> balancer;
  if (webServers.size() > 1 || params.scenario.needsFailover()) {
    std::vector<mw::HttpService*> replicas;
    for (auto& w : webServers) replicas.push_back(w.get());
    balancer = std::make_unique<mw::LoadBalancer>(
        simulation, std::move(replicas), topo.webDispatch,
        mw::FailoverPolicy{params.scenario.requestTimeout,
                           params.scenario.requestRetries});
    frontend = balancer.get();
  }

  // Platform event timeline. Installed (validated + driver spawned) before
  // the workload starts; a scenario without events spawns nothing, leaving
  // the event sequence untouched.
  scenario::Timeline timeline(params.scenario.events);
  if (!timeline.empty()) {
    scenario::PlatformHooks hooks;
    for (auto& m : webMachines) hooks.web.push_back(m.get());
    for (auto& m : servletMachines) hooks.servlet.push_back(m.get());
    for (auto& m : ejbMachines) hooks.ejb.push_back(m.get());
    for (auto& m : dbMachines) hooks.db.push_back(m.get());
    hooks.balancer = balancer.get();
    timeline.install(simulation, hooks);
  }

  // Workload.
  const wl::MixMatrix mix = [&] {
    switch (params.app) {
      case App::Bookstore:
        return apps::bookstore::mixMatrix(static_cast<apps::bookstore::Mix>(params.mix));
      case App::Auction:
        return apps::auction::mixMatrix(static_cast<apps::auction::Mix>(params.mix));
      default:
        return apps::bbs::mixMatrix(static_cast<apps::bbs::Mix>(params.mix));
    }
  }();
  wl::WorkloadStats stats;
  std::shared_ptr<stats::TimeSeries> series;
  if (params.scenario.seriesInterval > 0) {
    series = std::make_shared<stats::TimeSeries>(params.scenario.seriesInterval);
    stats.series = series.get();
  }
  trace::Collector collector(params.trace);
  wl::ClientFarm farm(simulation, *frontend, mix, params.clients, stats, params.seed,
                      7 * sim::kSecond, 15 * sim::kMinute,
                      collector.enabled() ? &collector : nullptr);
  std::unique_ptr<wl::OpenLoopFarm> openFarm;
  if (params.scenario.openLoop()) {
    openFarm = std::make_unique<wl::OpenLoopFarm>(
        simulation, *frontend, mix, params.scenario, stats, params.seed,
        collector.enabled() ? &collector : nullptr);
    openFarm->start();
  } else {
    farm.start();
  }

  // Usage metering, in the paper's figure order, one entry per instance.
  stats::UsageWindow usage;
  for (auto& m : webMachines) usage.addMachine(m.get(), kWebTier);
  for (auto& m : dbMachines) usage.addMachine(m.get(), kDbTier);
  for (auto& m : servletMachines) usage.addMachine(m.get(), kServletTier);
  for (auto& m : ejbMachines) usage.addMachine(m.get(), kEjbTier);

  // Metrics layer (src/obs/): per-run registry, saturation probes across
  // every layer, and the sampling pump. Everything here only *reads*
  // simulation state, and the pump drives runUntil in period-sized steps
  // instead of spawning a simulated process — so enabling metrics cannot
  // perturb the event sequence (asserted byte-identical in metrics_test).
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::MetricsPump> pump;
  if constexpr (obs::kEnabled) {
    if (params.metrics.enabled) {
      registry = std::make_unique<obs::MetricsRegistry>();
      simulation.setMetrics(registry.get());
      for (auto& m : webMachines) addMachineProbes(*registry, *m);
      for (auto& m : dbMachines) addMachineProbes(*registry, *m);
      for (auto& m : servletMachines) addMachineProbes(*registry, *m);
      for (auto& m : ejbMachines) addMachineProbes(*registry, *m);
      for (std::size_t b = 0; b < dbCluster.size(); ++b) {
        addBackendProbes(*registry, dbCluster.backend(b));
      }
      if (dbCluster.size() > 1) {
        sim::Mutex* ws = dbCluster.writeStream();
        registry->addUtilizationProbe("db-cluster/write-stream",
                                      obs::ResourceKind::Stream, 1.0,
                                      [ws] { return ws->busyUnitSeconds(); });
        registry->addGaugeProbe("db-cluster/write-stream.queue", [ws] {
          return static_cast<double>(ws->queueLength());
        });
        std::vector<std::string> backendNames;
        for (std::size_t b = 0; b < dbCluster.size(); ++b) {
          backendNames.push_back(dbCluster.backend(b).machine().name());
        }
        registry->initBackendReads(backendNames);
      }
      for (std::size_t i = 0; i < webServers.size(); ++i) {
        const mw::WebServer& w = *webServers[i];
        const std::string n = webMachines[i]->name();
        registry->addUtilizationProbe(
            n + "/httpd-pool", obs::ResourceKind::Pool,
            static_cast<double>(w.processPool().capacity()),
            [&w] { return w.processPool().busyUnitSeconds(); });
        registry->addGaugeProbe(n + "/httpd-pool.queue", [&w] {
          return static_cast<double>(w.processPool().queueLength());
        });
      }
      if (balancer) {
        const mw::LoadBalancer* lb = balancer.get();
        for (std::size_t i = 0; i < lb->replicaCount(); ++i) {
          registry->addGaugeProbe("lb/inflight." + webMachines[i]->name(),
                                  [lb, i] {
                                    return static_cast<double>(lb->picker().inflight(i));
                                  });
        }
      }
      registry->addGaugeProbe("kernel/pending-events", [&simulation] {
        return static_cast<double>(simulation.pendingEvents());
      });
      stats.responseHist = &registry->histogram("response_sec");
      // The pump takes its baseline snapshot now: every instrument must be
      // registered above this line.
      pump = std::make_unique<obs::MetricsPump>(simulation, *registry,
                                                params.metrics.period);
    }
  }

  // Phases: ramp-up, measurement, ramp-down (paper §4.5). With metrics on,
  // the pump splits each runUntil into period-sized steps; runUntil(t) runs
  // all events with timestamp <= t and then advances the clock to t, so the
  // split dispatches the identical event sequence.
  const auto advanceTo = [&](sim::SimTime t) {
    if (pump) {
      pump->runTo(t);
    } else {
      simulation.runUntil(t);
    }
  };
  advanceTo(params.rampUp);
  stats.measuring = true;
  collector.setMeasuring(true);
  usage.start(simulation.now());
  advanceTo(params.rampUp + params.measure);
  stats.measuring = false;
  collector.setMeasuring(false);
  usage.stop(simulation.now());
  advanceTo(params.rampUp + params.measure + params.rampDown);
  if (pump) pump->finish();  // tail-flush a partial final interval
  // Tear down all client processes while every referenced object is alive.
  simulation.shutdown();

  ExperimentResult result;
  const double minutes = sim::toSeconds(params.measure) / 60.0;
  result.interactions = stats.completedInteractions;
  result.readWriteInteractions = stats.completedReadWrite;
  result.queries = stats.totalQueries;
  result.throughputIpm = static_cast<double>(stats.completedInteractions) / minutes;
  result.meanResponseSeconds = stats.responseSeconds.mean();
  result.p90ResponseSeconds = stats.responseSeconds.percentile(90);
  result.usage = usage.usage();
  result.tierUsage = stats::aggregateByTier(result.usage);
  for (const auto& [key, traffic] : network.matrix()) result.traffic[key] = traffic;
  for (std::size_t b = 0; b < dbCluster.size(); ++b) {
    const mw::DatabaseServer& backend = dbCluster.backend(b);
    for (const auto& [table, lock] : backend.tableLocks()) {
      (void)table;
      result.lockAcquisitions += lock->readAcquisitions() + lock->writeAcquisitions();
      result.contendedLockAcquisitions += lock->contendedAcquisitions();
      result.lockWaitSeconds += sim::toSeconds(lock->totalWait());
    }
    result.lockManagerWaitSeconds += sim::toSeconds(backend.lockManager().totalWait());
  }
  result.databaseBytes = databaseBytes;
  for (const auto& w : webServers) result.webErrors += w->errorCount();
  if (balancer) {
    result.webErrors += balancer->errorCount();
    result.reroutedRequests = balancer->rerouteCount();
    result.timedOutRequests = balancer->timeoutCount();
  }
  if (openFarm) {
    result.openLoopArrivals = openFarm->arrivals();
    result.shedSessions = openFarm->shedSessions();
  }
  result.series = std::move(series);
  if (collector.enabled()) {
    result.trace = std::make_shared<const trace::Report>(collector.report());
  }
  if (pump) {
    const sim::SimTime from = params.rampUp;
    const sim::SimTime to = params.rampUp + params.measure;
    obs::MetricsReport report = pump->buildReport(from, to);
    report.verdict = obs::analyze(report, result.trace.get(), from, to);
    result.metrics = std::make_shared<const obs::MetricsReport>(std::move(report));
    simulation.setMetrics(nullptr);
  }
  return result;
}

std::uint64_t pointSeed(std::uint64_t rootSeed, App app, int mix, Configuration config,
                        int clients, std::uint64_t scenarioTag) {
  // Chained SplitMix64 steps over the point's *full* coordinates.
  // The pre-fix derivation hashed only (config, clients), so figure benches
  // sharing those coordinates — e.g. the bookstore's shopping and browsing
  // sweeps at one client count — ran correlated random streams. The
  // scenario tag closed the same class of gap for scenario sweeps: without
  // it, an open-loop point reused the closed-loop point's streams at equal
  // (app, mix, config, clients). Tag 0 (scenario off) adds no step, so
  // every pre-scenario sweep keeps its exact seeds.
  std::uint64_t s = sim::deriveSeed(rootSeed, 0xA44ULL + static_cast<std::uint64_t>(app));
  s = sim::deriveSeed(s, 0x313ULL + static_cast<std::uint64_t>(mix));
  s = sim::deriveSeed(s, 0x5EED0000ULL + static_cast<std::uint64_t>(config));
  s = sim::deriveSeed(s, static_cast<std::uint64_t>(clients));
  return scenarioTag == 0 ? s : sim::deriveSeed(s, scenarioTag);
}

ExperimentParams pointParams(const ExperimentParams& base, Configuration config,
                             int clients) {
  ExperimentParams p = base;
  p.config = config;
  p.clients = clients;
  p.seed = pointSeed(base.seed, base.app, base.mix, config, clients,
                     base.scenario.seedTag());
  // All points of one sweep share the sweep's dataset: the population seed
  // stays tied to the *root* seed (exactly what a standalone run with
  // dataSeed = 0 derives), not to the per-point seed.
  if (p.dataSeed == 0) p.dataSeed = sim::deriveSeed(base.seed, /*tag=*/0xDB);
  return p;
}

std::vector<ExperimentResult> runMany(const std::vector<ExperimentParams>& points,
                                      const SweepOptions& opts) {
  std::vector<ExperimentResult> out(points.size());
  std::mutex progressMu;
  parallelFor(points.size(), opts.jobs, [&](std::size_t i) {
    out[i] = runExperiment(points[i]);
    if (opts.onResult) {
      std::lock_guard lock(progressMu);
      opts.onResult(i, points[i], out[i]);
    }
  });
  return out;
}

std::vector<ExperimentResult> sweepClients(const ExperimentParams& base,
                                           const std::vector<int>& clientCounts,
                                           const SweepOptions& opts) {
  std::vector<ExperimentParams> points;
  points.reserve(clientCounts.size());
  for (int clients : clientCounts) {
    points.push_back(pointParams(base, base.config, clients));
  }
  return runMany(points, opts);
}

std::vector<std::vector<ExperimentResult>> sweepGrid(
    const ExperimentParams& base, const std::vector<Configuration>& configs,
    const std::vector<int>& clientCounts, const SweepOptions& opts) {
  std::vector<ExperimentParams> points;
  points.reserve(configs.size() * clientCounts.size());
  for (Configuration config : configs) {
    for (int clients : clientCounts) {
      points.push_back(pointParams(base, config, clients));
    }
  }
  auto flat = runMany(points, opts);
  std::vector<std::vector<ExperimentResult>> grid(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    grid[c].assign(std::make_move_iterator(flat.begin() + static_cast<std::ptrdiff_t>(
                                               c * clientCounts.size())),
                   std::make_move_iterator(flat.begin() + static_cast<std::ptrdiff_t>(
                                               (c + 1) * clientCounts.size())));
  }
  return grid;
}

}  // namespace mwsim::core
