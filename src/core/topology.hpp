#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "middleware/policy.hpp"

namespace mwsim::core {

/// The six software/hardware configurations of the paper's Figure 4.
enum class Configuration {
  WsPhpDb,             // PHP module in the web server; DB on its own machine
  WsServletDb,         // servlet engine co-located with the web server
  WsServletDbSync,     // + Java-monitor locking instead of LOCK TABLES
  WsServletSepDb,      // servlet engine on a dedicated machine
  WsServletSepDbSync,  // + Java-monitor locking
  WsServletEjbDb,      // web, servlet, EJB and DB each on their own machine
};

const char* configurationName(Configuration c);
std::vector<Configuration> allConfigurations();

/// Which middleware generates the dynamic content.
enum class GeneratorKind { Php, Servlet, Ejb };

/// One tier of machines. Replicas are identical unless `coresPerReplica`
/// makes the tier heterogeneous.
struct TierSpec {
  int replicas = 1;
  int cores = 1;
  double nicBitsPerSecond = 100e6;
  /// Memory charged to each replica; 0 uses the tier's model default (the
  /// paper's measured footprints, and for the database tier the size of the
  /// replica's own dataset clone plus server overhead).
  std::int64_t memoryBytes = 0;
  /// Heterogeneous tiers: per-replica core counts (e.g. one big box plus
  /// small spill-over replicas). Empty means homogeneous — every replica
  /// gets `cores`. When set, it must have exactly `replicas` entries, each
  /// >= 1, and `cores` is ignored.
  std::vector<int> coresPerReplica;

  int coresFor(int replica) const {
    return coresPerReplica.empty() ? cores
                                   : coresPerReplica[static_cast<std::size_t>(replica)];
  }
};

/// A complete experiment topology as data — what the hard-coded
/// `switch (params.config)` used to construct imperatively. The paper's six
/// configurations are canned Topologies (canonicalTopology); cluster
/// experiments scale the tier replica counts and pick dispatch policies.
struct Topology {
  GeneratorKind generator = GeneratorKind::Php;
  /// Java-monitor critical sections instead of LOCK TABLES (Servlet only).
  bool syncLocking = false;
  /// Servlet engine shares the web tier's machines (no dedicated tier).
  bool servletColocated = false;

  TierSpec web;
  TierSpec servlet;  // meaningful only when hasServletTier()
  TierSpec ejb;      // meaningful only when hasEjbTier()
  TierSpec db;

  mw::Dispatch webDispatch = mw::Dispatch::RoundRobin;
  mw::Dispatch servletDispatch = mw::Dispatch::RoundRobin;
  mw::DbPolicy dbPolicy = mw::DbPolicy::MasterReplica;

  bool hasServletTier() const {
    return (generator == GeneratorKind::Servlet && !servletColocated) ||
           generator == GeneratorKind::Ejb;
  }
  bool hasEjbTier() const { return generator == GeneratorKind::Ejb; }
};

/// The data-driven equivalent of one of the paper's six configurations
/// (proven event-identical to the legacy construction by the topology
/// equivalence tests).
Topology canonicalTopology(Configuration c);

/// Throws std::invalid_argument on inconsistent topologies (zero replicas,
/// sync locking outside the servlet generator, co-located EJB, ...).
void validateTopology(const Topology& t);

/// Human-readable one-liner, e.g. "php web×2(round-robin) db×2(master-replica)".
std::string topologySummary(const Topology& t);

}  // namespace mwsim::core
