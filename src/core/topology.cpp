#include "core/topology.hpp"

#include <stdexcept>

namespace mwsim::core {

const char* configurationName(Configuration c) {
  switch (c) {
    case Configuration::WsPhpDb: return "WsPhp-DB";
    case Configuration::WsServletDb: return "WsServlet-DB";
    case Configuration::WsServletDbSync: return "WsServlet-DB(sync)";
    case Configuration::WsServletSepDb: return "Ws-Servlet-DB";
    case Configuration::WsServletSepDbSync: return "Ws-Servlet-DB(sync)";
    case Configuration::WsServletEjbDb: return "Ws-Servlet-EJB-DB";
  }
  return "?";
}

std::vector<Configuration> allConfigurations() {
  return {Configuration::WsPhpDb,          Configuration::WsServletDb,
          Configuration::WsServletDbSync,  Configuration::WsServletSepDb,
          Configuration::WsServletSepDbSync, Configuration::WsServletEjbDb};
}

Topology canonicalTopology(Configuration c) {
  Topology t;
  switch (c) {
    case Configuration::WsPhpDb:
      t.generator = GeneratorKind::Php;
      break;
    case Configuration::WsServletDb:
      t.generator = GeneratorKind::Servlet;
      t.servletColocated = true;
      break;
    case Configuration::WsServletDbSync:
      t.generator = GeneratorKind::Servlet;
      t.servletColocated = true;
      t.syncLocking = true;
      break;
    case Configuration::WsServletSepDb:
      t.generator = GeneratorKind::Servlet;
      break;
    case Configuration::WsServletSepDbSync:
      t.generator = GeneratorKind::Servlet;
      t.syncLocking = true;
      break;
    case Configuration::WsServletEjbDb:
      t.generator = GeneratorKind::Ejb;
      break;
  }
  return t;
}

namespace {

void checkTier(const char* name, const TierSpec& spec) {
  if (spec.replicas < 1) {
    throw std::invalid_argument(std::string(name) + " tier needs at least one replica");
  }
  if (spec.cores < 1) {
    throw std::invalid_argument(std::string(name) + " tier needs at least one core");
  }
  if (!spec.coresPerReplica.empty()) {
    if (spec.coresPerReplica.size() != static_cast<std::size_t>(spec.replicas)) {
      throw std::invalid_argument(std::string(name) +
                                  " tier coresPerReplica must have one entry per replica");
    }
    for (int c : spec.coresPerReplica) {
      if (c < 1) {
        throw std::invalid_argument(std::string(name) +
                                    " tier coresPerReplica entries must be >= 1");
      }
    }
  }
  if (!(spec.nicBitsPerSecond > 0.0)) {
    throw std::invalid_argument(std::string(name) + " tier needs positive NIC bandwidth");
  }
  if (spec.memoryBytes < 0) {
    throw std::invalid_argument(std::string(name) + " tier memory cannot be negative");
  }
}

}  // namespace

void validateTopology(const Topology& t) {
  checkTier("web", t.web);
  checkTier("db", t.db);
  if (t.hasServletTier()) checkTier("servlet", t.servlet);
  if (t.hasEjbTier()) checkTier("ejb", t.ejb);
  if (t.syncLocking && t.generator != GeneratorKind::Servlet) {
    throw std::invalid_argument(
        "sync locking needs JVM monitors: only the servlet generator supports it");
  }
  if (t.servletColocated && t.generator == GeneratorKind::Ejb) {
    throw std::invalid_argument("the EJB pipeline always runs a dedicated servlet tier");
  }
  if (t.servletColocated && t.generator == GeneratorKind::Php) {
    throw std::invalid_argument("servletColocated is meaningless for the PHP generator");
  }
}

std::string topologySummary(const Topology& t) {
  const char* gen = t.generator == GeneratorKind::Php       ? "php"
                    : t.generator == GeneratorKind::Servlet ? "servlet"
                                                            : "ejb";
  std::string out = gen;
  if (t.syncLocking) out += "(sync)";
  auto tier = [](const char* name, const TierSpec& spec, const char* policy) {
    std::string s = std::string(" ") + name;
    s += "×" + std::to_string(spec.replicas);
    if (!spec.coresPerReplica.empty()) {
      s += "[";
      for (std::size_t i = 0; i < spec.coresPerReplica.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(spec.coresPerReplica[i]) + "c";
      }
      s += "]";
    }
    if (policy != nullptr && spec.replicas > 1) s += std::string("(") + policy + ")";
    return s;
  };
  out += tier("web", t.web, dispatchName(t.webDispatch));
  if (t.servletColocated) out += " servlet=colocated";
  if (t.hasServletTier()) out += tier("servlet", t.servlet, dispatchName(t.servletDispatch));
  if (t.hasEjbTier()) out += tier("ejb", t.ejb, nullptr);
  out += tier("db", t.db, dbPolicyName(t.dbPolicy));
  return out;
}

}  // namespace mwsim::core
