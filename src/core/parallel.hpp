#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mwsim::core {

/// Fixed-size worker pool for fanning independent experiment points out
/// across OS threads.
///
/// The simulation kernel itself stays single-threaded; parallelism lives one
/// level up, at the granularity of whole `runExperiment` calls (one
/// `sim::Simulation` per task, no cross-task shared mutable state — see
/// DESIGN.md "Parallel sweeps"). Tasks are pulled from one shared queue, so
/// long and short points load-balance automatically.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks must not throw (wrap exceptions yourself).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait();

  int threadCount() const noexcept { return static_cast<int>(workers_.size()); }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::deque<std::function<void()>> queue_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every `i` in `[0, n)` on up to `jobs` threads and
/// returns when all calls finished. `jobs <= 1` runs inline on the calling
/// thread, in index order, with no threads created.
///
/// `fn` must be safe to call concurrently for distinct indexes. Exceptions
/// are captured per index; after all indexes finish, the exception from the
/// lowest-numbered failing index is rethrown (so the surviving behaviour is
/// deterministic and independent of thread scheduling).
void parallelFor(std::size_t n, int jobs, const std::function<void(std::size_t)>& fn);

/// Worker-thread count for `--jobs 0` style "pick for me" requests: the
/// hardware concurrency, at least 1.
int defaultJobCount();

}  // namespace mwsim::core
