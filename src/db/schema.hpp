#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mwsim::db {

enum class ColumnType { Int, Double, String };

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::Int;
};

/// Declarative table schema: columns, optional auto-increment integer
/// primary key, and secondary indexes (single-column).
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  /// Index into `columns` of the primary key, if any. Primary keys are
  /// unique; inserting a duplicate is an error.
  std::optional<std::size_t> primaryKey;
  /// True if the primary key auto-increments when inserted as NULL.
  bool autoIncrement = false;
  /// Indices into `columns` that carry secondary (non-unique) indexes.
  std::vector<std::size_t> secondaryIndexes;

  std::optional<std::size_t> columnIndex(const std::string& column) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column) return i;
    }
    return std::nullopt;
  }
};

/// Fluent helper for building schemas.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string name) { schema_.name = std::move(name); }

  SchemaBuilder& col(std::string name, ColumnType type) {
    schema_.columns.push_back({std::move(name), type});
    return *this;
  }
  SchemaBuilder& intCol(std::string name) { return col(std::move(name), ColumnType::Int); }
  SchemaBuilder& doubleCol(std::string name) { return col(std::move(name), ColumnType::Double); }
  SchemaBuilder& stringCol(std::string name) { return col(std::move(name), ColumnType::String); }

  /// Marks the most recently added column as the primary key.
  SchemaBuilder& primaryKey(bool autoIncrement = false) {
    schema_.primaryKey = schema_.columns.size() - 1;
    schema_.autoIncrement = autoIncrement;
    return *this;
  }

  /// Adds a secondary index on the most recently added column.
  SchemaBuilder& indexed() {
    schema_.secondaryIndexes.push_back(schema_.columns.size() - 1);
    return *this;
  }

  TableSchema build() { return std::move(schema_); }

 private:
  TableSchema schema_;
};

}  // namespace mwsim::db
