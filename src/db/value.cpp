#include "db/value.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mwsim::db {

std::int64_t Value::asInt() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) return static_cast<std::int64_t>(*d);
  throw std::runtime_error("Value::asInt on non-numeric value");
}

double Value::asDouble() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  throw std::runtime_error("Value::asDouble on non-numeric value");
}

const std::string& Value::asString() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  throw std::runtime_error("Value::asString on non-string value");
}

std::string Value::toDisplayString() const {
  if (isNull()) return "NULL";
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v_)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", *d);
    return buf;
  }
  return std::get<std::string>(v_);
}

namespace {
// Type ranks for cross-type ordering: NULL < numeric < string.
int rank(const Value& v) {
  if (v.isNull()) return 0;
  if (v.isNumeric()) return 1;
  return 2;
}
}  // namespace

int Value::compare(const Value& other) const {
  const int ra = rank(*this);
  const int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      if (isInt() && other.isInt()) {
        const auto a = std::get<std::int64_t>(v_);
        const auto b = std::get<std::int64_t>(other.v_);
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = asDouble();
      const double b = other.asDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      const int c = asString().compare(other.asString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::size_t Value::hash() const {
  if (isNull()) return 0x9E3779B9u;
  if (isString()) return std::hash<std::string>{}(std::get<std::string>(v_));
  // Hash ints and integral doubles identically so 1 and 1.0 probe the same
  // bucket (they compare equal).
  if (isInt()) return std::hash<std::int64_t>{}(std::get<std::int64_t>(v_));
  const double d = std::get<double>(v_);
  const double r = std::nearbyint(d);
  if (r == d) return std::hash<std::int64_t>{}(static_cast<std::int64_t>(r));
  return std::hash<double>{}(d);
}

std::size_t Value::byteSize() const {
  if (isNull()) return 1;
  if (isString()) return std::get<std::string>(v_).size();
  return 8;
}

}  // namespace mwsim::db
