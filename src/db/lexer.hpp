#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "db/value.hpp"

namespace mwsim::db {

enum class TokenType {
  Identifier,  // table / column names; keywords are uppercased identifiers
  Integer,
  Float,
  String,
  Param,   // ?
  Star,    // *
  Comma,
  Dot,
  LParen,
  RParen,
  Plus,
  Minus,
  Slash,
  Eq,      // =
  Ne,      // != or <>
  Lt,
  Le,
  Gt,
  Ge,
  Semicolon,
  End,
};

struct Token {
  TokenType type = TokenType::End;
  std::string text;       // identifier (original case) or string literal body
  std::string upperText;  // identifier, uppercased (for keyword checks)
  std::int64_t intValue = 0;
  double floatValue = 0.0;
  std::size_t pos = 0;  // byte offset in the source, for error messages
};

/// Tokenizes a SQL string. Throws std::runtime_error on malformed input.
std::vector<Token> lex(std::string_view sql);

}  // namespace mwsim::db
