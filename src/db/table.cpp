#include "db/table.hpp"

#include <stdexcept>

namespace mwsim::db {

namespace {
std::size_t rowBytes(const Row& row) {
  std::size_t n = 0;
  for (const Value& v : row) n += v.byteSize() + 8;
  return n;
}
}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  for (std::size_t c : schema_.secondaryIndexes) {
    secondary_.emplace(c, std::multimap<Value, RowId>{});
  }
}

std::int64_t Table::insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    throw std::runtime_error("INSERT into " + schema_.name + ": expected " +
                             std::to_string(schema_.columns.size()) + " values, got " +
                             std::to_string(row.size()));
  }
  std::int64_t keyOut = 0;
  if (schema_.primaryKey) {
    Value& key = row[*schema_.primaryKey];
    if (key.isNull()) {
      if (!schema_.autoIncrement) {
        throw std::runtime_error("NULL primary key in " + schema_.name);
      }
      key = Value(nextAutoId_++);
    } else if (key.isInt() && key.asInt() >= nextAutoId_) {
      nextAutoId_ = key.asInt() + 1;
    }
    if (pkIndex_.contains(key)) {
      throw std::runtime_error("duplicate primary key in " + schema_.name + ": " +
                               key.toDisplayString());
    }
    keyOut = key.isInt() ? key.asInt() : 0;
    lastInsertId_ = keyOut;
  }
  const RowId id = static_cast<RowId>(rows_.size());
  approxBytes_ += rowBytes(row);
  rows_.push_back(std::move(row));
  tombstone_.push_back(false);
  ++liveRows_;
  indexInsert(id);
  return keyOut;
}

std::optional<RowId> Table::findByPk(const Value& key) const {
  if (!schema_.primaryKey) return std::nullopt;
  auto it = pkIndex_.find(key);
  if (it == pkIndex_.end()) return std::nullopt;
  return it->second;
}

std::vector<RowId> Table::findByIndex(std::size_t column, const Value& key) const {
  std::vector<RowId> out;
  auto it = secondary_.find(column);
  if (it == secondary_.end()) throw std::runtime_error("no index on column");
  auto [lo, hi] = it->second.equal_range(key);
  for (auto i = lo; i != hi; ++i) out.push_back(i->second);
  return out;
}

std::vector<RowId> Table::findRangeByIndex(std::size_t column,
                                           const std::optional<Value>& lo, bool loInclusive,
                                           const std::optional<Value>& hi,
                                           bool hiInclusive) const {
  std::vector<RowId> out;
  auto it = secondary_.find(column);
  if (it == secondary_.end()) throw std::runtime_error("no index on column");
  const auto& index = it->second;
  auto begin = lo ? (loInclusive ? index.lower_bound(*lo) : index.upper_bound(*lo))
                  : index.begin();
  auto end = hi ? (hiInclusive ? index.upper_bound(*hi) : index.lower_bound(*hi))
                : index.end();
  for (auto i = begin; i != end; ++i) out.push_back(i->second);
  return out;
}

bool Table::hasIndexOn(std::size_t column) const {
  return secondary_.contains(column);
}

void Table::updateCell(RowId id, std::size_t column, Value v) {
  if (!isLive(id)) throw std::runtime_error("update of dead row");
  Row& row = rows_[id];
  const bool pkCol = isPrimaryKeyColumn(column);
  if (pkCol) {
    if (row[column] == v) return;
    if (pkIndex_.contains(v)) {
      throw std::runtime_error("duplicate primary key on update in " + schema_.name);
    }
    pkIndex_.erase(row[column]);
    pkIndex_.emplace(v, id);
  }
  auto sec = secondary_.find(column);
  if (sec != secondary_.end()) {
    auto [lo, hi] = sec->second.equal_range(row[column]);
    for (auto i = lo; i != hi; ++i) {
      if (i->second == id) {
        sec->second.erase(i);
        break;
      }
    }
    sec->second.emplace(v, id);
  }
  approxBytes_ -= row[column].byteSize();
  approxBytes_ += v.byteSize();
  row[column] = std::move(v);
}

void Table::erase(RowId id) {
  if (!isLive(id)) return;
  indexErase(id);
  approxBytes_ -= rowBytes(rows_[id]);
  tombstone_[id] = true;
  --liveRows_;
}

void Table::indexInsert(RowId id) {
  const Row& row = rows_[id];
  if (schema_.primaryKey) pkIndex_.emplace(row[*schema_.primaryKey], id);
  for (auto& [col, index] : secondary_) index.emplace(row[col], id);
}

void Table::indexErase(RowId id) {
  const Row& row = rows_[id];
  if (schema_.primaryKey) pkIndex_.erase(row[*schema_.primaryKey]);
  for (auto& [col, index] : secondary_) {
    auto [lo, hi] = index.equal_range(row[col]);
    for (auto i = lo; i != hi; ++i) {
      if (i->second == id) {
        index.erase(i);
        break;
      }
    }
  }
}

}  // namespace mwsim::db
