#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "db/table.hpp"
#include "db/value.hpp"

namespace mwsim::db {

/// Materialized result of a SELECT.
class ResultSet {
 public:
  std::vector<std::string> columns;
  std::vector<Row> rows;

  bool empty() const noexcept { return rows.empty(); }
  std::size_t rowCount() const noexcept { return rows.size(); }

  std::size_t columnIndex(const std::string& name) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return i;
    }
    throw std::runtime_error("no such result column: " + name);
  }

  const Value& at(std::size_t row, const std::string& column) const {
    return rows.at(row)[columnIndex(column)];
  }
  const Value& at(std::size_t row, std::size_t column) const {
    return rows.at(row).at(column);
  }
  std::int64_t intAt(std::size_t row, const std::string& column) const {
    return at(row, column).asInt();
  }
  double doubleAt(std::size_t row, const std::string& column) const {
    return at(row, column).asDouble();
  }
  const std::string& stringAt(std::size_t row, const std::string& column) const {
    return at(row, column).asString();
  }

  /// Approximate wire size of the result, for transfer costing.
  std::size_t byteSize() const {
    std::size_t n = 0;
    for (const auto& c : columns) n += c.size();
    for (const auto& r : rows) {
      for (const auto& v : r) n += v.byteSize() + 4;
    }
    return n;
  }
};

/// Statistics from executing one statement — the inputs to the database
/// CPU cost model.
struct ExecStats {
  std::uint64_t rowsExamined = 0;  // rows touched by scans and lookups
  std::uint64_t bytesExamined = 0;  // approx row bytes touched (avg width)
  std::uint64_t rowsReturned = 0;
  std::uint64_t rowsModified = 0;
  std::uint64_t rowsSorted = 0;  // rows that passed through a sort
  std::uint64_t aggregatedGroups = 0;
  bool usedIndex = false;
  std::uint64_t resultBytes = 0;
};

struct ExecResult {
  ResultSet resultSet;
  std::uint64_t affectedRows = 0;
  std::int64_t lastInsertId = 0;
  ExecStats stats;
};

}  // namespace mwsim::db
