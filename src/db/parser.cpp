#include "db/parser.hpp"

#include <stdexcept>

#include "db/lexer.hpp"

namespace mwsim::db {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view sql) : sql_(sql), tokens_(lex(sql)) {}

  std::shared_ptr<const Statement> parse() {
    auto stmt = std::make_shared<Statement>();
    stmt->text.assign(sql_);
    const Token& first = peek();
    if (first.type != TokenType::Identifier) fail("expected statement keyword");
    const std::string& kw = first.upperText;
    if (kw == "SELECT") {
      stmt->kind = Statement::Kind::Select;
      stmt->select = parseSelect();
    } else if (kw == "INSERT") {
      stmt->kind = Statement::Kind::Insert;
      stmt->insert = parseInsert();
    } else if (kw == "UPDATE") {
      stmt->kind = Statement::Kind::Update;
      stmt->update = parseUpdate();
    } else if (kw == "DELETE") {
      stmt->kind = Statement::Kind::Delete;
      stmt->del = parseDelete();
    } else if (kw == "LOCK") {
      stmt->kind = Statement::Kind::LockTables;
      stmt->lockTables = parseLockTables();
    } else if (kw == "UNLOCK") {
      stmt->kind = Statement::Kind::UnlockTables;
      advance();
      expectKeyword("TABLES");
    } else {
      fail("unknown statement: " + kw);
    }
    if (peek().type == TokenType::Semicolon) advance();
    if (peek().type != TokenType::End) fail("trailing tokens after statement");
    stmt->paramCount = paramCount_;
    return stmt;
  }

 private:
  // ----- token plumbing -----
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(TokenType t) const { return peek().type == t; }
  bool accept(TokenType t) {
    if (check(t)) {
      advance();
      return true;
    }
    return false;
  }
  void expect(TokenType t, const char* what) {
    if (!accept(t)) fail(std::string("expected ") + what);
  }
  bool checkKeyword(const char* kw) const {
    return peek().type == TokenType::Identifier && peek().upperText == kw;
  }
  bool acceptKeyword(const char* kw) {
    if (checkKeyword(kw)) {
      advance();
      return true;
    }
    return false;
  }
  void expectKeyword(const char* kw) {
    if (!acceptKeyword(kw)) fail(std::string("expected ") + kw);
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("SQL parse error at offset " + std::to_string(peek().pos) +
                             ": " + what + " in \"" + std::string(sql_) + "\"");
  }

  std::string expectIdentifier(const char* what) {
    if (!check(TokenType::Identifier)) fail(std::string("expected ") + what);
    return advance().text;
  }

  // ----- statements -----
  SelectStmt parseSelect() {
    expectKeyword("SELECT");
    SelectStmt s;
    s.distinct = acceptKeyword("DISTINCT");
    do {
      SelectItem item;
      if (accept(TokenType::Star)) {
        item.expr = Expr::makeStar();
      } else {
        item.expr = parseExpr();
        if (acceptKeyword("AS")) item.alias = expectIdentifier("alias");
      }
      s.items.push_back(std::move(item));
    } while (accept(TokenType::Comma));

    expectKeyword("FROM");
    s.from = parseTableRef();
    while (checkKeyword("JOIN") || checkKeyword("INNER") || accept(TokenType::Comma)) {
      // `FROM a, b WHERE a.x = b.y` is normalized by the executor; here we
      // treat a comma like an inner join with the condition left in WHERE.
      if (acceptKeyword("INNER")) expectKeyword("JOIN");
      else acceptKeyword("JOIN");
      JoinClause join;
      join.table = parseTableRef();
      // ON takes a full boolean expression (equi-conjuncts become join
      // keys at plan time; the rest are residual filters).
      if (acceptKeyword("ON")) join.on = parseExpr();
      s.joins.push_back(std::move(join));
    }
    if (acceptKeyword("WHERE")) s.where = parseExpr();
    if (acceptKeyword("GROUP")) {
      expectKeyword("BY");
      do {
        s.groupBy.push_back(parseExpr());
      } while (accept(TokenType::Comma));
      if (acceptKeyword("HAVING")) s.having = parseExpr();
    }
    if (acceptKeyword("ORDER")) {
      expectKeyword("BY");
      do {
        OrderItem item;
        item.expr = parseExpr();
        if (acceptKeyword("DESC")) item.descending = true;
        else acceptKeyword("ASC");
        s.orderBy.push_back(std::move(item));
      } while (accept(TokenType::Comma));
    }
    if (acceptKeyword("LIMIT")) {
      const Token& t = advance();
      if (t.type != TokenType::Integer) fail("LIMIT expects an integer literal");
      s.limit = t.intValue;
      if (acceptKeyword("OFFSET")) {
        const Token& o = advance();
        if (o.type != TokenType::Integer) fail("OFFSET expects an integer literal");
        s.offset = o.intValue;
      }
    }
    acceptKeyword("FOR") && (expectKeyword("UPDATE"), true);  // parsed, ignored
    return s;
  }

  TableRef parseTableRef() {
    TableRef ref;
    ref.table = expectIdentifier("table name");
    if (check(TokenType::Identifier) && !isClauseKeyword(peek().upperText)) {
      ref.alias = advance().text;
    } else {
      ref.alias = ref.table;
    }
    return ref;
  }

  static bool isClauseKeyword(const std::string& kw) {
    return kw == "WHERE" || kw == "GROUP" || kw == "ORDER" || kw == "LIMIT" ||
           kw == "JOIN" || kw == "INNER" || kw == "ON" || kw == "SET" ||
           kw == "VALUES" || kw == "AS" || kw == "FOR" || kw == "READ" ||
           kw == "WRITE" || kw == "DESC" || kw == "ASC" || kw == "OFFSET" ||
           kw == "HAVING";
  }

  InsertStmt parseInsert() {
    expectKeyword("INSERT");
    expectKeyword("INTO");
    InsertStmt s;
    s.table = expectIdentifier("table name");
    if (accept(TokenType::LParen)) {
      do {
        s.columns.push_back(expectIdentifier("column name"));
      } while (accept(TokenType::Comma));
      expect(TokenType::RParen, "')'");
    }
    expectKeyword("VALUES");
    expect(TokenType::LParen, "'('");
    do {
      s.values.push_back(parseExpr());
    } while (accept(TokenType::Comma));
    expect(TokenType::RParen, "')'");
    return s;
  }

  UpdateStmt parseUpdate() {
    expectKeyword("UPDATE");
    UpdateStmt s;
    s.table = expectIdentifier("table name");
    expectKeyword("SET");
    do {
      Assignment a;
      a.column = expectIdentifier("column name");
      expect(TokenType::Eq, "'='");
      a.value = parseExpr();
      s.sets.push_back(std::move(a));
    } while (accept(TokenType::Comma));
    if (acceptKeyword("WHERE")) s.where = parseExpr();
    parseWriteLimit(s.limit, s.offset);
    return s;
  }

  DeleteStmt parseDelete() {
    expectKeyword("DELETE");
    expectKeyword("FROM");
    DeleteStmt s;
    s.table = expectIdentifier("table name");
    if (acceptKeyword("WHERE")) s.where = parseExpr();
    parseWriteLimit(s.limit, s.offset);
    return s;
  }

  /// LIMIT [OFFSET] on UPDATE/DELETE: integer literals only, like SELECT.
  void parseWriteLimit(std::optional<std::int64_t>& limit, std::int64_t& offset) {
    if (!acceptKeyword("LIMIT")) return;
    const Token& t = advance();
    if (t.type != TokenType::Integer) fail("LIMIT expects an integer literal");
    limit = t.intValue;
    if (acceptKeyword("OFFSET")) {
      const Token& o = advance();
      if (o.type != TokenType::Integer) fail("OFFSET expects an integer literal");
      offset = o.intValue;
    }
  }

  LockTablesStmt parseLockTables() {
    expectKeyword("LOCK");
    expectKeyword("TABLES");
    LockTablesStmt s;
    do {
      LockTablesStmt::Item item;
      item.table = expectIdentifier("table name");
      if (acceptKeyword("WRITE")) item.write = true;
      else if (acceptKeyword("READ")) item.write = false;
      else fail("expected READ or WRITE");
      s.items.push_back(std::move(item));
    } while (accept(TokenType::Comma));
    return s;
  }

  // ----- expressions (precedence climbing) -----
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr e = parseAnd();
    while (acceptKeyword("OR")) {
      e = Expr::makeBinary(BinOp::Or, std::move(e), parseAnd());
    }
    return e;
  }

  ExprPtr parseAnd() {
    ExprPtr e = parseComparison();
    while (acceptKeyword("AND")) {
      e = Expr::makeBinary(BinOp::And, std::move(e), parseComparison());
    }
    return e;
  }

  ExprPtr parseComparison() {
    ExprPtr e = parseAdditive();
    for (;;) {
      // Postfix predicate forms first: IN, NOT IN, BETWEEN, IS [NOT] NULL.
      if (checkKeyword("NOT") && peek(1).type == TokenType::Identifier &&
          (peek(1).upperText == "IN" || peek(1).upperText == "BETWEEN" ||
           peek(1).upperText == "LIKE")) {
        advance();  // NOT
        if (acceptKeyword("IN")) {
          e = Expr::makeNot(parseInList(std::move(e)));
        } else if (acceptKeyword("BETWEEN")) {
          e = Expr::makeNot(parseBetween(std::move(e)));
        } else {
          expectKeyword("LIKE");
          e = Expr::makeNot(
              Expr::makeBinary(BinOp::Like, std::move(e), parseAdditive()));
        }
        continue;
      }
      if (acceptKeyword("IN")) {
        e = parseInList(std::move(e));
        continue;
      }
      if (acceptKeyword("BETWEEN")) {
        e = parseBetween(std::move(e));
        continue;
      }
      if (acceptKeyword("IS")) {
        const bool negated = acceptKeyword("NOT");
        expectKeyword("NULL");
        e = Expr::makeIsNull(std::move(e), negated);
        continue;
      }
      BinOp op;
      if (accept(TokenType::Eq)) op = BinOp::Eq;
      else if (accept(TokenType::Ne)) op = BinOp::Ne;
      else if (accept(TokenType::Lt)) op = BinOp::Lt;
      else if (accept(TokenType::Le)) op = BinOp::Le;
      else if (accept(TokenType::Gt)) op = BinOp::Gt;
      else if (accept(TokenType::Ge)) op = BinOp::Ge;
      else if (acceptKeyword("LIKE")) op = BinOp::Like;
      else break;
      e = Expr::makeBinary(op, std::move(e), parseAdditive());
    }
    return e;
  }

  ExprPtr parseInList(ExprPtr needle) {
    expect(TokenType::LParen, "'(' after IN");
    std::vector<ExprPtr> values;
    do {
      values.push_back(parseExpr());
    } while (accept(TokenType::Comma));
    expect(TokenType::RParen, "')'");
    return Expr::makeIn(std::move(needle), std::move(values));
  }

  // x BETWEEN a AND b  ==  x >= a AND x <= b (x evaluated twice; columns
  // are cheap and the apps only use column operands).
  ExprPtr parseBetween(ExprPtr operand) {
    ExprPtr lo = parseAdditive();
    expectKeyword("AND");
    ExprPtr hi = parseAdditive();
    ExprPtr copy = cloneExpr(*operand);
    return Expr::makeBinary(
        BinOp::And, Expr::makeBinary(BinOp::Ge, std::move(operand), std::move(lo)),
        Expr::makeBinary(BinOp::Le, std::move(copy), std::move(hi)));
  }

  static ExprPtr cloneExpr(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->negated = e.negated;
    out->literal = e.literal;
    out->tableQualifier = e.tableQualifier;
    out->column = e.column;
    out->paramIndex = e.paramIndex;
    out->op = e.op;
    out->agg = e.agg;
    if (e.lhs) out->lhs = cloneExpr(*e.lhs);
    if (e.rhs) out->rhs = cloneExpr(*e.rhs);
    if (e.aggArg) out->aggArg = cloneExpr(*e.aggArg);
    for (const auto& item : e.list) out->list.push_back(cloneExpr(*item));
    return out;
  }

  ExprPtr parseAdditive() {
    ExprPtr e = parseMultiplicative();
    for (;;) {
      BinOp op;
      if (accept(TokenType::Plus)) op = BinOp::Add;
      else if (accept(TokenType::Minus)) op = BinOp::Sub;
      else break;
      e = Expr::makeBinary(op, std::move(e), parseMultiplicative());
    }
    return e;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr e = parsePrimary();
    for (;;) {
      BinOp op;
      if (accept(TokenType::Star)) op = BinOp::Mul;
      else if (accept(TokenType::Slash)) op = BinOp::Div;
      else break;
      e = Expr::makeBinary(op, std::move(e), parsePrimary());
    }
    return e;
  }

  ExprPtr parsePrimary() {
    const Token& t = peek();
    switch (t.type) {
      case TokenType::Integer:
        advance();
        return Expr::makeLiteral(Value(t.intValue));
      case TokenType::Float:
        advance();
        return Expr::makeLiteral(Value(t.floatValue));
      case TokenType::String:
        advance();
        return Expr::makeLiteral(Value(t.text));
      case TokenType::Param:
        advance();
        return Expr::makeParam(++paramCount_);
      case TokenType::Minus: {
        advance();
        ExprPtr inner = parsePrimary();
        return Expr::makeBinary(BinOp::Sub, Expr::makeLiteral(Value(std::int64_t{0})),
                                std::move(inner));
      }
      case TokenType::LParen: {
        advance();
        ExprPtr e = parseExpr();
        expect(TokenType::RParen, "')'");
        return e;
      }
      case TokenType::Identifier: {
        // NOT, NULL literal, aggregate function, or column reference.
        if (t.upperText == "NOT") {
          advance();
          return Expr::makeNot(parsePrimary());
        }
        if (t.upperText == "NULL") {
          advance();
          return Expr::makeLiteral(Value());
        }
        const AggFunc agg = aggFromName(t.upperText);
        if (agg != AggFunc::None && peek(1).type == TokenType::LParen) {
          advance();  // function name
          advance();  // (
          ExprPtr arg;
          if (accept(TokenType::Star)) arg = Expr::makeStar();
          else arg = parseExpr();
          expect(TokenType::RParen, "')'");
          return Expr::makeAggregate(agg, std::move(arg));
        }
        std::string first = advance().text;
        if (accept(TokenType::Dot)) {
          std::string col = expectIdentifier("column name");
          return Expr::makeColumn(std::move(first), std::move(col));
        }
        return Expr::makeColumn(std::string(), std::move(first));
      }
      default:
        fail("unexpected token in expression");
    }
  }

  static AggFunc aggFromName(const std::string& name) {
    if (name == "COUNT") return AggFunc::Count;
    if (name == "SUM") return AggFunc::Sum;
    if (name == "MIN") return AggFunc::Min;
    if (name == "MAX") return AggFunc::Max;
    if (name == "AVG") return AggFunc::Avg;
    return AggFunc::None;
  }

  std::string_view sql_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t paramCount_ = 0;
};

}  // namespace

std::shared_ptr<const Statement> parseSql(std::string_view sql) {
  return Parser(sql).parse();
}

}  // namespace mwsim::db
