#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/ast.hpp"
#include "db/database.hpp"

namespace mwsim::db {

/// Query planning, split out of execution (DESIGN.md §8).
///
/// A Plan is everything about a statement that does not depend on bound
/// parameters or table *contents*: name resolution, index selection, join
/// order/strategy, predicate pushdown and residual elision, and whether an
/// ORDER BY can ride an ordered index instead of sorting. Plans are pure
/// functions of (SQL, catalog) — never of data, parameters, or thread
/// timing — so a plan built once can be cached per prepared statement and
/// reused across the byte-identical parallel sweeps of §7.

/// Resolved reference to one column of one bound table.
struct PlanColumnRef {
  std::size_t tableIdx = 0;
  std::size_t columnIdx = 0;
};

/// Expression with every column reference resolved to (table, column) slots
/// at plan time, so execution never does per-row name lookups.
struct CompiledExpr {
  Expr::Kind kind = Expr::Kind::Literal;
  bool negated = false;            // IsNull: true for IS NOT NULL
  Value literal;                   // Literal
  std::size_t paramIndex = 0;      // Param: 1-based
  PlanColumnRef col;               // Column
  BinOp op = BinOp::Eq;            // Binary
  AggFunc agg = AggFunc::None;     // Aggregate (aggArg null means COUNT(*))
  bool rowFree = false;            // no column reference anywhere beneath
  bool hasAggregate = false;       // aggregate somewhere beneath
  std::unique_ptr<CompiledExpr> lhs, rhs, aggArg;
  std::vector<std::unique_ptr<CompiledExpr>> list;  // In
};
using CompiledExprPtr = std::unique_ptr<CompiledExpr>;

/// How the driving (first FROM) table's candidate rows are produced.
struct AccessPath {
  enum class Kind {
    FullScan,          // every live row, storage order
    PkEq,              // unique hash lookup on the primary key
    IndexEq,           // secondary-index equality
    InList,            // IN (...) multi-point lookup via pk or secondary index
    IndexRange,        // secondary-index range scan
    OrderedIndexScan,  // secondary index walked in ORDER BY order; sort elided
    AggFast,           // O(1) MAX/MIN/COUNT(*) from index metadata
  };
  enum class AggFastKind { None, CountStar, MaxAutoPk, IndexMin, IndexMax };

  Kind kind = Kind::FullScan;
  std::size_t column = 0;  // pk/indexed column (all but FullScan/AggFast)
  bool viaPk = false;      // InList through the primary key
  CompiledExprPtr eqKey;         // row-free key for PkEq/IndexEq
  std::vector<CompiledExprPtr> inKeys;  // row-free keys for InList
  /// Range bounds: every row-free bound conjunct on `column`; execution
  /// evaluates all of them and keeps the tightest (ties: strict wins).
  struct Bound {
    CompiledExprPtr expr;
    bool inclusive = true;
  };
  std::vector<Bound> lower, upper;
  /// OrderedIndexScan: scan direction, and equal-key tie order. A scan that
  /// replaces FullScan+sort must emit ties in RowId order (what stable_sort
  /// over storage-order candidates produced); one that replaces
  /// IndexRange+sort emits ties in raw index order (the candidate order the
  /// sort was stable over).
  bool descending = false;
  bool blockRowIdOrder = false;
  /// AggFast details.
  AggFastKind aggFast = AggFastKind::None;
  std::size_t aggColumn = 0;
  std::string aggOutputName;
};

struct SelectPlan {
  /// Bound tables in FROM order; resolved against the target database by
  /// name at execution (plans outlive any one database clone).
  std::vector<std::string> tableNames;

  AccessPath access;

  /// One step per JOIN, in statement order (table index = step index + 1).
  struct JoinStep {
    enum class Kind { PkLookup, IndexLookup, ScanEq, Cross };
    Kind kind = Kind::Cross;
    std::size_t innerColumn = 0;
    /// Key evaluated over the partial binding (references tables < this one).
    CompiledExprPtr outerKey;
  };
  std::vector<JoinStep> joins;

  /// Conjuncts referencing only table 0, applied right after base access
  /// (predicate pushdown). Access-path-consumed conjuncts are elided.
  std::vector<CompiledExprPtr> baseFilter;
  /// Remaining conjuncts, applied once all tables are bound.
  std::vector<CompiledExprPtr> residual;

  struct OutItem {
    std::string name;
    /// Plain column reference (including star expansion): copied directly.
    std::optional<PlanColumnRef> direct;
    /// General expression otherwise.
    CompiledExprPtr expr;
  };
  std::vector<OutItem> items;

  bool grouped = false;
  std::vector<CompiledExprPtr> groupKeys;
  CompiledExprPtr having;  // may be null

  struct OrderKey {
    /// ORDER BY <select alias>: key is the finished output column.
    std::optional<std::size_t> outputIndex;
    CompiledExprPtr expr;  // otherwise
    bool descending = false;
  };
  std::vector<OrderKey> orderBy;
  /// True when the access path already yields rows in ORDER BY order.
  bool sortElided = false;

  bool distinct = false;
  std::optional<std::int64_t> limit;
  std::int64_t offset = 0;
};

struct InsertPlan {
  std::string tableName;
  /// One entry per VALUES expression: target column and its declared type.
  struct Target {
    std::size_t column = 0;
    ColumnType type = ColumnType::Int;
  };
  std::vector<Target> targets;
  std::vector<CompiledExprPtr> values;  // row-free
  std::size_t columnCount = 0;          // schema width (row pre-sizing)
};

struct UpdatePlan {
  std::string tableName;
  AccessPath access;  // FullScan / PkEq / IndexEq only
  std::vector<CompiledExprPtr> residual;
  struct Target {
    std::size_t column = 0;
    ColumnType type = ColumnType::Int;
    CompiledExprPtr value;  // may reference the pre-update row
  };
  std::vector<Target> sets;
  /// LIMIT/OFFSET slice the matched rows in RowId order; their presence
  /// forces FullScan access so the match order is well-defined.
  std::optional<std::int64_t> limit;
  std::int64_t offset = 0;
};

struct DeletePlan {
  std::string tableName;
  AccessPath access;
  std::vector<CompiledExprPtr> residual;
  std::optional<std::int64_t> limit;
  std::int64_t offset = 0;
};

/// A fully planned statement. Immutable once built.
struct Plan {
  Statement::Kind kind = Statement::Kind::Select;
  SelectPlan select;
  InsertPlan insert;
  UpdatePlan update;
  DeletePlan del;
  std::size_t paramCount = 0;
  std::string text;  // original SQL, for diagnostics
};

/// Builds a Plan for a parsed statement against a database catalog. Pure:
/// depends only on the statement and the schemas (never table contents),
/// and performs all name resolution — executing a plan cannot throw a
/// resolution error that planning would not have thrown.
std::shared_ptr<const Plan> buildPlan(const Statement& stmt, const Database& db);

/// A parsed statement plus its cached plans, one per catalog signature.
/// This is what mw::StatementCache hands out: the AST is shared across all
/// databases, and each distinct catalog (bookstore vs auction vs test
/// schemas) gets its own lazily built, immutable plan.
///
/// Thread-safe like the statement cache itself: plans are pure functions of
/// (SQL, catalog signature), so when two sweep threads race to plan the same
/// statement both builds are identical and the first insert wins.
class PlannedStatement {
 public:
  explicit PlannedStatement(std::shared_ptr<const Statement> stmt)
      : stmt_(std::move(stmt)) {}
  PlannedStatement(const PlannedStatement&) = delete;
  PlannedStatement& operator=(const PlannedStatement&) = delete;

  const Statement& stmt() const noexcept { return *stmt_; }
  const std::shared_ptr<const Statement>& stmtPtr() const noexcept { return stmt_; }

  /// Returns the plan for `db`'s catalog, building and caching it on first
  /// use.
  std::shared_ptr<const Plan> planFor(const Database& db) const {
    const std::uint64_t key = db.catalogSignature();
    {
      std::shared_lock lock(mu_);
      auto it = plans_.find(key);
      if (it != plans_.end()) return it->second;
    }
    auto plan = buildPlan(*stmt_, db);  // built outside any lock
    std::unique_lock lock(mu_);
    auto [it, inserted] = plans_.emplace(key, std::move(plan));
    (void)inserted;
    return it->second;
  }

  /// Number of distinct catalogs planned so far (tests/benches).
  std::size_t planCount() const {
    std::shared_lock lock(mu_);
    return plans_.size();
  }

 private:
  std::shared_ptr<const Statement> stmt_;
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<std::uint64_t, std::shared_ptr<const Plan>> plans_;
};

}  // namespace mwsim::db
