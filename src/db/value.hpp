#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace mwsim::db {

/// A single SQL value: NULL, 64-bit integer, double, or string.
///
/// Integers and doubles compare numerically against each other (MySQL-style
/// weak numeric typing); NULL compares equal only to NULL and sorts first.
class Value {
 public:
  Value() noexcept : v_(std::monostate{}) {}
  Value(std::int64_t i) noexcept : v_(i) {}                 // NOLINT(google-explicit-constructor)
  Value(int i) noexcept : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) noexcept : v_(d) {}                       // NOLINT
  Value(std::string s) noexcept : v_(std::move(s)) {}       // NOLINT
  Value(const char* s) : v_(std::string(s)) {}              // NOLINT

  bool isNull() const noexcept { return std::holds_alternative<std::monostate>(v_); }
  bool isInt() const noexcept { return std::holds_alternative<std::int64_t>(v_); }
  bool isDouble() const noexcept { return std::holds_alternative<double>(v_); }
  bool isString() const noexcept { return std::holds_alternative<std::string>(v_); }
  bool isNumeric() const noexcept { return isInt() || isDouble(); }

  /// Integer content; numeric values are converted. Throws on strings/NULL.
  std::int64_t asInt() const;
  /// Double content; numeric values are converted. Throws on strings/NULL.
  double asDouble() const;
  /// String content. Throws unless the value is a string.
  const std::string& asString() const;

  /// Renders the value for embedding into generated HTML / debugging.
  std::string toDisplayString() const;

  /// Three-way comparison: NULL < numbers < strings; numbers compare
  /// numerically across int/double.
  int compare(const Value& other) const;

  bool operator==(const Value& other) const { return compare(other) == 0; }
  bool operator!=(const Value& other) const { return compare(other) != 0; }
  bool operator<(const Value& other) const { return compare(other) < 0; }
  bool operator<=(const Value& other) const { return compare(other) <= 0; }
  bool operator>(const Value& other) const { return compare(other) > 0; }
  bool operator>=(const Value& other) const { return compare(other) >= 0; }

  std::size_t hash() const;

  /// Approximate in-memory/wire size in bytes, used for transfer costing.
  std::size_t byteSize() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> v_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace mwsim::db
