#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.hpp"

namespace mwsim::db {

/// Catalog of tables — the storage engine under one database server.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Deep copy of the whole catalog (every table cloned, creation order
  /// preserved). A clone is indistinguishable from a database repopulated
  /// with the same seed; the dataset cache relies on that.
  Database clone() const {
    Database out;
    out.names_ = names_;
    out.catalogSig_ = catalogSig_;
    for (const auto& [name, t] : tables_) out.tables_.emplace(name, t->clone());
    return out;
  }

  Table& createTable(TableSchema schema) {
    const std::string name = schema.name;
    mixSchema(schema);
    auto [it, inserted] = tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
    if (!inserted) throw std::runtime_error("table already exists: " + name);
    names_.push_back(name);
    return *it->second;
  }

  /// 64-bit digest of every schema created so far (names, column types,
  /// keys, indexes) — never of table contents. Query plans are pure
  /// functions of (SQL, catalog signature), so the plan cache keys on it:
  /// two databases with the same creation sequence (e.g. every clone of a
  /// cached dataset) share one plan. Maintained eagerly in createTable, not
  /// lazily, so concurrent readers need no synchronization.
  std::uint64_t catalogSignature() const noexcept { return catalogSig_; }

  Table& table(const std::string& name) {
    auto it = tables_.find(name);
    if (it == tables_.end()) throw std::runtime_error("no such table: " + name);
    return *it->second;
  }
  const Table& table(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) throw std::runtime_error("no such table: " + name);
    return *it->second;
  }
  bool hasTable(const std::string& name) const { return tables_.contains(name); }

  const std::vector<std::string>& tableNames() const noexcept { return names_; }

  /// Approximate bytes of live data across all tables.
  std::size_t approxBytes() const {
    std::size_t n = 0;
    for (const auto& [_, t] : tables_) n += t->approxBytes();
    return n;
  }

 private:
  // FNV-1a accumulation of schema structure into catalogSig_.
  void mix(std::uint64_t v) noexcept {
    catalogSig_ = (catalogSig_ ^ v) * 0x100000001b3ull;
  }
  void mixString(const std::string& s) noexcept {
    mix(s.size());
    for (const char c : s) mix(static_cast<unsigned char>(c));
  }
  void mixSchema(const TableSchema& schema) noexcept {
    mixString(schema.name);
    mix(schema.columns.size());
    for (const auto& col : schema.columns) {
      mixString(col.name);
      mix(static_cast<std::uint64_t>(col.type));
    }
    mix(schema.primaryKey ? *schema.primaryKey + 1 : 0);
    mix(schema.autoIncrement ? 1 : 0);
    mix(schema.secondaryIndexes.size());
    for (const std::size_t c : schema.secondaryIndexes) mix(c);
  }

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> names_;
  std::uint64_t catalogSig_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

}  // namespace mwsim::db
