#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.hpp"

namespace mwsim::db {

/// Catalog of tables — the storage engine under one database server.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Deep copy of the whole catalog (every table cloned, creation order
  /// preserved). A clone is indistinguishable from a database repopulated
  /// with the same seed; the dataset cache relies on that.
  Database clone() const {
    Database out;
    out.names_ = names_;
    for (const auto& [name, t] : tables_) out.tables_.emplace(name, t->clone());
    return out;
  }

  Table& createTable(TableSchema schema) {
    const std::string name = schema.name;
    auto [it, inserted] = tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
    if (!inserted) throw std::runtime_error("table already exists: " + name);
    names_.push_back(name);
    return *it->second;
  }

  Table& table(const std::string& name) {
    auto it = tables_.find(name);
    if (it == tables_.end()) throw std::runtime_error("no such table: " + name);
    return *it->second;
  }
  const Table& table(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) throw std::runtime_error("no such table: " + name);
    return *it->second;
  }
  bool hasTable(const std::string& name) const { return tables_.contains(name); }

  const std::vector<std::string>& tableNames() const noexcept { return names_; }

  /// Approximate bytes of live data across all tables.
  std::size_t approxBytes() const {
    std::size_t n = 0;
    for (const auto& [_, t] : tables_) n += t->approxBytes();
    return n;
  }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> names_;
};

}  // namespace mwsim::db
