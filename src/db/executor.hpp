#pragma once

#include <span>
#include <string_view>

#include "db/ast.hpp"
#include "db/database.hpp"
#include "db/plan.hpp"
#include "db/result.hpp"

namespace mwsim::db {

/// Executes planned statements against a Database.
///
/// Planning (name resolution, index selection, join ordering — see
/// db/plan.hpp) is separated from execution: the hot middleware path plans a
/// prepared statement once and re-executes the cached Plan with fresh
/// parameter bindings, touching no per-execution allocations beyond the
/// result rows themselves.
///
/// The executor is synchronous and instantaneous (no simulated time); the
/// simulated DatabaseServer charges CPU time from the ExecStats it returns.
class Executor {
 public:
  explicit Executor(Database& db) : db_(db) {}

  /// Plans ad hoc, then executes (tests, data loading, one-off SQL).
  ExecResult execute(const Statement& stmt, std::span<const Value> params = {});

  /// Executes through the statement's per-catalog plan cache — the prepared
  /// statement hot path used by mw::StatementCache.
  ExecResult execute(const PlannedStatement& stmt, std::span<const Value> params = {});

  /// Executes a prebuilt plan directly (micro-benchmarks, plan tests).
  ExecResult executePlan(const Plan& plan, std::span<const Value> params = {});

  /// Convenience: parse + plan + execute in one step.
  ExecResult query(std::string_view sql, std::span<const Value> params = {});

 private:
  Database& db_;
};

/// True when a Value is "truthy" in a WHERE context (non-NULL, non-zero).
bool valueIsTrue(const Value& v);

/// SQL LIKE with % (any run) and _ (single char) wildcards.
bool likeMatch(const std::string& text, const std::string& pattern);

}  // namespace mwsim::db
