#pragma once

#include <span>
#include <string_view>

#include "db/ast.hpp"
#include "db/database.hpp"
#include "db/result.hpp"

namespace mwsim::db {

/// Executes parsed statements against a Database.
///
/// The executor is synchronous and instantaneous (no simulated time); the
/// simulated DatabaseServer charges CPU time from the ExecStats it returns.
class Executor {
 public:
  explicit Executor(Database& db) : db_(db) {}

  /// Executes a statement with bound parameters (one Value per `?`).
  ExecResult execute(const Statement& stmt, std::span<const Value> params = {});

  /// Convenience: parse + execute in one step (tests, data loading).
  ExecResult query(std::string_view sql, std::span<const Value> params = {});

 private:
  ExecResult executeSelect(const SelectStmt& s, std::span<const Value> params);
  ExecResult executeInsert(const InsertStmt& s, std::span<const Value> params);
  ExecResult executeUpdate(const UpdateStmt& s, std::span<const Value> params);
  ExecResult executeDelete(const DeleteStmt& s, std::span<const Value> params);

  Database& db_;
};

/// True when a Value is "truthy" in a WHERE context (non-NULL, non-zero).
bool valueIsTrue(const Value& v);

/// SQL LIKE with % (any run) and _ (single char) wildcards.
bool likeMatch(const std::string& text, const std::string& pattern);

}  // namespace mwsim::db
