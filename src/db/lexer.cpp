#include "db/lexer.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace mwsim::db {

namespace {

[[noreturn]] void fail(std::string_view sql, std::size_t pos, const std::string& what) {
  throw std::runtime_error("SQL lex error at offset " + std::to_string(pos) + ": " + what +
                           " in \"" + std::string(sql) + "\"");
}

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (isIdentStart(c)) {
      std::size_t j = i;
      while (j < n && isIdentChar(sql[j])) ++j;
      t.type = TokenType::Identifier;
      t.text.assign(sql.substr(i, j - i));
      t.upperText = t.text;
      for (char& ch : t.upperText) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t j = i;
      bool isFloat = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) || sql[j] == '.')) {
        if (sql[j] == '.') isFloat = true;
        ++j;
      }
      const std::string num(sql.substr(i, j - i));
      if (isFloat) {
        t.type = TokenType::Float;
        t.floatValue = std::stod(num);
      } else {
        t.type = TokenType::Integer;
        auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), t.intValue);
        if (ec != std::errc{}) fail(sql, i, "bad integer literal");
      }
      i = j;
    } else if (c == '\'') {
      std::size_t j = i + 1;
      std::string body;
      for (;;) {
        if (j >= n) fail(sql, i, "unterminated string literal");
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escape
            body.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        body.push_back(sql[j]);
        ++j;
      }
      t.type = TokenType::String;
      t.text = std::move(body);
      i = j + 1;
    } else {
      switch (c) {
        case '?': t.type = TokenType::Param; ++i; break;
        case '*': t.type = TokenType::Star; ++i; break;
        case ',': t.type = TokenType::Comma; ++i; break;
        case '.': t.type = TokenType::Dot; ++i; break;
        case '(': t.type = TokenType::LParen; ++i; break;
        case ')': t.type = TokenType::RParen; ++i; break;
        case '+': t.type = TokenType::Plus; ++i; break;
        case '-': t.type = TokenType::Minus; ++i; break;
        case '/': t.type = TokenType::Slash; ++i; break;
        case ';': t.type = TokenType::Semicolon; ++i; break;
        case '=': t.type = TokenType::Eq; ++i; break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            t.type = TokenType::Ne;
            i += 2;
          } else {
            fail(sql, i, "unexpected '!'");
          }
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            t.type = TokenType::Le;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            t.type = TokenType::Ne;
            i += 2;
          } else {
            t.type = TokenType::Lt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            t.type = TokenType::Ge;
            i += 2;
          } else {
            t.type = TokenType::Gt;
            ++i;
          }
          break;
        default:
          fail(sql, i, std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::End;
  end.pos = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace mwsim::db
