#include "db/executor.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "db/parser.hpp"

namespace mwsim::db {

bool valueIsTrue(const Value& v) {
  if (v.isNull()) return false;
  if (v.isInt()) return v.asInt() != 0;
  if (v.isDouble()) return v.asDouble() != 0.0;
  return !v.asString().empty();
}

bool likeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t starP = std::string::npos;
  std::size_t starT = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      starP = p++;
      starT = t;
    } else if (starP != std::string::npos) {
      p = starP + 1;
      t = ++starT;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

struct BoundTable {
  std::string alias;
  const Table* table;
};

// One candidate output row: one RowId per bound table.
using Binding = std::vector<RowId>;

struct ColumnRef {
  std::size_t tableIdx;
  std::size_t columnIdx;
};

class SelectRunner {
 public:
  SelectRunner(Database& db, const SelectStmt& stmt, std::span<const Value> params,
               ExecStats& stats)
      : db_(db), stmt_(stmt), params_(params), stats_(stats) {}

  ResultSet run();

 private:
  // ----- name resolution -----
  ColumnRef resolve(const std::string& qualifier, const std::string& column) const {
    if (!qualifier.empty()) {
      for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (tables_[i].alias == qualifier) {
          auto c = tables_[i].table->schema().columnIndex(column);
          if (!c) {
            throw std::runtime_error("no column " + column + " in " + qualifier);
          }
          return {i, *c};
        }
      }
      throw std::runtime_error("unknown table alias: " + qualifier);
    }
    std::optional<ColumnRef> found;
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (auto c = tables_[i].table->schema().columnIndex(column)) {
        if (found) throw std::runtime_error("ambiguous column: " + column);
        found = ColumnRef{i, *c};
      }
    }
    if (!found) throw std::runtime_error("unknown column: " + column);
    return *found;
  }

  // ----- expression evaluation over one binding -----
  Value evalBinary(BinOp op, const Value& a, const Value& b) const {
    switch (op) {
      case BinOp::And:
        return Value(static_cast<std::int64_t>(valueIsTrue(a) && valueIsTrue(b)));
      case BinOp::Or:
        return Value(static_cast<std::int64_t>(valueIsTrue(a) || valueIsTrue(b)));
      case BinOp::Like:
        if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
        return Value(static_cast<std::int64_t>(likeMatch(a.toDisplayString(), b.asString())));
      case BinOp::Eq:
      case BinOp::Ne:
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge: {
        if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
        const int c = a.compare(b);
        bool r = false;
        switch (op) {
          case BinOp::Eq: r = c == 0; break;
          case BinOp::Ne: r = c != 0; break;
          case BinOp::Lt: r = c < 0; break;
          case BinOp::Le: r = c <= 0; break;
          case BinOp::Gt: r = c > 0; break;
          default: r = c >= 0; break;
        }
        return Value(static_cast<std::int64_t>(r));
      }
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::Div: {
        if (a.isNull() || b.isNull()) return Value();
        if (a.isInt() && b.isInt() && op != BinOp::Div) {
          const auto x = a.asInt();
          const auto y = b.asInt();
          switch (op) {
            case BinOp::Add: return Value(x + y);
            case BinOp::Sub: return Value(x - y);
            default: return Value(x * y);
          }
        }
        const double x = a.asDouble();
        const double y = b.asDouble();
        switch (op) {
          case BinOp::Add: return Value(x + y);
          case BinOp::Sub: return Value(x - y);
          case BinOp::Mul: return Value(x * y);
          default:
            if (y == 0.0) return Value();
            return Value(x / y);
        }
      }
    }
    throw std::runtime_error("unhandled binary op");
  }

  Value eval(const Expr& e, const Binding& binding) const {
    switch (e.kind) {
      case Expr::Kind::Literal:
        return e.literal;
      case Expr::Kind::Param:
        if (e.paramIndex > params_.size()) {
          throw std::runtime_error("missing bind parameter " + std::to_string(e.paramIndex));
        }
        return params_[e.paramIndex - 1];
      case Expr::Kind::Column: {
        const ColumnRef ref = resolve(e.tableQualifier, e.column);
        return tables_[ref.tableIdx].table->row(binding[ref.tableIdx])[ref.columnIdx];
      }
      case Expr::Kind::Binary:
        return evalBinary(e.op, eval(*e.lhs, binding), eval(*e.rhs, binding));
      case Expr::Kind::In: {
        const Value needle = eval(*e.lhs, binding);
        if (needle.isNull()) return Value(std::int64_t{0});
        for (const auto& item : e.list) {
          if (needle.compare(eval(*item, binding)) == 0) return Value(std::int64_t{1});
        }
        return Value(std::int64_t{0});
      }
      case Expr::Kind::IsNull: {
        const bool isNull = eval(*e.lhs, binding).isNull();
        return Value(static_cast<std::int64_t>(isNull != e.negated));
      }
      case Expr::Kind::Not:
        return Value(static_cast<std::int64_t>(!valueIsTrue(eval(*e.lhs, binding))));
      case Expr::Kind::Aggregate:
        throw std::runtime_error("aggregate in row context");
      case Expr::Kind::Star:
        throw std::runtime_error("* in scalar context");
    }
    throw std::runtime_error("unhandled expr kind");
  }

  Value evalAggregate(const Expr& e, const std::vector<const Binding*>& group) const {
    assert(e.kind == Expr::Kind::Aggregate);
    if (e.agg == AggFunc::Count && e.aggArg->kind == Expr::Kind::Star) {
      return Value(static_cast<std::int64_t>(group.size()));
    }
    std::int64_t count = 0;
    double sum = 0.0;
    bool allInt = true;
    std::int64_t isum = 0;
    std::optional<Value> minV;
    std::optional<Value> maxV;
    for (const Binding* b : group) {
      const Value v = eval(*e.aggArg, *b);
      if (v.isNull()) continue;
      ++count;
      if (v.isNumeric()) {
        sum += v.asDouble();
        if (v.isInt()) isum += v.asInt();
        else allInt = false;
      } else {
        allInt = false;
      }
      if (!minV || v < *minV) minV = v;
      if (!maxV || v > *maxV) maxV = v;
    }
    switch (e.agg) {
      case AggFunc::Count:
        return Value(count);
      case AggFunc::Sum:
        if (count == 0) return Value();
        return allInt ? Value(isum) : Value(sum);
      case AggFunc::Avg:
        if (count == 0) return Value();
        return Value(sum / static_cast<double>(count));
      case AggFunc::Min:
        return minV.value_or(Value());
      case AggFunc::Max:
        return maxV.value_or(Value());
      case AggFunc::None:
        break;
    }
    throw std::runtime_error("unhandled aggregate");
  }

  // Evaluate an expression in group context: aggregates consume the group,
  // everything else is taken from the group's first row (valid for group
  // keys, which is all the apps use).
  Value evalGrouped(const Expr& e, const std::vector<const Binding*>& group) const {
    switch (e.kind) {
      case Expr::Kind::Aggregate:
        return evalAggregate(e, group);
      case Expr::Kind::Binary: {
        if (containsAggregate(e)) {
          return evalBinary(e.op, evalGrouped(*e.lhs, group), evalGrouped(*e.rhs, group));
        }
        return eval(e, *group.front());
      }
      case Expr::Kind::Not:
        if (containsAggregate(e)) {
          return Value(
              static_cast<std::int64_t>(!valueIsTrue(evalGrouped(*e.lhs, group))));
        }
        return eval(e, *group.front());
      case Expr::Kind::In:
        if (containsAggregate(e)) {
          const Value needle = evalGrouped(*e.lhs, group);
          if (needle.isNull()) return Value(std::int64_t{0});
          for (const auto& item : e.list) {
            if (needle.compare(evalGrouped(*item, group)) == 0) {
              return Value(std::int64_t{1});
            }
          }
          return Value(std::int64_t{0});
        }
        return eval(e, *group.front());
      default:
        return eval(e, *group.front());
    }
  }

  static bool containsAggregate(const Expr& e) {
    if (e.kind == Expr::Kind::Aggregate) return true;
    if (e.kind == Expr::Kind::Binary) {
      return containsAggregate(*e.lhs) || containsAggregate(*e.rhs);
    }
    if (e.kind == Expr::Kind::Not || e.kind == Expr::Kind::IsNull) {
      return containsAggregate(*e.lhs);
    }
    if (e.kind == Expr::Kind::In) {
      if (containsAggregate(*e.lhs)) return true;
      for (const auto& item : e.list) {
        if (containsAggregate(*item)) return true;
      }
    }
    return false;
  }

  // ----- WHERE decomposition -----
  static void splitConjuncts(const Expr* e, std::vector<const Expr*>& out) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::Binary && e->op == BinOp::And) {
      splitConjuncts(e->lhs.get(), out);
      splitConjuncts(e->rhs.get(), out);
    } else {
      out.push_back(e);
    }
  }

  static bool exprIsRowFree(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Column:
      case Expr::Kind::Star:
      case Expr::Kind::Aggregate:
        return false;
      case Expr::Kind::Binary:
        return exprIsRowFree(*e.lhs) && exprIsRowFree(*e.rhs);
      case Expr::Kind::Not:
      case Expr::Kind::IsNull:
        return exprIsRowFree(*e.lhs);
      case Expr::Kind::In: {
        if (!exprIsRowFree(*e.lhs)) return false;
        for (const auto& item : e.list) {
          if (!exprIsRowFree(*item)) return false;
        }
        return true;
      }
      default:
        return true;
    }
  }

  Value evalRowFree(const Expr& e) const {
    static const Binding kEmpty;
    return eval(e, kEmpty);
  }

  // True if every column reference in `e` resolves to table `tableIdx`.
  bool referencesOnlyTable(const Expr& e, std::size_t tableIdx) const {
    switch (e.kind) {
      case Expr::Kind::Column:
        return resolve(e.tableQualifier, e.column).tableIdx == tableIdx;
      case Expr::Kind::Binary:
        return referencesOnlyTable(*e.lhs, tableIdx) &&
               referencesOnlyTable(*e.rhs, tableIdx);
      case Expr::Kind::Not:
      case Expr::Kind::IsNull:
        return referencesOnlyTable(*e.lhs, tableIdx);
      case Expr::Kind::In: {
        if (!referencesOnlyTable(*e.lhs, tableIdx)) return false;
        for (const auto& item : e.list) {
          if (!referencesOnlyTable(*item, tableIdx)) return false;
        }
        return true;
      }
      case Expr::Kind::Aggregate:
      case Expr::Kind::Star:
        return false;
      default:
        return true;
    }
  }

  // Does this column expression refer to table `tableIdx`?
  std::optional<std::size_t> columnOf(const Expr& e, std::size_t tableIdx) const {
    if (e.kind != Expr::Kind::Column) return std::nullopt;
    const ColumnRef ref = resolve(e.tableQualifier, e.column);
    if (ref.tableIdx != tableIdx) return std::nullopt;
    return ref.columnIdx;
  }

  // ----- access paths -----
  std::vector<RowId> baseTableCandidates(const std::vector<const Expr*>& conjuncts);
  void joinTable(std::size_t newIdx, const JoinClause* join,
                 const std::vector<const Expr*>& conjuncts,
                 std::vector<Binding>& bindings);

  ResultSet project(const std::vector<Binding>& bindings);

  Database& db_;
  const SelectStmt& stmt_;
  std::span<const Value> params_;
  ExecStats& stats_;
  std::vector<BoundTable> tables_;
};

std::vector<RowId> SelectRunner::baseTableCandidates(
    const std::vector<const Expr*>& conjuncts) {
  const Table& table = *tables_[0].table;
  // Equality on primary key or an indexed column.
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::Binary || c->op != BinOp::Eq) continue;
    for (const auto& [colSide, valSide] :
         {std::pair{c->lhs.get(), c->rhs.get()}, std::pair{c->rhs.get(), c->lhs.get()}}) {
      if (!exprIsRowFree(*valSide)) continue;
      auto col = columnOf(*colSide, 0);
      if (!col) continue;
      const Value key = evalRowFree(*valSide);
      if (table.isPrimaryKeyColumn(*col)) {
        stats_.usedIndex = true;
        auto id = table.findByPk(key);
        std::vector<RowId> out;
        if (id) {
          out.push_back(*id);
          ++stats_.rowsExamined;
          stats_.bytesExamined += table.avgRowBytes();
        }
        return out;
      }
      if (table.hasIndexOn(*col)) {
        stats_.usedIndex = true;
        auto out = table.findByIndex(*col, key);
        stats_.rowsExamined += out.size();
        stats_.bytesExamined += out.size() * table.avgRowBytes();
        return out;
      }
    }
  }
  // IN over the primary key or an indexed column: multi-point lookup.
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::In) continue;
    auto col = columnOf(*c->lhs, 0);
    if (!col) continue;
    bool allFree = true;
    for (const auto& item : c->list) {
      if (!exprIsRowFree(*item)) {
        allFree = false;
        break;
      }
    }
    if (!allFree) continue;
    const bool viaPk = table.isPrimaryKeyColumn(*col);
    if (!viaPk && !table.hasIndexOn(*col)) continue;
    stats_.usedIndex = true;
    std::vector<RowId> out;
    for (const auto& item : c->list) {
      const Value key = evalRowFree(*item);
      if (viaPk) {
        if (auto id = table.findByPk(key)) {
          out.push_back(*id);
          ++stats_.rowsExamined;
          stats_.bytesExamined += table.avgRowBytes();
        }
      } else {
        for (RowId id : table.findByIndex(*col, key)) {
          out.push_back(id);
          ++stats_.rowsExamined;
          stats_.bytesExamined += table.avgRowBytes();
        }
      }
    }
    return out;
  }

  // Range over an indexed column: gather bounds per column.
  struct Bounds {
    std::optional<Value> lo;
    bool loInc = true;
    std::optional<Value> hi;
    bool hiInc = true;
  };
  std::map<std::size_t, Bounds> bounds;
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::Binary) continue;
    const BinOp op = c->op;
    if (op != BinOp::Lt && op != BinOp::Le && op != BinOp::Gt && op != BinOp::Ge) continue;
    for (bool flipped : {false, true}) {
      const Expr* colSide = flipped ? c->rhs.get() : c->lhs.get();
      const Expr* valSide = flipped ? c->lhs.get() : c->rhs.get();
      if (!exprIsRowFree(*valSide)) continue;
      auto col = columnOf(*colSide, 0);
      if (!col || !table.hasIndexOn(*col)) continue;
      const Value v = evalRowFree(*valSide);
      // Normalize to col <op> v.
      BinOp effective = op;
      if (flipped) {
        switch (op) {
          case BinOp::Lt: effective = BinOp::Gt; break;
          case BinOp::Le: effective = BinOp::Ge; break;
          case BinOp::Gt: effective = BinOp::Lt; break;
          case BinOp::Ge: effective = BinOp::Le; break;
          default: break;
        }
      }
      Bounds& b = bounds[*col];
      if (effective == BinOp::Lt || effective == BinOp::Le) {
        if (!b.hi || v < *b.hi) {
          b.hi = v;
          b.hiInc = effective == BinOp::Le;
        }
      } else {
        if (!b.lo || v > *b.lo) {
          b.lo = v;
          b.loInc = effective == BinOp::Ge;
        }
      }
      break;
    }
  }
  if (!bounds.empty()) {
    const auto& [col, b] = *bounds.begin();
    stats_.usedIndex = true;
    auto out = table.findRangeByIndex(col, b.lo, b.loInc, b.hi, b.hiInc);
    stats_.rowsExamined += out.size();
    stats_.bytesExamined += out.size() * table.avgRowBytes();
    return out;
  }
  // Full scan.
  std::vector<RowId> out;
  out.reserve(table.size());
  table.forEachRow([&](RowId id) { out.push_back(id); });
  stats_.rowsExamined += out.size();
  stats_.bytesExamined += out.size() * table.avgRowBytes();
  return out;
}

void SelectRunner::joinTable(std::size_t newIdx, const JoinClause* join,
                             const std::vector<const Expr*>& conjuncts,
                             std::vector<Binding>& bindings) {
  const Table& inner = *tables_[newIdx].table;

  // Find an equi-condition linking the new table to an already-bound one:
  // prefer the explicit ON clause, else scan WHERE conjuncts.
  const Expr* outerExpr = nullptr;
  std::optional<std::size_t> innerCol;
  if (join != nullptr && join->leftColumn) {
    for (const auto& [a, b] : {std::pair{join->leftColumn.get(), join->rightColumn.get()},
                               std::pair{join->rightColumn.get(), join->leftColumn.get()}}) {
      if (auto c = columnOf(*a, newIdx)) {
        innerCol = c;
        outerExpr = b;
        break;
      }
    }
  }
  if (!innerCol) {
    for (const Expr* c : conjuncts) {
      if (c->kind != Expr::Kind::Binary || c->op != BinOp::Eq) continue;
      if (c->lhs->kind != Expr::Kind::Column || c->rhs->kind != Expr::Kind::Column) continue;
      for (const auto& [a, b] : {std::pair{c->lhs.get(), c->rhs.get()},
                                 std::pair{c->rhs.get(), c->lhs.get()}}) {
        auto ic = columnOf(*a, newIdx);
        if (!ic) continue;
        const ColumnRef other = resolve(b->tableQualifier, b->column);
        if (other.tableIdx < newIdx) {  // refers to an already-bound table
          innerCol = ic;
          outerExpr = b;
          break;
        }
      }
      if (innerCol) break;
    }
  }

  std::vector<Binding> next;
  if (innerCol) {
    const bool viaPk = inner.isPrimaryKeyColumn(*innerCol);
    const bool viaIndex = inner.hasIndexOn(*innerCol);
    for (Binding& binding : bindings) {
      const Value key = eval(*outerExpr, binding);
      if (viaPk) {
        stats_.usedIndex = true;
        if (auto id = inner.findByPk(key)) {
          ++stats_.rowsExamined;
          stats_.bytesExamined += inner.avgRowBytes();
          Binding b = binding;
          b.push_back(*id);
          next.push_back(std::move(b));
        }
      } else if (viaIndex) {
        stats_.usedIndex = true;
        for (RowId id : inner.findByIndex(*innerCol, key)) {
          ++stats_.rowsExamined;
          stats_.bytesExamined += inner.avgRowBytes();
          Binding b = binding;
          b.push_back(id);
          next.push_back(std::move(b));
        }
      } else {
        inner.forEachRow([&](RowId id) {
          ++stats_.rowsExamined;
          stats_.bytesExamined += inner.avgRowBytes();
          if (inner.row(id)[*innerCol] == key) {
            Binding b = binding;
            b.push_back(id);
            next.push_back(std::move(b));
          }
        });
      }
    }
  } else {
    // Cross product (filtered later by WHERE).
    for (const Binding& binding : bindings) {
      inner.forEachRow([&](RowId id) {
        ++stats_.rowsExamined;
        stats_.bytesExamined += inner.avgRowBytes();
        Binding b = binding;
        b.push_back(id);
        next.push_back(std::move(b));
      });
    }
  }
  bindings = std::move(next);
}

ResultSet SelectRunner::project(const std::vector<Binding>& bindings) {
  ResultSet rs;

  // Expand the select list; Star becomes every column of every table.
  struct OutItem {
    const Expr* expr = nullptr;  // null for star-expanded plain column
    std::string name;
    std::optional<ColumnRef> starRef;
  };
  std::vector<OutItem> outItems;
  for (const SelectItem& item : stmt_.items) {
    if (item.expr->kind == Expr::Kind::Star) {
      for (std::size_t t = 0; t < tables_.size(); ++t) {
        const auto& cols = tables_[t].table->schema().columns;
        for (std::size_t c = 0; c < cols.size(); ++c) {
          outItems.push_back({nullptr, cols[c].name, ColumnRef{t, c}});
        }
      }
    } else {
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == Expr::Kind::Column ? item.expr->column : "expr";
      }
      outItems.push_back({item.expr.get(), std::move(name), std::nullopt});
    }
  }
  for (const auto& it : outItems) rs.columns.push_back(it.name);

  const bool grouped = !stmt_.groupBy.empty() ||
                       std::any_of(stmt_.items.begin(), stmt_.items.end(), [](const auto& i) {
                         return i.expr->kind != Expr::Kind::Star && containsAggregate(*i.expr);
                       });

  // Sort keys are computed per output row; ORDER BY may reference a select
  // alias/output column (required for grouped queries) or any row expression.
  struct SortableRow {
    Row out;
    std::vector<Value> keys;
  };
  std::vector<SortableRow> rows;

  auto orderKeyFromOutput = [&](const OrderItem& o, const Row& out) -> std::optional<Value> {
    if (o.expr->kind != Expr::Kind::Column || !o.expr->tableQualifier.empty()) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < outItems.size(); ++i) {
      if (outItems[i].name == o.expr->column) return out[i];
    }
    return std::nullopt;
  };

  if (grouped) {
    // Group bindings by the GROUP BY key (single group when absent).
    std::map<std::vector<Value>, std::vector<const Binding*>> groups;
    for (const Binding& b : bindings) {
      std::vector<Value> key;
      key.reserve(stmt_.groupBy.size());
      for (const auto& g : stmt_.groupBy) key.push_back(eval(*g, b));
      groups[std::move(key)].push_back(&b);
    }
    if (groups.empty() && stmt_.groupBy.empty()) {
      groups[{}] = {};  // aggregates over an empty input produce one row
    }
    stats_.aggregatedGroups += groups.size();
    for (auto& [key, group] : groups) {
      if (group.empty() && !stmt_.groupBy.empty()) continue;
      if (stmt_.having && !group.empty() &&
          !valueIsTrue(evalGrouped(*stmt_.having, group))) {
        continue;
      }
      SortableRow r;
      for (const auto& item : outItems) {
        if (item.starRef) {
          if (group.empty()) {
            r.out.push_back(Value());
          } else {
            r.out.push_back(tables_[item.starRef->tableIdx].table->row(
                (*group.front())[item.starRef->tableIdx])[item.starRef->columnIdx]);
          }
        } else if (group.empty()) {
          // COUNT(*) over empty input is 0; other aggregates are NULL.
          if (item.expr->kind == Expr::Kind::Aggregate && item.expr->agg == AggFunc::Count) {
            r.out.push_back(Value(std::int64_t{0}));
          } else {
            r.out.push_back(Value());
          }
        } else {
          r.out.push_back(evalGrouped(*item.expr, group));
        }
      }
      for (const OrderItem& o : stmt_.orderBy) {
        if (auto k = orderKeyFromOutput(o, r.out)) {
          r.keys.push_back(std::move(*k));
        } else if (!group.empty()) {
          r.keys.push_back(evalGrouped(*o.expr, group));
        } else {
          r.keys.push_back(Value());
        }
      }
      rows.push_back(std::move(r));
    }
  } else {
    for (const Binding& b : bindings) {
      SortableRow r;
      for (const auto& item : outItems) {
        if (item.starRef) {
          r.out.push_back(
              tables_[item.starRef->tableIdx].table->row(b[item.starRef->tableIdx])
                  [item.starRef->columnIdx]);
        } else {
          r.out.push_back(eval(*item.expr, b));
        }
      }
      for (const OrderItem& o : stmt_.orderBy) {
        if (auto k = orderKeyFromOutput(o, r.out)) r.keys.push_back(std::move(*k));
        else r.keys.push_back(eval(*o.expr, b));
      }
      rows.push_back(std::move(r));
    }
  }

  if (stmt_.distinct) {
    // Keep the first occurrence of each distinct output row (SQL DISTINCT
    // applies to the projected values).
    std::vector<SortableRow> unique;
    unique.reserve(rows.size());
    for (auto& row : rows) {
      bool seen = false;
      for (const auto& kept : unique) {
        bool equal = kept.out.size() == row.out.size();
        for (std::size_t i = 0; equal && i < kept.out.size(); ++i) {
          equal = kept.out[i].compare(row.out[i]) == 0;
        }
        if (equal) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(std::move(row));
    }
    rows = std::move(unique);
  }

  if (!stmt_.orderBy.empty()) {
    stats_.rowsSorted += rows.size();
    std::stable_sort(rows.begin(), rows.end(), [&](const SortableRow& a, const SortableRow& b) {
      for (std::size_t i = 0; i < stmt_.orderBy.size(); ++i) {
        const int c = a.keys[i].compare(b.keys[i]);
        if (c != 0) return stmt_.orderBy[i].descending ? c > 0 : c < 0;
      }
      return false;
    });
  }

  // OFFSET / LIMIT.
  std::size_t begin = std::min<std::size_t>(rows.size(), static_cast<std::size_t>(stmt_.offset));
  std::size_t end = rows.size();
  if (stmt_.limit) end = std::min(end, begin + static_cast<std::size_t>(*stmt_.limit));
  for (std::size_t i = begin; i < end; ++i) rs.rows.push_back(std::move(rows[i].out));

  stats_.rowsReturned += rs.rows.size();
  stats_.resultBytes += rs.byteSize();
  return rs;
}

}  // namespace

ExecResult Executor::execute(const Statement& stmt, std::span<const Value> params) {
  if (params.size() < stmt.paramCount) {
    throw std::runtime_error("statement needs " + std::to_string(stmt.paramCount) +
                             " parameters, got " + std::to_string(params.size()) +
                             ": " + stmt.text);
  }
  switch (stmt.kind) {
    case Statement::Kind::Select:
      return executeSelect(stmt.select, params);
    case Statement::Kind::Insert:
      return executeInsert(stmt.insert, params);
    case Statement::Kind::Update:
      return executeUpdate(stmt.update, params);
    case Statement::Kind::Delete:
      return executeDelete(stmt.del, params);
    case Statement::Kind::LockTables:
    case Statement::Kind::UnlockTables:
      // Lock statements are handled by the DatabaseServer; executing them
      // against the bare engine is a no-op.
      return {};
  }
  throw std::runtime_error("unhandled statement kind");
}

ExecResult Executor::query(std::string_view sql, std::span<const Value> params) {
  return execute(*parseSql(sql), params);
}

namespace {

/// O(1) fast path for `SELECT MAX(col)/MIN(col)/COUNT(*) FROM t` with no
/// WHERE/JOIN/GROUP — MySQL answers these from index metadata.
std::optional<ResultSet> aggregateFastPath(Database& db, const SelectStmt& s) {
  if (!s.joins.empty() || s.where || !s.groupBy.empty() || s.items.size() != 1) {
    return std::nullopt;
  }
  const Expr& e = *s.items[0].expr;
  if (e.kind != Expr::Kind::Aggregate) return std::nullopt;
  const Table& table = db.table(s.from.table);
  ResultSet rs;
  rs.columns.push_back(s.items[0].alias.empty() ? "agg" : s.items[0].alias);

  if (e.agg == AggFunc::Count && e.aggArg->kind == Expr::Kind::Star) {
    rs.rows.push_back({Value(static_cast<std::int64_t>(table.size()))});
    return rs;
  }
  if ((e.agg == AggFunc::Max || e.agg == AggFunc::Min) &&
      e.aggArg->kind == Expr::Kind::Column) {
    auto col = table.schema().columnIndex(e.aggArg->column);
    if (!col) return std::nullopt;
    if (table.size() == 0) {
      rs.rows.push_back({Value()});
      return rs;
    }
    if (e.agg == AggFunc::Max && table.isPrimaryKeyColumn(*col) &&
        table.schema().autoIncrement) {
      rs.rows.push_back({Value(table.maxAssignedId())});
      return rs;
    }
    auto v = e.agg == AggFunc::Max ? table.indexMax(*col) : table.indexMin(*col);
    if (v) {
      rs.rows.push_back({*v});
      return rs;
    }
  }
  return std::nullopt;
}

}  // namespace

ExecResult Executor::executeSelect(const SelectStmt& s, std::span<const Value> params) {
  ExecResult result;
  if (auto fast = aggregateFastPath(db_, s)) {
    result.resultSet = std::move(*fast);
    result.stats.usedIndex = true;
    result.stats.rowsExamined = 1;
    result.stats.rowsReturned = 1;
    result.stats.resultBytes = result.resultSet.byteSize();
    return result;
  }
  SelectRunner runner(db_, s, params, result.stats);
  result.resultSet = runner.run();
  return result;
}

namespace {

// Helper shared by UPDATE/DELETE: find matching row ids in one table.
std::vector<RowId> findMatches(Database& db, const std::string& tableName, const Expr* where,
                               std::span<const Value> params, ExecStats& stats) {
  Table& table = db.table(tableName);
  std::vector<RowId> out;

  // Split top-level AND conjuncts and look for an equality on the primary
  // key or an indexed column; remaining conjuncts are verified on the
  // candidates (e.g. `WHERE i_id = ? AND i_stock >= ?`).
  std::vector<const Expr*> conjuncts;
  const Expr* needVerify = where;  // full predicate re-checked on candidates
  {
    std::vector<const Expr*> stack;
    if (where != nullptr) stack.push_back(where);
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == Expr::Kind::Binary && e->op == BinOp::And) {
        stack.push_back(e->lhs.get());
        stack.push_back(e->rhs.get());
      } else {
        conjuncts.push_back(e);
      }
    }
  }
  std::optional<std::vector<RowId>> candidates;
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::Binary || c->op != BinOp::Eq) continue;
    for (const auto& [colSide, valSide] :
         {std::pair{c->lhs.get(), c->rhs.get()}, std::pair{c->rhs.get(), c->lhs.get()}}) {
      if (colSide->kind != Expr::Kind::Column) continue;
      auto col = table.schema().columnIndex(colSide->column);
      if (!col) continue;
      Value key;
      if (valSide->kind == Expr::Kind::Literal) key = valSide->literal;
      else if (valSide->kind == Expr::Kind::Param) key = params[valSide->paramIndex - 1];
      else continue;
      if (table.isPrimaryKeyColumn(*col)) {
        stats.usedIndex = true;
        candidates.emplace();
        if (auto id = table.findByPk(key)) candidates->push_back(*id);
        break;
      }
      if (table.hasIndexOn(*col)) {
        stats.usedIndex = true;
        candidates = table.findByIndex(*col, key);
        break;
      }
    }
    if (candidates) break;
  }

  // General path: scan and evaluate.
  struct RowEval {
    const Table& table;
    std::span<const Value> params;

    Value eval(const Expr& e, const Row& row) const {
      switch (e.kind) {
        case Expr::Kind::Literal:
          return e.literal;
        case Expr::Kind::Param:
          return params[e.paramIndex - 1];
        case Expr::Kind::Column: {
          auto c = table.schema().columnIndex(e.column);
          if (!c) throw std::runtime_error("unknown column: " + e.column);
          return row[*c];
        }
        case Expr::Kind::Binary: {
          const Value a = eval(*e.lhs, row);
          const Value b = eval(*e.rhs, row);
          switch (e.op) {
            case BinOp::And:
              return Value(static_cast<std::int64_t>(valueIsTrue(a) && valueIsTrue(b)));
            case BinOp::Or:
              return Value(static_cast<std::int64_t>(valueIsTrue(a) || valueIsTrue(b)));
            case BinOp::Like:
              if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
              return Value(static_cast<std::int64_t>(
                  likeMatch(a.toDisplayString(), b.asString())));
            case BinOp::Add:
              return Value(a.asDouble() + b.asDouble());
            case BinOp::Sub:
              return Value(a.asDouble() - b.asDouble());
            case BinOp::Mul:
              return Value(a.asDouble() * b.asDouble());
            case BinOp::Div:
              return b.asDouble() == 0 ? Value() : Value(a.asDouble() / b.asDouble());
            default: {
              if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
              const int c = a.compare(b);
              bool r = false;
              switch (e.op) {
                case BinOp::Eq: r = c == 0; break;
                case BinOp::Ne: r = c != 0; break;
                case BinOp::Lt: r = c < 0; break;
                case BinOp::Le: r = c <= 0; break;
                case BinOp::Gt: r = c > 0; break;
                default: r = c >= 0; break;
              }
              return Value(static_cast<std::int64_t>(r));
            }
          }
        }
        case Expr::Kind::In: {
          const Value needle = eval(*e.lhs, row);
          if (needle.isNull()) return Value(std::int64_t{0});
          for (const auto& item : e.list) {
            if (needle.compare(eval(*item, row)) == 0) return Value(std::int64_t{1});
          }
          return Value(std::int64_t{0});
        }
        case Expr::Kind::IsNull: {
          const bool isNull = eval(*e.lhs, row).isNull();
          return Value(static_cast<std::int64_t>(isNull != e.negated));
        }
        case Expr::Kind::Not:
          return Value(static_cast<std::int64_t>(!valueIsTrue(eval(*e.lhs, row))));
        default:
          throw std::runtime_error("unsupported expression in UPDATE/DELETE");
      }
    }
  };
  RowEval ev{table, params};
  if (candidates) {
    for (RowId id : *candidates) {
      ++stats.rowsExamined;
      stats.bytesExamined += table.avgRowBytes();
      if (needVerify == nullptr || valueIsTrue(ev.eval(*needVerify, table.row(id)))) {
        out.push_back(id);
      }
    }
    return out;
  }
  table.forEachRow([&](RowId id) {
    ++stats.rowsExamined;
    stats.bytesExamined += table.avgRowBytes();
    if (where == nullptr || valueIsTrue(ev.eval(*where, table.row(id)))) {
      out.push_back(id);
    }
  });
  return out;
}

Value coerce(const Value& v, ColumnType type) {
  if (v.isNull()) return v;
  switch (type) {
    case ColumnType::Int:
      if (v.isDouble()) return Value(v.asInt());
      return v;
    case ColumnType::Double:
      if (v.isInt()) return Value(v.asDouble());
      return v;
    case ColumnType::String:
      return v;
  }
  return v;
}

Value evalStandalone(const Expr& e, std::span<const Value> params) {
  switch (e.kind) {
    case Expr::Kind::Literal:
      return e.literal;
    case Expr::Kind::Param:
      if (e.paramIndex > params.size()) {
        throw std::runtime_error("missing bind parameter");
      }
      return params[e.paramIndex - 1];
    case Expr::Kind::Binary: {
      const Value a = evalStandalone(*e.lhs, params);
      const Value b = evalStandalone(*e.rhs, params);
      if (a.isNull() || b.isNull()) return Value();
      switch (e.op) {
        case BinOp::Add:
          return (a.isInt() && b.isInt()) ? Value(a.asInt() + b.asInt())
                                          : Value(a.asDouble() + b.asDouble());
        case BinOp::Sub:
          return (a.isInt() && b.isInt()) ? Value(a.asInt() - b.asInt())
                                          : Value(a.asDouble() - b.asDouble());
        case BinOp::Mul:
          return (a.isInt() && b.isInt()) ? Value(a.asInt() * b.asInt())
                                          : Value(a.asDouble() * b.asDouble());
        case BinOp::Div:
          return b.asDouble() == 0 ? Value() : Value(a.asDouble() / b.asDouble());
        default:
          throw std::runtime_error("unsupported operator in value expression");
      }
    }
    default:
      throw std::runtime_error("column reference in value-only expression");
  }
}

}  // namespace

ExecResult Executor::executeInsert(const InsertStmt& s, std::span<const Value> params) {
  ExecResult result;
  Table& table = db_.table(s.table);
  const auto& schema = table.schema();
  Row row(schema.columns.size());  // default NULLs

  if (s.columns.empty()) {
    if (s.values.size() != schema.columns.size()) {
      throw std::runtime_error("INSERT value count mismatch for " + s.table);
    }
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      row[i] = coerce(evalStandalone(*s.values[i], params), schema.columns[i].type);
    }
  } else {
    if (s.columns.size() != s.values.size()) {
      throw std::runtime_error("INSERT column/value count mismatch for " + s.table);
    }
    for (std::size_t i = 0; i < s.columns.size(); ++i) {
      auto c = schema.columnIndex(s.columns[i]);
      if (!c) throw std::runtime_error("unknown column in INSERT: " + s.columns[i]);
      row[*c] = coerce(evalStandalone(*s.values[i], params), schema.columns[*c].type);
    }
  }
  result.lastInsertId = table.insert(std::move(row));
  result.affectedRows = 1;
  result.stats.rowsModified = 1;
  return result;
}

ExecResult Executor::executeUpdate(const UpdateStmt& s, std::span<const Value> params) {
  ExecResult result;
  Table& table = db_.table(s.table);
  const auto& schema = table.schema();
  const auto matches = findMatches(db_, s.table, s.where.get(), params, result.stats);

  // Pre-resolve assignment targets.
  struct Target {
    std::size_t column;
    const Expr* value;
  };
  std::vector<Target> targets;
  for (const auto& a : s.sets) {
    auto c = schema.columnIndex(a.column);
    if (!c) throw std::runtime_error("unknown column in UPDATE: " + a.column);
    targets.push_back({*c, a.value.get()});
  }

  // Row-context evaluator (assignments may reference current values,
  // e.g. SET qty = qty + 1).
  struct RowEval {
    const Table& table;
    std::span<const Value> params;
    Value eval(const Expr& e, const Row& row) const {
      switch (e.kind) {
        case Expr::Kind::Literal:
          return e.literal;
        case Expr::Kind::Param:
          return params[e.paramIndex - 1];
        case Expr::Kind::Column: {
          auto c = table.schema().columnIndex(e.column);
          if (!c) throw std::runtime_error("unknown column: " + e.column);
          return row[*c];
        }
        case Expr::Kind::Binary: {
          const Value a = eval(*e.lhs, row);
          const Value b = eval(*e.rhs, row);
          if (a.isNull() || b.isNull()) return Value();
          switch (e.op) {
            case BinOp::Add:
              return (a.isInt() && b.isInt()) ? Value(a.asInt() + b.asInt())
                                              : Value(a.asDouble() + b.asDouble());
            case BinOp::Sub:
              return (a.isInt() && b.isInt()) ? Value(a.asInt() - b.asInt())
                                              : Value(a.asDouble() - b.asDouble());
            case BinOp::Mul:
              return (a.isInt() && b.isInt()) ? Value(a.asInt() * b.asInt())
                                              : Value(a.asDouble() * b.asDouble());
            case BinOp::Div:
              return b.asDouble() == 0 ? Value() : Value(a.asDouble() / b.asDouble());
            default:
              throw std::runtime_error("unsupported operator in SET expression");
          }
        }
        default:
          throw std::runtime_error("unsupported expression in SET");
      }
    }
  };
  RowEval ev{table, params};

  for (RowId id : matches) {
    // Evaluate all assignments against the pre-update row, then apply.
    std::vector<Value> newValues;
    newValues.reserve(targets.size());
    for (const Target& t : targets) {
      newValues.push_back(
          coerce(ev.eval(*t.value, table.row(id)), schema.columns[t.column].type));
    }
    for (std::size_t i = 0; i < targets.size(); ++i) {
      table.updateCell(id, targets[i].column, std::move(newValues[i]));
    }
  }
  result.affectedRows = matches.size();
  result.stats.rowsModified = matches.size();
  return result;
}

ExecResult Executor::executeDelete(const DeleteStmt& s, std::span<const Value> params) {
  ExecResult result;
  Table& table = db_.table(s.table);
  const auto matches = findMatches(db_, s.table, s.where.get(), params, result.stats);
  for (RowId id : matches) table.erase(id);
  result.affectedRows = matches.size();
  result.stats.rowsModified = matches.size();
  return result;
}

// ---------------------------------------------------------------------------
// SelectRunner::run — the SELECT pipeline: access path, joins, residual
// filter, then projection/grouping/order/limit.

namespace {

ResultSet SelectRunner::run() {
  tables_.clear();
  tables_.push_back({stmt_.from.alias, &db_.table(stmt_.from.table)});
  for (const auto& j : stmt_.joins) {
    tables_.push_back({j.table.alias, &db_.table(j.table.table)});
  }

  std::vector<const Expr*> conjuncts;
  splitConjuncts(stmt_.where.get(), conjuncts);

  // Base table access.
  std::vector<Binding> bindings;
  {
    auto baseRows = baseTableCandidates(conjuncts);
    bindings.reserve(baseRows.size());
    for (RowId id : baseRows) bindings.push_back(Binding{id});
  }

  // Push down conjuncts that reference only the base table before joining,
  // so selective filters (e.g. LIKE on the driving table) do not fan out
  // through the joins first.
  if (!stmt_.joins.empty() && !conjuncts.empty() && !bindings.empty()) {
    std::vector<const Expr*> baseOnly;
    for (const Expr* c : conjuncts) {
      if (referencesOnlyTable(*c, 0)) baseOnly.push_back(c);
    }
    if (!baseOnly.empty()) {
      std::vector<Binding> kept;
      kept.reserve(bindings.size());
      for (Binding& b : bindings) {
        bool pass = true;
        for (const Expr* c : baseOnly) {
          if (!valueIsTrue(eval(*c, b))) {
            pass = false;
            break;
          }
        }
        if (pass) kept.push_back(std::move(b));
      }
      bindings = std::move(kept);
    }
  }

  // Joins.
  for (std::size_t j = 0; j < stmt_.joins.size(); ++j) {
    joinTable(j + 1, &stmt_.joins[j], conjuncts, bindings);
  }

  // Residual WHERE filter.
  if (stmt_.where) {
    std::vector<Binding> filtered;
    filtered.reserve(bindings.size());
    for (Binding& b : bindings) {
      if (valueIsTrue(eval(*stmt_.where, b))) filtered.push_back(std::move(b));
    }
    bindings = std::move(filtered);
  }

  return project(bindings);
}

}  // namespace

}  // namespace mwsim::db
