#include "db/executor.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "db/parser.hpp"
#include "db/plan.hpp"

namespace mwsim::db {

bool valueIsTrue(const Value& v) {
  if (v.isNull()) return false;
  if (v.isInt()) return v.asInt() != 0;
  if (v.isDouble()) return v.asDouble() != 0.0;
  return !v.asString().empty();
}

bool likeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t starP = std::string::npos;
  std::size_t starT = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      starP = p++;
      starT = t;
    } else if (starP != std::string::npos) {
      p = starP + 1;
      t = ++starT;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

// ---------------------------------------------------------------------------
// Compiled-expression evaluation. Plans resolved every column reference to a
// (table, column) slot, so evaluation is pure array indexing — no per-row
// name lookups. The row source is a template parameter: a single table row
// on the fast path, a flat multi-table binding on the join path.

/// Row source over one row of the driving table (all refs have tableIdx 0).
struct SingleRow {
  const Row* row;
  const Value& at(const PlanColumnRef& ref) const { return (*row)[ref.columnIdx]; }
};

/// Row source over one flat binding: one RowId per bound table.
struct FlatRow {
  const std::vector<const Table*>* tables;
  const RowId* ids;
  const Value& at(const PlanColumnRef& ref) const {
    return (*tables)[ref.tableIdx]->row(ids[ref.tableIdx])[ref.columnIdx];
  }
};

/// Row source for value-only contexts (access-path keys, INSERT values).
/// Column references were rejected at plan time, so at() is unreachable.
struct NoRow {
  const Value& at(const PlanColumnRef&) const {
    throw std::runtime_error("column reference in value-only expression");
  }
};

Value evalBinary(BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinOp::And:
      return Value(static_cast<std::int64_t>(valueIsTrue(a) && valueIsTrue(b)));
    case BinOp::Or:
      return Value(static_cast<std::int64_t>(valueIsTrue(a) || valueIsTrue(b)));
    case BinOp::Like:
      if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
      return Value(static_cast<std::int64_t>(likeMatch(a.toDisplayString(), b.asString())));
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      if (a.isNull() || b.isNull()) return Value(std::int64_t{0});
      const int c = a.compare(b);
      bool r = false;
      switch (op) {
        case BinOp::Eq: r = c == 0; break;
        case BinOp::Ne: r = c != 0; break;
        case BinOp::Lt: r = c < 0; break;
        case BinOp::Le: r = c <= 0; break;
        case BinOp::Gt: r = c > 0; break;
        default: r = c >= 0; break;
      }
      return Value(static_cast<std::int64_t>(r));
    }
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div: {
      if (a.isNull() || b.isNull()) return Value();
      if (a.isInt() && b.isInt() && op != BinOp::Div) {
        const auto x = a.asInt();
        const auto y = b.asInt();
        switch (op) {
          case BinOp::Add: return Value(x + y);
          case BinOp::Sub: return Value(x - y);
          default: return Value(x * y);
        }
      }
      const double x = a.asDouble();
      const double y = b.asDouble();
      switch (op) {
        case BinOp::Add: return Value(x + y);
        case BinOp::Sub: return Value(x - y);
        case BinOp::Mul: return Value(x * y);
        default:
          if (y == 0.0) return Value();
          return Value(x / y);
      }
    }
  }
  throw std::runtime_error("unhandled binary op");
}

template <typename Src>
Value evalExpr(const CompiledExpr& e, std::span<const Value> params, const Src& src) {
  switch (e.kind) {
    case Expr::Kind::Literal:
      return e.literal;
    case Expr::Kind::Param:
      if (e.paramIndex > params.size()) {
        throw std::runtime_error("missing bind parameter " + std::to_string(e.paramIndex));
      }
      return params[e.paramIndex - 1];
    case Expr::Kind::Column:
      return src.at(e.col);
    case Expr::Kind::Binary:
      return evalBinary(e.op, evalExpr(*e.lhs, params, src), evalExpr(*e.rhs, params, src));
    case Expr::Kind::In: {
      const Value needle = evalExpr(*e.lhs, params, src);
      if (needle.isNull()) return Value(std::int64_t{0});
      for (const auto& item : e.list) {
        if (needle.compare(evalExpr(*item, params, src)) == 0) return Value(std::int64_t{1});
      }
      return Value(std::int64_t{0});
    }
    case Expr::Kind::IsNull: {
      const bool isNull = evalExpr(*e.lhs, params, src).isNull();
      return Value(static_cast<std::int64_t>(isNull != e.negated));
    }
    case Expr::Kind::Not:
      return Value(static_cast<std::int64_t>(!valueIsTrue(evalExpr(*e.lhs, params, src))));
    case Expr::Kind::Aggregate:
      throw std::runtime_error("aggregate in row context");
    case Expr::Kind::Star:
      throw std::runtime_error("* in scalar context");
  }
  throw std::runtime_error("unhandled expr kind");
}

/// One group of bindings for aggregate evaluation.
struct GroupView {
  const std::vector<const Table*>* tables;
  const std::vector<const RowId*>* members;

  FlatRow member(std::size_t i) const { return FlatRow{tables, (*members)[i]}; }
  std::size_t size() const { return members->size(); }
};

Value evalAggregate(const CompiledExpr& e, std::span<const Value> params,
                    const GroupView& group) {
  if (!e.aggArg) {  // argument was *, compiled away
    if (e.agg == AggFunc::Count) {
      return Value(static_cast<std::int64_t>(group.size()));
    }
    throw std::runtime_error("* in scalar context");
  }
  std::int64_t count = 0;
  double sum = 0.0;
  bool allInt = true;
  std::int64_t isum = 0;
  std::optional<Value> minV;
  std::optional<Value> maxV;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const FlatRow src = group.member(i);
    const Value v = evalExpr(*e.aggArg, params, src);
    if (v.isNull()) continue;
    ++count;
    if (v.isNumeric()) {
      sum += v.asDouble();
      if (v.isInt()) isum += v.asInt();
      else allInt = false;
    } else {
      allInt = false;
    }
    if (!minV || v < *minV) minV = v;
    if (!maxV || v > *maxV) maxV = v;
  }
  switch (e.agg) {
    case AggFunc::Count:
      return Value(count);
    case AggFunc::Sum:
      if (count == 0) return Value();
      return allInt ? Value(isum) : Value(sum);
    case AggFunc::Avg:
      if (count == 0) return Value();
      return Value(sum / static_cast<double>(count));
    case AggFunc::Min:
      return minV.value_or(Value());
    case AggFunc::Max:
      return maxV.value_or(Value());
    case AggFunc::None:
      break;
  }
  throw std::runtime_error("unhandled aggregate");
}

/// Group context: aggregates consume the whole group, everything else is
/// taken from the group's first row (valid for group keys, which is all the
/// apps use).
Value evalGrouped(const CompiledExpr& e, std::span<const Value> params,
                  const GroupView& group) {
  switch (e.kind) {
    case Expr::Kind::Aggregate:
      return evalAggregate(e, params, group);
    case Expr::Kind::Binary:
      if (e.hasAggregate) {
        return evalBinary(e.op, evalGrouped(*e.lhs, params, group),
                          evalGrouped(*e.rhs, params, group));
      }
      return evalExpr(e, params, group.member(0));
    case Expr::Kind::Not:
      if (e.hasAggregate) {
        return Value(static_cast<std::int64_t>(!valueIsTrue(evalGrouped(*e.lhs, params, group))));
      }
      return evalExpr(e, params, group.member(0));
    case Expr::Kind::In:
      if (e.hasAggregate) {
        const Value needle = evalGrouped(*e.lhs, params, group);
        if (needle.isNull()) return Value(std::int64_t{0});
        for (const auto& item : e.list) {
          if (needle.compare(evalGrouped(*item, params, group)) == 0) {
            return Value(std::int64_t{1});
          }
        }
        return Value(std::int64_t{0});
      }
      return evalExpr(e, params, group.member(0));
    default:
      return evalExpr(e, params, group.member(0));
  }
}

Value coerce(const Value& v, ColumnType type) {
  if (v.isNull()) return v;
  switch (type) {
    case ColumnType::Int:
      if (v.isDouble()) return Value(v.asInt());
      return v;
    case ColumnType::Double:
      if (v.isInt()) return Value(v.asDouble());
      return v;
    case ColumnType::String:
      return v;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Access paths: turn an AccessPath plus bound parameters into a stream of
// candidate RowIds. Statistics count every row the engine touches, matching
// the pre-plan executor's accounting row for row (except where an early
// exit genuinely touches fewer rows — that reduction is the point).

/// Range bounds merged at execution: the tightest of each side wins; on
/// equal values a strict bound beats an inclusive one (their conjunction).
struct MergedRange {
  bool empty = false;
  std::optional<Value> lo;
  bool loInc = true;
  std::optional<Value> hi;
  bool hiInc = true;
};

MergedRange mergeBounds(const AccessPath& a, std::span<const Value> params) {
  MergedRange m;
  for (const auto& b : a.lower) {
    const Value v = evalExpr(*b.expr, params, NoRow{});
    if (v.isNull()) {  // `col > NULL` is never true
      m.empty = true;
      return m;
    }
    if (!m.lo || v > *m.lo || (v == *m.lo && m.loInc && !b.inclusive)) {
      m.lo = v;
      m.loInc = b.inclusive;
    }
  }
  for (const auto& b : a.upper) {
    const Value v = evalExpr(*b.expr, params, NoRow{});
    if (v.isNull()) {
      m.empty = true;
      return m;
    }
    if (!m.hi || v < *m.hi || (v == *m.hi && m.hiInc && !b.inclusive)) {
      m.hi = v;
      m.hiInc = b.inclusive;
    }
  }
  // A crossed range (lo past hi) is empty. Without this, the scan's begin
  // iterator would sit after its end iterator and the walk would run off
  // the index.
  if (m.lo && m.hi) {
    const int c = m.lo->compare(*m.hi);
    if (c > 0 || (c == 0 && (!m.loInc || !m.hiInc))) m.empty = true;
  }
  return m;
}

/// Streams candidate row ids of `table` for the given access path into
/// `fn(RowId) -> bool` (false stops the scan). Counts examined rows.
template <typename Fn>
void scanAccess(const AccessPath& a, const Table& table, std::span<const Value> params,
                ExecStats& stats, Fn&& fn) {
  const std::size_t rowBytes = table.avgRowBytes();
  auto count = [&] {
    ++stats.rowsExamined;
    stats.bytesExamined += rowBytes;
  };
  switch (a.kind) {
    case AccessPath::Kind::FullScan:
      table.forEachRowWhile([&](RowId id) {
        count();
        return fn(id);
      });
      return;

    case AccessPath::Kind::PkEq: {
      stats.usedIndex = true;
      const Value key = evalExpr(*a.eqKey, params, NoRow{});
      if (key.isNull()) return;  // `pk = NULL` matches nothing
      if (auto id = table.findByPk(key)) {
        count();
        fn(*id);
      }
      return;
    }

    case AccessPath::Kind::IndexEq: {
      stats.usedIndex = true;
      const Value key = evalExpr(*a.eqKey, params, NoRow{});
      if (key.isNull()) return;
      for (RowId id : table.findByIndex(a.column, key)) {
        count();
        if (!fn(id)) return;
      }
      return;
    }

    case AccessPath::Kind::InList: {
      stats.usedIndex = true;
      // Evaluate and deduplicate the keys (first occurrence wins): a
      // duplicate IN item must not produce a duplicate output row, exactly
      // as it cannot under a full scan.
      std::vector<Value> keys;
      keys.reserve(a.inKeys.size());
      for (const auto& item : a.inKeys) {
        Value v = evalExpr(*item, params, NoRow{});
        if (v.isNull()) continue;  // `col IN (..., NULL, ...)` never matches NULL
        if (std::find(keys.begin(), keys.end(), v) == keys.end()) keys.push_back(std::move(v));
      }
      for (const Value& key : keys) {
        if (a.viaPk) {
          if (auto id = table.findByPk(key)) {
            count();
            if (!fn(*id)) return;
          }
        } else {
          for (RowId id : table.findByIndex(a.column, key)) {
            count();
            if (!fn(id)) return;
          }
        }
      }
      return;
    }

    case AccessPath::Kind::IndexRange: {
      stats.usedIndex = true;
      const MergedRange m = mergeBounds(a, params);
      if (m.empty) return;
      const auto& index = *table.orderedIndex(a.column);
      auto it = m.lo ? (m.loInc ? index.lower_bound(*m.lo) : index.upper_bound(*m.lo))
                     : index.begin();
      const auto end = m.hi ? (m.hiInc ? index.upper_bound(*m.hi) : index.lower_bound(*m.hi))
                            : index.end();
      for (; it != end; ++it) {
        count();
        // With no lower bound the scan starts at the NULL entries; the
        // consumed `col <= hi` conjunct rejects them (counted as examined,
        // exactly as the unplanned executor's residual filter did).
        if (it->first.isNull()) continue;
        if (!fn(it->second)) return;
      }
      return;
    }

    case AccessPath::Kind::OrderedIndexScan: {
      stats.usedIndex = true;
      const auto& index = *table.orderedIndex(a.column);
      const bool ranged = !a.lower.empty() || !a.upper.empty();
      auto begin = index.begin();
      auto end = index.end();
      if (ranged) {
        const MergedRange m = mergeBounds(a, params);
        if (m.empty) return;
        begin = m.lo ? (m.loInc ? index.lower_bound(*m.lo) : index.upper_bound(*m.lo))
                     : index.begin();
        end = m.hi ? (m.hiInc ? index.upper_bound(*m.hi) : index.lower_bound(*m.hi))
                   : index.end();
      }
      // Emit one equal-key block at a time so ties reproduce the exact
      // order the eliminated stable_sort produced (see AccessPath).
      std::vector<RowId> block;
      auto emitBlock = [&](auto b, auto e) {
        if (a.blockRowIdOrder) {
          block.clear();
          for (; b != e; ++b) {
            count();
            block.push_back(b->second);
          }
          std::sort(block.begin(), block.end());
          for (RowId id : block) {
            if (!fn(id)) return false;
          }
        } else {
          for (; b != e; ++b) {
            count();
            if (ranged && b->first.isNull()) continue;
            if (!fn(b->second)) return false;
          }
        }
        return true;
      };
      if (!a.descending) {
        auto it = begin;
        while (it != end) {
          auto stop = index.upper_bound(it->first);
          if (!emitBlock(it, stop)) return;
          it = stop;
        }
      } else {
        auto it = end;
        while (it != begin) {
          auto blockBegin = index.lower_bound(std::prev(it)->first);
          if (!emitBlock(blockBegin, it)) return;
          it = blockBegin;
        }
      }
      return;
    }

    case AccessPath::Kind::AggFast:
      throw std::runtime_error("aggregate fast path has no row stream");
  }
}

// ---------------------------------------------------------------------------
// SELECT execution.

class SelectExec {
 public:
  SelectExec(Database& db, const SelectPlan& p, std::span<const Value> params,
             ExecStats& stats)
      : p_(p), params_(params), stats_(stats) {
    tables_.reserve(p.tableNames.size());
    for (const auto& name : p.tableNames) tables_.push_back(&db.table(name));
  }

  ResultSet run() {
    if (p_.access.kind == AccessPath::Kind::AggFast) return runAggFast();
    ResultSet rs;
    rs.columns.reserve(p_.items.size());
    for (const auto& item : p_.items) rs.columns.push_back(item.name);
    if (p_.joins.empty() && !p_.grouped) {
      runSingle(rs);
    } else {
      runGeneric(rs);
    }
    stats_.rowsReturned += rs.rows.size();
    stats_.resultBytes += rs.byteSize();
    return rs;
  }

 private:
  struct SortableRow {
    Row out;
    std::vector<Value> keys;
  };

  // ----- single-table, non-grouped: the hot path -----
  bool passesFilters(const SingleRow& src) const {
    for (const auto& c : p_.baseFilter) {
      if (!valueIsTrue(evalExpr(*c, params_, src))) return false;
    }
    for (const auto& c : p_.residual) {
      if (!valueIsTrue(evalExpr(*c, params_, src))) return false;
    }
    return true;
  }

  Row projectSingle(const SingleRow& src) const {
    Row out;
    out.reserve(p_.items.size());
    for (const auto& item : p_.items) {
      if (item.direct) {
        out.push_back(src.at(*item.direct));
      } else {
        out.push_back(evalExpr(*item.expr, params_, src));
      }
    }
    return out;
  }

  void runSingle(ResultSet& rs) {
    const Table& table = *tables_[0];
    const bool needSort = !p_.orderBy.empty() && !p_.sortElided;
    const auto offset = static_cast<std::size_t>(p_.offset);

    if (needSort) {
      // Collect, then the shared distinct/sort/slice tail.
      std::vector<SortableRow> rows;
      scanAccess(p_.access, table, params_, stats_, [&](RowId id) {
        const SingleRow src{&table.row(id)};
        if (!passesFilters(src)) return true;
        SortableRow r;
        r.out = projectSingle(src);
        r.keys.reserve(p_.orderBy.size());
        for (const auto& ok : p_.orderBy) {
          if (ok.outputIndex) r.keys.push_back(r.out[*ok.outputIndex]);
          else r.keys.push_back(evalExpr(*ok.expr, params_, src));
        }
        rows.push_back(std::move(r));
        return true;
      });
      finish(rows, rs);
      return;
    }

    if (p_.distinct) {
      // DISTINCT without a sort: stream with first-occurrence dedup; done
      // once offset+limit distinct rows exist.
      std::vector<Row> uniques;
      const std::optional<std::size_t> want =
          p_.limit ? std::optional<std::size_t>(offset + static_cast<std::size_t>(*p_.limit))
                   : std::nullopt;
      scanAccess(p_.access, table, params_, stats_, [&](RowId id) {
        const SingleRow src{&table.row(id)};
        if (!passesFilters(src)) return true;
        Row out = projectSingle(src);
        for (const Row& kept : uniques) {
          bool equal = kept.size() == out.size();
          for (std::size_t i = 0; equal && i < kept.size(); ++i) {
            equal = kept[i].compare(out[i]) == 0;
          }
          if (equal) return true;
        }
        uniques.push_back(std::move(out));
        return !(want && uniques.size() >= *want);
      });
      const std::size_t begin = std::min(uniques.size(), offset);
      std::size_t end = uniques.size();
      if (p_.limit) end = std::min(end, begin + static_cast<std::size_t>(*p_.limit));
      for (std::size_t i = begin; i < end; ++i) rs.rows.push_back(std::move(uniques[i]));
      return;
    }

    // Streaming with early exit: no sort pending (either no ORDER BY, or an
    // ordered-index scan already yields rows in order), so the scan can
    // stop at OFFSET+LIMIT — the rows a real engine would never touch are
    // never examined, and never charged.
    std::size_t skipped = 0;
    scanAccess(p_.access, table, params_, stats_, [&](RowId id) {
      const SingleRow src{&table.row(id)};
      if (!passesFilters(src)) return true;
      if (skipped < offset) {
        ++skipped;
        return true;
      }
      if (p_.limit && rs.rows.size() >= static_cast<std::size_t>(*p_.limit)) return false;
      rs.rows.push_back(projectSingle(src));
      return !(p_.limit && rs.rows.size() >= static_cast<std::size_t>(*p_.limit));
    });
  }

  // ----- joins and/or grouping: flat bindings, no early exit -----
  void runGeneric(ResultSet& rs) {
    const std::size_t width = tables_.size();

    // Base access + base-only filter pushdown.
    std::vector<RowId> flat;  // bindings, `stride` ids each
    std::size_t stride = 1;
    scanAccess(p_.access, *tables_[0], params_, stats_, [&](RowId id) {
      const SingleRow src{&tables_[0]->row(id)};
      for (const auto& c : p_.baseFilter) {
        if (!valueIsTrue(evalExpr(*c, params_, src))) return true;
      }
      flat.push_back(id);
      return true;
    });

    // Join steps, widening each binding by one id.
    for (std::size_t j = 0; j < p_.joins.size(); ++j) {
      const SelectPlan::JoinStep& step = p_.joins[j];
      const Table& inner = *tables_[j + 1];
      const std::size_t innerBytes = inner.avgRowBytes();
      std::vector<RowId> next;
      const std::size_t n = flat.size() / stride;
      for (std::size_t b = 0; b < n; ++b) {
        const RowId* ids = flat.data() + b * stride;
        auto extend = [&](RowId id) {
          next.insert(next.end(), ids, ids + stride);
          next.push_back(id);
        };
        switch (step.kind) {
          case SelectPlan::JoinStep::Kind::PkLookup: {
            stats_.usedIndex = true;
            const Value key = evalExpr(*step.outerKey, params_, FlatRow{&tables_, ids});
            if (key.isNull()) break;  // NULL never joins
            if (auto id = inner.findByPk(key)) {
              ++stats_.rowsExamined;
              stats_.bytesExamined += innerBytes;
              extend(*id);
            }
            break;
          }
          case SelectPlan::JoinStep::Kind::IndexLookup: {
            stats_.usedIndex = true;
            const Value key = evalExpr(*step.outerKey, params_, FlatRow{&tables_, ids});
            if (key.isNull()) break;
            for (RowId id : inner.findByIndex(step.innerColumn, key)) {
              ++stats_.rowsExamined;
              stats_.bytesExamined += innerBytes;
              extend(id);
            }
            break;
          }
          case SelectPlan::JoinStep::Kind::ScanEq: {
            const Value key = evalExpr(*step.outerKey, params_, FlatRow{&tables_, ids});
            inner.forEachRow([&](RowId id) {
              ++stats_.rowsExamined;
              stats_.bytesExamined += innerBytes;
              if (!key.isNull() && inner.row(id)[step.innerColumn] == key) extend(id);
            });
            break;
          }
          case SelectPlan::JoinStep::Kind::Cross:
            inner.forEachRow([&](RowId id) {
              ++stats_.rowsExamined;
              stats_.bytesExamined += innerBytes;
              extend(id);
            });
            break;
        }
      }
      flat = std::move(next);
      ++stride;
    }

    // Residual filter over fully bound rows.
    if (!p_.residual.empty()) {
      std::vector<RowId> kept;
      const std::size_t n = flat.size() / stride;
      for (std::size_t b = 0; b < n; ++b) {
        const RowId* ids = flat.data() + b * stride;
        const FlatRow src{&tables_, ids};
        bool pass = true;
        for (const auto& c : p_.residual) {
          if (!valueIsTrue(evalExpr(*c, params_, src))) {
            pass = false;
            break;
          }
        }
        if (pass) kept.insert(kept.end(), ids, ids + stride);
      }
      flat = std::move(kept);
    }

    (void)width;
    std::vector<SortableRow> rows;
    const std::size_t n = flat.size() / stride;
    if (p_.grouped) {
      projectGrouped(flat, stride, n, rows);
    } else {
      for (std::size_t b = 0; b < n; ++b) {
        const FlatRow src{&tables_, flat.data() + b * stride};
        SortableRow r;
        r.out.reserve(p_.items.size());
        for (const auto& item : p_.items) {
          if (item.direct) r.out.push_back(src.at(*item.direct));
          else r.out.push_back(evalExpr(*item.expr, params_, src));
        }
        r.keys.reserve(p_.orderBy.size());
        for (const auto& ok : p_.orderBy) {
          if (ok.outputIndex) r.keys.push_back(r.out[*ok.outputIndex]);
          else r.keys.push_back(evalExpr(*ok.expr, params_, src));
        }
        rows.push_back(std::move(r));
      }
    }
    finish(rows, rs);
  }

  void projectGrouped(const std::vector<RowId>& flat, std::size_t stride, std::size_t n,
                      std::vector<SortableRow>& rows) {
    // Group keys are compared with Value::compare via std::map, so group
    // iteration (and thus pre-sort output order) is deterministic.
    std::map<std::vector<Value>, std::vector<const RowId*>> groups;
    for (std::size_t b = 0; b < n; ++b) {
      const RowId* ids = flat.data() + b * stride;
      const FlatRow src{&tables_, ids};
      std::vector<Value> key;
      key.reserve(p_.groupKeys.size());
      for (const auto& g : p_.groupKeys) key.push_back(evalExpr(*g, params_, src));
      groups[std::move(key)].push_back(ids);
    }
    if (groups.empty() && p_.groupKeys.empty()) {
      groups[{}] = {};  // aggregates over an empty input produce one row
    }
    stats_.aggregatedGroups += groups.size();
    for (auto& [key, members] : groups) {
      const GroupView group{&tables_, &members};
      if (members.empty() && !p_.groupKeys.empty()) continue;
      if (p_.having && !members.empty() &&
          !valueIsTrue(evalGrouped(*p_.having, params_, group))) {
        continue;
      }
      SortableRow r;
      r.out.reserve(p_.items.size());
      for (const auto& item : p_.items) {
        if (members.empty()) {
          // COUNT over empty input is 0; anything else is NULL.
          if (item.expr && item.expr->kind == Expr::Kind::Aggregate &&
              item.expr->agg == AggFunc::Count) {
            r.out.push_back(Value(std::int64_t{0}));
          } else {
            r.out.push_back(Value());
          }
        } else if (item.direct) {
          r.out.push_back(group.member(0).at(*item.direct));
        } else {
          r.out.push_back(evalGrouped(*item.expr, params_, group));
        }
      }
      r.keys.reserve(p_.orderBy.size());
      for (const auto& ok : p_.orderBy) {
        if (ok.outputIndex) {
          r.keys.push_back(r.out[*ok.outputIndex]);
        } else if (!members.empty()) {
          r.keys.push_back(evalGrouped(*ok.expr, params_, group));
        } else {
          r.keys.push_back(Value());
        }
      }
      rows.push_back(std::move(r));
    }
  }

  /// Shared tail: DISTINCT, ORDER BY, OFFSET/LIMIT.
  void finish(std::vector<SortableRow>& rows, ResultSet& rs) {
    if (p_.distinct) {
      // First occurrence of each distinct projected row wins.
      std::vector<SortableRow> unique;
      unique.reserve(rows.size());
      for (auto& row : rows) {
        bool seen = false;
        for (const auto& kept : unique) {
          bool equal = kept.out.size() == row.out.size();
          for (std::size_t i = 0; equal && i < kept.out.size(); ++i) {
            equal = kept.out[i].compare(row.out[i]) == 0;
          }
          if (equal) {
            seen = true;
            break;
          }
        }
        if (!seen) unique.push_back(std::move(row));
      }
      rows = std::move(unique);
    }

    if (!p_.orderBy.empty()) {
      stats_.rowsSorted += rows.size();
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const SortableRow& a, const SortableRow& b) {
                         for (std::size_t i = 0; i < p_.orderBy.size(); ++i) {
                           const int c = a.keys[i].compare(b.keys[i]);
                           if (c != 0) return p_.orderBy[i].descending ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }

    const std::size_t begin =
        std::min<std::size_t>(rows.size(), static_cast<std::size_t>(p_.offset));
    std::size_t end = rows.size();
    if (p_.limit) end = std::min(end, begin + static_cast<std::size_t>(*p_.limit));
    for (std::size_t i = begin; i < end; ++i) rs.rows.push_back(std::move(rows[i].out));
  }

  /// O(1) MAX/MIN/COUNT(*) from index metadata. Whether the table is empty
  /// is checked here, at execution — the plan must stay data-independent.
  ResultSet runAggFast() {
    const Table& table = *tables_[0];
    const AccessPath& a = p_.access;
    ResultSet rs;
    rs.columns.push_back(a.aggOutputName);
    Row row;
    switch (a.aggFast) {
      case AccessPath::AggFastKind::CountStar:
        row.push_back(Value(static_cast<std::int64_t>(table.size())));
        stats_.rowsExamined += 1;
        break;
      case AccessPath::AggFastKind::MaxAutoPk: {
        // The auto-increment counter bounds every live pk from above (explicit
        // inserts bump it past themselves), but the row holding the newest id
        // may have been deleted — probe downward until a live row answers.
        Value found;
        for (std::int64_t id = table.maxAssignedId(); id >= 1; --id) {
          stats_.rowsExamined += 1;
          if (table.findByPk(Value(id))) {
            found = Value(id);
            break;
          }
        }
        row.push_back(std::move(found));
        break;
      }
      case AccessPath::AggFastKind::IndexMin: {
        // NULLs sort first in the index and MIN ignores them.
        const auto* idx = table.orderedIndex(a.aggColumn);
        const auto it = idx->upper_bound(Value());
        row.push_back(it == idx->end() ? Value() : it->first);
        stats_.rowsExamined += 1;
        break;
      }
      case AccessPath::AggFastKind::IndexMax: {
        // The largest key is NULL only when every value is NULL — and then
        // MAX is NULL anyway.
        const auto v = table.indexMax(a.aggColumn);
        row.push_back(v && !v->isNull() ? *v : Value());
        stats_.rowsExamined += 1;
        break;
      }
      case AccessPath::AggFastKind::None:
        throw std::runtime_error("malformed aggregate fast path");
    }
    rs.rows.push_back(std::move(row));
    if (p_.offset > 0 || (p_.limit && *p_.limit == 0)) rs.rows.clear();
    stats_.usedIndex = true;
    stats_.rowsReturned += rs.rows.size();
    stats_.resultBytes += rs.byteSize();
    return rs;
  }

  const SelectPlan& p_;
  std::span<const Value> params_;
  ExecStats& stats_;
  std::vector<const Table*> tables_;
};

// ---------------------------------------------------------------------------
// Writes.

/// Candidate rows for UPDATE/DELETE: access path plus residual re-check.
std::vector<RowId> writeMatches(const Table& table, const AccessPath& access,
                                const std::vector<CompiledExprPtr>& residual,
                                std::span<const Value> params, ExecStats& stats) {
  std::vector<RowId> out;
  scanAccess(access, table, params, stats, [&](RowId id) {
    const SingleRow src{&table.row(id)};
    for (const auto& c : residual) {
      if (!valueIsTrue(evalExpr(*c, params, src))) return true;
    }
    out.push_back(id);
    return true;
  });
  return out;
}

/// Applies a write LIMIT/OFFSET to the matched rows. Matches arrive in RowId
/// order (LIMIT/OFFSET plans force FullScan access), which defines the slice.
std::vector<RowId> sliceWriteMatches(std::vector<RowId> matches,
                                     const std::optional<std::int64_t>& limit,
                                     std::int64_t offset) {
  if (!limit && offset <= 0) return matches;
  const std::size_t begin =
      std::min(matches.size(), static_cast<std::size_t>(std::max<std::int64_t>(offset, 0)));
  std::size_t end = matches.size();
  if (limit) {
    const auto want = static_cast<std::size_t>(std::max<std::int64_t>(*limit, 0));
    end = std::min(end, begin + want);
  }
  return {matches.begin() + static_cast<std::ptrdiff_t>(begin),
          matches.begin() + static_cast<std::ptrdiff_t>(end)};
}

ExecResult executeInsert(Database& db, const InsertPlan& p, std::span<const Value> params) {
  ExecResult result;
  Table& table = db.table(p.tableName);
  Row row(p.columnCount);  // default NULLs
  for (std::size_t i = 0; i < p.values.size(); ++i) {
    row[p.targets[i].column] =
        coerce(evalExpr(*p.values[i], params, NoRow{}), p.targets[i].type);
  }
  result.lastInsertId = table.insert(std::move(row));
  result.affectedRows = 1;
  result.stats.rowsModified = 1;
  return result;
}

ExecResult executeUpdate(Database& db, const UpdatePlan& p, std::span<const Value> params) {
  ExecResult result;
  Table& table = db.table(p.tableName);
  const auto matches = sliceWriteMatches(
      writeMatches(table, p.access, p.residual, params, result.stats), p.limit, p.offset);
  for (RowId id : matches) {
    // Evaluate every assignment against the pre-update row, then apply.
    const SingleRow src{&table.row(id)};
    std::vector<Value> newValues;
    newValues.reserve(p.sets.size());
    for (const auto& t : p.sets) {
      newValues.push_back(coerce(evalExpr(*t.value, params, src), t.type));
    }
    for (std::size_t i = 0; i < p.sets.size(); ++i) {
      table.updateCell(id, p.sets[i].column, std::move(newValues[i]));
    }
  }
  result.affectedRows = matches.size();
  result.stats.rowsModified = matches.size();
  return result;
}

ExecResult executeDelete(Database& db, const DeletePlan& p, std::span<const Value> params) {
  ExecResult result;
  Table& table = db.table(p.tableName);
  const auto matches = sliceWriteMatches(
      writeMatches(table, p.access, p.residual, params, result.stats), p.limit, p.offset);
  for (RowId id : matches) table.erase(id);
  result.affectedRows = matches.size();
  result.stats.rowsModified = matches.size();
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Executor entry points.

ExecResult Executor::executePlan(const Plan& plan, std::span<const Value> params) {
  if (params.size() < plan.paramCount) {
    throw std::runtime_error("statement needs " + std::to_string(plan.paramCount) +
                             " parameters, got " + std::to_string(params.size()) + ": " +
                             plan.text);
  }
  switch (plan.kind) {
    case Statement::Kind::Select: {
      ExecResult result;
      result.resultSet = SelectExec(db_, plan.select, params, result.stats).run();
      return result;
    }
    case Statement::Kind::Insert:
      return executeInsert(db_, plan.insert, params);
    case Statement::Kind::Update:
      return executeUpdate(db_, plan.update, params);
    case Statement::Kind::Delete:
      return executeDelete(db_, plan.del, params);
    case Statement::Kind::LockTables:
    case Statement::Kind::UnlockTables:
      // Lock statements are handled by the DatabaseServer; executing them
      // against the bare engine is a no-op.
      return {};
  }
  throw std::runtime_error("unhandled statement kind");
}

ExecResult Executor::execute(const Statement& stmt, std::span<const Value> params) {
  if (params.size() < stmt.paramCount) {
    throw std::runtime_error("statement needs " + std::to_string(stmt.paramCount) +
                             " parameters, got " + std::to_string(params.size()) + ": " +
                             stmt.text);
  }
  return executePlan(*buildPlan(stmt, db_), params);
}

ExecResult Executor::execute(const PlannedStatement& stmt, std::span<const Value> params) {
  return executePlan(*stmt.planFor(db_), params);
}

ExecResult Executor::query(std::string_view sql, std::span<const Value> params) {
  return execute(*parseSql(sql), params);
}

}  // namespace mwsim::db
