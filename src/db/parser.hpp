#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "db/ast.hpp"

namespace mwsim::db {

/// Parses one SQL statement. Throws std::runtime_error with a message that
/// includes the offending SQL on syntax errors.
std::shared_ptr<const Statement> parseSql(std::string_view sql);

}  // namespace mwsim::db
