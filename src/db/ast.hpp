#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"

namespace mwsim::db {

/// Abstract syntax for the SQL subset the engine executes.
///
/// Supported statements: SELECT (single table or one-level equi-joins,
/// WHERE with AND/OR, GROUP BY, aggregates, ORDER BY, LIMIT/OFFSET),
/// INSERT, UPDATE, DELETE, LOCK TABLES, UNLOCK TABLES.

enum class BinOp {
  Eq, Ne, Lt, Le, Gt, Ge,  // comparisons
  And, Or,
  Add, Sub, Mul, Div,
  Like,
};

enum class AggFunc { None, Count, Sum, Min, Max, Avg };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { Literal, Column, Param, Binary, Aggregate, Star, In, IsNull, Not };

  Kind kind = Kind::Literal;
  /// IsNull: true for IS NOT NULL.
  bool negated = false;

  // Literal
  Value literal;

  // Column: optional table qualifier + column name
  std::string tableQualifier;
  std::string column;

  // Param: 1-based ? placeholder index
  std::size_t paramIndex = 0;

  // Binary
  BinOp op = BinOp::Eq;
  ExprPtr lhs;
  ExprPtr rhs;

  // Aggregate: func(arg) — arg may be Star for COUNT(*)
  AggFunc agg = AggFunc::None;
  ExprPtr aggArg;

  // In: lhs IN (list...)
  std::vector<ExprPtr> list;

  static ExprPtr makeLiteral(Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Literal;
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr makeColumn(std::string qualifier, std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Column;
    e->tableQualifier = std::move(qualifier);
    e->column = std::move(name);
    return e;
  }
  static ExprPtr makeParam(std::size_t index) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Param;
    e->paramIndex = index;
    return e;
  }
  static ExprPtr makeBinary(BinOp op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Binary;
    e->op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
  }
  static ExprPtr makeAggregate(AggFunc f, ExprPtr arg) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Aggregate;
    e->agg = f;
    e->aggArg = std::move(arg);
    return e;
  }
  static ExprPtr makeStar() {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Star;
    return e;
  }
  static ExprPtr makeIn(ExprPtr needle, std::vector<ExprPtr> haystack) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::In;
    e->lhs = std::move(needle);
    e->list = std::move(haystack);
    return e;
  }
  static ExprPtr makeIsNull(ExprPtr inner, bool negated) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::IsNull;
    e->lhs = std::move(inner);
    e->negated = negated;
    return e;
  }
  static ExprPtr makeNot(ExprPtr inner) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Not;
    e->lhs = std::move(inner);
    return e;
  }
};

struct SelectItem {
  ExprPtr expr;  // Star for `*`
  std::string alias;
};

struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name
};

struct JoinClause {
  TableRef table;
  /// Full ON condition (null for comma joins, whose condition lives in
  /// WHERE). Any boolean expression: the planner digs equi-conjuncts out of
  /// it for the join key and keeps the rest as residual filters.
  ExprPtr on;
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> groupBy;
  ExprPtr having;  // may be null
  std::vector<OrderItem> orderBy;
  std::optional<std::int64_t> limit;
  std::int64_t offset = 0;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty => full-row order
  std::vector<ExprPtr> values;
};

struct Assignment {
  std::string column;
  ExprPtr value;
};

struct UpdateStmt {
  std::string table;
  std::vector<Assignment> sets;
  ExprPtr where;  // may be null
  /// LIMIT/OFFSET slice the matched rows in RowId (storage) order.
  std::optional<std::int64_t> limit;
  std::int64_t offset = 0;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
  std::optional<std::int64_t> limit;
  std::int64_t offset = 0;
};

struct LockTablesStmt {
  struct Item {
    std::string table;
    bool write = false;
  };
  std::vector<Item> items;
};

struct UnlockTablesStmt {};

struct Statement {
  enum class Kind { Select, Insert, Update, Delete, LockTables, UnlockTables };
  Kind kind = Kind::Select;
  SelectStmt select;
  InsertStmt insert;
  UpdateStmt update;
  DeleteStmt del;
  LockTablesStmt lockTables;
  /// Number of ? placeholders in the statement.
  std::size_t paramCount = 0;
  /// Original SQL text (for diagnostics).
  std::string text;
};

}  // namespace mwsim::db
