#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/schema.hpp"
#include "db/value.hpp"

namespace mwsim::db {

using Row = std::vector<Value>;
using RowId = std::uint32_t;

/// Heap-organized table with a unique hash index on the primary key and
/// ordered secondary indexes (std::multimap) for range scans.
///
/// Rows are stored in a stable vector; deletes tombstone the slot. RowIds
/// are stable for the lifetime of the row.
class Table {
 public:
  explicit Table(TableSchema schema);
  Table& operator=(const Table&) = delete;

  /// Exact deep copy — rows, tombstones, indexes, and auto-increment state —
  /// so a cloned table behaves identically to one repopulated from the same
  /// seed. Used by the dataset cache to stamp out per-run databases.
  std::unique_ptr<Table> clone() const {
    return std::unique_ptr<Table>(new Table(*this));
  }

  const TableSchema& schema() const noexcept { return schema_; }
  const std::string& name() const noexcept { return schema_.name; }

  /// Number of live rows.
  std::size_t size() const noexcept { return liveRows_; }

  /// Inserts a row. If the table has an auto-increment key and the key slot
  /// is NULL, a fresh id is assigned. Returns the id of the inserted row's
  /// primary key (or 0 when the table has none).
  std::int64_t insert(Row row);

  /// Looks up by primary key. Returns nullopt if absent.
  std::optional<RowId> findByPk(const Value& key) const;

  /// Row ids whose indexed column equals `key` (secondary index required).
  std::vector<RowId> findByIndex(std::size_t column, const Value& key) const;

  /// Row ids whose indexed column is within [lo, hi] (either bound may be
  /// omitted). Results come back in index order.
  std::vector<RowId> findRangeByIndex(std::size_t column,
                                      const std::optional<Value>& lo, bool loInclusive,
                                      const std::optional<Value>& hi, bool hiInclusive) const;

  bool hasIndexOn(std::size_t column) const;
  bool isPrimaryKeyColumn(std::size_t column) const {
    return schema_.primaryKey && *schema_.primaryKey == column;
  }

  const Row& row(RowId id) const { return rows_[id]; }
  bool isLive(RowId id) const { return id < rows_.size() && !tombstone_[id]; }

  /// Updates one column of one row, maintaining indexes.
  void updateCell(RowId id, std::size_t column, Value v);

  /// Tombstones a row and removes it from all indexes.
  void erase(RowId id);

  /// Visits every live row id in storage order.
  template <typename Fn>
  void forEachRow(Fn&& fn) const {
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (!tombstone_[id]) fn(id);
    }
  }

  /// Like forEachRow, but stops as soon as `fn` returns false — so a scan
  /// feeding LIMIT can quit without touching (or charging for) the rest of
  /// the table.
  template <typename Fn>
  void forEachRowWhile(Fn&& fn) const {
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (!tombstone_[id] && !fn(id)) return;
    }
  }

  std::int64_t lastInsertId() const noexcept { return lastInsertId_; }

  /// Approximate bytes held by live rows (for the resource-usage benches).
  std::size_t approxBytes() const noexcept { return approxBytes_; }

  /// Average live-row width in bytes (for scan costing).
  std::size_t avgRowBytes() const noexcept {
    return liveRows_ ? approxBytes_ / liveRows_ : 0;
  }

  /// Largest auto-increment key handed out so far (0 if none). Used for the
  /// O(1) MAX(pk) fast path, mirroring MySQL's index-based MIN/MAX.
  std::int64_t maxAssignedId() const noexcept { return nextAutoId_ - 1; }

  /// Smallest/largest value in a secondary index (nullopt when empty or no
  /// index exists on the column).
  std::optional<Value> indexMin(std::size_t column) const {
    auto it = secondary_.find(column);
    if (it == secondary_.end() || it->second.empty()) return std::nullopt;
    return it->second.begin()->first;
  }
  std::optional<Value> indexMax(std::size_t column) const {
    auto it = secondary_.find(column);
    if (it == secondary_.end() || it->second.empty()) return std::nullopt;
    return it->second.rbegin()->first;
  }

  /// Direct read access to a secondary index's ordered entries, for
  /// ordered-index scans (ORDER BY without a sort). Null when the column
  /// carries no index.
  const std::multimap<Value, RowId>* orderedIndex(std::size_t column) const {
    auto it = secondary_.find(column);
    return it == secondary_.end() ? nullptr : &it->second;
  }

 private:
  Table(const Table&) = default;  // via clone() only

  void indexInsert(RowId id);
  void indexErase(RowId id);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> tombstone_;
  std::size_t liveRows_ = 0;
  std::size_t approxBytes_ = 0;

  std::unordered_map<Value, RowId, ValueHash> pkIndex_;
  // column index -> ordered multimap value -> row id
  std::map<std::size_t, std::multimap<Value, RowId>> secondary_;
  std::int64_t nextAutoId_ = 1;
  std::int64_t lastInsertId_ = 0;
};

}  // namespace mwsim::db
