#include "db/plan.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace mwsim::db {

namespace {

struct BoundTable {
  std::string alias;
  const Table* table;
};

/// Largest table index referenced anywhere in a compiled expression, or
/// nullopt when the expression is row-free.
std::optional<std::size_t> maxTableIdx(const CompiledExpr& e) {
  std::optional<std::size_t> out;
  auto take = [&](const std::optional<std::size_t>& v) {
    if (v && (!out || *v > *out)) out = v;
  };
  switch (e.kind) {
    case Expr::Kind::Column:
      return e.col.tableIdx;
    case Expr::Kind::Binary:
      take(maxTableIdx(*e.lhs));
      take(maxTableIdx(*e.rhs));
      break;
    case Expr::Kind::Not:
    case Expr::Kind::IsNull:
      take(maxTableIdx(*e.lhs));
      break;
    case Expr::Kind::In:
      take(maxTableIdx(*e.lhs));
      for (const auto& item : e.list) take(maxTableIdx(*item));
      break;
    case Expr::Kind::Aggregate:
      if (e.aggArg) take(maxTableIdx(*e.aggArg));
      break;
    default:
      break;
  }
  return out;
}

/// True when every column reference in `e` resolves to table `tableIdx`.
/// Aggregates never qualify (mirrors the pre-plan pushdown rule).
bool referencesOnlyTable(const CompiledExpr& e, std::size_t tableIdx) {
  switch (e.kind) {
    case Expr::Kind::Column:
      return e.col.tableIdx == tableIdx;
    case Expr::Kind::Binary:
      return referencesOnlyTable(*e.lhs, tableIdx) && referencesOnlyTable(*e.rhs, tableIdx);
    case Expr::Kind::Not:
    case Expr::Kind::IsNull:
      return referencesOnlyTable(*e.lhs, tableIdx);
    case Expr::Kind::In: {
      if (!referencesOnlyTable(*e.lhs, tableIdx)) return false;
      for (const auto& item : e.list) {
        if (!referencesOnlyTable(*item, tableIdx)) return false;
      }
      return true;
    }
    case Expr::Kind::Aggregate:
      return false;
    default:
      return true;
  }
}

class Planner {
 public:
  explicit Planner(const Database& db) : db_(db) {}

  std::shared_ptr<Plan> build(const Statement& stmt) {
    auto plan = std::make_shared<Plan>();
    plan->kind = stmt.kind;
    plan->paramCount = stmt.paramCount;
    plan->text = stmt.text;
    switch (stmt.kind) {
      case Statement::Kind::Select:
        planSelect(stmt.select, plan->select);
        break;
      case Statement::Kind::Insert:
        planInsert(stmt.insert, plan->insert);
        break;
      case Statement::Kind::Update:
        planUpdate(stmt.update, plan->update);
        break;
      case Statement::Kind::Delete:
        planDelete(stmt.del, plan->del);
        break;
      case Statement::Kind::LockTables:
      case Statement::Kind::UnlockTables:
        break;  // handled by the server; nothing to plan
    }
    return plan;
  }

 private:
  // ----- name resolution -----
  PlanColumnRef resolve(const std::string& qualifier, const std::string& column) const {
    if (ignoreQualifiers_) {
      // UPDATE/DELETE/SET resolution is by column name only, against the
      // single target table.
      auto c = tables_[0].table->schema().columnIndex(column);
      if (!c) throw std::runtime_error("unknown column: " + column);
      return {0, *c};
    }
    if (!qualifier.empty()) {
      for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (tables_[i].alias == qualifier) {
          auto c = tables_[i].table->schema().columnIndex(column);
          if (!c) {
            throw std::runtime_error("no column " + column + " in " + qualifier);
          }
          return {i, *c};
        }
      }
      throw std::runtime_error("unknown table alias: " + qualifier);
    }
    std::optional<PlanColumnRef> found;
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (auto c = tables_[i].table->schema().columnIndex(column)) {
        if (found) throw std::runtime_error("ambiguous column: " + column);
        found = PlanColumnRef{i, *c};
      }
    }
    if (!found) throw std::runtime_error("unknown column: " + column);
    return *found;
  }

  // ----- compilation -----
  CompiledExprPtr compile(const Expr& e) const {
    auto out = std::make_unique<CompiledExpr>();
    out->kind = e.kind;
    switch (e.kind) {
      case Expr::Kind::Literal:
        out->literal = e.literal;
        out->rowFree = true;
        break;
      case Expr::Kind::Param:
        out->paramIndex = e.paramIndex;
        out->rowFree = true;
        break;
      case Expr::Kind::Column:
        if (valuesOnly_) {
          throw std::runtime_error("column reference in value-only expression");
        }
        out->col = resolve(e.tableQualifier, e.column);
        break;
      case Expr::Kind::Binary:
        out->op = e.op;
        out->lhs = compile(*e.lhs);
        out->rhs = compile(*e.rhs);
        out->rowFree = out->lhs->rowFree && out->rhs->rowFree;
        out->hasAggregate = out->lhs->hasAggregate || out->rhs->hasAggregate;
        break;
      case Expr::Kind::Aggregate:
        out->agg = e.agg;
        out->hasAggregate = true;
        // COUNT(*) compiles with a null argument; any other aggregate keeps
        // its argument expression.
        if (e.aggArg && e.aggArg->kind != Expr::Kind::Star) out->aggArg = compile(*e.aggArg);
        break;
      case Expr::Kind::In: {
        out->lhs = compile(*e.lhs);
        out->rowFree = out->lhs->rowFree;
        out->hasAggregate = out->lhs->hasAggregate;
        for (const auto& item : e.list) {
          auto c = compile(*item);
          out->rowFree = out->rowFree && c->rowFree;
          out->hasAggregate = out->hasAggregate || c->hasAggregate;
          out->list.push_back(std::move(c));
        }
        break;
      }
      case Expr::Kind::IsNull:
        out->negated = e.negated;
        out->lhs = compile(*e.lhs);
        out->rowFree = out->lhs->rowFree;
        out->hasAggregate = out->lhs->hasAggregate;
        break;
      case Expr::Kind::Not:
        out->lhs = compile(*e.lhs);
        out->rowFree = out->lhs->rowFree;
        out->hasAggregate = out->lhs->hasAggregate;
        break;
      case Expr::Kind::Star:
        throw std::runtime_error("* in scalar context");
    }
    return out;
  }

  // ----- WHERE decomposition -----
  static void splitConjuncts(const Expr* e, std::vector<const Expr*>& out) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::Binary && e->op == BinOp::And) {
      splitConjuncts(e->lhs.get(), out);
      splitConjuncts(e->rhs.get(), out);
    } else {
      out.push_back(e);
    }
  }

  struct Conjunct {
    CompiledExprPtr compiled;
    bool consumed = false;
  };

  /// Selects the base-table access path, consuming the conjuncts it makes
  /// redundant. Precedence mirrors the pre-plan executor exactly: first
  /// equality on pk/index (in conjunct order), then IN, then the range over
  /// the lowest-numbered indexed column, else full scan. Consumption is
  /// sound because every consumed conjunct is exactly re-expressed by the
  /// access path (equality/range via Value::compare, NULL keys yield empty
  /// results just as `col <op> NULL` is never true).
  AccessPath chooseAccess(std::vector<Conjunct>& conjuncts, bool reverseOrder) const {
    const Table& table = *tables_[0].table;
    AccessPath path;

    std::vector<std::size_t> order(conjuncts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    // The pre-plan UPDATE/DELETE matcher traversed the AND tree with an
    // explicit stack, visiting conjuncts in reverse; keep its index choice.
    if (reverseOrder) std::reverse(order.begin(), order.end());

    // Equality on the primary key or an indexed column.
    for (std::size_t ci : order) {
      CompiledExpr& c = *conjuncts[ci].compiled;
      if (c.kind != Expr::Kind::Binary || c.op != BinOp::Eq) continue;
      for (auto [colSide, valSide] : {std::pair{c.lhs.get(), c.rhs.get()},
                                      std::pair{c.rhs.get(), c.lhs.get()}}) {
        if (!valSide->rowFree) continue;
        if (colSide->kind != Expr::Kind::Column || colSide->col.tableIdx != 0) continue;
        const std::size_t col = colSide->col.columnIdx;
        const bool viaPk = table.isPrimaryKeyColumn(col);
        if (!viaPk && !table.hasIndexOn(col)) continue;
        path.kind = viaPk ? AccessPath::Kind::PkEq : AccessPath::Kind::IndexEq;
        path.column = col;
        path.eqKey = std::move(colSide == c.lhs.get() ? c.rhs : c.lhs);
        conjuncts[ci].consumed = true;
        return path;
      }
    }

    // IN over the primary key or an indexed column: multi-point lookup.
    for (std::size_t ci : order) {
      CompiledExpr& c = *conjuncts[ci].compiled;
      if (c.kind != Expr::Kind::In) continue;
      if (c.lhs->kind != Expr::Kind::Column || c.lhs->col.tableIdx != 0) continue;
      bool allFree = true;
      for (const auto& item : c.list) {
        if (!item->rowFree) {
          allFree = false;
          break;
        }
      }
      if (!allFree) continue;
      const std::size_t col = c.lhs->col.columnIdx;
      const bool viaPk = table.isPrimaryKeyColumn(col);
      if (!viaPk && !table.hasIndexOn(col)) continue;
      path.kind = AccessPath::Kind::InList;
      path.column = col;
      path.viaPk = viaPk;
      path.inKeys = std::move(c.list);
      conjuncts[ci].consumed = true;
      return path;
    }

    // Range over an indexed column. Collect every row-free bound per
    // indexed column, pick the lowest-numbered column (as before), and
    // consume all of that column's bound conjuncts.
    struct RangeBound {
      std::size_t conjunct;
      bool upper;
      bool inclusive;
      CompiledExpr* valSide;  // which child of the conjunct holds the value
    };
    std::map<std::size_t, std::vector<RangeBound>> byColumn;
    for (std::size_t ci : order) {
      CompiledExpr& c = *conjuncts[ci].compiled;
      if (c.kind != Expr::Kind::Binary) continue;
      const BinOp op = c.op;
      if (op != BinOp::Lt && op != BinOp::Le && op != BinOp::Gt && op != BinOp::Ge) continue;
      for (bool flipped : {false, true}) {
        CompiledExpr* colSide = flipped ? c.rhs.get() : c.lhs.get();
        CompiledExpr* valSide = flipped ? c.lhs.get() : c.rhs.get();
        if (!valSide->rowFree) continue;
        if (colSide->kind != Expr::Kind::Column || colSide->col.tableIdx != 0) continue;
        const std::size_t col = colSide->col.columnIdx;
        if (!table.hasIndexOn(col)) continue;
        // Normalize to `col <op> value`.
        BinOp effective = op;
        if (flipped) {
          switch (op) {
            case BinOp::Lt: effective = BinOp::Gt; break;
            case BinOp::Le: effective = BinOp::Ge; break;
            case BinOp::Gt: effective = BinOp::Lt; break;
            case BinOp::Ge: effective = BinOp::Le; break;
            default: break;
          }
        }
        const bool upper = effective == BinOp::Lt || effective == BinOp::Le;
        const bool inclusive = effective == BinOp::Le || effective == BinOp::Ge;
        byColumn[col].push_back({ci, upper, inclusive, valSide});
        break;
      }
    }
    if (!byColumn.empty()) {
      auto& [col, bounds] = *byColumn.begin();
      path.kind = AccessPath::Kind::IndexRange;
      path.column = col;
      for (RangeBound& b : bounds) {
        Conjunct& c = conjuncts[b.conjunct];
        AccessPath::Bound bound;
        bound.inclusive = b.inclusive;
        bound.expr = std::move(b.valSide == c.compiled->lhs.get() ? c.compiled->lhs
                                                                  : c.compiled->rhs);
        (b.upper ? path.upper : path.lower).push_back(std::move(bound));
        c.consumed = true;
      }
      return path;
    }

    path.kind = AccessPath::Kind::FullScan;
    return path;
  }

  // ----- SELECT -----
  void planSelect(const SelectStmt& s, SelectPlan& plan) {
    if (planAggFast(s, plan)) return;

    tables_.clear();
    tables_.push_back({s.from.alias, &db_.table(s.from.table)});
    plan.tableNames.push_back(s.from.table);
    for (const auto& j : s.joins) {
      tables_.push_back({j.table.alias, &db_.table(j.table.table)});
      plan.tableNames.push_back(j.table.table);
    }

    // Output items (star expands to every column of every table).
    for (const SelectItem& item : s.items) {
      if (item.expr->kind == Expr::Kind::Star) {
        for (std::size_t t = 0; t < tables_.size(); ++t) {
          const auto& cols = tables_[t].table->schema().columns;
          for (std::size_t c = 0; c < cols.size(); ++c) {
            plan.items.push_back({cols[c].name, PlanColumnRef{t, c}, nullptr});
          }
        }
        continue;
      }
      SelectPlan::OutItem out;
      out.name = item.alias;
      if (out.name.empty()) {
        out.name = item.expr->kind == Expr::Kind::Column ? item.expr->column : "expr";
      }
      auto compiled = compile(*item.expr);
      if (compiled->kind == Expr::Kind::Column) {
        out.direct = compiled->col;
      } else {
        out.expr = std::move(compiled);
      }
      plan.items.push_back(std::move(out));
    }

    plan.grouped =
        !s.groupBy.empty() ||
        std::any_of(plan.items.begin(), plan.items.end(),
                    [](const auto& i) { return i.expr && i.expr->hasAggregate; });
    for (const auto& g : s.groupBy) plan.groupKeys.push_back(compile(*g));
    if (s.having) plan.having = compile(*s.having);

    // WHERE conjuncts.
    std::vector<const Expr*> astConjuncts;
    splitConjuncts(s.where.get(), astConjuncts);
    std::vector<Conjunct> conjuncts;
    conjuncts.reserve(astConjuncts.size());
    for (const Expr* c : astConjuncts) conjuncts.push_back({compile(*c), false});

    plan.access = chooseAccess(conjuncts, /*reverseOrder=*/false);

    // Join steps: split the ON expression into conjuncts and dig out the
    // first equality that keys the new table off earlier ones; the other ON
    // conjuncts become post-join filters (sound for inner joins, where ON and
    // WHERE are interchangeable). Fall back to a WHERE equi-conjunct linking
    // the new table to an earlier one.
    for (std::size_t j = 0; j < s.joins.size(); ++j) {
      const std::size_t newIdx = j + 1;
      SelectPlan::JoinStep step;
      CompiledExprPtr innerSide, outerSide;
      std::vector<const Expr*> onConjuncts;
      splitConjuncts(s.joins[j].on.get(), onConjuncts);
      for (const Expr* astConjunct : onConjuncts) {
        auto c = compile(*astConjunct);
        bool taken = false;
        if (!innerSide && c->kind == Expr::Kind::Binary && c->op == BinOp::Eq) {
          auto lMax = maxTableIdx(*c->lhs);
          auto rMax = maxTableIdx(*c->rhs);
          // One side must be a plain column of the new table; the other may
          // be any expression over already-bound tables (or row-free).
          if (c->lhs->kind == Expr::Kind::Column && c->lhs->col.tableIdx == newIdx &&
              (!rMax || *rMax < newIdx)) {
            innerSide = std::move(c->lhs);
            outerSide = std::move(c->rhs);
            taken = true;
          } else if (c->rhs->kind == Expr::Kind::Column &&
                     c->rhs->col.tableIdx == newIdx && (!lMax || *lMax < newIdx)) {
            innerSide = std::move(c->rhs);
            outerSide = std::move(c->lhs);
            taken = true;
          }
        }
        // Degenerate or non-equi conjuncts (both sides on one table, a table
        // not yet joined, <, LIKE, ...) run as post-join filters.
        if (!taken) plan.residual.push_back(std::move(c));
      }
      if (!innerSide) {
        for (Conjunct& c : conjuncts) {
          if (c.consumed) continue;
          CompiledExpr& e = *c.compiled;
          if (e.kind != Expr::Kind::Binary || e.op != BinOp::Eq) continue;
          if (e.lhs->kind != Expr::Kind::Column || e.rhs->kind != Expr::Kind::Column) {
            continue;
          }
          for (auto [a, b] : {std::pair{e.lhs.get(), e.rhs.get()},
                              std::pair{e.rhs.get(), e.lhs.get()}}) {
            if (a->col.tableIdx != newIdx) continue;
            if (b->col.tableIdx >= newIdx) continue;
            innerSide = std::move(a == e.lhs.get() ? e.lhs : e.rhs);
            outerSide = std::move(b == e.lhs.get() ? e.lhs : e.rhs);
            c.consumed = true;
            break;
          }
          if (innerSide) break;
        }
      }
      if (innerSide) {
        const Table& inner = *tables_[newIdx].table;
        step.innerColumn = innerSide->col.columnIdx;
        step.outerKey = std::move(outerSide);
        if (inner.isPrimaryKeyColumn(step.innerColumn)) {
          step.kind = SelectPlan::JoinStep::Kind::PkLookup;
        } else if (inner.hasIndexOn(step.innerColumn)) {
          step.kind = SelectPlan::JoinStep::Kind::IndexLookup;
        } else {
          step.kind = SelectPlan::JoinStep::Kind::ScanEq;
        }
      } else {
        step.kind = SelectPlan::JoinStep::Kind::Cross;
      }
      plan.joins.push_back(std::move(step));
    }

    // Remaining conjuncts: base-only ones run before the joins.
    for (Conjunct& c : conjuncts) {
      if (c.consumed) continue;
      if (referencesOnlyTable(*c.compiled, 0)) {
        plan.baseFilter.push_back(std::move(c.compiled));
      } else {
        plan.residual.push_back(std::move(c.compiled));
      }
    }

    // ORDER BY: a bare column naming an output item sorts by the finished
    // output value (SQL alias semantics); anything else is a row expression.
    for (const OrderItem& o : s.orderBy) {
      SelectPlan::OrderKey key;
      key.descending = o.descending;
      bool matched = false;
      if (o.expr->kind == Expr::Kind::Column && o.expr->tableQualifier.empty()) {
        for (std::size_t i = 0; i < plan.items.size(); ++i) {
          if (plan.items[i].name == o.expr->column) {
            key.outputIndex = i;
            matched = true;
            break;
          }
        }
      }
      if (!matched) key.expr = compile(*o.expr);
      plan.orderBy.push_back(std::move(key));
    }

    plan.distinct = s.distinct;
    plan.limit = s.limit;
    plan.offset = s.offset;

    maybeElideSort(plan);
  }

  /// Upgrades a FullScan (or an IndexRange on the ORDER BY column) to an
  /// ordered-index scan when the single ORDER BY key has a secondary index,
  /// eliding the sort. Execution reproduces the sorted output order exactly,
  /// including stable-sort tie order (see executor.cpp).
  void maybeElideSort(SelectPlan& plan) const {
    if (!plan.joins.empty() || plan.grouped || plan.distinct) return;
    if (plan.orderBy.size() != 1) return;
    const SelectPlan::OrderKey& key = plan.orderBy[0];
    std::optional<std::size_t> col;
    if (key.outputIndex) {
      const auto& item = plan.items[*key.outputIndex];
      if (item.direct && item.direct->tableIdx == 0) col = item.direct->columnIdx;
    } else if (key.expr->kind == Expr::Kind::Column && key.expr->col.tableIdx == 0) {
      col = key.expr->col.columnIdx;
    }
    if (!col || !tables_[0].table->hasIndexOn(*col)) return;
    if (plan.access.kind == AccessPath::Kind::FullScan) {
      plan.access.kind = AccessPath::Kind::OrderedIndexScan;
      plan.access.column = *col;
      plan.access.blockRowIdOrder = true;  // full-scan candidate order is RowId order
    } else if (plan.access.kind == AccessPath::Kind::IndexRange &&
               plan.access.column == *col) {
      plan.access.kind = AccessPath::Kind::OrderedIndexScan;
      plan.access.blockRowIdOrder = false;  // range candidates come in index order
    } else {
      return;
    }
    plan.access.descending = key.descending;
    plan.sortElided = true;
  }

  /// `SELECT MAX(col)/MIN(col)/COUNT(*) FROM t` with no WHERE/JOIN/GROUP:
  /// answered from index metadata in O(1), as MySQL does. Only chosen when
  /// the schema guarantees the shortcut (the pre-plan executor also peeked
  /// at table emptiness, which a data-independent plan must not).
  bool planAggFast(const SelectStmt& s, SelectPlan& plan) {
    if (!s.joins.empty() || s.where || !s.groupBy.empty() || s.items.size() != 1) {
      return false;
    }
    const Expr& e = *s.items[0].expr;
    if (e.kind != Expr::Kind::Aggregate) return false;
    const Table& table = db_.table(s.from.table);
    AccessPath::AggFastKind kind = AccessPath::AggFastKind::None;
    std::size_t col = 0;
    if (e.agg == AggFunc::Count && e.aggArg->kind == Expr::Kind::Star) {
      kind = AccessPath::AggFastKind::CountStar;
    } else if ((e.agg == AggFunc::Max || e.agg == AggFunc::Min) &&
               e.aggArg->kind == Expr::Kind::Column) {
      auto c = table.schema().columnIndex(e.aggArg->column);
      if (!c) return false;
      col = *c;
      if (e.agg == AggFunc::Max && table.isPrimaryKeyColumn(col) &&
          table.schema().autoIncrement) {
        kind = AccessPath::AggFastKind::MaxAutoPk;
      } else if (table.hasIndexOn(col)) {
        kind = e.agg == AggFunc::Max ? AccessPath::AggFastKind::IndexMax
                                     : AccessPath::AggFastKind::IndexMin;
      } else {
        return false;
      }
    } else {
      return false;
    }
    plan.tableNames.push_back(s.from.table);
    plan.access.kind = AccessPath::Kind::AggFast;
    plan.access.aggFast = kind;
    plan.access.aggColumn = col;
    // Same naming rule as every other unaliased non-column item ("expr") —
    // the pre-plan fast path said "agg", so the column name depended on
    // whether the shortcut fired.
    plan.access.aggOutputName = s.items[0].alias.empty() ? "expr" : s.items[0].alias;
    plan.limit = s.limit;
    plan.offset = s.offset;
    return true;
  }

  // ----- INSERT / UPDATE / DELETE -----
  void planInsert(const InsertStmt& s, InsertPlan& plan) {
    const Table& table = db_.table(s.table);
    const auto& schema = table.schema();
    plan.tableName = s.table;
    plan.columnCount = schema.columns.size();
    valuesOnly_ = true;
    if (s.columns.empty()) {
      if (s.values.size() != schema.columns.size()) {
        valuesOnly_ = false;
        throw std::runtime_error("INSERT value count mismatch for " + s.table);
      }
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        plan.targets.push_back({i, schema.columns[i].type});
        plan.values.push_back(compile(*s.values[i]));
      }
    } else {
      if (s.columns.size() != s.values.size()) {
        valuesOnly_ = false;
        throw std::runtime_error("INSERT column/value count mismatch for " + s.table);
      }
      for (std::size_t i = 0; i < s.columns.size(); ++i) {
        auto c = schema.columnIndex(s.columns[i]);
        if (!c) {
          valuesOnly_ = false;
          throw std::runtime_error("unknown column in INSERT: " + s.columns[i]);
        }
        plan.targets.push_back({*c, schema.columns[*c].type});
        plan.values.push_back(compile(*s.values[i]));
      }
    }
    valuesOnly_ = false;
  }

  /// Shared by UPDATE/DELETE: single-table binding, qualifier-ignoring
  /// resolution, eq-only index access (matching the pre-plan matcher).
  /// `forceScan` (LIMIT/OFFSET present) skips index selection so the matched
  /// rows come in RowId order — the order the slice is defined over.
  AccessPath planWriteAccess(const std::string& tableName, const Expr* where,
                             std::vector<CompiledExprPtr>& residual, bool forceScan) {
    tables_.clear();
    tables_.push_back({tableName, &db_.table(tableName)});
    ignoreQualifiers_ = true;
    std::vector<const Expr*> astConjuncts;
    splitConjuncts(where, astConjuncts);
    std::vector<Conjunct> conjuncts;
    conjuncts.reserve(astConjuncts.size());
    for (const Expr* c : astConjuncts) conjuncts.push_back({compile(*c), false});

    // The write path only ever used point lookups, never IN or ranges; keep
    // that, so write statistics stay comparable.
    const Table& table = *tables_[0].table;
    AccessPath path;
    path.kind = AccessPath::Kind::FullScan;
    if (forceScan) {
      for (Conjunct& c : conjuncts) residual.push_back(std::move(c.compiled));
      ignoreQualifiers_ = false;
      return path;
    }
    for (std::size_t i = conjuncts.size(); i-- > 0;) {  // reverse, as before
      CompiledExpr& c = *conjuncts[i].compiled;
      if (c.kind != Expr::Kind::Binary || c.op != BinOp::Eq) continue;
      bool taken = false;
      for (auto [colSide, valSide] : {std::pair{c.lhs.get(), c.rhs.get()},
                                      std::pair{c.rhs.get(), c.lhs.get()}}) {
        if (colSide->kind != Expr::Kind::Column || !valSide->rowFree) continue;
        const std::size_t col = colSide->col.columnIdx;
        const bool viaPk = table.isPrimaryKeyColumn(col);
        if (!viaPk && !table.hasIndexOn(col)) continue;
        path.kind = viaPk ? AccessPath::Kind::PkEq : AccessPath::Kind::IndexEq;
        path.column = col;
        path.eqKey = std::move(colSide == c.lhs.get() ? c.rhs : c.lhs);
        conjuncts[i].consumed = true;
        taken = true;
        break;
      }
      if (taken) break;
    }
    for (Conjunct& c : conjuncts) {
      if (!c.consumed) residual.push_back(std::move(c.compiled));
    }
    ignoreQualifiers_ = false;
    return path;
  }

  void planUpdate(const UpdateStmt& s, UpdatePlan& plan) {
    plan.tableName = s.table;
    plan.limit = s.limit;
    plan.offset = s.offset;
    plan.access = planWriteAccess(s.table, s.where.get(), plan.residual,
                                  s.limit.has_value() || s.offset > 0);
    const auto& schema = db_.table(s.table).schema();
    ignoreQualifiers_ = true;
    for (const auto& a : s.sets) {
      auto c = schema.columnIndex(a.column);
      if (!c) {
        ignoreQualifiers_ = false;
        throw std::runtime_error("unknown column in UPDATE: " + a.column);
      }
      plan.sets.push_back({*c, schema.columns[*c].type, compile(*a.value)});
    }
    ignoreQualifiers_ = false;
  }

  void planDelete(const DeleteStmt& s, DeletePlan& plan) {
    plan.tableName = s.table;
    plan.limit = s.limit;
    plan.offset = s.offset;
    plan.access = planWriteAccess(s.table, s.where.get(), plan.residual,
                                  s.limit.has_value() || s.offset > 0);
  }

  const Database& db_;
  std::vector<BoundTable> tables_;
  bool ignoreQualifiers_ = false;
  bool valuesOnly_ = false;
};

}  // namespace

std::shared_ptr<const Plan> buildPlan(const Statement& stmt, const Database& db) {
  return Planner(db).build(stmt);
}

}  // namespace mwsim::db
