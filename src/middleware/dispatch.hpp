#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "middleware/application.hpp"
#include "middleware/failure.hpp"
#include "middleware/policy.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace mwsim::mw {

/// Deterministic replica selection with in-flight accounting. Selection
/// depends only on the sequence of pick/arrive/depart calls, which the
/// single-threaded simulation kernel orders deterministically.
class ReplicaPicker {
 public:
  /// Returned by the masked pick() when no healthy replica exists.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  ReplicaPicker(std::size_t replicas, Dispatch policy)
      : policy_(policy), inflight_(replicas, 0) {
    assert(replicas > 0);
  }

  std::size_t pick() {
    if (policy_ == Dispatch::RoundRobin) {
      const std::size_t i = next_;
      next_ = (next_ + 1) % inflight_.size();
      return i;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < inflight_.size(); ++i) {
      if (inflight_[i] < inflight_[best]) best = i;
    }
    return best;
  }

  /// Health-aware variant: skips replicas whose mask entry is false, or
  /// returns kNone when none is healthy. With every replica healthy the
  /// selection sequence is bit-identical to pick() — round-robin takes the
  /// cursor's replica and advances by one; least-outstanding scans all.
  std::size_t pick(const std::vector<char>& healthy) {
    const std::size_t n = inflight_.size();
    assert(healthy.size() == n);
    if (policy_ == Dispatch::RoundRobin) {
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (next_ + step) % n;
        if (healthy[i]) {
          next_ = (i + 1) % n;
          return i;
        }
      }
      return kNone;
    }
    std::size_t best = kNone;
    for (std::size_t i = 0; i < n; ++i) {
      if (healthy[i] && (best == kNone || inflight_[i] < inflight_[best])) best = i;
    }
    return best;
  }

  void arrive(std::size_t i) { ++inflight_[i]; }
  void depart(std::size_t i) { --inflight_[i]; }
  int inflight(std::size_t i) const { return inflight_[i]; }

 private:
  Dispatch policy_;
  std::size_t next_ = 0;
  std::vector<int> inflight_;
};

/// Fans requests out over per-replica content generators (one ServletEngine
/// or EjbGenerator per servlet-container replica). The experiment wiring
/// bypasses this wrapper when there is only one replica, so single-replica
/// topologies stay event-identical to the legacy construction.
class DispatchingGenerator final : public DynamicContentGenerator {
 public:
  DispatchingGenerator(std::vector<DynamicContentGenerator*> children, Dispatch policy)
      : children_(std::move(children)), picker_(children_.size(), policy) {}

  sim::Task<Page> generate(const Request& request) override {
    const std::size_t i = picker_.pick();
    picker_.arrive(i);
    Inflight guard{&picker_, i};
    Page page = co_await children_[i]->generate(request);
    co_return page;
  }

 private:
  struct Inflight {
    ReplicaPicker* picker;
    std::size_t index;
    ~Inflight() { picker->depart(index); }
  };

  std::vector<DynamicContentGenerator*> children_;
  ReplicaPicker picker_;
};

/// Failover knobs for the load balancer. The zero-valued default (no
/// deadline; retries inert because nothing throws ReplicaDown without
/// scenario events) reproduces the legacy balancer exactly.
struct FailoverPolicy {
  /// Per-request deadline stamped onto dispatched requests (0 = none).
  sim::Duration requestTimeout = 0;
  /// Reroute attempts after a replica dies under a request.
  int requestRetries = 2;
};

/// L4 load balancer in front of replicated web servers, and — when a
/// scenario injects failures — the failover point: it tracks replica
/// health (crash/recover events update it via scenario::Timeline), skips
/// down replicas, stamps deadlines, and reroutes requests that die with a
/// replica, within the retry budget. Requests that exhaust the budget, time
/// out, or find no healthy replica complete with an error page rather than
/// throwing: client sessions must observe failures, not crash the run.
///
/// The experiment wiring hands the client farm a WebServer directly when
/// there is one replica and no failure scenario, so legacy topologies stay
/// event-identical to the pre-scenario construction.
class LoadBalancer final : public HttpService {
 public:
  LoadBalancer(sim::Simulation& simulation, std::vector<HttpService*> replicas,
               Dispatch policy, FailoverPolicy failover = {})
      : sim_(simulation),
        replicas_(std::move(replicas)),
        healthy_(replicas_.size(), 1),
        picker_(replicas_.size(), policy),
        failover_(failover) {}

  /// Scenario hook: marks a replica up or down for dispatch.
  void setHealthy(std::size_t i, bool healthy) {
    const char next = healthy ? 1 : 0;
    if (healthy_.at(i) == next) return;
    healthy_.at(i) = next;
    if constexpr (obs::kEnabled) {
      if (auto* m = sim_.metrics()) m->lbHealthFlips.add(1);
    }
  }
  bool healthy(std::size_t i) const { return healthy_.at(i) != 0; }

  /// Metrics wiring: per-replica in-flight gauges read through the picker.
  std::size_t replicaCount() const noexcept { return replicas_.size(); }
  const ReplicaPicker& picker() const noexcept { return picker_; }

  /// Requests answered with the balancer's own error page (budget
  /// exhausted, timed out, or no healthy replica).
  std::uint64_t errorCount() const noexcept { return errors_; }
  /// Attempts abandoned because the serving replica crashed mid-request.
  std::uint64_t rerouteCount() const noexcept { return reroutes_; }
  /// Requests that observed their deadline pass.
  std::uint64_t timeoutCount() const noexcept { return timeouts_; }

  sim::Task<InteractionResult> serve(const Request& request) override {
    Request routed = request;
    if (failover_.requestTimeout > 0) {
      routed.deadline = sim_.now() + failover_.requestTimeout;
    }
    int attempts = 1 + (failover_.requestRetries > 0 ? failover_.requestRetries : 0);
    while (attempts-- > 0) {
      const std::size_t i = picker_.pick(healthy_);
      if (i == ReplicaPicker::kNone) break;  // whole web tier is down
      picker_.arrive(i);
      Inflight guard{&picker_, i};
      try {
        InteractionResult result = co_await replicas_[i]->serve(routed);
        co_return result;
      } catch (const ReplicaDown&) {
        // The replica died under this request: its partial work is lost
        // (the simulated time it burned stands); reroute if budget remains.
        ++reroutes_;
        if constexpr (obs::kEnabled) {
          if (auto* m = sim_.metrics()) m->lbReroutes.add(1);
        }
      } catch (const RequestTimeout&) {
        // The deadline covers the whole interaction; retrying cannot help.
        ++timeouts_;
        if constexpr (obs::kEnabled) {
          if (auto* m = sim_.metrics()) m->lbTimeouts.add(1);
        }
        break;
      }
    }
    ++errors_;
    if constexpr (obs::kEnabled) {
      if (auto* m = sim_.metrics()) m->lbErrors.add(1);
    }
    co_return errorPage();
  }

 private:
  struct Inflight {
    ReplicaPicker* picker;
    std::size_t index;
    ~Inflight() { picker->depart(index); }
  };

  static InteractionResult errorPage() {
    Page page;
    page.htmlBytes = 600;  // same terse body as the web server's 500 page
    page.error = true;
    return InteractionResult{page, page.htmlBytes};
  }

  sim::Simulation& sim_;
  std::vector<HttpService*> replicas_;
  std::vector<char> healthy_;
  ReplicaPicker picker_;
  FailoverPolicy failover_;
  std::uint64_t errors_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace mwsim::mw
