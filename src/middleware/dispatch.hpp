#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

#include "middleware/application.hpp"
#include "middleware/policy.hpp"
#include "middleware/web_server.hpp"

namespace mwsim::mw {

/// Deterministic replica selection with in-flight accounting. Selection
/// depends only on the sequence of pick/arrive/depart calls, which the
/// single-threaded simulation kernel orders deterministically.
class ReplicaPicker {
 public:
  ReplicaPicker(std::size_t replicas, Dispatch policy)
      : policy_(policy), inflight_(replicas, 0) {
    assert(replicas > 0);
  }

  std::size_t pick() {
    if (policy_ == Dispatch::RoundRobin) {
      const std::size_t i = next_;
      next_ = (next_ + 1) % inflight_.size();
      return i;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < inflight_.size(); ++i) {
      if (inflight_[i] < inflight_[best]) best = i;
    }
    return best;
  }

  void arrive(std::size_t i) { ++inflight_[i]; }
  void depart(std::size_t i) { --inflight_[i]; }
  int inflight(std::size_t i) const { return inflight_[i]; }

 private:
  Dispatch policy_;
  std::size_t next_ = 0;
  std::vector<int> inflight_;
};

/// Fans requests out over per-replica content generators (one ServletEngine
/// or EjbGenerator per servlet-container replica). The experiment wiring
/// bypasses this wrapper when there is only one replica, so single-replica
/// topologies stay event-identical to the legacy construction.
class DispatchingGenerator final : public DynamicContentGenerator {
 public:
  DispatchingGenerator(std::vector<DynamicContentGenerator*> children, Dispatch policy)
      : children_(std::move(children)), picker_(children_.size(), policy) {}

  sim::Task<Page> generate(const Request& request) override {
    const std::size_t i = picker_.pick();
    picker_.arrive(i);
    Inflight guard{&picker_, i};
    Page page = co_await children_[i]->generate(request);
    co_return page;
  }

 private:
  struct Inflight {
    ReplicaPicker* picker;
    std::size_t index;
    ~Inflight() { picker->depart(index); }
  };

  std::vector<DynamicContentGenerator*> children_;
  ReplicaPicker picker_;
};

/// L4 load balancer in front of replicated web servers. The experiment
/// wiring hands the client farm a WebServer directly when there is one
/// replica; the balancer only exists in replicated topologies.
class LoadBalancer final : public HttpService {
 public:
  LoadBalancer(std::vector<WebServer*> replicas, Dispatch policy)
      : replicas_(std::move(replicas)), picker_(replicas_.size(), policy) {}

  sim::Task<InteractionResult> serve(const Request& request) override {
    const std::size_t i = picker_.pick();
    picker_.arrive(i);
    Inflight guard{&picker_, i};
    InteractionResult result = co_await replicas_[i]->serve(request);
    co_return result;
  }

 private:
  struct Inflight {
    ReplicaPicker* picker;
    std::size_t index;
    ~Inflight() { picker->depart(index); }
  };

  std::vector<WebServer*> replicas_;
  ReplicaPicker picker_;
};

}  // namespace mwsim::mw
