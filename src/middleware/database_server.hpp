#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/executor.hpp"
#include "middleware/cost_model.hpp"
#include "net/machine.hpp"
#include "sim/rwlock.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace mwsim::mw {

/// Simulated MySQL/MyISAM server.
///
/// Executes statements against the real in-memory engine while charging the
/// database machine's CPU according to the execution statistics, and
/// enforcing MyISAM's table-level locking:
///  * every statement takes implicit per-table read/write locks for its
///    service time, unless the connection holds explicit locks;
///  * `LOCK TABLES` acquires writer-priority locks that the connection keeps
///    across statements until `UNLOCK TABLES` — including across the
///    client<->server round trips between those statements, which is what
///    makes multi-statement critical sections expensive under contention.
class DatabaseServer {
 public:
  DatabaseServer(sim::Simulation& simulation, net::Machine& machine, db::Database& database,
                 const CostModel& cost)
      : sim_(simulation), machine_(machine), database_(database), executor_(database),
        cost_(cost), lockManager_(simulation, 1, "mysql.LOCK_open") {}
  DatabaseServer(const DatabaseServer&) = delete;
  DatabaseServer& operator=(const DatabaseServer&) = delete;

  net::Machine& machine() noexcept { return machine_; }
  db::Database& database() noexcept { return database_; }

  /// Per-table lock (created on demand).
  sim::RwLock& tableLock(const std::string& table) {
    auto it = locks_.find(table);
    if (it == locks_.end()) {
      it = locks_.emplace(table, std::make_unique<sim::RwLock>(sim_, table)).first;
    }
    return *it->second;
  }

  /// CPU demand for one executed statement, derived from what the engine
  /// actually did.
  sim::Duration queryCpuCost(const db::ExecStats& stats) const {
    const double us = cost_.dbPerQueryUs +
                      static_cast<double>(stats.rowsExamined) * cost_.dbPerRowExaminedUs +
                      static_cast<double>(stats.bytesExamined) * cost_.dbPerExaminedByteUs +
                      static_cast<double>(stats.rowsSorted) * cost_.dbPerRowSortedUs +
                      static_cast<double>(stats.rowsModified) * cost_.dbPerRowModifiedUs +
                      static_cast<double>(stats.aggregatedGroups) * cost_.dbPerGroupUs +
                      static_cast<double>(stats.resultBytes) * cost_.dbPerResultByteUs;
    return sim::fromMicros(us);
  }

  /// One client connection, holding explicit-lock state.
  class Connection {
   public:
    explicit Connection(DatabaseServer& server) : server_(server) {}
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Server-side processing: lock acquisition, CPU service, execution.
    /// Takes the cached planned statement, so repeated executions reuse the
    /// per-catalog query plan.
    sim::Task<db::ExecResult> process(std::shared_ptr<const db::PlannedStatement> stmt,
                                      std::vector<db::Value> params);

    bool holdsExplicitLocks() const noexcept { return !explicitLocks_.empty(); }

    /// Drops explicit locks without a round trip (teardown safety net).
    void releaseExplicitLocks() noexcept { explicitLocks_.clear(); }

   private:
    DatabaseServer& server_;
    // Table name -> held explicit lock; std::map keeps deterministic
    // (sorted) acquisition order, preventing lock-order deadlocks.
    std::map<std::string, sim::LockHold> explicitLocks_;
  };

  std::unique_ptr<Connection> connect() { return std::make_unique<Connection>(*this); }

  /// Total statements processed (for tests/benches).
  std::uint64_t statementsProcessed() const noexcept { return statements_; }

  /// All table locks created so far (for lock-contention reporting).
  const std::map<std::string, std::unique_ptr<sim::RwLock>>& tableLocks() const noexcept {
    return locks_;
  }

  /// The global lock-manager mutex, exposed so experiment results can report
  /// its wait time (previously dropped from lock-wait accounting even though
  /// its drain stalls are the fig05 mechanism).
  const sim::Mutex& lockManager() const noexcept { return lockManager_; }

 private:
  friend class Connection;

  sim::Simulation& sim_;
  net::Machine& machine_;
  db::Database& database_;
  db::Executor executor_;
  const CostModel& cost_;
  std::map<std::string, std::unique_ptr<sim::RwLock>> locks_;
  /// MySQL 3.23's global lock-manager mutex (LOCK_open / THR_LOCK): every
  /// statement passes through it briefly, and `LOCK TABLES` holds it for
  /// the whole multi-table acquisition — so while a writer waits for long
  /// readers to drain, the server admits no new statements. This coarse
  /// serialization is what caps the database CPU near 70 % in the paper's
  /// non-sync bookstore runs (Figures 5/6) and is exactly the contention
  /// the Java-monitor configurations avoid.
  sim::Mutex lockManager_;
  std::uint64_t statements_ = 0;
};

}  // namespace mwsim::mw
