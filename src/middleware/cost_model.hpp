#pragma once

#include "sim/time.hpp"

namespace mwsim::mw {

/// CPU and protocol cost constants for the simulated software stack.
///
/// These model the 2001-era stack the paper measured (1.33 GHz Athlon,
/// Apache 1.3, PHP 4.0.6, Tomcat 3.2.4 on JDK 1.3, JOnAS 2.5, MySQL 3.23
/// with MyISAM). Values are per-machine CPU demand unless noted; they were
/// calibrated so the six configurations land near the paper's peak
/// throughputs (Figures 5-14) while every qualitative mechanism (lock
/// contention, IPC overhead, CMP query floods) emerges from execution, not
/// from per-configuration fudge factors. See EXPERIMENTS.md for
/// paper-vs-measured numbers.
struct CostModel {
  // ---- Web server (Apache 1.3) -------------------------------------------
  /// Parsing + dispatching one dynamic HTTP request, and writing the reply.
  double webRequestUs = 450.0;
  /// Network-stack CPU per byte of HTTP response body.
  double webPerResponseByteUs = 0.03;
  /// Per busy Apache process, charged once per request: process-per-
  /// connection scheduling and select() scanning. This term is what drives
  /// the web server CPU toward 100 % under thousands of concurrent
  /// connections (the paper's auction browsing mix) while leaving it nearly
  /// idle at the EJB configuration's low concurrency.
  double webPerActiveProcessUs = 2.0;
  /// Serving one embedded static image from the buffer cache.
  double webStaticImageUs = 40.0;
  /// mod_ssl handshake+crypto for a secure interaction (purchases).
  double webSslUs = 3500.0;
  /// Apache process pool size (the paper raised it to 512).
  int webProcessLimit = 512;

  // ---- PHP module (in-process) -------------------------------------------
  /// Interpreter entry + script compile cache hit.
  double phpRequestUs = 600.0;
  /// Interpreting the script: charged per byte of generated dynamic HTML
  /// (echo loops dominate PHP script time).
  double phpPerHtmlByteUs = 0.55;
  /// Native MySQL driver: per query submitted.
  double phpDriverPerQueryUs = 90.0;
  /// Native MySQL driver: per byte of result set decoded.
  double phpDriverPerByteUs = 0.004;

  // ---- Servlet engine (Tomcat 3.2.4 on JDK 1.3) --------------------------
  /// Servlet container dispatch per request (thread pool, request objects).
  double servletRequestUs = 2900.0;
  /// Servlet page-generation cost per dynamic HTML byte (JDK 1.3 JIT makes
  /// the generation loop itself cheaper than PHP's interpreter, but the
  /// fixed container and JDBC costs below dominate).
  double servletPerHtmlByteUs = 0.20;
  /// AJP12 connector: per-request dispatch cost (charged on both the web
  /// server and the servlet engine sides).
  double ajpPerRequestUs = 350.0;
  /// AJP12 relay of dynamic content between servlet engine and web server,
  /// per byte, charged on both sides (the IPC overhead the paper profiles
  /// in §6.1).
  double ajpPerByteUs = 0.03;
  /// Type 4 JDBC driver (interpreted Java on JDK 1.3): per query submitted.
  /// The companion OOPSLA'02 study by the same authors measures enormous
  /// per-call overheads for interpreted drivers; this constant is what
  /// makes servlets trail PHP when co-located.
  double jdbcPerQueryUs = 560.0;
  /// Type 4 JDBC driver: per byte of result set decoded.
  double jdbcPerByteUs = 0.012;
  /// Java synchronized block acquire/release pair (sync configurations).
  double javaSyncUs = 15.0;

  // ---- EJB server (JOnAS 2.5, session facade + CMP entity beans) ---------
  /// RMI call dispatch: client-side (servlet) marshalling per facade call.
  double rmiClientPerCallUs = 420.0;
  /// RMI call dispatch: server-side (EJB) unmarshalling + skeleton.
  double rmiServerPerCallUs = 650.0;
  /// RMI payload marshalling per byte (both sides).
  double rmiPerByteUs = 0.08;
  /// Container interposition per entity/session bean operation: lifecycle,
  /// tx interceptors, reflection into CMP fields.
  double ejbBeanOpUs = 130.0;
  /// Extra container bookkeeping per CMP-generated SQL statement.
  double ejbCmpStatementUs = 120.0;

  // ---- Database server (MySQL 3.23 / MyISAM) ------------------------------
  /// Fixed cost per statement: parse, plan, result packet assembly.
  double dbPerQueryUs = 230.0;
  /// Per row examined by scans and index probes.
  double dbPerRowExaminedUs = 4.5;
  /// Per byte of row data touched while scanning/probing (MySQL reads whole
  /// rows, so scans over the bookstore's wide item/customer rows cost
  /// proportionally more than the auction site's narrow bid rows).
  double dbPerExaminedByteUs = 0.012;
  /// Per row passed through ORDER BY sorting.
  double dbPerRowSortedUs = 2.0;
  /// Per row inserted/updated/deleted (heap + index maintenance across all
  /// of MyISAM's keys, at 2001-era memory speeds).
  double dbPerRowModifiedUs = 150.0;
  /// Per aggregation group materialized.
  double dbPerGroupUs = 3.0;
  /// Per byte of result set serialized to the wire.
  double dbPerResultByteUs = 0.01;
  /// Parse/dispatch cost of a LOCK/UNLOCK TABLES statement.
  double dbLockStatementUs = 60.0;
  /// Per table listed in LOCK TABLES, charged on both lock and unlock:
  /// MySQL 3.23 closes and reopens the table handlers around explicit
  /// locks, several milliseconds per table on 2001 hardware. Removing the
  /// LOCK/UNLOCK statements (the sync configurations) removes this cost —
  /// the biggest part of the paper's sync-vs-non-sync gap.
  double dbLockPerTableUs = 2600.0;

  // ---- Wire sizes ----------------------------------------------------------
  /// HTTP request line + headers from the client.
  std::size_t httpRequestBytes = 360;
  /// HTTP response headers.
  std::size_t httpResponseHeaderBytes = 220;
  /// AJP12 request envelope web server -> servlet engine.
  std::size_t ajpRequestBytes = 420;
  /// RMI request envelope servlet -> EJB server.
  std::size_t rmiRequestBytes = 480;
  /// Client-side turnaround between receiving one statement's result and
  /// issuing the next: process wakeup/scheduling latency of a preforked
  /// Apache/JVM worker among hundreds of runnable processes on Linux 2.4.
  /// Charged as latency (not CPU) per statement. Inside a LOCK TABLES
  /// critical section these gaps extend the table-lock hold time — a key
  /// part of why moving the locks into the servlet JVM (sync) wins.
  double clientTurnaroundUs = 2500.0;

  /// Query envelope app -> database (plus literal SQL text length).
  std::size_t dbRequestBytes = 140;
  /// Result envelope database -> app (plus result bytes).
  std::size_t dbResponseBytes = 90;

  // ---- Helpers -------------------------------------------------------------
  static sim::Duration us(double micros) { return sim::fromMicros(micros); }
};

}  // namespace mwsim::mw
