#pragma once

#include <cassert>

#include "middleware/application.hpp"
#include "middleware/cost_model.hpp"
#include "middleware/failure.hpp"
#include "net/network.hpp"
#include "sim/resource.hpp"
#include "trace/scope.hpp"

namespace mwsim::mw {

/// Apache-style web server: a bounded process pool, static image serving,
/// and a pluggable dynamic-content generator.
///
/// serve() models one complete client interaction over a persistent HTTP
/// connection: request upload, dynamic generation, embedded-image fetches,
/// and response download. The process slot is held for the whole
/// interaction (keep-alive semantics).
class WebServer final : public HttpService {
 public:
  WebServer(sim::Simulation& simulation, net::Machine& machine, net::Network& network,
            net::Machine& clientFarm, const CostModel& cost)
      : sim_(simulation), machine_(machine), net_(network), clients_(clientFarm), cost_(cost),
        // Waiting for an httpd slot is queueing for compute capacity, not
        // lock contention, so it traces as cpu-queue.
        processPool_(simulation, cost.webProcessLimit, machine.name() + ".httpd",
                     trace::Category::CpuQueue) {}

  void setGenerator(DynamicContentGenerator* generator) { generator_ = generator; }

  net::Machine& machine() noexcept { return machine_; }
  const sim::Resource& processPool() const noexcept { return processPool_; }

  /// Dynamic-content requests that failed and were answered with an error
  /// page.
  std::uint64_t errorCount() const noexcept { return errors_; }

  /// Serves one interaction. `request` must stay alive until the returned
  /// task completes (callers co_await immediately; do not pass a temporary
  /// — GCC 12 miscompiles by-value coroutine parameters initialized from
  /// braced temporaries).
  sim::Task<InteractionResult> serve(const Request& request) override {
    assert(generator_ != nullptr);
    // A request dispatched to an already-dead replica (possible only in a
    // brief race before the balancer's health view updates) fails at once.
    if (!machine_.up()) throw ReplicaDown(machine_.name());
    const std::uint64_t epoch = machine_.epoch();

    co_await net_.send(clients_, machine_, cost_.httpRequestBytes);
    checkpoint(epoch, request);

    trace::SpanScope webSpan(sim_, "web");
    sim::ResourceHold process = co_await processPool_.acquire();
    checkpoint(epoch, request);
    co_await machine_.compute(sim::fromMicros(
        cost_.webRequestUs + cost_.webPerActiveProcessUs * processPool_.inUse()));
    checkpoint(epoch, request);

    // Generators can be shared across web replicas; stamping the request
    // with this replica's machine routes the generator's web-side work here.
    Request routed = request;
    routed.web = &machine_;

    Page page;
    try {
      page = co_await generator_->generate(routed);
    } catch (const ReplicaDown&) {
      throw;  // failover concerns the balancer, not the error-page path
    } catch (const RequestTimeout&) {
      throw;
    } catch (const std::exception&) {
      // A failed script/servlet produces a 500 error page; the server (and
      // the client's session) keeps going — one bad interaction must not
      // take the site down.
      ++errors_;
      page = Page{};
      page.htmlBytes = 600;  // terse error body
      page.error = true;
    }
    checkpoint(epoch, request);

    if (page.secure) {
      co_await machine_.compute(sim::fromMicros(cost_.webSslUs));
    }

    // Embedded images: served from the buffer cache over the same
    // connection (one request's worth of CPU per image).
    if (page.imageCount > 0) {
      co_await machine_.compute(
          sim::fromMicros(cost_.webStaticImageUs * page.imageCount));
    }

    const std::size_t bodyBytes = page.htmlBytes + page.imageBytes;
    co_await machine_.compute(
        sim::fromMicros(cost_.webPerResponseByteUs * static_cast<double>(bodyBytes)));
    checkpoint(epoch, request);

    const std::size_t wireBytes =
        bodyBytes + cost_.httpResponseHeaderBytes * (1 + static_cast<std::size_t>(page.imageCount));
    co_await net_.send(machine_, clients_, wireBytes);
    checkpoint(epoch, request);

    co_return InteractionResult{page, wireBytes};
  }

 private:
  /// Scenario checkpoint, reached after every co_await in serve(): a
  /// request notices its replica crashed (machine epoch changed under it —
  /// the down machine's resources keep running in virtual time, so the
  /// request still reaches its next resume point) or its deadline passed,
  /// and unwinds via the failover exceptions the load balancer handles.
  /// Both checks are no-ops in scenario-off runs (epoch never changes,
  /// deadline is negative), which keeps them byte-identical to before.
  void checkpoint(std::uint64_t epoch, const Request& request) const {
    if (machine_.epoch() != epoch) throw ReplicaDown(machine_.name());
    if (request.deadline >= 0 && sim_.now() >= request.deadline) {
      throw RequestTimeout(request.interaction);
    }
  }

  sim::Simulation& sim_;
  net::Machine& machine_;
  net::Network& net_;
  net::Machine& clients_;
  const CostModel& cost_;
  sim::Resource processPool_;
  DynamicContentGenerator* generator_ = nullptr;
  std::uint64_t errors_ = 0;
};

}  // namespace mwsim::mw
