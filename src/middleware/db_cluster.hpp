#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "db/database.hpp"
#include "db/plan.hpp"
#include "middleware/database_server.hpp"
#include "middleware/policy.hpp"
#include "sim/resource.hpp"

namespace mwsim::mw {

/// A replicated database tier, as the drivers see it.
///
/// Every backend holds a complete copy of the dataset (the paper's §7
/// read-scaling cluster: replicate the content, fan the reads out, keep the
/// copies identical by applying every write everywhere). The two policies
/// differ only in *routing*:
///
///  * MasterReplica — reads rotate over all backends; writes go to backend
///    0 first and then to each mirror, under a cluster-wide write stream
///    that makes concurrent writers apply in the same order on every copy.
///  * ShardedByKey — the driver routes each statement to a deterministic
///    key-owner backend, so each backend's cache/locks see only its share
///    of the key space; writes still replicate (content stays full copies —
///    this splits load, not storage).
///
/// A write completes only after every backend applied it, so any statement
/// issued after a write's round trip observes it on every backend: reads
/// are never stale, and auto-increment ids agree across copies because all
/// copies apply the same writes in the same order.
///
/// Explicit LOCK TABLES fans out to all backends in fixed backend order
/// (ordered acquisition — no lock-order deadlocks), giving a critical
/// section the same mutual exclusion it had on one server.
class DbCluster {
 public:
  /// Wraps one externally owned server (tests, hand-built rigs). The
  /// cluster adds no behavior at size 1 — DbSession takes the legacy
  /// single-server path.
  explicit DbCluster(DatabaseServer& server) : backends_{&server} {}

  /// Owning mode: one DatabaseServer per (machine, database clone) pair.
  /// `machines` and `databases` must be the same length; the databases are
  /// moved into stable storage here so the servers can hold references.
  DbCluster(sim::Simulation& simulation, const CostModel& cost, DbPolicy policy,
            std::vector<net::Machine*> machines, std::vector<db::Database> databases);

  DbCluster(const DbCluster&) = delete;
  DbCluster& operator=(const DbCluster&) = delete;

  std::size_t size() const noexcept { return backends_.size(); }
  DatabaseServer& backend(std::size_t i) noexcept { return *backends_[i]; }
  DatabaseServer& primary() noexcept { return *backends_[0]; }
  DbPolicy policy() const noexcept { return policy_; }

  /// Next backend for a policy-free read (MasterReplica fan-out).
  std::size_t routeRead() noexcept {
    const std::size_t i = nextRead_;
    nextRead_ = (nextRead_ + 1) % backends_.size();
    return i;
  }

  /// Key-owner backend for a statement (ShardedByKey). Keys on the first
  /// bound parameter when there is one (the apps' hot statements bind the
  /// entity id first), else on the SQL text — deterministic either way.
  std::size_t shardFor(const db::PlannedStatement& stmt,
                       const std::vector<db::Value>& params) const;

  /// Serializes replicated writes so every backend applies them in one
  /// global order. Null at size 1 (never needed).
  sim::Mutex* writeStream() noexcept { return writeStream_.get(); }

 private:
  // Owning mode only; sized once in the constructor, never resized, so the
  // DatabaseServer references into it stay valid.
  std::vector<db::Database> databases_;
  std::vector<std::unique_ptr<DatabaseServer>> owned_;
  std::vector<DatabaseServer*> backends_;
  DbPolicy policy_ = DbPolicy::MasterReplica;
  std::size_t nextRead_ = 0;
  std::unique_ptr<sim::Mutex> writeStream_;
};

}  // namespace mwsim::mw
