#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "middleware/db_session.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"

namespace mwsim::mw {

/// How the application serializes multi-statement critical sections.
enum class LockStrategy {
  /// Issue `LOCK TABLES` / `UNLOCK TABLES` to the database (PHP, and
  /// servlets in the non-sync configurations).
  DatabaseLocks,
  /// Hold Java `synchronized` monitors in the servlet engine; individual
  /// statements still take MyISAM's short implicit locks (sync configs).
  AppSync,
};

/// One table the critical section must cover, with its lock mode.
struct TableLockSpec {
  std::string table;
  bool write = false;
};

/// Fluent builder for lock sets. Prefer this over braced-init-lists inside
/// co_await expressions (GCC 12 coroutine bug — see bind() in
/// db_session.hpp):
///   co_await ctx.enterCritical(lockSet().write("items").read("authors"));
class LockSet {
 public:
  LockSet&& write(std::string table) && {
    specs_.push_back({std::move(table), true});
    return std::move(*this);
  }
  LockSet&& read(std::string table) && {
    specs_.push_back({std::move(table), false});
    return std::move(*this);
  }
  std::vector<TableLockSpec> take() && { return std::move(specs_); }

 private:
  std::vector<TableLockSpec> specs_;
};

inline LockSet lockSet() { return {}; }

/// A held critical section. Must be released with `co_await cs.release(ctx)`
/// on the success path; the destructor drops any still-held locks without
/// charging simulated time (exception/teardown safety net).
class [[nodiscard]] CriticalSection {
 public:
  CriticalSection() = default;
  CriticalSection(CriticalSection&&) = default;
  CriticalSection& operator=(CriticalSection&&) = default;

  bool active() const noexcept { return viaDatabase_ || !monitors_.empty(); }

 private:
  friend struct AppContext;
  bool viaDatabase_ = false;
  DbSession* db_ = nullptr;  // for emergency release only
  std::vector<sim::ResourceHold> monitors_;
};

/// Everything an application interaction needs to run inside the dynamic
/// content generator: the host machine (whose CPU the business logic
/// burns), a database session, the configured locking strategy, and a
/// deterministic random source for picking items/users/parameters.
struct AppContext {
  sim::Simulation& sim;
  net::Machine& host;
  DbSession& db;
  LockStrategy lockStrategy = LockStrategy::DatabaseLocks;
  sim::NamedMutexSet* appMonitors = nullptr;  // required for AppSync
  sim::Rng& rng;
  const CostModel& cost;

  /// Convenience passthrough to the database session.
  sim::Task<db::ExecResult> query(std::string_view sql, std::vector<db::Value> params = {}) {
    return db.execute(sql, std::move(params));
  }

  /// Enters a critical section covering `specs`.
  ///
  /// DatabaseLocks: issues one `LOCK TABLES ...` statement (a full
  /// client-database round trip) and holds writer-priority table locks in
  /// the server until release().
  ///
  /// AppSync: acquires named monitors in the servlet engine's JVM, in
  /// sorted order; the database sees only per-statement implicit locks.
  sim::Task<CriticalSection> enterCritical(LockSet set) {
    return enterCritical(std::move(set).take());
  }

  sim::Task<CriticalSection> enterCritical(std::vector<TableLockSpec> specs) {
    CriticalSection cs;
    std::sort(specs.begin(), specs.end(),
              [](const TableLockSpec& a, const TableLockSpec& b) { return a.table < b.table; });
    if (lockStrategy == LockStrategy::DatabaseLocks) {
      std::string sql = "LOCK TABLES ";
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i) sql += ", ";
        sql += specs[i].table;
        sql += specs[i].write ? " WRITE" : " READ";
      }
      co_await db.execute(sql);
      cs.viaDatabase_ = true;
      cs.db_ = &db;
    } else {
      // The Java implementations only synchronize writers; read-only
      // sections that PHP brackets in LOCK TABLES for MyISAM consistency
      // simply drop the statements (paper §4.2: "we remove some LOCK
      // TABLES and UNLOCK TABLES SQL statements").
      for (const auto& spec : specs) {
        if (!spec.write) continue;
        co_await host.compute(sim::fromMicros(cost.javaSyncUs));
        cs.monitors_.push_back(co_await appMonitors->get(spec.table).acquire());
      }
    }
    co_return cs;
  }

  /// Leaves a critical section (issues `UNLOCK TABLES` for DatabaseLocks).
  sim::Task<> leaveCritical(CriticalSection cs) {
    if (cs.viaDatabase_) {
      cs.viaDatabase_ = false;
      co_await db.execute("UNLOCK TABLES");
    }
    cs.monitors_.clear();
  }

  /// Charges business-logic CPU on the host machine.
  sim::Task<> compute(double micros) { return host.compute(sim::fromMicros(micros)); }
};

}  // namespace mwsim::mw
