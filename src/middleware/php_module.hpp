#pragma once

#include "middleware/application.hpp"
#include "middleware/db_session.hpp"
#include "trace/scope.hpp"

namespace mwsim::mw {

/// PHP interpreter running as a module inside the web server process:
/// no IPC with the web server, a cheap native database driver, and the
/// script's CPU burned on the web server machine. Critical sections use
/// LOCK TABLES (PHP has no portable cross-process locking; see paper §2.2
/// footnote 2).
class PhpModule final : public DynamicContentGenerator {
 public:
  PhpModule(sim::Simulation& simulation, net::Network& network, net::Machine& webMachine,
            DbCluster& db, SqlBusinessLogic& logic, const CostModel& cost,
            std::uint64_t seed)
      : sim_(simulation), net_(network), web_(webMachine), db_(db), logic_(logic),
        cost_(cost), rng_(sim::deriveSeed(seed, /*tag=*/0x9a9)) {}

  sim::Task<Page> generate(const Request& request) override {
    trace::SpanScope phpSpan(sim_, "php");
    // The module runs inside whichever web replica took the request.
    net::Machine& web = request.web != nullptr ? *request.web : web_;
    co_await web.compute(sim::fromMicros(cost_.phpRequestUs));

    // Each Apache process has its own persistent database connection; a
    // fresh session per request models the same isolation.
    DbSession db(sim_, net_, web, db_, DriverKind::NativeMySql, cost_);
    AppContext ctx{sim_, web, db, LockStrategy::DatabaseLocks,
                   /*appMonitors=*/nullptr, rng_, cost_};
    Page page = co_await logic_.invoke(request.interaction, ctx, *request.session);
    page.queryCount += static_cast<int>(db.statements());
    page.dataBytes += db.resultBytes();

    // Interpreting the generation loop: cost proportional to emitted HTML.
    co_await web.compute(sim::fromMicros(
        cost_.phpPerHtmlByteUs * static_cast<double>(page.htmlBytes)));
    co_return page;
  }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  net::Machine& web_;  // fallback when the request carries no replica
  DbCluster& db_;
  SqlBusinessLogic& logic_;
  const CostModel& cost_;
  sim::Rng rng_;
};

}  // namespace mwsim::mw
