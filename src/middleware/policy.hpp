#pragma once

/// Leaf header for the cluster dispatch/routing policy enums. Kept free of
/// other middleware includes so core/topology.hpp and db_cluster.hpp can use
/// the enums without pulling in the generator stack (db_cluster is itself
/// reachable from application.hpp via app_context → db_session, so anything
/// it includes must not loop back into application.hpp).

namespace mwsim::mw {

/// How requests are spread over the replicas of a stateless tier (web
/// servers behind an L4 switch, servlet containers behind mod_jk).
enum class Dispatch {
  RoundRobin,        // strict rotation, the classic switch default
  LeastOutstanding,  // fewest in-flight requests, ties to the lowest index
};

inline const char* dispatchName(Dispatch d) {
  switch (d) {
    case Dispatch::RoundRobin: return "round-robin";
    case Dispatch::LeastOutstanding: return "least-outstanding";
  }
  return "?";
}

/// How a replicated database tier is used by the drivers.
enum class DbPolicy {
  MasterReplica,  // reads fan out over every backend, writes are applied
                  // everywhere in one serialized stream
  ShardedByKey,   // the driver routes each statement to a key-owner backend;
                  // writes still replicate so all backends stay identical
};

inline const char* dbPolicyName(DbPolicy p) {
  switch (p) {
    case DbPolicy::MasterReplica: return "master-replica";
    case DbPolicy::ShardedByKey: return "sharded-by-key";
  }
  return "?";
}

}  // namespace mwsim::mw
