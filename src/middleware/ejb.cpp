#include "middleware/ejb.hpp"

#include <stdexcept>

#include "trace/scope.hpp"

namespace mwsim::mw {

const std::string& EntityManager::pkColumn(const std::string& table) const {
  const db::TableSchema& schema = db_.server().database().table(table).schema();
  if (!schema.primaryKey) {
    throw std::runtime_error("entity table has no primary key: " + table);
  }
  return schema.columns[*schema.primaryKey].name;
}

std::size_t EntityManager::columnIndex(const Entity& e, const std::string& column) const {
  for (std::size_t i = 0; i < e.columns.size(); ++i) {
    if (e.columns[i] == column) return i;
  }
  throw std::runtime_error("entity " + e.table + " has no field " + column);
}

sim::Task<std::optional<EntityManager::Handle>> EntityManager::activate(
    const std::string& table, db::Value pk) {
  const auto key = std::make_pair(table, pk.toDisplayString());
  auto it = cache_.find(key);
  if (it != cache_.end()) co_return it->second;

  const std::string sql = "SELECT * FROM " + table + " WHERE " + pkColumn(table) + " = ?";
  // Note: GCC 12 miscompiles braced-init-list arguments inside co_await
  // expressions ("array used as initializer"); build vectors explicitly.
  std::vector<db::Value> args;
  args.push_back(pk);
  db::ExecResult r = co_await cmpQuery(sql, std::move(args));
  if (r.resultSet.empty()) co_return std::nullopt;

  Entity e;
  e.table = table;
  e.pk = std::move(pk);
  e.columns = r.resultSet.columns;
  e.values = std::move(r.resultSet.rows.front());
  e.dirty.assign(e.columns.size(), false);
  entities_.push_back(std::move(e));
  const Handle h = entities_.size() - 1;
  cache_.emplace(key, h);
  co_return h;
}

sim::Task<std::optional<EntityManager::Handle>> EntityManager::find(const std::string& table,
                                                                    db::Value pk) {
  co_await chargeBeanOp();
  co_return co_await activate(table, std::move(pk));
}

sim::Task<std::vector<EntityManager::Handle>> EntityManager::finder(
    std::string_view finderSql, std::vector<db::Value> params, const std::string& table) {
  co_await chargeBeanOp();
  db::ExecResult keys = co_await cmpQuery(finderSql, std::move(params));
  std::vector<Handle> out;
  out.reserve(keys.resultSet.rowCount());
  for (const db::Row& row : keys.resultSet.rows) {
    if (row.empty()) continue;
    // One activation SELECT per entity — the CMP N+1 pattern.
    auto h = co_await activate(table, row.front());
    if (h) out.push_back(*h);
  }
  co_return out;
}

sim::Task<db::Value> EntityManager::get(Handle h, const std::string& column) {
  co_await chargeBeanOp();
  const Entity& e = entities_.at(h);
  co_return e.values[columnIndex(e, column)];
}

sim::Task<> EntityManager::set(Handle h, const std::string& column, db::Value v) {
  co_await chargeBeanOp();
  Entity& e = entities_.at(h);
  const std::size_t c = columnIndex(e, column);
  e.values[c] = std::move(v);
  e.dirty[c] = true;
}

sim::Task<EntityManager::Handle> EntityManager::create(const std::string& table,
                                                       std::vector<std::string> columns,
                                                       std::vector<db::Value> values) {
  co_await chargeBeanOp();
  std::string sql = "INSERT INTO " + table + " (";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) sql += ", ";
    sql += columns[i];
  }
  sql += ") VALUES (";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) sql += ", ";
    sql += '?';
  }
  sql += ')';
  db::ExecResult r = co_await cmpQuery(sql, values);

  // Activate the new entity so subsequent accessors see it; the insert
  // assigned the auto-increment key when the pk was omitted.
  const std::string& pkCol = pkColumn(table);
  db::Value pk;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == pkCol) pk = values[i];
  }
  if (pk.isNull()) pk = db::Value(r.lastInsertId);
  auto h = co_await activate(table, std::move(pk));
  if (!h) throw std::runtime_error("ejbCreate failed to activate " + table);
  co_return *h;
}

sim::Task<> EntityManager::remove(Handle h) {
  co_await chargeBeanOp();
  Entity& e = entities_.at(h);
  e.removed = true;
  const std::string sql = "DELETE FROM " + e.table + " WHERE " + pkColumn(e.table) + " = ?";
  std::vector<db::Value> args;
  args.push_back(e.pk);
  co_await cmpQuery(sql, std::move(args));
}

sim::Task<> EntityManager::commit() {
  for (Entity& e : entities_) {
    if (e.removed) continue;
    std::vector<std::string> dirtyCols;
    std::vector<db::Value> params;
    for (std::size_t i = 0; i < e.columns.size(); ++i) {
      if (e.dirty[i]) {
        dirtyCols.push_back(e.columns[i]);
        params.push_back(e.values[i]);
      }
    }
    if (dirtyCols.empty()) continue;
    std::string sql = "UPDATE " + e.table + " SET ";
    for (std::size_t i = 0; i < dirtyCols.size(); ++i) {
      if (i) sql += ", ";
      sql += dirtyCols[i] + " = ?";
    }
    sql += " WHERE " + pkColumn(e.table) + " = ?";
    params.push_back(e.pk);
    co_await cmpQuery(sql, std::move(params));
    std::fill(e.dirty.begin(), e.dirty.end(), false);
  }
}

sim::Task<Page> EjbGenerator::generate(const Request& request) {
  trace::SpanScope servletSpan(sim_, "servlet");
  // The web side runs on whichever replica took the request; the servlet
  // machine is this instance's own (one EjbGenerator per servlet replica);
  // the EJB machine rotates over the cluster view held by the RMI stubs.
  net::Machine& web = request.web != nullptr ? *request.web : web_;
  net::Machine& ejb = *ejbMachines_[nextEjb_];
  nextEjb_ = (nextEjb_ + 1) % ejbMachines_.size();

  // Web server -> servlet engine over AJP12 (always separate machines in
  // the Ws-Servlet-EJB-DB configuration).
  co_await web.compute(sim::fromMicros(cost_.ajpPerRequestUs));
  if (&web != &servlet_) co_await net_.send(web, servlet_, cost_.ajpRequestBytes);
  co_await servlet_.compute(
      sim::fromMicros(cost_.ajpPerRequestUs + cost_.servletRequestUs));

  // Servlet -> EJB session facade over RMI (one coarse-grained call).
  co_await servlet_.compute(sim::fromMicros(cost_.rmiClientPerCallUs));

  Page page;
  std::size_t payload = 0;
  {
    // The "ejb" span covers the remote call as the servlet experiences it:
    // RMI request on the wire, facade + CMP work on the EJB machine, and
    // the marshaled reply back.
    trace::SpanScope ejbSpan(sim_, "ejb");
    co_await net_.send(servlet_, ejb, cost_.rmiRequestBytes);
    co_await ejb.compute(
        sim::fromMicros(cost_.rmiServerPerCallUs + cost_.ejbBeanOpUs));  // facade bean

    // The facade method runs on the EJB machine with container-managed
    // persistence through the container's own JDBC connection.
    DbSession db(sim_, net_, ejb, db_, DriverKind::Jdbc, cost_);
    EntityManager em(ejb, db, cost_);
    EjbContext ctx{sim_, ejb, em, db, rng_, cost_};
    page = co_await logic_.invoke(request.interaction, ctx, *request.session);
    co_await em.commit();
    page.queryCount += static_cast<int>(em.statementsIssued());
    page.dataBytes += em.dataBytes();

    // Marshal the reply value graph back to the servlet.
    payload = cost_.rmiRequestBytes + page.dataBytes;
    co_await ejb.compute(
        sim::fromMicros(cost_.rmiPerByteUs * static_cast<double>(payload)));
    co_await net_.send(ejb, servlet_, payload);
  }
  co_await servlet_.compute(
      sim::fromMicros(cost_.rmiPerByteUs * static_cast<double>(payload)));

  // Presentation: the servlet renders HTML from the returned data, then
  // relays it to the web server over AJP.
  co_await servlet_.compute(sim::fromMicros(
      (cost_.servletPerHtmlByteUs + cost_.ajpPerByteUs) *
      static_cast<double>(page.htmlBytes)));
  if (&web != &servlet_) {
    co_await net_.send(servlet_, web, page.htmlBytes + cost_.ajpRequestBytes);
  }
  co_await web.compute(
      sim::fromMicros(cost_.ajpPerByteUs * static_cast<double>(page.htmlBytes)));
  co_return page;
}

}  // namespace mwsim::mw
