#pragma once

#include <stdexcept>
#include <string>

namespace mwsim::mw {

/// Thrown when the replica serving a request crashes mid-flight (its
/// machine's epoch changed under the request). The load balancer catches
/// this and reroutes the request to a healthy replica, up to its retry
/// budget.
class ReplicaDown : public std::runtime_error {
 public:
  explicit ReplicaDown(const std::string& machine)
      : std::runtime_error("replica down: " + machine) {}
};

/// Thrown when a request observes that its deadline has passed. Deadlines
/// are checked at the same scheduling checkpoints as crashes, so a timed-out
/// request unwinds at its next resume point rather than being preempted.
/// The load balancer does not retry after a timeout — the budget covers the
/// whole interaction, not one attempt.
class RequestTimeout : public std::runtime_error {
 public:
  explicit RequestTimeout(const std::string& interaction)
      : std::runtime_error("request timeout: " + interaction) {}
};

}  // namespace mwsim::mw
