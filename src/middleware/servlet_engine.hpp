#pragma once

#include "middleware/application.hpp"
#include "middleware/db_session.hpp"
#include "trace/scope.hpp"

namespace mwsim::mw {

/// Tomcat-style servlet engine reached from the web server over AJP12.
///
/// The engine may run on the web server machine (separate JVM process,
/// same CPU) or on a dedicated machine (AJP crosses the LAN). With
/// `syncLocking` enabled the application's critical sections hold Java
/// monitors in this JVM instead of issuing LOCK TABLES — the paper's
/// "(sync)" configurations.
class ServletEngine final : public DynamicContentGenerator {
 public:
  /// `sharedMonitors`, when non-null, replaces the engine's own monitor set
  /// — replicated servlet containers in a sync configuration must share one
  /// set, modeling the distributed-lock service a real cluster would need
  /// for cross-JVM critical sections (paper §7).
  ServletEngine(sim::Simulation& simulation, net::Network& network, net::Machine& webMachine,
                net::Machine& engineMachine, DbCluster& db, SqlBusinessLogic& logic,
                bool syncLocking, const CostModel& cost, std::uint64_t seed,
                sim::NamedMutexSet* sharedMonitors = nullptr)
      : sim_(simulation), net_(network), web_(webMachine), engine_(engineMachine),
        colocated_(&engineMachine == &webMachine), db_(db), logic_(logic),
        syncLocking_(syncLocking), cost_(cost), monitors_(simulation),
        activeMonitors_(sharedMonitors != nullptr ? sharedMonitors : &monitors_),
        rng_(sim::deriveSeed(seed, /*tag=*/0x70a)) {}

  sim::Task<Page> generate(const Request& request) override {
    trace::SpanScope servletSpan(sim_, "servlet");
    // The web side of the exchange runs on whichever replica took the
    // request; a co-located engine shares that machine, a dedicated engine
    // is this instance's own.
    net::Machine& web = request.web != nullptr ? *request.web : web_;
    net::Machine& engine = colocated_ ? web : engine_;
    const bool remote = !colocated_;

    // Web server side of the AJP12 dispatch.
    co_await web.compute(sim::fromMicros(cost_.ajpPerRequestUs));
    if (remote) co_await net_.send(web, engine, cost_.ajpRequestBytes);

    // Servlet container side.
    co_await engine.compute(
        sim::fromMicros(cost_.ajpPerRequestUs + cost_.servletRequestUs));

    DbSession db(sim_, net_, engine, db_, DriverKind::Jdbc, cost_);
    AppContext ctx{sim_, engine, db,
                   syncLocking_ ? LockStrategy::AppSync : LockStrategy::DatabaseLocks,
                   activeMonitors_, rng_, cost_};
    Page page = co_await logic_.invoke(request.interaction, ctx, *request.session);
    page.queryCount += static_cast<int>(db.statements());
    page.dataBytes += db.resultBytes();

    // Page generation in the JVM plus the engine's side of relaying the
    // dynamic content back over AJP.
    co_await engine.compute(sim::fromMicros(
        (cost_.servletPerHtmlByteUs + cost_.ajpPerByteUs) *
        static_cast<double>(page.htmlBytes)));
    if (remote) co_await net_.send(engine, web, page.htmlBytes + cost_.ajpRequestBytes);
    // Web server's side of consuming the AJP stream.
    co_await web.compute(sim::fromMicros(
        cost_.ajpPerByteUs * static_cast<double>(page.htmlBytes)));
    co_return page;
  }

  sim::NamedMutexSet& monitors() noexcept { return *activeMonitors_; }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  net::Machine& web_;     // fallback when the request carries no replica
  net::Machine& engine_;
  bool colocated_;
  DbCluster& db_;
  SqlBusinessLogic& logic_;
  bool syncLocking_;
  const CostModel& cost_;
  sim::NamedMutexSet monitors_;
  sim::NamedMutexSet* activeMonitors_;
  sim::Rng rng_;
};

}  // namespace mwsim::mw
