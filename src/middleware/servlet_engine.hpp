#pragma once

#include "middleware/application.hpp"
#include "middleware/db_session.hpp"
#include "trace/scope.hpp"

namespace mwsim::mw {

/// Tomcat-style servlet engine reached from the web server over AJP12.
///
/// The engine may run on the web server machine (separate JVM process,
/// same CPU) or on a dedicated machine (AJP crosses the LAN). With
/// `syncLocking` enabled the application's critical sections hold Java
/// monitors in this JVM instead of issuing LOCK TABLES — the paper's
/// "(sync)" configurations.
class ServletEngine final : public DynamicContentGenerator {
 public:
  ServletEngine(sim::Simulation& simulation, net::Network& network, net::Machine& webMachine,
                net::Machine& engineMachine, DatabaseServer& dbServer, SqlBusinessLogic& logic,
                bool syncLocking, const CostModel& cost, std::uint64_t seed)
      : sim_(simulation), net_(network), web_(webMachine), engine_(engineMachine),
        dbServer_(dbServer), logic_(logic), syncLocking_(syncLocking), cost_(cost),
        monitors_(simulation), rng_(sim::deriveSeed(seed, /*tag=*/0x70a)) {}

  sim::Task<Page> generate(const Request& request) override {
    trace::SpanScope servletSpan(sim_, "servlet");
    const bool remote = &engine_ != &web_;

    // Web server side of the AJP12 dispatch.
    co_await web_.compute(sim::fromMicros(cost_.ajpPerRequestUs));
    if (remote) co_await net_.send(web_, engine_, cost_.ajpRequestBytes);

    // Servlet container side.
    co_await engine_.compute(
        sim::fromMicros(cost_.ajpPerRequestUs + cost_.servletRequestUs));

    DbSession db(sim_, net_, engine_, dbServer_, DriverKind::Jdbc, cost_);
    AppContext ctx{sim_, engine_, db,
                   syncLocking_ ? LockStrategy::AppSync : LockStrategy::DatabaseLocks,
                   &monitors_, rng_, cost_};
    Page page = co_await logic_.invoke(request.interaction, ctx, *request.session);
    page.queryCount += static_cast<int>(db.statements());
    page.dataBytes += db.resultBytes();

    // Page generation in the JVM plus the engine's side of relaying the
    // dynamic content back over AJP.
    co_await engine_.compute(sim::fromMicros(
        (cost_.servletPerHtmlByteUs + cost_.ajpPerByteUs) *
        static_cast<double>(page.htmlBytes)));
    if (remote) co_await net_.send(engine_, web_, page.htmlBytes + cost_.ajpRequestBytes);
    // Web server's side of consuming the AJP stream.
    co_await web_.compute(sim::fromMicros(
        cost_.ajpPerByteUs * static_cast<double>(page.htmlBytes)));
    co_return page;
  }

  sim::NamedMutexSet& monitors() noexcept { return monitors_; }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  net::Machine& web_;
  net::Machine& engine_;
  DatabaseServer& dbServer_;
  SqlBusinessLogic& logic_;
  bool syncLocking_;
  const CostModel& cost_;
  sim::NamedMutexSet monitors_;
  sim::Rng rng_;
};

}  // namespace mwsim::mw
