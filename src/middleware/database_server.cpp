#include "middleware/database_server.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "trace/scope.hpp"

namespace mwsim::mw {

namespace {

/// Tables a statement touches, with the lock mode it needs.
struct TableLockNeed {
  std::string table;
  bool write;
};

std::vector<TableLockNeed> locksNeeded(const db::Statement& stmt) {
  std::vector<TableLockNeed> out;
  switch (stmt.kind) {
    case db::Statement::Kind::Select:
      out.push_back({stmt.select.from.table, false});
      for (const auto& j : stmt.select.joins) out.push_back({j.table.table, false});
      break;
    case db::Statement::Kind::Insert:
      out.push_back({stmt.insert.table, true});
      break;
    case db::Statement::Kind::Update:
      out.push_back({stmt.update.table, true});
      break;
    case db::Statement::Kind::Delete:
      out.push_back({stmt.del.table, true});
      break;
    default:
      break;
  }
  // Deterministic (sorted) acquisition order; deduplicate keeping the
  // strongest mode.
  std::sort(out.begin(), out.end(),
            [](const TableLockNeed& a, const TableLockNeed& b) { return a.table < b.table; });
  std::vector<TableLockNeed> dedup;
  for (auto& need : out) {
    if (!dedup.empty() && dedup.back().table == need.table) {
      dedup.back().write = dedup.back().write || need.write;
    } else {
      dedup.push_back(std::move(need));
    }
  }
  return dedup;
}

}  // namespace

sim::Task<db::ExecResult> DatabaseServer::Connection::process(
    std::shared_ptr<const db::PlannedStatement> planned, std::vector<db::Value> params) {
  DatabaseServer& srv = server_;
  ++srv.statements_;
  trace::SpanScope dbserverSpan(srv.sim_, "dbserver");
  const db::Statement& ast = planned->stmt();

  if (ast.kind == db::Statement::Kind::LockTables) {
    co_await srv.machine_.compute(sim::fromMicros(
        srv.cost_.dbLockStatementUs +
        srv.cost_.dbLockPerTableUs * static_cast<double>(ast.lockTables.items.size())));
    // MySQL releases any previously held explicit locks when a new
    // LOCK TABLES statement runs.
    explicitLocks_.clear();
    // The whole multi-table acquisition happens under the server's global
    // lock-manager mutex: until every requested lock is granted, no other
    // statement enters the server.
    sim::ResourceHold lockManagerGate = co_await srv.lockManager_.acquire();
    // Sort the requested tables so every connection acquires in the same
    // order (std::map gives us that for free).
    std::map<std::string, bool> wanted;
    for (const auto& item : ast.lockTables.items) {
      bool& w = wanted[item.table];
      w = w || item.write;
    }
    for (const auto& [table, write] : wanted) {
      sim::RwLock& lock = srv.tableLock(table);
      // Keep each co_await as a standalone statement: GCC 12 miscompiles
      // co_await inside conditional expressions (the coroutine suspends and
      // is never resumed).
      sim::LockHold hold;
      if (write) {
        hold = co_await lock.lockWrite();
      } else {
        hold = co_await lock.lockRead();
      }
      explicitLocks_.emplace(table, std::move(hold));
    }
    co_return db::ExecResult{};
  }

  if (ast.kind == db::Statement::Kind::UnlockTables) {
    co_await srv.machine_.compute(sim::fromMicros(
        srv.cost_.dbLockStatementUs +
        srv.cost_.dbLockPerTableUs * static_cast<double>(explicitLocks_.size())));
    explicitLocks_.clear();
    co_return db::ExecResult{};
  }

  // Every ordinary statement passes briefly through the global lock
  // manager; it queues here whenever a LOCK TABLES acquisition is draining.
  // Connections already under LOCK TABLES own their locks and bypass the
  // manager (otherwise a draining acquisition would deadlock against the
  // very section it waits for).
  if (explicitLocks_.empty()) {
    (void)co_await srv.lockManager_.acquire();  // released immediately
  }

  // Implicit per-statement locks for tables not covered by explicit locks.
  std::vector<sim::LockHold> implicit;
  for (const auto& need : locksNeeded(ast)) {
    if (explicitLocks_.contains(need.table)) continue;
    sim::RwLock& lock = srv.tableLock(need.table);
    if (need.write) {
      implicit.push_back(co_await lock.lockWrite());
    } else {
      implicit.push_back(co_await lock.lockRead());
    }
  }

  // Execute against the real engine (instantaneous) via the statement's
  // cached plan, then charge the CPU demand the execution statistics imply,
  // holding the locks throughout.
  if constexpr (obs::kEnabled) {
    // Like the statement cache, plans are cached process-wide per catalog
    // signature; hit/miss is per run (first use in this run = miss).
    if (auto* m = srv.sim_.metrics()) {
      m->recordPlanUse(planned->planFor(srv.database_).get());
    }
  }
  db::ExecResult result = srv.executor_.execute(*planned, params);
  co_await srv.machine_.compute(srv.queryCpuCost(result.stats));
  co_return result;
  // `implicit` holds release here.
}

}  // namespace mwsim::mw
