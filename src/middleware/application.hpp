#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "middleware/app_context.hpp"
#include "middleware/http.hpp"
#include "sim/task.hpp"

namespace mwsim::mw {

/// Per-client-session application state, held where the real systems hold
/// it (PHP session store / servlet HttpSession): user identity, navigation
/// context, and the bookstore's shopping cart.
struct ClientSession {
  std::int64_t userId = -1;
  std::int64_t lastItemId = 0;
  std::int64_t lastCategoryId = 0;
  std::int64_t lastRegionId = 0;
  std::int64_t lastOrderId = 0;
  std::string lastSearch;
  /// Shopping cart id in the database (TPC-W persistent carts).
  std::int64_t cartId = -1;
  /// In-session mirror of the cart: (item id, quantity).
  std::vector<std::pair<std::int64_t, int>> cart;
};

/// Business logic written against explicit SQL — the shared implementation
/// used by the PHP and servlet tiers (the paper keeps the queries identical
/// across both).
class SqlBusinessLogic {
 public:
  virtual ~SqlBusinessLogic() = default;

  /// Runs one interaction and returns the generated page.
  virtual sim::Task<Page> invoke(std::string_view interaction, AppContext& ctx,
                                 ClientSession& session) = 0;
};

/// A tier that turns a request into a page (PHP module, servlet engine, or
/// servlet+EJB pipeline).
class DynamicContentGenerator {
 public:
  virtual ~DynamicContentGenerator() = default;
  virtual sim::Task<Page> generate(const Request& request) = 0;
};

/// Whatever the client farm talks HTTP to: a single web server, or a load
/// balancer fronting several replicas.
class HttpService {
 public:
  virtual ~HttpService() = default;
  /// `request` must stay alive until the returned task completes (callers
  /// co_await immediately; do not pass a temporary — GCC 12 miscompiles
  /// by-value coroutine parameters initialized from braced temporaries).
  virtual sim::Task<InteractionResult> serve(const Request& request) = 0;
};

}  // namespace mwsim::mw
