#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/parser.hpp"
#include "db/plan.hpp"
#include "middleware/cost_model.hpp"
#include "middleware/database_server.hpp"
#include "net/network.hpp"
#include "trace/scope.hpp"

namespace mwsim::mw {

/// Process-wide prepared-statement cache: every distinct SQL string is
/// parsed once (matching how the real drivers cache prepared statements),
/// and the cached entry carries its per-catalog query plans — so the hot
/// path pays planning (name resolution, index selection, join ordering)
/// once per statement, not once per execution.
///
/// Thread-safe: it is the one piece of state shared between concurrently
/// running simulations (parallel sweeps run one run per worker thread).
/// Entries are immutable once inserted; parsing is a pure function of the
/// SQL text and plans are pure functions of (SQL, catalog signature), so
/// cross-thread sharing cannot perturb results.
class StatementCache {
 public:
  std::shared_ptr<const db::PlannedStatement> get(std::string_view sql) {
    {
      std::shared_lock lock(mu_);
      auto it = cache_.find(sql);
      if (it != cache_.end()) return it->second;
    }
    // Parse outside any lock — pure and deterministic; if two threads race
    // on the same new statement, both parses yield equivalent objects and
    // the first insert wins.
    auto stmt = std::make_shared<db::PlannedStatement>(db::parseSql(sql));
    std::unique_lock lock(mu_);
    auto [it, inserted] = cache_.emplace(std::string(sql), std::move(stmt));
    (void)inserted;
    return it->second;
  }

  /// Drops every cached statement (and with it every cached plan). Used by
  /// determinism tests to compare cold-cache and warm-cache runs.
  void clear() {
    std::unique_lock lock(mu_);
    cache_.clear();
  }

  /// Number of cached statements (tests/benches).
  std::size_t size() {
    std::shared_lock lock(mu_);
    return cache_.size();
  }

  static StatementCache& global() {
    static StatementCache instance;
    return instance;
  }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };
  std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const db::PlannedStatement>, Hash, Eq>
      cache_;
};

/// Builds a parameter vector for execute()/query().
///
/// Prefer this over a braced-init-list inside co_await expressions: GCC 12
/// miscompiles list-initialized temporaries in coroutine frames ("array
/// used as initializer"). Named sqlArgs (not `bind`) so ADL on std::string
/// arguments cannot drag in std::bind.
template <typename... Args>
std::vector<db::Value> sqlArgs(Args&&... args) {
  std::vector<db::Value> out;
  out.reserve(sizeof...(args));
  (out.emplace_back(std::forward<Args>(args)), ...);
  return out;
}

/// Which client library talks to the database.
enum class DriverKind {
  NativeMySql,  // PHP's ad hoc native driver: cheap
  Jdbc,         // type 4 JDBC driver, interpreted Java: dearer
};

/// One client-side database session: a driver plus a server connection.
///
/// execute() models the full round trip: driver CPU on the host machine,
/// request over the LAN, server-side locking/CPU/execution, response over
/// the LAN, and driver decode CPU.
class DbSession {
 public:
  DbSession(sim::Simulation& simulation, net::Network& network, net::Machine& host,
            DatabaseServer& server, DriverKind driver, const CostModel& cost)
      : sim_(simulation), net_(network), host_(host), server_(server), driver_(driver),
        cost_(cost), conn_(server.connect()) {}
  DbSession(DbSession&&) = default;
  DbSession(const DbSession&) = delete;
  DbSession& operator=(const DbSession&) = delete;
  ~DbSession() {
    // Teardown safety net: never leave table locks dangling.
    if (conn_) conn_->releaseExplicitLocks();
  }

  sim::Task<db::ExecResult> execute(std::string_view sql,
                                    std::vector<db::Value> params = {}) {
    trace::SpanScope dbSpan(sim_, "db");
    auto stmt = StatementCache::global().get(sql);
    const double perQueryUs =
        driver_ == DriverKind::Jdbc ? cost_.jdbcPerQueryUs : cost_.phpDriverPerQueryUs;
    const double perByteUs =
        driver_ == DriverKind::Jdbc ? cost_.jdbcPerByteUs : cost_.phpDriverPerByteUs;

    co_await host_.compute(sim::fromMicros(perQueryUs));
    co_await sim_.delay(sim::fromMicros(cost_.clientTurnaroundUs));
    co_await net_.send(host_, server_.machine(), cost_.dbRequestBytes + sql.size());
    db::ExecResult result = co_await conn_->process(std::move(stmt), std::move(params));
    co_await net_.send(server_.machine(), host_,
                       cost_.dbResponseBytes + result.stats.resultBytes);
    co_await host_.compute(
        sim::fromMicros(perByteUs * static_cast<double>(result.stats.resultBytes)));
    ++statements_;
    resultBytes_ += result.stats.resultBytes;
    co_return result;
  }

  net::Machine& host() noexcept { return host_; }
  DatabaseServer& server() noexcept { return server_; }

  /// Statements issued through this session (fills Page::queryCount).
  std::uint64_t statements() const noexcept { return statements_; }
  /// Result bytes received through this session (fills Page::dataBytes).
  std::size_t resultBytes() const noexcept { return resultBytes_; }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  net::Machine& host_;
  DatabaseServer& server_;
  DriverKind driver_;
  const CostModel& cost_;
  std::unique_ptr<DatabaseServer::Connection> conn_;
  std::uint64_t statements_ = 0;
  std::size_t resultBytes_ = 0;
};

}  // namespace mwsim::mw
