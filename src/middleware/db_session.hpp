#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/parser.hpp"
#include "db/plan.hpp"
#include "middleware/cost_model.hpp"
#include "middleware/database_server.hpp"
#include "middleware/db_cluster.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "trace/scope.hpp"

namespace mwsim::mw {

/// Process-wide prepared-statement cache: every distinct SQL string is
/// parsed once (matching how the real drivers cache prepared statements),
/// and the cached entry carries its per-catalog query plans — so the hot
/// path pays planning (name resolution, index selection, join ordering)
/// once per statement, not once per execution.
///
/// Thread-safe: it is the one piece of state shared between concurrently
/// running simulations (parallel sweeps run one run per worker thread).
/// Entries are immutable once inserted; parsing is a pure function of the
/// SQL text and plans are pure functions of (SQL, catalog signature), so
/// cross-thread sharing cannot perturb results.
class StatementCache {
 public:
  std::shared_ptr<const db::PlannedStatement> get(std::string_view sql) {
    {
      std::shared_lock lock(mu_);
      auto it = cache_.find(sql);
      if (it != cache_.end()) return it->second;
    }
    // Parse outside any lock — pure and deterministic; if two threads race
    // on the same new statement, both parses yield equivalent objects and
    // the first insert wins.
    auto stmt = std::make_shared<db::PlannedStatement>(db::parseSql(sql));
    std::unique_lock lock(mu_);
    auto [it, inserted] = cache_.emplace(std::string(sql), std::move(stmt));
    (void)inserted;
    return it->second;
  }

  /// Drops every cached statement (and with it every cached plan). Used by
  /// determinism tests to compare cold-cache and warm-cache runs.
  void clear() {
    std::unique_lock lock(mu_);
    cache_.clear();
  }

  /// Number of cached statements (tests/benches).
  std::size_t size() {
    std::shared_lock lock(mu_);
    return cache_.size();
  }

  static StatementCache& global() {
    static StatementCache instance;
    return instance;
  }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };
  std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const db::PlannedStatement>, Hash, Eq>
      cache_;
};

/// Builds a parameter vector for execute()/query().
///
/// Prefer this over a braced-init-list inside co_await expressions: GCC 12
/// miscompiles list-initialized temporaries in coroutine frames ("array
/// used as initializer"). Named sqlArgs (not `bind`) so ADL on std::string
/// arguments cannot drag in std::bind.
template <typename... Args>
std::vector<db::Value> sqlArgs(Args&&... args) {
  std::vector<db::Value> out;
  out.reserve(sizeof...(args));
  (out.emplace_back(std::forward<Args>(args)), ...);
  return out;
}

/// Which client library talks to the database.
enum class DriverKind {
  NativeMySql,  // PHP's ad hoc native driver: cheap
  Jdbc,         // type 4 JDBC driver, interpreted Java: dearer
};

/// One client-side database session: a driver plus a server connection per
/// backend.
///
/// execute() models the full round trip: driver CPU on the host machine,
/// request over the LAN, server-side locking/CPU/execution, response over
/// the LAN, and driver decode CPU. Against a single server the session is
/// exactly the legacy one-connection round trip; against a replicated
/// DbCluster the driver routes reads per the cluster policy and applies
/// writes to every backend before acknowledging (see DbCluster).
class DbSession {
 public:
  DbSession(sim::Simulation& simulation, net::Network& network, net::Machine& host,
            DatabaseServer& server, DriverKind driver, const CostModel& cost)
      : sim_(simulation), net_(network), host_(host), server_(&server), driver_(driver),
        cost_(cost) {
    conns_.push_back(server.connect());
  }
  DbSession(sim::Simulation& simulation, net::Network& network, net::Machine& host,
            DbCluster& cluster, DriverKind driver, const CostModel& cost)
      : sim_(simulation), net_(network), host_(host), server_(&cluster.primary()),
        driver_(driver), cost_(cost) {
    if (cluster.size() > 1) {
      cluster_ = &cluster;
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        conns_.push_back(cluster.backend(i).connect());
      }
    } else {
      // Size-1 clusters take the legacy single-server path so canned
      // topologies stay event-identical to the hard-coded construction.
      conns_.push_back(cluster.primary().connect());
    }
  }
  DbSession(DbSession&&) = default;
  DbSession(const DbSession&) = delete;
  DbSession& operator=(const DbSession&) = delete;
  ~DbSession() {
    // Teardown safety net: never leave table locks dangling.
    for (auto& conn : conns_) {
      if (conn) conn->releaseExplicitLocks();
    }
  }

  sim::Task<db::ExecResult> execute(std::string_view sql,
                                    std::vector<db::Value> params = {}) {
    trace::SpanScope dbSpan(sim_, "db");
    auto stmt = StatementCache::global().get(sql);
    if constexpr (obs::kEnabled) {
      // The cache itself is process-global (shared across sweep workers),
      // so hit/miss is counted per run: first use of a statement in this
      // run is the miss. See MetricsRegistry::recordStatementUse.
      if (auto* m = sim_.metrics()) m->recordStatementUse(stmt.get());
    }
    const double perQueryUs =
        driver_ == DriverKind::Jdbc ? cost_.jdbcPerQueryUs : cost_.phpDriverPerQueryUs;
    const double perByteUs =
        driver_ == DriverKind::Jdbc ? cost_.jdbcPerByteUs : cost_.phpDriverPerByteUs;

    co_await host_.compute(sim::fromMicros(perQueryUs));
    co_await sim_.delay(sim::fromMicros(cost_.clientTurnaroundUs));
    db::ExecResult result;
    if (cluster_ == nullptr) {
      co_await net_.send(host_, server_->machine(), cost_.dbRequestBytes + sql.size());
      result = co_await conns_[0]->process(std::move(stmt), std::move(params));
      co_await net_.send(server_->machine(), host_,
                         cost_.dbResponseBytes + result.stats.resultBytes);
    } else {
      result = co_await clusterProcess(std::move(stmt), sql.size(), std::move(params));
    }
    co_await host_.compute(
        sim::fromMicros(perByteUs * static_cast<double>(result.stats.resultBytes)));
    ++statements_;
    resultBytes_ += result.stats.resultBytes;
    co_return result;
  }

  net::Machine& host() noexcept { return host_; }
  /// The primary backend (catalog/content identical on every backend).
  DatabaseServer& server() noexcept { return *server_; }

  /// Statements issued through this session (fills Page::queryCount).
  std::uint64_t statements() const noexcept { return statements_; }
  /// Result bytes received through this session (fills Page::dataBytes).
  std::size_t resultBytes() const noexcept { return resultBytes_; }

 private:
  /// Replicated round trip (cluster size > 1).
  sim::Task<db::ExecResult> clusterProcess(std::shared_ptr<const db::PlannedStatement> stmt,
                                           std::size_t sqlBytes,
                                           std::vector<db::Value> params) {
    DbCluster& cluster = *cluster_;
    const db::Statement::Kind kind = stmt->stmt().kind;
    const std::size_t requestBytes = cost_.dbRequestBytes + sqlBytes;

    if (kind == db::Statement::Kind::LockTables ||
        kind == db::Statement::Kind::UnlockTables) {
      // Explicit locking fans out to every backend in fixed backend order;
      // ordered acquisition across connections prevents lock-order
      // deadlocks, just like the sorted table order does within one server.
      db::ExecResult first;
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        co_await net_.send(host_, cluster.backend(i).machine(), requestBytes);
        db::ExecResult r = co_await conns_[i]->process(stmt, params);
        co_await net_.send(cluster.backend(i).machine(), host_,
                           cost_.dbResponseBytes + r.stats.resultBytes);
        if (i == 0) first = std::move(r);
      }
      co_return first;
    }

    const bool underLocks = conns_[0]->holdsExplicitLocks();
    if (kind == db::Statement::Kind::Select) {
      // Reads scale out: route to one backend. Inside a LOCK TABLES section
      // the read must run on a connection that holds the locks; backend 0
      // is that connection's canonical home (all backends hold the locks,
      // pinning keeps the routing deterministic and simple).
      std::size_t target = 0;
      if (!underLocks) {
        target = cluster.policy() == DbPolicy::ShardedByKey
                     ? cluster.shardFor(*stmt, params)
                     : cluster.routeRead();
      }
      DatabaseServer& backend = cluster.backend(target);
      if constexpr (obs::kEnabled) {
        if (auto* m = sim_.metrics()) m->recordBackendRead(target);
      }
      co_await net_.send(host_, backend.machine(), requestBytes);
      db::ExecResult result = co_await conns_[target]->process(std::move(stmt),
                                                               std::move(params));
      co_await net_.send(backend.machine(), host_,
                         cost_.dbResponseBytes + result.stats.resultBytes);
      co_return result;
    }

    // Write: apply on a primary, then mirror to every other backend before
    // acknowledging, so all copies stay identical and later statements are
    // never stale. The cluster-wide write stream makes concurrent writers
    // apply in one global order on every copy; a connection holding
    // explicit table locks skips the stream — its mutual exclusion already
    // comes from LOCK TABLES held on all backends, and waiting for the
    // stream while holding those locks could deadlock against a plain
    // writer holding the stream and waiting for a table lock.
    const std::size_t primaryIdx =
        (cluster.policy() == DbPolicy::ShardedByKey && !underLocks)
            ? cluster.shardFor(*stmt, params)
            : 0;
    DatabaseServer& primary = cluster.backend(primaryIdx);
    sim::ResourceHold stream;
    if (!underLocks) {
      stream = co_await cluster.writeStream()->acquire();
    }
    co_await net_.send(host_, primary.machine(), requestBytes);
    db::ExecResult result = co_await conns_[primaryIdx]->process(stmt, params);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (i == primaryIdx) continue;
      co_await net_.send(primary.machine(), cluster.backend(i).machine(), requestBytes);
      db::ExecResult mirrored = co_await conns_[i]->process(stmt, params);
      (void)mirrored;
      co_await net_.send(cluster.backend(i).machine(), primary.machine(),
                         cost_.dbResponseBytes);
    }
    co_await net_.send(primary.machine(), host_,
                       cost_.dbResponseBytes + result.stats.resultBytes);
    co_return result;
  }

  sim::Simulation& sim_;
  net::Network& net_;
  net::Machine& host_;
  DatabaseServer* server_;
  DbCluster* cluster_ = nullptr;  // null: legacy single-server round trips
  DriverKind driver_;
  const CostModel& cost_;
  std::vector<std::unique_ptr<DatabaseServer::Connection>> conns_;
  std::uint64_t statements_ = 0;
  std::size_t resultBytes_ = 0;
};

}  // namespace mwsim::mw
