#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "middleware/application.hpp"
#include "middleware/db_session.hpp"

namespace mwsim::mw {

/// Container-managed persistence for one facade-call transaction.
///
/// Reproduces what a 2002-vintage CMP engine (JOnAS 2.5) does:
///  * findByPrimaryKey -> `SELECT * FROM t WHERE pk = ?`, cached per tx;
///  * multi-row finders -> one query selecting primary keys, then one
///    activation SELECT **per entity** (the classic N+1 pattern);
///  * every accessor goes through container interposition (CPU on the EJB
///    machine);
///  * dirty entities are written back with one UPDATE per entity at commit.
///
/// This is the mechanism behind both EJB pathologies the paper reports: a
/// flood of short queries into the database (bookstore) and a saturated
/// EJB-server CPU (auction site).
class EntityManager {
 public:
  using Handle = std::size_t;

  EntityManager(net::Machine& ejbMachine, DbSession& db, const CostModel& cost)
      : machine_(ejbMachine), db_(db), cost_(cost) {}
  EntityManager(const EntityManager&) = delete;
  EntityManager& operator=(const EntityManager&) = delete;

  /// findByPrimaryKey. Returns nullopt when the row does not exist.
  sim::Task<std::optional<Handle>> find(const std::string& table, db::Value pk);

  /// Multi-row finder: `finderSql` must select exactly the primary-key
  /// column. Each returned key is then activated with its own SELECT.
  sim::Task<std::vector<Handle>> finder(std::string_view finderSql,
                                        std::vector<db::Value> params,
                                        const std::string& table);

  /// CMP field accessor (data is local after activation; cost is container
  /// interposition on the EJB machine).
  sim::Task<db::Value> get(Handle h, const std::string& column);

  /// CMP field mutator; the row is written back at commit().
  sim::Task<> set(Handle h, const std::string& column, db::Value v);

  /// ejbCreate: inserts immediately, returns the new entity (with its
  /// auto-increment key filled in when `columns` omits the primary key).
  sim::Task<Handle> create(const std::string& table, std::vector<std::string> columns,
                           std::vector<db::Value> values);

  /// Removes an entity (DELETE) — ejbRemove.
  sim::Task<> remove(Handle h);

  /// Container commit: one UPDATE per dirty entity.
  sim::Task<> commit();

  /// Result-set bytes pulled from the database in this transaction (sizes
  /// the RMI reply payload).
  std::size_t dataBytes() const noexcept { return dataBytes_; }
  std::uint64_t beanOps() const noexcept { return beanOps_; }
  std::uint64_t statementsIssued() const noexcept { return statements_; }

 private:
  struct Entity {
    std::string table;
    db::Value pk;
    std::vector<std::string> columns;
    std::vector<db::Value> values;
    std::vector<bool> dirty;
    bool removed = false;
  };

  sim::Task<> chargeBeanOp() {
    ++beanOps_;
    co_await machine_.compute(sim::fromMicros(cost_.ejbBeanOpUs));
  }
  sim::Task<db::ExecResult> cmpQuery(std::string_view sql, std::vector<db::Value> params) {
    ++statements_;
    co_await machine_.compute(sim::fromMicros(cost_.ejbCmpStatementUs));
    db::ExecResult r = co_await db_.execute(sql, std::move(params));
    dataBytes_ += r.stats.resultBytes;
    co_return r;
  }

  const std::string& pkColumn(const std::string& table) const;
  std::size_t columnIndex(const Entity& e, const std::string& column) const;
  sim::Task<std::optional<Handle>> activate(const std::string& table, db::Value pk);

  net::Machine& machine_;
  DbSession& db_;
  const CostModel& cost_;
  std::vector<Entity> entities_;
  // (table, pk) -> handle: per-transaction identity cache.
  std::map<std::pair<std::string, std::string>, Handle> cache_;
  std::size_t dataBytes_ = 0;
  std::uint64_t beanOps_ = 0;
  std::uint64_t statements_ = 0;
};

/// Everything a session-facade method gets from the container.
struct EjbContext {
  sim::Simulation& sim;
  net::Machine& host;  // the EJB server machine
  EntityManager& em;
  DbSession& db;  // bean-managed escape hatch (rare)
  sim::Rng& rng;
  const CostModel& cost;

  sim::Task<> compute(double micros) { return host.compute(sim::fromMicros(micros)); }
};

/// Business logic written as session-facade methods over entity beans.
class EjbBusinessLogic {
 public:
  virtual ~EjbBusinessLogic() = default;
  virtual sim::Task<Page> invoke(std::string_view interaction, EjbContext& ctx,
                                 ClientSession& session) = 0;
};

/// The paper's Ws-Servlet-EJB-DB pipeline: web server --AJP--> servlet
/// (presentation) --RMI--> EJB server (session facade + CMP entity beans)
/// --JDBC--> database. One coarse-grained facade call per interaction
/// (session facade pattern, paper Figure 3).
class EjbGenerator final : public DynamicContentGenerator {
 public:
  /// Replica-aware form: the servlet rotates its RMI calls over the EJB
  /// machines (the stubs' round-robin cluster view).
  EjbGenerator(sim::Simulation& simulation, net::Network& network, net::Machine& webMachine,
               net::Machine& servletMachine, std::vector<net::Machine*> ejbMachines,
               DbCluster& db, EjbBusinessLogic& logic, const CostModel& cost,
               std::uint64_t seed)
      : sim_(simulation), net_(network), web_(webMachine), servlet_(servletMachine),
        ejbMachines_(std::move(ejbMachines)), db_(db), logic_(logic), cost_(cost),
        rng_(sim::deriveSeed(seed, /*tag=*/0xe1b)) {}

  /// Single-EJB-machine convenience (the paper's Ws-Servlet-EJB-DB).
  EjbGenerator(sim::Simulation& simulation, net::Network& network, net::Machine& webMachine,
               net::Machine& servletMachine, net::Machine& ejbMachine, DbCluster& db,
               EjbBusinessLogic& logic, const CostModel& cost, std::uint64_t seed)
      : EjbGenerator(simulation, network, webMachine, servletMachine,
                     std::vector<net::Machine*>{&ejbMachine}, db, logic, cost, seed) {}

  sim::Task<Page> generate(const Request& request) override;

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  net::Machine& web_;  // fallback when the request carries no replica
  net::Machine& servlet_;
  std::vector<net::Machine*> ejbMachines_;
  std::size_t nextEjb_ = 0;
  DbCluster& db_;
  EjbBusinessLogic& logic_;
  const CostModel& cost_;
  sim::Rng rng_;
};

}  // namespace mwsim::mw
