#include "middleware/db_cluster.hpp"

#include <stdexcept>
#include <string>

namespace mwsim::mw {

DbCluster::DbCluster(sim::Simulation& simulation, const CostModel& cost, DbPolicy policy,
                     std::vector<net::Machine*> machines,
                     std::vector<db::Database> databases)
    : databases_(std::move(databases)), policy_(policy) {
  if (machines.empty() || machines.size() != databases_.size()) {
    throw std::invalid_argument("DbCluster needs one database clone per machine");
  }
  owned_.reserve(databases_.size());
  backends_.reserve(databases_.size());
  for (std::size_t i = 0; i < databases_.size(); ++i) {
    owned_.push_back(
        std::make_unique<DatabaseServer>(simulation, *machines[i], databases_[i], cost));
    backends_.push_back(owned_.back().get());
  }
  if (backends_.size() > 1) {
    writeStream_ = std::make_unique<sim::Mutex>(simulation, 1, "dbcluster.writestream",
                                                trace::Category::LockWait);
  }
}

namespace {

/// FNV-1a, fixed here rather than std::hash so shard routing is identical
/// across platforms and standard libraries (determinism contract).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::size_t DbCluster::shardFor(const db::PlannedStatement& stmt,
                                const std::vector<db::Value>& params) const {
  if (!params.empty() && !params.front().isNull()) {
    return static_cast<std::size_t>(fnv1a(params.front().toDisplayString()) %
                                    backends_.size());
  }
  return static_cast<std::size_t>(fnv1a(stmt.stmt().text) % backends_.size());
}

}  // namespace mwsim::mw
