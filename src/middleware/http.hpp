#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace mwsim::net {
class Machine;
}

namespace mwsim::mw {

struct ClientSession;

/// One dynamic-content HTTP request as seen by the web server.
struct Request {
  std::string interaction;
  ClientSession* session = nullptr;
  /// The web-server machine serving this request. Filled in by
  /// WebServer::serve before the generator runs, so content generators
  /// shared across web replicas charge the web-side work (AJP relay, PHP
  /// interpretation) to the replica that actually took the request.
  net::Machine* web = nullptr;
  /// Absolute virtual-time deadline, or negative for none. Set by the load
  /// balancer when the scenario configures a request timeout; checked at the
  /// web server's scheduling checkpoints (see WebServer::checkpoint).
  sim::SimTime deadline = -1;
};

/// The page produced by the dynamic content generator.
struct Page {
  /// Bytes of generated dynamic HTML.
  std::size_t htmlBytes = 0;
  /// Embedded images the client fetches with the page (thumbnails, buttons).
  int imageCount = 0;
  /// Total bytes of those images, served statically by the web server.
  std::size_t imageBytes = 0;
  /// Raw result-data bytes the business tier produced (used to size the
  /// RMI payload between EJB server and servlet).
  std::size_t dataBytes = 0;
  /// True for interactions served over SSL (purchases).
  bool secure = false;
  /// Number of database statements the interaction issued.
  int queryCount = 0;
  /// True when the generator failed and this is the web server's error page.
  bool error = false;
};

/// Outcome of one complete interaction, as observed by the client emulator.
struct InteractionResult {
  Page page;
  std::size_t totalResponseBytes = 0;
};

}  // namespace mwsim::mw
