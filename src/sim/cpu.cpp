#include "sim/cpu.hpp"

#include <algorithm>
#include <vector>

namespace mwsim::sim {

namespace {
// Tolerance when comparing virtual times: one simulated nanosecond of
// service at full rate.
constexpr double kVEpsilon = 2e-9;
}  // namespace

void CpuResource::advance() noexcept {
  const SimTime now = sim_.now();
  // Both integrals already folded up to this instant: nothing can accrue
  // over a zero-length interval, so the early-out is bit-identical.
  if (now == lastUpdate_ && now == lastIntegralUpdate_) return;
  busyCoreSeconds();  // folds busy time up to now into the integral
  const double dt = toSeconds(now - lastUpdate_);
  if (dt > 0.0) v_ += dt * rate();
  lastUpdate_ = now;
}

double CpuResource::busyCoreSeconds() const noexcept {
  const SimTime now = sim_.now();
  const double dt = toSeconds(now - lastIntegralUpdate_);
  if (dt > 0.0) {
    const int busy = jobs_.size() < static_cast<std::size_t>(cores_)
                         ? static_cast<int>(jobs_.size())
                         : cores_;
    busyIntegral_ += dt * busy;
    if constexpr (obs::kEnabled) {
      // The job count is constant between event dispatches, so folding at
      // the same instants as the busy integral makes this exact.
      queueIntegral_ += dt * static_cast<double>(jobs_.size());
    }
    lastIntegralUpdate_ = now;
  }
  return busyIntegral_;
}

void CpuResource::addJob(Duration work, std::coroutine_handle<> h) {
  advance();
  Job job{h, nullptr, work, sim_.now()};
  if constexpr (trace::kEnabled) {
    job.span = sim_.currentSpan();
    if (job.span != nullptr) sim_.setCurrentSpan(nullptr);  // cleared at suspension
  }
  jobs_.push_back(PendingJob{v_ + toSeconds(work), jobSeq_++, job});
  std::push_heap(jobs_.begin(), jobs_.end(), PendingJob::later);
  scheduleNextCompletion();
}

void CpuResource::scheduleNextCompletion() {
  if (jobs_.empty()) {
    completionSeq_ = kNoCompletion;
    return;
  }
  const double target = jobs_.front().vfinish;
  const double r = rate();
  assert(r > 0.0);
  // NB: keep this exact division sequence — rewriting it as `* n / cores`
  // changes double rounding, which shifts completion event times by a
  // nanosecond and breaks bit-identical replay of seeded experiments.
  double dtSeconds = (target - v_) / r;
  if (dtSeconds < 0.0) dtSeconds = 0.0;
  // Round up one ns so v_ is guaranteed to have passed the target when the
  // completion event fires.
  const Duration dt = fromSeconds(dtSeconds) + 1;
  completionSeq_ = sim_.scheduleCall(
      dt,
      [](void* self, std::uint64_t seq) {
        static_cast<CpuResource*>(self)->onCompletionEvent(seq);
      },
      this);
}

void CpuResource::onCompletionEvent(std::uint64_t seq) {
  if (seq != completionSeq_) return;  // superseded by a later arrival/departure
  advance();
  // A resumed job may reenter this CPU (consume again completes 0-work
  // jobs inline via a 1 ns event), so the batch buffer must be per-call;
  // the pool keeps steady-state completions allocation-free anyway.
  std::vector<Job> finished = takeScratch();
  while (!jobs_.empty() && jobs_.front().vfinish <= v_ + kVEpsilon) {
    std::pop_heap(jobs_.begin(), jobs_.end(), PendingJob::later);
    finished.push_back(jobs_.back().job);
    jobs_.pop_back();
  }
  completed_ += finished.size();
  if constexpr (obs::kEnabled) {
    for (const Job& job : finished) {
      sojournSeconds_ += toSeconds(sim_.now() - job.enqueued);
    }
  }
  scheduleNextCompletion();
  for (const Job& job : finished) {
    if constexpr (trace::kEnabled) {
      if (job.span != nullptr) {
        const Duration elapsed = sim_.now() - job.enqueued;
        // Batched completions within kVEpsilon (and the +1ns event round-up)
        // can make elapsed differ slightly from the ideal; clamp so service
        // never exceeds either demand or elapsed, and the split stays exact.
        const Duration service = elapsed < job.work ? elapsed : job.work;
        job.span->add(trace::Category::CpuService, service);
        job.span->add(trace::Category::CpuQueue, elapsed - service);
        sim_.setCurrentSpan(job.span);
        job.handle.resume();
        sim_.setCurrentSpan(nullptr);
        continue;
      }
    }
    job.handle.resume();
  }
  returnScratch(std::move(finished));
}

std::vector<CpuResource::Job> CpuResource::takeScratch() {
  if (scratchPool_.empty()) return {};
  std::vector<Job> v = std::move(scratchPool_.back());
  scratchPool_.pop_back();
  return v;
}

void CpuResource::returnScratch(std::vector<Job> v) {
  v.clear();
  scratchPool_.push_back(std::move(v));
}

}  // namespace mwsim::sim
