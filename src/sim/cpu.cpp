#include "sim/cpu.hpp"

#include <vector>

namespace mwsim::sim {

namespace {
// Tolerance when comparing virtual times: one simulated nanosecond of
// service at full rate.
constexpr double kVEpsilon = 2e-9;
}  // namespace

void CpuResource::advance() noexcept {
  const SimTime now = sim_.now();
  busyCoreSeconds();  // folds busy time up to now into the integral
  const double dt = toSeconds(now - lastUpdate_);
  if (dt > 0.0) v_ += dt * rate();
  lastUpdate_ = now;
}

double CpuResource::busyCoreSeconds() const noexcept {
  const SimTime now = sim_.now();
  const double dt = toSeconds(now - lastIntegralUpdate_);
  if (dt > 0.0) {
    const int busy = jobs_.size() < static_cast<std::size_t>(cores_)
                         ? static_cast<int>(jobs_.size())
                         : cores_;
    busyIntegral_ += dt * busy;
    lastIntegralUpdate_ = now;
  }
  return busyIntegral_;
}

void CpuResource::addJob(Duration work, std::coroutine_handle<> h) {
  advance();
  Job job{h, nullptr, work, sim_.now()};
  if constexpr (trace::kEnabled) {
    job.span = sim_.currentSpan();
    if (job.span != nullptr) sim_.setCurrentSpan(nullptr);  // cleared at suspension
  }
  jobs_.emplace(v_ + toSeconds(work), job);
  scheduleNextCompletion();
}

void CpuResource::scheduleNextCompletion() {
  ++epoch_;
  if (jobs_.empty()) return;
  const double target = jobs_.begin()->first;
  const double r = rate();
  assert(r > 0.0);
  double dtSeconds = (target - v_) / r;
  if (dtSeconds < 0.0) dtSeconds = 0.0;
  // Round up one ns so v_ is guaranteed to have passed the target when the
  // completion event fires.
  const Duration dt = fromSeconds(dtSeconds) + 1;
  sim_.schedule(dt, [this, e = epoch_] { onCompletionEvent(e); });
}

void CpuResource::onCompletionEvent(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // superseded by a later arrival/departure
  advance();
  std::vector<Job> finished;
  while (!jobs_.empty() && jobs_.begin()->first <= v_ + kVEpsilon) {
    finished.push_back(jobs_.begin()->second);
    jobs_.erase(jobs_.begin());
  }
  completed_ += finished.size();
  scheduleNextCompletion();
  for (const Job& job : finished) {
    if constexpr (trace::kEnabled) {
      if (job.span != nullptr) {
        const Duration elapsed = sim_.now() - job.enqueued;
        // Batched completions within kVEpsilon (and the +1ns event round-up)
        // can make elapsed differ slightly from the ideal; clamp so service
        // never exceeds either demand or elapsed, and the split stays exact.
        const Duration service = elapsed < job.work ? elapsed : job.work;
        job.span->add(trace::Category::CpuService, service);
        job.span->add(trace::Category::CpuQueue, elapsed - service);
        sim_.setCurrentSpan(job.span);
        job.handle.resume();
        sim_.setCurrentSpan(nullptr);
        continue;
      }
    }
    job.handle.resume();
  }
}

}  // namespace mwsim::sim
