#include "sim/simulation.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace mwsim::sim {

namespace detail {

namespace {
/// Drives a user Task to completion inside a sim-owned frame.
RootTask driveRoot(Task<> task) { co_await std::move(task); }
}  // namespace

void RootPromise::FinalAwaiter::await_suspend(
    std::coroutine_handle<RootPromise> h) const noexcept {
  RootPromise& p = h.promise();
  assert(p.sim != nullptr);
  // Removes the root from the registry and destroys this (suspended) frame.
  p.sim->onRootFinished(p.id);
}

void RootPromise::unhandled_exception() noexcept {
  if (sim) sim->onRootException(std::current_exception());
}

}  // namespace detail

Simulation::Simulation(std::uint64_t seed)
    : seed_(seed), rng_(deriveSeed(seed, /*tag=*/0)) {}

Simulation::~Simulation() { shutdown(); }

void Simulation::schedule(Duration delay, std::function<void()> fn, trace::Span* span) {
  assert(delay >= 0 && "cannot schedule events in the past");
  Event ev;
  ev.time = now_ + delay;
  ev.seq = nextSeq_++;
  ev.setSpanKind(span, Event::Kind::Closure);
  ev.pay.closure = queue_.storeClosure(std::move(fn));
  queue_.push(ev);
  if (mcActive()) [[unlikely]] mcRecordMeta(ev.seq);
}

void Simulation::spawn(Task<> task) {
  detail::RootTask root = detail::driveRoot(std::move(task));
  auto handle = root.handle;
  const std::uint64_t id = nextRootId_++;
  handle.promise().sim = this;
  handle.promise().id = id;
  roots_.emplace(id, handle);
  // Actor ids are 1 + root id so 0 can mean "no actor" in descriptors.
  if (mcActive()) [[unlikely]] mcTagNextEvent(id + 1, 0, mc::Op::Spawn);
  scheduleResume(0, handle);
}

void Simulation::onRootFinished(std::uint64_t id) {
  auto it = roots_.find(id);
  assert(it != roots_.end());
  auto handle = it->second;
  roots_.erase(it);
  handle.destroy();
}

void Simulation::runPayload(const Event& ev) {
  switch (ev.kind()) {
    case Event::Kind::Resume:
      ev.pay.handle.resume();
      break;
    case Event::Kind::Call:
      ev.pay.call.fn(ev.pay.call.ctx, ev.seq);
      break;
    case Event::Kind::Closure:
      queue_.takeClosure(ev.pay.closure)();
      break;
  }
}

void Simulation::dispatchOne() {
  const bool mc = mcActive();
  const Event ev = mc ? mcPop() : queue_.pop();
  assert(ev.time >= now_);
#ifndef NDEBUG
  // Dispatch-order guard: with no strategy installed, (time, seq) must be
  // strictly increasing. A choice strategy legitimately reorders seq within
  // one timestamp, so under one only time monotonicity can be asserted.
  assert((mcStrategy_ != nullptr ? ev.time >= lastDispatchTime_
                                 : (ev.time > lastDispatchTime_ ||
                                    (ev.time == lastDispatchTime_ &&
                                     ev.seq > lastDispatchSeq_))) &&
         "event dispatched out of order or twice");
  lastDispatchTime_ = ev.time;
  lastDispatchSeq_ = ev.seq;
#endif
  now_ = ev.time;
  ++eventsProcessed_;
  if (mc) [[unlikely]] mcBeginDispatch(ev);
  // Ambient-span contract: currentSpan_ is null between events (every
  // suspension point clears it after capturing), so only traced events —
  // a small minority even in traced runs — pay the publish/clear stores.
  if constexpr (trace::kEnabled) {
    if (trace::Span* span = ev.span(); span != nullptr) {
      currentSpan_ = span;
      runPayload(ev);
      currentSpan_ = nullptr;
      if (mc) [[unlikely]] mcEndDispatch();
      return;
    }
  }
  runPayload(ev);
  if (mc) [[unlikely]] mcEndDispatch();
}

void Simulation::mcRecordMeta(std::uint64_t seq) {
  mc::Alternative a = mcTagArmed_
                          ? mcTag_
                          : mc::Alternative{mcCurrentActor_, 0, mc::Op::Other};
  mcTagArmed_ = false;
  mcMeta_.insert_or_assign(seq, a);
}

/// Choice-aware pop: removes the whole set of events tied at the earliest
/// timestamp (they all live in the near_ heap after advance(), so the set is
/// complete), lets the strategy pick one, and re-pushes the rest. Re-pushing
/// at the last popped time is legal — push() only requires non-decreasing
/// times — and they land back in near_ ahead of the migration frontier.
Event Simulation::mcPop() {
  if (mcStrategy_ == nullptr) return queue_.pop();
  mcTies_.clear();
  queue_.popTies(mcTies_);
  std::size_t pick = 0;
  if (mcTies_.size() > 1) {
    mcAlts_.clear();
    for (const Event& e : mcTies_) {
      auto it = mcMeta_.find(e.seq);
      mcAlts_.push_back(it != mcMeta_.end() ? it->second : mc::Alternative{});
    }
    pick = mcStrategy_->choose(mc::ChoiceKind::EventTieBreak, mcAlts_.data(),
                               mcAlts_.size());
    assert(pick < mcTies_.size());
  }
  const Event ev = mcTies_[pick];
  for (std::size_t i = 0; i < mcTies_.size(); ++i) {
    if (i != pick) queue_.push(mcTies_[i]);
  }
  return ev;
}

void Simulation::mcBeginDispatch(const Event& ev) {
  mc::Alternative t{};
  if (auto it = mcMeta_.find(ev.seq); it != mcMeta_.end()) {
    t = it->second;
    mcMeta_.erase(it);
  }
  mcCurrentActor_ = t.actor;
  if (mcObserver_ != nullptr) mcObserver_->onDispatchStart(t);
}

void Simulation::mcEndDispatch() {
  if (mcObserver_ != nullptr) mcObserver_->onDispatchEnd();
  mcCurrentActor_ = 0;
}

void Simulation::maybeRethrow() {
  if (pendingError_) {
    std::exception_ptr e = std::exchange(pendingError_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulation::run() {
  while (!queue_.empty()) {
    dispatchOne();
    maybeRethrow();
  }
}

void Simulation::runUntil(SimTime t) {
  while (!queue_.empty() && queue_.nextTime() <= t) {
    dispatchOne();
    maybeRethrow();
  }
  if (t > now_) now_ = t;
}

void Simulation::shutdown() {
  // Destroying a frame may (via destructors) finish other roots; iterate on a
  // drained copy and re-check membership through the live map.
  while (!roots_.empty()) {
    auto it = roots_.begin();
    auto handle = it->second;
    roots_.erase(it);
    handle.destroy();
  }
  // Drop queued events; they may reference destroyed frames.
  queue_.clear();
}

}  // namespace mwsim::sim
