#include "sim/simulation.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace mwsim::sim {

namespace detail {

namespace {
/// Drives a user Task to completion inside a sim-owned frame.
RootTask driveRoot(Task<> task) { co_await std::move(task); }
}  // namespace

void RootPromise::FinalAwaiter::await_suspend(
    std::coroutine_handle<RootPromise> h) const noexcept {
  RootPromise& p = h.promise();
  assert(p.sim != nullptr);
  // Removes the root from the registry and destroys this (suspended) frame.
  p.sim->onRootFinished(p.id);
}

void RootPromise::unhandled_exception() noexcept {
  if (sim) sim->onRootException(std::current_exception());
}

}  // namespace detail

Simulation::Simulation(std::uint64_t seed)
    : seed_(seed), rng_(deriveSeed(seed, /*tag=*/0)) {}

Simulation::~Simulation() { shutdown(); }

void Simulation::schedule(Duration delay, std::function<void()> fn, trace::Span* span) {
  assert(delay >= 0 && "cannot schedule events in the past");
  Event ev;
  ev.time = now_ + delay;
  ev.seq = nextSeq_++;
  ev.setSpanKind(span, Event::Kind::Closure);
  ev.pay.closure = queue_.storeClosure(std::move(fn));
  queue_.push(ev);
}

void Simulation::spawn(Task<> task) {
  detail::RootTask root = detail::driveRoot(std::move(task));
  auto handle = root.handle;
  const std::uint64_t id = nextRootId_++;
  handle.promise().sim = this;
  handle.promise().id = id;
  roots_.emplace(id, handle);
  scheduleResume(0, handle);
}

void Simulation::onRootFinished(std::uint64_t id) {
  auto it = roots_.find(id);
  assert(it != roots_.end());
  auto handle = it->second;
  roots_.erase(it);
  handle.destroy();
}

void Simulation::runPayload(const Event& ev) {
  switch (ev.kind()) {
    case Event::Kind::Resume:
      ev.pay.handle.resume();
      break;
    case Event::Kind::Call:
      ev.pay.call.fn(ev.pay.call.ctx, ev.seq);
      break;
    case Event::Kind::Closure:
      queue_.takeClosure(ev.pay.closure)();
      break;
  }
}

void Simulation::dispatchOne() {
  const Event ev = queue_.pop();
  assert(ev.time >= now_);
#ifndef NDEBUG
  assert((ev.time > lastDispatchTime_ ||
          (ev.time == lastDispatchTime_ && ev.seq > lastDispatchSeq_)) &&
         "event dispatched out of order or twice");
  lastDispatchTime_ = ev.time;
  lastDispatchSeq_ = ev.seq;
#endif
  now_ = ev.time;
  ++eventsProcessed_;
  // Ambient-span contract: currentSpan_ is null between events (every
  // suspension point clears it after capturing), so only traced events —
  // a small minority even in traced runs — pay the publish/clear stores.
  if constexpr (trace::kEnabled) {
    if (trace::Span* span = ev.span(); span != nullptr) {
      currentSpan_ = span;
      runPayload(ev);
      currentSpan_ = nullptr;
      return;
    }
  }
  runPayload(ev);
}

void Simulation::maybeRethrow() {
  if (pendingError_) {
    std::exception_ptr e = std::exchange(pendingError_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulation::run() {
  while (!queue_.empty()) {
    dispatchOne();
    maybeRethrow();
  }
}

void Simulation::runUntil(SimTime t) {
  while (!queue_.empty() && queue_.nextTime() <= t) {
    dispatchOne();
    maybeRethrow();
  }
  if (t > now_) now_ = t;
}

void Simulation::shutdown() {
  // Destroying a frame may (via destructors) finish other roots; iterate on a
  // drained copy and re-check membership through the live map.
  while (!roots_.empty()) {
    auto it = roots_.begin();
    auto handle = it->second;
    roots_.erase(it);
    handle.destroy();
  }
  // Drop queued events; they may reference destroyed frames.
  queue_.clear();
}

}  // namespace mwsim::sim
