#include "sim/event_queue.hpp"

#include <algorithm>

#include "trace/span.hpp"

namespace mwsim::sim {

// Event::spanKind packs the Kind into the low 3 bits of the Span pointer.
static_assert(alignof(trace::Span) >= 8);
static_assert(sizeof(Event) == 40);

void EventQueue::pushWheel(const Event& ev) {
  const SimTime t = ev.time;
  assert(t >= cursor_);
  const int level = levelFor(t);
  if (level >= kLevels) {
    heapPush(overflow_, ev);
    return;
  }
  const int shift = shiftFor(level);
  const int idx = static_cast<int>((t >> shift) & kSlotMask);
  buckets_[level][idx].push_back(ev);
  occupied_[level][idx >> 6] |= std::uint64_t{1} << (idx & 63);
  activeLevels_ |= 1u << level;
}

/// First occupied slot index at/after `cur` in circular order on `level`.
/// The level must be non-empty.
int EventQueue::nextOccupiedSlot(int level, int cur) const noexcept {
  const std::uint64_t* occ = occupied_[level];
  const int curWord = cur >> 6;
  const int curBit = cur & 63;
  std::uint64_t word = occ[curWord] & (~std::uint64_t{0} << curBit);
  if (word != 0) return curWord * 64 + std::countr_zero(word);
  for (int i = 1; i < kWords; ++i) {
    const int wi = (curWord + i) & (kWords - 1);
    word = occ[wi];
    if (word != 0) return wi * 64 + std::countr_zero(word);
  }
  // Wrapped all the way around: only bits below curBit in the start word.
  word = occ[curWord];
  assert(word != 0);
  return curWord * 64 + std::countr_zero(word);
}

void EventQueue::advance() {
  assert(near_.empty() && size_ > 0);
  for (;;) {
    // The earliest occupied bucket window across all levels. On equal
    // window start, the *higher* level wins: its bucket is coarser and may
    // hold events from anywhere in the shared window, so it must cascade
    // down before the level-0 bucket at that start can be migrated.
    SimTime best = 0;
    int bestLevel = -1;
    int bestIdx = 0;
    for (std::uint32_t mask = activeLevels_; mask != 0; mask &= mask - 1) {
      const int level = std::countr_zero(mask);
      const int shift = shiftFor(level);
      const int cur = static_cast<int>((cursor_ >> shift) & kSlotMask);
      const int slot = nextOccupiedSlot(level, cur);
      const int dist = (slot - cur) & static_cast<int>(kSlotMask);
      const SimTime slotTime = (((cursor_ >> shift) + dist)) << shift;
      if (bestLevel < 0 || slotTime <= best) {
        best = slotTime;
        bestLevel = level;
        bestIdx = slot;
      }
    }

    if (bestLevel < 0) {
      // Wheel empty: pull the overflow events that now fit under the top
      // level's horizon and retry. Rare — only delays beyond the wheel
      // span (~52 days) ever visit the overflow heap.
      assert(!overflow_.empty());
      const SimTime frontier =
          (overflow_.front().time >> kGranularityBits) << kGranularityBits;
      if (frontier > cursor_) cursor_ = frontier;
      // Refill with the same placement test pushWheel uses, so a pulled
      // event always lands in the wheel (the overflow front itself shares
      // the cursor's level-0 window after the jump above, so the loop
      // always makes progress).
      while (!overflow_.empty() && levelFor(overflow_.front().time) < kLevels) {
        pushWheel(heapPop(overflow_));
      }
      continue;
    }

    std::vector<Event>& bucket = buckets_[bestLevel][bestIdx];
    assert(!bucket.empty());
    std::uint64_t* occ = occupied_[bestLevel];
    occ[bestIdx >> 6] &= ~(std::uint64_t{1} << (bestIdx & 63));
    static_assert(kWords == 4);
    if ((occ[0] | occ[1] | occ[2] | occ[3]) == 0) {
      activeLevels_ &= ~(1u << bestLevel);
    }

    if (bestLevel == 0) {
      // This level-0 window is the earliest anywhere: migrate it wholesale
      // into the dispatch heap and advance the frontier past it.
      cursor_ = best + (SimTime{1} << kGranularityBits);
      near_.swap(bucket);
      std::make_heap(near_.begin(), near_.end(), Event::later);
      return;
    }

    // Cascade a coarser bucket down; its events re-insert at least one
    // level lower (their windows shrink as the cursor catches up), so this
    // terminates.
    if (best > cursor_) cursor_ = best;
    for (const Event& ev : bucket) pushWheel(ev);
    bucket.clear();
  }
}

void EventQueue::popTies(std::vector<Event>& out) {
  assert(size_ > 0);
  if (near_.empty()) advance();
  const SimTime t = near_.front().time;
  while (!near_.empty() && near_.front().time == t) {
    out.push_back(heapPop(near_));
    --size_;
  }
}

void EventQueue::clear() noexcept {
  near_.clear();
  for (auto& level : buckets_) {
    for (auto& bucket : level) bucket.clear();
  }
  for (auto& level : occupied_) {
    for (std::uint64_t& word : level) word = 0;
  }
  activeLevels_ = 0;
  overflow_.clear();
  closures_.clear();
  freeClosureSlots_.clear();
  size_ = 0;
  cursor_ = 0;
}

std::uint32_t EventQueue::storeClosure(std::function<void()> fn) {
  assert(fn != nullptr);
  if (!freeClosureSlots_.empty()) {
    const std::uint32_t slot = freeClosureSlots_.back();
    freeClosureSlots_.pop_back();
    closures_[slot] = std::move(fn);
    return slot;
  }
  closures_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(closures_.size() - 1);
}

std::function<void()> EventQueue::takeClosure(std::uint32_t slot) {
  assert(slot < closures_.size());
  assert(closures_[slot] != nullptr && "closure event dispatched twice");
  std::function<void()> fn = std::move(closures_[slot]);
  closures_[slot] = nullptr;
  freeClosureSlots_.push_back(slot);
  return fn;
}

}  // namespace mwsim::sim
