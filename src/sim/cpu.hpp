#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/enabled.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace mwsim::sim {

/// Processor-sharing CPU with `cores` cores.
///
/// `co_await cpu.consume(work)` charges `work` nanoseconds of CPU demand.
/// All active jobs share the cores equally (each job runs at rate
/// min(1, cores / n)), which is the standard model for a timeslicing OS
/// scheduler under many concurrent requests.
///
/// Implementation uses the classic virtual-time trick: a counter V advances
/// at the common per-job service rate; each job completes when V reaches its
/// arrival V plus its demand, so arrivals/departures cost O(log n).
class CpuResource {
 public:
  CpuResource(Simulation& sim, int cores, std::string name = {})
      : sim_(sim), cores_(cores), name_(std::move(name)) {
    assert(cores > 0);
  }
  CpuResource(const CpuResource&) = delete;
  CpuResource& operator=(const CpuResource&) = delete;

  struct Awaiter {
    CpuResource& cpu;
    Duration work;
    bool await_ready() const noexcept { return work <= 0; }
    void await_suspend(std::coroutine_handle<> h) { cpu.addJob(work, h); }
    void await_resume() const noexcept {}
  };

  /// Per-job bookkeeping. `span`/`enqueued`/`work` exist so that, at
  /// completion, elapsed wall (virtual) time can be split into pure service
  /// (= demand) and processor-sharing slowdown (= queueing) and attributed
  /// to the job's request span.
  struct Job {
    std::coroutine_handle<> handle;
    trace::Span* span = nullptr;
    Duration work = 0;
    SimTime enqueued = 0;
  };

  /// Heap entry: jobs complete in ascending virtual finish time, FIFO on
  /// exactly equal finish (seq is the arrival order, the tie-break the
  /// multimap this replaces provided via insertion order).
  struct PendingJob {
    double vfinish;
    std::uint64_t seq;
    Job job;

    /// Functor (not a function pointer) so the heap algorithms inline it.
    struct Later {
      bool operator()(const PendingJob& a, const PendingJob& b) const noexcept {
        return a.vfinish != b.vfinish ? a.vfinish > b.vfinish : a.seq > b.seq;
      }
    };
    static constexpr Later later = {};
  };

  /// Awaitable that completes after `work` ns of CPU demand has been served.
  Awaiter consume(Duration work) { return Awaiter{*this, work}; }

  int cores() const noexcept { return cores_; }
  int activeJobs() const noexcept { return static_cast<int>(jobs_.size()); }
  const std::string& name() const noexcept { return name_; }

  /// Integral of busy cores over time, in core-seconds (for utilization).
  double busyCoreSeconds() const noexcept;
  std::uint64_t jobsCompleted() const noexcept { return completed_; }

  /// Integral of jobs-in-system over time, in job-seconds: L for a
  /// Little's-law check is this divided by the window length. Folded at
  /// the same instants as the busy integral, so it is exact, not sampled.
  /// Always zero when built with -DMWSIM_METRICS=OFF.
  double jobIntegralSeconds() const noexcept {
    busyCoreSeconds();  // folds both integrals up to now
    return queueIntegral_;
  }
  /// Cumulative sojourn (enqueue -> completion) of completed jobs, in
  /// seconds: W is this divided by jobsCompleted(). Zero when metrics are
  /// compiled out.
  double sojournSeconds() const noexcept { return sojournSeconds_; }

 private:
  friend struct Awaiter;

  void addJob(Duration work, std::coroutine_handle<> h);
  void onCompletionEvent(std::uint64_t seq);
  std::vector<Job> takeScratch();
  void returnScratch(std::vector<Job> v);
  void advance() noexcept;
  double rate() const noexcept {
    const std::size_t n = jobs_.size();
    if (n == 0) return 0.0;
    const double r = static_cast<double>(cores_) / static_cast<double>(n);
    return r < 1.0 ? r : 1.0;
  }
  void scheduleNextCompletion();

  Simulation& sim_;
  int cores_;
  std::string name_;
  // Binary min-heap on (vfinish, seq): the flat, pooled replacement for a
  // node-per-job multimap — arrivals and departures reuse the vector's
  // storage instead of allocating.
  std::vector<PendingJob> jobs_;
  /// Recycled batch buffers for onCompletionEvent — a pool rather than a
  /// single member because resumed jobs can reenter the CPU.
  std::vector<std::vector<Job>> scratchPool_;
  std::uint64_t jobSeq_ = 0;
  double v_ = 0.0;  // virtual per-job service received, in seconds
  SimTime lastUpdate_ = 0;
  mutable double busyIntegral_ = 0.0;  // core-seconds
  mutable SimTime lastIntegralUpdate_ = 0;
  mutable double queueIntegral_ = 0.0;  // job-seconds (metrics builds only)
  double sojournSeconds_ = 0.0;         // metrics builds only
  /// Event seq of the live completion event; any completion event whose
  /// seq differs was superseded by a later arrival/departure and is
  /// ignored at dispatch. Seqs are unique for the simulation's lifetime,
  /// so a stale event can never be mistaken for the live one.
  static constexpr std::uint64_t kNoCompletion = ~std::uint64_t{0};
  std::uint64_t completionSeq_ = kNoCompletion;
  std::uint64_t completed_ = 0;
};

}  // namespace mwsim::sim
