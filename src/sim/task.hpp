#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace mwsim::sim {

/// Lazy, single-threaded coroutine task used for all simulated activities.
///
/// A Task<T> does not start until it is co_awaited. Completion resumes the
/// awaiting coroutine by symmetric transfer, so arbitrarily deep co_await
/// chains (client -> web server -> servlet -> database) run without growing
/// the native stack.
///
/// Ownership: the Task object owns the coroutine frame. Destroying a Task
/// whose coroutine is suspended destroys the frame and all in-scope locals,
/// which is how the simulation tears down activities that are still blocked
/// when the horizon is reached.
template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  // Awaiter interface: awaiting a Task starts it and suspends the caller
  // until the task completes.
  bool await_ready() const noexcept {
    assert(handle_ && "co_await on an empty Task");
    return handle_.done();
  }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    assert(p.value.has_value());
    return std::move(*p.value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  friend struct promise_type;

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  bool await_ready() const noexcept {
    assert(handle_ && "co_await on an empty Task");
    return handle_.done();
  }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  friend struct promise_type;

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace mwsim::sim
