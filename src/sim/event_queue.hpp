#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace mwsim::trace {
struct Span;
}

namespace mwsim::sim {

/// One scheduled kernel event, keyed by (time, seq).
///
/// The struct is small and trivially copyable so the scheduler can move
/// events between wheel buckets and the dispatch heap as plain value copies
/// with no per-event allocation. The two hot payloads — "resume this
/// coroutine handle" and "call this raw function with (ctx, arg)" — are
/// stored inline; only the rare type-erased closure case (tests, ad-hoc
/// callbacks) indirects through a free-list slot owned by the EventQueue.
struct Event {
  enum class Kind : std::uint8_t { Resume, Call, Closure };

  SimTime time = 0;
  std::uint64_t seq = 0;
  union Payload {
    std::coroutine_handle<> handle;  // Resume
    struct {                         // Call: fn(ctx, event seq)
      void (*fn)(void*, std::uint64_t);
      void* ctx;
    } call;
    std::uint32_t closure;  // Closure: slot index in the EventQueue pool
  } pay = {};
  /// Span to restore as current while the payload runs (the resumption
  /// half of the tracing capture/restore protocol), with the payload Kind
  /// packed into the pointer's low bits — Span is 8-byte aligned (checked
  /// in event_queue.cpp), and the packing keeps the whole Event at 40
  /// bytes, which matters because wheel cascades are bound by event copy
  /// traffic.
  std::uintptr_t spanKind = 0;

  void setSpanKind(trace::Span* s, Kind k) noexcept {
    spanKind =
        reinterpret_cast<std::uintptr_t>(s) | static_cast<std::uintptr_t>(k);
  }
  trace::Span* span() const noexcept {
    return reinterpret_cast<trace::Span*>(spanKind & ~std::uintptr_t{7});
  }
  Kind kind() const noexcept { return static_cast<Kind>(spanKind & 7); }

  /// Strict (time, seq) ordering; seq values are unique, so this is a
  /// total order and equal keys cannot occur. A functor (not a function
  /// pointer) so std::push_heap/pop_heap inline the comparison.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  static constexpr Later later = {};
};

/// Pending-event container: a hierarchical timer wheel with an exact
/// dispatch heap in front and a sorted overflow level behind.
///
/// Layout. `kLevels` wheel levels of `kSlots` buckets each; a level-`l`
/// bucket spans `2^(kGranularityBits + l*kLevelBits)` ns (level 0 ≈ 1 ms,
/// each level 256× coarser), so the wheel covers ~2^60 ns ≈ 36 years past
/// the migration frontier `cursor_`; rarer events land in `overflow_`, a
/// binary heap. The wide 256-way fan-out keeps cascade depth low — an
/// event is copied at most once per level it descends, and most events
/// cross at most two levels. The deliberately coarse level-0 bucket means
/// short delays (sub-millisecond completion chains, posts) skip the wheel
/// entirely and go straight into the small hot `near_` heap. Buckets are unsorted vectors (reused, so
/// steady-state insertion allocates nothing) with a 256-bit occupancy
/// bitmap per level — finding the next non-empty bucket is a handful of
/// count-trailing-zeros word scans, never a tick-by-tick scan.
///
/// Ordering invariant (what makes dispatch order bit-identical to a
/// (time, seq) priority queue): `near_` is an exact binary min-heap on
/// (time, seq) holding every pending event with time < cursor_, and every
/// wheel/overflow event has time >= cursor_. pop() therefore always
/// returns the global (time, seq) minimum: events migrate from the wheel
/// into `near_` only one whole level-0 bucket at a time, when `near_` is
/// empty and that bucket's window [slot, slot + 2^kGranularityBits) is the
/// earliest occupied window anywhere in the wheel; `cursor_` then advances
/// to the window's end. Events scheduled mid-dispatch inside the current
/// window (posts, yields, short delays) go straight into `near_` and merge
/// in exact order via the heap.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Inserts an event; ev.time and ev.seq must already be set and ev.time
  /// must be >= the time of the last popped event.
  void push(const Event& ev) {
    ++size_;
    if (ev.time < cursor_) {
      heapPush(near_, ev);
    } else {
      pushWheel(ev);
    }
  }

  bool empty() const noexcept { return size_ == 0; }
  std::uint64_t size() const noexcept { return size_; }

  /// Timestamp of the earliest pending event. Requires !empty(). May
  /// migrate far events nearer, but never drops or reorders any.
  SimTime nextTime() {
    assert(size_ > 0);
    if (near_.empty()) advance();
    return near_.front().time;
  }

  /// Removes and returns the earliest event in exact (time, seq) order.
  /// Requires !empty().
  Event pop() {
    assert(size_ > 0);
    if (near_.empty()) advance();
    --size_;
    return heapPop(near_);
  }

  /// Removes every pending event tied at the earliest timestamp and appends
  /// them to `out` in ascending seq order. Requires !empty(). This is the
  /// model checker's choice-point primitive: after advance(), every pending
  /// event at the minimum time sits in near_ (wheel/overflow events all have
  /// time >= cursor_ > near_ times), so the returned set is complete, and
  /// unchosen events may be push()ed straight back (their time equals the
  /// last popped time, which push() permits).
  void popTies(std::vector<Event>& out);

  /// Drops every pending event (and any pooled closures they reference).
  void clear() noexcept;

  /// Parks a type-erased closure in the pool; the returned slot index is
  /// carried by a Kind::Closure event. Slots are recycled through a free
  /// list, so steady-state closure traffic allocates only inside
  /// std::function itself (and not at all for small captures).
  std::uint32_t storeClosure(std::function<void()> fn);

  /// Moves the closure out of `slot` and frees the slot. A slot can be
  /// taken exactly once per store — taking an empty slot (a double
  /// dispatch) asserts.
  std::function<void()> takeClosure(std::uint32_t slot);

 private:
  static constexpr int kLevelBits = 8;  // 256 buckets per level
  static constexpr int kSlots = 1 << kLevelBits;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr int kWords = kSlots / 64;  // occupancy words per level
  static constexpr int kLevels = 5;
  static constexpr int kGranularityBits = 20;  // level-0 bucket ≈ 1.05 ms
  static constexpr int shiftFor(int level) {
    return kGranularityBits + level * kLevelBits;
  }

  /// Wheel level for an event at time `t` given the current cursor:
  /// the lowest level at which t and cursor_ share every bit above the
  /// slot index, so the slot is within one revolution of the cursor and
  /// indices never alias. (A carry can make this one level coarser than
  /// the minimal fitting level — harmless, the event just cascades once
  /// more.) May return kLevels or more, meaning "overflow".
  int levelFor(SimTime t) const noexcept {
    const std::uint64_t x =
        static_cast<std::uint64_t>(t ^ cursor_) >> kGranularityBits;
    return x == 0 ? 0 : (std::bit_width(x) - 1) / kLevelBits;
  }

  void pushWheel(const Event& ev);
  int nextOccupiedSlot(int level, int cur) const noexcept;
  void advance();

  static void heapPush(std::vector<Event>& heap, const Event& ev) {
    heap.push_back(ev);
    std::push_heap(heap.begin(), heap.end(), Event::later);
  }
  static Event heapPop(std::vector<Event>& heap) {
    std::pop_heap(heap.begin(), heap.end(), Event::later);
    Event ev = heap.back();
    heap.pop_back();
    return ev;
  }

  std::uint64_t size_ = 0;
  /// Migration frontier, always a multiple of the level-0 bucket width:
  /// near_ holds exactly the pending events with time < cursor_.
  SimTime cursor_ = 0;
  std::vector<Event> near_;  // binary min-heap on (time, seq)
  std::vector<Event> buckets_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kWords] = {};
  /// Bit l set iff level l holds any event — lets advance() visit only the
  /// levels that actually hold events.
  std::uint32_t activeLevels_ = 0;
  std::vector<Event> overflow_;  // binary min-heap on (time, seq)

  std::vector<std::function<void()>> closures_;
  std::vector<std::uint32_t> freeClosureSlots_;
};

}  // namespace mwsim::sim
