#pragma once

/// Umbrella header for the discrete-event simulation kernel.

#include "sim/cpu.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/rwlock.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
