#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mc/choice.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "trace/span.hpp"

namespace mwsim {
namespace obs {
class MetricsRegistry;
}  // namespace obs
}  // namespace mwsim

namespace mwsim::sim {

class Simulation;

namespace detail {

/// Fire-and-forget driver coroutine for a top-level simulated process.
/// The frame is owned by the Simulation and destroyed either when the
/// process completes or at Simulation::shutdown().
struct RootPromise;

struct RootTask {
  using promise_type = RootPromise;
  std::coroutine_handle<RootPromise> handle;
};

struct RootPromise {
  Simulation* sim = nullptr;
  std::uint64_t id = 0;

  RootTask get_return_object() {
    return RootTask{std::coroutine_handle<RootPromise>::from_promise(*this)};
  }
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<RootPromise> h) const noexcept;
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() noexcept {}
  void unhandled_exception() noexcept;
};

}  // namespace detail

/// Single-threaded discrete-event simulation kernel.
///
/// All simulated activities are coroutines spawned with spawn(); they make
/// progress only when the kernel resumes them from the event queue, so the
/// whole simulation is deterministic for a fixed seed.
///
/// Events live in a hierarchical timer wheel (EventQueue) and dispatch in
/// exact (time, scheduling-seq) order — the same total order as a binary
/// heap keyed that way, proven by tests/scheduler_equiv_test.cpp. The hot
/// scheduling paths (coroutine resumption, raw member calls) carry their
/// payload inline in a small trivially-copyable Event; only ad-hoc
/// std::function callbacks touch the pooled closure slots.
///
/// Lifetime rule: destroy (or shutdown()) the Simulation while every object
/// its suspended coroutines reference (resources, servers, databases) is
/// still alive. The Experiment runner does this automatically.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedules a callback `delay` nanoseconds from now (delay >= 0).
  /// `span` is the trace span to make current while the callback runs —
  /// the resumption half of the capture/restore protocol that keeps the
  /// ambient current span correct across coroutine suspensions.
  void schedule(Duration delay, std::function<void()> fn, trace::Span* span = nullptr);

  /// Schedules a callback at the current simulated time, after all
  /// already-queued events for this instant.
  void post(std::function<void()> fn, trace::Span* span = nullptr) {
    schedule(0, std::move(fn), span);
  }

  /// Fast path: resumes `h` `delay` nanoseconds from now. Identical
  /// ordering semantics to schedule() — it consumes the same seq counter —
  /// without the type-erased closure.
  void scheduleResume(Duration delay, std::coroutine_handle<> h,
                      trace::Span* span = nullptr) {
    assert(delay >= 0 && "cannot schedule events in the past");
    Event ev;
    ev.time = now_ + delay;
    ev.seq = nextSeq_++;
    ev.setSpanKind(span, Event::Kind::Resume);
    ev.pay.handle = h;
    queue_.push(ev);
    if (mcActive()) [[unlikely]] mcRecordMeta(ev.seq);
  }

  /// Fast path: resumes `h` at the current instant, after everything
  /// already queued for it.
  void postResume(std::coroutine_handle<> h, trace::Span* span = nullptr) {
    scheduleResume(0, h, span);
  }

  /// Fast path: calls `fn(ctx, seq)` `delay` nanoseconds from now, where
  /// `seq` is the scheduled event's unique sequence number (also returned
  /// here). For kernel components (e.g. the CPU's completion events) that
  /// would otherwise rebuild a closure per event; the returned seq doubles
  /// as a never-recycled generation token for recognizing superseded
  /// events at dispatch.
  std::uint64_t scheduleCall(Duration delay, void (*fn)(void*, std::uint64_t),
                             void* ctx) {
    assert(delay >= 0 && "cannot schedule events in the past");
    Event ev;
    ev.time = now_ + delay;
    ev.seq = nextSeq_++;
    ev.setSpanKind(nullptr, Event::Kind::Call);
    ev.pay.call = {fn, ctx};
    queue_.push(ev);
    if (mcActive()) [[unlikely]] mcRecordMeta(ev.seq);
    return ev.seq;
  }

  /// The span of the request whose coroutine chain is currently executing,
  /// or null when tracing is off / no traced request is running. Maintained
  /// by SpanScope (open/close) and by every primitive's suspend/resume
  /// path; the dispatcher resets it around each event.
  trace::Span* currentSpan() const noexcept { return currentSpan_; }
  void setCurrentSpan(trace::Span* s) noexcept { currentSpan_ = s; }

  /// Awaitable that suspends the current coroutine for `d` nanoseconds.
  /// The elapsed time is attributed to the current span (if any) under
  /// `cat`: a pure delay's duration is known up front, so attribution
  /// happens at suspension and the span pointer rides on the event.
  struct DelayAwaiter {
    Simulation& sim;
    Duration d;
    trace::Category cat = trace::Category::Other;
    bool await_ready() const noexcept { return d <= 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      trace::Span* span = nullptr;
      if constexpr (trace::kEnabled) {
        span = sim.currentSpan_;
        if (span) {
          span->add(cat, d);
          // Every suspension clears the ambient span (the resume path
          // republishes it), so the dispatcher touches it only for traced
          // events — see dispatchOne().
          sim.currentSpan_ = nullptr;
        }
      }
      sim.scheduleResume(d, h, span);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Duration d, trace::Category cat = trace::Category::Other) {
    return DelayAwaiter{*this, d, cat};
  }

  /// Reschedules the current coroutine behind all events queued for "now".
  DelayAwaiter yield() { return DelayAwaiter{*this, 1}; }

  /// Starts a top-level simulated process. The process begins executing at
  /// the current simulated time (it is queued, not run inline).
  void spawn(Task<> task);

  /// Runs until the event queue is empty. Rethrows the first exception that
  /// escaped any spawned process.
  void run();

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void runUntil(SimTime t);

  /// Destroys every still-suspended top-level process. Call before the
  /// objects those processes reference are destroyed.
  void shutdown();

  /// Number of live (unfinished) top-level processes.
  std::size_t liveProcesses() const noexcept { return roots_.size(); }

  /// Total events processed, for kernel benchmarking.
  std::uint64_t eventsProcessed() const noexcept { return eventsProcessed_; }

  /// Events currently pending in the timer wheel (for the metrics pump's
  /// kernel.events gauge).
  std::uint64_t pendingEvents() const noexcept { return queue_.size(); }

  /// Per-simulation metrics registry, or null when metrics are off for
  /// this run. Mirrors the mc::KernelObserver pattern: components reach it
  /// through their Simulation reference, and every hook site checks
  /// obs::kEnabled first so -DMWSIM_METRICS=OFF compiles the access out.
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }
  void setMetrics(obs::MetricsRegistry* m) noexcept { metrics_ = m; }

  /// Kernel-level random source (components should derive their own).
  Rng& rng() noexcept { return rng_; }

  std::uint64_t seed() const noexcept { return seed_; }

  /// --- Model-checking hooks (src/mc/) -------------------------------------
  ///
  /// With a ChoiceStrategy installed, the kernel turns its two fixed
  /// tie-breaking rules (same-timestamp dispatch order, lock waiter-grant
  /// order) into explicit choice points; with a KernelObserver installed it
  /// additionally streams dispatch boundaries and lock ops, tracking which
  /// top-level actor each event belongs to. Both default to null, in which
  /// case every hook below collapses to one predictable branch and the
  /// kernel behaves exactly as before (bit-identical dispatch order).
  void setModelChecking(mc::ChoiceStrategy* strategy,
                        mc::KernelObserver* observer) noexcept {
    mcStrategy_ = strategy;
    mcObserver_ = observer;
  }
  bool mcActive() const noexcept {
    return mcStrategy_ != nullptr || mcObserver_ != nullptr;
  }
  mc::ChoiceStrategy* mcStrategy() const noexcept { return mcStrategy_; }
  mc::KernelObserver* mcObserver() const noexcept { return mcObserver_; }

  /// Actor (1 + root process id) whose coroutine chain is currently
  /// executing; 0 between events or outside model checking. Newly scheduled
  /// events inherit it, which is how grant events and delay expiries get
  /// attributed to the process that will run when they dispatch.
  std::uint64_t mcActor() const noexcept { return mcCurrentActor_; }

  /// Stable identity for a lock/resource, assigned in construction order —
  /// identical across run-from-start replays of the same scenario, unlike
  /// heap addresses.
  std::uint64_t nextLockId() noexcept { return nextLockId_++; }

  /// Overrides the descriptor recorded for the *next* scheduled event (the
  /// lock code calls this right before postResume()-ing a granted waiter,
  /// so the grant event carries the waiter's actor and the lock's id).
  void mcTagNextEvent(std::uint64_t actor, std::uint64_t object, mc::Op op) {
    mcTag_ = mc::Alternative{actor, object, op};
    mcTagArmed_ = true;
  }

  void mcEmit(const mc::LockOp& op) {
    if (mcObserver_ != nullptr) mcObserver_->onLockOp(op);
  }

  /// Claims a unique component name within this simulation. Machines claim
  /// their names at construction so a topology that accidentally creates two
  /// machines with one name fails loudly instead of silently aliasing their
  /// usage/traffic records.
  void claimName(const std::string& name) {
    if (!claimedNames_.insert(name).second) {
      throw std::invalid_argument("duplicate machine name in one simulation: " + name);
    }
  }

 private:
  friend struct detail::RootPromise;

  void onRootFinished(std::uint64_t id);
  void onRootException(std::exception_ptr e) { pendingError_ = std::move(e); }
  void dispatchOne();
  void runPayload(const Event& ev);
  void maybeRethrow();
  void mcRecordMeta(std::uint64_t seq);
  Event mcPop();
  void mcBeginDispatch(const Event& ev);
  void mcEndDispatch();

  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t nextRootId_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t seed_;
  Rng rng_;
  EventQueue queue_;
  std::unordered_map<std::uint64_t, std::coroutine_handle<detail::RootPromise>> roots_;
  std::exception_ptr pendingError_;
  trace::Span* currentSpan_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unordered_set<std::string> claimedNames_;
  // Model-checking state; cold unless setModelChecking() installed hooks.
  mc::ChoiceStrategy* mcStrategy_ = nullptr;
  mc::KernelObserver* mcObserver_ = nullptr;
  std::uint64_t mcCurrentActor_ = 0;
  std::uint64_t nextLockId_ = 1;
  bool mcTagArmed_ = false;
  mc::Alternative mcTag_{};
  std::unordered_map<std::uint64_t, mc::Alternative> mcMeta_;  // seq -> descriptor
  std::vector<Event> mcTies_;                                  // scratch
  std::vector<mc::Alternative> mcAlts_;                        // scratch
#ifndef NDEBUG
  // Dispatch-order guard: (time, seq) must be strictly increasing, which
  // both proves the wheel never reorders and that no event (seq values are
  // unique) is ever dispatched twice. Relaxed to time-monotonicity when a
  // mc::ChoiceStrategy is reordering same-timestamp events (dispatchOne).
  SimTime lastDispatchTime_ = -1;
  std::uint64_t lastDispatchSeq_ = 0;
#endif
};

}  // namespace mwsim::sim
