#include "sim/random.hpp"

#include <algorithm>

namespace mwsim::sim {

std::int64_t Rng::zipf(std::int64_t n, double s) {
  assert(n >= 1);
  if (n == 1) return 1;
  if (s <= 0.0) return uniformInt(1, n);

  // Rejection-inversion sampling for the Zipf distribution.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (std::abs(1.0 - s) < 1e-12) return std::log(x);
    return std::pow(x, 1.0 - s) / (1.0 - s);
  };
  auto hInv = [s](double x) {
    if (std::abs(1.0 - s) < 1e-12) return std::exp(x);
    return std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
  };
  const double hX0 = h(0.5) - std::pow(1.0, -s);
  const double hN = h(nd + 0.5);
  for (;;) {
    const double u = hX0 + uniformReal(0.0, 1.0) * (hN - hX0);
    const double x = hInv(u);
    const std::int64_t k = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(x + 0.5), 1, n);
    if (u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s)) {
      return k;
    }
  }
}

std::size_t Rng::discrete(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = uniformReal(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::randomString(std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + uniformInt(0, 25)));
  }
  return out;
}

std::string Rng::randomText(std::size_t length) {
  std::string out;
  out.reserve(length + 8);
  while (out.size() < length) {
    const std::size_t word = static_cast<std::size_t>(uniformInt(2, 9));
    for (std::size_t i = 0; i < word && out.size() < length; ++i) {
      out.push_back(static_cast<char>('a' + uniformInt(0, 25)));
    }
    out.push_back(' ');
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t tag) {
  // SplitMix64 step over (root ^ golden-ratio-scrambled tag).
  std::uint64_t z = root ^ (tag * 0x9E3779B97F4A7C15ULL);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace mwsim::sim
