#pragma once

#include <cstdint>

namespace mwsim::sim {

/// Simulated time since simulation start, in integer nanoseconds.
///
/// Integer time keeps the simulation fully deterministic: event ordering never
/// depends on floating-point rounding.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

/// Converts fractional seconds to a Duration, rounding to the nearest ns.
constexpr Duration fromSeconds(double seconds) {
  return static_cast<Duration>(seconds * 1e9 + (seconds >= 0 ? 0.5 : -0.5));
}

/// Converts fractional milliseconds to a Duration.
constexpr Duration fromMillis(double millis) { return fromSeconds(millis * 1e-3); }

/// Converts fractional microseconds to a Duration.
constexpr Duration fromMicros(double micros) { return fromSeconds(micros * 1e-6); }

/// Converts a Duration to fractional seconds (for reporting only).
constexpr double toSeconds(Duration d) { return static_cast<double>(d) * 1e-9; }

/// Converts a Duration to fractional milliseconds (for reporting only).
constexpr double toMillis(Duration d) { return static_cast<double>(d) * 1e-6; }

}  // namespace mwsim::sim
