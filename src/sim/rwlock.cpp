#include "sim/rwlock.hpp"

namespace mwsim::sim {

LockHold& LockHold::operator=(LockHold&& other) noexcept {
  if (this != &other) {
    release();
    lock_ = std::exchange(other.lock_, nullptr);
    write_ = other.write_;
  }
  return *this;
}

void LockHold::release() noexcept {
  if (RwLock* l = std::exchange(lock_, nullptr)) l->unlock(write_);
}

void RwLock::unlock(bool write) noexcept {
  if (write) {
    assert(activeWriter_);
    activeWriter_ = false;
  } else {
    assert(activeReaders_ > 0);
    --activeReaders_;
  }
  grantNext();
}

void RwLock::grantNext() noexcept {
  if (activeWriter_) return;
  // Writer priority: the queue is FIFO, but a waiting writer at the head
  // blocks all readers behind it until the lock is free.
  while (!waiters_.empty()) {
    Waiter& front = waiters_.front();
    if (front.write) {
      if (activeReaders_ > 0) return;  // writer must wait for readers to drain
      activeWriter_ = true;
      --writersWaiting_;
      totalWait_ += sim_.now() - front.enqueued;
      if constexpr (trace::kEnabled) {
        if (front.span != nullptr) {
          front.span->add(trace::Category::LockWait, sim_.now() - front.enqueued);
        }
      }
      auto h = front.handle;
      auto* span = front.span;
      waiters_.pop_front();
      sim_.postResume(h, span);
      return;  // exclusive: nothing else can be granted
    }
    // Grant a reader and continue granting consecutive readers.
    ++activeReaders_;
    totalWait_ += sim_.now() - front.enqueued;
    if constexpr (trace::kEnabled) {
      if (front.span != nullptr) {
        front.span->add(trace::Category::LockWait, sim_.now() - front.enqueued);
      }
    }
    auto h = front.handle;
    auto* span = front.span;
    waiters_.pop_front();
    sim_.postResume(h, span);
  }
}

}  // namespace mwsim::sim
