#include "sim/rwlock.hpp"

#include <vector>

namespace mwsim::sim {

LockHold& LockHold::operator=(LockHold&& other) noexcept {
  if (this != &other) {
    release();
    lock_ = std::exchange(other.lock_, nullptr);
    write_ = other.write_;
  }
  return *this;
}

void LockHold::release() noexcept {
  if (RwLock* l = std::exchange(lock_, nullptr)) l->unlock(write_);
}

void RwLock::unlock(bool write) noexcept {
  if (write) {
    assert(activeWriter_);
    activeWriter_ = false;
  } else {
    assert(activeReaders_ > 0);
    --activeReaders_;
  }
  if (sim_.mcObserver() != nullptr) [[unlikely]] {
    sim_.mcEmit({write ? mc::LockOp::Kind::WriteRelease
                       : mc::LockOp::Kind::ReadRelease,
                 mcId_, sim_.mcActor(), sim_.now(), writersWaiting_,
                 queuedReaders(), activeReaders_, 0});
  }
  grantNext();
}

/// Grants waiters_[index] (removing it from the queue), updates the lock
/// state, and schedules the waiter's resumption. The caller has already
/// checked eligibility. index 0 is the plain FIFO path and stays O(1).
void RwLock::grantWaiter(std::size_t index) noexcept {
  Waiter w = waiters_.takeAt(index);
  if (w.write) {
    activeWriter_ = true;
    --writersWaiting_;
  } else {
    ++activeReaders_;
  }
  totalWait_ += sim_.now() - w.enqueued;
  if constexpr (trace::kEnabled) {
    if (w.span != nullptr) {
      w.span->add(trace::Category::LockWait, sim_.now() - w.enqueued);
    }
  }
  if (sim_.mcObserver() != nullptr) [[unlikely]] {
    sim_.mcTagNextEvent(w.actor, mcId_,
                        w.write ? mc::Op::WriteGrant : mc::Op::ReadGrant);
    sim_.mcEmit({w.write ? mc::LockOp::Kind::WriteGrant
                         : mc::LockOp::Kind::ReadGrant,
                 mcId_, w.actor, sim_.now(), writersWaiting_, queuedReaders(),
                 activeReaders_, sim_.now() - w.enqueued});
  }
  sim_.postResume(w.handle, w.span);
}

void RwLock::grantNext() noexcept {
  if (activeWriter_) return;
  if (readerPreference_) [[unlikely]] {
    grantReaderPreference();
    return;
  }
  // Writer priority: the queue is FIFO, but a waiting writer at the head
  // blocks all readers behind it until the lock is free.
  while (!waiters_.empty()) {
    if (waiters_.front().write) {
      if (activeReaders_ > 0) return;  // writer must wait for readers to drain
      // Writer-grant choice point: with several writers waiting, which one
      // gets the lock is real nondeterminism (MyISAM promises writers beat
      // readers, not writer FIFO). Default: the head writer, as before.
      std::size_t pick = 0;
      if (sim_.mcStrategy() != nullptr && writersWaiting_ > 1) [[unlikely]] {
        pick = mcChooseWriter();
      }
      grantWaiter(pick);
      return;  // exclusive: nothing else can be granted
    }
    // Grant a reader and continue granting consecutive readers.
    grantWaiter(0);
  }
}

/// Mutated discipline (test-only): queued readers are granted first
/// regardless of position; a writer gets the lock only when no reader is
/// active or queued. Together with the await_ready bypass this recreates the
/// classic writer-starvation bug the model checker must detect.
void RwLock::grantReaderPreference() noexcept {
  std::size_t i = 0;
  while (i < waiters_.size()) {
    if (waiters_[i].write) {
      ++i;
    } else {
      grantWaiter(i);  // removal shifts the next candidate into slot i
    }
  }
  if (activeReaders_ == 0 && !waiters_.empty()) {
    assert(waiters_.front().write);
    grantWaiter(0);
  }
}

void RwLock::mcOnQueued(bool write) noexcept {
  sim_.mcEmit({write ? mc::LockOp::Kind::WriteRequest
                     : mc::LockOp::Kind::ReadRequest,
               mcId_, sim_.mcActor(), sim_.now(), writersWaiting_,
               queuedReaders(), activeReaders_, 0});
}

void RwLock::mcOnFastGrant(bool write) noexcept {
  sim_.mcEmit({write ? mc::LockOp::Kind::WriteGrant
                     : mc::LockOp::Kind::ReadGrant,
               mcId_, sim_.mcActor(), sim_.now(), writersWaiting_,
               queuedReaders(), activeReaders_, 0});
}

std::size_t RwLock::mcChooseWriter() {
  std::vector<mc::Alternative> alts;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < waiters_.size(); ++i) {
    if (waiters_[i].write) {
      alts.push_back({waiters_[i].actor, mcId_, mc::Op::WriteGrant});
      indices.push_back(i);
    }
  }
  const std::size_t pick = sim_.mcStrategy()->choose(
      mc::ChoiceKind::RwLockGrant, alts.data(), alts.size());
  assert(pick < indices.size());
  return indices[pick];
}

}  // namespace mwsim::sim
