#pragma once

#include <cassert>
#include <coroutine>
#include <string>
#include <utility>

#include "sim/ring_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace mwsim::sim {

class RwLock;

/// RAII ownership of a read or write lock on an RwLock.
class [[nodiscard]] LockHold {
 public:
  LockHold() noexcept = default;
  LockHold(RwLock* lock, bool write) noexcept : lock_(lock), write_(write) {}
  LockHold(LockHold&& other) noexcept
      : lock_(std::exchange(other.lock_, nullptr)), write_(other.write_) {}
  LockHold& operator=(LockHold&& other) noexcept;
  LockHold(const LockHold&) = delete;
  LockHold& operator=(const LockHold&) = delete;
  ~LockHold() { release(); }

  void release() noexcept;
  bool holds() const noexcept { return lock_ != nullptr; }
  bool isWrite() const noexcept { return write_; }

 private:
  RwLock* lock_ = nullptr;
  bool write_ = false;
};

/// Reader-writer lock with writer priority — the semantics of MySQL/MyISAM
/// table locks: once a writer is waiting, newly arriving readers queue
/// behind it. This is the mechanism behind the paper's database
/// lock-contention results (Figures 5, 9).
class RwLock {
 public:
  explicit RwLock(Simulation& sim, std::string name = {})
      : sim_(sim), name_(std::move(name)), mcId_(sim.nextLockId()) {}
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  struct Awaiter {
    RwLock& lock;
    bool write;
    bool suspended = false;

    bool await_ready() const noexcept {
      if (write) return !lock.activeWriter_ && lock.activeReaders_ == 0;
      // Under the (test-only) reader-preference mutation, arriving readers
      // ignore waiting writers — the starvation bug the model checker must
      // be able to catch.
      return !lock.activeWriter_ &&
             (lock.writersWaiting_ == 0 || lock.readerPreference_);
    }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      if (write) ++lock.writersWaiting_;
      ++lock.contended_;
      trace::Span* span = nullptr;
      if constexpr (trace::kEnabled) {
        span = lock.sim_.currentSpan();
        if (span != nullptr) lock.sim_.setCurrentSpan(nullptr);  // cleared at suspension
      }
      lock.waiters_.push_back(
          Waiter{h, write, lock.sim_.now(), span, lock.sim_.mcActor()});
      if (lock.sim_.mcObserver() != nullptr) [[unlikely]] {
        lock.mcOnQueued(write);
      }
    }
    LockHold await_resume() noexcept {
      // When resumed from the queue, grantNext() already updated the lock
      // state; on the fast path we take the lock here.
      if (!suspended) {
        lock.take(write);
        if (lock.sim_.mcObserver() != nullptr) [[unlikely]] {
          lock.mcOnFastGrant(write);
        }
      }
      ++(write ? lock.writeAcquisitions_ : lock.readAcquisitions_);
      return LockHold(&lock, write);
    }
  };

  /// Awaitable shared (read) acquisition.
  Awaiter lockRead() { return Awaiter{*this, /*write=*/false}; }
  /// Awaitable exclusive (write) acquisition.
  Awaiter lockWrite() { return Awaiter{*this, /*write=*/true}; }

  void unlock(bool write) noexcept;

  int activeReaders() const noexcept { return activeReaders_; }
  bool activeWriter() const noexcept { return activeWriter_; }
  std::size_t queueLength() const noexcept { return waiters_.size(); }
  const std::string& name() const noexcept { return name_; }

  std::uint64_t readAcquisitions() const noexcept { return readAcquisitions_; }
  std::uint64_t writeAcquisitions() const noexcept { return writeAcquisitions_; }
  /// Number of acquisitions that had to wait.
  std::uint64_t contendedAcquisitions() const noexcept { return contended_; }
  Duration totalWait() const noexcept { return totalWait_; }

  /// Stable identity for model-checking descriptors and lock-op streams.
  std::uint64_t mcId() const noexcept { return mcId_; }

  /// Test-only seeded mutation: drops writer priority (arriving readers
  /// bypass waiting writers, and releases grant queued readers over queued
  /// writers). Exists so tests/mc_test.cpp can prove the model checker
  /// *fails* on a lock that starves writers — never enable it elsewhere.
  void enableReaderPreferenceMutation() noexcept { readerPreference_ = true; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool write;
    SimTime enqueued;
    trace::Span* span = nullptr;
    std::uint64_t actor = 0;  // mc::Alternative actor; 0 outside MC runs
  };

  void take(bool write) noexcept {
    if (write) {
      assert(!activeWriter_ && activeReaders_ == 0);
      activeWriter_ = true;
    } else {
      assert(!activeWriter_);
      ++activeReaders_;
    }
  }
  void grantNext() noexcept;
  void grantReaderPreference() noexcept;
  void grantWaiter(std::size_t index) noexcept;
  // Model-checking cold paths: request/grant lock-op emission and the
  // writer-grant choice point (which of several waiting writers gets the
  // lock — MyISAM promises writers beat readers, not writer FIFO).
  void mcOnQueued(bool write) noexcept;
  void mcOnFastGrant(bool write) noexcept;
  std::size_t mcChooseWriter();
  int queuedReaders() const noexcept {
    return static_cast<int>(waiters_.size()) - writersWaiting_;
  }

  Simulation& sim_;
  std::string name_;
  int activeReaders_ = 0;
  bool activeWriter_ = false;
  int writersWaiting_ = 0;
  bool readerPreference_ = false;
  RingQueue<Waiter> waiters_;
  std::uint64_t readAcquisitions_ = 0;
  std::uint64_t writeAcquisitions_ = 0;
  std::uint64_t contended_ = 0;
  Duration totalWait_ = 0;
  std::uint64_t mcId_ = 0;
};

}  // namespace mwsim::sim
