#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mwsim::sim {

/// Minimal FIFO queue over a power-of-two ring buffer.
///
/// Replaces std::deque in kernel wait queues: a deque allocates and frees
/// 512-byte node blocks as elements stream through it, which shows up as
/// steady-state malloc traffic when tens of thousands of waiters churn
/// through a saturated resource. The ring reuses one flat allocation and
/// only ever reallocates to grow, so steady-state push/pop is a couple of
/// stores. T must be default-constructible and move-assignable.
template <typename T>
class RingQueue {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  T& front() noexcept { return buf_[head_]; }
  const T& front() const noexcept { return buf_[head_]; }

  /// i-th element from the head (0 == front()); i must be < size().
  T& operator[](std::size_t i) noexcept { return buf_[(head_ + i) & mask_]; }
  const T& operator[](std::size_t i) const noexcept {
    return buf_[(head_ + i) & mask_];
  }

  /// Removes and returns the i-th element from the head, preserving the
  /// relative order of the rest. takeAt(0) is exactly {front(); pop_front()}
  /// — O(1); other indices shift the suffix down, which only the
  /// model-checking grant-choice path uses (tiny queues).
  T takeAt(std::size_t i) noexcept {
    T out = std::move(buf_[(head_ + i) & mask_]);
    if (i == 0) {
      buf_[head_] = T{};
      head_ = (head_ + 1) & mask_;
    } else {
      for (; i + 1 < size_; ++i) {
        buf_[(head_ + i) & mask_] = std::move(buf_[(head_ + i + 1) & mask_]);
      }
      buf_[(head_ + size_ - 1) & mask_] = T{};
    }
    --size_;
    return out;
  }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() noexcept {
    buf_[head_] = T{};  // drop any owned state now, not at overwrite
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() noexcept {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace mwsim::sim
