#include "sim/resource.hpp"

namespace mwsim::sim {

ResourceHold& ResourceHold::operator=(ResourceHold&& other) noexcept {
  if (this != &other) {
    release();
    resource_ = std::exchange(other.resource_, nullptr);
  }
  return *this;
}

void ResourceHold::release() noexcept {
  if (Resource* r = std::exchange(resource_, nullptr)) r->release();
}

void Resource::take() noexcept {
  updateIntegral();
  ++inUse_;
  assert(inUse_ <= capacity_);
}

void Resource::release() noexcept {
  updateIntegral();
  assert(inUse_ > 0);
  --inUse_;
  if (!waiters_.empty() && inUse_ < capacity_) {
    Waiter w = waiters_.front();
    waiters_.pop_front();
    // Reserve the unit for the waiter so a new arrival cannot steal it
    // between now and the waiter's resumption.
    ++inUse_;
    totalWait_ += sim_.now() - w.enqueued;
    if constexpr (trace::kEnabled) {
      if (w.span != nullptr) w.span->add(waitCategory_, sim_.now() - w.enqueued);
    }
    sim_.postResume(w.handle, w.span);
  }
}

void Resource::updateIntegral() const noexcept {
  const SimTime now = sim_.now();
  // Same-instant transitions (batched completions, chained acquire/release)
  // accrue exactly zero, so the skip is bit-identical to the += 0.0.
  if (now == lastUpdate_) return;
  busyIntegral_ += toSeconds(now - lastUpdate_) * inUse_;
  lastUpdate_ = now;
}

double Resource::busyUnitSeconds() const noexcept {
  updateIntegral();
  return busyIntegral_;
}

}  // namespace mwsim::sim
