#include "sim/resource.hpp"

namespace mwsim::sim {

ResourceHold& ResourceHold::operator=(ResourceHold&& other) noexcept {
  if (this != &other) {
    release();
    resource_ = std::exchange(other.resource_, nullptr);
  }
  return *this;
}

void ResourceHold::release() noexcept {
  if (Resource* r = std::exchange(resource_, nullptr)) r->release();
}

void Resource::take() noexcept {
  updateIntegral();
  ++inUse_;
  assert(inUse_ <= capacity_);
}

void Resource::release() noexcept {
  updateIntegral();
  assert(inUse_ > 0);
  --inUse_;
  if (!waiters_.empty() && inUse_ < capacity_) {
    // Waiter-grant choice point: FIFO (index 0) by default; a model-checking
    // strategy may hand the unit to any waiter.
    std::size_t pick = 0;
    if (sim_.mcStrategy() != nullptr && waiters_.size() > 1) [[unlikely]] {
      pick = mcChooseGrant();
    }
    Waiter w = waiters_.takeAt(pick);
    // Reserve the unit for the waiter so a new arrival cannot steal it
    // between now and the waiter's resumption.
    ++inUse_;
    totalWait_ += sim_.now() - w.enqueued;
    if constexpr (trace::kEnabled) {
      if (w.span != nullptr) w.span->add(waitCategory_, sim_.now() - w.enqueued);
    }
    if (sim_.mcObserver() != nullptr) [[unlikely]] {
      sim_.mcTagNextEvent(w.actor, mcId_, mc::Op::AcquireGrant);
      sim_.mcEmit({mc::LockOp::Kind::AcquireGrant, mcId_, w.actor, sim_.now(),
                   0, 0, 0, sim_.now() - w.enqueued});
    }
    sim_.postResume(w.handle, w.span);
  } else if (sim_.mcObserver() != nullptr) [[unlikely]] {
    sim_.mcEmit({mc::LockOp::Kind::Release, mcId_, sim_.mcActor(), sim_.now(),
                 0, 0, 0, 0});
  }
}

void Resource::mcOnQueued() noexcept {
  sim_.mcEmit({mc::LockOp::Kind::AcquireRequest, mcId_, sim_.mcActor(),
               sim_.now(), 0, static_cast<int>(waiters_.size()), inUse_, 0});
}

void Resource::mcOnFastGrant() noexcept {
  sim_.mcEmit({mc::LockOp::Kind::AcquireGrant, mcId_, sim_.mcActor(),
               sim_.now(), 0, 0, inUse_, 0});
}

std::size_t Resource::mcChooseGrant() {
  std::vector<mc::Alternative> alts;
  alts.reserve(waiters_.size());
  for (std::size_t i = 0; i < waiters_.size(); ++i) {
    alts.push_back({waiters_[i].actor, mcId_, mc::Op::AcquireGrant});
  }
  const std::size_t pick = sim_.mcStrategy()->choose(
      mc::ChoiceKind::ResourceGrant, alts.data(), alts.size());
  assert(pick < waiters_.size());
  return pick;
}

void Resource::updateIntegral() const noexcept {
  const SimTime now = sim_.now();
  // Same-instant transitions (batched completions, chained acquire/release)
  // accrue exactly zero, so the skip is bit-identical to the += 0.0.
  if (now == lastUpdate_) return;
  busyIntegral_ += toSeconds(now - lastUpdate_) * inUse_;
  lastUpdate_ = now;
}

double Resource::busyUnitSeconds() const noexcept {
  updateIntegral();
  return busyIntegral_;
}

}  // namespace mwsim::sim
