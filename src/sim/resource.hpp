#pragma once

#include <cassert>
#include <coroutine>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/ring_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace mwsim::sim {

class Resource;

/// RAII ownership of one unit of a Resource. Releases on destruction;
/// release() releases early.
class [[nodiscard]] ResourceHold {
 public:
  ResourceHold() noexcept = default;
  explicit ResourceHold(Resource* r) noexcept : resource_(r) {}
  ResourceHold(ResourceHold&& other) noexcept
      : resource_(std::exchange(other.resource_, nullptr)) {}
  ResourceHold& operator=(ResourceHold&& other) noexcept;
  ResourceHold(const ResourceHold&) = delete;
  ResourceHold& operator=(const ResourceHold&) = delete;
  ~ResourceHold() { release(); }

  void release() noexcept;
  bool holds() const noexcept { return resource_ != nullptr; }

 private:
  Resource* resource_ = nullptr;
};

/// FIFO counting resource (process pools, connection pools, mutexes).
///
/// `co_await resource.acquire()` blocks the coroutine until a unit is free
/// and returns a ResourceHold. Grants are strictly FIFO: a new arrival never
/// overtakes a queued waiter.
class Resource {
 public:
  /// `waitCategory` is the trace category charged for time spent queued on
  /// this resource. Mutexes and locks default to LockWait; pools whose wait
  /// is really queueing for compute (process/thread pools) pass CpuQueue,
  /// and NIC links pass NetTransfer.
  Resource(Simulation& sim, int capacity, std::string name = {},
           trace::Category waitCategory = trace::Category::LockWait)
      : sim_(sim), capacity_(capacity), name_(std::move(name)),
        waitCategory_(waitCategory), mcId_(sim.nextLockId()) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  struct Awaiter {
    Resource& res;
    bool suspended = false;

    bool await_ready() const noexcept {
      return res.waiters_.empty() && res.inUse_ < res.capacity_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      trace::Span* span = nullptr;
      if constexpr (trace::kEnabled) {
        span = res.sim_.currentSpan();
        if (span != nullptr) res.sim_.setCurrentSpan(nullptr);  // cleared at suspension
      }
      res.waiters_.push_back(
          Waiter{h, res.sim_.now(), span, res.sim_.mcActor()});
      if (res.sim_.mcObserver() != nullptr) [[unlikely]] res.mcOnQueued();
    }
    ResourceHold await_resume() noexcept {
      // When resumed from the wait queue, release() already reserved the
      // unit; on the fast path we take it here.
      if (!suspended) {
        res.take();
        if (res.sim_.mcObserver() != nullptr) [[unlikely]] res.mcOnFastGrant();
      }
      ++res.acquisitions_;
      return ResourceHold(&res);
    }
  };

  /// Awaitable acquisition of one unit.
  Awaiter acquire() { return Awaiter{*this}; }

  /// Releases one unit; normally called by ResourceHold.
  void release() noexcept;

  int capacity() const noexcept { return capacity_; }
  int inUse() const noexcept { return inUse_; }
  std::size_t queueLength() const noexcept { return waiters_.size(); }
  const std::string& name() const noexcept { return name_; }

  /// Integral of in-use units over time, in unit-seconds (for utilization).
  double busyUnitSeconds() const noexcept;
  std::uint64_t acquisitions() const noexcept { return acquisitions_; }
  Duration totalWait() const noexcept { return totalWait_; }

  /// Stable identity for model-checking descriptors and lock-op streams.
  std::uint64_t mcId() const noexcept { return mcId_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    SimTime enqueued;
    trace::Span* span = nullptr;
    std::uint64_t actor = 0;  // mc::Alternative actor; 0 outside MC runs
  };

  void take() noexcept;
  void updateIntegral() const noexcept;
  // Model-checking cold paths: queue/grant lock-op emission and the
  // waiter-grant choice point (which waiter a freed unit goes to — FIFO is
  // one legal order of many; Java monitors, say, promise none).
  void mcOnQueued() noexcept;
  void mcOnFastGrant() noexcept;
  std::size_t mcChooseGrant();

  Simulation& sim_;
  int capacity_;
  int inUse_ = 0;
  std::string name_;
  trace::Category waitCategory_ = trace::Category::LockWait;
  RingQueue<Waiter> waiters_;
  std::uint64_t acquisitions_ = 0;
  Duration totalWait_ = 0;
  mutable SimTime lastUpdate_ = 0;
  mutable double busyIntegral_ = 0.0;
  std::uint64_t mcId_ = 0;
};

/// A mutual-exclusion lock is a capacity-1 resource.
using Mutex = Resource;

/// Lazily created named mutexes — used by the servlet engine to model Java
/// `synchronized` blocks keyed by application-level lock names.
class NamedMutexSet {
 public:
  explicit NamedMutexSet(Simulation& sim) : sim_(sim) {}

  Mutex& get(const std::string& name) {
    auto it = mutexes_.find(name);
    if (it == mutexes_.end()) {
      it = mutexes_.emplace(name, std::make_unique<Mutex>(sim_, 1, name)).first;
    }
    return *it->second;
  }

 private:
  Simulation& sim_;
  std::unordered_map<std::string, std::unique_ptr<Mutex>> mutexes_;
};

}  // namespace mwsim::sim
