#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace mwsim::sim {

/// Deterministic random source for one simulation component.
///
/// Each component owns its own Rng (seeded from the experiment seed plus a
/// component tag) so that adding draws in one component does not perturb the
/// sequences seen by the others.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive on both ends.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    assert(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Zipf-distributed integer in [1, n] with skew s (s = 0 is uniform).
  ///
  /// Uses rejection-inversion (Hörmann & Derflinger), O(1) per draw.
  std::int64_t zipf(std::int64_t n, double s);

  /// TPC-style non-uniform random: NURand(A, x, y) as defined by TPC-C/TPC-W.
  std::int64_t nurand(std::int64_t a, std::int64_t x, std::int64_t y) {
    const std::int64_t c = a / 2;
    return (((uniformInt(0, a) | uniformInt(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Index drawn from a discrete distribution given non-negative weights.
  std::size_t discrete(std::span<const double> weights);

  /// Random lowercase ASCII string of exactly `length` characters.
  std::string randomString(std::size_t length);

  /// Random sentence-like text of roughly `length` characters.
  std::string randomText(std::size_t length);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives a child seed from a root seed and a component tag, so components
/// get decorrelated but reproducible streams.
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t tag);

}  // namespace mwsim::sim
