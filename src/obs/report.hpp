#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace mwsim::obs {

/// One Little's-law consistency record: over a window, the time-averaged
/// jobs-in-system L should equal arrival rate lambda times mean sojourn W.
/// All three come from independent exact accumulators, so a large relError
/// means an instrument (or the law's stationarity assumption) is broken —
/// the check validates the instruments as much as the run.
struct LittleRecord {
  std::string name;
  double L = 0.0;
  double lambda = 0.0;  // completions per second
  double W = 0.0;       // mean sojourn, seconds
  double relError = 0.0;  // |L - lambda*W| / max(L, tiny)
};

/// The analyzer's structured answer to "what is the bottleneck of this
/// window": the most-utilized saturable resource, how saturated and for how
/// much of the window, the dominant critical-path component from trace
/// attribution, and the Little's-law consistency records.
struct Verdict {
  std::string resource;   // utilization-series name, e.g. "Database/cpu"
  ResourceKind kind = ResourceKind::Cpu;
  double utilization = 0.0;      // mean over the window
  double plateauFraction = 0.0;  // fraction of samples >= saturation threshold
  bool saturated = false;        // utilization >= threshold over the window
  std::string dominant;          // e.g. "db cpu-service 48%" ("" without traces)
  std::string note;              // extra explanation (e.g. admission shedding)
  std::vector<LittleRecord> little;

  /// The one-line verdict the figure benches print.
  std::string oneLine() const;
};

/// Everything the metrics pump sampled, copied out of the registry/pump so
/// it outlives the simulation (ExperimentResult holds it by shared_ptr).
/// Snapshot i is taken at times[i]; interval i (i >= 1) covers
/// (times[i-1], times[i]] — the final interval may be partial (tail flush).
struct MetricsReport {
  sim::Duration period = 0;
  sim::SimTime windowStart = 0;  // measurement window (ramp-up excluded)
  sim::SimTime windowEnd = 0;
  std::vector<sim::SimTime> times;

  struct UtilSeries {
    std::string name;
    ResourceKind kind = ResourceKind::Cpu;
    double capacity = 1.0;
    std::vector<double> cumulative;  // unit-seconds at each snapshot
  };
  struct GaugeSeries {
    std::string name;
    std::vector<double> values;
  };
  struct CounterSeries {
    std::string name;
    std::vector<std::uint64_t> cumulative;
  };
  struct LittleSeries {
    std::string name;
    std::vector<double> jobIntegral;  // job-seconds at each snapshot
    std::vector<std::uint64_t> completed;
    std::vector<double> sojourn;  // seconds at each snapshot
  };
  struct HistogramSummary {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, min = 0.0, max = 0.0;
  };

  std::vector<UtilSeries> utilization;
  std::vector<GaugeSeries> gauges;
  std::vector<CounterSeries> counters;
  std::vector<LittleSeries> little;
  std::vector<HistogramSummary> histograms;

  /// Verdict over the measurement window, filled by the analyzer.
  Verdict verdict;

  // --- Window helpers (all windows snap to snapshot instants) ------------

  /// Index of the last snapshot taken at or before t (0 if t precedes all).
  std::size_t snapshotAtOrBefore(sim::SimTime t) const {
    std::size_t i = 0;
    while (i + 1 < times.size() && times[i + 1] <= t) ++i;
    return i;
  }

  /// Mean utilization of one series over [from, to].
  double meanUtilization(const UtilSeries& s, sim::SimTime from, sim::SimTime to) const {
    const std::size_t a = snapshotAtOrBefore(from);
    const std::size_t b = snapshotAtOrBefore(to);
    if (b <= a || s.cumulative.size() <= b) return 0.0;
    const double dt = sim::toSeconds(times[b] - times[a]);
    if (dt <= 0.0) return 0.0;
    return (s.cumulative[b] - s.cumulative[a]) / (dt * s.capacity);
  }

  /// Fraction of whole sampling intervals inside [from, to] whose
  /// utilization is at least `threshold` — "100% utilized throughout the
  /// peak plateau" made checkable.
  double fractionAbove(const UtilSeries& s, double threshold, sim::SimTime from,
                       sim::SimTime to) const {
    const std::size_t a = snapshotAtOrBefore(from);
    const std::size_t b = snapshotAtOrBefore(to);
    std::size_t total = 0, above = 0;
    for (std::size_t i = a + 1; i <= b && i < s.cumulative.size(); ++i) {
      const double dt = sim::toSeconds(times[i] - times[i - 1]);
      if (dt <= 0.0) continue;
      ++total;
      if ((s.cumulative[i] - s.cumulative[i - 1]) / (dt * s.capacity) >= threshold) {
        ++above;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(total);
  }

  const UtilSeries* findUtilization(const std::string& name) const {
    for (const auto& s : utilization) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
  const CounterSeries* findCounter(const std::string& name) const {
    for (const auto& s : counters) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
  const GaugeSeries* findGauge(const std::string& name) const {
    for (const auto& s : gauges) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  /// Counter increment over [from, to] (snapshot-aligned).
  std::uint64_t counterDelta(const std::string& name, sim::SimTime from,
                             sim::SimTime to) const {
    const CounterSeries* s = findCounter(name);
    if (s == nullptr || s->cumulative.empty()) return 0;
    const std::size_t a = snapshotAtOrBefore(from);
    const std::size_t b = snapshotAtOrBefore(to);
    if (b <= a || s->cumulative.size() <= b) return 0;
    return s->cumulative[b] - s->cumulative[a];
  }
  /// Final (whole-run) value of a counter.
  std::uint64_t counterTotal(const std::string& name) const {
    const CounterSeries* s = findCounter(name);
    return s == nullptr || s->cumulative.empty() ? 0 : s->cumulative.back();
  }
};

}  // namespace mwsim::obs
