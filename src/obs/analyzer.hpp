#pragma once

#include <string>
#include <vector>

#include "obs/report.hpp"
#include "sim/time.hpp"
#include "trace/collector.hpp"

namespace mwsim::obs {

struct AnalyzerOptions {
  /// A utilization interval at or above this counts toward the plateau; a
  /// window mean at or above it marks the resource saturated (the paper
  /// reads its sysstat plots the same way: "100% utilized throughout").
  double saturation = 0.90;
  /// Shed sessions must explain at least this fraction of open-loop
  /// arrivals before the verdict notes admission control.
  double shedNoteFraction = 0.05;
};

/// Joins the sampled metrics with trace attribution into a per-run verdict:
/// the saturated resource (highest windowed mean utilization among verdict
/// candidates), the dominant critical-path component (trace tier with the
/// largest exclusive time, tagged with its top category), and the
/// Little's-law consistency records. `traces` may be null (no tracing).
Verdict analyze(const MetricsReport& report, const trace::Report* traces,
                sim::SimTime from, sim::SimTime to, AnalyzerOptions options = {});

/// Little's-law records for every instrumented resource over [from, to]
/// (snapshot-aligned); resources with no completions in the window are
/// skipped.
std::vector<LittleRecord> littleRecords(const MetricsReport& report,
                                        sim::SimTime from, sim::SimTime to);

/// Serializes the full report (series + verdict) as the --metrics-out JSON.
std::string metricsJson(const MetricsReport& report);

/// Renders the report's utilization, gauge, and counter-rate series as
/// Chrome-trace "C" (counter) events — a comma-joined fragment for
/// trace::chromeTraceJson's extraEvents slot, so --trace-out files show
/// counter tracks alongside the span timelines.
std::string counterTrackEvents(const MetricsReport& report);

}  // namespace mwsim::obs
