#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace mwsim::obs {

/// Periodic sampler that subsumes stats::Sampler for the metrics layer.
///
/// The pump deliberately does NOT spawn a simulated process. A sampling
/// coroutine would insert wake-up events into the kernel queue, perturbing
/// (time, seq) dispatch order and breaking the metrics-on ≡ metrics-off
/// byte-identity guarantee. Instead the *driver* steps the kernel:
///
///   pump.runTo(t);   // = runUntil(next sample instant); sample(); repeat
///
/// `Simulation::runUntil(t)` runs every event with timestamp <= t and then
/// advances the clock to exactly t, so splitting one big runUntil into
/// period-sized steps dispatches the same events in the same order — the
/// pump only ever *reads* between steps.
///
/// Snapshot 0 is the baseline taken at construction; the final interval may
/// be partial (finish() ports the stats::Sampler tail-flush fix: a run that
/// stops mid-period still records its trailing activity).
class MetricsPump {
 public:
  MetricsPump(sim::Simulation& simulation, MetricsRegistry& registry,
              sim::Duration period)
      : sim_(simulation), registry_(registry), period_(period) {
    utilCum_.resize(registry.utilizationProbes().size());
    gaugeVals_.resize(registry.gaugeProbes().size());
    counterCum_.resize(registry.counters().size());
    littleIntegral_.resize(registry.littleProbes().size());
    littleCompleted_.resize(registry.littleProbes().size());
    littleSojourn_.resize(registry.littleProbes().size());
    sample();  // baseline
    next_ = sim_.now() + period_;
  }
  MetricsPump(const MetricsPump&) = delete;
  MetricsPump& operator=(const MetricsPump&) = delete;

  /// Advances the simulation to `target`, sampling at every whole period.
  void runTo(sim::SimTime target) {
    while (next_ <= target) {
      sim_.runUntil(next_);
      sample();
      next_ += period_;
    }
    sim_.runUntil(target);
  }

  /// Records the final partial interval, if any. Call once after the last
  /// runTo, before shutdown.
  void finish() {
    if (sim_.now() > times_.back()) sample();
  }

  std::size_t sampleCount() const noexcept { return times_.size(); }
  const std::vector<sim::SimTime>& times() const noexcept { return times_; }

  /// Copies everything sampled so far into a self-contained report
  /// (instrument pointers die with the simulation; the report must not).
  MetricsReport buildReport(sim::SimTime windowStart, sim::SimTime windowEnd) const {
    MetricsReport r;
    r.period = period_;
    r.windowStart = windowStart;
    r.windowEnd = windowEnd;
    r.times = times_;
    const auto& utils = registry_.utilizationProbes();
    for (std::size_t i = 0; i < utils.size(); ++i) {
      r.utilization.push_back({utils[i].name, utils[i].kind, utils[i].capacity,
                               utilCum_[i]});
    }
    const auto& gauges = registry_.gaugeProbes();
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      r.gauges.push_back({gauges[i].name, gaugeVals_[i]});
    }
    const auto& counters = registry_.counters();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      r.counters.push_back({counters[i].name, counterCum_[i]});
    }
    const auto& littles = registry_.littleProbes();
    for (std::size_t i = 0; i < littles.size(); ++i) {
      r.little.push_back({littles[i].name, littleIntegral_[i], littleCompleted_[i],
                          littleSojourn_[i]});
    }
    for (const auto& h : registry_.histograms()) {
      const stats::Histogram& hist = h.value->histogram();
      r.histograms.push_back({h.name, hist.count(), hist.mean(), hist.percentile(50),
                              hist.percentile(90), hist.percentile(99), hist.min(),
                              hist.max()});
    }
    return r;
  }

 private:
  void sample() {
    times_.push_back(sim_.now());
    const auto& utils = registry_.utilizationProbes();
    for (std::size_t i = 0; i < utils.size(); ++i) {
      utilCum_[i].push_back(utils[i].cumulative());
    }
    const auto& gauges = registry_.gaugeProbes();
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      gaugeVals_[i].push_back(gauges[i].read());
    }
    const auto& counters = registry_.counters();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      counterCum_[i].push_back(counters[i].value->value());
    }
    const auto& littles = registry_.littleProbes();
    for (std::size_t i = 0; i < littles.size(); ++i) {
      littleIntegral_[i].push_back(littles[i].jobIntegralSeconds());
      littleCompleted_[i].push_back(littles[i].completed());
      littleSojourn_[i].push_back(littles[i].sojournSeconds());
    }
  }

  sim::Simulation& sim_;
  MetricsRegistry& registry_;
  sim::Duration period_;
  sim::SimTime next_ = 0;
  std::vector<sim::SimTime> times_;
  std::vector<std::vector<double>> utilCum_;
  std::vector<std::vector<double>> gaugeVals_;
  std::vector<std::vector<std::uint64_t>> counterCum_;
  std::vector<std::vector<double>> littleIntegral_;
  std::vector<std::vector<std::uint64_t>> littleCompleted_;
  std::vector<std::vector<double>> littleSojourn_;
};

}  // namespace mwsim::obs
